// Memory-safety example: the §4.2 policy. The verifier tracks every
// allocation as an interval; accesses outside a live allocation
// (out-of-bounds or use-after-free) and invalid frees (double free) are
// violations — corruption is caught at the access, before any pointer is
// even corrupted.
//
// Run with: go run ./examples/memsafety
package main

import (
	"fmt"
	"log"

	hq "herqules"
)

func build(bug string) *hq.Module {
	mod := hq.NewModule("memsafety-" + bug)
	b := hq.NewBuilder(mod)
	b.Func("main", hq.FuncTypeOf(hq.I64Type))

	buf := b.Malloc(hq.ConstInt(32))
	words := b.Cast(buf, hq.PtrType(hq.I64Type))
	// Four in-bounds writes.
	for i := 0; i < 4; i++ {
		b.Store(hq.ConstInt(uint64(i)), b.IndexAddr(words, hq.ConstInt(uint64(i))))
	}
	switch bug {
	case "oob":
		// Word 4 is one past the end of the 32-byte allocation.
		b.Store(hq.ConstInt(0xbad), b.IndexAddr(words, hq.ConstInt(4)))
	case "uaf":
		b.Free(buf)
		b.Store(hq.ConstInt(0xbad), words) // freed memory is still mapped
		// Re-allocate so the program's own free below stays valid.
		buf2 := b.Malloc(hq.ConstInt(32))
		b.Free(buf2)
	case "none":
	}
	if bug != "uaf" {
		b.Free(buf)
	}
	b.Syscall(60, hq.ConstInt(0))
	b.Ret(hq.ConstInt(0))
	mod.Finalize()
	return mod
}

func runOne(bug string) {
	mod := build(bug)
	if err := hq.Validate(mod); err != nil {
		log.Fatal(err)
	}
	opts := hq.DefaultOptions()
	opts.MemSafety = true // enable the §4.2 allocation instrumentation
	ins, err := hq.Instrument(mod, hq.HQSfeStk, opts)
	if err != nil {
		log.Fatal(err)
	}
	out, err := hq.Run(ins, hq.RunOptions{KillOnViolation: true})
	if err != nil {
		log.Fatal(err)
	}
	switch {
	case out.Killed:
		fmt.Printf("%-5s -> killed: %s\n", bug, out.KillReason)
	case out.Err != nil:
		fmt.Printf("%-5s -> crashed: %v\n", bug, out.Err)
	default:
		fmt.Printf("%-5s -> clean exit (%d messages checked)\n", bug, out.MessagesProcessed)
	}
}

func main() {
	for _, bug := range []string{"none", "oob", "uaf"} {
		runOne(bug)
	}
}
