// CFI example: a heap overflow corrupts a function pointer, and a
// use-after-free dangles one. Run the same program uninstrumented (the
// exploit wins) and under HQ-CFI (the verifier kills the process before the
// payload's system call executes, and the dangling pointer is flagged).
//
// Run with: go run ./examples/cfi
package main

import (
	"fmt"
	"log"

	hq "herqules"
)

// buildVictim constructs a program with two bugs:
//
//  1. An overflow of a heap buffer overwrites the function pointer stored in
//     the adjacent allocation with the attacker function's (known, ASLR-off)
//     address; the program then dispatches through it.
//  2. After the dispatch, the program frees an object holding a callback and
//     calls through the stale pointer — a use-after-free that "works".
func buildVictim() *hq.Module {
	mod := hq.NewModule("victim")
	b := hq.NewBuilder(mod)
	sig := hq.FuncTypeOf(hq.I64Type, hq.I64Type)

	// Function #0: the attacker's payload ("shellcode").
	attacker := b.Func("attacker", sig, "x")
	b.Syscall(60 /* exit */, hq.ConstInt(99))
	b.Ret(hq.ConstInt(0))
	_ = attacker

	legit := b.Func("legit", sig, "x")
	b.Ret(b.Add(legit.Params[0], hq.ConstInt(1)))

	b.Func("main", hq.FuncTypeOf(hq.I64Type))
	// Adjacent heap allocations: a buffer and a callback slot.
	buf := b.Malloc(hq.ConstInt(32))
	slotRaw := b.Malloc(hq.ConstInt(16))
	slot := b.Cast(slotRaw, hq.PtrType(hq.PtrType(sig)))
	b.Store(b.FuncAddr(legit), slot)

	// Bug 1: off-by-four — the loop writes 5 words into a 4-word buffer;
	// word 4 lands on the callback slot. The payload value is a plain
	// integer (the attacker function's address), invisible to any
	// pointer-type analysis.
	words := b.Cast(buf, hq.PtrType(hq.I64Type))
	for i := 0; i < 5; i++ {
		b.Store(hq.ConstInt(hq.StaticFuncAddr(0)), b.IndexAddr(words, hq.ConstInt(uint64(i))))
	}

	// Dispatch through the (now corrupted) callback.
	fp := b.Load(slot)
	r := b.ICall(fp, sig, hq.ConstInt(41))

	// Bug 2: use-after-free on a control-flow pointer.
	obj := b.Malloc(hq.ConstInt(16))
	cb := b.Cast(obj, hq.PtrType(hq.PtrType(sig)))
	b.Store(b.FuncAddr(legit), cb)
	b.Free(obj)
	stale := b.Load(cb) // reads freed memory, which still holds the pointer
	r2 := b.ICall(stale, sig, r)

	b.Syscall(1 /* write */, r2)
	b.Syscall(60 /* exit */, hq.ConstInt(0))
	b.Ret(hq.ConstInt(0))
	mod.Finalize()
	return mod
}

func main() {
	mod := buildVictim()
	if err := hq.Validate(mod); err != nil {
		log.Fatal(err)
	}

	// Unprotected: the hijacked dispatch runs the attacker's payload.
	base, err := hq.Instrument(mod, hq.Baseline, hq.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	out, err := hq.Run(base, hq.RunOptions{KillOnViolation: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline:   exit=%d hijacked=%t (attacker exits with 99)\n",
		out.ExitCode, out.ExitCode == 99)

	// Under HQ-CFI the Pointer-Check message betrays the corruption and
	// the kernel kills the process on the verifier's order.
	prot, err := hq.Instrument(mod, hq.HQSfeStk, hq.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	out2, err := hq.Run(prot, hq.RunOptions{KillOnViolation: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hq-cfi:     killed=%t reason=%q\n", out2.Killed, out2.KillReason)

	// In monitoring (continue) mode, both the corruption and the
	// use-after-free are reported while the program runs on.
	out3, err := hq.Run(prot, hq.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monitoring: %d violations recorded:\n", len(out3.PolicyViolations))
	for _, v := range out3.PolicyViolations {
		fmt.Printf("  - %s\n", v.Reason)
	}
}
