// Webserver example: an NGINX-like request loop running under HerQules in
// *concurrent* mode — messages travel through a real AppendWrite-FPGA model
// channel to a verifier goroutine, and every system call is genuinely gated
// by bounded asynchronous validation (§2.2): the kernel pauses it until the
// verifier confirms all in-flight messages checked out.
//
// Run with: go run ./examples/webserver
package main

import (
	"fmt"
	"log"
	"time"

	hq "herqules"
)

// buildServer constructs the request loop: accept/read (syscalls), parse,
// dispatch through per-connection handler pointers, write (syscall).
func buildServer(requests int) *hq.Module {
	mod := hq.NewModule("webserver")
	b := hq.NewBuilder(mod)
	sig := hq.FuncTypeOf(hq.I64Type, hq.I64Type)

	handlers := make([]*hq.Func, 3)
	for i := range handlers {
		h := b.Func(fmt.Sprintf("handle_route%d", i), sig, "req")
		b.Ret(b.Bin(hq.BinXor, h.Params[0], hq.ConstInt(uint64(0x1000+i))))
		handlers[i] = h
	}

	conn := b.Global("conn", hq.StructTypeOf("conn", hq.I64Type, hq.PtrType(sig)), "data")
	routes := b.Global("routes", hq.ArrayTypeOf(hq.PtrType(sig), 3), "data")
	for i, h := range handlers {
		routes.InitFuncs[i] = h
		h.AddressTaken = true
	}

	b.Func("main", hq.FuncTypeOf(hq.I64Type))
	served := b.Alloca("served", hq.I64Type)
	b.Store(hq.ConstInt(0), served)
	entry := b.Blk
	head := b.Block("head")
	body := b.Block("body")
	done := b.Block("done")
	b.Br(head)
	b.SetBlock(head)
	i := b.Phi(hq.I64Type, hq.ConstInt(0), entry)
	b.CondBr(b.Cmp(hq.CmpLt, i, hq.ConstInt(uint64(requests))), body, done)
	b.SetBlock(body)
	b.Syscall(hq.SysSend) // accept
	b.Syscall(hq.SysSend) // read
	// Parse: derive the route.
	route := b.Bin(hq.BinRem, i, hq.ConstInt(3))
	// Look up the route handler and install it on the connection, then
	// dispatch. Each store emits a Pointer-Define, each load a
	// Pointer-Check.
	h := b.Load(b.IndexAddr(routes, route))
	b.Store(h, b.FieldAddr(conn, 1))
	fp := b.Load(b.FieldAddr(conn, 1))
	b.ICall(fp, sig, i)
	b.Syscall(hq.SysSend) // write response
	b.Store(b.Add(b.Load(served), hq.ConstInt(1)), served)
	i1 := b.Add(i, hq.ConstInt(1))
	i.Args, i.PhiBlocks = append(i.Args, i1), append(i.PhiBlocks, b.Blk)
	b.Br(head)
	b.SetBlock(done)
	out := b.Load(served)
	b.Syscall(hq.SysWrite, out)
	b.Syscall(hq.SysExit, hq.ConstInt(0))
	b.Ret(hq.ConstInt(0))
	mod.Finalize()
	return mod
}

func main() {
	const requests = 2000
	mod := buildServer(requests)
	if err := hq.Validate(mod); err != nil {
		log.Fatal(err)
	}
	ins, err := hq.Instrument(mod, hq.HQSfeStk, hq.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// A real concurrent AppendWrite-FPGA channel: program goroutine sends,
	// verifier goroutine pumps, kernel gates each syscall on confirmation.
	ch, err := hq.NewChannel(hq.FPGA)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	out, err := hq.Run(ins, hq.RunOptions{Channel: ch, KillOnViolation: true})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	if out.Killed || out.Err != nil {
		log.Fatalf("server died: killed=%t err=%v", out.Killed, out.Err)
	}
	fmt.Printf("served %d requests in %v (%.0f req/s wall-clock, concurrent verification)\n",
		out.Output[0], elapsed.Round(time.Millisecond),
		float64(out.Output[0])/elapsed.Seconds())
	fmt.Printf("messages verified: %d; syscalls gated: %d; violations: %d\n",
		out.MessagesProcessed, out.Stats.Syscalls, len(out.PolicyViolations))
}
