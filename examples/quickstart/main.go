// Quickstart: the paper's §2 overview example — reliably count the function
// calls a program makes.
//
// An in-process counter could be corrupted by the program's own bugs.
// Instead, the program sends a counter-increment message before every call
// through the append-only AppendWrite channel, and the count lives in the
// verifier, out of the program's reach. Even if the program is compromised
// immediately after sending a message, it cannot retract it.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	hq "herqules"
)

func main() {
	// Build a program that calls work() in a loop, with the §2 counter
	// instrumentation: one message before every call.
	mod := hq.NewModule("quickstart")
	b := hq.NewBuilder(mod)

	work := b.Func("work", hq.FuncTypeOf(hq.I64Type, hq.I64Type), "x")
	b.Ret(b.Mul(work.Params[0], hq.ConstInt(2)))

	main := b.Func("main", hq.FuncTypeOf(hq.I64Type))
	sum := b.Alloca("sum", hq.I64Type)
	b.Store(hq.ConstInt(0), sum)
	entry := b.Blk
	head := b.Block("head")
	body := b.Block("body")
	done := b.Block("done")
	b.Br(head)
	b.SetBlock(head)
	i := b.Phi(hq.I64Type, hq.ConstInt(0), entry)
	b.CondBr(b.Cmp(hq.CmpLt, i, hq.ConstInt(10)), body, done)
	b.SetBlock(body)
	// The compiler pass would insert this; here it is visible: one
	// counter message (class 1 = "function call") before the call.
	b.Runtime(hq.RTCounterInc, hq.ConstInt(1))
	r := b.Call(work, i)
	b.Store(b.Add(b.Load(sum), r), sum)
	i1 := b.Add(i, hq.ConstInt(1))
	i.Args, i.PhiBlocks = append(i.Args, i1), append(i.PhiBlocks, b.Blk)
	b.Br(head)
	b.SetBlock(done)
	b.Ret(b.Load(sum))
	mod.Finalize()
	_ = main
	if err := hq.Validate(mod); err != nil {
		log.Fatal(err)
	}

	// Instrument for HerQules (adds syscall synchronization etc.) and run
	// it monitored, holding a reference to the counter policy so we can
	// read the trustworthy count afterwards.
	ins, err := hq.Instrument(mod, hq.HQSfeStk, hq.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	counter := hq.NewCounterPolicy().(*hq.CounterPolicy)
	out, err := hq.Run(ins, hq.RunOptions{
		Policies: func() []hq.Policy {
			return []hq.Policy{hq.NewCFIPolicy(), counter}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("program result: sum of 2*i for i<10 = %d\n", out.ExitCode)
	fmt.Printf("verifier-held call count: %d (tamper-proof: lives outside the process)\n",
		counter.Count(1))
	fmt.Printf("messages processed by verifier: %d\n", out.MessagesProcessed)
}
