// DFI example: the §4.3 data-flow integrity policy catching a
// *non-control-data* attack — the class of exploit no CFI design can see.
//
// The program keeps an is_admin flag next to a request buffer. An overflow
// flips the flag; no function pointer or return address is ever touched, so
// HQ-CFI alone stays silent and the privileged branch executes. With the
// DFI instrumentation, every store announces its identity and the flag's
// read is checked against its statically computed set of legitimate
// writers; the rogue write is caught before the branch.
//
// Run with: go run ./examples/dfi
package main

import (
	"fmt"
	"log"

	hq "herqules"
)

func buildVictim() *hq.Module {
	mod := hq.NewModule("privesc")
	b := hq.NewBuilder(mod)

	// Layout: the request buffer sits directly below the flag.
	buf := b.Global("request_buf", hq.ArrayTypeOf(hq.I64Type, 4), "bss")
	flag := b.Global("is_admin", hq.I64Type, "bss")

	b.Func("main", hq.FuncTypeOf(hq.I64Type))
	b.Store(hq.ConstInt(0), flag) // deny by default: the only legal writer

	// "Parse the request": copies 5 words into a 4-word buffer.
	for i := 0; i < 5; i++ { // the off-by-one
		b.Store(hq.ConstInt(1), b.IndexAddr(buf, hq.ConstInt(uint64(i))))
	}

	v := b.Load(flag)
	granted := b.Block("granted")
	denied := b.Block("denied")
	b.CondBr(v, granted, denied)
	b.SetBlock(granted)
	b.Syscall(hq.SysSend) // "grant shell" — the privileged action
	b.Syscall(hq.SysExit, hq.ConstInt(99))
	b.Ret(hq.ConstInt(0))
	b.SetBlock(denied)
	b.Syscall(hq.SysExit, hq.ConstInt(0))
	b.Ret(hq.ConstInt(0))
	mod.Finalize()
	return mod
}

func main() {
	mod := buildVictim()
	if err := hq.Validate(mod); err != nil {
		log.Fatal(err)
	}

	run := func(label string, opts hq.Options) {
		ins, err := hq.Instrument(mod, hq.HQSfeStk, opts)
		if err != nil {
			log.Fatal(err)
		}
		out, err := hq.Run(ins, hq.RunOptions{KillOnViolation: true})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "privilege GRANTED (attack succeeded)"
		if out.Killed {
			verdict = fmt.Sprintf("killed before the branch: %s", out.KillReason)
		} else if out.ExitCode == 0 {
			verdict = "privilege denied"
		}
		fmt.Printf("%-12s %s\n", label+":", verdict)
	}

	// CFI alone: the overflow touches no code pointer, so the attack wins.
	run("hq-cfi", hq.DefaultOptions())

	// CFI + DFI: the flag's read is checked against its writer set.
	withDFI := hq.DefaultOptions()
	withDFI.DFI = true
	run("hq-cfi+dfi", withDFI)
}
