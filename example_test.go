package herqules_test

import (
	"fmt"
	"log"

	hq "herqules"
)

// Example demonstrates the complete HerQules flow: author a program,
// instrument it with HQ-CFI, corrupt a function pointer through a
// memory-safety bug, and watch the verifier kill the process before the
// attacker's payload can issue its system call.
func Example() {
	mod := hq.NewModule("demo")
	b := hq.NewBuilder(mod)
	sig := hq.FuncTypeOf(hq.I64Type, hq.I64Type)

	// Function #0: the attacker's payload.
	b.Func("attacker", sig, "x")
	b.Syscall(hq.SysExit, hq.ConstInt(99))
	b.Ret(hq.ConstInt(0))

	legit := b.Func("legit", sig, "x")
	b.Ret(b.Add(legit.Params[0], hq.ConstInt(1)))

	b.Func("main", hq.FuncTypeOf(hq.I64Type))
	slot := b.Cast(b.Malloc(hq.ConstInt(16)), hq.PtrType(hq.PtrType(sig)))
	b.Store(b.FuncAddr(legit), slot)
	// The "overflow": a raw write of the attacker's (ASLR-off, constant)
	// address over the callback slot.
	b.Store(hq.ConstInt(hq.StaticFuncAddr(0)), b.Cast(slot, hq.PtrType(hq.I64Type)))
	fp := b.Load(slot)
	r := b.ICall(fp, sig, hq.ConstInt(41))
	b.Syscall(hq.SysWrite, r)
	b.Syscall(hq.SysExit, hq.ConstInt(0))
	b.Ret(hq.ConstInt(0))
	mod.Finalize()

	ins, err := hq.Instrument(mod, hq.HQSfeStk, hq.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	out, err := hq.Run(ins, hq.RunOptions{KillOnViolation: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("killed:", out.Killed)
	fmt.Println("reason:", out.KillReason)
	// Output:
	// killed: true
	// reason: pointer value mismatch: corrupt
}

// ExampleParseModule shows the textual MIR surface: programs can be written
// as text, parsed, and run monitored.
func ExampleParseModule() {
	src := `module hello

func @double(%x: i64) -> i64 {
entry:
  %r = mul %x, 2 : i64
  ret %r
}

func @main() -> i64 {
entry:
  %v = call @double(21) : i64
  %w = syscall 1(%v) : i64
  ret 0
}
`
	mod, err := hq.ParseModule(src)
	if err != nil {
		log.Fatal(err)
	}
	ins, err := hq.Instrument(mod, hq.HQSfeStk, hq.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	out, err := hq.Run(ins, hq.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out.Output[0])
	// Output:
	// 42
}

// ExampleNewCounterPolicy reproduces the paper's §2 overview: a
// tamper-proof event counter held by the verifier, out of the monitored
// program's reach.
func ExampleNewCounterPolicy() {
	mod := hq.NewModule("count")
	b := hq.NewBuilder(mod)
	b.Func("main", hq.FuncTypeOf(hq.I64Type))
	for i := 0; i < 3; i++ {
		b.Runtime(hq.RTCounterInc, hq.ConstInt(1))
	}
	b.Ret(hq.ConstInt(0))
	mod.Finalize()

	ins, err := hq.Instrument(mod, hq.HQSfeStk, hq.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	counter := hq.NewCounterPolicy().(*hq.CounterPolicy)
	if _, err := hq.Run(ins, hq.RunOptions{
		Policies: func() []hq.Policy { return []hq.Policy{counter} },
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("events:", counter.Count(1))
	// Output:
	// events: 3
}
