GO ?= go

.PHONY: all build test race vet check bench throughput stats

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# check is the CI gate: vet, build, the full test suite under the race
# detector, and a smoke run of the telemetry experiment end-to-end.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) run ./cmd/hqbench -exp stats -msgs 50000 -procs 4 >/dev/null

stats:
	$(GO) run ./cmd/hqbench -exp stats

bench:
	$(GO) test -bench=. -benchmem ./...

throughput:
	$(GO) run ./cmd/hqbench -exp throughput
