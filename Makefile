GO ?= go

.PHONY: all build test race vet check bench throughput

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# check is the CI gate: vet, build, and the full test suite under the race
# detector.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

throughput:
	$(GO) run ./cmd/hqbench -exp throughput
