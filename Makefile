GO ?= go

.PHONY: all build test race vet check bench bench-smoke throughput scaling stats multiproc multiproc-smoke obs-smoke chaos-smoke chaos latency verify-smoke verify policy-smoke policies forensics-smoke forensics hqd-smoke hqd

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# check is the CI gate: vet, build, the full test suite under the race
# detector, a smoke run of the telemetry experiment end-to-end, and the
# multi-process supervisor smoke (racy concurrent launches + one small
# multiproc scaling measurement).
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) run ./cmd/hqbench -exp stats -msgs 50000 -procs 4 >/dev/null
	$(MAKE) multiproc-smoke
	$(MAKE) obs-smoke
	$(MAKE) chaos-smoke
	$(MAKE) policy-smoke
	$(MAKE) forensics-smoke
	$(MAKE) verify-smoke
	$(MAKE) hqd-smoke
	$(MAKE) bench-smoke

# multiproc-smoke re-runs the concurrent-supervisor tests under the race
# detector and takes one small-N multiproc scaling measurement.
multiproc-smoke:
	$(GO) test -race -count=1 -run 'System' ./internal/supervisor .
	$(GO) run ./cmd/hqbench -exp multiproc -msgs 200000 >/dev/null

# obs-smoke launches a resident System with the observability endpoint on a
# loopback port, runs monitored programs through it, and scrapes /metrics
# and /healthz over real HTTP, failing on an empty or incomplete exposition.
obs-smoke:
	$(GO) run ./cmd/hqbench -exp obs

# chaos-smoke is a short seeded fault-injection soak under the race detector:
# the injector unit tests, the failure-containment tests across ipc, verifier,
# kernel and supervisor, and the full Chaos experiment (soak + determinism
# replay) at a fixed seed. Deterministic by construction — safe for CI.
chaos-smoke:
	$(GO) test -race -count=1 ./internal/chaos
	$(GO) test -race -count=1 -run 'Chaos|Panic|Degraded|Wedged|Seq|Transient|Retry|Frame|Garbage|SpinWait' \
		./internal/ipc ./internal/verifier ./internal/kernel ./internal/supervisor ./internal/experiments

# policy-smoke exercises the pluggable policy engine: the registry/conformance
# and per-policy unit tests under the race detector, then the full detection
# matrix (every registered policy against every injected fault class, with
# kill attribution checked) plus a quick overhead sweep via hqbench.
policy-smoke:
	$(GO) test -race -count=1 -run 'Conformance|Registry|Temporal|Hmac|HMAC|Seal|Policy' \
		./internal/policy ./internal/ipc ./internal/verifier ./internal/supervisor .
	$(GO) run ./cmd/hqbench -exp policies -quick >/dev/null

# policies prints the full detection matrix and per-policy overhead table and
# persists it as JSON alongside the other committed benchmark artifacts.
policies:
	$(GO) run ./cmd/hqbench -exp policies -out BENCH_policies.json

# forensics-smoke exercises the flight-recorder layer under the race detector:
# the recorder/forensics unit tests, then the quick acceptance experiment
# (kill attribution for every fault class, recorder overhead, zero-alloc
# stamp) built with -race as well. Deterministic attribution — safe for CI.
forensics-smoke:
	$(GO) test -race -count=1 -run 'Flight|Forensic|Violations' \
		./internal/telemetry ./internal/verifier ./internal/supervisor ./internal/obs
	$(GO) run -race ./cmd/hqbench -exp forensics -quick >/dev/null

# forensics prints the full attribution matrix and overhead measurement and
# persists the JSON artifact.
forensics:
	$(GO) run ./cmd/hqbench -exp forensics -out BENCH_forensics.json

# verify-smoke model-checks the gate protocol at the 2-proc x 2-shard scope:
# exhaustive exploration must be clean AND the checker must catch each
# reverted fix (revert knobs) with a minimal replayable schedule. Seconds,
# deterministic — safe for CI.
verify-smoke:
	$(GO) test -race -count=1 -short ./internal/verify ./internal/dsched
	$(GO) run ./cmd/hqbench -exp verify -quick

# verify runs the full exploration including the 3-process deep scope
# (~550k states; takes minutes).
verify:
	$(GO) run ./cmd/hqbench -exp verify

# hqd-smoke exercises the networked attestation plane under the race
# detector: the session/lease/resume unit tests, the socketpair framing and
# connection-fault tests, then the quick hqd soak — a daemon+client round
# trip over TCP and Unix sockets with chaos conn drops (mid-frame and at
# frame boundaries), a lease-expiry kill, and the handshake-abuse battery.
# Deterministic seed — safe for CI.
hqd-smoke:
	$(GO) test -race -count=1 ./internal/hqnet
	$(GO) test -race -count=1 -run 'Conn|Socketpair|Frame' ./internal/chaos
	$(GO) run -race ./cmd/hqbench -exp hqd -quick >/dev/null

# hqd runs the full networked soak and persists the JSON artifact.
hqd:
	$(GO) run ./cmd/hqbench -exp hqd -out BENCH_hqd.json

# chaos runs the full soak with report output (override: make chaos SEED=99).
SEED ?= 0xda0517
chaos:
	$(GO) run ./cmd/hqbench -exp chaos -seed $(SEED)

latency:
	$(GO) run ./cmd/hqbench -exp latency

stats:
	$(GO) run ./cmd/hqbench -exp stats

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke keeps the hot path honest in CI: a short run of the verifier
# throughput benchmarks (catching gross regressions and alloc creep via
# -benchmem) plus a quick shard-scaling ladder, whose JSON lands in
# BENCH_scaling.json for comparison against the committed full run.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkVerifierThroughput' -benchtime 200ms -benchmem .
	$(GO) run ./cmd/hqbench -exp scaling -quick -out BENCH_scaling.json >/dev/null

throughput:
	$(GO) run ./cmd/hqbench -exp throughput

scaling:
	$(GO) run ./cmd/hqbench -exp scaling -out BENCH_scaling.json

multiproc:
	$(GO) run ./cmd/hqbench -exp multiproc
