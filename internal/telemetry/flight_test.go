package telemetry

import (
	"testing"
	"time"
)

func TestFlightRecorderSizing(t *testing.T) {
	cases := []struct{ ask, want int }{
		{-1, MinFlightSlots},
		{0, MinFlightSlots},
		{1, MinFlightSlots},
		{MinFlightSlots, MinFlightSlots},
		{MinFlightSlots + 1, 2 * MinFlightSlots},
		{100, 128},
		{256, 256},
		{MaxFlightSlots + 1, MaxFlightSlots},
		{1 << 30, MaxFlightSlots},
	}
	for _, c := range cases {
		if got := NewFlightRecorder(c.ask).Cap(); got != c.want {
			t.Errorf("NewFlightRecorder(%d).Cap() = %d, want %d", c.ask, got, c.want)
		}
	}
}

// TestFlightRecorderWraparound pins the ring semantics: past capacity the
// oldest records are displaced, Records returns exactly the retained window
// oldest-first, and Total/Overwritten account for every stamp ever made.
func TestFlightRecorderWraparound(t *testing.T) {
	r := NewFlightRecorder(MinFlightSlots)
	n := uint64(r.Cap())
	total := 3*n + 5 // several laps, deliberately not slot-aligned
	for i := uint64(0); i < total; i++ {
		r.StampMessage(7, 2, i, i*i, FlightOK)
	}
	if got := r.Total(); got != total {
		t.Fatalf("Total = %d, want %d", got, total)
	}
	if got := r.Overwritten(); got != total-n {
		t.Fatalf("Overwritten = %d, want %d", got, total-n)
	}
	recs := r.Records()
	if len(recs) != int(n) {
		t.Fatalf("Records returned %d, want %d", len(recs), n)
	}
	for i, rec := range recs {
		wantSeq := total - n + uint64(i)
		if rec.Seq != wantSeq {
			t.Fatalf("record %d: Seq = %d, want %d (oldest-first ordering broken)", i, rec.Seq, wantSeq)
		}
		if rec.Kind != FlightMessage || rec.Code != FlightOK || rec.PID != 7 || rec.Op != 2 {
			t.Fatalf("record %d carries wrong fields: %+v", i, rec)
		}
		if rec.Nanos != 0 {
			t.Fatalf("message record %d has a wall-clock stamp (%d); the hot path must not read the clock", i, rec.Nanos)
		}
	}
}

// TestFlightRecorderPartialWindow covers the pre-wrap regime: fewer stamps
// than slots means Records returns exactly what was stamped and nothing was
// overwritten.
func TestFlightRecorderPartialWindow(t *testing.T) {
	r := NewFlightRecorder(64)
	for i := uint64(0); i < 5; i++ {
		r.StampMessage(1, 1, i, 0, FlightOK)
	}
	if got := r.Overwritten(); got != 0 {
		t.Fatalf("Overwritten = %d before the ring wrapped", got)
	}
	recs := r.Records()
	if len(recs) != 5 {
		t.Fatalf("Records returned %d, want 5", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i) {
			t.Fatalf("record %d: Seq = %d, want %d", i, rec.Seq, i)
		}
	}
}

func TestFlightRecorderFreeze(t *testing.T) {
	r := NewFlightRecorder(0)
	r.StampMessage(1, 1, 1, 0, FlightOK)
	r.StampEvent(1, FlightKilled, 0)
	if r.Frozen() {
		t.Fatal("recorder frozen before Freeze")
	}
	r.Freeze()
	if !r.Frozen() {
		t.Fatal("Freeze did not freeze")
	}
	total := r.Total()
	window := len(r.Records())

	// Every later stamp must be a no-op: the black box is closed.
	r.StampMessage(1, 1, 99, 0, FlightViolated)
	r.StampEvent(1, FlightGateStall, 123)
	r.Freeze() // idempotent
	if got := r.Total(); got != total {
		t.Fatalf("Total moved %d → %d after Freeze", total, got)
	}
	if got := len(r.Records()); got != window {
		t.Fatalf("window grew %d → %d after Freeze", window, got)
	}
	for _, rec := range r.Records() {
		if rec.Seq == 99 || rec.Code == FlightGateStall {
			t.Fatalf("post-freeze stamp landed in the ring: %+v", rec)
		}
	}
}

func TestFlightRecorderEventStamp(t *testing.T) {
	r := NewFlightRecorder(0)
	before := time.Now().UnixNano()
	r.StampEvent(42, FlightEpochExpired, 7)
	recs := r.Records()
	if len(recs) != 1 {
		t.Fatalf("Records returned %d, want 1", len(recs))
	}
	e := recs[0]
	if e.Kind != FlightLifecycle || e.Code != FlightEpochExpired || e.PID != 42 || e.Arg != 7 {
		t.Fatalf("lifecycle record fields wrong: %+v", e)
	}
	if e.Nanos < before || e.Nanos > time.Now().UnixNano() {
		t.Fatalf("lifecycle stamp %d outside the call window", e.Nanos)
	}
}

// TestStampMessageZeroAlloc is the contract the verifier hot path depends on:
// stamping is a slot store plus an increment, nothing else.
func TestStampMessageZeroAlloc(t *testing.T) {
	r := NewFlightRecorder(256)
	seq := uint64(0)
	if allocs := testing.AllocsPerRun(1000, func() {
		r.StampMessage(1, 3, seq, seq^0xbeef, FlightOK)
		seq++
	}); allocs != 0 {
		t.Fatalf("StampMessage allocates %.1f per call, want 0", allocs)
	}
}

func TestFlightCodeString(t *testing.T) {
	if got := FlightSeqGap.String(); got != "seq-violation" {
		t.Errorf("FlightSeqGap.String() = %q", got)
	}
	if got := FlightShardPoisoned.String(); got != "shard-poisoned" {
		t.Errorf("FlightShardPoisoned.String() = %q", got)
	}
	if got := FlightCode(200).String(); got != "code(200)" {
		t.Errorf("unknown code renders %q, want code(200)", got)
	}
}
