package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the bucket count of the power-of-two histogram: bucket 0
// holds zero-valued observations, bucket i (i >= 1) holds values in
// [2^(i-1), 2^i). 64-bit values need at most 64 value buckets plus the zero
// bucket.
const histBuckets = 65

// histLane is one stripe of a histogram. The bucket array dominates the
// struct, so only the trailing pad matters: it keeps the next lane's hot
// leading fields (count/sum) off this lane's last cache line.
type histLane struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
	_       [cacheLine]byte
}

// Histogram is a lane-striped, power-of-two-bucketed distribution of uint64
// samples (latencies in nanoseconds, batch sizes, queue depths). An Observe
// is three uncontended atomic adds plus a rare max update; quantiles are
// estimated at snapshot time by linear interpolation within the landing
// bucket, which bounds the error to the bucket's width.
type Histogram struct {
	name  string
	lanes []histLane
}

// Name reports the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Observe records v on lane 0.
func (h *Histogram) Observe(v uint64) { h.ObserveAt(0, v) }

// ObserveAt records v on the given lane (wrapped into range).
func (h *Histogram) ObserveAt(lane int, v uint64) {
	l := &h.lanes[uint(lane)%uint(len(h.lanes))]
	l.count.Add(1)
	l.sum.Add(v)
	l.buckets[bits.Len64(v)].Add(1)
	for {
		cur := l.max.Load()
		if v <= cur || l.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// HistogramSnapshot is a point-in-time histogram reading, mergeable and
// diffable bucket-by-bucket.
type HistogramSnapshot struct {
	Count   uint64              `json:"count"`
	Sum     uint64              `json:"sum"`
	Max     uint64              `json:"max"`
	Buckets [histBuckets]uint64 `json:"buckets"`
}

// BucketUpperBound returns the inclusive upper bound of bucket i: 0 for the
// zero bucket, 2^i - 1 for value bucket i (which holds [2^(i-1), 2^i)). The
// Prometheus exposition uses these as `le` boundaries; they are exact for
// integer-valued samples.
func BucketUpperBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<i - 1
}

func (h *Histogram) snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.lanes {
		l := &h.lanes[i]
		s.Count += l.count.Load()
		s.Sum += l.sum.Load()
		if m := l.max.Load(); m > s.Max {
			s.Max = m
		}
		for b := range l.buckets {
			s.Buckets[b] += l.buckets[b].Load()
		}
	}
	return s
}

// diff subtracts prev bucket-by-bucket; Max keeps the current value (a
// high-water mark cannot be un-observed).
func (s HistogramSnapshot) diff(prev HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Count: s.Count - prev.Count, Sum: s.Sum - prev.Sum, Max: s.Max}
	for i := range s.Buckets {
		out.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
	}
	return out
}

// Record folds one sample into the snapshot in place. It is the
// single-writer complement to Histogram.Observe for callers that keep a
// private per-entity distribution under their own lock (the kernel's per-PID
// syscall-stall histogram) instead of registering a striped instrument per
// entity in a registry.
func (s *HistogramSnapshot) Record(v uint64) {
	s.Count++
	s.Sum += v
	if v > s.Max {
		s.Max = v
	}
	s.Buckets[bits.Len64(v)]++
}

// Mean returns the arithmetic mean of the recorded samples (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0, 1]) by locating the bucket
// containing the q-th sample and interpolating linearly inside it. The
// estimate is clamped to Max, which is exact.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if s.Count == 1 {
		// One sample: every quantile is that sample, and Max records it
		// exactly — skip the in-bucket interpolation, whose lower edge
		// would otherwise leak through for small q.
		return float64(s.Max)
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var seen float64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if seen+float64(n) >= rank {
			var lo, hi float64
			if i == 0 {
				lo, hi = 0, 0
			} else {
				lo = float64(uint64(1) << (i - 1))
				hi = 2 * lo
			}
			frac := (rank - seen) / float64(n)
			est := lo + frac*(hi-lo)
			if est > float64(s.Max) {
				est = float64(s.Max)
			}
			return est
		}
		seen += float64(n)
	}
	return float64(s.Max)
}
