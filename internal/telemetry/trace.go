package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one entry of the bounded event trace: a named occurrence (a kill,
// an epoch expiry, a process exit) stamped with nanoseconds since the trace
// was enabled.
type Event struct {
	Nanos int64  `json:"ns"`
	Name  string `json:"event"`
	PID   int32  `json:"pid,omitempty"`
	Value uint64 `json:"value,omitempty"`
}

// Trace is a bounded ring of events. Emitting overwrites the oldest entry
// once the ring is full, so a long run keeps the most recent window — the
// part that explains why a process died — at a fixed memory cost.
type Trace struct {
	mu    sync.Mutex
	buf   []Event
	next  uint64 // total events emitted; next%len(buf) is the write slot
	start time.Time
}

// EnableTrace attaches a bounded event-trace ring of the given capacity
// (minimum 16) to the registry and returns it. Until this is called,
// Metrics.Event is one atomic pointer load and a branch. A second call
// returns the ring already attached — the capacity of the first call wins —
// so two components enabling tracing on a shared registry cannot silently
// discard each other's retained events.
func (m *Metrics) EnableTrace(capacity int) *Trace {
	if t := m.trace.Load(); t != nil {
		return t
	}
	if capacity < 16 {
		capacity = 16
	}
	t := &Trace{buf: make([]Event, 0, capacity), start: time.Now()}
	if m.trace.CompareAndSwap(nil, t) {
		return t
	}
	return m.trace.Load()
}

// Trace returns the attached trace ring, or nil when tracing is disabled.
func (m *Metrics) Trace() *Trace { return m.trace.Load() }

// Event records a trace event when tracing is enabled, and is a near-free
// no-op otherwise. Intended for cold paths (kills, expiries, lifecycle
// transitions), not per-message instrumentation.
func (m *Metrics) Event(name string, pid int32, value uint64) {
	if t := m.trace.Load(); t != nil {
		t.emit(Event{Name: name, PID: pid, Value: value})
	}
}

func (t *Trace) emit(e Event) {
	t.mu.Lock()
	e.Nanos = time.Since(t.start).Nanoseconds()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.next%uint64(len(t.buf))] = e
	}
	t.next++
	t.mu.Unlock()
}

// Len reports the number of events currently held (capped at capacity).
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Dropped reports how many events were overwritten because the ring was full.
func (t *Trace) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next - uint64(len(t.buf))
}

// Events returns the retained events oldest-first.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if len(t.buf) == cap(t.buf) && t.next > uint64(len(t.buf)) {
		at := int(t.next % uint64(len(t.buf)))
		out = append(out, t.buf[at:]...)
		out = append(out, t.buf[:at]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// WriteJSONL writes the retained events oldest-first, one JSON object per
// line.
func (t *Trace) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range t.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
