package telemetry

import "time"

// This file implements the per-process flight recorder: a fixed-slot ring of
// compact records the verifier hot path stamps once per delivered message and
// the kernel stamps with lifecycle events (register/fork/gate/epoch/kill).
// When the process dies the ring is frozen in place — the last N records
// before the kill are exactly the black-box window a postmortem needs.
//
// Concurrency model: a FlightRecorder has NO internal synchronization. Every
// recorder belongs to exactly one verifier procCtx, and every access — hot
// stamps from the delivery loop, lifecycle stamps relayed from the kernel,
// the freeze, and the snapshot read — happens under that context's shard
// mutex. Single writer domain, plain stores: the per-message stamp is a
// bounds-free ring write plus an increment, no atomics, no allocation, no
// time.Now (wall-clock stamps are reserved for the cold lifecycle events).

// FlightKind distinguishes the two record classes sharing the ring.
type FlightKind uint8

const (
	// FlightMessage is a per-message stamp from the verifier delivery path.
	FlightMessage FlightKind = iota + 1
	// FlightLifecycle is a process-lifecycle stamp (register, fork, gate
	// stall, epoch expiry, kill, shard poison).
	FlightLifecycle
)

// FlightCode is the record's outcome (message records) or event (lifecycle
// records). The two ranges are disjoint so a code renders unambiguously.
type FlightCode uint8

// Message outcomes: the policy-chain result for one delivered message.
const (
	// FlightOK: every attached policy passed the message.
	FlightOK FlightCode = iota
	// FlightViolated: a policy's Handle returned a violation.
	FlightViolated
	// FlightSealerReject: a sealer refused to authenticate the message.
	FlightSealerReject
	// FlightSeqGap: the §3.1.1 message-counter check failed.
	FlightSeqGap
	// FlightPolicyPanic: a policy panicked evaluating the message (contained
	// and converted to an attributed kill).
	FlightPolicyPanic
)

// Lifecycle events. Offset so no code collides with a message outcome.
const (
	// FlightRegistered: the process enabled HerQules.
	FlightRegistered FlightCode = iota + 32
	// FlightForked: this context was cloned from a parent (value = parent PID).
	FlightForked
	// FlightKilled: the kill decision for this process (stamped at freeze).
	FlightKilled
	// FlightGateStall: a gated system call waited for validation
	// (value = stall nanoseconds).
	FlightGateStall
	// FlightEpochExpired: the synchronization epoch expired at the gate
	// (value = syscall number).
	FlightEpochExpired
	// FlightDegradedAllow: an expired epoch was bypassed under the log-only
	// degraded policy (value = syscall number).
	FlightDegradedAllow
	// FlightShardPoisoned: the verifier shard hosting this context was
	// poisoned (value = shard index).
	FlightShardPoisoned
	// FlightLeaseGranted: the networked plane admitted this process and
	// granted its connection lease (value = lease nanoseconds).
	FlightLeaseGranted
	// FlightLeaseRenewed: a severed session resumed before its lease ran
	// out (value = resume count). Stamped on resume, not on every
	// heartbeat — heartbeats would flood the bounded ring.
	FlightLeaseRenewed
	// FlightLeaseExpired: the connection lease ran out and the process was
	// killed fail-closed (value = nanoseconds past the deadline).
	FlightLeaseExpired
)

var flightCodeNames = map[FlightCode]string{
	FlightOK:            "ok",
	FlightViolated:      "violation",
	FlightSealerReject:  "sealer-reject",
	FlightSeqGap:        "seq-violation",
	FlightPolicyPanic:   "policy-panic",
	FlightRegistered:    "registered",
	FlightForked:        "forked",
	FlightKilled:        "killed",
	FlightGateStall:     "gate-stall",
	FlightEpochExpired:  "epoch-expired",
	FlightDegradedAllow: "degraded-allow",
	FlightShardPoisoned: "shard-poisoned",
	FlightLeaseGranted:  "lease-granted",
	FlightLeaseRenewed:  "lease-renewed",
	FlightLeaseExpired:  "lease-expired",
}

func (c FlightCode) String() string {
	if s, ok := flightCodeNames[c]; ok {
		return s
	}
	return "code(" + itoa(uint64(c)) + ")"
}

// itoa is a minimal uint formatter so String needs no fmt import.
func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// FlightRecord is one slot of the ring: 32 bytes, plain data, no pointers.
// Message records carry Seq/Op/Arg (an XOR digest of the message arguments —
// enough to correlate with the sender's stream without copying 24 bytes of
// payload per message); lifecycle records carry the event payload in Arg and
// a wall-clock stamp in Nanos. Message records leave Nanos zero: reading the
// clock per message would dominate the stamp's cost budget.
type FlightRecord struct {
	Seq   uint64
	Arg   uint64
	Nanos int64
	PID   int32
	Op    uint16
	Kind  FlightKind
	Code  FlightCode
}

// Flight-recorder sizing bounds. NewFlightRecorder rounds the requested slot
// count up to a power of two within [MinFlightSlots, MaxFlightSlots]; the
// default the facade uses is DefaultFlightSlots.
const (
	MinFlightSlots     = 16
	MaxFlightSlots     = 1 << 16
	DefaultFlightSlots = 256
)

// FlightRecorder is the fixed-slot ring. All methods must be called under the
// owning shard's mutex (see the package comment above); none allocate after
// construction except Records, which copies the window out.
type FlightRecorder struct {
	buf    []FlightRecord
	mask   uint64
	next   uint64 // total records ever stamped; next&mask is the write slot
	frozen bool
}

// NewFlightRecorder allocates a ring of at least slots records (rounded up to
// a power of two, clamped to [MinFlightSlots, MaxFlightSlots]).
func NewFlightRecorder(slots int) *FlightRecorder {
	n := MinFlightSlots
	for n < slots && n < MaxFlightSlots {
		n <<= 1
	}
	return &FlightRecorder{buf: make([]FlightRecord, n), mask: uint64(n - 1)}
}

// StampMessage records one delivered message's policy-chain outcome. This is
// the hot-path stamp: one frozen check, one slot store, one increment.
func (r *FlightRecorder) StampMessage(pid int32, op uint16, seq, arg uint64, code FlightCode) {
	if r.frozen {
		return
	}
	// Masking with len-1 (not the equivalent r.mask field) lets the compiler
	// prove the index in bounds and drop the check from the hot path; the
	// len==0 guard supplies the proof and never fires (the ring is always
	// allocated at least MinFlightSlots deep).
	buf := r.buf
	if len(buf) == 0 {
		return
	}
	b := &buf[r.next&uint64(len(buf)-1)]
	b.Seq = seq
	b.Arg = arg
	b.Nanos = 0
	b.PID = pid
	b.Op = op
	b.Kind = FlightMessage
	b.Code = code
	r.next++
}

// StampEvent records one lifecycle event with a wall-clock stamp. Cold path:
// registrations, forks, gate stalls, epoch expiries, kills.
func (r *FlightRecorder) StampEvent(pid int32, code FlightCode, value uint64) {
	if r.frozen {
		return
	}
	b := &r.buf[r.next&r.mask]
	b.Seq = 0
	b.Arg = value
	b.Nanos = time.Now().UnixNano()
	b.PID = pid
	b.Op = 0
	b.Kind = FlightLifecycle
	b.Code = code
	r.next++
}

// Freeze stops the ring: every later stamp is a no-op, so the window captured
// at the kill decision survives any messages still in flight. Idempotent.
func (r *FlightRecorder) Freeze() { r.frozen = true }

// Frozen reports whether the ring has been frozen.
func (r *FlightRecorder) Frozen() bool { return r.frozen }

// Total reports how many records were ever stamped (including overwritten).
func (r *FlightRecorder) Total() uint64 { return r.next }

// Overwritten reports how many records the ring has discarded: stamps beyond
// capacity overwrite the oldest slot.
func (r *FlightRecorder) Overwritten() uint64 {
	if n := uint64(len(r.buf)); r.next > n {
		return r.next - n
	}
	return 0
}

// Cap reports the ring capacity in records.
func (r *FlightRecorder) Cap() int { return len(r.buf) }

// Records returns a copy of the retained window, oldest first.
func (r *FlightRecorder) Records() []FlightRecord {
	cnt := r.next
	if n := uint64(len(r.buf)); cnt > n {
		cnt = n
	}
	out := make([]FlightRecord, 0, cnt)
	for i := r.next - cnt; i < r.next; i++ {
		out = append(out, r.buf[i&r.mask])
	}
	return out
}

// FlightStamper relays lifecycle events into a process's flight recorder
// across the kernel/verifier boundary: the kernel knows the events (gate
// stalls, epoch expiries, degraded bypasses) but the verifier owns the rings.
// *verifier.Verifier implements it by locking the owning shard, so the kernel
// must only call it OUTSIDE its own mutex — the shard lock is taken inside.
type FlightStamper interface {
	StampFlightEvent(pid int32, code FlightCode, value uint64)
}
