// Package telemetry is the low-overhead metrics and event-tracing subsystem
// shared by the kernel gate, the verifier pipeline and the IPC channels. The
// paper's evaluation (§5.2–§5.4) is built on per-component measurements —
// syscall stall time, message rates, queue occupancy, metadata entries — and
// Burow et al. argue that CFI systems are only comparable when such overheads
// are measured consistently; this package provides that consistent substrate.
//
// Design constraints, in order:
//
//  1. Hot-path cost: one uncontended atomic add per counter update. Counters
//     are lane-striped (one cache-line-padded cell per lane, typically one
//     lane per verifier shard) so concurrent writers never share a line.
//  2. Always safe to leave wired: every instrumented component guards its
//     telemetry with a single nil check, so an un-instrumented run pays one
//     predictable branch per event.
//  3. Readable without stopping the world: Snapshot reads every cell with
//     atomic loads; Diff subtracts two snapshots so an experiment can report
//     exactly the interval it measured.
//
// The optional Trace is a bounded ring of timestamped events (kills, epoch
// expiries, exits) that can be dumped as JSONL for offline inspection; when
// disabled, emitting an event is one atomic pointer load.
package telemetry

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// cacheLine is the assumed coherence granularity; lane striping pads to this
// size so two lanes never false-share.
const cacheLine = 64

// counterLane is one padded counter cell.
type counterLane struct {
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// Counter is a monotonically increasing, lane-striped event counter. Writers
// that know their lane (a verifier shard index, a worker id) use AddAt to
// stay contention-free; writers without a natural lane use Add, which is a
// single atomic add on lane 0.
type Counter struct {
	name  string
	lanes []counterLane
}

// Name reports the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n on lane 0.
func (c *Counter) Add(n uint64) { c.lanes[0].v.Add(n) }

// Inc increments the counter by one on lane 0.
func (c *Counter) Inc() { c.lanes[0].v.Add(1) }

// AddAt increments the counter by n on the given lane (wrapped into range),
// keeping concurrent writers on distinct cache lines.
func (c *Counter) AddAt(lane int, n uint64) {
	c.lanes[uint(lane)%uint(len(c.lanes))].v.Add(n)
}

// Value returns the sum across lanes.
func (c *Counter) Value() uint64 {
	var sum uint64
	for i := range c.lanes {
		sum += c.lanes[i].v.Load()
	}
	return sum
}

// Lanes reports the stripe width.
func (c *Counter) Lanes() int { return len(c.lanes) }

// Peak is a high-water mark: Observe records v if it exceeds the current
// maximum. Used for queue-occupancy high-water marks where a full histogram
// would be overkill.
type Peak struct {
	name string
	v    atomic.Uint64
}

// Name reports the peak's registered name.
func (p *Peak) Name() string { return p.name }

// Observe raises the high-water mark to v when v exceeds it.
func (p *Peak) Observe(v uint64) {
	for {
		cur := p.v.Load()
		if v <= cur || p.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the high-water mark.
func (p *Peak) Value() uint64 { return p.v.Load() }

// Metrics is a registry of named counters, histograms and peaks plus an
// optional event trace. All lookup methods are get-or-create and safe for
// concurrent use; instruments should be resolved once at wiring time and
// cached, never looked up on a hot path.
type Metrics struct {
	mu       sync.Mutex
	lanes    int
	counters map[string]*Counter
	hists    map[string]*Histogram
	peaks    map[string]*Peak
	trace    atomic.Pointer[Trace]
	sampler  atomic.Pointer[LatencySampler]
}

// New creates a registry whose instruments default to the given stripe width
// (lanes <= 0 selects GOMAXPROCS).
func New(lanes int) *Metrics {
	if lanes <= 0 {
		lanes = runtime.GOMAXPROCS(0)
	}
	return &Metrics{
		lanes:    lanes,
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		peaks:    make(map[string]*Peak),
	}
}

// Counter returns the named counter with the default stripe width, creating
// it on first use.
func (m *Metrics) Counter(name string) *Counter { return m.CounterLanes(name, 0) }

// CounterLanes returns the named counter, creating it with the given stripe
// width (<= 0 selects the registry default). The width of an existing counter
// is not changed.
func (m *Metrics) CounterLanes(name string, lanes int) *Counter {
	if lanes <= 0 {
		lanes = m.lanes
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, lanes: make([]counterLane, lanes)}
	m.counters[name] = c
	return c
}

// Histogram returns the named histogram with the default stripe width,
// creating it on first use.
func (m *Metrics) Histogram(name string) *Histogram { return m.HistogramLanes(name, 0) }

// HistogramLanes returns the named histogram, creating it with the given
// stripe width (<= 0 selects the registry default).
func (m *Metrics) HistogramLanes(name string, lanes int) *Histogram {
	if lanes <= 0 {
		lanes = m.lanes
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok := m.hists[name]; ok {
		return h
	}
	h := &Histogram{name: name, lanes: make([]histLane, lanes)}
	m.hists[name] = h
	return h
}

// Peak returns the named high-water mark, creating it on first use.
func (m *Metrics) Peak(name string) *Peak {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p, ok := m.peaks[name]; ok {
		return p
	}
	p := &Peak{name: name}
	m.peaks[name] = p
	return p
}

// CounterSnapshot is a point-in-time counter reading.
type CounterSnapshot struct {
	Total uint64
	// Lanes carries the per-lane breakdown when the counter is striped
	// wider than one lane (per-shard message counts, for example).
	Lanes []uint64
}

// Snapshot is a consistent-enough point-in-time reading of every instrument
// in a registry: each cell is read atomically, so totals are exact per
// instrument even while writers are live.
type Snapshot struct {
	Counters   map[string]CounterSnapshot
	Histograms map[string]HistogramSnapshot
	Peaks      map[string]uint64
}

// Snapshot reads every registered instrument.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	counters := make([]*Counter, 0, len(m.counters))
	for _, c := range m.counters {
		counters = append(counters, c)
	}
	hists := make([]*Histogram, 0, len(m.hists))
	for _, h := range m.hists {
		hists = append(hists, h)
	}
	peaks := make([]*Peak, 0, len(m.peaks))
	for _, p := range m.peaks {
		peaks = append(peaks, p)
	}
	m.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]CounterSnapshot, len(counters)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
		Peaks:      make(map[string]uint64, len(peaks)),
	}
	for _, c := range counters {
		cs := CounterSnapshot{Lanes: make([]uint64, len(c.lanes))}
		for i := range c.lanes {
			cs.Lanes[i] = c.lanes[i].v.Load()
			cs.Total += cs.Lanes[i]
		}
		s.Counters[c.name] = cs
	}
	for _, h := range hists {
		s.Histograms[h.name] = h.snapshot()
	}
	for _, p := range peaks {
		s.Peaks[p.name] = p.Value()
	}
	return s
}

// Diff returns the change from prev to s: counters and histograms subtract
// (an instrument absent from prev counts from zero), peaks keep the current
// high-water mark.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   make(map[string]CounterSnapshot, len(s.Counters)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
		Peaks:      make(map[string]uint64, len(s.Peaks)),
	}
	for name, cs := range s.Counters {
		pc := prev.Counters[name]
		out := CounterSnapshot{Total: cs.Total - pc.Total, Lanes: make([]uint64, len(cs.Lanes))}
		for i, v := range cs.Lanes {
			if i < len(pc.Lanes) {
				v -= pc.Lanes[i]
			}
			out.Lanes[i] = v
		}
		d.Counters[name] = out
	}
	for name, hs := range s.Histograms {
		d.Histograms[name] = hs.diff(prev.Histograms[name])
	}
	for name, v := range s.Peaks {
		d.Peaks[name] = v
	}
	return d
}

// Format renders the snapshot as an aligned, name-sorted text block:
// counters with per-lane breakdowns, histograms with count/mean/p50/p90/
// p99/max, peaks as plain values.
func (s Snapshot) Format() string {
	var sb strings.Builder
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cs := s.Counters[name]
		fmt.Fprintf(&sb, "%-32s %12d", name, cs.Total)
		if len(cs.Lanes) > 1 && cs.Total > 0 {
			lanes := make([]string, len(cs.Lanes))
			for i, v := range cs.Lanes {
				lanes[i] = fmt.Sprintf("%d", v)
			}
			fmt.Fprintf(&sb, "  [%s]", strings.Join(lanes, " "))
		}
		sb.WriteByte('\n')
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		hs := s.Histograms[name]
		fmt.Fprintf(&sb, "%-32s count=%d mean=%.0f p50=%.0f p90=%.0f p99=%.0f max=%d\n",
			name, hs.Count, hs.Mean(),
			hs.Quantile(0.50), hs.Quantile(0.90), hs.Quantile(0.99), hs.Max)
	}
	names = names[:0]
	for name := range s.Peaks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&sb, "%-32s %12d  (high-water)\n", name, s.Peaks[name])
	}
	return sb.String()
}
