package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterStriping(t *testing.T) {
	m := New(4)
	c := m.Counter("c")
	if c.Lanes() != 4 {
		t.Fatalf("lanes = %d, want 4", c.Lanes())
	}
	c.Add(1)
	c.AddAt(1, 10)
	c.AddAt(2, 100)
	c.AddAt(6, 1000) // wraps to lane 2
	if c.Value() != 1111 {
		t.Errorf("Value = %d, want 1111", c.Value())
	}
	s := m.Snapshot()
	cs := s.Counters["c"]
	if cs.Total != 1111 {
		t.Errorf("snapshot total = %d", cs.Total)
	}
	if cs.Lanes[2] != 1100 {
		t.Errorf("lane 2 = %d, want 1100", cs.Lanes[2])
	}
}

func TestCounterGetOrCreate(t *testing.T) {
	m := New(2)
	if m.Counter("x") != m.Counter("x") {
		t.Error("same name returned distinct counters")
	}
	if m.Histogram("h") != m.Histogram("h") {
		t.Error("same name returned distinct histograms")
	}
	if m.Peak("p") != m.Peak("p") {
		t.Error("same name returned distinct peaks")
	}
}

func TestPeakKeepsMaximum(t *testing.T) {
	m := New(1)
	p := m.Peak("hw")
	p.Observe(5)
	p.Observe(3)
	p.Observe(9)
	p.Observe(7)
	if p.Value() != 9 {
		t.Errorf("peak = %d, want 9", p.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	m := New(1)
	h := m.Histogram("lat")
	// 1000 samples uniform on [0, 1000): quantile estimates must land
	// within one power-of-two bucket of the true value.
	for i := 0; i < 1000; i++ {
		h.Observe(uint64(i))
	}
	s := m.Snapshot().Histograms["lat"]
	if s.Count != 1000 || s.Max != 999 {
		t.Fatalf("count=%d max=%d", s.Count, s.Max)
	}
	if mean := s.Mean(); math.Abs(mean-499.5) > 0.5 {
		t.Errorf("mean = %f", mean)
	}
	p50 := s.Quantile(0.50)
	if p50 < 256 || p50 > 1024 {
		t.Errorf("p50 = %f, want within bucket of ~500", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 512 || p99 > 999 {
		t.Errorf("p99 = %f, want within bucket of ~990", p99)
	}
	if q := s.Quantile(1.0); q != 999 {
		t.Errorf("p100 = %f, want exactly max", q)
	}
}

func TestHistogramZeroAndEmpty(t *testing.T) {
	m := New(1)
	h := m.Histogram("z")
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
	h.Observe(0)
	s := m.Snapshot().Histograms["z"]
	if s.Count != 1 || s.Buckets[0] != 1 {
		t.Errorf("zero observation landed wrong: %+v", s)
	}
	if s.Quantile(0.5) != 0 {
		t.Errorf("p50 of all-zero = %f", s.Quantile(0.5))
	}
}

func TestSnapshotDiff(t *testing.T) {
	m := New(2)
	c := m.Counter("msgs")
	h := m.Histogram("batch")
	c.Add(10)
	h.Observe(4)
	before := m.Snapshot()
	c.AddAt(1, 5)
	h.Observe(8)
	h.Observe(8)
	diff := m.Snapshot().Diff(before)
	if diff.Counters["msgs"].Total != 5 {
		t.Errorf("diff counter = %d, want 5", diff.Counters["msgs"].Total)
	}
	if diff.Counters["msgs"].Lanes[1] != 5 {
		t.Errorf("diff lane 1 = %d", diff.Counters["msgs"].Lanes[1])
	}
	hs := diff.Histograms["batch"]
	if hs.Count != 2 || hs.Sum != 16 {
		t.Errorf("diff histogram = %+v", hs)
	}
	// An instrument created after the first snapshot diffs from zero.
	m.Counter("late").Add(3)
	diff2 := m.Snapshot().Diff(before)
	if diff2.Counters["late"].Total != 3 {
		t.Errorf("late counter diff = %d", diff2.Counters["late"].Total)
	}
}

func TestFormatMentionsEveryInstrument(t *testing.T) {
	m := New(2)
	m.Counter("alpha").Add(7)
	m.Histogram("beta").Observe(3)
	m.Peak("gamma").Observe(11)
	out := m.Snapshot().Format()
	for _, want := range []string{"alpha", "beta", "gamma", "p50", "p99", "high-water"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("format output missing %q:\n%s", want, out)
		}
	}
}

func TestTraceRingBoundedAndOrdered(t *testing.T) {
	m := New(1)
	if m.Trace() != nil {
		t.Fatal("trace enabled by default")
	}
	m.Event("ignored", 0, 0) // no-op while disabled
	tr := m.EnableTrace(16)
	for i := 0; i < 40; i++ {
		m.Event("e", int32(i), uint64(i))
	}
	if tr.Len() != 16 {
		t.Fatalf("ring len = %d, want 16", tr.Len())
	}
	if tr.Dropped() != 24 {
		t.Errorf("dropped = %d, want 24", tr.Dropped())
	}
	evs := tr.Events()
	for i, e := range evs {
		if want := int32(24 + i); e.PID != want {
			t.Fatalf("event %d pid = %d, want %d (oldest-first after wrap)", i, e.PID, want)
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		lines++
	}
	if lines != 16 {
		t.Errorf("JSONL lines = %d, want 16", lines)
	}
}

// TestConcurrentInstruments exercises every write path from many goroutines;
// run under -race this is the package's memory-safety proof.
func TestConcurrentInstruments(t *testing.T) {
	m := New(4)
	c := m.Counter("c")
	h := m.Histogram("h")
	p := m.Peak("p")
	m.EnableTrace(64)
	const workers = 8
	const per = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.AddAt(w, 1)
				h.ObserveAt(w, uint64(i))
				p.Observe(uint64(i))
				if i%500 == 0 {
					m.Event("tick", int32(w), uint64(i))
					_ = m.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if got := s.Counters["c"].Total; got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := s.Histograms["h"].Count; got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	if s.Peaks["p"] != per-1 {
		t.Errorf("peak = %d, want %d", s.Peaks["p"], per-1)
	}
}
