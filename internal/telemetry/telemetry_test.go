package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterStriping(t *testing.T) {
	m := New(4)
	c := m.Counter("c")
	if c.Lanes() != 4 {
		t.Fatalf("lanes = %d, want 4", c.Lanes())
	}
	c.Add(1)
	c.AddAt(1, 10)
	c.AddAt(2, 100)
	c.AddAt(6, 1000) // wraps to lane 2
	if c.Value() != 1111 {
		t.Errorf("Value = %d, want 1111", c.Value())
	}
	s := m.Snapshot()
	cs := s.Counters["c"]
	if cs.Total != 1111 {
		t.Errorf("snapshot total = %d", cs.Total)
	}
	if cs.Lanes[2] != 1100 {
		t.Errorf("lane 2 = %d, want 1100", cs.Lanes[2])
	}
}

func TestCounterGetOrCreate(t *testing.T) {
	m := New(2)
	if m.Counter("x") != m.Counter("x") {
		t.Error("same name returned distinct counters")
	}
	if m.Histogram("h") != m.Histogram("h") {
		t.Error("same name returned distinct histograms")
	}
	if m.Peak("p") != m.Peak("p") {
		t.Error("same name returned distinct peaks")
	}
}

func TestPeakKeepsMaximum(t *testing.T) {
	m := New(1)
	p := m.Peak("hw")
	p.Observe(5)
	p.Observe(3)
	p.Observe(9)
	p.Observe(7)
	if p.Value() != 9 {
		t.Errorf("peak = %d, want 9", p.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	m := New(1)
	h := m.Histogram("lat")
	// 1000 samples uniform on [0, 1000): quantile estimates must land
	// within one power-of-two bucket of the true value.
	for i := 0; i < 1000; i++ {
		h.Observe(uint64(i))
	}
	s := m.Snapshot().Histograms["lat"]
	if s.Count != 1000 || s.Max != 999 {
		t.Fatalf("count=%d max=%d", s.Count, s.Max)
	}
	if mean := s.Mean(); math.Abs(mean-499.5) > 0.5 {
		t.Errorf("mean = %f", mean)
	}
	p50 := s.Quantile(0.50)
	if p50 < 256 || p50 > 1024 {
		t.Errorf("p50 = %f, want within bucket of ~500", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 512 || p99 > 999 {
		t.Errorf("p99 = %f, want within bucket of ~990", p99)
	}
	if q := s.Quantile(1.0); q != 999 {
		t.Errorf("p100 = %f, want exactly max", q)
	}
}

func TestHistogramZeroAndEmpty(t *testing.T) {
	m := New(1)
	h := m.Histogram("z")
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
	h.Observe(0)
	s := m.Snapshot().Histograms["z"]
	if s.Count != 1 || s.Buckets[0] != 1 {
		t.Errorf("zero observation landed wrong: %+v", s)
	}
	if s.Quantile(0.5) != 0 {
		t.Errorf("p50 of all-zero = %f", s.Quantile(0.5))
	}
}

func TestSnapshotDiff(t *testing.T) {
	m := New(2)
	c := m.Counter("msgs")
	h := m.Histogram("batch")
	c.Add(10)
	h.Observe(4)
	before := m.Snapshot()
	c.AddAt(1, 5)
	h.Observe(8)
	h.Observe(8)
	diff := m.Snapshot().Diff(before)
	if diff.Counters["msgs"].Total != 5 {
		t.Errorf("diff counter = %d, want 5", diff.Counters["msgs"].Total)
	}
	if diff.Counters["msgs"].Lanes[1] != 5 {
		t.Errorf("diff lane 1 = %d", diff.Counters["msgs"].Lanes[1])
	}
	hs := diff.Histograms["batch"]
	if hs.Count != 2 || hs.Sum != 16 {
		t.Errorf("diff histogram = %+v", hs)
	}
	// An instrument created after the first snapshot diffs from zero.
	m.Counter("late").Add(3)
	diff2 := m.Snapshot().Diff(before)
	if diff2.Counters["late"].Total != 3 {
		t.Errorf("late counter diff = %d", diff2.Counters["late"].Total)
	}
}

func TestFormatMentionsEveryInstrument(t *testing.T) {
	m := New(2)
	m.Counter("alpha").Add(7)
	m.Histogram("beta").Observe(3)
	m.Peak("gamma").Observe(11)
	out := m.Snapshot().Format()
	for _, want := range []string{"alpha", "beta", "gamma", "p50", "p99", "high-water"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("format output missing %q:\n%s", want, out)
		}
	}
}

func TestTraceRingBoundedAndOrdered(t *testing.T) {
	m := New(1)
	if m.Trace() != nil {
		t.Fatal("trace enabled by default")
	}
	m.Event("ignored", 0, 0) // no-op while disabled
	tr := m.EnableTrace(16)
	for i := 0; i < 40; i++ {
		m.Event("e", int32(i), uint64(i))
	}
	if tr.Len() != 16 {
		t.Fatalf("ring len = %d, want 16", tr.Len())
	}
	if tr.Dropped() != 24 {
		t.Errorf("dropped = %d, want 24", tr.Dropped())
	}
	evs := tr.Events()
	for i, e := range evs {
		if want := int32(24 + i); e.PID != want {
			t.Fatalf("event %d pid = %d, want %d (oldest-first after wrap)", i, e.PID, want)
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		lines++
	}
	if lines != 16 {
		t.Errorf("JSONL lines = %d, want 16", lines)
	}
}

// TestConcurrentInstruments exercises every write path from many goroutines;
// run under -race this is the package's memory-safety proof.
func TestConcurrentInstruments(t *testing.T) {
	m := New(4)
	c := m.Counter("c")
	h := m.Histogram("h")
	p := m.Peak("p")
	m.EnableTrace(64)
	const workers = 8
	const per = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.AddAt(w, 1)
				h.ObserveAt(w, uint64(i))
				p.Observe(uint64(i))
				if i%500 == 0 {
					m.Event("tick", int32(w), uint64(i))
					_ = m.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if got := s.Counters["c"].Total; got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := s.Histograms["h"].Count; got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	if s.Peaks["p"] != per-1 {
		t.Errorf("peak = %d, want %d", s.Peaks["p"], per-1)
	}
}

// TestEnableTraceIdempotent is the regression test for the double-enable bug:
// a second EnableTrace used to replace the ring and silently discard every
// retained event. It must return the existing ring instead.
func TestEnableTraceIdempotent(t *testing.T) {
	m := New(1)
	first := m.EnableTrace(64)
	m.Event("before", 1, 0)
	m.Event("before", 2, 0)

	second := m.EnableTrace(16) // different capacity: first call's wins
	if second != first {
		t.Fatalf("second EnableTrace returned a new ring, discarding retained events")
	}
	if got := m.Trace(); got != first {
		t.Fatalf("Trace() = %p, want the original ring %p", got, first)
	}
	if n := first.Len(); n != 2 {
		t.Fatalf("retained events = %d, want 2", n)
	}
	m.Event("after", 3, 0)
	evs := first.Events()
	if len(evs) != 3 || evs[0].Name != "before" || evs[2].Name != "after" {
		t.Fatalf("events after re-enable = %+v", evs)
	}
}

// TestQuantileEdgeCases covers the histogram-quantile boundaries: empty
// histogram, a single sample (every quantile must return exactly it), and all
// samples in the top bucket (p99 must not index past the last bucket and must
// stay clamped to the exact Max).
func TestQuantileEdgeCases(t *testing.T) {
	var empty HistogramSnapshot
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty.Quantile(%v) = %v, want 0", q, got)
		}
	}
	if empty.Mean() != 0 {
		t.Errorf("empty.Mean() = %v, want 0", empty.Mean())
	}

	m := New(1)
	single := m.Histogram("single")
	single.Observe(5)
	ss := m.Snapshot().Histograms["single"]
	for _, q := range []float64{0.01, 0.5, 0.9, 0.99, 1} {
		if got := ss.Quantile(q); got != 5 {
			t.Errorf("single-sample Quantile(%v) = %v, want exactly 5 (clamped to Max)", q, got)
		}
	}
	// Out-of-range q values are clamped, not an index error.
	if got := ss.Quantile(-1); got < 0 || got > 5 {
		t.Errorf("Quantile(-1) = %v, want within [0, 5]", got)
	}
	if got := ss.Quantile(2); got != 5 {
		t.Errorf("Quantile(2) = %v, want 5", got)
	}

	// All samples land in the very last bucket (values with bit 63 set):
	// the quantile walk must terminate at the final bucket, never read past
	// it, and the interpolated estimate must clamp to the recorded Max.
	top := m.Histogram("top")
	const hi = uint64(1) << 63
	for i := uint64(0); i < 10; i++ {
		top.Observe(hi + i)
	}
	ts := m.Snapshot().Histograms["top"]
	for _, q := range []float64{0.5, 0.99, 1} {
		got := ts.Quantile(q)
		if math.IsNaN(got) || got < float64(hi) || got > float64(ts.Max) {
			t.Errorf("top-bucket Quantile(%v) = %v, want within [2^63, Max=%d]", q, got, ts.Max)
		}
	}
	if ts.Max != hi+9 {
		t.Errorf("Max = %d, want %d", ts.Max, hi+9)
	}
}

// TestSnapshotDiffFewerSeriesInBase diffs against a base snapshot taken
// before some instruments were registered: the missing series must count from
// zero rather than panic or vanish.
func TestSnapshotDiffFewerSeriesInBase(t *testing.T) {
	m := New(2)
	m.Counter("old").Add(7)
	m.Histogram("oldh").Observe(3)
	base := m.Snapshot()

	m.Counter("old").Add(5)
	m.Counter("new").Add(11)
	m.Histogram("oldh").Observe(3)
	m.Histogram("newh").Observe(9)
	m.Peak("newp").Observe(42)

	d := m.Snapshot().Diff(base)
	if got := d.Counters["old"].Total; got != 5 {
		t.Errorf("old counter diff = %d, want 5", got)
	}
	if got := d.Counters["new"].Total; got != 11 {
		t.Errorf("counter missing from base: diff = %d, want full value 11", got)
	}
	if got := d.Histograms["oldh"].Count; got != 1 {
		t.Errorf("oldh diff count = %d, want 1", got)
	}
	nh := d.Histograms["newh"]
	if nh.Count != 1 || nh.Sum != 9 {
		t.Errorf("histogram missing from base: diff = %+v, want count=1 sum=9", nh)
	}
	if got := d.Peaks["newp"]; got != 42 {
		t.Errorf("peak missing from base = %d, want 42", got)
	}
}

// TestHistogramSnapshotRecord checks the single-writer Record helper used for
// private per-entity histograms (the kernel's per-PID stall distribution).
func TestHistogramSnapshotRecord(t *testing.T) {
	var s HistogramSnapshot
	for _, v := range []uint64{0, 1, 5, 1000} {
		s.Record(v)
	}
	if s.Count != 4 || s.Sum != 1006 || s.Max != 1000 {
		t.Fatalf("after Record: %+v", s)
	}
	if s.Buckets[0] != 1 { // the zero observation
		t.Errorf("zero bucket = %d, want 1", s.Buckets[0])
	}
	if got := s.Quantile(1); got != 1000 {
		t.Errorf("Quantile(1) = %v, want 1000", got)
	}
}

// TestBucketUpperBound pins the le-boundary mapping the Prometheus exposition
// relies on: bucket i holds [2^(i-1), 2^i), so its inclusive bound is 2^i-1.
func TestBucketUpperBound(t *testing.T) {
	cases := map[int]uint64{0: 0, 1: 1, 2: 3, 3: 7, 10: 1023, 64: ^uint64(0), 70: ^uint64(0)}
	for i, want := range cases {
		if got := BucketUpperBound(i); got != want {
			t.Errorf("BucketUpperBound(%d) = %d, want %d", i, got, want)
		}
	}
	var s HistogramSnapshot
	s.Record(6) // lands in bucket 3: [4, 8)
	if s.Buckets[3] != 1 || BucketUpperBound(3) < 6 {
		t.Errorf("sample 6 not covered by its bucket's upper bound")
	}
}

// TestLatencySampler exercises the 1-in-N stamp table: sampling decision,
// stamp/take round trip, take-once semantics, and idempotent enablement.
func TestLatencySampler(t *testing.T) {
	m := New(1)
	if m.LatencySampler() != nil {
		t.Fatal("sampler attached before EnableLatencySampling")
	}
	s := m.EnableLatencySampling(1000) // rounds up to 1024
	if s.EveryN() != 1024 {
		t.Fatalf("EveryN = %d, want 1024 (rounded up)", s.EveryN())
	}
	if again := m.EnableLatencySampling(64); again != s {
		t.Fatal("second EnableLatencySampling replaced the sampler")
	}
	if s.Sampled(0) {
		t.Error("seq 0 (unset counter) must never sample")
	}
	if s.Sampled(1023) || !s.Sampled(1024) || !s.Sampled(2048) {
		t.Error("sampling points must be exact multiples of EveryN")
	}

	s.Stamp(7, 1024)
	if _, ok := s.Take(7, 2048); ok {
		t.Error("Take matched a different sequence number")
	}
	if _, ok := s.Take(8, 1024); ok {
		t.Error("Take matched a different PID")
	}
	lat, ok := s.Take(7, 1024)
	if !ok || lat < 0 {
		t.Fatalf("Take(7, 1024) = %d, %v; want a non-negative latency", lat, ok)
	}
	if _, ok := s.Take(7, 1024); ok {
		t.Error("second Take returned the consumed stamp")
	}
}

// TestLatencySamplerDefault checks the documented default period.
func TestLatencySamplerDefault(t *testing.T) {
	m := New(1)
	if n := m.EnableLatencySampling(0).EveryN(); n != DefaultSampleEvery {
		t.Fatalf("default EveryN = %d, want %d", n, DefaultSampleEvery)
	}
}
