package telemetry

import (
	"sync/atomic"
	"time"
)

// DefaultSampleEvery is the default latency-sampling period: one message in
// 1024 is stamped at send time and matched at validation time, giving a live
// estimate of the paper's "validation lag" (send → validate latency, §5.3)
// at a hot-path cost of one mask-and-branch per message.
const DefaultSampleEvery = 1024

// sampleSlots is the size of the sampler's open-addressed stamp table. The
// table only needs to hold the samples currently in flight between a sender
// and the verifier — at 1-in-1024 sampling and typical queue depths of a few
// thousand messages that is a handful of entries per process; 512 slots keep
// collisions negligible for hundreds of concurrent processes.
const sampleSlots = 512

// sampleSlot is one stamp-table entry: a packed (pid, seq) key and the
// nanosecond send timestamp. Both fields are written and read atomically but
// not as a unit; a concurrent overwrite of the same slot can pair a key with
// a neighbouring stamp's timestamp. That is acceptable by construction —
// sampling estimates a distribution, and colliding stamps are issued within
// nanoseconds of each other — and keeps Stamp/Take lock-free.
type sampleSlot struct {
	key atomic.Uint64
	ts  atomic.Int64
}

// LatencySampler implements 1-in-N end-to-end message-latency sampling: the
// instrumented sender stamps the send time of every N-th message (by its
// per-channel sequence number), and the verifier's shard worker takes the
// stamp back when it validates that message, observing the difference into a
// histogram. N is a power of two so the sampling decision is one AND plus a
// branch on both sides.
type LatencySampler struct {
	mask  uint64
	start time.Time
	slots [sampleSlots]sampleSlot
}

// EnableLatencySampling attaches a latency sampler with the given period to
// the registry and returns it. everyN is rounded up to a power of two;
// everyN <= 0 selects DefaultSampleEvery. Like EnableTrace, a second call
// returns the sampler already attached (the period of the first call wins),
// so several components wiring the same registry share one stamp table.
func (m *Metrics) EnableLatencySampling(everyN int) *LatencySampler {
	if s := m.sampler.Load(); s != nil {
		return s
	}
	if everyN <= 0 {
		everyN = DefaultSampleEvery
	}
	n := uint64(1)
	for n < uint64(everyN) {
		n <<= 1
	}
	s := &LatencySampler{mask: n - 1, start: time.Now()}
	if m.sampler.CompareAndSwap(nil, s) {
		return s
	}
	return m.sampler.Load()
}

// LatencySampler returns the attached sampler, or nil when latency sampling
// is disabled. Components cache the result at wiring time; the hot path then
// pays a nil check.
func (m *Metrics) LatencySampler() *LatencySampler { return m.sampler.Load() }

// EveryN reports the sampling period.
func (s *LatencySampler) EveryN() uint64 { return s.mask + 1 }

// Sampled reports whether the message with the given sequence number is a
// sampling point. Sequence numbers are 1-based across every transport;
// seq 0 (an unset counter) is never sampled, so replayed or hand-built
// streams without counters cannot match stale stamps.
func (s *LatencySampler) Sampled(seq uint64) bool {
	return seq&s.mask == 0 && seq != 0
}

// sampleKey packs the process identity into the high half and the (wrapped)
// sequence number into the low half. A false match would need the same PID
// and two in-flight sequence numbers 2^32 apart — beyond any realistic
// in-flight window.
func sampleKey(pid int32, seq uint64) uint64 {
	return uint64(uint32(pid))<<32 | (seq & 0xffffffff)
}

func (s *LatencySampler) slotFor(pid int32, seq uint64) *sampleSlot {
	h := (uint64(uint32(pid))*2654435761 + seq) // Knuth multiplicative hash
	return &s.slots[h%sampleSlots]
}

// Stamp records "message (pid, seq) was sent now". Called by the sender side
// only for sampling points. The timestamp is written before the key, so a
// concurrent Take that observes the key also observes a timestamp at least
// as fresh as the previous occupant's.
func (s *LatencySampler) Stamp(pid int32, seq uint64) {
	slot := s.slotFor(pid, seq)
	slot.ts.Store(time.Since(s.start).Nanoseconds())
	slot.key.Store(sampleKey(pid, seq))
}

// Take returns the nanoseconds elapsed since (pid, seq) was stamped and
// removes the stamp. ok is false when the stamp is missing — the slot was
// reused by a colliding sample, or the message reached the verifier without
// passing an instrumented sender (inline delivery, replayed streams).
func (s *LatencySampler) Take(pid int32, seq uint64) (nanos int64, ok bool) {
	slot := s.slotFor(pid, seq)
	k := sampleKey(pid, seq)
	if slot.key.Load() != k {
		return 0, false
	}
	ts := slot.ts.Load()
	if !slot.key.CompareAndSwap(k, 0) {
		return 0, false
	}
	d := time.Since(s.start).Nanoseconds() - ts
	if d < 0 {
		d = 0
	}
	return d, true
}
