package vm

import (
	"errors"
	"fmt"

	"herqules/internal/mem"
	"herqules/internal/mir"
)

// Internal unwinding sentinels.
var (
	errHalt   = errors.New("vm: halt")   // exit syscall
	errKilled = errors.New("vm: killed") // kernel killed the process
)

// frame is one activation record. Its storage lives in guest memory
// ([base, base+frameSize) on the regular stack); vals are the SSA register
// file.
type frame struct {
	fn          *mir.Func
	meta        *funcMeta
	args        []uint64
	vals        []uint64
	base        uint64
	inFrameSlot uint64 // where the return slot would live on a plain stack
	retSlot     uint64 // where the return slot actually lives
	retVal      uint64 // the encoded return address pushed at call time
	safeBase    uint64 // base of this frame's safe area (0 on a plain stack)
}

// Run executes the named entry function with integer arguments and returns
// the process outcome. A Process may only be Run once.
func (p *Process) Run(entry string, args ...uint64) *Result {
	fn := p.Mod.Func(entry)
	if fn == nil {
		p.res.Err = fmt.Errorf("vm: no entry function %q", entry)
		return p.res
	}
	ret, err := p.call(fn, args, exitToken)
	switch {
	case err == nil:
		p.res.ExitCode = ret
	case errors.Is(err, errHalt):
		// exit syscall already recorded the code.
	case errors.Is(err, errKilled):
		// Killed fields already recorded.
	default:
		p.res.Err = err
	}
	if p.res.Stats.Messages > 0 && p.checkKilled() {
		// A violation delivered on the final messages (e.g. epilogue
		// checks) still kills the program before it can exit cleanly.
		p.res.Err = nil
	}
	return p.res
}

// call pushes a frame for fn and executes it. retVal is the encoded return
// address stored in the frame's return slot.
func (p *Process) call(fn *mir.Func, args []uint64, retVal uint64) (uint64, error) {
	if fn.Intrinsic {
		return p.intrinsic(fn, args)
	}
	if len(fn.Blocks) == 0 {
		return 0, fmt.Errorf("vm: call of bodyless function @%s", fn.Name)
	}
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > p.res.Stats.MaxDepth {
		p.res.Stats.MaxDepth = p.depth
	}
	if p.depth > 4096 {
		return 0, &mem.Fault{Addr: p.sp, Kind: mem.FaultUnmapped, Need: mem.Write}
	}
	meta := p.funcMeta[fn]
	if p.sp < stackLow+meta.frameSize {
		return 0, &mem.Fault{Addr: p.sp, Kind: mem.FaultUnmapped, Need: mem.Write}
	}
	p.sp -= meta.frameSize
	fr := &frame{
		fn:          fn,
		meta:        meta,
		args:        args,
		vals:        make([]uint64, fn.NumValues),
		base:        p.sp,
		inFrameSlot: p.sp + meta.frameSize - 8,
	}
	defer func() { p.sp += meta.frameSize }()

	// Place the return slot per the active design (§6.3.4). The frame's
	// safe area holds the return slot followed by any safe-slot locals.
	if p.safeBase != 0 {
		fr.safeBase = p.safeTop
		fr.retSlot = fr.safeBase
		safeFrame := 8 + meta.safeSize
		p.safeTop += safeFrame
		defer func() { p.safeTop -= safeFrame }()
		if err := p.Mem.WriteWord(fr.inFrameSlot, 0); err != nil {
			return 0, err
		}
	} else {
		fr.retSlot = fr.inFrameSlot
	}
	if err := p.Mem.WriteWord(fr.retSlot, retVal); err != nil {
		return 0, err
	}
	fr.retVal = retVal

	p.res.Stats.Cycles += p.cost.CallOverhead
	return p.exec(fr)
}

// exec runs the body of fr's function.
func (p *Process) exec(fr *frame) (uint64, error) {
	blk := fr.fn.Entry()
blocks:
	for {
		for _, in := range blk.Instrs {
			p.res.Stats.Instructions++
			if p.res.Stats.Instructions > p.cfg.MaxInstructions {
				return 0, ErrLimit
			}
			p.res.Stats.Cycles += p.cost.Instr

			switch in.Op {
			case mir.OpPhi:
				// Assigned during the jump into this block.

			case mir.OpAlloca:
				if off, ok := fr.meta.safeOffs[in]; ok && fr.safeBase != 0 {
					fr.vals[in.ID] = fr.safeBase + 8 + off
				} else {
					fr.vals[in.ID] = fr.base + fr.meta.allocaOffs[in]
				}

			case mir.OpLoad:
				addr := p.eval(in.Args[0], fr)
				v, err := p.loadSized(addr, in.Type().Size())
				if err != nil {
					return 0, err
				}
				fr.vals[in.ID] = v
				p.res.Stats.Loads++
				p.res.Stats.Cycles += p.cost.Load

			case mir.OpStore:
				val := p.eval(in.Args[0], fr)
				addr := p.eval(in.Args[1], fr)
				if err := p.storeSized(addr, val, in.Args[0].Type().Size()); err != nil {
					return 0, err
				}
				p.res.Stats.Stores++
				p.res.Stats.Cycles += p.cost.Store

			case mir.OpFieldAddr:
				base := p.eval(in.Args[0], fr)
				st := in.Args[0].Type().Elem
				fr.vals[in.ID] = base + st.FieldOffset(in.Field)

			case mir.OpIndexAddr:
				base := p.eval(in.Args[0], fr)
				idx := p.eval(in.Args[1], fr)
				fr.vals[in.ID] = base + idx*in.Type().Elem.Size()

			case mir.OpBin:
				x, y := p.eval(in.Args[0], fr), p.eval(in.Args[1], fr)
				v, err := binOp(in.Bin, x, y)
				if err != nil {
					return 0, err
				}
				fr.vals[in.ID] = v

			case mir.OpCmp:
				x, y := p.eval(in.Args[0], fr), p.eval(in.Args[1], fr)
				fr.vals[in.ID] = cmpOp(in.Cmp, x, y)

			case mir.OpCast:
				fr.vals[in.ID] = p.eval(in.Args[0], fr)

			case mir.OpCall:
				args := p.evalArgs(in.Args, fr)
				ret, err := p.call(in.Callee, args, p.retAddrFor(fr, in))
				if err != nil {
					return 0, err
				}
				fr.vals[in.ID] = ret
				p.res.Stats.Calls++

			case mir.OpICall:
				target := p.eval(in.Args[0], fr)
				callee := p.funcAt[target]
				if callee == nil {
					return 0, &mem.Fault{Addr: target, Kind: mem.FaultPerm, Need: mem.Exec}
				}
				args := p.adaptArgs(p.evalArgs(in.Args[1:], fr), len(callee.Sig.Params))
				ret, err := p.call(callee, args, p.retAddrFor(fr, in))
				if err != nil {
					return 0, err
				}
				fr.vals[in.ID] = ret
				p.res.Stats.ICalls++

			case mir.OpRet:
				return p.doRet(fr, in)

			case mir.OpBr:
				blk = p.jump(fr, blk, in.Targets[0])
				continue blocks

			case mir.OpCondBr:
				cond := p.eval(in.Args[0], fr)
				t := in.Targets[1]
				if cond != 0 {
					t = in.Targets[0]
				}
				blk = p.jump(fr, blk, t)
				continue blocks

			case mir.OpMalloc:
				size := p.eval(in.Args[0], fr)
				addr, err := p.Heap.Malloc(size)
				if err != nil {
					return 0, fmt.Errorf("vm: %w", err)
				}
				fr.vals[in.ID] = addr

			case mir.OpFree:
				addr := p.eval(in.Args[0], fr)
				if err := p.Heap.Free(addr); err != nil {
					return 0, fmt.Errorf("vm: %w", err)
				}

			case mir.OpRealloc:
				addr := p.eval(in.Args[0], fr)
				size := p.eval(in.Args[1], fr)
				nw, err := p.Heap.Realloc(addr, size)
				if err != nil {
					return 0, fmt.Errorf("vm: %w", err)
				}
				fr.vals[in.ID] = nw

			case mir.OpMemcpy, mir.OpMemmove:
				dst := p.eval(in.Args[0], fr)
				src := p.eval(in.Args[1], fr)
				n := p.eval(in.Args[2], fr)
				if err := p.Mem.Memmove(dst, src, n); err != nil {
					return 0, err
				}
				p.res.Stats.BlockBytes += n
				p.res.Stats.Cycles += n * p.cost.BlockOpByte

			case mir.OpMemset:
				dst := p.eval(in.Args[0], fr)
				v := p.eval(in.Args[1], fr)
				n := p.eval(in.Args[2], fr)
				if err := p.Mem.Memset(dst, byte(v), n); err != nil {
					return 0, err
				}
				p.res.Stats.BlockBytes += n
				p.res.Stats.Cycles += n * p.cost.BlockOpByte

			case mir.OpSyscall:
				v, err := p.syscall(in, fr)
				if err != nil {
					return 0, err
				}
				fr.vals[in.ID] = v

			case mir.OpRuntime:
				if err := p.runtimeOp(in, fr); err != nil {
					return 0, err
				}

			default:
				return 0, fmt.Errorf("vm: unimplemented opcode %s", in.Op)
			}
		}
		return 0, fmt.Errorf("vm: block %s fell through", blk)
	}
}

// doRet dispatches a return through the in-memory return slot: the stored
// word is loaded and *used* as the transfer target, so corruption of the
// slot genuinely redirects control (the x86 ret semantics attacks rely on).
func (p *Process) doRet(fr *frame, in *mir.Instr) (uint64, error) {
	var ret uint64
	if len(in.Args) == 1 {
		ret = p.eval(in.Args[0], fr)
	}
	stored, err := p.Mem.ReadWord(fr.retSlot)
	if err != nil {
		return 0, err
	}
	if stored == fr.retVal {
		return ret, nil // normal return to the saved site
	}
	// The slot was corrupted: transfer to whatever it names.
	p.res.Hijacked = true
	if target := p.funcAt[stored]; target != nil {
		// Execute the attacker-chosen function ("shellcode"); the
		// program cannot meaningfully continue afterwards.
		_, err := p.call(target, p.adaptArgs(nil, len(target.Sig.Params)), exitToken)
		if err != nil && (errors.Is(err, errHalt) || errors.Is(err, errKilled)) {
			return 0, err
		}
		return 0, fmt.Errorf("%w: hijacked to @%s", ErrStackCorrupt, target.Name)
	}
	return 0, fmt.Errorf("%w: slot=%#x", ErrStackCorrupt, stored)
}

// retAddrFor encodes the return address for a call at instruction in: the
// caller's code address plus the instruction's offset.
func (p *Process) retAddrFor(fr *frame, in *mir.Instr) uint64 {
	return fr.meta.addr + 16 + uint64(in.ID)%(funcStride-16)
}

// jump transfers to block to, assigning its phis with respect to edge
// from→to. All phi inputs are read before any phi output is written
// (parallel-assignment semantics).
func (p *Process) jump(fr *frame, from, to *mir.Block) *mir.Block {
	var tmp [8]uint64
	vals := tmp[:0]
	for _, in := range to.Instrs {
		if in.Op != mir.OpPhi {
			break
		}
		idx := -1
		for i, pb := range in.PhiBlocks {
			if pb == from {
				idx = i
				break
			}
		}
		if idx < 0 {
			vals = append(vals, 0) // validated IR should not reach this
		} else {
			vals = append(vals, p.eval(in.Args[idx], fr))
		}
	}
	i := 0
	for _, in := range to.Instrs {
		if in.Op != mir.OpPhi {
			break
		}
		fr.vals[in.ID] = vals[i]
		i++
	}
	return to
}

// eval resolves a value in the context of fr.
func (p *Process) eval(v mir.Value, fr *frame) uint64 {
	switch v := v.(type) {
	case *mir.Const:
		return v.Val
	case *mir.FuncRef:
		return p.FuncAddr(v.Fn)
	case *mir.Global:
		return p.globalAddr[v]
	case *mir.Param:
		return fr.args[v.Idx]
	case *mir.Instr:
		return fr.vals[v.ID]
	default:
		panic(fmt.Sprintf("vm: unknown value %T", v))
	}
}

func (p *Process) evalArgs(args []mir.Value, fr *frame) []uint64 {
	out := make([]uint64, len(args))
	for i, a := range args {
		out[i] = p.eval(a, fr)
	}
	return out
}

// adaptArgs fits an argument vector to a callee arity — a hijacked or
// signature-confused transfer passes whatever happens to be in registers.
func (p *Process) adaptArgs(args []uint64, n int) []uint64 {
	if len(args) == n {
		return args
	}
	out := make([]uint64, n)
	copy(out, args)
	return out
}

func (p *Process) loadSized(addr uint64, size uint64) (uint64, error) {
	switch size {
	case 1:
		b, err := p.Mem.LoadByte(addr)
		return uint64(b), err
	case 2, 4:
		var buf [8]byte
		if err := p.Mem.Read(addr, buf[:size]); err != nil {
			return 0, err
		}
		var v uint64
		for i := uint64(0); i < size; i++ {
			v |= uint64(buf[i]) << (8 * i)
		}
		return v, nil
	default:
		return p.Mem.ReadWord(addr)
	}
}

func (p *Process) storeSized(addr, val, size uint64) error {
	switch size {
	case 1:
		return p.Mem.StoreByte(addr, byte(val))
	case 2, 4:
		var buf [8]byte
		for i := uint64(0); i < size; i++ {
			buf[i] = byte(val >> (8 * i))
		}
		return p.Mem.Write(addr, buf[:size])
	default:
		return p.Mem.WriteWord(addr, val)
	}
}

func binOp(k mir.BinKind, x, y uint64) (uint64, error) {
	switch k {
	case mir.BinAdd:
		return x + y, nil
	case mir.BinSub:
		return x - y, nil
	case mir.BinMul:
		return x * y, nil
	case mir.BinDiv:
		if y == 0 {
			return 0, fmt.Errorf("vm: integer division by zero")
		}
		return x / y, nil
	case mir.BinRem:
		if y == 0 {
			return 0, fmt.Errorf("vm: integer remainder by zero")
		}
		return x % y, nil
	case mir.BinAnd:
		return x & y, nil
	case mir.BinOr:
		return x | y, nil
	case mir.BinXor:
		return x ^ y, nil
	case mir.BinShl:
		return x << (y & 63), nil
	case mir.BinShr:
		return x >> (y & 63), nil
	default:
		return 0, fmt.Errorf("vm: unknown binop %d", k)
	}
}

func cmpOp(k mir.CmpKind, x, y uint64) uint64 {
	var b bool
	switch k {
	case mir.CmpEq:
		b = x == y
	case mir.CmpNe:
		b = x != y
	case mir.CmpLt:
		b = x < y
	case mir.CmpLe:
		b = x <= y
	case mir.CmpGt:
		b = x > y
	case mir.CmpGe:
		b = x >= y
	}
	if b {
		return 1
	}
	return 0
}
