package vm

import (
	"errors"
	"testing"

	"herqules/internal/ipc"
	"herqules/internal/mir"
	"herqules/internal/sim"
)

// run builds a process over mod and runs entry, collecting emitted messages.
func run(t *testing.T, mod *mir.Module, cfg Config, entry string, args ...uint64) (*Result, []ipc.Message) {
	t.Helper()
	if err := mir.Validate(mod); err != nil {
		t.Fatalf("invalid IR: %v", err)
	}
	var msgs []ipc.Message
	if cfg.Emit == nil {
		cfg.Emit = func(m ipc.Message) error { msgs = append(msgs, m); return nil }
	}
	p, err := NewProcess(mod, cfg)
	if err != nil {
		t.Fatalf("NewProcess: %v", err)
	}
	return p.Run(entry, args...), msgs
}

func TestArithmeticAndReturn(t *testing.T) {
	mod := mir.NewModule("arith")
	b := mir.NewBuilder(mod)
	f := b.Func("main", mir.FuncType(mir.I64, mir.I64, mir.I64), "x", "y")
	sum := b.Add(f.Params[0], f.Params[1])
	prod := b.Mul(sum, mir.ConstInt(3))
	b.Ret(b.Sub(prod, mir.ConstInt(1)))
	mod.Finalize()

	res, _ := run(t, mod, Config{}, "main", 10, 4)
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if res.ExitCode != (10+4)*3-1 {
		t.Errorf("result = %d, want 41", res.ExitCode)
	}
}

func TestLoopWithPhis(t *testing.T) {
	// sum 0..n-1 via phi-carried loop.
	mod := mir.NewModule("loop")
	b := mir.NewBuilder(mod)
	f := b.Func("main", mir.FuncType(mir.I64, mir.I64), "n")
	entry := b.Blk
	header := b.Block("header")
	body := b.Block("body")
	exit := b.Block("exit")
	b.Br(header)
	b.SetBlock(header)
	i := b.Phi(mir.I64, mir.ConstInt(0), entry)
	s := b.Phi(mir.I64, mir.ConstInt(0), entry)
	b.CondBr(b.Cmp(mir.CmpLt, i, f.Params[0]), body, exit)
	b.SetBlock(body)
	s1 := b.Add(s, i)
	i1 := b.Add(i, mir.ConstInt(1))
	i.Args, i.PhiBlocks = append(i.Args, i1), append(i.PhiBlocks, body)
	s.Args, s.PhiBlocks = append(s.Args, s1), append(s.PhiBlocks, body)
	b.Br(header)
	b.SetBlock(exit)
	b.Ret(s)
	mod.Finalize()

	res, _ := run(t, mod, Config{}, "main", 100)
	if res.Err != nil || res.ExitCode != 4950 {
		t.Errorf("sum = %d (err %v), want 4950", res.ExitCode, res.Err)
	}
}

func TestParallelPhiSwap(t *testing.T) {
	// Classic swap problem: phis must read all inputs before writing.
	mod := mir.NewModule("swap")
	b := mir.NewBuilder(mod)
	b.Func("main", mir.FuncType(mir.I64))
	entry := b.Blk
	loop := b.Block("loop")
	exit := b.Block("exit")
	b.Br(loop)
	b.SetBlock(loop)
	x := b.Phi(mir.I64, mir.ConstInt(1), entry)
	y := b.Phi(mir.I64, mir.ConstInt(2), entry)
	k := b.Phi(mir.I64, mir.ConstInt(0), entry)
	k1 := b.Add(k, mir.ConstInt(1))
	// swap x,y each iteration
	x.Args, x.PhiBlocks = append(x.Args, y), append(x.PhiBlocks, loop)
	y.Args, y.PhiBlocks = append(y.Args, x), append(y.PhiBlocks, loop)
	k.Args, k.PhiBlocks = append(k.Args, k1), append(k.PhiBlocks, loop)
	b.CondBr(b.Cmp(mir.CmpLt, k1, mir.ConstInt(3)), loop, exit)
	b.SetBlock(exit)
	// Two back-edge arrivals swap twice: x=1, y=2 at exit. Sequential phi
	// assignment would have collapsed both to the same value.
	b.Ret(b.Add(b.Mul(x, mir.ConstInt(10)), y))
	mod.Finalize()

	res, _ := run(t, mod, Config{}, "main")
	if res.Err != nil || res.ExitCode != 12 {
		t.Errorf("swap result = %d (err %v), want 12", res.ExitCode, res.Err)
	}
}

func TestAllocaStoreLoadAndStructFields(t *testing.T) {
	mod := mir.NewModule("memops")
	b := mir.NewBuilder(mod)
	pair := mir.StructType("pair", mir.I64, mir.I64)
	b.Func("main", mir.FuncType(mir.I64))
	s := b.Alloca("s", pair)
	b.Store(mir.ConstInt(7), b.FieldAddr(s, 0))
	b.Store(mir.ConstInt(35), b.FieldAddr(s, 1))
	v0 := b.Load(b.FieldAddr(s, 0))
	v1 := b.Load(b.FieldAddr(s, 1))
	b.Ret(b.Add(v0, v1))
	mod.Finalize()

	res, _ := run(t, mod, Config{}, "main")
	if res.Err != nil || res.ExitCode != 42 {
		t.Errorf("= %d (err %v), want 42", res.ExitCode, res.Err)
	}
}

func TestHeapAndMemcpy(t *testing.T) {
	mod := mir.NewModule("heap")
	b := mir.NewBuilder(mod)
	b.Func("main", mir.FuncType(mir.I64))
	src := b.Malloc(mir.ConstInt(64))
	dst := b.Malloc(mir.ConstInt(64))
	srcW := b.Cast(src, mir.Ptr(mir.I64))
	b.Store(mir.ConstInt(0xabcd), srcW)
	b.Memcpy(dst, src, mir.ConstInt(64))
	v := b.Load(b.Cast(dst, mir.Ptr(mir.I64)))
	b.Free(src)
	b.Free(dst)
	b.Ret(v)
	mod.Finalize()

	res, _ := run(t, mod, Config{}, "main")
	if res.Err != nil || res.ExitCode != 0xabcd {
		t.Errorf("= %#x (err %v), want 0xabcd", res.ExitCode, res.Err)
	}
}

func TestDoubleFreeCrashes(t *testing.T) {
	mod := mir.NewModule("dfree")
	b := mir.NewBuilder(mod)
	b.Func("main", mir.FuncType(mir.I64))
	p := b.Malloc(mir.ConstInt(16))
	b.Free(p)
	b.Free(p)
	b.Ret(mir.ConstInt(0))
	mod.Finalize()
	res, _ := run(t, mod, Config{}, "main")
	if res.Err == nil {
		t.Error("double free did not crash")
	}
}

func TestDirectAndIndirectCalls(t *testing.T) {
	mod := mir.NewModule("calls")
	b := mir.NewBuilder(mod)
	sig := mir.FuncType(mir.I64, mir.I64)
	dbl := b.Func("dbl", sig, "x")
	b.Ret(b.Mul(dbl.Params[0], mir.ConstInt(2)))
	f := b.Func("main", mir.FuncType(mir.I64))
	direct := b.Call(dbl, mir.ConstInt(10))
	slot := b.Alloca("fp", mir.Ptr(sig))
	b.Store(b.FuncAddr(dbl), slot)
	fp := b.Load(slot)
	indirect := b.ICall(fp, sig, mir.ConstInt(11))
	b.Ret(b.Add(direct, indirect))
	mod.Finalize()
	_ = f

	res, _ := run(t, mod, Config{}, "main")
	if res.Err != nil || res.ExitCode != 42 {
		t.Errorf("= %d (err %v), want 42", res.ExitCode, res.Err)
	}
	if res.Stats.Calls != 1 || res.Stats.ICalls != 1 {
		t.Errorf("call stats = %d/%d", res.Stats.Calls, res.Stats.ICalls)
	}
}

func TestRecursionFibonacci(t *testing.T) {
	mod := mir.NewModule("fib")
	b := mir.NewBuilder(mod)
	sig := mir.FuncType(mir.I64, mir.I64)
	fib := b.Func("fib", sig, "n")
	base := b.Blk
	rec := b.Block("rec")
	_ = base
	b.CondBr(b.Cmp(mir.CmpLt, fib.Params[0], mir.ConstInt(2)), b.Block("ret1"), rec)
	retb := fib.Blocks[2]
	b.SetBlock(retb)
	b.Ret(fib.Params[0])
	b.SetBlock(rec)
	a := b.Call(fib, b.Sub(fib.Params[0], mir.ConstInt(1)))
	c := b.Call(fib, b.Sub(fib.Params[0], mir.ConstInt(2)))
	b.Ret(b.Add(a, c))
	mod.Finalize()

	res, _ := run(t, mod, Config{}, "fib", 15)
	if res.Err != nil || res.ExitCode != 610 {
		t.Errorf("fib(15) = %d (err %v), want 610", res.ExitCode, res.Err)
	}
}

func TestSyscallOutputAndExit(t *testing.T) {
	mod := mir.NewModule("io")
	b := mir.NewBuilder(mod)
	b.Func("main", mir.FuncType(mir.I64))
	b.Syscall(SysWrite, mir.ConstInt(111))
	b.Syscall(SysWrite, mir.ConstInt(222))
	b.Syscall(SysExit, mir.ConstInt(5))
	b.Ret(mir.ConstInt(0)) // unreachable
	mod.Finalize()

	res, _ := run(t, mod, Config{}, "main")
	if res.Err != nil {
		t.Fatalf("err: %v", res.Err)
	}
	if res.ExitCode != 5 {
		t.Errorf("exit = %d", res.ExitCode)
	}
	if len(res.Output) != 2 || res.Output[0] != 111 || res.Output[1] != 222 {
		t.Errorf("output = %v", res.Output)
	}
	if res.Stats.Syscalls != 3 {
		t.Errorf("syscalls = %d", res.Stats.Syscalls)
	}
}

func TestGlobalsAndReadOnlyProtection(t *testing.T) {
	mod := mir.NewModule("globals")
	b := mir.NewBuilder(mod)
	g := b.Global("counter", mir.I64, "data")
	g.InitWords = []uint64{40}
	ro := b.Global("table", mir.I64, "data")
	ro.ReadOnly = true
	ro.InitWords = []uint64{2}
	b.Func("main", mir.FuncType(mir.I64))
	v := b.Load(g)
	v2 := b.Add(v, b.Load(ro))
	b.Store(v2, g)
	b.Ret(b.Load(g))
	mod.Finalize()

	res, _ := run(t, mod, Config{}, "main")
	if res.Err != nil || res.ExitCode != 42 {
		t.Errorf("= %d (err %v), want 42", res.ExitCode, res.Err)
	}

	// A store to the read-only global faults.
	mod2 := mir.NewModule("badstore")
	b2 := mir.NewBuilder(mod2)
	ro2 := b2.Global("t", mir.I64, "data")
	ro2.ReadOnly = true
	b2.Func("main", mir.FuncType(mir.I64))
	b2.Store(mir.ConstInt(1), ro2)
	b2.Ret(mir.ConstInt(0))
	mod2.Finalize()
	res2, _ := run(t, mod2, Config{}, "main")
	if res2.Err == nil {
		t.Error("store to read-only global succeeded")
	}
}

// buildOverflowAttack constructs the canonical stack-smashing victim: a
// function with a local buffer that writes `count` words of `payload`
// starting at the buffer — overflowing into the frame's return slot when
// count is large enough — plus an attacker function that records the exploit
// marker.
func buildOverflowAttack(words int) *mir.Module {
	mod := mir.NewModule("smash")
	b := mir.NewBuilder(mod)

	atk := b.Func("attacker", mir.FuncType(mir.Void))
	b.Syscall(SysMarkExploit)
	b.Syscall(SysExit, mir.ConstInt(99))
	b.Ret(nil)

	vuln := b.Func("vuln", mir.FuncType(mir.Void, mir.I64), "n")
	buf := b.Alloca("buf", mir.ArrayType(mir.I64, 4))
	entry := b.Blk
	loop := b.Block("loop")
	done := b.Block("done")
	payload := b.Cast(b.FuncAddr(atk), mir.I64)
	b.Br(loop)
	b.SetBlock(loop)
	i := b.Phi(mir.I64, mir.ConstInt(0), entry)
	slot := b.IndexAddr(buf, i)
	b.Store(payload, slot) // the overflowing write
	i1 := b.Add(i, mir.ConstInt(1))
	i.Args, i.PhiBlocks = append(i.Args, i1), append(i.PhiBlocks, loop)
	b.CondBr(b.Cmp(mir.CmpLt, i1, vuln.Params[0]), loop, done)
	b.SetBlock(done)
	b.Ret(nil)

	b.Func("main", mir.FuncType(mir.I64))
	b.Call(vuln, mir.ConstInt(uint64(words)))
	b.Ret(mir.ConstInt(0))
	mod.Finalize()
	return mod
}

func TestStackSmashHijacksOnRegularStack(t *testing.T) {
	// Writing 5 words from a 4-word buffer hits the in-frame return slot;
	// the return must transfer to the attacker.
	res, _ := run(t, buildOverflowAttack(5), Config{Placement: PlaceRegular}, "main")
	if !res.Hijacked {
		t.Fatal("overflow did not hijack control")
	}
	if !res.ExploitMarker {
		t.Error("attacker payload did not run")
	}
	if res.ExitCode != 99 {
		t.Errorf("exit = %d, want attacker's 99", res.ExitCode)
	}
}

func TestStackSmashInBoundsIsHarmless(t *testing.T) {
	res, _ := run(t, buildOverflowAttack(4), Config{Placement: PlaceRegular}, "main")
	if res.Hijacked || res.ExploitMarker || res.Err != nil {
		t.Errorf("in-bounds writes misbehaved: hijack=%t marker=%t err=%v",
			res.Hijacked, res.ExploitMarker, res.Err)
	}
}

func TestSafeStackDefeatsContiguousOverflow(t *testing.T) {
	// Under a safe stack, the in-frame slot is a decoy; the overflow
	// corrupts it but the return reads the safe slot.
	for _, place := range []RetSlotPlacement{PlaceSafeGuarded, PlaceSafeAdjacent} {
		res, _ := run(t, buildOverflowAttack(5), Config{Placement: place}, "main")
		if res.Hijacked || res.ExploitMarker {
			t.Errorf("placement %v: contiguous overflow still hijacked", place)
		}
		if res.Err != nil {
			t.Errorf("placement %v: unexpected crash %v", place, res.Err)
		}
	}
}

// buildDisclosureAttack leaks the actual return-slot address via the
// compiler-builtin intrinsic and writes the attacker address through it.
func buildDisclosureAttack() *mir.Module {
	mod := mir.NewModule("disclose")
	b := mir.NewBuilder(mod)
	atk := b.Func("attacker", mir.FuncType(mir.Void))
	b.Syscall(SysMarkExploit)
	b.Syscall(SysExit, mir.ConstInt(99))
	b.Ret(nil)

	b.Func("vuln", mir.FuncType(mir.Void))
	leak := b.Syscall(SysLeakRetSlotAddr)
	slotPtr := b.Cast(leak, mir.Ptr(mir.I64))
	b.Store(b.Cast(b.FuncAddr(atk), mir.I64), slotPtr)
	b.Ret(nil)

	b.Func("main", mir.FuncType(mir.I64))
	b.Call(mod.Func("vuln"))
	b.Ret(mir.ConstInt(0))
	mod.Finalize()
	return mod
}

func TestDisclosureDefeatsSafeStack(t *testing.T) {
	for _, place := range []RetSlotPlacement{PlaceRegular, PlaceSafeGuarded, PlaceSafeAdjacent} {
		res, _ := run(t, buildDisclosureAttack(), Config{Placement: place}, "main")
		if !res.Hijacked || !res.ExploitMarker {
			t.Errorf("placement %v: disclosure attack failed (hijack=%t marker=%t err=%v)",
				place, res.Hijacked, res.ExploitMarker, res.Err)
		}
	}
}

func TestFrameSlotAddrMissesUnderSafeStack(t *testing.T) {
	// Writing to the layout-knowledge (plain stack) slot is harmless when
	// the design relocated the slot.
	mod := mir.NewModule("miss")
	b := mir.NewBuilder(mod)
	atk := b.Func("attacker", mir.FuncType(mir.Void))
	b.Syscall(SysMarkExploit)
	b.Ret(nil)
	b.Func("vuln", mir.FuncType(mir.Void))
	leak := b.Syscall(SysFrameRetSlotAddr)
	b.Store(b.Cast(b.FuncAddr(atk), mir.I64), b.Cast(leak, mir.Ptr(mir.I64)))
	b.Ret(nil)
	b.Func("main", mir.FuncType(mir.I64))
	b.Call(mod.Func("vuln"))
	b.Ret(mir.ConstInt(0))
	mod.Finalize()

	res, _ := run(t, mod, Config{Placement: PlaceSafeGuarded}, "main")
	if res.Hijacked || res.ExploitMarker {
		t.Error("decoy slot write hijacked under safe stack")
	}
	res2, _ := run(t, mod, Config{Placement: PlaceRegular}, "main")
	if !res2.Hijacked {
		t.Error("slot write failed on the regular stack")
	}
}

// buildLinearCrossAttack overflows from a stack buffer upward, across the
// top of the regular stack, into the safe region (CPI-style adjacency).
func buildLinearCrossAttack() *mir.Module {
	mod := mir.NewModule("lincross")
	b := mir.NewBuilder(mod)
	atk := b.Func("attacker", mir.FuncType(mir.Void))
	b.Syscall(SysMarkExploit)
	b.Syscall(SysExit, mir.ConstInt(99))
	b.Ret(nil)

	vuln := b.Func("vuln", mir.FuncType(mir.Void, mir.I64), "n")
	buf := b.Alloca("buf", mir.ArrayType(mir.I64, 4))
	entry := b.Blk
	loop := b.Block("loop")
	done := b.Block("done")
	payload := b.Cast(b.FuncAddr(atk), mir.I64)
	b.Br(loop)
	b.SetBlock(loop)
	i := b.Phi(mir.I64, mir.ConstInt(0), entry)
	b.Store(payload, b.IndexAddr(buf, i))
	i1 := b.Add(i, mir.ConstInt(1))
	i.Args, i.PhiBlocks = append(i.Args, i1), append(i.PhiBlocks, loop)
	b.CondBr(b.Cmp(mir.CmpLt, i1, vuln.Params[0]), loop, done)
	b.SetBlock(done)
	b.Ret(nil)

	b.Func("main", mir.FuncType(mir.I64))
	// Write far enough to cross from the buffer through the stack top
	// into an adjacent safe region: frames sit near the top, so a few
	// thousand words suffice.
	b.Call(vuln, mir.ConstInt(4096))
	b.Ret(mir.ConstInt(0))
	mod.Finalize()
	return mod
}

func TestLinearCrossReachesAdjacentSafeStack(t *testing.T) {
	res, _ := run(t, buildLinearCrossAttack(), Config{Placement: PlaceSafeAdjacent}, "main")
	if !res.Hijacked || !res.ExploitMarker {
		t.Errorf("linear cross vs adjacent safe stack failed: hijack=%t marker=%t err=%v",
			res.Hijacked, res.ExploitMarker, res.Err)
	}
}

func TestGuardPageStopsLinearCross(t *testing.T) {
	res, _ := run(t, buildLinearCrossAttack(), Config{Placement: PlaceSafeGuarded}, "main")
	if res.Hijacked || res.ExploitMarker {
		t.Error("guard page failed to stop the linear overwrite")
	}
	if res.Err == nil {
		t.Error("linear overwrite into guard page did not fault")
	}
}

func TestICallToInvalidAddressFaults(t *testing.T) {
	mod := mir.NewModule("badicall")
	b := mir.NewBuilder(mod)
	sig := mir.FuncType(mir.Void)
	b.Func("main", mir.FuncType(mir.I64))
	fp := b.Cast(mir.ConstInt(0x1234), mir.Ptr(sig))
	b.ICall(fp, sig)
	b.Ret(mir.ConstInt(0))
	mod.Finalize()
	res, _ := run(t, mod, Config{}, "main")
	if res.Err == nil {
		t.Error("icall to garbage succeeded")
	}
}

func TestHQMessagesEmitted(t *testing.T) {
	mod := mir.NewModule("msgs")
	b := mir.NewBuilder(mod)
	b.Func("main", mir.FuncType(mir.I64))
	slot := b.Alloca("fp", mir.Ptr(mir.FuncType(mir.Void)))
	b.Runtime(mir.RTPointerDefine, slot, mir.ConstInt(0x400100))
	b.Runtime(mir.RTPointerCheck, slot, mir.ConstInt(0x400100))
	b.Runtime(mir.RTPointerInvalidate, slot)
	sync := b.Runtime(mir.RTSyscallSync)
	sync.SyscallNo = SysExit
	b.Syscall(SysExit, mir.ConstInt(0))
	b.Ret(mir.ConstInt(0))
	mod.Finalize()

	res, msgs := run(t, mod, Config{PID: 9}, "main")
	if res.Err != nil {
		t.Fatalf("err: %v", res.Err)
	}
	wantOps := []ipc.Op{ipc.OpPointerDefine, ipc.OpPointerCheck, ipc.OpPointerInvalidate, ipc.OpSyscall}
	if len(msgs) != len(wantOps) {
		t.Fatalf("got %d messages, want %d: %v", len(msgs), len(wantOps), msgs)
	}
	for i, op := range wantOps {
		if msgs[i].Op != op {
			t.Errorf("msg %d = %v, want %v", i, msgs[i].Op, op)
		}
		if msgs[i].PID != 9 {
			t.Errorf("msg %d PID = %d", i, msgs[i].PID)
		}
	}
	if res.Stats.Messages != 4 {
		t.Errorf("Stats.Messages = %d", res.Stats.Messages)
	}
}

func TestKilledStopsExecutionAfterMessage(t *testing.T) {
	mod := mir.NewModule("killed")
	b := mir.NewBuilder(mod)
	b.Func("main", mir.FuncType(mir.I64))
	b.Runtime(mir.RTPointerCheck, mir.ConstInt(0x10), mir.ConstInt(0x20))
	b.Syscall(SysWrite, mir.ConstInt(7)) // must not run
	b.Ret(mir.ConstInt(0))
	mod.Finalize()

	killed := false
	cfg := Config{
		Emit:   func(m ipc.Message) error { killed = true; return nil },
		Killed: func() (bool, string) { return killed, "policy violation" },
	}
	res, _ := run(t, mod, cfg, "main")
	if !res.Killed {
		t.Fatal("kill not observed")
	}
	if len(res.Output) != 0 {
		t.Error("output produced after kill")
	}
}

func TestClangCFICheckTrapAndContinue(t *testing.T) {
	build := func() (*mir.Module, *mir.Instr) {
		mod := mir.NewModule("cfi")
		b := mir.NewBuilder(mod)
		sigA := mir.FuncType(mir.I64, mir.I64)
		target := b.Func("target", sigA, "x")
		b.Ret(target.Params[0])
		b.Func("main", mir.FuncType(mir.I64))
		fp := b.FuncAddr(target)
		chk := b.Runtime(mir.RTClangCFICheck, fp)
		b.ICall(fp, sigA, mir.ConstInt(1))
		b.Ret(mir.ConstInt(0))
		mod.Finalize()
		return mod, chk
	}

	// Matching class: passes.
	mod, chk := build()
	chk.ClassSig = mir.FuncType(mir.I64, mir.I64).Signature()
	res, _ := run(t, mod, Config{}, "main")
	if res.Err != nil || res.Violations != 0 {
		t.Errorf("matching class: err=%v violations=%d", res.Err, res.Violations)
	}

	// Mismatched class (e.g. decayed pointer): traps...
	mod2, chk2 := build()
	chk2.ClassSig = mir.FuncType(mir.Void).Signature()
	res2, _ := run(t, mod2, Config{}, "main")
	if !errors.Is(res2.Err, ErrTrap) {
		t.Errorf("mismatch: err=%v, want trap", res2.Err)
	}
	// ...or records a false positive in continue mode (§5 methodology).
	mod3, chk3 := build()
	chk3.ClassSig = mir.FuncType(mir.Void).Signature()
	res3, _ := run(t, mod3, Config{ContinueOnViolation: true}, "main")
	if res3.Err != nil || res3.Violations != 1 {
		t.Errorf("continue mode: err=%v violations=%d", res3.Err, res3.Violations)
	}
}

func TestCCFIMACDetectsCorruption(t *testing.T) {
	// Store a protected pointer (MAC'd), corrupt the raw memory, then
	// check: the MAC no longer matches.
	mod := mir.NewModule("ccfi")
	b := mir.NewBuilder(mod)
	sig := mir.FuncType(mir.Void)
	good := b.Func("good", sig)
	b.Ret(nil)
	evil := b.Func("evil", sig)
	b.Ret(nil)
	b.Func("main", mir.FuncType(mir.I64))
	slot := b.Alloca("fp", mir.Ptr(sig))
	goodV := b.Cast(b.FuncAddr(good), mir.I64)
	b.Store(goodV, b.Cast(slot, mir.Ptr(mir.I64)))
	st := b.Runtime(mir.RTMACStore, slot, goodV)
	st.ClassSig = sig.Signature()
	// Attacker overwrites the slot.
	b.Store(b.Cast(b.FuncAddr(evil), mir.I64), b.Cast(slot, mir.Ptr(mir.I64)))
	loaded := b.Load(b.Cast(slot, mir.Ptr(mir.I64)))
	chk := b.Runtime(mir.RTMACCheck, slot, loaded)
	chk.ClassSig = sig.Signature()
	b.Ret(mir.ConstInt(0))
	mod.Finalize()

	res, _ := run(t, mod, Config{}, "main")
	if !errors.Is(res.Err, ErrTrap) {
		t.Errorf("corrupted pointer passed MAC check: %v", res.Err)
	}
}

func TestCCFIMACTypeTagMismatchFalsePositive(t *testing.T) {
	// Same value, different static type tags at store vs load — a cast
	// away and back — triggers a false positive, the §5.1 CCFI behaviour.
	mod := mir.NewModule("ccfi-fp")
	b := mir.NewBuilder(mod)
	sig := mir.FuncType(mir.Void)
	fn := b.Func("fn", sig)
	b.Ret(nil)
	b.Func("main", mir.FuncType(mir.I64))
	slot := b.Alloca("fp", mir.Ptr(sig))
	v := b.Cast(b.FuncAddr(fn), mir.I64)
	b.Store(v, b.Cast(slot, mir.Ptr(mir.I64)))
	st := b.Runtime(mir.RTMACStore, slot, v)
	st.ClassSig = "void(i8*)" // stored under the decayed type
	loaded := b.Load(b.Cast(slot, mir.Ptr(mir.I64)))
	chk := b.Runtime(mir.RTMACCheck, slot, loaded)
	chk.ClassSig = sig.Signature() // checked under the real type
	b.Ret(mir.ConstInt(0))
	mod.Finalize()

	res, _ := run(t, mod, Config{ContinueOnViolation: true}, "main")
	if res.Violations != 1 {
		t.Errorf("violations = %d, want 1 false positive", res.Violations)
	}
}

func TestCPISafeStoreNeutralizesCorruption(t *testing.T) {
	// CPI: the dispatch value comes from the safe store, so corrupting
	// raw memory does not redirect the call.
	mod := mir.NewModule("cpi")
	b := mir.NewBuilder(mod)
	sig := mir.FuncType(mir.I64)
	good := b.Func("good", sig)
	b.Ret(mir.ConstInt(1))
	evil := b.Func("evil", sig)
	b.Ret(mir.ConstInt(666))
	b.Func("main", mir.FuncType(mir.I64))
	slot := b.Alloca("fp", mir.Ptr(sig))
	goodV := b.Cast(b.FuncAddr(good), mir.I64)
	b.Runtime(mir.RTSafeStoreSet, slot, goodV)
	b.Store(mir.ConstInt(0), b.Cast(slot, mir.Ptr(mir.I64))) // poisoned raw slot
	// Attacker corrupts raw memory.
	b.Store(b.Cast(b.FuncAddr(evil), mir.I64), b.Cast(slot, mir.Ptr(mir.I64)))
	get := b.Runtime(mir.RTSafeStoreGet, slot)
	get.Typ = mir.I64
	fp := b.Cast(get, mir.Ptr(sig))
	r := b.ICall(fp, sig)
	b.Ret(r)
	mod.Finalize()

	res, _ := run(t, mod, Config{}, "main")
	if res.Err != nil || res.ExitCode != 1 {
		t.Errorf("= %d (err %v), want good's 1", res.ExitCode, res.Err)
	}
}

func TestCPIMissedRedirectCrashesOnPoison(t *testing.T) {
	// The CPI bug mode: the store was redirected (raw slot poisoned) but
	// a decayed load was missed — it reads the poison and the icall
	// faults (§5.1: "crashing upon execution of NULL pointers").
	mod := mir.NewModule("cpi-bug")
	b := mir.NewBuilder(mod)
	sig := mir.FuncType(mir.Void)
	fn := b.Func("fn", sig)
	b.Ret(nil)
	b.Func("main", mir.FuncType(mir.I64))
	slot := b.Alloca("fp", mir.Ptr(sig))
	b.Runtime(mir.RTSafeStoreSet, slot, b.Cast(b.FuncAddr(fn), mir.I64))
	b.Store(mir.ConstInt(0), b.Cast(slot, mir.Ptr(mir.I64))) // poison
	loaded := b.Load(b.Cast(slot, mir.Ptr(mir.I64)))         // missed redirect
	b.ICall(b.Cast(loaded, mir.Ptr(sig)), sig)
	b.Ret(mir.ConstInt(0))
	mod.Finalize()

	res, _ := run(t, mod, Config{}, "main")
	if res.Err == nil {
		t.Error("null-pointer icall did not crash")
	}
}

func TestRecursionGuard(t *testing.T) {
	mod := mir.NewModule("guard")
	b := mir.NewBuilder(mod)
	f := b.Func("opt", mir.FuncType(mir.Void, mir.I64), "again")
	enter := b.Runtime(mir.RTRecursionGuardEnter)
	enter.GuardID = 3
	rec := b.Block("rec")
	out := b.Block("out")
	b.CondBr(f.Params[0], rec, out)
	b.SetBlock(rec)
	b.Call(f, mir.ConstInt(0)) // re-enter while guard held
	b.Br(out)
	b.SetBlock(out)
	exitG := b.Runtime(mir.RTRecursionGuardExit)
	exitG.GuardID = 3
	b.Ret(nil)
	b.Func("main", mir.FuncType(mir.I64))
	b.Call(f, mir.ConstInt(1))
	b.Ret(mir.ConstInt(0))
	mod.Finalize()

	res, _ := run(t, mod, Config{}, "main")
	if !errors.Is(res.Err, ErrTrap) {
		t.Errorf("guard failure: err=%v, want trap", res.Err)
	}

	// Non-recursive path is fine.
	res2, _ := run(t, mod, Config{}, "main")
	_ = res2
	mod2 := mod.Clone()
	p2, err := NewProcess(mod2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	r2 := p2.Run("opt", 0)
	if r2.Err != nil {
		t.Errorf("non-recursive guarded call: %v", r2.Err)
	}
}

func TestRetPtrMessagesProtectReturn(t *testing.T) {
	// HQ-CFI-RetPtr: prologue define + epilogue check-invalidate. A
	// corrupted slot produces a check message whose value differs from
	// the defined one; the verifier hook kills the process before the
	// hijacked return's payload runs.
	mod := mir.NewModule("retptr")
	b := mir.NewBuilder(mod)
	atk := b.Func("attacker", mir.FuncType(mir.Void))
	b.Syscall(SysMarkExploit)
	b.Ret(nil)

	b.Func("vuln", mir.FuncType(mir.Void))
	b.Runtime(mir.RTRetDefine)
	leak := b.Syscall(SysLeakRetSlotAddr)
	b.Store(b.Cast(b.FuncAddr(atk), mir.I64), b.Cast(leak, mir.Ptr(mir.I64)))
	b.Runtime(mir.RTRetCheckInvalidate)
	b.Ret(nil)

	b.Func("main", mir.FuncType(mir.I64))
	b.Call(mod.Func("vuln"))
	b.Ret(mir.ConstInt(0))
	mod.Finalize()

	// Verifier-in-a-closure: define remembers, check compares.
	table := map[uint64]uint64{}
	killed := false
	cfg := Config{
		Placement: PlaceRegular,
		Emit: func(m ipc.Message) error {
			switch m.Op {
			case ipc.OpPointerDefine:
				table[m.Arg1] = m.Arg2
			case ipc.OpPointerCheckInvalidate:
				if table[m.Arg1] != m.Arg2 {
					killed = true
				}
			}
			return nil
		},
		Killed: func() (bool, string) { return killed, "return pointer corrupt" },
	}
	res, _ := run(t, mod, cfg, "main")
	if !res.Killed {
		t.Fatal("corrupted return pointer not caught")
	}
	if res.ExploitMarker {
		t.Error("payload ran despite kill")
	}
}

func TestCyclesAccumulate(t *testing.T) {
	mod := mir.NewModule("cost")
	b := mir.NewBuilder(mod)
	b.Func("main", mir.FuncType(mir.I64))
	slot := b.Alloca("x", mir.I64)
	b.Store(mir.ConstInt(1), slot)
	v := b.Load(slot)
	b.Runtime(mir.RTPointerDefine, slot, v)
	b.Ret(v)
	mod.Finalize()

	cost := sim.Default().WithMessaging(100)
	res, _ := run(t, mod, Config{Cost: cost}, "main")
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	// 5 instructions + load + store + message send + per-site runtime
	// overhead + call overhead.
	want := 5*cost.Instr + cost.Load + cost.Store + 100 +
		cost.RuntimeCost(mir.RTPointerDefine) + cost.CallOverhead
	if res.Stats.Cycles != want {
		t.Errorf("cycles = %d, want %d", res.Stats.Cycles, want)
	}
}

func TestInstructionLimitDetectsHang(t *testing.T) {
	mod := mir.NewModule("hang")
	b := mir.NewBuilder(mod)
	b.Func("main", mir.FuncType(mir.I64))
	loop := b.Block("loop")
	b.Br(loop)
	b.SetBlock(loop)
	b.Br(loop)
	mod.Finalize()

	res, _ := run(t, mod, Config{MaxInstructions: 1000}, "main")
	if !errors.Is(res.Err, ErrLimit) {
		t.Errorf("err = %v, want limit", res.Err)
	}
}

func TestStackOverflowFaults(t *testing.T) {
	mod := mir.NewModule("so")
	b := mir.NewBuilder(mod)
	f := b.Func("rec", mir.FuncType(mir.Void))
	b.Alloca("pad", mir.ArrayType(mir.I64, 64))
	b.Call(f)
	b.Ret(nil)
	mod.Finalize()
	res, _ := run(t, mod, Config{}, "rec")
	if res.Err == nil {
		t.Error("unbounded recursion did not fault")
	}
}

func TestGlobalDefinesEmittedAtStartup(t *testing.T) {
	mod := mir.NewModule("gdef")
	b := mir.NewBuilder(mod)
	sig := mir.FuncType(mir.Void)
	fn := b.Func("handler", sig)
	b.Ret(nil)
	g := b.Global("hook", mir.Ptr(sig), "data")
	g.InitFuncs[0] = fn
	rog := b.Global("rotable", mir.Ptr(sig), "data")
	rog.ReadOnly = true
	rog.InitFuncs[0] = fn
	b.Func("main", mir.FuncType(mir.I64))
	b.Ret(mir.ConstInt(0))
	mod.Finalize()

	var msgs []ipc.Message
	cfg := Config{
		EmitGlobalDefines: true,
		Emit:              func(m ipc.Message) error { msgs = append(msgs, m); return nil },
	}
	p, err := NewProcess(mod, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0].Op != ipc.OpPointerDefine {
		t.Fatalf("startup messages = %v, want one define (read-only global skipped)", msgs)
	}
	if msgs[0].Arg1 != p.GlobalAddr(g) || msgs[0].Arg2 != p.FuncAddr(fn) {
		t.Errorf("define args = %#x,%#x", msgs[0].Arg1, msgs[0].Arg2)
	}
}

func TestIntrinsicLibmAndX87Fallback(t *testing.T) {
	mod := mir.NewModule("fp")
	b := mir.NewBuilder(mod)
	sqrt := mir.NewFunc("libm.sqrt", mir.FuncType(mir.I64, mir.I64), "x")
	sqrt.Intrinsic = true
	mod.AddFunc(sqrt)
	i2f := mir.NewFunc("libm.i2f", mir.FuncType(mir.I64, mir.I64), "x")
	i2f.Intrinsic = true
	mod.AddFunc(i2f)
	b.Func("main", mir.FuncType(mir.I64))
	x := b.Call(i2f, mir.ConstInt(2))
	r := b.Call(sqrt, x)
	b.Syscall(SysWrite, r)
	b.Ret(mir.ConstInt(0))
	mod.Finalize()

	res, _ := run(t, mod, Config{}, "main")
	resX87, _ := run(t, mod.Clone(), Config{X87Fallback: true}, "main")
	if res.Err != nil || resX87.Err != nil {
		t.Fatalf("errs: %v %v", res.Err, resX87.Err)
	}
	if res.Output[0] == resX87.Output[0] {
		t.Error("x87 fallback produced bit-identical sqrt(2); precision divergence not modelled")
	}
}
