// Package vm executes MIR programs inside a simulated process: a paged
// address space with code/data/BSS/heap/stack segments, in-memory call
// frames whose return-address slots can really be corrupted, a heap whose
// overflows really clobber neighbours, and runtime hooks implementing the
// messaging runtime of HerQules as well as the in-process mechanisms of the
// baseline CFI designs (Clang/LLVM CFI type checks, CCFI MACs, CPI's safe
// store, safe stacks with and without guard pages).
//
// The VM is where attacks meet defences: an exploit is an ordinary MIR
// program with a memory-safety bug, a corrupted control transfer is really
// taken (returns dispatch through the in-memory slot, indirect calls through
// the register value), and a defence wins by making the transfer fault, a
// check trap, or the verifier kill the process before the payload's system
// call executes.
package vm

import (
	"herqules/internal/ipc"
	"herqules/internal/sim"
)

// Gate is the syscall-gate dependency of bounded asynchronous validation
// (§2.2): SyscallEnter blocks the process's pending system call until
// validation has caught up, returning a non-nil error when the process was
// killed instead (the error text is the kill reason). *kernel.Kernel is the
// in-process implementation; internal/hqnet's Client implements the same
// contract over a network session to a resident hqd daemon.
type Gate interface {
	SyscallEnter(pid int32, syscallNo int) error
}

// RetSlotPlacement selects where call frames keep their return-address slot
// (§6.3.4): inline in the frame (corruptible by contiguous overflow), or on
// a separate safe stack hidden at a randomized address, with or without a
// guard page between the regular and safe stacks.
type RetSlotPlacement int

// Return-slot placements.
const (
	// PlaceRegular keeps the return slot at the top of each stack frame,
	// like plain x86. Used by Baseline, HQ-CFI-RetPtr and CCFI.
	PlaceRegular RetSlotPlacement = iota
	// PlaceSafeGuarded uses a safe stack separated from the regular stack
	// by an unmapped guard page, as Clang's safe-stack runtime does. Used
	// by Clang/LLVM CFI and HQ-CFI-SfeStk.
	PlaceSafeGuarded
	// PlaceSafeAdjacent uses a safe stack directly adjacent to the regular
	// stack with no guard page, like CPI's original runtime — reachable by
	// a linear overwrite from the stack (§5.2).
	PlaceSafeAdjacent
)

func (p RetSlotPlacement) String() string {
	switch p {
	case PlaceRegular:
		return "regular"
	case PlaceSafeGuarded:
		return "safe+guard"
	case PlaceSafeAdjacent:
		return "safe-adjacent"
	default:
		return "placement(?)"
	}
}

// Config parameterizes a Process.
type Config struct {
	// Placement selects the return-slot strategy (set by the design's
	// instrumentation pass).
	Placement RetSlotPlacement

	// ContinueOnViolation makes in-process checks (Clang-CFI, CCFI)
	// record violations and continue instead of trapping, matching the
	// paper's §5 methodology ("we continue execution after a policy
	// violation, except when evaluating effectiveness").
	ContinueOnViolation bool

	// X87Fallback models CCFI's reserved-XMM-register workaround: the
	// floating-point intrinsic runtime falls back to x87 extended
	// precision with double rounding, perturbing results (§5.1).
	X87Fallback bool

	// ElideReadOnlyGates skips kernel gating (and the preceding
	// synchronization message, elided by the compiler) for system calls
	// with no external side effects — the §5.3.3 future-work optimization.
	ElideReadOnlyGates bool

	// EmitGlobalDefines makes the loader send Pointer-Define messages for
	// global control-flow pointers immediately after startup, modelling
	// the initializer function HQ inserts (§4.1.4).
	EmitGlobalDefines bool

	// MACGlobals makes the loader compute CCFI MACs for statically
	// initialized global code pointers (CCFI's startup registration).
	MACGlobals bool

	// SafeStoreGlobals makes the loader seed CPI's safe store with
	// statically initialized global code pointers (CPI's startup
	// registration of relocated pointers).
	SafeStoreGlobals bool

	// Emit transmits one AppendWrite message; nil discards messages (the
	// program is not monitored). The hook either writes to an ipc.Sender
	// (concurrent mode) or delivers inline to a verifier (deterministic
	// mode).
	Emit func(ipc.Message) error

	// Killed reports whether the kernel has killed the process; checked
	// after messages and at system calls. nil means never.
	Killed func() (bool, string)

	// Kernel gates system calls when non-nil (bounded asynchronous
	// validation); PID identifies this process to kernel and verifier.
	// *kernel.Kernel is the local implementation; the networked plane's
	// hqnet.Client satisfies the same interface by running the gate on the
	// remote daemon.
	Kernel Gate
	PID    int32

	// Cost is the cycle model; nil charges nothing.
	Cost *sim.CostModel

	// MaxInstructions bounds execution (hang detection). 0 means the
	// default of 200 million.
	MaxInstructions uint64

	// HeapSize and StackSize size the segments; 0 selects defaults.
	HeapSize  uint64
	StackSize uint64

	// Seed randomizes the hidden safe-region placement (information
	// hiding). The same seed reproduces the same layout.
	Seed uint64
}

// Emit sends a message through the configured hook, applying the process
// PID.
func (c *Config) emit(m ipc.Message) error {
	if c.Emit == nil {
		return nil
	}
	m.PID = c.PID
	return c.Emit(m)
}
