package vm

import (
	"testing"
	"testing/quick"
	"time"

	"herqules/internal/kernel"
	"herqules/internal/mir"
)

func TestBinOpSemantics(t *testing.T) {
	cases := []struct {
		k       mir.BinKind
		x, y, r uint64
		err     bool
	}{
		{mir.BinAdd, 7, 35, 42, false},
		{mir.BinSub, 7, 9, ^uint64(1), false}, // wraps like hardware
		{mir.BinMul, 6, 7, 42, false},
		{mir.BinDiv, 42, 6, 7, false},
		{mir.BinDiv, 1, 0, 0, true},
		{mir.BinRem, 43, 6, 1, false},
		{mir.BinRem, 1, 0, 0, true},
		{mir.BinAnd, 0xf0, 0x3c, 0x30, false},
		{mir.BinOr, 0xf0, 0x0c, 0xfc, false},
		{mir.BinXor, 0xff, 0x0f, 0xf0, false},
		{mir.BinShl, 1, 6, 64, false},
		{mir.BinShl, 1, 64, 1, false}, // shift masked to 6 bits like x86
		{mir.BinShr, 64, 6, 1, false},
	}
	for _, c := range cases {
		got, err := binOp(c.k, c.x, c.y)
		if (err != nil) != c.err {
			t.Errorf("%v(%d,%d): err=%v", c.k, c.x, c.y, err)
			continue
		}
		if !c.err && got != c.r {
			t.Errorf("%v(%d,%d) = %d, want %d", c.k, c.x, c.y, got, c.r)
		}
	}
}

func TestCmpOpSemantics(t *testing.T) {
	type tc struct {
		k       mir.CmpKind
		x, y, r uint64
	}
	cases := []tc{
		{mir.CmpEq, 5, 5, 1}, {mir.CmpEq, 5, 6, 0},
		{mir.CmpNe, 5, 6, 1}, {mir.CmpNe, 5, 5, 0},
		{mir.CmpLt, 5, 6, 1}, {mir.CmpLt, 6, 5, 0},
		{mir.CmpLe, 5, 5, 1}, {mir.CmpLe, 6, 5, 0},
		{mir.CmpGt, 6, 5, 1}, {mir.CmpGt, 5, 6, 0},
		{mir.CmpGe, 5, 5, 1}, {mir.CmpGe, 5, 6, 0},
	}
	for _, c := range cases {
		if got := cmpOp(c.k, c.x, c.y); got != c.r {
			t.Errorf("%v(%d,%d) = %d, want %d", c.k, c.x, c.y, got, c.r)
		}
	}
	// Property: Lt and Ge are complements (unsigned).
	f := func(x, y uint64) bool {
		return cmpOp(mir.CmpLt, x, y)+cmpOp(mir.CmpGe, x, y) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNarrowLoadsAndStores(t *testing.T) {
	// i8/i16/i32 stores and loads must truncate and zero-extend.
	mod := mir.NewModule("narrow")
	b := mir.NewBuilder(mod)
	b.Func("main", mir.FuncType(mir.I64))
	s8 := b.Alloca("b8", mir.I8)
	s16 := b.Alloca("b16", mir.I16)
	s32 := b.Alloca("b32", mir.I32)
	// Store wide values through narrow types.
	v8 := b.Cast(mir.ConstInt(0x1ff), mir.I8)
	b.Store(v8, s8)
	v16 := b.Cast(mir.ConstInt(0x1ffff), mir.I16)
	b.Store(v16, s16)
	v32 := b.Cast(mir.ConstInt(0x1_ffff_ffff), mir.I32)
	b.Store(v32, s32)
	l8 := b.Load(s8)
	l16 := b.Load(s16)
	l32 := b.Load(s32)
	sum := b.Add(b.Add(b.Cast(l8, mir.I64), b.Cast(l16, mir.I64)), b.Cast(l32, mir.I64))
	b.Ret(sum)
	mod.Finalize()

	res, _ := run(t, mod, Config{}, "main")
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	want := uint64(0xff + 0xffff + 0xffff_ffff)
	if res.ExitCode != want {
		t.Errorf("narrow round trip = %#x, want %#x", res.ExitCode, want)
	}
}

func TestResultCrashedAndAccessors(t *testing.T) {
	mod := mir.NewModule("crash")
	b := mir.NewBuilder(mod)
	fn := b.Func("main", mir.FuncType(mir.I64))
	b.Store(mir.ConstInt(1), mir.ConstTyped(mir.Ptr(mir.I64), 0x10)) // unmapped
	b.Ret(mir.ConstInt(0))
	mod.Finalize()
	p, err := NewProcess(mod, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := p.Run("main")
	if !res.Crashed() {
		t.Error("Crashed() false after a fault")
	}
	if p.FuncAt(p.FuncAddr(fn)) != fn {
		t.Error("FuncAt/FuncAddr disagree")
	}
	if StaticFuncAddr(0) != p.FuncAddr(fn) {
		t.Error("StaticFuncAddr(0) does not match the first function")
	}
}

func TestSafeBaseExposedOnlyUnderSafeStack(t *testing.T) {
	mod := mir.NewModule("sb")
	b := mir.NewBuilder(mod)
	b.Func("main", mir.FuncType(mir.I64))
	b.Ret(mir.ConstInt(0))
	mod.Finalize()
	pReg, _ := NewProcess(mod.Clone(), Config{Placement: PlaceRegular})
	if pReg.SafeBase() != 0 {
		t.Error("regular placement has a safe region")
	}
	pSafe, _ := NewProcess(mod.Clone(), Config{Placement: PlaceSafeGuarded, Seed: 1})
	pSafe2, _ := NewProcess(mod.Clone(), Config{Placement: PlaceSafeGuarded, Seed: 2})
	if pSafe.SafeBase() == 0 {
		t.Error("guarded placement missing safe region")
	}
	if pSafe.SafeBase() == pSafe2.SafeBase() {
		t.Error("information hiding: different seeds produced the same safe base")
	}
}

func TestReadOnlySyscallClassification(t *testing.T) {
	for _, no := range []int{SysNop, SysRandom, SysFrameRetSlotAddr, SysLeakRetSlotAddr} {
		if !ReadOnlySyscall(no) {
			t.Errorf("syscall %d should be read-only", no)
		}
	}
	for _, no := range []int{SysWrite, SysSend, SysExit, SysMarkExploit} {
		if ReadOnlySyscall(no) {
			t.Errorf("syscall %d must not be read-only", no)
		}
	}
}

func TestElideReadOnlyGatesSkipsKernel(t *testing.T) {
	// With elision on and no sync messages at all, a read-only syscall
	// must pass ungated while an effectful one stalls to the epoch.
	build := func(no int) *mir.Module {
		mod := mir.NewModule("gates")
		b := mir.NewBuilder(mod)
		b.Func("main", mir.FuncType(mir.I64))
		b.Syscall(no)
		b.Ret(mir.ConstInt(0))
		mod.Finalize()
		return mod
	}
	runWith := func(mod *mir.Module) *Result {
		k := kernel.New(nil)
		k.Epoch = 20 * time.Millisecond
		pid := k.Register()
		cfg := Config{
			Kernel: k, PID: pid, ElideReadOnlyGates: true,
			Killed: func() (bool, string) { return k.Killed(pid) },
		}
		p, err := NewProcess(mod, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return p.Run("main")
	}
	if res := runWith(build(SysNop)); res.Err != nil || res.Killed {
		t.Errorf("read-only syscall gated: err=%v killed=%t", res.Err, res.Killed)
	}
	if res := runWith(build(SysSend)); !res.Killed {
		t.Error("effectful syscall passed without synchronization")
	}
}

func TestIntrinsicsCoverage(t *testing.T) {
	mod := mir.NewModule("intr")
	b := mir.NewBuilder(mod)
	names := []string{"libm.sin", "libm.exp", "libm.mul", "libm.add", "libm.f2i", "libm.i2f", "ext.unknown"}
	var fns []*mir.Func
	for _, n := range names {
		f := mir.NewFunc(n, mir.FuncType(mir.I64, mir.I64, mir.I64), "a", "b")
		f.Intrinsic = true
		mod.AddFunc(f)
		fns = append(fns, f)
	}
	b.Func("main", mir.FuncType(mir.I64))
	one := b.Call(fns[5], mir.ConstInt(1), mir.ConstInt(0)) // i2f(1)
	v := b.Call(fns[0], one, mir.ConstInt(0))               // sin(1.0)
	v = b.Call(fns[1], v, mir.ConstInt(0))                  // exp(sin(1))
	v = b.Call(fns[2], v, one)                              // *1.0
	v = b.Call(fns[3], v, one)                              // +1.0
	r := b.Call(fns[4], v, mir.ConstInt(0))                 // f2i
	z := b.Call(fns[6], r, mir.ConstInt(0))                 // unknown -> 0
	b.Ret(b.Add(r, z))
	mod.Finalize()

	res, _ := run(t, mod, Config{}, "main")
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	// exp(sin(1)) + 1 ≈ 3.32 → truncates to 3.
	if res.ExitCode != 3 {
		t.Errorf("intrinsic chain = %d, want 3", res.ExitCode)
	}
}

