package vm

import (
	"math"

	"herqules/internal/mir"
)

// System call numbers recognized by the VM. The low numbers model ordinary
// kernel services; the 1000-range numbers are evaluation intrinsics that
// model capabilities the RIPE suite obtains through compiler built-ins or
// shellcode (§5.2).
const (
	// SysWrite appends its argument to the process output (the
	// correctness-comparison channel, standing in for stdout).
	SysWrite = 1
	// SysNop is a read-only kernel service (models stat/time/getpid-style
	// calls with no externally visible side effects).
	SysNop = 39
	// SysSend is an effectful kernel service (models write/send/accept-
	// style calls whose side effects bounded asynchronous validation must
	// gate).
	SysSend = 44
	// SysExit terminates the process with the given code.
	SysExit = 60
	// SysRandom returns a deterministic pseudo-random value (the VM's
	// getrandom is seeded, so runs are reproducible).
	SysRandom = 318

	// SysFrameRetSlotAddr returns the address where the current frame's
	// return slot would live on a plain stack. With ASLR disabled this is
	// what an attacker computes from layout knowledge; under safe-stack
	// designs the actual slot lives elsewhere, so writes here miss.
	SysFrameRetSlotAddr = 1001
	// SysLeakRetSlotAddr returns the *actual* address of the current
	// frame's return slot, wherever the design placed it. This models
	// RIPE's use of a compiler built-in to retrieve return pointer
	// addresses — the disclosure-attack emulation that defeats
	// information hiding (§5.2).
	SysLeakRetSlotAddr = 1002
	// SysMarkExploit records that attacker-controlled code reached a
	// system call — the RIPE success criterion. Mirroring the paper's
	// treatment of RIPE's execve, it is exempt from synchronization
	// enforcement but still fails once the process has been killed.
	SysMarkExploit = 1003
)

// ReadOnlySyscall reports whether a system call has no externally visible
// side effects, so skipping its synchronization cannot let a compromised
// program affect the outside world — the elision the paper lists as a
// future improvement (§5.3.3).
func ReadOnlySyscall(no int) bool {
	switch no {
	case SysNop, SysRandom, SysFrameRetSlotAddr, SysLeakRetSlotAddr:
		return true
	}
	return false
}

// syscall executes one system call, including HerQules' bounded asynchronous
// validation: when a kernel is attached, the call is gated until the
// verifier confirms, and fails if the process has been killed.
func (p *Process) syscall(in *mir.Instr, fr *frame) (uint64, error) {
	p.res.Stats.Syscalls++
	if !p.cost.ExcludeSyscalls {
		p.res.Stats.Cycles += p.cost.Syscall
	}

	// Evaluation intrinsics that only read frame state skip the kernel.
	switch in.SyscallNo {
	case SysFrameRetSlotAddr:
		return fr.inFrameSlot, nil
	case SysLeakRetSlotAddr:
		return fr.retSlot, nil
	}

	if p.checkKilled() {
		return 0, errKilled
	}
	gated := p.cfg.Kernel != nil && in.SyscallNo != SysMarkExploit
	if gated && p.cfg.ElideReadOnlyGates && ReadOnlySyscall(in.SyscallNo) {
		gated = false
	}
	if gated {
		// Bounded asynchronous validation adds the kernel↔verifier
		// confirmation latency to every gated system call (§2.2).
		if !p.cost.ExcludeSyscalls {
			p.res.Stats.Cycles += p.cost.SyncStall
		}
		if err := p.cfg.Kernel.SyscallEnter(p.cfg.PID, in.SyscallNo); err != nil {
			p.res.Killed = true
			p.res.KillReason = err.Error()
			return 0, errKilled
		}
	}

	args := p.evalArgs(in.Args, fr)
	arg := func(i int) uint64 {
		if i < len(args) {
			return args[i]
		}
		return 0
	}
	switch in.SyscallNo {
	case SysWrite:
		p.res.Output = append(p.res.Output, arg(0))
		return 8, nil
	case SysNop, SysSend:
		return 0, nil
	case SysExit:
		p.res.ExitCode = arg(0)
		p.halt = true
		return 0, errHalt
	case SysRandom:
		return p.nextRand(), nil
	case SysMarkExploit:
		// Re-check after the (skipped) gate: a kill ordered by the
		// verifier still prevents the payload's side effect.
		if p.checkKilled() {
			return 0, errKilled
		}
		p.res.ExploitMarker = true
		return 0, nil
	default:
		// Unknown syscalls behave as no-ops (ENOSYS-ish).
		return ^uint64(0), nil
	}
}

// intrinsic executes a runtime-provided bodyless function. The libm.*
// intrinsics operate on float64 bit patterns; under the CCFI
// register-pressure fallback (X87Fallback) results are double-rounded,
// modelling the numerical divergence the paper observed when CCFI's reserved
// XMM registers forced x87 code paths (§5.1).
func (p *Process) intrinsic(fn *mir.Func, args []uint64) (uint64, error) {
	arg := func(i int) uint64 {
		if i < len(args) {
			return args[i]
		}
		return 0
	}
	switch fn.Name {
	case "libm.sqrt":
		return p.fpResult(math.Sqrt(math.Float64frombits(arg(0)))), nil
	case "libm.sin":
		return p.fpResult(math.Sin(math.Float64frombits(arg(0)))), nil
	case "libm.exp":
		return p.fpResult(math.Exp(math.Float64frombits(arg(0)))), nil
	case "libm.mul":
		return p.fpResult(math.Float64frombits(arg(0)) * math.Float64frombits(arg(1))), nil
	case "libm.add":
		return p.fpResult(math.Float64frombits(arg(0)) + math.Float64frombits(arg(1))), nil
	case "libm.i2f":
		return math.Float64bits(float64(arg(0))), nil
	case "libm.f2i":
		f := math.Float64frombits(arg(0))
		if f != f || f > 1e18 || f < -1e18 {
			return 0, nil
		}
		return uint64(int64(f)), nil
	default:
		// Unknown intrinsics return 0 (weak stubs).
		return 0, nil
	}
}

// fpResult converts a float result to bits, applying the x87 double-rounding
// perturbation under the CCFI fallback.
func (p *Process) fpResult(f float64) uint64 {
	bits := math.Float64bits(f)
	if p.cfg.X87Fallback {
		// Model the observable effect of a different rounding path:
		// truncate the low mantissa bits the second rounding disturbs.
		bits &^= 0x7
	}
	return bits
}
