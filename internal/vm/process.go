package vm

import (
	"errors"
	"fmt"

	"herqules/internal/ipc"
	"herqules/internal/mem"
	"herqules/internal/mir"
	"herqules/internal/sim"
)

// Address-space layout. ASLR is disabled in the paper's experiments (§5.2),
// so the fixed segments are "known" to attack programs; only the safe
// region's offset is randomized (information hiding).
const (
	codeBase   = 0x0040_0000
	funcStride = 0x100 // each function occupies a fake 256-byte code region

	rodataBase = 0x0060_0000
	dataBase   = 0x0080_0000
	bssBase    = 0x00a0_0000

	heapBase         = 0x0200_0000
	defaultHeapSize  = 8 << 20
	stackLow         = 0x7ff0_0000
	defaultStackSize = 1 << 20

	// exitToken is the encoded return address of the entry frame; a
	// normal return from the entry function "returns to the kernel".
	exitToken = 0x00ee_0000

	// safeRegionSize is the size of the hidden safe region used for safe
	// stacks.
	safeRegionSize = 64 * mem.PageSize
)

// Execution errors.
var (
	// ErrLimit reports that MaxInstructions was exceeded (hang).
	ErrLimit = errors.New("vm: instruction limit exceeded (hang)")
	// ErrTrap reports an in-process security check failure (Clang-CFI
	// class mismatch, CCFI MAC mismatch, recursion-guard failure).
	ErrTrap = errors.New("vm: security trap")
	// ErrStackCorrupt reports that a return dispatched through a
	// corrupted return slot that did not decode to any function.
	ErrStackCorrupt = errors.New("vm: corrupted return address")
)

// Stats counts execution events.
type Stats struct {
	Instructions uint64
	Loads        uint64
	Stores       uint64
	Calls        uint64
	ICalls       uint64
	Messages     uint64
	Syscalls     uint64
	Cycles       uint64
	BlockBytes   uint64
	MaxDepth     int
}

// Result is the outcome of running a process.
type Result struct {
	// ExitCode is the program's exit status (syscall exit or entry
	// return value).
	ExitCode uint64
	// Output collects values written by the output syscall, used for
	// correctness comparison against an uninstrumented run (Table 4).
	Output []uint64
	// Err is non-nil when the program crashed (fault, trap, hang).
	Err error
	// Killed reports termination by the kernel on the verifier's order.
	Killed     bool
	KillReason string
	// Hijacked reports that a corrupted control transfer reached
	// attacker-chosen code (whether or not its payload then succeeded).
	Hijacked bool
	// ExploitMarker is set when the exploit payload's marker system call
	// executed — the RIPE success criterion (§5.2).
	ExploitMarker bool
	// Violations counts in-process check failures observed while
	// continuing (false positives in benign runs).
	Violations int
	Stats      Stats
}

// Crashed reports whether the run ended in an error (crash or hang).
func (r *Result) Crashed() bool { return r.Err != nil }

// funcMeta is per-function frame layout, precomputed at load time.
type funcMeta struct {
	frameSize  uint64
	allocaOffs map[*mir.Instr]uint64
	// Safe-stack designs move eligible locals to the safe region: these
	// offsets are relative to the frame's safe area, which starts with
	// the return slot.
	safeOffs map[*mir.Instr]uint64
	safeSize uint64
	addr     uint64
}

// Process is one loaded program instance.
type Process struct {
	Mod  *mir.Module
	Mem  *mem.Memory
	Heap *mem.Allocator
	cfg  Config
	cost *sim.CostModel

	funcMeta   map[*mir.Func]*funcMeta
	funcAt     map[uint64]*mir.Func
	globalAddr map[*mir.Global]uint64

	// Safe region (hidden): return slots under safe-stack placements.
	safeBase uint64
	safeTop  uint64 // next free safe slot (grows up)

	sp    uint64 // regular stack pointer (grows down)
	depth int

	// Design runtime state.
	macKey    uint64            // CCFI register-held key
	macTable  map[uint64]uint64 // CCFI shadow MACs
	safeStore map[uint64]uint64 // CPI safe pointer store
	guards    map[int]bool      // recursion guards

	res  *Result
	rng  uint64
	halt bool // set by exit syscall
}

// NewProcess loads mod into a fresh address space.
func NewProcess(mod *mir.Module, cfg Config) (*Process, error) {
	if cfg.HeapSize == 0 {
		cfg.HeapSize = defaultHeapSize
	}
	if cfg.StackSize == 0 {
		cfg.StackSize = defaultStackSize
	}
	if cfg.MaxInstructions == 0 {
		cfg.MaxInstructions = 200_000_000
	}
	cost := cfg.Cost
	if cost == nil {
		cost = &sim.CostModel{}
	}
	p := &Process{
		Mod:        mod,
		Mem:        mem.New(),
		cfg:        cfg,
		cost:       cost,
		funcMeta:   make(map[*mir.Func]*funcMeta),
		funcAt:     make(map[uint64]*mir.Func),
		globalAddr: make(map[*mir.Global]uint64),
		macTable:   make(map[uint64]uint64),
		safeStore:  make(map[uint64]uint64),
		guards:     make(map[int]bool),
		rng:        cfg.Seed*2862933555777941757 + 3037000493,
		macKey:     cfg.Seed ^ 0x9e3779b97f4a7c15,
		res:        &Result{},
	}
	if err := p.load(); err != nil {
		return nil, err
	}
	return p, nil
}

// load lays out code, globals, heap, stack and the hidden safe region.
func (p *Process) load() error {
	// Code: one fake region per function, mapped read+exec.
	nfuncs := len(p.Mod.Funcs)
	if nfuncs > 0 {
		if err := p.Mem.Map(codeBase, uint64(nfuncs)*funcStride, mem.Read|mem.Exec); err != nil {
			return err
		}
	}
	for i, f := range p.Mod.Funcs {
		addr := uint64(codeBase + i*funcStride)
		p.funcMeta[f] = p.layoutFunc(f, addr)
		p.funcAt[addr] = f
	}

	// Globals: partition by segment.
	if err := p.layoutGlobals(); err != nil {
		return err
	}

	// Heap.
	if err := p.Mem.Map(heapBase, p.cfg.HeapSize, mem.Read|mem.Write); err != nil {
		return err
	}
	p.Heap = mem.NewAllocator(p.Mem, heapBase, p.cfg.HeapSize)

	// Regular stack: [stackLow, stackLow+StackSize), SP at the top.
	if err := p.Mem.Map(stackLow, p.cfg.StackSize, mem.Read|mem.Write); err != nil {
		return err
	}
	p.sp = stackLow + p.cfg.StackSize

	// Safe region for safe-stack placements.
	stackTop := stackLow + p.cfg.StackSize
	switch p.cfg.Placement {
	case PlaceSafeAdjacent:
		// CPI layout: the safe stack begins exactly where the regular
		// stack ends — reachable by a linear overwrite (§5.2).
		p.safeBase = stackTop
	case PlaceSafeGuarded:
		// Clang layout: an unmapped guard page separates the stacks, so
		// a linear overwrite faults before reaching a return slot.
		// Information hiding additionally randomizes the offset.
		p.safeBase = stackTop + mem.PageSize + (p.nextRand()%256)*mem.PageSize
	default:
		p.safeBase = 0
	}
	if p.safeBase != 0 {
		if err := p.Mem.Map(p.safeBase, safeRegionSize, mem.Read|mem.Write); err != nil {
			return err
		}
		p.safeTop = p.safeBase
	}
	return nil
}

// layoutFunc precomputes the frame layout: allocas packed from the frame
// base upward, the in-frame return slot as the top word (so a contiguous
// overflow of a local buffer reaches it, like x86). Allocas marked SafeSlot
// are laid out in the frame's safe area instead when the process runs a
// safe stack.
func (p *Process) layoutFunc(f *mir.Func, addr uint64) *funcMeta {
	m := &funcMeta{
		allocaOffs: make(map[*mir.Instr]uint64),
		safeOffs:   make(map[*mir.Instr]uint64),
		addr:       addr,
	}
	useSafe := p.cfg.Placement != PlaceRegular
	var off, safeOff uint64
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op != mir.OpAlloca {
				continue
			}
			a := in.AllocTy.Align()
			if a < 8 {
				a = 8
			}
			if useSafe && in.SafeSlot {
				safeOff = (safeOff + a - 1) &^ (a - 1)
				m.safeOffs[in] = safeOff
				safeOff += in.AllocTy.Size()
			} else {
				off = (off + a - 1) &^ (a - 1)
				m.allocaOffs[in] = off
				off += in.AllocTy.Size()
			}
		}
	}
	off = (off + 7) &^ 7
	m.frameSize = off + 8 // + in-frame return slot
	m.safeSize = (safeOff + 7) &^ 7
	return m
}

func (p *Process) layoutGlobals() error {
	bases := map[string]uint64{"rodata": rodataBase, "data": dataBase, "bss": bssBase}
	next := map[string]uint64{"rodata": rodataBase, "data": dataBase, "bss": bssBase}
	for _, g := range p.Mod.Globals {
		seg := g.Segment
		if g.ReadOnly {
			seg = "rodata"
		}
		if seg != "bss" && seg != "rodata" {
			seg = "data"
		}
		addr := next[seg]
		a := g.Elem.Align()
		if a < 8 {
			a = 8
		}
		addr = (addr + a - 1) &^ (a - 1)
		size := g.Elem.Size()
		if size == 0 {
			size = 8
		}
		next[seg] = addr + size
		p.globalAddr[g] = addr
		g.Addr = addr
	}
	for seg, base := range bases {
		if next[seg] == base {
			continue
		}
		perm := mem.Read | mem.Write
		if seg == "rodata" {
			perm = mem.Read
		}
		if err := p.Mem.Map(base, next[seg]-base, perm); err != nil {
			return err
		}
	}
	// Initialize global contents (privileged loader stores, so read-only
	// segments can be populated).
	for _, g := range p.Mod.Globals {
		addr := p.globalAddr[g]
		words := int((g.Elem.Size() + 7) / 8)
		for i := 0; i < words; i++ {
			var w uint64
			if i < len(g.InitWords) {
				w = g.InitWords[i]
			}
			if fn, ok := g.InitFuncs[i]; ok {
				w = p.FuncAddr(fn)
			}
			var buf [8]byte
			for j := 0; j < 8; j++ {
				buf[j] = byte(w >> (8 * j))
			}
			if err := p.Mem.WriteUnchecked(addr+uint64(i*8), buf[:]); err != nil {
				return err
			}
		}
	}
	// CCFI/CPI startup registration of statically initialized code
	// pointers: without it every load of a loader-initialized pointer
	// would fail its MAC or read a missing safe-store entry.
	if p.cfg.MACGlobals || p.cfg.SafeStoreGlobals {
		for _, g := range p.Mod.Globals {
			if g.ReadOnly {
				continue
			}
			tagType := g.Elem
			if tagType.Kind == mir.KindArray {
				tagType = tagType.Elem
			}
			for i, fn := range g.InitFuncs {
				addr := p.globalAddr[g] + uint64(i*8)
				val := p.FuncAddr(fn)
				if p.cfg.SafeStoreGlobals {
					p.safeStore[addr] = val
				}
				if p.cfg.MACGlobals {
					p.macTable[addr] = p.mac(addr, val, tagType.Signature())
				}
			}
		}
	}

	// HQ's startup initializer: register global control-flow pointers
	// with the verifier (§4.1.4).
	if p.cfg.EmitGlobalDefines {
		for _, g := range p.Mod.Globals {
			if g.ReadOnly {
				continue // read-only pointers need no protection (§4.1.3)
			}
			addr := p.globalAddr[g]
			for i, fn := range g.InitFuncs {
				if err := p.emitMsg(ipc.Message{
					Op:   ipc.OpPointerDefine,
					Arg1: addr + uint64(i*8),
					Arg2: p.FuncAddr(fn),
				}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// StaticFuncAddr returns the code address the loader assigns to the i-th
// function of a module. With ASLR disabled (the paper's configuration,
// §5.2), this layout is known to attackers, and exploit generators use it to
// hardcode payload addresses exactly as RIPE's shellcode does.
func StaticFuncAddr(i int) uint64 { return uint64(codeBase + i*funcStride) }

// FuncAddr returns the code address of f.
func (p *Process) FuncAddr(f *mir.Func) uint64 {
	if m, ok := p.funcMeta[f]; ok {
		return m.addr
	}
	return 0
}

// FuncAt resolves a code address back to a function (nil if the address is
// not a function entry).
func (p *Process) FuncAt(addr uint64) *mir.Func { return p.funcAt[addr] }

// GlobalAddr returns the loaded address of g.
func (p *Process) GlobalAddr(g *mir.Global) uint64 { return p.globalAddr[g] }

// SafeBase exposes the hidden safe-region base — for tests only; guest code
// must obtain it through the disclosure intrinsic.
func (p *Process) SafeBase() uint64 { return p.safeBase }

// emitMsg sends one message and accounts for it; it also observes a kill
// that the message may have triggered (deterministic mode).
func (p *Process) emitMsg(m ipc.Message) error {
	p.res.Stats.Messages++
	p.res.Stats.Cycles += p.cost.MessageSend
	if err := p.cfg.emit(m); err != nil {
		return fmt.Errorf("vm: message send: %w", err)
	}
	return nil
}

// checkKilled polls the kernel-kill hook.
func (p *Process) checkKilled() bool {
	if p.cfg.Killed == nil {
		return false
	}
	killed, reason := p.cfg.Killed()
	if killed {
		p.res.Killed = true
		p.res.KillReason = reason
	}
	return killed
}

func (p *Process) nextRand() uint64 {
	p.rng ^= p.rng << 13
	p.rng ^= p.rng >> 7
	p.rng ^= p.rng << 17
	return p.rng
}
