package vm

import (
	"testing"

	"herqules/internal/ipc"
	"herqules/internal/mir"
)

// collectOps runs mod and returns the emitted message op sequence.
func collectOps(t *testing.T, mod *mir.Module, cfg Config) ([]ipc.Message, *Result) {
	t.Helper()
	var msgs []ipc.Message
	cfg.Emit = func(m ipc.Message) error { msgs = append(msgs, m); return nil }
	p, err := NewProcess(mod, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := p.Run("main")
	return msgs, res
}

func TestBlockMessageRuntimeOps(t *testing.T) {
	mod := mir.NewModule("blocks")
	b := mir.NewBuilder(mod)
	b.Func("main", mir.FuncType(mir.I64))
	src := b.Malloc(mir.ConstInt(48))
	dst := b.Malloc(mir.ConstInt(48))
	b.Runtime(mir.RTBlockCopy, src, dst, mir.ConstInt(48))
	// Size 0 resolves through the allocator (malloc_usable_size).
	b.Runtime(mir.RTBlockInvalidate, src, mir.ConstInt(0))
	nw := b.Realloc(dst, mir.ConstInt(96))
	b.Runtime(mir.RTBlockMove, dst, nw, mir.ConstInt(0))
	b.Ret(mir.ConstInt(0))
	mod.Finalize()

	msgs, res := collectOps(t, mod, Config{})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(msgs) != 3 {
		t.Fatalf("messages = %v", msgs)
	}
	if msgs[0].Op != ipc.OpPointerBlockCopy || msgs[0].Arg3 != 48 {
		t.Errorf("block copy = %v", msgs[0])
	}
	if msgs[1].Op != ipc.OpPointerBlockInvalidate || msgs[1].Arg2 != 48 {
		t.Errorf("invalidate with resolved size = %v", msgs[1])
	}
	if msgs[2].Op != ipc.OpPointerBlockMove || msgs[2].Arg3 != 96 {
		t.Errorf("move with destination-resolved size = %v", msgs[2])
	}
}

func TestAllocRuntimeOps(t *testing.T) {
	mod := mir.NewModule("allocops")
	b := mir.NewBuilder(mod)
	b.Func("main", mir.FuncType(mir.I64))
	p := b.Malloc(mir.ConstInt(32))
	b.Runtime(mir.RTAllocCreate, p, mir.ConstInt(32))
	b.Runtime(mir.RTAllocCheck, p)
	b.Runtime(mir.RTAllocCheckBase, p, b.Cast(b.IndexAddr(b.Cast(p, mir.Ptr(mir.I64)), mir.ConstInt(2)), mir.I64))
	q := b.Realloc(p, mir.ConstInt(64))
	b.Runtime(mir.RTAllocExtend, p, q, mir.ConstInt(0))
	b.Runtime(mir.RTAllocDestroy, q)
	b.Runtime(mir.RTAllocDestroyAll, q, mir.ConstInt(64))
	b.Runtime(mir.RTCounterInc, mir.ConstInt(3))
	b.Free(q)
	b.Ret(mir.ConstInt(0))
	mod.Finalize()

	msgs, res := collectOps(t, mod, Config{})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	want := []ipc.Op{
		ipc.OpAllocCreate, ipc.OpAllocCheck, ipc.OpAllocCheckBase,
		ipc.OpAllocExtend, ipc.OpAllocDestroy, ipc.OpAllocDestroyAll,
		ipc.OpCounterInc,
	}
	if len(msgs) != len(want) {
		t.Fatalf("messages = %v", msgs)
	}
	for i, op := range want {
		if msgs[i].Op != op {
			t.Errorf("msg %d = %v, want %v", i, msgs[i].Op, op)
		}
	}
	// The extend resolved its size from the new allocation.
	if msgs[3].Arg3 != 64 {
		t.Errorf("extend size = %d, want 64", msgs[3].Arg3)
	}
}

func TestMACRetRuntimeOps(t *testing.T) {
	// Prologue MAC, corrupt the slot, epilogue MAC must trap.
	mod := mir.NewModule("macret")
	b := mir.NewBuilder(mod)
	b.Func("vuln", mir.FuncType(mir.Void))
	b.Runtime(mir.RTMACRetStore)
	leak := b.Syscall(SysLeakRetSlotAddr)
	b.Store(mir.ConstInt(0xbad), b.Cast(leak, mir.Ptr(mir.I64)))
	b.Runtime(mir.RTMACRetCheck)
	b.Ret(nil)
	b.Func("main", mir.FuncType(mir.I64))
	b.Call(mod.Func("vuln"))
	b.Ret(mir.ConstInt(0))
	mod.Finalize()

	_, res := collectOps(t, mod, Config{})
	if res.Err == nil {
		t.Error("corrupted return slot passed the MAC epilogue")
	}

	// Continue mode records instead.
	_, res2 := collectOps(t, mod, Config{ContinueOnViolation: true})
	if res2.Violations != 1 {
		t.Errorf("violations = %d, want 1", res2.Violations)
	}
}

func TestEmitErrorPropagates(t *testing.T) {
	mod := mir.NewModule("emitfail")
	b := mir.NewBuilder(mod)
	b.Func("main", mir.FuncType(mir.I64))
	b.Runtime(mir.RTPointerDefine, mir.ConstInt(1), mir.ConstInt(2))
	b.Ret(mir.ConstInt(0))
	mod.Finalize()
	cfg := Config{Emit: func(ipc.Message) error { return ipc.ErrClosed }}
	p, err := NewProcess(mod, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := p.Run("main")
	if res.Err == nil {
		t.Error("send failure did not surface")
	}
}

func TestHijackToGarbageCrashes(t *testing.T) {
	// A corrupted return slot that decodes to no function is a plain
	// crash, not a hijack the attacker controls.
	mod := mir.NewModule("garbage")
	b := mir.NewBuilder(mod)
	b.Func("vuln", mir.FuncType(mir.Void))
	leak := b.Syscall(SysLeakRetSlotAddr)
	b.Store(mir.ConstInt(0x1234), b.Cast(leak, mir.Ptr(mir.I64)))
	b.Ret(nil)
	b.Func("main", mir.FuncType(mir.I64))
	b.Call(mod.Func("vuln"))
	b.Ret(mir.ConstInt(0))
	mod.Finalize()

	_, res := collectOps(t, mod, Config{})
	if res.Err == nil {
		t.Error("garbage return address did not crash")
	}
	if !res.Hijacked {
		t.Error("corrupted return not flagged")
	}
	if res.ExploitMarker {
		t.Error("garbage transfer cannot run a payload")
	}
}
