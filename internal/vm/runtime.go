package vm

import (
	"fmt"

	"herqules/internal/ipc"
	"herqules/internal/mir"
)

// runtimeOp executes one instrumentation-inserted runtime call. HQ
// operations become AppendWrite messages; the Clang-CFI, CCFI and CPI
// operations execute in-process, exactly where each design keeps its trust.
func (p *Process) runtimeOp(in *mir.Instr, fr *frame) error {
	arg := func(i int) uint64 {
		if i < len(in.Args) {
			return p.eval(in.Args[i], fr)
		}
		return 0
	}
	emit := func(op ipc.Op, a1, a2, a3 uint64) error {
		if err := p.emitMsg(ipc.Message{Op: op, Arg1: a1, Arg2: a2, Arg3: a3}); err != nil {
			return err
		}
		if p.checkKilled() {
			return errKilled
		}
		return nil
	}
	cost := p.cost.RuntimeCost(in.RT)
	p.res.Stats.Cycles += cost

	switch in.RT {
	// --- HerQules messaging runtime (§4.1.3, §4.1.5, §2.2) ---
	case mir.RTPointerDefine:
		return emit(ipc.OpPointerDefine, arg(0), arg(1), 0)
	case mir.RTPointerCheck:
		return emit(ipc.OpPointerCheck, arg(0), arg(1), 0)
	case mir.RTPointerInvalidate:
		return emit(ipc.OpPointerInvalidate, arg(0), 0, 0)
	case mir.RTPointerCheckInvalidate:
		return emit(ipc.OpPointerCheckInvalidate, arg(0), arg(1), 0)
	case mir.RTBlockCopy:
		return emit(ipc.OpPointerBlockCopy, arg(0), arg(1), arg(2))
	case mir.RTBlockMove:
		// Size resolution uses the destination: the source allocation is
		// already gone after a realloc move.
		return emit(ipc.OpPointerBlockMove, arg(0), arg(1), p.resolveSize(arg(1), arg(2)))
	case mir.RTBlockInvalidate:
		return emit(ipc.OpPointerBlockInvalidate, arg(0), p.resolveSize(arg(0), arg(1)), 0)
	case mir.RTSyscallSync:
		return emit(ipc.OpSyscall, uint64(in.SyscallNo), 0, 0)
	case mir.RTRetDefine:
		return emit(ipc.OpPointerDefine, fr.retSlot, fr.retVal, 0)
	case mir.RTRetCheckInvalidate:
		v, err := p.Mem.ReadWord(fr.retSlot)
		if err != nil {
			return err
		}
		return emit(ipc.OpPointerCheckInvalidate, fr.retSlot, v, 0)

	// --- Memory-safety policy runtime (§4.2) ---
	case mir.RTAllocCreate:
		return emit(ipc.OpAllocCreate, arg(0), arg(1), 0)
	case mir.RTAllocCheck:
		return emit(ipc.OpAllocCheck, arg(0), 0, 0)
	case mir.RTAllocCheckBase:
		return emit(ipc.OpAllocCheckBase, arg(0), arg(1), 0)
	case mir.RTAllocExtend:
		return emit(ipc.OpAllocExtend, arg(0), arg(1), p.resolveSize(arg(1), arg(2)))
	case mir.RTAllocDestroy:
		return emit(ipc.OpAllocDestroy, arg(0), 0, 0)
	case mir.RTAllocDestroyAll:
		return emit(ipc.OpAllocDestroyAll, arg(0), arg(1), 0)

	case mir.RTCounterInc:
		return emit(ipc.OpCounterInc, arg(0), 0, 0)

	// --- Data-flow integrity runtime (§4.3) ---
	case mir.RTDFIDeclare:
		return emit(ipc.OpDFIDeclare, arg(0), arg(1), 0)
	case mir.RTDFISet:
		return emit(ipc.OpDFISet, arg(0), arg(1), 0)
	case mir.RTDFICheck:
		return emit(ipc.OpDFICheck, arg(0), arg(1), 0)

	// --- Clang/LLVM CFI: in-process type-class check (§6.3.1) ---
	case mir.RTClangCFICheck:
		target := arg(0)
		fn := p.funcAt[target]
		if fn == nil || fn.Sig.Signature() != in.ClassSig {
			return p.violation(fmt.Sprintf("clang-cfi: target %#x not in class %s", target, in.ClassSig))
		}
		return nil

	// --- CCFI: MAC-protected code pointers (§6.3.3) ---
	case mir.RTMACStore:
		p.macTable[arg(0)] = p.mac(arg(0), arg(1), in.ClassSig)
		return nil
	case mir.RTMACCheck:
		if p.macTable[arg(0)] != p.mac(arg(0), arg(1), in.ClassSig) {
			return p.violation(fmt.Sprintf("ccfi: MAC mismatch at %#x", arg(0)))
		}
		return nil
	case mir.RTMACRetStore:
		v, err := p.Mem.ReadWord(fr.retSlot)
		if err != nil {
			return err
		}
		p.macTable[fr.retSlot] = p.mac(fr.retSlot, v, "ret")
		return nil
	case mir.RTMACRetCheck:
		v, err := p.Mem.ReadWord(fr.retSlot)
		if err != nil {
			return err
		}
		if p.macTable[fr.retSlot] != p.mac(fr.retSlot, v, "ret") {
			return p.violation(fmt.Sprintf("ccfi: return MAC mismatch at %#x", fr.retSlot))
		}
		return nil

	// --- CPI: safe pointer store (§6.3.3) ---
	case mir.RTSafeStoreSet:
		p.safeStore[arg(0)] = arg(1)
		return nil
	case mir.RTSafeStoreGet:
		fr.vals[in.ID] = p.safeStore[arg(0)]
		return nil

	// --- Store-to-load forwarding recursion guard (§4.1.4) ---
	case mir.RTRecursionGuardEnter:
		if p.guards[in.GuardID] {
			return fmt.Errorf("%w: store-to-load forwarding guard %d: "+
				"optimized function re-entered; recompile with the optimization disabled",
				ErrTrap, in.GuardID)
		}
		p.guards[in.GuardID] = true
		return nil
	case mir.RTRecursionGuardExit:
		p.guards[in.GuardID] = false
		return nil

	default:
		return fmt.Errorf("vm: unknown runtime op %v", in.RT)
	}
}

// violation handles an in-process check failure: record and continue under
// the paper's performance methodology, trap under the effectiveness one.
func (p *Process) violation(reason string) error {
	p.res.Violations++
	if p.cfg.ContinueOnViolation {
		return nil
	}
	return fmt.Errorf("%w: %s", ErrTrap, reason)
}

// resolveSize substitutes the allocator's size for a zero size argument —
// the runtime-library equivalent of malloc_usable_size, used by free and
// realloc instrumentation that cannot know sizes statically.
func (p *Process) resolveSize(addr, size uint64) uint64 {
	if size != 0 {
		return size
	}
	if sz, ok := p.Heap.SizeOf(addr); ok {
		return sz
	}
	return 0
}

// mac computes the CCFI message authentication code over (address, value,
// type tag) with the process's register-held key. One AES round in the real
// system; an unforgeable-without-the-key mix here. Including the address
// prevents replay from other locations; including the type tag is what
// produces CCFI's false positives on casted pointers (§5.1).
func (p *Process) mac(addr, val uint64, tag string) uint64 {
	h := p.macKey
	h ^= addr * 0x9e3779b97f4a7c15
	h = (h << 31) | (h >> 33)
	h ^= val * 0xc2b2ae3d27d4eb4f
	for i := 0; i < len(tag); i++ {
		h = (h ^ uint64(tag[i])) * 0x100000001b3
	}
	h ^= h >> 29
	return h
}
