package compiler

import (
	"fmt"
	"math/rand"
	"testing"

	"herqules/internal/mir"
	"herqules/internal/vm"
)

// genRandomProgram builds a random-but-valid benign program: a pool of
// handler functions, a global and a local function-pointer slot, and a main
// that interleaves arithmetic, memory traffic, pointer rotation, indirect
// calls, direct calls, heap and block operations, emitting output along the
// way. Determinism comes from the seed; benignity by construction (no
// out-of-bounds indices, no stale pointers).
func genRandomProgram(seed int64) *mir.Module {
	rng := rand.New(rand.NewSource(seed))
	mod := mir.NewModule(fmt.Sprintf("rand%d", seed))
	b := mir.NewBuilder(mod)
	sig := mir.FuncType(mir.I64, mir.I64)

	var handlers []*mir.Func
	for i := 0; i < 3; i++ {
		h := b.Func(fmt.Sprintf("h%d", i), sig, "x")
		v := b.Add(h.Params[0], mir.ConstInt(uint64(rng.Intn(100)+1)))
		if rng.Intn(2) == 0 {
			v = b.Bin(mir.BinXor, v, mir.ConstInt(uint64(rng.Intn(1<<16))))
		}
		b.Ret(v)
		handlers = append(handlers, h)
	}

	helper := b.Func("helper", sig, "x")
	pad := b.Alloca("pad", mir.ArrayType(mir.I64, 4))
	b.Store(helper.Params[0], b.IndexAddr(pad, mir.ConstInt(uint64(rng.Intn(4)))))
	b.Ret(b.Mul(helper.Params[0], mir.ConstInt(3)))

	gslot := b.Global("gslot", mir.Ptr(sig), "data")
	arr := b.Global("arr", mir.ArrayType(mir.I64, 16), "bss")

	b.Func("main", mir.FuncType(mir.I64))
	lslot := b.Alloca("lslot", mir.Ptr(sig))
	b.Store(b.FuncAddr(handlers[0]), gslot)
	b.Store(b.FuncAddr(handlers[1]), lslot)
	var v mir.Value = mir.ConstInt(uint64(rng.Intn(1000)))

	steps := rng.Intn(30) + 10
	for s := 0; s < steps; s++ {
		switch rng.Intn(8) {
		case 0: // arithmetic
			v = b.Add(v, mir.ConstInt(uint64(rng.Intn(50))))
		case 1: // memory traffic
			idx := mir.ConstInt(uint64(rng.Intn(16)))
			slot := b.IndexAddr(arr, idx)
			b.Store(v, slot)
			v = b.Add(v, b.Load(slot))
		case 2: // rotate the global pointer
			b.Store(b.FuncAddr(handlers[rng.Intn(len(handlers))]), gslot)
		case 3: // indirect call through the global
			fp := b.Load(gslot)
			v = b.ICall(fp, sig, v)
		case 4: // indirect call through the local
			fp := b.Load(lslot)
			v = b.ICall(fp, sig, v)
		case 5: // direct call
			v = b.Call(helper, v)
		case 6: // heap round trip
			n := uint64(rng.Intn(48) + 16)
			hp := b.Malloc(mir.ConstInt(n))
			w := b.Cast(hp, mir.Ptr(mir.I64))
			b.Store(v, w)
			v = b.Load(w)
			b.Free(hp)
		case 7: // block op over a struct holding a pointer
			holder := mir.StructType("H", mir.I64, mir.Ptr(sig))
			src := b.Alloca(fmt.Sprintf("src%d", s), holder)
			dst := b.Alloca(fmt.Sprintf("dst%d", s), holder)
			b.Store(b.FuncAddr(handlers[rng.Intn(len(handlers))]), b.FieldAddr(src, 1))
			b.Memcpy(dst, src, mir.ConstInt(holder.Size()))
			fp := b.Load(b.FieldAddr(dst, 1))
			v = b.ICall(fp, sig, v)
		}
		if rng.Intn(6) == 0 {
			b.Syscall(vm.SysWrite, v)
		}
	}
	b.Syscall(vm.SysWrite, v)
	b.Syscall(vm.SysExit, mir.ConstInt(0))
	b.Ret(mir.ConstInt(0))
	mod.Finalize()
	return mod
}

// TestDifferentialRandomPrograms is the pipeline's randomized soundness
// check: for many random benign programs, instrumentation under every HQ
// configuration (all optimization combinations) must preserve output
// exactly, raise no violations, and never get the program killed. It also
// exercises the textual round trip on each program.
func TestDifferentialRandomPrograms(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 8
	}
	optionSets := []Options{
		{StrictSubtype: true},
		{StrictSubtype: true, Optimize: true},
		{StrictSubtype: true, Optimize: true, InterProcForwarding: true, Devirtualize: true},
		{StrictSubtype: false, Optimize: true},
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		mod := genRandomProgram(seed)
		if err := mir.Validate(mod); err != nil {
			t.Fatalf("seed %d: invalid program: %v", seed, err)
		}
		// Textual round trip must be a fixed point for arbitrary
		// generated programs, too.
		text := mod.String()
		reparsed, err := mir.ParseModule(text)
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		if reparsed.String() != text {
			t.Fatalf("seed %d: textual round trip diverged", seed)
		}

		base := mustRun(t, instrument(t, mod, Baseline, DefaultOptions()), seed, "baseline")
		for _, d := range []Design{HQSfeStk, HQRetPtr} {
			for oi, opts := range optionSets {
				ins := instrument(t, mod, d, opts)
				res := mustRun(t, ins, seed, fmt.Sprintf("%v/opts%d", d, oi))
				if res.Killed {
					t.Fatalf("seed %d %v opts%d: benign program killed: %s",
						seed, d, oi, res.KillReason)
				}
				if len(res.Output) != len(base.Output) {
					t.Fatalf("seed %d %v opts%d: output length %d vs %d",
						seed, d, oi, len(res.Output), len(base.Output))
				}
				for i := range base.Output {
					if res.Output[i] != base.Output[i] {
						t.Fatalf("seed %d %v opts%d: output[%d] = %d, want %d",
							seed, d, oi, i, res.Output[i], base.Output[i])
					}
				}
			}
		}
	}
}

func mustRun(t *testing.T, ins *Instrumented, seed int64, label string) *vm.Result {
	t.Helper()
	res, _ := launch(t, ins, "main")
	if res.Err != nil {
		t.Fatalf("seed %d %s: crash: %v", seed, label, res.Err)
	}
	return res
}
