// Package compiler implements the instrumentation passes of the HerQules
// case study (§3.2, §4.1.4, §4.1.6) over MIR, plus faithful reimplementations
// of the baseline designs the paper compares against: Clang/LLVM CFI
// (type-class checks + guarded safe stack), CCFI (per-pointer MACs) and CPI
// (safe-store relocation + unguarded safe stack). Each design is a pass
// pipeline that rewrites a cloned module and reports the VM configuration
// (return-slot placement, runtime quirks) that its runtime requires.
package compiler

import (
	"fmt"

	"herqules/internal/mir"
	"herqules/internal/vm"
)

// Design identifies a control-flow-integrity design from Table 3.
type Design int

// Designs under evaluation.
const (
	// Baseline is the uninstrumented program.
	Baseline Design = iota
	// HQSfeStk is HQ-CFI-SfeStk: forward-edge pointer-integrity messages
	// plus a guarded safe stack for return pointers (§4.1.5).
	HQSfeStk
	// HQRetPtr is HQ-CFI-RetPtr: forward-edge messages plus
	// define/check-invalidate messages on return pointers — fully
	// precise, no information hiding (§4.1.5).
	HQRetPtr
	// ClangCFI is modern Clang/LLVM CFI: per-icall type-class checks and
	// a guarded safe stack.
	ClangCFI
	// CCFI is Cryptographically-Enforced CFI: AES-MAC tags on every
	// control-flow pointer, including return addresses.
	CCFI
	// CPI is Code-Pointer Integrity: code pointers relocated to a safe
	// store; return addresses on an unguarded safe stack.
	CPI
)

var designNames = [...]string{
	Baseline: "Baseline",
	HQSfeStk: "HQ-CFI-SfeStk",
	HQRetPtr: "HQ-CFI-RetPtr",
	ClangCFI: "Clang/LLVM CFI",
	CCFI:     "CCFI",
	CPI:      "CPI",
}

func (d Design) String() string {
	if int(d) < len(designNames) {
		return designNames[d]
	}
	return fmt.Sprintf("design(%d)", int(d))
}

// IsHQ reports whether the design uses HerQules messaging.
func (d Design) IsHQ() bool { return d == HQSfeStk || d == HQRetPtr }

// AllDesigns lists every design for table-driven experiments.
func AllDesigns() []Design {
	return []Design{Baseline, HQSfeStk, HQRetPtr, ClangCFI, CCFI, CPI}
}

// Options tune the HQ pass pipeline (§4.1.4).
type Options struct {
	// Optimize enables store-to-load forwarding and message elision.
	Optimize bool
	// InterProcForwarding additionally forwards checked loads across
	// unique call paths, inserting runtime recursion guards where the
	// call graph cannot rule out reentry.
	InterProcForwarding bool
	// Devirtualize enables the C++ devirtualization bundle (virtual
	// pointer invariance, whole-program devirtualization).
	Devirtualize bool
	// StrictSubtype elides instrumentation on block memory operations
	// whose static types cannot contain control-flow pointers. Functions
	// in Allowlist are always instrumented regardless (the paper's
	// workaround for inter-procedurally decayed pointers).
	StrictSubtype bool
	// Allowlist names functions whose block operations are always
	// instrumented under StrictSubtype.
	Allowlist []string
	// MemSafety additionally instruments the memory-safety policy
	// (§4.2): allocation create/check/destroy messages.
	MemSafety bool
	// ElideReadOnlySyncs skips synchronization messages (and kernel
	// gating) for system calls with no external side effects — the
	// future-work optimization of §5.3.3. Off by default, matching the
	// paper's prototype.
	ElideReadOnlySyncs bool
	// DFI additionally instruments the data-flow integrity policy (§4.3):
	// store-identity announcements and reaching-writer checks on loads
	// from statically trackable locations.
	DFI bool
}

// DefaultOptions returns the paper's default configuration: all
// optimizations on, strict subtype checking with an empty allowlist.
func DefaultOptions() Options {
	return Options{
		Optimize:            true,
		InterProcForwarding: true,
		Devirtualize:        true,
		StrictSubtype:       true,
	}
}

// Stats counts what a pipeline did, for ablation reporting.
type Stats struct {
	Defines        int // Pointer-Define sites inserted
	Checks         int // Pointer-Check sites inserted
	Invalidates    int // Pointer-Invalidate / block-invalidate sites
	BlockOps       int // instrumented block memory operations
	BlockOpsElided int // block ops skipped by strict subtype checking
	SyscallSyncs   int // System-Call message sites
	SyncsElided    int // sync sites skipped for read-only system calls
	RetProtected   int // functions with return-pointer protection
	ChecksElided   int // checks removed by store-to-load forwarding
	MsgsElided     int // defines/invalidates removed by elision
	Devirtualized  int // indirect calls converted to direct
	Guards         int // recursion guards inserted
	TypeChecks     int // Clang-CFI class checks inserted
	MACSites       int // CCFI MAC store/check sites
	SafeStoreSites int // CPI redirected loads/stores
	DFISets        int // DFI store announcements inserted
	DFIChecks      int // DFI load checks inserted
}

// Instrumented is the output of a pipeline: a rewritten module plus the VM
// configuration its runtime needs.
type Instrumented struct {
	Design Design
	Mod    *mir.Module
	Stats  Stats

	// Placement is the return-slot strategy the VM must use.
	Placement vm.RetSlotPlacement
	// X87Fallback marks CCFI's reserved-register FP fallback.
	X87Fallback bool
	// EmitGlobalDefines makes the loader register global control-flow
	// pointers with the verifier.
	EmitGlobalDefines bool
	// MACGlobals / SafeStoreGlobals request the loader-side startup
	// registration CCFI and CPI perform for static initializers.
	MACGlobals       bool
	SafeStoreGlobals bool
	// ElideReadOnlyGates mirrors Options.ElideReadOnlySyncs at runtime.
	ElideReadOnlyGates bool
}

// Instrument applies design's pipeline to a clone of mod.
func Instrument(mod *mir.Module, design Design, opts Options) (*Instrumented, error) {
	out := &Instrumented{Design: design, Mod: mod.Clone()}
	switch design {
	case Baseline:
		out.Placement = vm.PlaceRegular
	case HQSfeStk:
		out.Placement = vm.PlaceSafeGuarded
		out.EmitGlobalDefines = true
		instrumentHQ(out, opts, false)
		markSafeSlots(out)
	case HQRetPtr:
		out.Placement = vm.PlaceRegular
		out.EmitGlobalDefines = true
		instrumentHQ(out, opts, true)
	case ClangCFI:
		out.Placement = vm.PlaceSafeGuarded
		instrumentClangCFI(out, opts)
		markSafeSlots(out)
	case CCFI:
		out.Placement = vm.PlaceRegular
		out.X87Fallback = true
		out.MACGlobals = true
		instrumentCCFI(out)
	case CPI:
		out.Placement = vm.PlaceSafeAdjacent
		out.SafeStoreGlobals = true
		instrumentCPI(out)
		markSafeSlots(out)
	default:
		return nil, fmt.Errorf("compiler: unknown design %d", design)
	}
	out.Mod.Finalize()
	if err := mir.Validate(out.Mod); err != nil {
		return nil, fmt.Errorf("compiler: %s pipeline produced invalid IR: %w", design, err)
	}
	return out, nil
}

// VMConfig builds the base VM configuration for this instrumented module.
// The caller fills in the messaging, kernel and cost fields.
func (ins *Instrumented) VMConfig() vm.Config {
	return vm.Config{
		Placement:          ins.Placement,
		X87Fallback:        ins.X87Fallback,
		EmitGlobalDefines:  ins.EmitGlobalDefines,
		MACGlobals:         ins.MACGlobals,
		SafeStoreGlobals:   ins.SafeStoreGlobals,
		ElideReadOnlyGates: ins.ElideReadOnlyGates,
	}
}
