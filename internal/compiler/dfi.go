package compiler

import (
	"fmt"
	"sort"

	"herqules/internal/analysis"
	"herqules/internal/mir"
)

// instrumentDFI adds the data-flow integrity policy of §4.3 on top of the
// HQ pipeline (Options.DFI): every store is assigned an identity and
// announces itself as the last writer of its address; every load from a
// *trackable* location — a non-escaping stack slot or an unaliased global,
// where the reaching-writer set is statically exact — is checked against
// that set. Corruption of plain data through out-of-bounds or aliased
// writes is then caught at the next legitimate read, whether or not any
// control-flow pointer was involved.
func instrumentDFI(out *Instrumented) {
	mod := out.Mod
	aliased := aliasedGlobals(mod)

	// Pass 1: assign store identities and collect per-root writer sets.
	nextID := uint64(1) // 0 is the loader
	storeID := make(map[*mir.Instr]uint64)
	rootWriters := make(map[interface{}][]uint64) // alloca or *Global -> ids
	rootsByFunc := make(map[*mir.Func]map[mir.Value]*mir.Instr)
	for _, f := range mod.Funcs {
		if f.Intrinsic || len(f.Blocks) == 0 {
			continue
		}
		roots := analysis.AddrRoots(f)
		rootsByFunc[f] = roots
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != mir.OpStore {
					continue
				}
				id := nextID
				nextID++
				storeID[in] = id
				if r := roots[in.Args[1]]; r != nil {
					rootWriters[r] = append(rootWriters[r], id)
				} else if g, ok := in.Args[1].(*mir.Global); ok {
					rootWriters[g] = append(rootWriters[g], id)
				}
			}
		}
	}

	// Set registry, deduplicated by member list.
	setIDs := make(map[string]uint64)
	setMembers := make(map[uint64][]uint64)
	nextSet := uint64(1)
	setFor := func(writers []uint64) uint64 {
		ws := append([]uint64(nil), writers...)
		sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
		key := fmt.Sprint(ws)
		if id, ok := setIDs[key]; ok {
			return id
		}
		id := nextSet
		nextSet++
		setIDs[key] = id
		setMembers[id] = ws
		return id
	}

	// Pass 2: instrument stores and checked loads.
	for _, f := range mod.Funcs {
		if f.Intrinsic || len(f.Blocks) == 0 {
			continue
		}
		roots := rootsByFunc[f]
		esc := analysis.EscapeAnalysis(f)
		f.ForEachInstr(func(b *mir.Block, in *mir.Instr) {
			switch in.Op {
			case mir.OpStore:
				b.InsertAfter(in, &mir.Instr{
					Op: mir.OpRuntime, RT: mir.RTDFISet,
					Args: []mir.Value{in.Args[1], mir.ConstInt(storeID[in])},
				})
				out.Stats.DFISets++
			case mir.OpLoad:
				var writers []uint64
				trackable := false
				if r := roots[in.Args[0]]; r != nil && !esc.Escapes[r] {
					writers, trackable = rootWriters[r], true
				} else if g, ok := in.Args[0].(*mir.Global); ok && !g.ReadOnly && !aliased[g] {
					writers, trackable = rootWriters[g], true
				}
				if !trackable {
					return
				}
				b.InsertBefore(in, &mir.Instr{
					Op: mir.OpRuntime, RT: mir.RTDFICheck,
					Args: []mir.Value{in.Args[0], mir.ConstInt(setFor(writers))},
				})
				out.Stats.DFIChecks++
			}
		})
	}

	// Pass 3: declare the sets at program start.
	main := mod.Func("main")
	if main == nil || len(main.Blocks) == 0 {
		return
	}
	entry := main.Entry()
	pos := entry.Instrs[0]
	var ids []uint64
	for id := range setMembers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		for _, w := range setMembers[id] {
			entry.InsertBefore(pos, &mir.Instr{
				Op: mir.OpRuntime, RT: mir.RTDFIDeclare,
				Args: []mir.Value{mir.ConstInt(id), mir.ConstInt(w)},
			})
		}
	}
}

// aliasedGlobals reports globals whose address is used in any way other
// than a direct load, a direct store destination, or a runtime argument —
// the same condition the inter-procedural forwarding pass uses.
func aliasedGlobals(mod *mir.Module) map[*mir.Global]bool {
	aliased := make(map[*mir.Global]bool)
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				for i, a := range in.Args {
					g, ok := a.(*mir.Global)
					if !ok {
						continue
					}
					safeUse := (in.Op == mir.OpLoad && i == 0) ||
						(in.Op == mir.OpStore && i == 1) ||
						in.Op == mir.OpRuntime
					if !safeUse {
						aliased[g] = true
					}
				}
			}
		}
	}
	return aliased
}
