package compiler

import (
	"herqules/internal/analysis"
	"herqules/internal/mir"
)

// devirtualize converts indirect calls with statically known targets into
// direct calls, modelling the Virtual Pointer Invariance / Whole Program
// Devirtualization bundle the paper enables (§4.1.4, "C++
// Devirtualization"). The recognized pattern is the standard virtual
// dispatch sequence:
//
//	store @vtable, vptrSlot          ; object construction
//	vp   = load vptrSlot             ; dispatch
//	slot = indexaddr/fieldaddr vp, k
//	fn   = load slot
//	icall fn(...)
//
// where @vtable is a read-only global whose k-th word is a known function
// and vptrSlot is a non-escaping local whose unique store dominates the
// dispatch (virtual pointer invariance).
func devirtualize(out *Instrumented) {
	for _, f := range out.Mod.Funcs {
		if f.Intrinsic || len(f.Blocks) == 0 {
			continue
		}
		cfg := analysis.NewCFG(f)
		dom := analysis.Dominators(cfg)
		esc := analysis.EscapeAnalysis(f)
		roots := analysis.AddrRoots(f)

		// Index stores by address value.
		storesByAddr := make(map[mir.Value][]*mir.Instr)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == mir.OpStore {
					storesByAddr[in.Args[1]] = append(storesByAddr[in.Args[1]], in)
				}
			}
		}

		f.ForEachInstr(func(b *mir.Block, in *mir.Instr) {
			if in.Op != mir.OpICall {
				return
			}
			fn := resolveVirtualTarget(in, storesByAddr, dom, esc, roots)
			if fn == nil {
				return
			}
			// Rewrite in place: icall -> call.
			in.Op = mir.OpCall
			in.Callee = fn
			in.Args = in.Args[1:]
			in.FSig = nil
			out.Stats.Devirtualized++
		})
	}
}

// resolveVirtualTarget walks the dispatch chain of an icall and returns the
// statically determined callee, or nil.
func resolveVirtualTarget(icall *mir.Instr, storesByAddr map[mir.Value][]*mir.Instr,
	dom *analysis.DomTree, esc *analysis.EscapeInfo, roots map[mir.Value]*mir.Instr) *mir.Func {

	fnLoad, ok := icall.Args[0].(*mir.Instr)
	if !ok || fnLoad.Op != mir.OpLoad {
		return nil
	}
	slot, ok := fnLoad.Args[0].(*mir.Instr)
	if !ok {
		return nil
	}
	var vpVal mir.Value
	var index int
	switch slot.Op {
	case mir.OpIndexAddr:
		c, ok := slot.Args[1].(*mir.Const)
		if !ok {
			return nil
		}
		vpVal, index = slot.Args[0], int(c.Val)
	case mir.OpFieldAddr:
		vpVal, index = slot.Args[0], slot.Field
	default:
		return nil
	}
	vp, ok := vpVal.(*mir.Instr)
	if !ok || vp.Op != mir.OpLoad {
		return nil
	}
	vptrSlot := vp.Args[0]
	// Virtual pointer invariance: the slot is a tracked non-escaping
	// local with exactly one store, and that store dominates the load.
	root := roots[vptrSlot]
	if root == nil || esc.Escapes[root] {
		return nil
	}
	stores := storesByAddr[vptrSlot]
	if len(stores) != 1 || !dom.DominatesInstr(stores[0], vp) {
		return nil
	}
	vt, ok := stores[0].Args[0].(*mir.Global)
	if !ok || !vt.ReadOnly {
		return nil
	}
	return vt.InitFuncs[index]
}

// forwardAndElide performs the paper's final-lowering message optimizations
// (§4.1.4): field-sensitive store-to-load forwarding backed by the escape
// analysis, elision of never-checked defines and invalidates, removal of
// checks orphaned by devirtualization, and — when enabled — inter-procedural
// forwarding across unique call paths with runtime recursion guards.
func forwardAndElide(out *Instrumented, opts Options) {
	nextGuard := 1
	for _, f := range out.Mod.Funcs {
		if f.Intrinsic || len(f.Blocks) == 0 {
			continue
		}
		forwardChecksIntra(out, f)
		// Interleave dead-code elimination with orphan-check elision to
		// a fixpoint: devirtualization leaves dead dispatch loads whose
		// removal exposes further elidable checks (vptr loads whose only
		// remaining consumer is their own check).
		for {
			removed := eliminateDeadCode(f)
			elided := elideOrphanedChecks(out, f)
			if removed == 0 && elided == 0 {
				break
			}
		}
		elideUncheckedDefines(out, f)
	}
	if opts.InterProcForwarding {
		forwardChecksInter(out, &nextGuard)
	}
}

// eliminateDeadCode removes pure instructions with no remaining uses:
// loads (non-volatile), address computations, arithmetic, casts and phis.
// It returns the number of instructions removed.
func eliminateDeadCode(f *mir.Func) int {
	removed := 0
	for {
		uses := useCounts(f)
		n := 0
		for _, b := range f.Blocks {
			for _, in := range append([]*mir.Instr(nil), b.Instrs...) {
				if uses[in] > 0 {
					continue
				}
				switch in.Op {
				case mir.OpLoad:
					if in.Volatile {
						continue
					}
				case mir.OpFieldAddr, mir.OpIndexAddr, mir.OpBin, mir.OpCmp,
					mir.OpCast, mir.OpPhi:
					// pure
				default:
					continue
				}
				b.Remove(in)
				n++
			}
		}
		removed += n
		if n == 0 {
			return removed
		}
	}
}

// forwardChecksIntra performs true store-to-load forwarding on checked
// pointer loads: when the checked location is a non-escaping local with a
// unique define that dominates the load, the load's consumers are rewired to
// the *defined register value* and both the load and its check disappear.
// This is what makes the optimization sound against corruption — the
// possibly-corrupted memory is never consulted, so no check is needed
// (§4.1.4: "forwards stored control-flow pointer values to dominated
// loads").
func forwardChecksIntra(out *Instrumented, f *mir.Func) {
	cfg := analysis.NewCFG(f)
	dom := analysis.Dominators(cfg)
	esc := analysis.EscapeAnalysis(f)
	roots := analysis.AddrRoots(f)

	defsByAddr := make(map[mir.Value][]*mir.Instr)
	storesByAddr := make(map[mir.Value]int)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == mir.OpRuntime && in.RT == mir.RTPointerDefine {
				defsByAddr[in.Args[0]] = append(defsByAddr[in.Args[0]], in)
			}
			if in.Op == mir.OpStore {
				storesByAddr[in.Args[1]]++
			}
		}
	}
	f.ForEachInstr(func(b *mir.Block, in *mir.Instr) {
		if in.Op != mir.OpRuntime || in.RT != mir.RTPointerCheck {
			return
		}
		addr := in.Args[0]
		root := roots[addr]
		if root == nil || esc.Escapes[root] {
			return
		}
		if storesByAddr[addr] != 1 {
			return // multiple stores: the memory value is path-dependent
		}
		defs := defsByAddr[addr]
		if len(defs) != 1 || !dom.DominatesInstr(defs[0], in) {
			return
		}
		load, ok := in.Args[1].(*mir.Instr)
		if !ok || load.Op != mir.OpLoad || load.Volatile || load.Args[0] != addr {
			return
		}
		if !dom.DominatesInstr(defs[0], load) {
			return
		}
		// Forward the defined value to every consumer of the load, then
		// drop both the load and its check.
		forwarded := defs[0].Args[1]
		replaceUses(f, load, forwarded, in)
		b.Remove(in)
		load.Blk.Remove(load)
		out.Stats.ChecksElided++
	})
}

// elideOrphanedChecks removes checks whose loaded value has no remaining
// consumer — typically because devirtualization converted the indirect call
// that used it. The load itself is removed too when it becomes dead. It
// returns the number of checks elided.
func elideOrphanedChecks(out *Instrumented, f *mir.Func) int {
	uses := useCounts(f)
	elided := 0
	f.ForEachInstr(func(b *mir.Block, in *mir.Instr) {
		if in.Op != mir.OpRuntime || in.RT != mir.RTPointerCheck {
			return
		}
		load, ok := in.Args[1].(*mir.Instr)
		if !ok || load.Op != mir.OpLoad || load.Volatile {
			return
		}
		if uses[load] != 1 { // the check itself is the only use
			return
		}
		b.Remove(in)
		load.Blk.Remove(load)
		out.Stats.ChecksElided++
		elided++
	})
	return elided
}

// elideUncheckedDefines removes Pointer-Define and frame-invalidate messages
// for non-escaping locals that are never checked: "if a given control-flow
// pointer is never checked, then it does not need to be defined or
// invalidated" (§4.1.4).
func elideUncheckedDefines(out *Instrumented, f *mir.Func) {
	esc := analysis.EscapeAnalysis(f)
	roots := analysis.AddrRoots(f)
	checkedRoots := make(map[*mir.Instr]bool)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == mir.OpRuntime &&
				(in.RT == mir.RTPointerCheck || in.RT == mir.RTPointerCheckInvalidate) {
				if r := roots[in.Args[0]]; r != nil {
					checkedRoots[r] = true
				}
			}
		}
	}
	f.ForEachInstr(func(b *mir.Block, in *mir.Instr) {
		if in.Op != mir.OpRuntime {
			return
		}
		if in.RT != mir.RTPointerDefine && in.RT != mir.RTBlockInvalidate {
			return
		}
		root := roots[in.Args[0]]
		if root == nil || esc.Escapes[root] || checkedRoots[root] {
			return
		}
		// A local, never-checked, never-escaping slot: its messages can
		// never influence a verifier decision. (Escaped slots could be
		// checked through aliases; global checks do not alias locals.)
		b.Remove(in)
		out.Stats.MsgsElided++
	})
}

// forwardChecksInter forwards checked loads across unique call paths
// (§4.1.4): when a function's check refers to a module global whose only
// store is in its unique caller and dominates the call, the callee's check
// is subsumed by the caller's define. Indirect calls make recursion hard to
// rule out statically, so when the call graph admits reentry the callee gets
// a runtime guard that terminates the program if the optimized function is
// re-entered while active.
func forwardChecksInter(out *Instrumented, guardID *int) {
	mod := out.Mod
	cg := analysis.BuildCallGraph(mod)

	// Count stores to each global across the module. Globals that may be
	// written through aliases the analysis cannot see (aliasedGlobals)
	// must never have their checks forwarded.
	globalStores := make(map[*mir.Global][]*mir.Instr)
	storeOwner := make(map[*mir.Instr]*mir.Func)
	aliased := aliasedGlobals(mod)
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == mir.OpStore {
					if g, ok := in.Args[1].(*mir.Global); ok {
						globalStores[g] = append(globalStores[g], in)
						storeOwner[in] = f
					}
				}
			}
		}
	}

	for _, g := range mod.Funcs {
		if g.Intrinsic || len(g.Blocks) == 0 {
			continue
		}
		site := analysis.UniqueCallers(mod, g)
		if site == nil {
			continue
		}
		caller := site.Blk.Fn
		callerCFG := analysis.NewCFG(caller)
		callerDom := analysis.Dominators(callerCFG)

		elided := 0
		g.ForEachInstr(func(b *mir.Block, in *mir.Instr) {
			if in.Op != mir.OpRuntime || in.RT != mir.RTPointerCheck {
				return
			}
			glob, ok := in.Args[0].(*mir.Global)
			if !ok || glob.ReadOnly || aliased[glob] {
				return
			}
			stores := globalStores[glob]
			if len(stores) != 1 || storeOwner[stores[0]] != caller {
				return
			}
			if !callerDom.DominatesInstr(stores[0], site) {
				return
			}
			// The load must precede any call or block op inside g that
			// could rewrite the global (conservative: require the check
			// in g's entry block before any call).
			if b != g.Entry() || anyCallBefore(b, in) {
				return
			}
			b.Remove(in)
			elided++
		})
		if elided == 0 {
			continue
		}
		out.Stats.ChecksElided += elided
		if cg.MayRecurse(g) {
			insertRecursionGuard(g, *guardID)
			out.Stats.Guards++
			*guardID++
		}
	}
}

func anyCallBefore(b *mir.Block, stop *mir.Instr) bool {
	for _, in := range b.Instrs {
		if in == stop {
			return false
		}
		if in.IsCall() || in.IsBlockMemOp() {
			return true
		}
	}
	return false
}

// insertRecursionGuard wraps g with enter/exit guard runtime calls.
func insertRecursionGuard(g *mir.Func, id int) {
	entry := g.Entry()
	entry.InsertBefore(entry.Instrs[0], &mir.Instr{
		Op: mir.OpRuntime, RT: mir.RTRecursionGuardEnter, GuardID: id,
	})
	for _, b := range g.Blocks {
		term := b.Terminator()
		if term == nil || term.Op != mir.OpRet {
			continue
		}
		b.InsertBefore(term, &mir.Instr{
			Op: mir.OpRuntime, RT: mir.RTRecursionGuardExit, GuardID: id,
		})
	}
}

// useCounts counts, for every instruction in f, how many operand positions
// reference it.
func useCounts(f *mir.Func) map[*mir.Instr]int {
	uses := make(map[*mir.Instr]int)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if ai, ok := a.(*mir.Instr); ok {
					uses[ai]++
				}
			}
		}
	}
	return uses
}
