package compiler

import (
	"herqules/internal/analysis"
	"herqules/internal/mir"
	"herqules/internal/vm"
)

// instrumentHQ runs the HerQules pipeline on out.Mod: devirtualization,
// initial lowering (pointer define/check/invalidate insertion), final
// lowering (block memory operations, system-call synchronization,
// store-to-load forwarding and message elision), and — for HQ-CFI-RetPtr —
// return-pointer protection (§4.1.4, §4.1.6).
func instrumentHQ(out *Instrumented, opts Options, retPtr bool) {
	mod := out.Mod
	if opts.Devirtualize {
		devirtualize(out)
	}
	fpInfo := analysis.DetectFuncPtrs(mod)
	for _, f := range mod.Funcs {
		if f.Intrinsic {
			continue
		}
		initialLowering(out, f, fpInfo)
	}
	for _, f := range mod.Funcs {
		if f.Intrinsic {
			continue
		}
		finalLoweringBlocks(out, f, opts)
		if opts.MemSafety {
			memSafetyLowering(out, f)
		}
		if retPtr {
			retPtrLowering(out, f)
		}
		placeSyscallSyncs(out, f, opts)
	}
	out.ElideReadOnlyGates = opts.ElideReadOnlySyncs
	if opts.Optimize {
		forwardAndElide(out, opts)
	}
	if opts.DFI {
		instrumentDFI(out)
	}
	mod.Finalize()
}

// initialLowering inserts Pointer-Define after every store of a (possibly
// decayed) control-flow pointer, Pointer-Check after every load of one, and
// frame invalidates for stack slots that may hold them (§4.1.3).
func initialLowering(out *Instrumented, f *mir.Func, fpInfo *analysis.FuncPtrInfo) {
	f.ForEachInstr(func(b *mir.Block, in *mir.Instr) {
		switch {
		case fpInfo.IsFuncPtrStore(in):
			b.InsertAfter(in, &mir.Instr{
				Op: mir.OpRuntime, RT: mir.RTPointerDefine,
				Args: []mir.Value{in.Args[1], in.Args[0]},
			})
			out.Stats.Defines++
		case fpInfo.IsFuncPtrLoad(in):
			// Read-only pointers need no protection (§4.1.3): loads
			// from inside a read-only vtable or from a read-only
			// global are immutable by construction.
			if readOnlyAddr(in.Args[0]) {
				return
			}
			b.InsertAfter(in, &mir.Instr{
				Op: mir.OpRuntime, RT: mir.RTPointerCheck,
				Args: []mir.Value{in.Args[0], in},
			})
			out.Stats.Checks++
		}
	})

	// Invalidate stack slots that may contain control-flow pointers when
	// the frame dies — this is what gives HQ-CFI use-after-free detection
	// on stack-resident pointers.
	roots := analysis.AddrRoots(f)
	holds := make(map[*mir.Instr]bool)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == mir.OpAlloca && in.AllocTy.ContainsFuncPtr() {
				holds[in] = true
			}
			if in.Op == mir.OpRuntime && in.RT == mir.RTPointerDefine {
				if r := roots[in.Args[0]]; r != nil {
					holds[r] = true
				}
			}
		}
	}
	if len(holds) == 0 {
		return
	}
	// Deterministic order: program order of the allocas.
	var slots []*mir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == mir.OpAlloca && holds[in] {
				slots = append(slots, in)
			}
		}
	}
	for _, b := range f.Blocks {
		term := b.Terminator()
		if term == nil || term.Op != mir.OpRet {
			continue
		}
		for _, slot := range slots {
			b.InsertBefore(term, &mir.Instr{
				Op: mir.OpRuntime, RT: mir.RTBlockInvalidate,
				Args: []mir.Value{slot, mir.ConstInt(slot.AllocTy.Size())},
			})
			out.Stats.Invalidates++
		}
	}
}

// finalLoweringBlocks instruments block memory operations (§4.1.4, Final
// Lowering): memcpy/memmove transplant any pointers they move, memset and
// free destroy them, realloc moves them. Strict subtype checking elides
// operations whose static types cannot contain control-flow pointers, with
// an allowlist for functions known to pass decayed pointers.
func finalLoweringBlocks(out *Instrumented, f *mir.Func, opts Options) {
	allowed := false
	for _, name := range opts.Allowlist {
		if name == f.Name {
			allowed = true
			break
		}
	}
	shouldInstrument := func(ptr mir.Value) bool {
		if !opts.StrictSubtype || allowed {
			return true
		}
		pt := ptr.Type()
		if !pt.IsPtr() {
			return true // unknown provenance: conservative
		}
		elem := pt.Elem
		if elem.Kind == mir.KindInt && elem.Bits == 8 {
			// Generic byte pointer: the type tells us nothing, and
			// strict checking (the paper's default) skips it — the
			// behaviour that required the allowlist for four
			// benchmarks.
			return false
		}
		return elem.ContainsFuncPtr()
	}
	f.ForEachInstr(func(b *mir.Block, in *mir.Instr) {
		switch in.Op {
		case mir.OpMemcpy, mir.OpMemmove:
			if !shouldInstrument(in.Args[0]) && !shouldInstrument(in.Args[1]) {
				out.Stats.BlockOpsElided++
				return
			}
			b.InsertAfter(in, &mir.Instr{
				Op: mir.OpRuntime, RT: mir.RTBlockCopy,
				Args: []mir.Value{in.Args[1], in.Args[0], in.Args[2]},
			})
			out.Stats.BlockOps++
		case mir.OpMemset:
			if !shouldInstrument(in.Args[0]) {
				out.Stats.BlockOpsElided++
				return
			}
			b.InsertAfter(in, &mir.Instr{
				Op: mir.OpRuntime, RT: mir.RTBlockInvalidate,
				Args: []mir.Value{in.Args[0], in.Args[2]},
			})
			out.Stats.Invalidates++
		case mir.OpFree:
			// Before the free, while the allocation's size is still
			// known to the runtime (malloc_usable_size).
			b.InsertBefore(in, &mir.Instr{
				Op: mir.OpRuntime, RT: mir.RTBlockInvalidate,
				Args: []mir.Value{in.Args[0], mir.ConstInt(0)},
			})
			out.Stats.Invalidates++
		case mir.OpRealloc:
			b.InsertAfter(in, &mir.Instr{
				Op: mir.OpRuntime, RT: mir.RTBlockMove,
				Args: []mir.Value{in.Args[0], in, mir.ConstInt(0)},
			})
			out.Stats.BlockOps++
		}
	})
}

// memSafetyLowering instruments the §4.2 allocation policy: creation,
// access checks, and destruction of heap and stack allocations.
func memSafetyLowering(out *Instrumented, f *mir.Func) {
	var stackAllocs []*mir.Instr
	f.ForEachInstr(func(b *mir.Block, in *mir.Instr) {
		switch in.Op {
		case mir.OpAlloca:
			b.InsertAfter(in, &mir.Instr{
				Op: mir.OpRuntime, RT: mir.RTAllocCreate,
				Args: []mir.Value{in, mir.ConstInt(in.AllocTy.Size())},
			})
			stackAllocs = append(stackAllocs, in)
		case mir.OpMalloc:
			b.InsertAfter(in, &mir.Instr{
				Op: mir.OpRuntime, RT: mir.RTAllocCreate,
				Args: []mir.Value{in, in.Args[0]},
			})
		case mir.OpFree:
			b.InsertBefore(in, &mir.Instr{
				Op: mir.OpRuntime, RT: mir.RTAllocDestroy,
				Args: []mir.Value{in.Args[0]},
			})
		case mir.OpRealloc:
			b.InsertAfter(in, &mir.Instr{
				Op: mir.OpRuntime, RT: mir.RTAllocExtend,
				Args: []mir.Value{in.Args[0], in, mir.ConstInt(0)},
			})
		case mir.OpLoad, mir.OpStore:
			addr := in.Args[0]
			if in.Op == mir.OpStore {
				addr = in.Args[1]
			}
			b.InsertBefore(in, &mir.Instr{
				Op: mir.OpRuntime, RT: mir.RTAllocCheck,
				Args: []mir.Value{addr},
			})
		}
	})
	// Destroy stack allocations at every return.
	for _, b := range f.Blocks {
		term := b.Terminator()
		if term == nil || term.Op != mir.OpRet {
			continue
		}
		for _, a := range stackAllocs {
			b.InsertBefore(term, &mir.Instr{
				Op: mir.OpRuntime, RT: mir.RTAllocDestroy,
				Args: []mir.Value{a},
			})
		}
	}
}

// retPtrLowering applies HQ-CFI-RetPtr protection (§4.1.6): functions that
// may write memory, are known to return, contain stack allocations, and are
// not always tail-called get a Pointer-Define on their return slot in the
// prologue and a Pointer-Check-Invalidate in the epilogue.
func retPtrLowering(out *Instrumented, f *mir.Func) {
	if !f.MayWriteMemory() || f.NoReturn || !f.HasStackAlloc() || f.AlwaysTailCalled {
		return
	}
	entry := f.Entry()
	if entry == nil || len(entry.Instrs) == 0 {
		return
	}
	entry.InsertBefore(entry.Instrs[0], &mir.Instr{Op: mir.OpRuntime, RT: mir.RTRetDefine})
	for _, b := range f.Blocks {
		term := b.Terminator()
		if term == nil || term.Op != mir.OpRet {
			continue
		}
		b.InsertBefore(term, &mir.Instr{Op: mir.OpRuntime, RT: mir.RTRetCheckInvalidate})
	}
	out.Stats.RetProtected++
}

// placeSyscallSyncs inserts the System-Call message before each system call
// at the earliest suitable program point (§3.2): a point that dominates the
// system call, is post-dominated by it, and is not followed by any other
// message or function call before the system call executes. Within those
// constraints the message is hoisted as early as possible so its cost
// pipelines with the surrounding code.
func placeSyscallSyncs(out *Instrumented, f *mir.Func, opts Options) {
	f.ForEachInstr(func(b *mir.Block, in *mir.Instr) {
		if in.Op != mir.OpSyscall {
			return
		}
		// §5.3.3 future work: read-only system calls cannot produce
		// external side effects, so their synchronization can be elided
		// without weakening the security argument.
		if opts.ElideReadOnlySyncs && vm.ReadOnlySyscall(in.SyscallNo) {
			out.Stats.SyncsElided++
			return
		}
		// Scan backwards from the syscall within its block: every
		// instruction crossed must be free of messages and calls (which
		// could themselves fault or send), and must not be an operand
		// producer the message depends on — the sync takes no operands,
		// so only the message/call constraint applies. Block boundaries
		// stop the scan: a predecessor may not be post-dominated by the
		// syscall.
		pos := in
		for i := indexOf(b, in) - 1; i >= 0; i-- {
			prev := b.Instrs[i]
			if prev.IsCall() || prev.Op == mir.OpSyscall || prev.Op == mir.OpRuntime ||
				prev.Op == mir.OpPhi {
				break
			}
			pos = prev
		}
		b.InsertBefore(pos, &mir.Instr{
			Op: mir.OpRuntime, RT: mir.RTSyscallSync, SyscallNo: in.SyscallNo,
		})
		out.Stats.SyscallSyncs++
	})
}

// readOnlyAddr reports whether a load address provably refers to read-only
// memory: a read-only global (directly or through constant offsets) or a
// slot inside a virtual-method table, which the compiler emits read-only.
func readOnlyAddr(v mir.Value) bool {
	switch v := v.(type) {
	case *mir.Global:
		return v.ReadOnly
	case *mir.Instr:
		switch v.Op {
		case mir.OpFieldAddr, mir.OpIndexAddr:
			if bt := v.Args[0].Type(); bt.IsPtr() && bt.Elem.VTable {
				return true
			}
			return readOnlyAddr(v.Args[0])
		}
	}
	return false
}

func indexOf(b *mir.Block, in *mir.Instr) int {
	for i, cur := range b.Instrs {
		if cur == in {
			return i
		}
	}
	return -1
}
