package compiler

import (
	"testing"
	"time"

	"herqules/internal/ipc"
	"herqules/internal/kernel"
	"herqules/internal/mir"
	"herqules/internal/policy"
	"herqules/internal/verifier"
	"herqules/internal/vm"
)

// buildVictim constructs a small program with a protected function pointer:
// main stores a handler into a global slot, a worker loads and calls it,
// then main exits via syscall. withAttack optionally corrupts the slot
// between the store and the dispatch.
func buildVictim(withAttack bool) *mir.Module {
	mod := mir.NewModule("victim")
	b := mir.NewBuilder(mod)
	sig := mir.FuncType(mir.I64, mir.I64)

	handler := b.Func("handler", sig, "x")
	b.Ret(b.Add(handler.Params[0], mir.ConstInt(1)))

	evil := b.Func("evil", sig, "x")
	b.Syscall(vm.SysMarkExploit)
	b.Ret(mir.ConstInt(666))

	slot := b.Global("hook", mir.Ptr(sig), "data")

	worker := b.Func("worker", mir.FuncType(mir.I64, mir.I64), "x")
	fp := b.Load(slot)
	r := b.ICall(fp, sig, worker.Params[0])
	b.Ret(r)

	b.Func("main", mir.FuncType(mir.I64))
	b.Store(b.FuncAddr(handler), slot)
	if withAttack {
		// A memory-safety bug overwrites the raw slot. The payload
		// address is a hardcoded integer (ASLR is off; "evil" is
		// function #1), so no instrumentation pass can recognize this
		// as a control-flow-pointer store — exactly like an overflow
		// writing attacker-supplied bytes.
		rawPtr := b.Cast(slot, mir.Ptr(mir.I64))
		b.Store(mir.ConstInt(vm.StaticFuncAddr(1)), rawPtr)
	}
	_ = evil
	out := b.Call(worker, mir.ConstInt(41))
	b.Syscall(vm.SysWrite, out)
	b.Syscall(vm.SysExit, mir.ConstInt(0))
	b.Ret(mir.ConstInt(0))
	mod.Finalize()
	return mod
}

// launch runs an instrumented module under a full kernel+verifier stack in
// deterministic (inline-delivery) mode. Syscall gating is only wired for HQ
// designs — the baselines have no synchronization messages, so gating them
// would stall every system call.
func launch(t *testing.T, ins *Instrumented, entry string, args ...uint64) (*vm.Result, *verifier.Verifier) {
	t.Helper()
	k := kernel.New(nil)
	k.Epoch = 50 * time.Millisecond
	vv := verifier.New(func() []policy.Policy {
		return []policy.Policy{
			policy.NewCFI(), policy.NewMemSafety(), policy.NewCounter(), policy.NewDFI(),
		}
	}, k)
	k.SetListener(vv)
	pid := k.Register()

	cfg := ins.VMConfig()
	cfg.PID = pid
	if ins.Design.IsHQ() {
		cfg.Kernel = k
	}
	cfg.Emit = func(m ipc.Message) error { vv.Deliver(m); return nil }
	cfg.Killed = func() (bool, string) { return k.Killed(pid) }
	p, err := vm.NewProcess(ins.Mod, cfg)
	if err != nil {
		t.Fatalf("NewProcess: %v", err)
	}
	return p.Run(entry, args...), vv
}

func instrument(t *testing.T, mod *mir.Module, d Design, opts Options) *Instrumented {
	t.Helper()
	ins, err := Instrument(mod, d, opts)
	if err != nil {
		t.Fatalf("Instrument(%v): %v", d, err)
	}
	return ins
}

func TestBenignProgramRunsUnderEveryDesign(t *testing.T) {
	mod := buildVictim(false)
	baseline := instrument(t, mod, Baseline, DefaultOptions())
	base, _ := launch(t, baseline, "main")
	if base.Err != nil || len(base.Output) != 1 || base.Output[0] != 42 {
		t.Fatalf("baseline: err=%v output=%v", base.Err, base.Output)
	}
	for _, d := range AllDesigns() {
		ins := instrument(t, mod, d, DefaultOptions())
		res, _ := launch(t, ins, "main")
		if res.Err != nil {
			t.Errorf("%v: crash: %v", d, res.Err)
			continue
		}
		if res.Killed {
			t.Errorf("%v: benign program killed: %s", d, res.KillReason)
			continue
		}
		if len(res.Output) != 1 || res.Output[0] != 42 {
			t.Errorf("%v: output = %v, want [42]", d, res.Output)
		}
	}
}

func TestHQCatchesPointerCorruption(t *testing.T) {
	mod := buildVictim(true)
	for _, d := range []Design{HQSfeStk, HQRetPtr} {
		ins := instrument(t, mod, d, DefaultOptions())
		res, _ := launch(t, ins, "main")
		if !res.Killed {
			t.Errorf("%v: corrupted pointer not caught (err=%v marker=%t)",
				d, res.Err, res.ExploitMarker)
		}
		if res.ExploitMarker {
			t.Errorf("%v: exploit payload ran", d)
		}
	}
	// Baseline is oblivious: the hijacked call runs the payload.
	res, _ := launch(t, instrument(t, mod, Baseline, DefaultOptions()), "main")
	if !res.ExploitMarker {
		t.Error("baseline should have executed the hijacked call")
	}
}

func TestHQInsertsExpectedMessages(t *testing.T) {
	ins := instrument(t, buildVictim(false), HQSfeStk, Options{StrictSubtype: true})
	if ins.Stats.Defines < 1 {
		t.Errorf("defines = %d, want >= 1", ins.Stats.Defines)
	}
	if ins.Stats.Checks < 1 {
		t.Errorf("checks = %d, want >= 1", ins.Stats.Checks)
	}
	if ins.Stats.SyscallSyncs != 3 {
		t.Errorf("syncs = %d, want 3 (write, exit, mark)", ins.Stats.SyscallSyncs)
	}
}

func TestSyscallSyncPrecedesEverySyscall(t *testing.T) {
	ins := instrument(t, buildVictim(false), HQSfeStk, DefaultOptions())
	for _, f := range ins.Mod.Funcs {
		for _, b := range f.Blocks {
			sawSync := false
			for _, in := range b.Instrs {
				if in.Op == mir.OpRuntime && in.RT == mir.RTSyscallSync {
					sawSync = true
				}
				if in.Op == mir.OpSyscall {
					if !sawSync {
						t.Errorf("@%s: syscall %d without preceding sync", f.Name, in.SyscallNo)
					}
					sawSync = false
				}
				if in.IsCall() {
					sawSync = false // a call invalidates the pending sync
				}
			}
		}
	}
}

func TestSyncHoistedAbovePureInstructions(t *testing.T) {
	mod := mir.NewModule("hoist")
	b := mir.NewBuilder(mod)
	b.Func("main", mir.FuncType(mir.I64))
	x := b.Add(mir.ConstInt(1), mir.ConstInt(2))
	y := b.Mul(x, mir.ConstInt(3))
	b.Syscall(vm.SysWrite, y)
	b.Ret(mir.ConstInt(0))
	mod.Finalize()

	ins := instrument(t, mod, HQSfeStk, DefaultOptions())
	entry := ins.Mod.Func("main").Entry()
	// The sync must come before the arithmetic (earliest suitable point).
	if entry.Instrs[0].Op != mir.OpRuntime || entry.Instrs[0].RT != mir.RTSyscallSync {
		t.Errorf("sync not hoisted to block head: first instr is %v", entry.Instrs[0].Format())
	}
}

func TestBlockOpStrictSubtypeChecking(t *testing.T) {
	build := func() *mir.Module {
		mod := mir.NewModule("blocks")
		b := mir.NewBuilder(mod)
		sig := mir.FuncType(mir.Void)
		fn := b.Func("fn", sig)
		b.Ret(nil)
		withFP := mir.StructType("obj", mir.I64, mir.Ptr(sig))
		noFP := mir.StructType("plain", mir.I64, mir.I64)
		b.Func("main", mir.FuncType(mir.I64))
		src := b.Alloca("src", withFP)
		dst := b.Alloca("dst", withFP)
		b.Store(b.FuncAddr(fn), b.FieldAddr(src, 1))
		b.Memcpy(dst, src, mir.ConstInt(withFP.Size())) // must instrument
		p1 := b.Alloca("p1", noFP)
		p2 := b.Alloca("p2", noFP)
		b.Memcpy(p2, p1, mir.ConstInt(noFP.Size())) // must elide
		raw := b.Malloc(mir.ConstInt(64))
		raw2 := b.Malloc(mir.ConstInt(64))
		b.Memcpy(raw2, raw, mir.ConstInt(64)) // i8*: strict skips
		b.Ret(mir.ConstInt(0))
		mod.Finalize()
		return mod
	}

	strict := instrument(t, build(), HQSfeStk, Options{StrictSubtype: true})
	if strict.Stats.BlockOps != 1 {
		t.Errorf("strict: instrumented %d block ops, want 1", strict.Stats.BlockOps)
	}
	if strict.Stats.BlockOpsElided != 2 {
		t.Errorf("strict: elided %d, want 2", strict.Stats.BlockOpsElided)
	}

	conservative := instrument(t, build(), HQSfeStk, Options{StrictSubtype: false})
	if conservative.Stats.BlockOps != 3 {
		t.Errorf("conservative: instrumented %d block ops, want 3", conservative.Stats.BlockOps)
	}

	allow := instrument(t, build(), HQSfeStk, Options{StrictSubtype: true, Allowlist: []string{"main"}})
	if allow.Stats.BlockOps != 3 {
		t.Errorf("allowlist: instrumented %d block ops, want 3", allow.Stats.BlockOps)
	}
}

func TestFreeAndReallocInstrumentation(t *testing.T) {
	mod := mir.NewModule("heapmsg")
	b := mir.NewBuilder(mod)
	b.Func("main", mir.FuncType(mir.I64))
	p := b.Malloc(mir.ConstInt(32))
	q := b.Realloc(p, mir.ConstInt(64))
	b.Free(q)
	b.Ret(mir.ConstInt(0))
	mod.Finalize()

	ins := instrument(t, mod, HQSfeStk, DefaultOptions())
	main := ins.Mod.Func("main")
	var seq []mir.RuntimeOp
	var ops []mir.Opcode
	for _, in := range main.Entry().Instrs {
		ops = append(ops, in.Op)
		if in.Op == mir.OpRuntime {
			seq = append(seq, in.RT)
		}
	}
	// Expect: malloc, realloc, block-move(after), block-invalidate(before
	// free), free, ...
	foundMove, foundInval := false, false
	for i, in := range main.Entry().Instrs {
		if in.Op == mir.OpRuntime && in.RT == mir.RTBlockMove {
			foundMove = true
			if i == 0 || main.Entry().Instrs[i-1].Op != mir.OpRealloc {
				t.Error("block-move not immediately after realloc")
			}
		}
		if in.Op == mir.OpRuntime && in.RT == mir.RTBlockInvalidate {
			foundInval = true
			if i+1 >= len(main.Entry().Instrs) || main.Entry().Instrs[i+1].Op != mir.OpFree {
				t.Error("block-invalidate not immediately before free")
			}
		}
	}
	if !foundMove || !foundInval {
		t.Errorf("missing heap messages: move=%t inval=%t (seq %v ops %v)", foundMove, foundInval, seq, ops)
	}
}

func TestRetPtrProtectionEligibility(t *testing.T) {
	mod := mir.NewModule("retptr")
	b := mir.NewBuilder(mod)
	// Qualifies: writes memory, has stack alloc, returns.
	f1 := b.Func("qualifies", mir.FuncType(mir.I64))
	s := b.Alloca("buf", mir.ArrayType(mir.I64, 4))
	b.Store(mir.ConstInt(1), b.IndexAddr(s, mir.ConstInt(0)))
	b.Ret(mir.ConstInt(0))
	// Leaf without stack allocation: skipped.
	f2 := b.Func("leaf", mir.FuncType(mir.I64, mir.I64), "x")
	b.Ret(f2.Params[0])
	mod.Finalize()
	_ = f1

	ins := instrument(t, mod, HQRetPtr, DefaultOptions())
	if ins.Stats.RetProtected != 1 {
		t.Errorf("RetProtected = %d, want 1", ins.Stats.RetProtected)
	}
	q := ins.Mod.Func("qualifies")
	if q.Entry().Instrs[0].RT != mir.RTRetDefine {
		t.Error("prologue define missing")
	}
	leaf := ins.Mod.Func("leaf")
	for _, in := range leaf.Entry().Instrs {
		if in.Op == mir.OpRuntime && (in.RT == mir.RTRetDefine || in.RT == mir.RTRetCheckInvalidate) {
			t.Error("leaf function wrongly protected")
		}
	}
}

func TestStoreToLoadForwardingElidesLocalCheck(t *testing.T) {
	// A function pointer stored once into a non-escaping local and
	// immediately dispatched: the check is provably redundant.
	mod := mir.NewModule("fwd")
	b := mir.NewBuilder(mod)
	sig := mir.FuncType(mir.I64)
	fn := b.Func("fn", sig)
	b.Ret(mir.ConstInt(7))
	b.Func("main", mir.FuncType(mir.I64))
	slot := b.Alloca("fp", mir.Ptr(sig))
	b.Store(b.FuncAddr(fn), slot)
	fp := b.Load(slot)
	r := b.ICall(fp, sig)
	b.Ret(r)
	mod.Finalize()

	unopt := instrument(t, mod, HQSfeStk, Options{StrictSubtype: true})
	opt := instrument(t, mod, HQSfeStk, Options{StrictSubtype: true, Optimize: true})
	if opt.Stats.ChecksElided == 0 {
		t.Error("forwarding elided nothing")
	}
	countChecks := func(ins *Instrumented) int {
		n := 0
		for _, f := range ins.Mod.Funcs {
			for _, blk := range f.Blocks {
				for _, in := range blk.Instrs {
					if in.Op == mir.OpRuntime && in.RT == mir.RTPointerCheck {
						n++
					}
				}
			}
		}
		return n
	}
	if got, want := countChecks(opt), countChecks(unopt)-1; got != want {
		t.Errorf("optimized checks = %d, want %d", got, want)
	}
	// The optimized program still runs correctly.
	res, _ := launch(t, opt, "main")
	if res.Err != nil || res.ExitCode != 7 {
		t.Errorf("optimized run: exit=%d err=%v", res.ExitCode, res.Err)
	}
}

func TestElisionRemovesUncheckedDefines(t *testing.T) {
	// A local function pointer that is stored but never loaded/called:
	// its define and frame invalidate are dead messages.
	mod := mir.NewModule("elide")
	b := mir.NewBuilder(mod)
	sig := mir.FuncType(mir.Void)
	fn := b.Func("fn", sig)
	b.Ret(nil)
	b.Func("main", mir.FuncType(mir.I64))
	slot := b.Alloca("unused_fp", mir.Ptr(sig))
	b.Store(b.FuncAddr(fn), slot)
	b.Ret(mir.ConstInt(0))
	mod.Finalize()

	opt := instrument(t, mod, HQSfeStk, Options{StrictSubtype: true, Optimize: true})
	if opt.Stats.MsgsElided < 2 { // define + frame invalidate
		t.Errorf("MsgsElided = %d, want >= 2", opt.Stats.MsgsElided)
	}
	for _, blk := range opt.Mod.Func("main").Blocks {
		for _, in := range blk.Instrs {
			if in.Op == mir.OpRuntime && (in.RT == mir.RTPointerDefine || in.RT == mir.RTBlockInvalidate) {
				t.Errorf("dead message survived: %s", in.Format())
			}
		}
	}
}

// buildVirtualDispatch models a C++ virtual call: object with vtable pointer
// initialized from a read-only vtable global, dispatch through it.
func buildVirtualDispatch() *mir.Module {
	mod := mir.NewModule("virt")
	b := mir.NewBuilder(mod)
	msig := mir.FuncType(mir.I64, mir.I64)
	m1 := b.Func("Obj_method1", msig, "x")
	b.Ret(b.Add(m1.Params[0], mir.ConstInt(100)))
	m2 := b.Func("Obj_method2", msig, "x")
	b.Ret(b.Mul(m2.Params[0], mir.ConstInt(2)))

	vtType := mir.VTableType(msig, 2)
	vt := b.Global("Obj_vtable", vtType, "data")
	vt.ReadOnly = true
	vt.InitFuncs[0] = m1
	vt.InitFuncs[1] = m2
	m1.AddressTaken = true
	m2.AddressTaken = true

	obj := mir.StructType("Obj", mir.Ptr(vtType), mir.I64)
	b.Func("main", mir.FuncType(mir.I64))
	o := b.Alloca("o", obj)
	vslot := b.FieldAddr(o, 0)
	b.Store(vt, vslot) // constructor stores the vtable pointer
	vp := b.Load(vslot)
	fslot := b.IndexAddr(vp, mir.ConstInt(1))
	fn := b.Load(fslot)
	r := b.ICall(fn, msig, mir.ConstInt(21))
	b.Ret(r)
	mod.Finalize()
	return mod
}

func TestDevirtualization(t *testing.T) {
	mod := buildVirtualDispatch()
	// Sanity: runs indirect under no-devirt.
	plain := instrument(t, mod, HQSfeStk, Options{StrictSubtype: true})
	res, _ := launch(t, plain, "main")
	if res.Err != nil || res.ExitCode != 42 {
		t.Fatalf("virtual dispatch broken: exit=%d err=%v", res.ExitCode, res.Err)
	}

	opt := instrument(t, mod, HQSfeStk, Options{StrictSubtype: true, Devirtualize: true, Optimize: true})
	if opt.Stats.Devirtualized != 1 {
		t.Errorf("Devirtualized = %d, want 1", opt.Stats.Devirtualized)
	}
	// The devirtualized program still computes the same result.
	res2, _ := launch(t, opt, "main")
	if res2.Err != nil || res2.ExitCode != 42 {
		t.Errorf("devirtualized run: exit=%d err=%v", res2.ExitCode, res2.Err)
	}
	if res2.Stats.ICalls != 0 {
		t.Errorf("icalls = %d after devirtualization", res2.Stats.ICalls)
	}
	// Fewer messages than the unoptimized build.
	resPlain, _ := launch(t, plain, "main")
	if res2.Stats.Messages >= resPlain.Stats.Messages {
		t.Errorf("devirt+elide messages = %d, not fewer than %d",
			res2.Stats.Messages, resPlain.Stats.Messages)
	}
}

func TestInterProcForwardingWithRecursionGuard(t *testing.T) {
	// Caller defines a global funcptr once; callee (uniquely called,
	// recursive) checks it at entry. Inter-procedural forwarding elides
	// the callee check and installs a recursion guard.
	mod := mir.NewModule("iproc")
	b := mir.NewBuilder(mod)
	sig := mir.FuncType(mir.Void)
	fn := b.Func("fn", sig)
	b.Ret(nil)
	g := b.Global("gfp", mir.Ptr(sig), "data")

	callee := b.Func("callee", mir.FuncType(mir.Void, mir.I64), "n")
	fp := b.Load(g)
	b.ICall(fp, sig)
	rec := b.Block("rec")
	done := b.Block("done")
	b.CondBr(callee.Params[0], rec, done)
	b.SetBlock(rec)
	b.Call(callee, b.Sub(callee.Params[0], mir.ConstInt(1)))
	b.Br(done)
	b.SetBlock(done)
	b.Ret(nil)

	b.Func("main", mir.FuncType(mir.I64))
	b.Store(b.FuncAddr(fn), g)
	b.Call(callee, mir.ConstInt(0))
	b.Ret(mir.ConstInt(0))
	mod.Finalize()

	opt := instrument(t, mod, HQSfeStk, Options{
		StrictSubtype: true, Optimize: true, InterProcForwarding: true,
	})
	if opt.Stats.Guards != 1 {
		t.Errorf("Guards = %d, want 1 (callee is recursive)", opt.Stats.Guards)
	}
	// Non-recursive path still works under the guard.
	res, _ := launch(t, opt, "main")
	if res.Err != nil {
		t.Errorf("guarded run failed: %v", res.Err)
	}
}

func TestClangCFIInsertsTypeChecks(t *testing.T) {
	ins := instrument(t, buildVictim(false), ClangCFI, DefaultOptions())
	if ins.Stats.TypeChecks != 1 {
		t.Errorf("TypeChecks = %d, want 1", ins.Stats.TypeChecks)
	}
	if ins.Placement != vm.PlaceSafeGuarded {
		t.Error("Clang CFI must use a guarded safe stack")
	}
	if ins.Stats.Defines != 0 {
		t.Error("Clang CFI must not emit HQ messages")
	}
}

func TestClangCFIFalsePositiveOnDecayedPointer(t *testing.T) {
	// The povray pattern (§5.1): a pointer defined as void(i8*) but
	// called as void(Obj*). HQ accepts it; Clang CFI reports a violation.
	mod := mir.NewModule("decay")
	b := mir.NewBuilder(mod)
	obj := mir.StructType("Object_Struct", mir.I64)
	genericSig := mir.FuncType(mir.Void, mir.Ptr(mir.I8))
	objSig := mir.FuncType(mir.Void, mir.Ptr(obj))
	fn := b.Func("handler", genericSig, "p")
	b.Ret(nil)
	slot := b.Global("cb", mir.Ptr(genericSig), "data")
	b.Func("main", mir.FuncType(mir.I64))
	b.Store(b.FuncAddr(fn), slot)
	o := b.Alloca("o", obj)
	fpRaw := b.Load(b.Cast(slot, mir.Ptr(mir.Ptr(objSig))))
	b.ICall(fpRaw, objSig, o)
	b.Ret(mir.ConstInt(0))
	mod.Finalize()

	clang := instrument(t, mod, ClangCFI, DefaultOptions())
	cfg := clang.VMConfig()
	cfg.ContinueOnViolation = true
	p, err := vm.NewProcess(clang.Mod, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := p.Run("main")
	if res.Violations == 0 {
		t.Error("Clang CFI did not flag the decayed call (expected false positive)")
	}

	hq := instrument(t, mod, HQSfeStk, DefaultOptions())
	resHQ, _ := launch(t, hq, "main")
	if resHQ.Killed || resHQ.Err != nil {
		t.Errorf("HQ flagged a benign decayed call: killed=%t err=%v", resHQ.Killed, resHQ.Err)
	}
}

func TestCCFIInstrumentation(t *testing.T) {
	ins := instrument(t, buildVictim(false), CCFI, DefaultOptions())
	if ins.Stats.MACSites < 2 {
		t.Errorf("MACSites = %d, want >= 2 (store + load)", ins.Stats.MACSites)
	}
	if !ins.X87Fallback {
		t.Error("CCFI must set the x87 fallback flag")
	}
	if ins.Placement != vm.PlaceRegular {
		t.Error("CCFI keeps return slots in frames (MAC-protected)")
	}
	// CCFI blocks the attack: corrupted pointer fails its MAC.
	atk := instrument(t, buildVictim(true), CCFI, DefaultOptions())
	cfg := atk.VMConfig()
	p, err := vm.NewProcess(atk.Mod, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := p.Run("main")
	if res.ExploitMarker {
		t.Error("CCFI failed to block pointer corruption")
	}
}

func TestCPIInstrumentationAndProtection(t *testing.T) {
	ins := instrument(t, buildVictim(false), CPI, DefaultOptions())
	if ins.Stats.SafeStoreSites < 2 {
		t.Errorf("SafeStoreSites = %d, want >= 2", ins.Stats.SafeStoreSites)
	}
	if ins.Placement != vm.PlaceSafeAdjacent {
		t.Error("CPI must use the unguarded safe stack")
	}
	// The attack corrupts raw memory; CPI dispatch reads the safe store,
	// so the program computes the correct result and no exploit runs.
	atk := instrument(t, buildVictim(true), CPI, DefaultOptions())
	p, err := vm.NewProcess(atk.Mod, atk.VMConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := p.Run("main")
	if res.ExploitMarker {
		t.Error("CPI failed to neutralize the corruption")
	}
	if len(res.Output) != 1 || res.Output[0] != 42 {
		t.Errorf("CPI output = %v, want [42]", res.Output)
	}
}

func TestCPICrashesOnDecayedPointerPattern(t *testing.T) {
	// The CPI prototype bug (§5.1): a pointer stored through its real
	// type (redirected + poisoned) but loaded through a decayed type
	// (missed) reads the poison and crashes.
	mod := mir.NewModule("cpibug")
	b := mir.NewBuilder(mod)
	sig := mir.FuncType(mir.Void)
	fn := b.Func("fn", sig)
	b.Ret(nil)
	slot := b.Global("cb", mir.Ptr(sig), "data")
	b.Func("main", mir.FuncType(mir.I64))
	b.Store(b.FuncAddr(fn), slot)                 // typed store: redirected, raw poisoned
	raw := b.Load(b.Cast(slot, mir.Ptr(mir.I64))) // decayed load: missed
	b.ICall(b.Cast(raw, mir.Ptr(sig)), sig)
	b.Ret(mir.ConstInt(0))
	mod.Finalize()

	cpi := instrument(t, mod, CPI, DefaultOptions())
	p, err := vm.NewProcess(cpi.Mod, cpi.VMConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := p.Run("main")
	if res.Err == nil {
		t.Error("CPI's missed redirect should crash on the poisoned pointer")
	}

	// HQ handles the same program fine (decay-aware detection).
	hq := instrument(t, mod, HQSfeStk, DefaultOptions())
	resHQ, _ := launch(t, hq, "main")
	if resHQ.Err != nil || resHQ.Killed {
		t.Errorf("HQ broke on decayed pattern: err=%v killed=%t", resHQ.Err, resHQ.Killed)
	}
}

func TestInstrumentationPreservesOriginalModule(t *testing.T) {
	mod := buildVictim(false)
	before := mod.String()
	for _, d := range AllDesigns() {
		instrument(t, mod, d, DefaultOptions())
	}
	if mod.String() != before {
		t.Error("Instrument mutated the input module")
	}
}

func TestReadOnlySyncElision(t *testing.T) {
	// A program mixing read-only (stat-like) and effectful system calls:
	// with the §5.3.3 optimization, only the effectful ones keep their
	// synchronization messages, and the program still runs gated.
	mod := mir.NewModule("rosync")
	b := mir.NewBuilder(mod)
	b.Func("main", mir.FuncType(mir.I64))
	b.Syscall(vm.SysNop)  // read-only
	b.Syscall(vm.SysNop)  // read-only
	b.Syscall(vm.SysSend) // effectful
	b.Syscall(vm.SysWrite, mir.ConstInt(7))
	b.Syscall(vm.SysExit, mir.ConstInt(0))
	b.Ret(mir.ConstInt(0))
	mod.Finalize()

	plain := instrument(t, mod, HQSfeStk, DefaultOptions())
	if plain.Stats.SyscallSyncs != 5 || plain.Stats.SyncsElided != 0 {
		t.Errorf("default: syncs=%d elided=%d, want 5/0",
			plain.Stats.SyscallSyncs, plain.Stats.SyncsElided)
	}

	opts := DefaultOptions()
	opts.ElideReadOnlySyncs = true
	elided := instrument(t, mod, HQSfeStk, opts)
	if elided.Stats.SyscallSyncs != 3 || elided.Stats.SyncsElided != 2 {
		t.Errorf("elided: syncs=%d elided=%d, want 3/2",
			elided.Stats.SyscallSyncs, elided.Stats.SyncsElided)
	}
	if !elided.ElideReadOnlyGates {
		t.Error("runtime gate elision flag not set")
	}
	// Both variants run clean under full gating.
	for _, ins := range []*Instrumented{plain, elided} {
		res, _ := launch(t, ins, "main")
		if res.Err != nil || res.Killed {
			t.Errorf("run failed: err=%v killed=%t (%s)", res.Err, res.Killed, res.KillReason)
		}
		if len(res.Output) != 1 || res.Output[0] != 7 {
			t.Errorf("output = %v", res.Output)
		}
	}
	// Fewer messages with the optimization.
	r1, _ := launch(t, plain, "main")
	r2, _ := launch(t, elided, "main")
	if r2.Stats.Messages >= r1.Stats.Messages {
		t.Errorf("elision did not reduce messages: %d vs %d",
			r2.Stats.Messages, r1.Stats.Messages)
	}
}

func TestMemSafetyInstrumentation(t *testing.T) {
	mod := mir.NewModule("ms")
	b := mir.NewBuilder(mod)
	b.Func("main", mir.FuncType(mir.I64))
	p := b.Malloc(mir.ConstInt(32))
	w := b.Cast(p, mir.Ptr(mir.I64))
	b.Store(mir.ConstInt(5), w)
	v := b.Load(w)
	b.Free(p)
	b.Ret(v)
	mod.Finalize()

	opts := DefaultOptions()
	opts.MemSafety = true
	ins := instrument(t, mod, HQSfeStk, opts)
	res, v2 := launch(t, ins, "main")
	if res.Err != nil || res.Killed {
		t.Fatalf("benign memsafety run: err=%v killed=%t (%s)", res.Err, res.Killed, res.KillReason)
	}
	_ = v2
	if res.ExitCode != 5 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}
