package compiler

import (
	"testing"

	"herqules/internal/mir"
	"herqules/internal/vm"
)

// buildNonControlDataAttack models the attack class DFI exists for (§4.3):
// an overflow corrupts a *data* value — an is_admin flag — that no
// control-flow pointer ever touches. The program then branches on the flag
// and, when it is set, performs a privileged operation.
func buildNonControlDataAttack(corrupt bool) *mir.Module {
	mod := mir.NewModule("noncontrol")
	b := mir.NewBuilder(mod)

	// Layout: the request buffer sits directly below the flag in BSS, so
	// buf[4] is the flag.
	buf := b.Global("request_buf", mir.ArrayType(mir.I64, 4), "bss")
	flag := b.Global("is_admin", mir.I64, "bss")

	b.Func("main", mir.FuncType(mir.I64))
	b.Store(mir.ConstInt(0), flag) // legitimate writer: deny by default
	b.Store(mir.ConstInt(7), b.IndexAddr(buf, mir.ConstInt(0)))
	if corrupt {
		// The memory-safety bug: an overflow from the adjacent buffer
		// (a store through a derived out-of-bounds address) sets the
		// flag. The write itself is just another store — CFI has
		// nothing to check, but its DFI identity is not in the flag's
		// reaching set.
		oob := b.IndexAddr(buf, mir.ConstInt(4)) // one past the end = flag
		b.Store(mir.ConstInt(1), oob)
	}
	v := b.Load(flag)
	granted := b.Block("granted")
	denied := b.Block("denied")
	b.CondBr(v, granted, denied)
	b.SetBlock(granted)
	b.Syscall(vm.SysMarkExploit) // the privileged action
	b.Syscall(vm.SysExit, mir.ConstInt(99))
	b.Ret(mir.ConstInt(0))
	b.SetBlock(denied)
	b.Syscall(vm.SysExit, mir.ConstInt(0))
	b.Ret(mir.ConstInt(0))
	mod.Finalize()
	return mod
}

func TestDFICatchesNonControlDataAttack(t *testing.T) {
	// Declare order matters: the buffer global precedes the flag so the
	// OOB index lands on it. Verify layout assumption via a benign run.
	opts := DefaultOptions()
	opts.DFI = true

	// Benign: no false positives, clean exit.
	benign := instrument(t, buildNonControlDataAttack(false), HQSfeStk, opts)
	if benign.Stats.DFIChecks == 0 || benign.Stats.DFISets == 0 {
		t.Fatalf("DFI inserted nothing: %+v", benign.Stats)
	}
	res, _ := launch(t, benign, "main")
	if res.Killed || res.Err != nil || res.ExitCode != 0 {
		t.Fatalf("benign run: killed=%t err=%v exit=%d (%s)",
			res.Killed, res.Err, res.ExitCode, res.KillReason)
	}

	// Without DFI, the attack succeeds: plain CFI sees nothing wrong.
	cfiOnly := instrument(t, buildNonControlDataAttack(true), HQSfeStk, DefaultOptions())
	resCFI, _ := launch(t, cfiOnly, "main")
	if resCFI.Killed {
		t.Fatalf("CFI-only run killed unexpectedly: %s", resCFI.KillReason)
	}
	if !resCFI.ExploitMarker {
		t.Fatal("attack layout broken: privileged action not reached without DFI")
	}

	// With DFI, the corrupted flag's read is caught before the branch.
	protected := instrument(t, buildNonControlDataAttack(true), HQSfeStk, opts)
	resDFI, _ := launch(t, protected, "main")
	if !resDFI.Killed {
		t.Fatal("DFI missed the non-control-data attack")
	}
	if resDFI.ExploitMarker {
		t.Error("privileged action executed despite the kill")
	}
}

func TestDFIBenignOnWorkloadLikeProgram(t *testing.T) {
	// DFI must not false-positive on ordinary programs: run a random
	// benign program under HQ+DFI and compare output with baseline.
	for seed := int64(1); seed <= 6; seed++ {
		mod := genRandomProgram(seed)
		base := mustRun(t, instrument(t, mod, Baseline, DefaultOptions()), seed, "base")
		opts := DefaultOptions()
		opts.DFI = true
		ins := instrument(t, mod, HQSfeStk, opts)
		res, _ := launch(t, ins, "main")
		if res.Err != nil || res.Killed {
			t.Fatalf("seed %d: DFI broke a benign program: err=%v killed=%t (%s)",
				seed, res.Err, res.Killed, res.KillReason)
		}
		if len(res.Output) != len(base.Output) {
			t.Fatalf("seed %d: output diverged", seed)
		}
		for i := range base.Output {
			if res.Output[i] != base.Output[i] {
				t.Fatalf("seed %d: output[%d] diverged", seed, i)
			}
		}
	}
}

func TestDFITextualRoundTrip(t *testing.T) {
	opts := DefaultOptions()
	opts.DFI = true
	ins := instrument(t, buildNonControlDataAttack(false), HQSfeStk, opts)
	text := ins.Mod.String()
	parsed, err := mir.ParseModule(text)
	if err != nil {
		t.Fatalf("parse of DFI-instrumented program: %v", err)
	}
	if parsed.String() != text {
		t.Error("DFI round trip not a fixed point")
	}
}
