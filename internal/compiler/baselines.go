package compiler

import (
	"herqules/internal/analysis"
	"herqules/internal/mir"
)

// markSafeSlots runs the safe-stack pass (§6.3.4, Clang's -fsanitize=safe-stack
// as adopted by Clang CFI, HQ-CFI-SfeStk and CPI): scalar and pointer locals
// whose address never escapes move to the protected safe region, while
// arrays — anything that may overflow — and address-escaping locals stay on
// the regular (unsafe) stack. This split is why a contiguous stack overflow
// cannot reach most stack-resident code pointers under these designs, but
// can still reach the ones whose address was taken (the residue RIPE's
// stack-origin attacks exploit, §5.2).
func markSafeSlots(out *Instrumented) {
	for _, f := range out.Mod.Funcs {
		if f.Intrinsic || len(f.Blocks) == 0 {
			continue
		}
		esc := analysis.EscapeAnalysis(f)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != mir.OpAlloca {
					continue
				}
				if in.AllocTy.Kind == mir.KindArray {
					continue // may overflow: stays unsafe
				}
				if esc.Escapes[in] {
					continue // address taken: must stay addressable
				}
				in.SafeSlot = true
			}
		}
	}
}

// instrumentClangCFI implements modern Clang/LLVM CFI (§6.3.1): before every
// indirect call, an in-process check verifies that the target belongs to the
// equivalence class of the call site's *static* function type, and return
// addresses move to a guarded safe stack. The class key is the nominal type
// signature — which is exactly why programs that cast or decay function
// pointers produce false positives (§5.1): the runtime target's true class
// differs from the static class at the call site.
func instrumentClangCFI(out *Instrumented, opts Options) {
	if opts.Devirtualize {
		// Clang CFI builds also benefit from devirtualization (fewer
		// indirect calls means fewer checks).
		devirtualize(out)
	}
	for _, f := range out.Mod.Funcs {
		f.ForEachInstr(func(b *mir.Block, in *mir.Instr) {
			if in.Op != mir.OpICall {
				return
			}
			b.InsertBefore(in, &mir.Instr{
				Op: mir.OpRuntime, RT: mir.RTClangCFICheck,
				Args:     []mir.Value{in.Args[0]},
				ClassSig: in.FSig.Signature(),
			})
			out.Stats.TypeChecks++
		})
	}
}

// instrumentCCFI implements Cryptographically-Enforced CFI (§6.3.3): every
// store of a control-flow pointer records a MAC over (address, value, static
// type); every load re-verifies it, and function prologues/epilogues MAC the
// return address. The type tag comes from the *static* type at each site, so
// a pointer stored through a decayed type and loaded through its real type
// (or vice versa) fails verification — CCFI's false-positive mode. Full
// detection (including decay tracking) is used for coverage, matching CCFI's
// goal of protecting all code pointers.
func instrumentCCFI(out *Instrumented) {
	mod := out.Mod
	fpInfo := analysis.DetectFuncPtrs(mod)
	for _, f := range mod.Funcs {
		if f.Intrinsic || len(f.Blocks) == 0 {
			continue
		}
		f.ForEachInstr(func(b *mir.Block, in *mir.Instr) {
			switch {
			case fpInfo.IsFuncPtrStore(in):
				b.InsertAfter(in, &mir.Instr{
					Op: mir.OpRuntime, RT: mir.RTMACStore,
					Args:     []mir.Value{in.Args[1], in.Args[0]},
					ClassSig: in.Args[0].Type().Signature(),
				})
				out.Stats.MACSites++
			case fpInfo.IsFuncPtrLoad(in):
				// Pointers in read-only memory (vtable contents,
				// constant tables) cannot be corrupted and carry no
				// MACs.
				if readOnlyAddr(in.Args[0]) {
					return
				}
				b.InsertAfter(in, &mir.Instr{
					Op: mir.OpRuntime, RT: mir.RTMACCheck,
					Args:     []mir.Value{in.Args[0], in},
					ClassSig: in.Type().Signature(),
				})
				out.Stats.MACSites++
			}
		})
		// Return-address MACs on every function with a real frame.
		entry := f.Entry()
		entry.InsertBefore(entry.Instrs[0], &mir.Instr{Op: mir.OpRuntime, RT: mir.RTMACRetStore})
		for _, b := range f.Blocks {
			term := b.Terminator()
			if term == nil || term.Op != mir.OpRet {
				continue
			}
			b.InsertBefore(term, &mir.Instr{Op: mir.OpRuntime, RT: mir.RTMACRetCheck})
		}
		out.Stats.RetProtected++
	}
}

// instrumentCPI implements Code-Pointer Integrity (§6.3.3): code pointers
// are *relocated* — stores of function pointers go to the safe store and the
// raw memory slot is poisoned; loads of function pointers read the safe
// store. Return addresses live on an unguarded safe stack (the original CPI
// runtime layout).
//
// Deliberately reproduced limitations (§5.1, confirmed by the CPI authors as
// prototype gaps): detection is static-type-only — pointers that decay
// through casts are missed — and block memory operations are not
// interposed, so a memcpy moves the poison rather than the pointer and the
// destination's safe-store entry is never created. Programs that do either
// crash on a poisoned (null) indirect call, which is how the paper's 14
// failing benchmarks fail.
func instrumentCPI(out *Instrumented) {
	for _, f := range out.Mod.Funcs {
		if f.Intrinsic || len(f.Blocks) == 0 {
			continue
		}
		f.ForEachInstr(func(b *mir.Block, in *mir.Instr) {
			switch in.Op {
			case mir.OpStore:
				// Static-type-only detection (function pointers and
				// vtable pointers): decayed stores are missed — the
				// prototype gap.
				if !in.Args[0].Type().IsCtrlPtr() {
					return
				}
				b.InsertBefore(in, &mir.Instr{
					Op: mir.OpRuntime, RT: mir.RTSafeStoreSet,
					Args: []mir.Value{in.Args[1], in.Args[0]},
				})
				// Poison the raw slot: the pointer lives only in the
				// safe store.
				in.Args = []mir.Value{mir.Null(in.Args[0].Type()), in.Args[1]}
				out.Stats.SafeStoreSites++
			case mir.OpLoad:
				if !in.Type().IsCtrlPtr() {
					return
				}
				// Read-only pointers are never relocated: the memory
				// itself is immutable.
				if readOnlyAddr(in.Args[0]) {
					return
				}
				// Replace the load's consumers with a safe-store read.
				get := &mir.Instr{
					Op: mir.OpRuntime, RT: mir.RTSafeStoreGet,
					Typ:  in.Type(),
					Args: []mir.Value{in.Args[0]},
				}
				b.InsertAfter(in, get)
				replaceUses(f, in, get, get)
				out.Stats.SafeStoreSites++
			}
		})
	}
}

// replaceUses rewrites every operand of f that references old to point at
// nw, skipping the instruction skip (the replacement itself).
func replaceUses(f *mir.Func, old, nw mir.Value, skip *mir.Instr) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in == skip {
				continue
			}
			for i, a := range in.Args {
				if a == old {
					in.Args[i] = nw
				}
			}
		}
	}
}
