// Package core is the one-process convenience entry point to the HerQules
// framework: Run wires the four components of Figure 1 — an instrumented
// program (compiler + vm), the AppendWrite channel (ipc/fpga/uarch), the
// kernel module (kernel) and the verifier (verifier) — and executes a single
// monitored program under a chosen design.
//
// Since the supervisor refactor, Run is a thin wrapper: it constructs a
// throwaway supervisor.System (one kernel + one sharded verifier), launches
// exactly one process into it, waits, and shuts the system down. Long-lived
// multi-process hosting — the paper's actual deployment shape — lives in
// package supervisor and is surfaced publicly as herqules.System.
//
// Two execution modes are provided:
//
//   - Deterministic: messages are delivered to the verifier inline at send
//     time. Policy decisions land at exactly the same program points on
//     every run, which the correctness, effectiveness and performance
//     experiments require. Performance comes from the cycle model (package
//     sim), which charges each message its primitive's send cost — the
//     asynchrony the paper gains from concurrency shows up as the *absence*
//     of verifier processing time on the program's critical path.
//
//   - Concurrent: messages travel through a real ipc.Channel to a verifier
//     pump goroutine, and system calls genuinely block in the kernel model
//     until the verifier's confirmation arrives — the paper's actual
//     runtime structure, used by the examples and the demo binary.
package core

import (
	"context"

	"herqules/internal/compiler"
	"herqules/internal/ipc"
	"herqules/internal/policy"
	"herqules/internal/sim"
	"herqules/internal/supervisor"
	"herqules/internal/telemetry"
	"herqules/internal/verifier"
)

// Options configures one monitored run.
type Options struct {
	// Entry is the entry function (default "main"); Args its arguments.
	Entry string
	Args  []uint64

	// Channel, when non-nil, selects concurrent mode over this transport.
	// Nil selects deterministic inline delivery. Run takes ownership of
	// the channel: it is closed when the run finishes or fails.
	Channel *ipc.Channel

	// Cost is the cycle model (nil: no accounting).
	Cost *sim.CostModel

	// KillOnViolation controls the verifier (§3.4). Default true; the
	// paper disables it for performance/correctness runs because baseline
	// designs false-positive (§5).
	KillOnViolation bool

	// ContinueChecks makes in-process checks (Clang-CFI, CCFI) record and
	// continue rather than trap — the §5 performance methodology.
	ContinueChecks bool

	// Policies builds the verifier policy set per process; nil installs the
	// registry default set, policy.DefaultSet (cfi + memsafety + counter +
	// dfi). PolicyNames takes precedence when both are set.
	Policies verifier.PolicyFactory

	// PolicyNames selects the policy set by registry name — e.g.
	// []string{"cfi", "memsafety", "hmac"}; herqules.Policies() lists the
	// registry. An unknown name fails the run before anything launches.
	PolicyNames []string

	// MaxInstructions bounds execution (0: vm default).
	MaxInstructions uint64

	// Seed randomizes information-hiding layout.
	Seed uint64

	// Metrics, when non-nil, wires the telemetry layer through the whole
	// stack: kernel gate (syscall stall histogram, kills), verifier
	// (per-shard counters, batch distributions) and — in concurrent mode —
	// the IPC channel (send/recv totals, pending high-water).
	Metrics *telemetry.Metrics
}

// Outcome is the result of a monitored run.
type Outcome = supervisor.Outcome

// DefaultPolicies installs the standard policy set.
func DefaultPolicies() []policy.Policy { return supervisor.DefaultPolicies() }

// Run executes an instrumented program under the framework: a private
// single-tenant supervisor.System is stood up, the program is launched into
// it, and the system is torn down once the program exits.
func Run(ins *compiler.Instrumented, opts Options) (*Outcome, error) {
	factory := opts.Policies
	if len(opts.PolicyNames) > 0 {
		f, err := policy.SetFactory(opts.PolicyNames...)
		if err != nil {
			return nil, err
		}
		factory = f
	}
	sys := supervisor.New(supervisor.Config{
		Policies:        factory,
		KillOnViolation: opts.KillOnViolation,
		Metrics:         opts.Metrics,
	})
	proc, err := sys.Launch(ins, supervisor.LaunchOptions{
		Entry:           opts.Entry,
		Args:            opts.Args,
		Channel:         opts.Channel,
		Inline:          opts.Channel == nil,
		Cost:            opts.Cost,
		ContinueChecks:  opts.ContinueChecks,
		MaxInstructions: opts.MaxInstructions,
		Seed:            opts.Seed,
	})
	if err != nil {
		sys.Shutdown(context.Background())
		return nil, err
	}
	out, err := proc.Wait()
	sys.Shutdown(context.Background())
	return out, err
}
