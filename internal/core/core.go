// Package core is the HerQules framework proper: it wires the four
// components of Figure 1 — an instrumented program (compiler + vm), the
// AppendWrite channel (ipc/fpga/uarch), the kernel module (kernel) and the
// verifier (verifier) — and runs monitored programs under a chosen design.
//
// Two execution modes are provided:
//
//   - Deterministic: messages are delivered to the verifier inline at send
//     time. Policy decisions land at exactly the same program points on
//     every run, which the correctness, effectiveness and performance
//     experiments require. Performance comes from the cycle model (package
//     sim), which charges each message its primitive's send cost — the
//     asynchrony the paper gains from concurrency shows up as the *absence*
//     of verifier processing time on the program's critical path.
//
//   - Concurrent: messages travel through a real ipc.Channel to a verifier
//     pump goroutine, and system calls genuinely block in the kernel model
//     until the verifier's confirmation arrives — the paper's actual
//     runtime structure, used by the examples and the demo binary.
package core

import (
	"fmt"

	"herqules/internal/compiler"
	"herqules/internal/ipc"
	"herqules/internal/kernel"
	"herqules/internal/policy"
	"herqules/internal/sim"
	"herqules/internal/telemetry"
	"herqules/internal/verifier"
	"herqules/internal/vm"
)

// Options configures one monitored run.
type Options struct {
	// Entry is the entry function (default "main"); Args its arguments.
	Entry string
	Args  []uint64

	// Channel, when non-nil, selects concurrent mode over this transport.
	// Nil selects deterministic inline delivery.
	Channel *ipc.Channel

	// Cost is the cycle model (nil: no accounting).
	Cost *sim.CostModel

	// KillOnViolation controls the verifier (§3.4). Default true; the
	// paper disables it for performance/correctness runs because baseline
	// designs false-positive (§5).
	KillOnViolation bool

	// ContinueChecks makes in-process checks (Clang-CFI, CCFI) record and
	// continue rather than trap — the §5 performance methodology.
	ContinueChecks bool

	// Policies builds the verifier policy set per process; nil installs
	// CFI + memory-safety + counter.
	Policies verifier.PolicyFactory

	// MaxInstructions bounds execution (0: vm default).
	MaxInstructions uint64

	// Seed randomizes information-hiding layout.
	Seed uint64

	// Metrics, when non-nil, wires the telemetry layer through the whole
	// stack: kernel gate (syscall stall histogram, kills), verifier
	// (per-shard counters, batch distributions) and — in concurrent mode —
	// the IPC channel (send/recv totals, pending high-water).
	Metrics *telemetry.Metrics
}

// Outcome is the result of a monitored run.
type Outcome struct {
	*vm.Result
	// PolicyViolations are the verifier-side violations recorded for the
	// process (empty when it was killed on the first one).
	PolicyViolations []*policy.Violation
	// MessagesProcessed counts verifier-side deliveries.
	MessagesProcessed uint64
	// Entries / MaxEntries are the verifier metadata sizes (§5.4).
	Entries, MaxEntries int
	PID                 int32
}

// DefaultPolicies installs the standard policy set.
func DefaultPolicies() []policy.Policy {
	return []policy.Policy{
		policy.NewCFI(), policy.NewMemSafety(), policy.NewCounter(), policy.NewDFI(),
	}
}

// Run executes an instrumented program under the framework.
func Run(ins *compiler.Instrumented, opts Options) (*Outcome, error) {
	if opts.Entry == "" {
		opts.Entry = "main"
	}
	factory := opts.Policies
	if factory == nil {
		factory = DefaultPolicies
	}

	k := kernel.New(nil)
	v := verifier.New(factory, k)
	v.KillOnViolation = opts.KillOnViolation
	k.SetListener(v)
	if opts.Metrics != nil {
		k.EnableTelemetry(opts.Metrics)
		v.EnableTelemetry(opts.Metrics)
		if opts.Channel != nil {
			opts.Channel.EnableTelemetry(opts.Metrics)
		}
	}
	pid := k.Register()

	cfg := ins.VMConfig()
	cfg.PID = pid
	cfg.ContinueOnViolation = opts.ContinueChecks
	cfg.Cost = opts.Cost
	cfg.MaxInstructions = opts.MaxInstructions
	cfg.Seed = opts.Seed
	if ins.Design.IsHQ() {
		// Only HQ programs carry synchronization messages; gating a
		// baseline would stall every system call until the epoch.
		cfg.Kernel = k
	}
	cfg.Killed = func() (bool, string) { return k.Killed(pid) }

	pumpDone := make(chan struct{})
	if opts.Channel != nil {
		ch := opts.Channel
		// Transports with a kernel-managed PID register (the FPGA's
		// authenticity mechanism, §3.1.1) must be programmed with the
		// process identity on the context switch; the framework plays
		// the kernel here.
		if reg, ok := ch.Sender.(interface{ SetPID(int32) }); ok {
			reg.SetPID(pid)
		}
		go func() {
			v.Pump(ch.Receiver)
			close(pumpDone)
		}()
		cfg.Emit = func(m ipc.Message) error { return ch.Sender.Send(m) }
	} else {
		close(pumpDone)
		cfg.Emit = func(m ipc.Message) error { v.Deliver(m); return nil }
	}

	p, err := vm.NewProcess(ins.Mod, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: loading %s: %w", ins.Mod.Name, err)
	}
	res := p.Run(opts.Entry, opts.Args...)

	if opts.Channel != nil {
		opts.Channel.Close()
		<-pumpDone
		// A violation may have landed after the program's last
		// instruction; fold it into the result.
		if killed, reason := k.Killed(pid); killed && !res.Killed {
			res.Killed = true
			res.KillReason = reason
		}
	}

	out := &Outcome{
		Result:            res,
		PolicyViolations:  v.Violations(pid),
		MessagesProcessed: v.Messages(pid),
		PID:               pid,
	}
	out.Entries, out.MaxEntries = v.Entries(pid)
	k.Exit(pid)
	return out, nil
}
