package core

import (
	"testing"

	"herqules/internal/compiler"
	"herqules/internal/ipc"
	"herqules/internal/mir"
	"herqules/internal/policy"
	"herqules/internal/vm"
)

// victim builds a program whose function pointer is corrupted through an
// integer alias before dispatch; the payload marks the exploit.
func victim(t *testing.T, corrupt bool) *mir.Module {
	return victimWithPayload(t, corrupt, false)
}

// victimWithPayload optionally gives the attacker a *gated* side effect
// (exit 99) in addition to the ungated marker, for concurrent-mode tests.
func victimWithPayload(t *testing.T, corrupt, gatedPayload bool) *mir.Module {
	t.Helper()
	mod := mir.NewModule("core-victim")
	b := mir.NewBuilder(mod)
	sig := mir.FuncType(mir.I64, mir.I64)

	b.Func("attacker", sig, "x") // function #0
	b.Syscall(vm.SysMarkExploit) // ungated, like RIPE shellcode
	if gatedPayload {
		b.Syscall(vm.SysExit, mir.ConstInt(99)) // gated external effect
	}
	b.Ret(mir.ConstInt(0))

	legit := b.Func("legit", sig, "x")
	b.Ret(b.Add(legit.Params[0], mir.ConstInt(1)))

	b.Func("main", mir.FuncType(mir.I64))
	slot := b.Cast(b.Malloc(mir.ConstInt(16)), mir.Ptr(mir.Ptr(sig)))
	b.Store(b.FuncAddr(legit), slot)
	if corrupt {
		b.Store(mir.ConstInt(vm.StaticFuncAddr(0)), b.Cast(slot, mir.Ptr(mir.I64)))
	}
	fp := b.Load(slot)
	r := b.ICall(fp, sig, mir.ConstInt(41))
	b.Syscall(vm.SysWrite, r)
	b.Syscall(vm.SysExit, mir.ConstInt(0))
	b.Ret(mir.ConstInt(0))
	mod.Finalize()
	if err := mir.Validate(mod); err != nil {
		t.Fatal(err)
	}
	return mod
}

func instrumentHQ(t *testing.T, mod *mir.Module) *compiler.Instrumented {
	t.Helper()
	ins, err := compiler.Instrument(mod, compiler.HQSfeStk, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func TestDeterministicCleanRun(t *testing.T) {
	ins := instrumentHQ(t, victim(t, false))
	out, err := Run(ins, Options{KillOnViolation: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Killed || out.Err != nil {
		t.Fatalf("clean run: killed=%t err=%v", out.Killed, out.Err)
	}
	if len(out.Output) != 1 || out.Output[0] != 42 {
		t.Errorf("output = %v", out.Output)
	}
	if out.MessagesProcessed == 0 {
		t.Error("no messages reached the verifier")
	}
	if out.Entries < 0 || out.MaxEntries < 1 {
		t.Errorf("entries = %d/%d", out.Entries, out.MaxEntries)
	}
}

func TestDeterministicAttackKilledBeforeSideEffects(t *testing.T) {
	ins := instrumentHQ(t, victim(t, true))
	out, err := Run(ins, Options{KillOnViolation: true})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Killed {
		t.Fatal("attack not caught")
	}
	if out.ExploitMarker {
		t.Error("payload's system call executed despite the kill")
	}
	if len(out.Output) != 0 {
		t.Error("output produced after the violation")
	}
}

func TestConcurrentModeOverEveryTransport(t *testing.T) {
	mk := map[string]func() *ipc.Channel{
		"shm":  func() *ipc.Channel { return ipc.NewSharedRing(1 << 12) },
		"mq":   ipc.NewMessageQueue,
		"pipe": ipc.NewPipe,
	}
	for name, f := range mk {
		t.Run(name, func(t *testing.T) {
			ins := instrumentHQ(t, victimWithPayload(t, true, true))
			out, err := Run(ins, Options{Channel: f(), KillOnViolation: true})
			if err != nil {
				t.Fatal(err)
			}
			if !out.Killed {
				t.Error("attack survived concurrent verification")
			}
			// Bounded asynchrony's guarantee is about *gated* side
			// effects: the payload's exit syscall must never commit.
			// (Its ungated marker — the RIPE execve exemption — can
			// race the verifier in concurrent mode, by design.)
			if out.ExitCode == 99 {
				t.Error("payload's gated syscall committed")
			}
		})
	}
}

func TestMonitoringModeRecordsWithoutKilling(t *testing.T) {
	ins := instrumentHQ(t, victim(t, true))
	out, err := Run(ins, Options{KillOnViolation: false})
	if err != nil {
		t.Fatal(err)
	}
	if out.Killed {
		t.Error("killed in monitoring mode")
	}
	if len(out.PolicyViolations) == 0 {
		t.Error("violation not recorded")
	}
	// In monitoring mode the hijack actually runs (bounded asynchrony
	// does not roll back the transfer; it only gates side effects when
	// killing is enabled).
	if !out.ExploitMarker {
		t.Error("hijacked call suppressed in monitoring mode")
	}
}

func TestBaselineNotGated(t *testing.T) {
	mod := victim(t, false)
	base, err := compiler.Instrument(mod, compiler.Baseline, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(base, Options{KillOnViolation: true})
	if err != nil {
		t.Fatal(err)
	}
	// Without HQ there are no sync messages; if the kernel gated the
	// baseline, its syscalls would hit the epoch and kill it.
	if out.Killed || out.Err != nil {
		t.Errorf("baseline gated: killed=%t err=%v", out.Killed, out.Err)
	}
}

func TestCustomPolicySet(t *testing.T) {
	ins := instrumentHQ(t, victim(t, false))
	counter := policy.NewCounter()
	out, err := Run(ins, Options{
		Policies: func() []policy.Policy { return []policy.Policy{counter, policy.NewCFI()} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Err != nil || out.Killed {
		t.Fatalf("custom policies broke the run: %v %t", out.Err, out.Killed)
	}
}

func TestRunErrorsOnMissingEntry(t *testing.T) {
	ins := instrumentHQ(t, victim(t, false))
	out, err := Run(ins, Options{Entry: "nonexistent"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Err == nil {
		t.Error("missing entry did not error")
	}
}
