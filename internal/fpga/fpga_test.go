package fpga

import (
	"errors"
	"testing"

	"herqules/internal/ipc"
)

func TestDeliveryAndOrdering(t *testing.T) {
	ch, dev := New(1024)
	dev.SetPID(7)
	for i := 0; i < 100; i++ {
		if err := ch.Sender.Send(ipc.Message{Op: ipc.OpCounterInc, Arg1: uint64(i)}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	ch.Close()
	for i := 0; i < 100; i++ {
		m, ok, err := ch.Receiver.Recv()
		if !ok || err != nil {
			t.Fatalf("Recv %d: ok=%t err=%v", i, ok, err)
		}
		if m.Arg1 != uint64(i) || m.Seq != uint64(i+1) {
			t.Fatalf("message %d out of order: %v", i, m)
		}
	}
	if _, ok, _ := ch.Receiver.Recv(); ok {
		t.Error("message after drain")
	}
}

func TestPIDStampedByKernelRegister(t *testing.T) {
	ch, dev := New(16)
	dev.SetPID(42)
	// A compromised sender forges PID 1: the AFU must override it with the
	// kernel-managed register (message authenticity, §3.1.1).
	ch.Sender.Send(ipc.Message{Op: ipc.OpInit, PID: 1})
	dev.SetPID(43) // context switch
	ch.Sender.Send(ipc.Message{Op: ipc.OpInit, PID: 1})
	ch.Close()
	m1, _, _ := ch.Receiver.Recv()
	m2, _, _ := ch.Receiver.Recv()
	if m1.PID != 42 || m2.PID != 43 {
		t.Errorf("PIDs = %d, %d; want kernel-managed 42, 43", m1.PID, m2.PID)
	}
}

func TestSeqForgeryIgnored(t *testing.T) {
	ch, _ := New(16)
	ch.Sender.Send(ipc.Message{Op: ipc.OpInit, Seq: 999})
	ch.Close()
	m, _, _ := ch.Receiver.Recv()
	if m.Seq != 1 {
		t.Errorf("Seq = %d, want AFU-assigned 1", m.Seq)
	}
}

func TestDroppedMessagesDetected(t *testing.T) {
	// Tiny buffer, no reader: overruns are dropped and the counter gap is
	// a fatal integrity error at the receiver.
	ch, dev := New(8)
	for i := 0; i < 12; i++ {
		if err := ch.Sender.Send(ipc.Message{Op: ipc.OpCounterInc, Arg1: uint64(i)}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	if dev.Dropped() != 4 {
		t.Fatalf("Dropped = %d, want 4", dev.Dropped())
	}
	ch.Close()
	// First 8 messages are intact...
	for i := 0; i < 8; i++ {
		if _, ok, err := ch.Receiver.Recv(); !ok || err != nil {
			t.Fatalf("Recv %d: ok=%t err=%v", i, ok, err)
		}
	}
	// ...then nothing: but if the sender continues after a drop, the
	// next received message exposes the gap.
	ch2, dev2 := New(4)
	for i := 0; i < 5; i++ {
		ch2.Sender.Send(ipc.Message{Op: ipc.OpCounterInc})
	}
	// Drain 4, then send one more (seq 6; seq 5 was dropped).
	for i := 0; i < 4; i++ {
		if _, ok, err := ch2.Receiver.Recv(); !ok || err != nil {
			t.Fatal(err)
		}
	}
	ch2.Sender.Send(ipc.Message{Op: ipc.OpCounterInc})
	_, _, err := ch2.Receiver.Recv()
	if !errors.Is(err, ipc.ErrIntegrity) {
		t.Errorf("counter gap: err=%v, want ErrIntegrity", err)
	}
	_ = dev2
}

func TestSendAfterCloseFails(t *testing.T) {
	ch, _ := New(8)
	ch.Close()
	if err := ch.Sender.Send(ipc.Message{}); err == nil {
		t.Error("Send after Close succeeded")
	}
}

func TestPropertiesSuitable(t *testing.T) {
	ch, _ := New(8)
	if !ch.Props.Suitable() {
		t.Error("AppendWrite-FPGA must satisfy both HerQules requirements")
	}
	if ch.Props.SendNanos != SendNanos {
		t.Errorf("SendNanos = %v", ch.Props.SendNanos)
	}
}

func TestConcurrentProducerConsumer(t *testing.T) {
	ch, dev := New(64)
	dev.SetPID(5)
	const n = 10000
	errs := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := ch.Sender.Send(ipc.Message{Op: ipc.OpCounterInc, Arg1: uint64(i)}); err != nil {
				errs <- err
				return
			}
		}
		errs <- ch.Sender.Close()
	}()
	count := 0
	for {
		m, ok, err := ch.Receiver.Recv()
		if err != nil {
			// The AFU drops on overrun instead of blocking, so counter
			// gaps are expected whenever the producer outruns this loop.
			// The errored Recv still consumed one buffered message; keep
			// draining so the accounting below closes.
			if dev.Dropped() == 0 {
				t.Fatalf("integrity error without drops: %v", err)
			}
			count++
			continue
		}
		if !ok {
			break
		}
		_ = m
		count++
	}
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	// Conservation: every sent message was either dropped by the AFU at
	// overrun or consumed by a Recv (verified or gap-flagged) above.
	if count+int(dev.Dropped()) != n {
		t.Errorf("received %d + dropped %d != sent %d", count, dev.Dropped(), n)
	}
}

func TestRecvBatchDrainsBuffer(t *testing.T) {
	ch, dev := New(1024)
	dev.SetPID(9)
	const n = 100
	for i := 0; i < n; i++ {
		if err := ch.Sender.Send(ipc.Message{Op: ipc.OpCounterInc, Arg1: uint64(i)}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	ch.Close()
	buf := make([]ipc.Message, 33)
	got := 0
	for {
		k, ok, err := ch.Receiver.(ipc.BatchReceiver).RecvBatch(buf)
		if err != nil {
			t.Fatalf("RecvBatch: %v", err)
		}
		if !ok {
			break
		}
		for i := 0; i < k; i++ {
			if buf[i].Arg1 != uint64(got+i) || buf[i].PID != 9 {
				t.Fatalf("message %d: %v", got+i, buf[i])
			}
		}
		got += k
	}
	if got != n {
		t.Fatalf("drained %d messages, want %d", got, n)
	}
}

func TestRecvBatchAttributesDropToProcess(t *testing.T) {
	// Overrun a tiny buffer so the counter gap surfaces mid-batch: the
	// messages before the gap are delivered, and the error names the PID
	// the AFU stamped (kernel-managed register, so trustworthy).
	ch, _ := New(4)
	if reg, ok := ch.Sender.(interface{ SetPID(int32) }); ok {
		reg.SetPID(42)
	}
	for i := 0; i < 5; i++ { // fifth message dropped (seq 5 consumed)
		ch.Sender.Send(ipc.Message{Op: ipc.OpCounterInc})
	}
	buf := make([]ipc.Message, 4)
	k, _, err := ch.Receiver.(ipc.BatchReceiver).RecvBatch(buf)
	if k != 4 || err != nil {
		t.Fatalf("pre-gap burst: k=%d err=%v", k, err)
	}
	ch.Sender.Send(ipc.Message{Op: ipc.OpCounterInc}) // seq 6 exposes the gap
	k, _, err = ch.Receiver.(ipc.BatchReceiver).RecvBatch(buf)
	if k != 0 {
		t.Errorf("post-gap burst delivered %d messages", k)
	}
	if !errors.Is(err, ipc.ErrIntegrity) {
		t.Fatalf("err=%v, want ErrIntegrity", err)
	}
	var pe *ipc.ProcessError
	if !errors.As(err, &pe) || pe.PID != 42 {
		t.Errorf("drop not attributed to pid 42: %v", err)
	}
}

func TestReceiverPending(t *testing.T) {
	ch, _ := New(64)
	for i := 0; i < 7; i++ {
		ch.Sender.Send(ipc.Message{Op: ipc.OpCounterInc})
	}
	if p, ok := ipc.PendingOf(ch.Receiver); !ok || p != 7 {
		t.Errorf("Pending = %d ok=%t, want 7", p, ok)
	}
}

func TestNewChannelValidatesCapacity(t *testing.T) {
	if _, err := NewChannel(-1); err == nil {
		t.Fatal("negative capacity accepted")
	}
	ch, err := NewChannel(0) // 0 selects DefaultSlots, like New
	if err != nil || ch == nil {
		t.Fatalf("NewChannel(0) = %v, %v", ch, err)
	}
	if _, ok := ch.Sender.(ipc.PIDRegister); !ok {
		t.Error("FPGA sender lost its kernel-managed PID register")
	}
}
