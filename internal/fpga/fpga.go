// Package fpga models AppendWrite-FPGA (§2.3.1, §3.1.1): an Accelerator
// Functional Unit on a PCIe FPGA card that receives messages as
// word-granularity uncached MMIO register writes, reassembles them, stamps
// them with a kernel-managed PID register, numbers them with a per-message
// counter, and writes them into a pinned circular buffer in the verifier's
// memory.
//
// The security properties carried over from the hardware design:
//
//   - Authenticity: the PID field is populated by the AFU from a register
//     only the kernel can write (updated on context switch). A compromised
//     program cannot claim another process's identity.
//   - Append-only: the monitored program can only push new messages through
//     the MMIO registers; it has no access to the circular buffer, so sent
//     messages cannot be modified or erased.
//   - Drop detection: the AFU has no back-pressure, so a full buffer drops
//     messages; the consecutive counter lets the verifier detect the gap and
//     treat it as a fatal integrity violation.
package fpga

import (
	"fmt"
	"sync"

	"herqules/internal/ipc"
)

// SendNanos is the modelled per-message cost of AppendWrite-FPGA from
// Table 2: two posted MMIO write TLPs traversing the uncore and PCIe bus.
const SendNanos = 102

// DefaultSlots is the default circular-buffer capacity in messages. The
// paper sizes the buffer (1 GB) so drops never occur in practice; tests use
// small buffers to exercise the drop path.
const DefaultSlots = 1 << 16

// mmioRegs is the AFU's operation-specific register file (§3.1.1): staged
// argument registers plus a commit register. Messages are created with at
// most two MMIO writes: one optional staging write and one commit write that
// carries the opcode.
type mmioRegs struct {
	arg1, arg2, arg3 uint64
}

// Device is the AFU plus its host-side circular buffer.
type Device struct {
	mu sync.Mutex

	regs mmioRegs
	// pid is the kernel-managed PID register, updated on context switch.
	pid int32
	// counter is the AFU's per-message counter.
	counter uint64

	// Host-side circular buffer (pinned hugepage memory in the paper).
	buf    []ipc.Message
	head   uint64 // next write (AFU side)
	tail   uint64 // next read (verifier side)
	closed bool
	cond   *sync.Cond

	// dropped counts messages lost to buffer overrun.
	dropped uint64
}

// NewDevice creates an AFU with a circular buffer of the given capacity
// (DefaultSlots when <= 0).
func NewDevice(slots int) *Device {
	if slots <= 0 {
		slots = DefaultSlots
	}
	d := &Device{buf: make([]ipc.Message, slots)}
	d.cond = sync.NewCond(&d.mu)
	return d
}

// SetPID models the kernel updating the AFU's PID register on a context
// switch. Only kernel code may call this; the monitored program has no MMIO
// path to it.
func (d *Device) SetPID(pid int32) {
	d.mu.Lock()
	d.pid = pid
	d.mu.Unlock()
}

// writeMMIO models the word-granularity uncached stores a send decomposes
// into. The final store (commit=true, carrying the opcode) triggers
// reassembly and the host write.
func (d *Device) writeMMIO(op ipc.Op, arg1, arg2, arg3 uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	// Staging write(s).
	d.regs.arg1, d.regs.arg2, d.regs.arg3 = arg1, arg2, arg3
	// Commit write: reassemble, stamp PID and counter, write to host.
	d.counter++
	m := ipc.Message{
		Op:   op,
		PID:  d.pid,
		Arg1: d.regs.arg1,
		Arg2: d.regs.arg2,
		Arg3: d.regs.arg3,
		Seq:  d.counter,
	}
	if d.head-d.tail >= uint64(len(d.buf)) {
		// No back-pressure mechanism: the message is dropped. The
		// counter was still consumed, so the verifier will observe a
		// gap (§3.1.1).
		d.dropped++
		return
	}
	d.buf[d.head%uint64(len(d.buf))] = m
	d.head++
	d.cond.Broadcast()
}

// Dropped reports how many messages were lost to buffer overrun.
func (d *Device) Dropped() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dropped
}

// sender is the monitored-program endpoint: its only capability is pushing
// MMIO writes into the AFU.
type sender struct {
	dev *Device
}

// SetPID exposes the kernel-managed PID register through the sender handle
// so the framework (acting as the kernel on a context switch) can program
// it. Guest code never holds this handle.
func (s *sender) SetPID(pid int32) { s.dev.SetPID(pid) }

// Send implements ipc.Sender. The PID and Seq fields of m are ignored: the
// AFU assigns both (a compromised sender cannot forge them).
func (s *sender) Send(m ipc.Message) error {
	s.dev.mu.Lock()
	closed := s.dev.closed
	s.dev.mu.Unlock()
	if closed {
		return ipc.ErrClosed
	}
	s.dev.writeMMIO(m.Op, m.Arg1, m.Arg2, m.Arg3)
	return nil
}

// Close implements ipc.Sender.
func (s *sender) Close() error {
	s.dev.mu.Lock()
	s.dev.closed = true
	s.dev.cond.Broadcast()
	s.dev.mu.Unlock()
	return nil
}

// receiver is the verifier endpoint: it reads the circular buffer and
// verifies that counters are consecutive.
type receiver struct {
	dev     *Device
	lastSeq uint64
}

// Recv implements ipc.Receiver.
func (r *receiver) Recv() (ipc.Message, bool, error) {
	d := r.dev
	d.mu.Lock()
	for d.tail == d.head && !d.closed {
		d.cond.Wait()
	}
	if d.tail == d.head {
		d.mu.Unlock()
		return ipc.Message{}, false, nil
	}
	m := d.buf[d.tail%uint64(len(d.buf))]
	d.tail++
	d.cond.Broadcast()
	d.mu.Unlock()
	return r.verify(m)
}

// TryRecv implements ipc.TryReceiver.
func (r *receiver) TryRecv() (ipc.Message, bool, error) {
	d := r.dev
	d.mu.Lock()
	if d.tail == d.head {
		d.mu.Unlock()
		return ipc.Message{}, false, nil
	}
	m := d.buf[d.tail%uint64(len(d.buf))]
	d.tail++
	d.cond.Broadcast()
	d.mu.Unlock()
	return r.verify(m)
}

// RecvBatch implements ipc.BatchReceiver: the whole pending window of the
// circular buffer is copied out under one lock round, then counter-verified
// outside the lock, so the AFU is never stalled by per-message verifier work.
func (r *receiver) RecvBatch(out []ipc.Message) (int, bool, error) {
	if len(out) == 0 {
		return 0, true, nil
	}
	d := r.dev
	d.mu.Lock()
	for d.tail == d.head && !d.closed {
		d.cond.Wait()
	}
	if d.tail == d.head {
		d.mu.Unlock()
		return 0, false, nil
	}
	n := int(d.head - d.tail)
	if n > len(out) {
		n = len(out)
	}
	for i := 0; i < n; i++ {
		out[i] = d.buf[(d.tail+uint64(i))%uint64(len(d.buf))]
	}
	d.tail += uint64(n)
	d.cond.Broadcast()
	d.mu.Unlock()
	for i := 0; i < n; i++ {
		if out[i].Seq != r.lastSeq+1 {
			return i, false, &ipc.ProcessError{PID: out[i].PID, Err: ipc.ErrIntegrity}
		}
		r.lastSeq = out[i].Seq
	}
	return n, true, nil
}

// Pending implements ipc.Pender: messages the AFU has written but the
// verifier has not yet read.
func (r *receiver) Pending() int {
	r.dev.mu.Lock()
	defer r.dev.mu.Unlock()
	return int(r.dev.head - r.dev.tail)
}

func (r *receiver) verify(m ipc.Message) (ipc.Message, bool, error) {
	if m.Seq != r.lastSeq+1 {
		// A non-consecutive counter means the AFU dropped messages; the
		// monitored program must be terminated (§3.1.1). The PID field is
		// AFU-stamped (kernel-managed register), so the error can be
		// attributed to the responsible process.
		return m, false, &ipc.ProcessError{PID: m.PID, Err: ipc.ErrIntegrity}
	}
	r.lastSeq = m.Seq
	return m, true, nil
}

var (
	_ ipc.PIDRegister   = (*sender)(nil)
	_ ipc.Receiver      = (*receiver)(nil)
	_ ipc.TryReceiver   = (*receiver)(nil)
	_ ipc.BatchReceiver = (*receiver)(nil)
	_ ipc.Pender        = (*receiver)(nil)
)

// New creates an AppendWrite-FPGA channel with the given buffer capacity in
// messages (DefaultSlots when <= 0). The returned Device is exposed for the
// kernel to manage the PID register.
func New(slots int) (*ipc.Channel, *Device) {
	d := NewDevice(slots)
	ch := &ipc.Channel{
		Sender:   &sender{dev: d},
		Receiver: &receiver{dev: d},
		Props: ipc.Properties{
			Name:            "AppendWrite-FPGA",
			AppendOnly:      true,
			AsyncValidation: true,
			PrimaryCost:     "MMIO write",
			SendNanos:       SendNanos,
		},
	}
	return ch, d
}

// NewChannel is the validating constructor used by the channel factories:
// unlike New, which silently substitutes DefaultSlots, it rejects a negative
// buffer capacity — a caller bug the silent default used to swallow — so the
// error can propagate to the API surface. The Device stays reachable through
// the sender's ipc.PIDRegister.
func NewChannel(slots int) (*ipc.Channel, error) {
	if slots < 0 {
		return nil, fmt.Errorf("fpga: negative circular-buffer capacity %d", slots)
	}
	ch, _ := New(slots)
	return ch, nil
}
