package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"herqules/internal/supervisor"
	"herqules/internal/telemetry"
)

// WriteMetrics renders st in the Prometheus text exposition format (version
// 0.0.4): every registry counter, peak and histogram under a sanitized
// `herqules_` name, the system lifecycle totals, and one labeled series per
// launched PID. Histograms are emitted cumulatively — `_bucket{le="..."}`
// lines are monotone non-decreasing and end at `le="+Inf"` — with the
// power-of-two bucket upper bounds, which are exact for the integer samples
// the registry records.
func WriteMetrics(w io.Writer, st supervisor.Stats) {
	// Lifecycle totals first: they exist even on a system with no registry.
	writeScalar(w, "herqules_procs_launched_total", "counter", "", st.Launched)
	writeScalar(w, "herqules_procs_finished_total", "counter", "", st.Finished)
	writeScalar(w, "herqules_procs_killed_total", "counter", "", st.Killed)
	writeScalar(w, "herqules_procs_active", "gauge", "", st.Active)
	writeScalar(w, "herqules_messages_verified_total", "counter", "", st.MessagesVerified)

	// Per-policy violation attribution, wired from Violation.Policy. Policy
	// names are registry identifiers in practice, but the label value is
	// escaped regardless — a hostile or buggy name must not corrupt the
	// exposition.
	if len(st.ViolationsByPolicy) > 0 {
		fmt.Fprintf(w, "# TYPE herqules_violations_total counter\n")
		for _, name := range sortedKeys(st.ViolationsByPolicy) {
			fmt.Fprintf(w, "herqules_violations_total{policy=\"%s\"} %d\n",
				escapeLabel(name), st.ViolationsByPolicy[name])
		}
	}

	writeShardSeries(w, st.Shards)

	// Registry counters, sorted for a stable exposition.
	for _, name := range sortedKeys(st.Snapshot.Counters) {
		writeScalar(w, metricName(name)+"_total", "counter", "", st.Snapshot.Counters[name].Total)
	}
	// Peaks are high-water marks: gauges.
	for _, name := range sortedKeys(st.Snapshot.Peaks) {
		writeScalar(w, metricName(name)+"_peak", "gauge", "", st.Snapshot.Peaks[name])
	}
	// Registry histograms.
	for _, name := range sortedKeys(st.Snapshot.Histograms) {
		writeHistogram(w, metricName(name), "", st.Snapshot.Histograms[name])
	}

	writeProcSeries(w, st.Procs)
}

// writeProcSeries emits the per-PID attribution rows as labeled series,
// metric-major (the exposition format requires all samples of one metric
// family to be contiguous).
func writeProcSeries(w io.Writer, procs []supervisor.ProcStats) {
	if len(procs) == 0 {
		return
	}
	type column struct {
		name, typ string
		value     func(p supervisor.ProcStats) uint64
	}
	cols := []column{
		{"herqules_proc_messages_total", "counter", func(p supervisor.ProcStats) uint64 { return p.Messages }},
		{"herqules_proc_dropped_total", "counter", func(p supervisor.ProcStats) uint64 { return p.Dropped }},
		{"herqules_proc_violations_total", "counter", func(p supervisor.ProcStats) uint64 { return p.Violations }},
		{"herqules_proc_syscalls_total", "counter", func(p supervisor.ProcStats) uint64 { return p.Syscalls }},
		{"herqules_proc_sync_stalls_total", "counter", func(p supervisor.ProcStats) uint64 { return p.SyncStalls }},
		{"herqules_proc_pending_peak", "gauge", func(p supervisor.ProcStats) uint64 { return p.PendingPeak }},
		{"herqules_proc_last_syscall_unix_nanos", "gauge", func(p supervisor.ProcStats) uint64 { return uint64(p.LastSyscallUnixNanos) }},
	}
	for _, c := range cols {
		fmt.Fprintf(w, "# TYPE %s %s\n", c.name, c.typ)
		for _, p := range procs {
			fmt.Fprintf(w, "%s{pid=%q} %d\n", c.name, pidLabel(p.PID), c.value(p))
		}
	}

	// State as an info-style gauge: exactly one series per PID is 1.
	fmt.Fprintf(w, "# TYPE herqules_proc_state gauge\n")
	for _, p := range procs {
		fmt.Fprintf(w, "herqules_proc_state{pid=%q,state=%q} 1\n", pidLabel(p.PID), p.State)
	}

	// Per-PID syscall-gate stall distribution.
	fmt.Fprintf(w, "# TYPE herqules_proc_syscall_stall_ns histogram\n")
	for _, p := range procs {
		writeHistogramSeries(w, "herqules_proc_syscall_stall_ns", `pid=`+strconv.Quote(pidLabel(p.PID)), p.StallNs)
	}
}

// writeShardSeries emits the per-shard occupancy gauges — queue depth and
// bound, resident/dead contexts, poisoned flag — the series a shard
// rebalancer (the planned hqd daemon) watches.
func writeShardSeries(w io.Writer, shards []supervisor.ShardRow) {
	if len(shards) == 0 {
		return
	}
	type column struct {
		name  string
		value func(r supervisor.ShardRow) uint64
	}
	cols := []column{
		{"herqules_shard_queue_depth", func(r supervisor.ShardRow) uint64 { return uint64(r.QueueDepth) }},
		{"herqules_shard_queue_cap", func(r supervisor.ShardRow) uint64 { return uint64(r.QueueCap) }},
		{"herqules_shard_procs", func(r supervisor.ShardRow) uint64 { return uint64(r.Procs) }},
		{"herqules_shard_dead_procs", func(r supervisor.ShardRow) uint64 { return uint64(r.Dead) }},
		{"herqules_shard_poisoned", func(r supervisor.ShardRow) uint64 {
			if r.Poisoned {
				return 1
			}
			return 0
		}},
	}
	for _, c := range cols {
		fmt.Fprintf(w, "# TYPE %s gauge\n", c.name)
		for _, r := range shards {
			fmt.Fprintf(w, "%s{shard=\"%d\"} %d\n", c.name, r.Shard, c.value(r))
		}
	}
}

// WriteConnMetrics emits the connection plane's per-session gauges: one
// series per live session, labeled by pid and tenant. Appended to the
// /metrics exposition when a ConnReporter is wired — the transport-level
// signals (severed vs connected, resume counts, replay ack high-water,
// session-queue backlog) an operator needs to tell "the network is flapping"
// from "the verifier is behind".
func WriteConnMetrics(w io.Writer, rows []ConnRow) {
	writeScalar(w, "herqules_conn_sessions", "gauge", "", uint64(len(rows)))
	if len(rows) == 0 {
		return
	}
	type column struct {
		name  string
		value func(r ConnRow) uint64
	}
	cols := []column{
		{"herqules_conn_connected", func(r ConnRow) uint64 {
			if r.Connected {
				return 1
			}
			return 0
		}},
		{"herqules_conn_resumes_total", func(r ConnRow) uint64 { return r.Resumes }},
		{"herqules_conn_forwarded_seq", func(r ConnRow) uint64 { return r.ForwardedSeq }},
		{"herqules_conn_queue_depth", func(r ConnRow) uint64 { return uint64(r.QueueDepth) }},
		{"herqules_conn_last_recv_unix_nanos", func(r ConnRow) uint64 { return uint64(r.LastRecvUnixNanos) }},
	}
	for _, c := range cols {
		fmt.Fprintf(w, "# TYPE %s gauge\n", c.name)
		for _, r := range rows {
			fmt.Fprintf(w, "%s{pid=%q,tenant=\"%d\"} %d\n", c.name, pidLabel(r.PID), r.Tenant, c.value(r))
		}
	}
}

func pidLabel(pid int32) string { return strconv.FormatInt(int64(pid), 10) }

// escapeLabel escapes a Prometheus label value per the text exposition
// format: backslash, double quote and newline are the only characters that
// need escaping inside a quoted label value.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

func writeScalar(w io.Writer, name, typ, labels string, v uint64) {
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	if labels != "" {
		fmt.Fprintf(w, "%s{%s} %d\n", name, labels, v)
	} else {
		fmt.Fprintf(w, "%s %d\n", name, v)
	}
}

// writeHistogram emits the `# TYPE` header and one full bucket series.
func writeHistogram(w io.Writer, name, labels string, h telemetry.HistogramSnapshot) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	writeHistogramSeries(w, name, labels, h)
}

// writeHistogramSeries emits the cumulative `_bucket`/`_sum`/`_count` lines
// for one labeled series (no header, so several PIDs can share one family).
// Buckets are emitted through the last non-empty one; everything above folds
// into +Inf, whose value equals _count — both required by the format.
func writeHistogramSeries(w io.Writer, name, labels string, h telemetry.HistogramSnapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	last := 0
	for i, n := range h.Buckets {
		if n > 0 {
			last = i
		}
	}
	var cum uint64
	for i := 0; i <= last; i++ {
		cum += h.Buckets[i]
		// Upper bound 2^i - 1 is inclusive and integer-exact, but bucket 64
		// has no finite bound: it is covered by +Inf below.
		if i >= 64 {
			break
		}
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, labels+sep, formatBound(telemetry.BucketUpperBound(i)), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels+sep, h.Count)
	if labels != "" {
		fmt.Fprintf(w, "%s_sum{%s} %d\n", name, labels, h.Sum)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.Count)
	} else {
		fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
	}
}

func formatBound(v uint64) string { return strconv.FormatUint(v, 10) }

// metricName maps a registry instrument name ("verifier.send_validate_ns")
// to a Prometheus metric name ("herqules_verifier_send_validate_ns"): the
// herqules_ namespace prefix, with every character outside [a-zA-Z0-9_]
// folded to '_'.
func metricName(name string) string {
	var b strings.Builder
	b.Grow(len("herqules_") + len(name))
	b.WriteString("herqules_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
