// Package obs is the live observability plane for a resident HerQules
// system: a small HTTP server exposing the telemetry registry as Prometheus
// text exposition, per-PID attribution as JSON, the bounded event ring as
// JSONL, a liveness probe, and the Go runtime profiler.
//
// The paper evaluates HerQules as a resident service (one verifier process
// multiplexing every enforced application, §4); operating such a service
// requires answering "is the verifier keeping up, and for which process is
// it not?" without stopping it. The endpoints here serve exactly that: the
// send → validate latency distribution (the paper's validation-lag figure),
// per-PID syscall-gate stalls, and channel backpressure peaks, all scraped
// from live atomics without pausing any shard worker.
//
// The package sits strictly above supervisor and telemetry — nothing in the
// enforcement path imports it, and a System built without WithHTTPAddr never
// constructs it.
package obs

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"

	"herqules/internal/supervisor"
	"herqules/internal/telemetry"
)

// System is the slice of supervisor.System the observability plane reads.
// It is an interface so tests can serve synthetic stats and so obs never
// reaches into supervisor internals.
type System interface {
	// Stats returns the aggregate + per-PID snapshot (supervisor.Stats).
	Stats() supervisor.Stats
	// Health returns the liveness summary.
	Health() supervisor.Health
	// Forensics returns the kill postmortem for pid, when one exists.
	Forensics(pid int32) (supervisor.ForensicReport, bool)
	// AllForensics returns every available kill postmortem, ascending by PID.
	AllForensics() []supervisor.ForensicReport
}

// ConnRow is one live connection-plane session as reported by a
// ConnReporter: the per-connection gauges on /metrics and the /conns listing
// are rendered from these rows.
type ConnRow struct {
	PID               int32  `json:"pid"`
	Tenant            uint64 `json:"tenant"`
	Connected         bool   `json:"connected"` // transport live (false = severed, awaiting resume)
	Resumes           uint64 `json:"resumes"`
	ForwardedSeq      uint64 `json:"forwarded_seq"` // cumulative ack high-water
	QueueDepth        int    `json:"queue_depth"`   // session queue backlog
	LastRecvUnixNanos int64  `json:"last_recv_unix_nanos"`
	LeaseNanos        int64  `json:"lease_nanos"`
}

// ConnReporter is implemented by the networked attestation plane
// (internal/hqnet's Server): one row per admitted session. obs stays
// decoupled — it defines the row shape, the connection plane fills it.
type ConnReporter interface {
	// Conns returns one row per live session.
	Conns() []ConnRow
}

// Server serves the observability endpoints for one System. Construct with
// NewServer, then either mount Handler into an existing mux or call Start to
// bind and serve on a dedicated listener.
type Server struct {
	sys   System
	m     *telemetry.Metrics // may be nil: /trace then serves an empty document
	conns ConnReporter       // may be nil: no connection plane to report

	mu  sync.Mutex
	ln  net.Listener
	srv *http.Server
}

// NewServer builds a server over sys. m, when non-nil, provides the event
// ring behind /trace; the metric exposition itself reads sys.Stats(), which
// already carries the registry snapshot diffed to the system's own interval.
func NewServer(sys System, m *telemetry.Metrics) *Server {
	return &Server{sys: sys, m: m}
}

// SetConnReporter wires the connection plane into the exposition: /metrics
// gains per-connection gauges and /conns serves the row listing. Call before
// Handler/Start.
func (s *Server) SetConnReporter(r ConnReporter) { s.conns = r }

// Handler returns the endpoint mux:
//
//	/metrics          Prometheus text exposition (counters, peaks, histograms,
//	                  per-PID and per-shard series, per-policy violations)
//	/healthz          liveness JSON; 200 while up, 503 once shutdown has begun
//	/procs            per-PID attribution JSON (the Stats serialization)
//	/trace            event ring as JSONL; empty until tracing is enabled
//	/violations       kill-postmortem index (one summary per ForensicReport)
//	/violations/<pid> full ForensicReport JSON for one killed process
//	/debug/pprof/     Go runtime profiler
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/procs", s.handleProcs)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/violations", s.handleViolations)
	mux.HandleFunc("/violations/", s.handleViolation)
	mux.HandleFunc("/conns", s.handleConns)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start binds addr (host:port; ":0" picks a free port — read it back with
// Addr) and serves the Handler on a background goroutine until Close. A bind
// failure is returned synchronously so a typo'd address surfaces at startup,
// not as a silently dead endpoint.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	s.ln, s.srv = ln, srv
	s.mu.Unlock()
	go func() {
		// ErrServerClosed is the normal Close path; anything else would
		// already have surfaced to a scraper as connection failures.
		_ = srv.Serve(ln)
	}()
	return nil
}

// Addr reports the bound listen address ("" before Start).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and in-flight handlers. Safe to call without a
// prior Start, and idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.srv
	s.srv, s.ln = nil, nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	if err := srv.Close(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteMetrics(w, s.sys.Stats())
	if s.conns != nil {
		WriteConnMetrics(w, s.conns.Conns())
	}
}

// handleConns lists the connection plane's live sessions as JSON; an empty
// array when no connection plane is wired, so a fleet scraper needs no
// per-instance knowledge of which daemons serve remote sessions.
func (s *Server) handleConns(w http.ResponseWriter, _ *http.Request) {
	rows := []ConnRow{}
	if s.conns != nil {
		rows = s.conns.Conns()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rows)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := s.sys.Health()
	w.Header().Set("Content-Type", "application/json")
	// A poisoned verifier shard is permanent lost capacity — the probe
	// reports it as unhealthy (503) just like shutdown, so an orchestrator
	// replaces the instance instead of routing new launches at shards that
	// kill everything they're handed.
	if !h.Up || h.Degraded() {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(h)
}

func (s *Server) handleProcs(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The whole Stats value is the shared serialization path (its
	// MarshalJSON carries the per-PID rows); /procs is that document.
	_ = enc.Encode(s.sys.Stats())
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	var t *telemetry.Trace
	if s.m != nil {
		t = s.m.Trace()
	}
	if t == nil {
		// Tracing never enabled: an empty event document, not an error — a
		// scraper polling a fleet must not have to know which instances were
		// started with tracing.
		return
	}
	_ = t.WriteJSONL(w)
}

// violationSummary is one row of the /violations index: enough to triage and
// build the per-PID link, without shipping every report's full window.
type violationSummary struct {
	PID             int32  `json:"pid"`
	Policy          string `json:"policy,omitempty"`
	KillReason      string `json:"kill_reason"`
	Shard           int    `json:"shard"`
	Window          int    `json:"window"` // retained flight records
	FrozenUnixNanos int64  `json:"frozen_unix_nanos"`
}

func (s *Server) handleViolations(w http.ResponseWriter, _ *http.Request) {
	reports := s.sys.AllForensics()
	idx := make([]violationSummary, len(reports))
	for i, r := range reports {
		idx[i] = violationSummary{
			PID:             r.PID,
			Policy:          r.Policy,
			KillReason:      r.KillReason,
			Shard:           r.Shard,
			Window:          len(r.Window),
			FrozenUnixNanos: r.FrozenUnixNanos,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(idx)
}

func (s *Server) handleViolation(w http.ResponseWriter, r *http.Request) {
	raw := strings.TrimPrefix(r.URL.Path, "/violations/")
	pid64, err := strconv.ParseInt(raw, 10, 32)
	if err != nil || pid64 <= 0 {
		http.Error(w, "bad pid", http.StatusBadRequest)
		return
	}
	rep, ok := s.sys.Forensics(int32(pid64))
	if !ok {
		http.Error(w, "no forensic report for pid", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rep)
}
