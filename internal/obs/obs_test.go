package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"herqules/internal/compiler"
	"herqules/internal/ipc"
	"herqules/internal/mir"
	"herqules/internal/supervisor"
	"herqules/internal/telemetry"
	"herqules/internal/vm"
)

// cleanProgram builds a small HQ-instrumented program: an indirect call
// through a heap slot plus two gated syscalls, enough to exercise the
// AppendWrite channel, the verifier shard and the kernel gate.
func cleanProgram(t *testing.T) *compiler.Instrumented {
	t.Helper()
	mod := mir.NewModule("obs-prog")
	b := mir.NewBuilder(mod)
	sig := mir.FuncType(mir.I64, mir.I64)

	legit := b.Func("legit", sig, "x")
	b.Ret(b.Add(legit.Params[0], mir.ConstInt(1)))

	b.Func("main", mir.FuncType(mir.I64))
	slot := b.Cast(b.Malloc(mir.ConstInt(16)), mir.Ptr(mir.Ptr(sig)))
	b.Store(b.FuncAddr(legit), slot)
	fp := b.Load(slot)
	r := b.ICall(fp, sig, mir.ConstInt(41))
	b.Syscall(vm.SysWrite, r)
	b.Syscall(vm.SysExit, mir.ConstInt(0))
	b.Ret(mir.ConstInt(0))
	mod.Finalize()
	if err := mir.Validate(mod); err != nil {
		t.Fatal(err)
	}
	ins, err := compiler.Instrument(mod, compiler.HQSfeStk, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// sampleLine matches one exposition sample: name, optional label set, value.
var sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?\d+(?:\.\d+)?|\+Inf)$`)

// typeLine matches one `# TYPE name kind` comment.
var typeLine = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)

// checkExposition parses body as Prometheus text exposition: every
// non-comment line must match the sample grammar, every sample's metric
// family must have been declared with a `# TYPE` line, and every histogram's
// cumulative buckets must be monotone non-decreasing with the +Inf bucket
// equal to its _count. Returns the parsed samples keyed by name{labels}.
func checkExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]string) // family name -> declared type
	type bucketSeries struct {
		order []float64 // le bounds in emission order
		cum   []float64
	}
	buckets := make(map[string]*bucketSeries) // histogram series (labels minus le)
	leRe := regexp.MustCompile(`le="([^"]*)"`)

	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			if tm := typeLine.FindStringSubmatch(line); tm != nil {
				typed[tm[1]] = tm[2]
			}
			continue
		}
		// Before the first sample of a family, its `# TYPE` must have appeared.
		if name := sampleLine.FindStringSubmatch(line); name != nil {
			fam := name[1]
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if base := strings.TrimSuffix(fam, suf); base != fam && typed[base] == "histogram" {
					fam = base
					break
				}
			}
			if _, ok := typed[fam]; !ok {
				t.Errorf("sample %q has no preceding # TYPE for family %s", line, fam)
			}
		}
		mm := sampleLine.FindStringSubmatch(line)
		if mm == nil {
			t.Fatalf("malformed exposition line: %q", line)
		}
		name, labels, valStr := mm[1], mm[2], mm[3]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		samples[name+labels] = val

		if strings.HasSuffix(name, "_bucket") {
			le := leRe.FindStringSubmatch(labels)
			if le == nil {
				t.Fatalf("bucket line without le label: %q", line)
			}
			bound := float64(0)
			if le[1] == "+Inf" {
				bound = -1 // sentinel: must be last
			} else if bound, err = strconv.ParseFloat(le[1], 64); err != nil {
				t.Fatalf("unparseable le bound in %q: %v", line, err)
			}
			key := name + leRe.ReplaceAllString(labels, "")
			bs := buckets[key]
			if bs == nil {
				bs = &bucketSeries{}
				buckets[key] = bs
			}
			bs.order = append(bs.order, bound)
			bs.cum = append(bs.cum, val)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	for key, bs := range buckets {
		for i := 1; i < len(bs.cum); i++ {
			if bs.cum[i] < bs.cum[i-1] {
				t.Errorf("%s: cumulative buckets not monotone: %v", key, bs.cum)
				break
			}
		}
		if last := bs.order[len(bs.order)-1]; last != -1 {
			t.Errorf("%s: last bucket bound is %v, want +Inf", key, last)
		}
		// +Inf must equal the family's _count for the same labels.
		countKey := strings.Replace(key, "_bucket", "_count", 1)
		countKey = strings.TrimSuffix(countKey, "{}")
		if cnt, ok := samples[countKey]; ok && cnt != bs.cum[len(bs.cum)-1] {
			t.Errorf("%s: +Inf bucket %v != count %v", key, bs.cum[len(bs.cum)-1], cnt)
		}
	}
	return samples
}

// TestMetricsEndpointLiveSystem is the acceptance test: scrape /metrics
// while a multi-process System with latency sampling runs, and assert the
// send → validate histogram is populated, every launched PID has its own
// labeled series, and the whole exposition parses with monotone cumulative
// buckets.
func TestMetricsEndpointLiveSystem(t *testing.T) {
	m := telemetry.New(0)
	m.EnableTrace(1 << 12)
	sys := supervisor.New(supervisor.Config{
		Metrics: m,
		// Sample every message so even a short program lands latency samples.
		LatencySampleEvery: 1,
	})
	srv := NewServer(sys, m)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	const procs = 4
	ins := cleanProgram(t)
	pids := make([]int32, 0, procs)
	handles := make([]*supervisor.Proc, 0, procs)
	for i := 0; i < procs; i++ {
		p, err := sys.Launch(ins, supervisor.LaunchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		pids = append(pids, p.PID())
		handles = append(handles, p)
	}

	// Scrape mid-run at least once: the endpoints must be serveable while
	// shard workers are hot, not only at quiescence.
	if code, _ := get(t, base+"/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics mid-run: status %d", code)
	}

	for _, p := range handles {
		if _, err := p.Wait(); err != nil {
			t.Fatal(err)
		}
	}

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	samples := checkExposition(t, body)

	if c := samples["herqules_verifier_send_validate_ns_count"]; c <= 0 {
		t.Errorf("send_validate histogram empty: count=%v\n%s", c, body)
	}
	for _, pid := range pids {
		key := fmt.Sprintf(`herqules_proc_messages_total{pid="%d"}`, pid)
		v, ok := samples[key]
		if !ok {
			t.Errorf("no per-PID series %s", key)
		} else if v <= 0 {
			t.Errorf("%s = %v, want > 0", key, v)
		}
		stall := fmt.Sprintf(`herqules_proc_syscall_stall_ns_count{pid="%d"}`, pid)
		if _, ok := samples[stall]; !ok {
			t.Errorf("no per-PID stall histogram for pid %d", pid)
		}
	}
	if samples["herqules_procs_launched_total"] != procs {
		t.Errorf("launched_total = %v, want %d", samples["herqules_procs_launched_total"], procs)
	}

	// /healthz: up while running.
	code, hbody := get(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz: status %d body %s", code, hbody)
	}
	var h supervisor.Health
	if err := json.Unmarshal([]byte(hbody), &h); err != nil {
		t.Fatalf("/healthz: bad JSON: %v", err)
	}
	if !h.Up || h.Shards <= 0 {
		t.Errorf("healthz = %+v, want up with shards", h)
	}

	// /procs: the Stats document, with one row per launched PID.
	code, pbody := get(t, base+"/procs")
	if code != http.StatusOK {
		t.Fatalf("/procs: status %d", code)
	}
	var doc struct {
		Launched uint64 `json:"launched"`
		Procs    []struct {
			PID      int32  `json:"pid"`
			State    string `json:"state"`
			Messages uint64 `json:"messages"`
		} `json:"procs"`
	}
	if err := json.Unmarshal([]byte(pbody), &doc); err != nil {
		t.Fatalf("/procs: bad JSON: %v\n%s", err, pbody)
	}
	if len(doc.Procs) != procs {
		t.Fatalf("/procs rows = %d, want %d", len(doc.Procs), procs)
	}
	for _, row := range doc.Procs {
		if row.State != "exited" {
			t.Errorf("pid %d state %q, want exited", row.PID, row.State)
		}
		if row.Messages == 0 {
			t.Errorf("pid %d has zero validated messages", row.PID)
		}
	}

	// /trace: tracing is enabled, so JSONL with at least one event.
	code, tbody := get(t, base+"/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace: status %d", code)
	}
	if strings.TrimSpace(tbody) != "" {
		var ev map[string]any
		first := strings.SplitN(strings.TrimSpace(tbody), "\n", 2)[0]
		if err := json.Unmarshal([]byte(first), &ev); err != nil {
			t.Errorf("/trace first line not JSON: %v: %q", err, first)
		}
	}

	// pprof index should serve.
	if code, _ := get(t, base+"/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/: status %d", code)
	}

	// After shutdown, /healthz flips to 503 but /metrics still serves.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sys.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if code, _ := get(t, base+"/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("/healthz after shutdown: status %d, want 503", code)
	}
	if code, _ := get(t, base+"/metrics"); code != http.StatusOK {
		t.Errorf("/metrics after shutdown: status %d", code)
	}
}

// TestTraceEndpointDisabled: without a trace ring the endpoint serves an
// empty 200 document — a fleet scraper must not have to know which instances
// were started with tracing, and the handler must not panic on the nil ring.
func TestTraceEndpointDisabled(t *testing.T) {
	m := telemetry.New(0)
	sys := supervisor.New(supervisor.Config{Metrics: m})
	srv := NewServer(sys, m)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := get(t, "http://"+srv.Addr()+"/trace")
	if code != http.StatusOK {
		t.Errorf("/trace without ring: status %d, want 200", code)
	}
	if strings.TrimSpace(body) != "" {
		t.Errorf("/trace without ring: non-empty body %q", body)
	}

	// A server built with no Metrics at all must behave identically.
	srv2 := NewServer(degradedSystem{}, nil)
	if err := srv2.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	code, body = get(t, "http://"+srv2.Addr()+"/trace")
	if code != http.StatusOK || strings.TrimSpace(body) != "" {
		t.Errorf("/trace with nil metrics: status %d body %q, want empty 200", code, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sys.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestWriteMetricsSynthetic exercises the exposition writer against a
// hand-built Stats value: sanitized names, cumulative buckets, per-PID
// labels — without a live system.
func TestWriteMetricsSynthetic(t *testing.T) {
	var h telemetry.HistogramSnapshot
	for _, v := range []uint64{0, 1, 3, 9, 1000} {
		h.Record(v)
	}
	st := supervisor.Stats{
		Launched: 2, Active: 1, Finished: 1,
		MessagesVerified: 42,
		Procs: []supervisor.ProcStats{
			{PID: 7, State: "running", Messages: 40, Syscalls: 3, StallNs: h},
			{PID: 9, State: "killed", Messages: 2, Violations: 1, KillReason: "cfi"},
		},
		Snapshot: telemetry.Snapshot{
			Counters:   map[string]telemetry.CounterSnapshot{"ipc.sends": {Total: 42}},
			Peaks:      map[string]uint64{"ipc.pending_peak": 17},
			Histograms: map[string]telemetry.HistogramSnapshot{"verifier.send_validate_ns": h},
		},
	}
	var b strings.Builder
	WriteMetrics(&b, st)
	body := b.String()
	samples := checkExposition(t, body)

	for key, want := range map[string]float64{
		"herqules_ipc_sends_total":                      42,
		"herqules_ipc_pending_peak_peak":                17,
		"herqules_verifier_send_validate_ns_count":      5,
		"herqules_verifier_send_validate_ns_sum":        1013,
		`herqules_proc_messages_total{pid="7"}`:         40,
		`herqules_proc_messages_total{pid="9"}`:         2,
		`herqules_proc_violations_total{pid="9"}`:       1,
		`herqules_proc_state{pid="9",state="killed"}`:   1,
		`herqules_proc_syscall_stall_ns_count{pid="7"}`: 5,
		"herqules_procs_launched_total":                 2,
		"herqules_messages_verified_total":              42,
	} {
		if got := samples[key]; got != want {
			t.Errorf("%s = %v, want %v\n%s", key, got, want, body)
		}
	}

	// The zero bucket must appear with le="0" and the 1000-sample must land
	// in le="1023" cumulative 5.
	if got := samples[`herqules_verifier_send_validate_ns_bucket{le="0"}`]; got != 1 {
		t.Errorf(`le="0" bucket = %v, want 1`, got)
	}
	if got := samples[`herqules_verifier_send_validate_ns_bucket{le="1023"}`]; got != 5 {
		t.Errorf(`le="1023" bucket = %v, want 5`, got)
	}
}

// TestWriteMetricsViolationAndShardSeries: the forensics series — per-policy
// violation counters with escaped label values, and per-shard occupancy
// gauges — must render as well-formed exposition even for hostile policy
// names.
func TestWriteMetricsViolationAndShardSeries(t *testing.T) {
	st := supervisor.Stats{
		ViolationsByPolicy: map[string]uint64{
			"cfi":         3,
			`evil"name`:   1,
			"back\\slash": 2,
			"multi\nline": 4,
			"seq":         7,
		},
		Shards: []supervisor.ShardRow{
			{Shard: 0, Procs: 2, Dead: 1, QueueDepth: 5, QueueCap: 64},
			{Shard: 1, Procs: 0, QueueDepth: 0, QueueCap: 64, Poisoned: true},
		},
	}
	var b strings.Builder
	WriteMetrics(&b, st)
	body := b.String()
	samples := checkExposition(t, body)

	for key, want := range map[string]float64{
		`herqules_violations_total{policy="cfi"}`:         3,
		`herqules_violations_total{policy="seq"}`:         7,
		`herqules_violations_total{policy="evil\"name"}`:  1,
		`herqules_violations_total{policy="back\\slash"}`: 2,
		`herqules_violations_total{policy="multi\nline"}`: 4,
		`herqules_shard_queue_depth{shard="0"}`:           5,
		`herqules_shard_queue_cap{shard="1"}`:             64,
		`herqules_shard_procs{shard="0"}`:                 2,
		`herqules_shard_dead_procs{shard="0"}`:            1,
		`herqules_shard_poisoned{shard="1"}`:              1,
		`herqules_shard_poisoned{shard="0"}`:              0,
	} {
		if got := samples[key]; got != want {
			t.Errorf("%s = %v, want %v\n%s", key, got, want, body)
		}
	}
	// Raw (unescaped) quote or newline inside a label value would have failed
	// checkExposition's line grammar already; double-check the escapes landed.
	if !strings.Contains(body, `policy="evil\"name"`) {
		t.Errorf("quote not escaped in exposition:\n%s", body)
	}
	if !strings.Contains(body, `policy="multi\nline"`) {
		t.Errorf("newline not escaped in exposition:\n%s", body)
	}
}

// degradedSystem is a synthetic System whose Health reports poisoned shards.
type degradedSystem struct{ poisoned int }

func (d degradedSystem) Stats() supervisor.Stats { return supervisor.Stats{} }
func (d degradedSystem) Health() supervisor.Health {
	return supervisor.Health{Up: true, Shards: 4, PoisonedShards: d.poisoned,
		DegradedPolicy: "fail-closed"}
}
func (d degradedSystem) Forensics(pid int32) (supervisor.ForensicReport, bool) {
	return supervisor.ForensicReport{}, false
}
func (d degradedSystem) AllForensics() []supervisor.ForensicReport { return nil }

// TestHealthzReportsDegradedAs503: a poisoned verifier shard is permanent
// lost capacity — the probe must go unhealthy even though the system is
// still up, so an orchestrator replaces the instance.
func TestHealthzReportsDegradedAs503(t *testing.T) {
	srv := NewServer(degradedSystem{poisoned: 1}, nil)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := get(t, "http://"+srv.Addr()+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz with poisoned shard: status %d, want 503", code)
	}
	var h supervisor.Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if !h.Up || h.PoisonedShards != 1 || !h.Degraded() {
		t.Errorf("health document = %+v, want up-but-degraded", h)
	}

	// Zero poisoned shards: healthy.
	srv2 := NewServer(degradedSystem{poisoned: 0}, nil)
	if err := srv2.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if code, _ := get(t, "http://"+srv2.Addr()+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz healthy system: status %d, want 200", code)
	}
}

// TestViolationsEndpointsLiveSystem drives a real System with the flight
// recorder armed, provokes a CFI kill by hand-delivering a corrupted
// pointer-check message, and validates the /violations index, the per-PID
// report document, and the per-policy violation counter on /metrics.
func TestViolationsEndpointsLiveSystem(t *testing.T) {
	sys := supervisor.New(supervisor.Config{
		KillOnViolation: true,
		FlightRecorder:  64,
	})
	srv := NewServer(sys, nil)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Before any kill, the index is an empty JSON array and a lookup 404s.
	code, body := get(t, base+"/violations")
	if code != http.StatusOK {
		t.Fatalf("/violations empty: status %d", code)
	}
	var empty []map[string]any
	if err := json.Unmarshal([]byte(body), &empty); err != nil || len(empty) != 0 {
		t.Fatalf("/violations empty: want [] got %q (err %v)", body, err)
	}
	if code, _ := get(t, base+"/violations/12345"); code != http.StatusNotFound {
		t.Errorf("/violations/12345 with no report: status %d, want 404", code)
	}
	if code, _ := get(t, base+"/violations/nonsense"); code != http.StatusBadRequest {
		t.Errorf("/violations/nonsense: status %d, want 400", code)
	}

	// Synthetic violator: register a kernel context, define a code pointer,
	// then check it against a corrupted value — the cfi policy must kill.
	pid := sys.Kernel().Register()
	v := sys.Verifier()
	v.Deliver(ipc.Message{Op: ipc.OpPointerDefine, PID: pid, Arg1: 0x40, Arg2: 0x1000, Seq: 1})
	v.Deliver(ipc.Message{Op: ipc.OpPointerCheck, PID: pid, Arg1: 0x40, Arg2: 0xbad, Seq: 2})

	code, body = get(t, base+"/violations")
	if code != http.StatusOK {
		t.Fatalf("/violations: status %d", code)
	}
	var idx []struct {
		PID             int32  `json:"pid"`
		Policy          string `json:"policy"`
		KillReason      string `json:"kill_reason"`
		Window          int    `json:"window"`
		FrozenUnixNanos int64  `json:"frozen_unix_nanos"`
	}
	if err := json.Unmarshal([]byte(body), &idx); err != nil {
		t.Fatalf("/violations: bad JSON: %v\n%s", err, body)
	}
	if len(idx) != 1 || idx[0].PID != pid {
		t.Fatalf("/violations rows = %+v, want one row for pid %d", idx, pid)
	}
	if idx[0].Policy != "cfi" {
		t.Errorf("index policy = %q, want cfi", idx[0].Policy)
	}
	if idx[0].KillReason == "" || idx[0].Window == 0 || idx[0].FrozenUnixNanos == 0 {
		t.Errorf("index row incomplete: %+v", idx[0])
	}

	code, body = get(t, fmt.Sprintf("%s/violations/%d", base, pid))
	if code != http.StatusOK {
		t.Fatalf("/violations/%d: status %d", pid, code)
	}
	var rep struct {
		PID        int32  `json:"pid"`
		Policy     string `json:"policy"`
		KillReason string `json:"kill_reason"`
		State      string `json:"state"`
		Window     []struct {
			Kind string `json:"kind"`
			Code string `json:"code"`
			Op   string `json:"op,omitempty"`
		} `json:"window"`
		Decisions []struct {
			Policy string `json:"policy"`
			Fatal  bool   `json:"fatal"`
		} `json:"decisions"`
	}
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/violations/%d: bad JSON: %v\n%s", pid, err, body)
	}
	if rep.PID != pid || rep.Policy != "cfi" || rep.KillReason == "" {
		t.Errorf("report header = pid=%d policy=%q reason=%q", rep.PID, rep.Policy, rep.KillReason)
	}
	if rep.State != "killed" {
		t.Errorf("report state = %q, want killed", rep.State)
	}
	if len(rep.Window) == 0 {
		t.Errorf("report window empty:\n%s", body)
	}
	fatal := false
	for _, d := range rep.Decisions {
		if d.Fatal && d.Policy == "cfi" {
			fatal = true
		}
	}
	if !fatal {
		t.Errorf("no fatal cfi decision in trail: %+v", rep.Decisions)
	}

	// The kill must surface on /metrics as an attributed violation counter,
	// and the shard gauges must be present on a live system.
	code, body = get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	samples := checkExposition(t, body)
	if got := samples[`herqules_violations_total{policy="cfi"}`]; got != 1 {
		t.Errorf(`herqules_violations_total{policy="cfi"} = %v, want 1`, got)
	}
	foundShard := false
	for key := range samples {
		if strings.HasPrefix(key, "herqules_shard_queue_depth{") {
			foundShard = true
			break
		}
	}
	if !foundShard {
		t.Errorf("no per-shard queue depth gauges in exposition:\n%s", body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sys.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
