package mir

import (
	"fmt"
	"sort"
	"strings"
)

// Func is an MIR function.
type Func struct {
	Name   string
	Sig    *Type // KindFunc
	Params []*Param
	Blocks []*Block

	// NumValues is the number of dense instruction result slots; valid
	// after Finalize.
	NumValues int

	// Attributes consumed by instrumentation (§4.1.6): a function gets
	// return-pointer protection when it may write memory, is known to
	// return, has stack allocations, and is not always tail-called.
	AddressTaken     bool
	AlwaysTailCalled bool
	NoReturn         bool

	// Intrinsic marks runtime-provided functions with no MIR body (their
	// behaviour is implemented by the VM); Blocks is empty for them.
	Intrinsic bool
}

// NewFunc constructs a function with named parameters bound to sig.
func NewFunc(name string, sig *Type, paramNames ...string) *Func {
	if sig.Kind != KindFunc {
		panic("mir: NewFunc requires a function type")
	}
	f := &Func{Name: name, Sig: sig}
	for i, pt := range sig.Params {
		pn := fmt.Sprintf("p%d", i)
		if i < len(paramNames) {
			pn = paramNames[i]
		}
		f.Params = append(f.Params, &Param{Nm: pn, Typ: pt, Idx: i})
	}
	return f
}

// Entry returns the entry block.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// NewBlock appends a new basic block.
func (f *Func) NewBlock(name string) *Block {
	b := &Block{Name: name, Fn: f, Index: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Finalize assigns dense IDs to every instruction and reindexes blocks. It
// must be called after construction and after any pass that adds or removes
// instructions, before the function is executed or printed.
func (f *Func) Finalize() {
	id := 0
	for i, b := range f.Blocks {
		b.Index = i
		for _, in := range b.Instrs {
			in.ID = id
			id++
		}
	}
	f.NumValues = id
}

// ForEachInstr calls fn for every instruction in program order.
func (f *Func) ForEachInstr(fn func(*Block, *Instr)) {
	for _, b := range f.Blocks {
		// Copy: fn may insert instructions.
		instrs := append([]*Instr(nil), b.Instrs...)
		for _, in := range instrs {
			fn(b, in)
		}
	}
}

// HasStackAlloc reports whether the function contains any alloca.
func (f *Func) HasStackAlloc() bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpAlloca {
				return true
			}
		}
	}
	return false
}

// MayWriteMemory reports whether the function contains stores, block memory
// operations, calls (which may transitively write), or heap operations.
func (f *Func) MayWriteMemory() bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case OpStore, OpMemcpy, OpMemmove, OpMemset, OpCall, OpICall,
				OpMalloc, OpFree, OpRealloc:
				return true
			}
		}
	}
	return false
}

// Module is a translation unit: functions plus global variables.
type Module struct {
	Name    string
	Funcs   []*Func
	Globals []*Global

	funcByName map[string]*Func
}

// NewModule creates an empty module.
func NewModule(name string) *Module {
	return &Module{Name: name, funcByName: make(map[string]*Func)}
}

// AddFunc registers f; function names must be unique.
func (m *Module) AddFunc(f *Func) *Func {
	if _, dup := m.funcByName[f.Name]; dup {
		panic(fmt.Sprintf("mir: duplicate function %q", f.Name))
	}
	m.Funcs = append(m.Funcs, f)
	m.funcByName[f.Name] = f
	return f
}

// Func looks up a function by name.
func (m *Module) Func(name string) *Func { return m.funcByName[name] }

// AddGlobal registers a global variable.
func (m *Module) AddGlobal(g *Global) *Global {
	m.Globals = append(m.Globals, g)
	return g
}

// Finalize finalizes every function.
func (m *Module) Finalize() {
	for _, f := range m.Funcs {
		f.Finalize()
	}
}

// Clone produces a deep copy of the module so that instrumentation for one
// CFI design does not disturb the pristine program used by another.
func (m *Module) Clone() *Module {
	nm := NewModule(m.Name)
	gmap := make(map[*Global]*Global, len(m.Globals))
	for _, g := range m.Globals {
		ng := &Global{
			Name: g.Name, Elem: g.Elem, ReadOnly: g.ReadOnly,
			InitWords: append([]uint64(nil), g.InitWords...),
			Segment:   g.Segment,
		}
		if g.InitFuncs != nil {
			ng.InitFuncs = make(map[int]*Func, len(g.InitFuncs))
		}
		nm.AddGlobal(ng)
		gmap[g] = ng
	}
	fmap := make(map[*Func]*Func, len(m.Funcs))
	for _, f := range m.Funcs {
		nf := &Func{
			Name: f.Name, Sig: f.Sig, AddressTaken: f.AddressTaken,
			AlwaysTailCalled: f.AlwaysTailCalled, NoReturn: f.NoReturn,
			Intrinsic: f.Intrinsic,
		}
		for _, p := range f.Params {
			nf.Params = append(nf.Params, &Param{Nm: p.Nm, Typ: p.Typ, Idx: p.Idx})
		}
		nm.AddFunc(nf)
		fmap[f] = nf
	}
	// Fix up global initializer function references.
	for _, g := range m.Globals {
		for i, fn := range g.InitFuncs {
			gmap[g].InitFuncs[i] = fmap[fn]
		}
	}
	for _, f := range m.Funcs {
		cloneFuncBody(f, fmap[f], fmap, gmap)
	}
	nm.Finalize()
	return nm
}

func cloneFuncBody(src, dst *Func, fmap map[*Func]*Func, gmap map[*Global]*Global) {
	bmap := make(map[*Block]*Block, len(src.Blocks))
	imap := make(map[*Instr]*Instr)
	for _, b := range src.Blocks {
		bmap[b] = dst.NewBlock(b.Name)
	}
	mapValue := func(v Value) Value {
		switch v := v.(type) {
		case *Const:
			return v
		case *FuncRef:
			return &FuncRef{Fn: fmap[v.Fn]}
		case *Global:
			return gmap[v]
		case *Param:
			return dst.Params[v.Idx]
		case *Instr:
			ni, ok := imap[v]
			if !ok {
				panic(fmt.Sprintf("mir: clone: use of %s before definition in %s", v.Ref(), src.Name))
			}
			return ni
		default:
			panic(fmt.Sprintf("mir: clone: unknown value %T", v))
		}
	}
	// Two passes: create instructions, then fix operands (phis may refer
	// forward). First create shells in order.
	for _, b := range src.Blocks {
		nb := bmap[b]
		for _, in := range b.Instrs {
			ni := &Instr{
				Op: in.Op, Typ: in.Typ, Nm: in.Nm, Bin: in.Bin, Cmp: in.Cmp,
				FSig: in.FSig, AllocTy: in.AllocTy, Field: in.Field,
				SyscallNo: in.SyscallNo, RT: in.RT, ClassSig: in.ClassSig,
				GuardID: in.GuardID, Volatile: in.Volatile, SafeSlot: in.SafeSlot,
				Blk: nb,
			}
			if in.Callee != nil {
				ni.Callee = fmap[in.Callee]
			}
			for _, t := range in.Targets {
				ni.Targets = append(ni.Targets, bmap[t])
			}
			for _, pb := range in.PhiBlocks {
				ni.PhiBlocks = append(ni.PhiBlocks, bmap[pb])
			}
			nb.Instrs = append(nb.Instrs, ni)
			imap[in] = ni
		}
	}
	// Second pass: operands.
	for _, b := range src.Blocks {
		for _, in := range b.Instrs {
			ni := imap[in]
			for _, a := range in.Args {
				if ai, ok := a.(*Instr); ok {
					ni.Args = append(ni.Args, imap[ai])
				} else {
					ni.Args = append(ni.Args, mapValue(a))
				}
			}
		}
	}
}

// String renders the module in a readable LLVM-like syntax that
// ParseModule accepts back (a lossless round trip for everything the
// builders produce). Named struct types are declared up front; globals
// carry their segment and initializers.
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s\n", m.Name)

	// Declare every named struct type reachable from the module, in
	// name order.
	structs := map[string]*Type{}
	m.collectStructs(structs)
	var names []string
	for n := range structs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		st := structs[n]
		var fs []string
		for _, f := range st.Fields {
			fs = append(fs, f.String())
		}
		fmt.Fprintf(&sb, "type %%%s = { %s }\n", n, strings.Join(fs, ", "))
	}

	gs := append([]*Global(nil), m.Globals...)
	sort.Slice(gs, func(i, j int) bool { return gs[i].Name < gs[j].Name })
	for _, g := range gs {
		ro := ""
		if g.ReadOnly {
			ro = " readonly"
		}
		init := formatGlobalInit(g)
		fmt.Fprintf(&sb, "global @%s : %s%s [%s]%s\n", g.Name, g.Elem, ro, g.Segment, init)
	}
	for _, f := range m.Funcs {
		sb.WriteString(f.String())
	}
	return sb.String()
}

// collectStructs gathers named struct types reachable from globals,
// signatures and instruction types.
func (m *Module) collectStructs(out map[string]*Type) {
	var walk func(t *Type)
	walk = func(t *Type) {
		if t == nil {
			return
		}
		switch t.Kind {
		case KindStruct:
			if _, seen := out[t.Name]; seen {
				return
			}
			out[t.Name] = t
			for _, f := range t.Fields {
				walk(f)
			}
		case KindPtr, KindArray:
			walk(t.Elem)
		case KindFunc:
			walk(t.Ret)
			for _, p := range t.Params {
				walk(p)
			}
		}
	}
	for _, g := range m.Globals {
		walk(g.Elem)
	}
	for _, f := range m.Funcs {
		walk(f.Sig)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				walk(in.Typ)
				walk(in.AllocTy)
				walk(in.FSig)
			}
		}
	}
}

// formatGlobalInit renders a global's initializer words.
func formatGlobalInit(g *Global) string {
	words := len(g.InitWords)
	for i := range g.InitFuncs {
		if i+1 > words {
			words = i + 1
		}
	}
	if words == 0 {
		return ""
	}
	var parts []string
	for i := 0; i < words; i++ {
		if fn, ok := g.InitFuncs[i]; ok {
			parts = append(parts, "@"+fn.Name)
		} else {
			var w uint64
			if i < len(g.InitWords) {
				w = g.InitWords[i]
			}
			parts = append(parts, fmt.Sprintf("%d", w))
		}
	}
	return " init { " + strings.Join(parts, ", ") + " }"
}

// String renders the function, including the attributes instrumentation
// relies on.
func (f *Func) String() string {
	var sb strings.Builder
	var ps []string
	for _, p := range f.Params {
		ps = append(ps, fmt.Sprintf("%%%s: %s", p.Nm, p.Typ))
	}
	attrs := ""
	if f.AddressTaken {
		attrs += " addrtaken"
	}
	if f.NoReturn {
		attrs += " noreturn"
	}
	if f.AlwaysTailCalled {
		attrs += " tailcalled"
	}
	if f.Intrinsic {
		fmt.Fprintf(&sb, "\nfunc @%s(%s) -> %s%s intrinsic\n",
			f.Name, strings.Join(ps, ", "), f.Sig.Ret, attrs)
		return sb.String()
	}
	fmt.Fprintf(&sb, "\nfunc @%s(%s) -> %s%s {\n", f.Name, strings.Join(ps, ", "), f.Sig.Ret, attrs)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Name)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", in.Format())
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Format renders one instruction.
func (in *Instr) Format() string {
	var sb strings.Builder
	if in.Type() != Void {
		fmt.Fprintf(&sb, "%s = ", in.Ref())
	}
	switch in.Op {
	case OpBin:
		fmt.Fprintf(&sb, "%s %s, %s", in.Bin, in.Args[0].Ref(), in.Args[1].Ref())
	case OpCmp:
		fmt.Fprintf(&sb, "cmp.%s %s, %s", in.Cmp, in.Args[0].Ref(), in.Args[1].Ref())
	case OpCall:
		sb.WriteString("call @" + in.Callee.Name + "(" + refs(in.Args) + ")")
	case OpICall:
		fmt.Fprintf(&sb, "icall %s(%s)", in.Args[0].Ref(), refs(in.Args[1:]))
	case OpBr:
		fmt.Fprintf(&sb, "br %s", in.Targets[0])
	case OpCondBr:
		fmt.Fprintf(&sb, "condbr %s, %s, %s", in.Args[0].Ref(), in.Targets[0], in.Targets[1])
	case OpPhi:
		sb.WriteString("phi ")
		for i := range in.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "[%s, %s]", in.Args[i].Ref(), in.PhiBlocks[i])
		}
	case OpAlloca:
		op := "alloca"
		if in.SafeSlot {
			op = "alloca.safe"
		}
		fmt.Fprintf(&sb, "%s %s", op, in.AllocTy)
	case OpLoad:
		op := "load"
		if in.Volatile {
			op = "load.volatile"
		}
		fmt.Fprintf(&sb, "%s %s", op, in.Args[0].Ref())
	case OpFieldAddr:
		fmt.Fprintf(&sb, "fieldaddr %s, %d", in.Args[0].Ref(), in.Field)
	case OpSyscall:
		fmt.Fprintf(&sb, "syscall %d(%s)", in.SyscallNo, refs(in.Args))
	case OpRuntime:
		if extra := runtimeExtra(in); extra != "" {
			fmt.Fprintf(&sb, "%s[%s](%s)", in.RT, extra, refs(in.Args))
		} else {
			fmt.Fprintf(&sb, "%s(%s)", in.RT, refs(in.Args))
		}
	default:
		fmt.Fprintf(&sb, "%s %s", in.Op, refs(in.Args))
	}
	if in.Type() != Void {
		fmt.Fprintf(&sb, " : %s", in.Type())
	}
	return sb.String()
}

// runtimeExtra renders a runtime op's out-of-band parameter (syscall
// number, guard id, or type-class tag) so the textual form is lossless.
func runtimeExtra(in *Instr) string {
	switch in.RT {
	case RTSyscallSync:
		return fmt.Sprintf("%d", in.SyscallNo)
	case RTRecursionGuardEnter, RTRecursionGuardExit:
		return fmt.Sprintf("%d", in.GuardID)
	case RTClangCFICheck, RTMACStore, RTMACCheck, RTMACRetStore, RTMACRetCheck:
		return in.ClassSig
	default:
		return ""
	}
}

func refs(vs []Value) string {
	var ps []string
	for _, v := range vs {
		ps = append(ps, v.Ref())
	}
	return strings.Join(ps, ", ")
}
