package mir

import "fmt"

// Value is anything usable as an instruction operand: constants, function
// references, globals, parameters, and instruction results.
type Value interface {
	Type() *Type
	// Ref returns the short printable reference for operand positions.
	Ref() string
}

// Const is an integer or null-pointer constant.
type Const struct {
	Typ *Type
	Val uint64
}

// ConstInt returns an i64 constant.
func ConstInt(v uint64) *Const { return &Const{Typ: I64, Val: v} }

// ConstTyped returns a constant of an explicit integer or pointer type.
func ConstTyped(t *Type, v uint64) *Const { return &Const{Typ: t, Val: v} }

// Null returns the null constant of pointer type t.
func Null(t *Type) *Const { return &Const{Typ: t, Val: 0} }

// Type implements Value.
func (c *Const) Type() *Type { return c.Typ }

// Ref implements Value.
func (c *Const) Ref() string {
	if c.Typ.IsPtr() && c.Val == 0 {
		return "null"
	}
	return fmt.Sprintf("%d", c.Val)
}

// FuncRef is a reference to a function: taking a function's address yields a
// value of function-pointer type. Any function referenced by a FuncRef that
// flows into data is address-taken.
type FuncRef struct {
	Fn *Func
}

// Type implements Value.
func (f *FuncRef) Type() *Type { return Ptr(f.Fn.Sig) }

// Ref implements Value.
func (f *FuncRef) Ref() string { return "@" + f.Fn.Name }

// Global is a module-level variable. Its address is assigned by the loader;
// Init provides initial bytes (zero-filled when nil). ReadOnly globals are
// mapped without write permission, modelling read-only relocations and
// constant data (§4.1.3): control-flow pointers stored there need no
// protection.
type Global struct {
	Name     string
	Elem     *Type // the variable's type; the global's value type is Elem*
	ReadOnly bool
	// InitWords are initial 8-byte words. A word may instead be a function
	// reference, recorded in InitFuncs; these are the "global control-flow
	// pointers" that HQ's startup initializer registers with the verifier.
	InitWords []uint64
	// InitFuncs maps word index -> function whose address initializes it.
	InitFuncs map[int]*Func
	// Addr is assigned when the module is loaded into a VM.
	Addr uint64
	// Segment selects the loader segment: "data" (initialized) or "bss".
	// RIPE distinguishes overflow origins by segment (§5.2).
	Segment string
}

// Type implements Value: a global evaluates to its address.
func (g *Global) Type() *Type { return Ptr(g.Elem) }

// Ref implements Value.
func (g *Global) Ref() string { return "@" + g.Name }

// Param is a function parameter.
type Param struct {
	Nm  string
	Typ *Type
	Idx int
}

// Type implements Value.
func (p *Param) Type() *Type { return p.Typ }

// Ref implements Value.
func (p *Param) Ref() string { return "%" + p.Nm }
