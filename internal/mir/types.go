// Package mir defines a miniature SSA-form intermediate representation used
// as the substrate for the paper's compiler instrumentation (§3.2, §4.1.4).
// The real HerQules instruments LLVM IR produced from C/C++; this repository
// cannot ship a C toolchain, so workloads, RIPE-style exploit programs and
// examples are constructed directly in MIR, and every instrumentation
// decision the paper describes (where to place define/check/invalidate
// messages, dominator-based syscall-sync placement, store-to-load forwarding,
// message elision, devirtualization) is implemented as a pass over MIR in
// package compiler.
//
// MIR is deliberately LLVM-like: typed SSA values, basic blocks with explicit
// terminators, phi nodes, allocas for mutable stack storage, and block memory
// operations (memcpy/memmove/memset) that the final-lowering pass must
// instrument because they may move control-flow pointers.
package mir

import (
	"fmt"
	"strings"
)

// Kind discriminates MIR types.
type Kind int

// Type kinds.
const (
	KindVoid Kind = iota
	KindInt
	KindPtr
	KindFunc
	KindStruct
	KindArray
)

// Type describes an MIR type. Types are structural except for structs, which
// are nominal (the Name participates in identity) because type-based CFI
// designs (Clang/LLVM CFI, CCFI) build equivalence classes from nominal
// function and class types.
type Type struct {
	Kind   Kind
	Bits   int     // KindInt: width in bits (8, 16, 32, 64)
	Elem   *Type   // KindPtr: pointee; KindArray: element
	Len    int     // KindArray: element count
	Name   string  // KindStruct: nominal name
	Fields []*Type // KindStruct: field types
	Params []*Type // KindFunc: parameter types
	Ret    *Type   // KindFunc: return type
	// VTable marks compiler-generated virtual-method tables (arrays or
	// structs of function pointers that live in read-only memory).
	// Pointers to a VTable type are the "virtual method table pointers"
	// of §4.1.3 — themselves writable and protected — while loads from
	// inside the table need no protection because the table is read-only.
	VTable bool
}

// Cached primitive types.
var (
	Void = &Type{Kind: KindVoid}
	I8   = &Type{Kind: KindInt, Bits: 8}
	I16  = &Type{Kind: KindInt, Bits: 16}
	I32  = &Type{Kind: KindInt, Bits: 32}
	I64  = &Type{Kind: KindInt, Bits: 64}
)

// Ptr returns the pointer type to elem.
func Ptr(elem *Type) *Type { return &Type{Kind: KindPtr, Elem: elem} }

// FuncType returns the function type ret(params...).
func FuncType(ret *Type, params ...*Type) *Type {
	return &Type{Kind: KindFunc, Ret: ret, Params: params}
}

// StructType returns a nominal struct type.
func StructType(name string, fields ...*Type) *Type {
	return &Type{Kind: KindStruct, Name: name, Fields: fields}
}

// ArrayType returns the type of an n-element array of elem.
func ArrayType(elem *Type, n int) *Type {
	return &Type{Kind: KindArray, Elem: elem, Len: n}
}

// VTableType returns an n-slot virtual-method table holding pointers to
// functions of type sig.
func VTableType(sig *Type, n int) *Type {
	return &Type{Kind: KindArray, Elem: Ptr(sig), Len: n, VTable: true}
}

// Size returns the type's size in bytes. Struct fields are laid out in
// order, each aligned to min(its size, 8); the struct itself is padded to
// its alignment.
func (t *Type) Size() uint64 {
	switch t.Kind {
	case KindVoid:
		return 0
	case KindInt:
		return uint64(t.Bits / 8)
	case KindPtr, KindFunc:
		return 8
	case KindArray:
		return uint64(t.Len) * t.Elem.Size()
	case KindStruct:
		var off uint64
		for _, f := range t.Fields {
			off = align(off, f.Align()) + f.Size()
		}
		return align(off, t.Align())
	default:
		panic(fmt.Sprintf("mir: Size of unknown kind %d", t.Kind))
	}
}

// Align returns the type's alignment in bytes.
func (t *Type) Align() uint64 {
	switch t.Kind {
	case KindVoid:
		return 1
	case KindInt:
		return uint64(t.Bits / 8)
	case KindPtr, KindFunc:
		return 8
	case KindArray:
		return t.Elem.Align()
	case KindStruct:
		var a uint64 = 1
		for _, f := range t.Fields {
			if fa := f.Align(); fa > a {
				a = fa
			}
		}
		return a
	default:
		return 1
	}
}

// FieldOffset returns the byte offset of field i within a struct type.
func (t *Type) FieldOffset(i int) uint64 {
	if t.Kind != KindStruct || i >= len(t.Fields) {
		panic(fmt.Sprintf("mir: FieldOffset(%d) on %s", i, t))
	}
	var off uint64
	for j := 0; j <= i; j++ {
		off = align(off, t.Fields[j].Align())
		if j == i {
			return off
		}
		off += t.Fields[j].Size()
	}
	return off
}

// IsFuncPtr reports whether t is a pointer to a function — a direct
// control-flow pointer in the sense of §4.1.3.
func (t *Type) IsFuncPtr() bool {
	return t.Kind == KindPtr && t.Elem != nil && t.Elem.Kind == KindFunc
}

// IsPtr reports whether t is any pointer type.
func (t *Type) IsPtr() bool { return t.Kind == KindPtr }

// IsVTablePtr reports whether t is a pointer to a virtual-method table — an
// indirect control-flow pointer per §4.1.3.
func (t *Type) IsVTablePtr() bool {
	return t.Kind == KindPtr && t.Elem != nil && t.Elem.VTable
}

// IsCtrlPtr reports whether t is any protected control-flow pointer type:
// a direct function pointer or a vtable pointer.
func (t *Type) IsCtrlPtr() bool { return t.IsFuncPtr() || t.IsVTablePtr() }

// IsInt reports whether t is an integer type.
func (t *Type) IsInt() bool { return t.Kind == KindInt }

// ContainsFuncPtr reports whether a value of type t stored in memory may
// contain a control-flow pointer at any offset. The final-lowering pass uses
// this "strict subtype check" to elide instrumentation on block memory
// operations over types that statically cannot hold function pointers
// (§4.1.4, Final Lowering).
func (t *Type) ContainsFuncPtr() bool {
	switch t.Kind {
	case KindPtr:
		return t.IsCtrlPtr()
	case KindArray:
		return t.Elem.ContainsFuncPtr()
	case KindStruct:
		for _, f := range t.Fields {
			if f.ContainsFuncPtr() {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// Equal reports type equality: structural for all kinds except structs,
// which also compare names (nominal typing for CFI equivalence classes).
func (t *Type) Equal(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case KindVoid:
		return true
	case KindInt:
		return t.Bits == o.Bits
	case KindPtr:
		return t.Elem.Equal(o.Elem)
	case KindArray:
		return t.Len == o.Len && t.Elem.Equal(o.Elem)
	case KindStruct:
		if t.Name != o.Name || len(t.Fields) != len(o.Fields) {
			return false
		}
		for i := range t.Fields {
			if !t.Fields[i].Equal(o.Fields[i]) {
				return false
			}
		}
		return true
	case KindFunc:
		if !t.Ret.Equal(o.Ret) || len(t.Params) != len(o.Params) {
			return false
		}
		for i := range t.Params {
			if !t.Params[i].Equal(o.Params[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Signature returns a canonical string for a function type, used by
// type-based CFI designs as the equivalence-class key. Two function pointers
// are in the same Clang/LLVM-CFI class iff their Signatures match — which is
// exactly why decayed or casted pointers produce false positives (§5.1).
func (t *Type) Signature() string {
	if t.Kind == KindPtr && t.Elem.Kind == KindFunc {
		t = t.Elem
	}
	if t.Kind != KindFunc {
		return t.String()
	}
	var sb strings.Builder
	sb.WriteString(t.Ret.String())
	sb.WriteByte('(')
	for i, p := range t.Params {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case KindVoid:
		return "void"
	case KindInt:
		return fmt.Sprintf("i%d", t.Bits)
	case KindPtr:
		return t.Elem.String() + "*"
	case KindArray:
		if t.VTable {
			return fmt.Sprintf("vtable[%d x %s]", t.Len, t.Elem)
		}
		return fmt.Sprintf("[%d x %s]", t.Len, t.Elem)
	case KindStruct:
		return "%" + t.Name
	case KindFunc:
		return t.Signature()
	default:
		return fmt.Sprintf("type(%d)", t.Kind)
	}
}

func align(off, a uint64) uint64 {
	if a == 0 {
		return off
	}
	return (off + a - 1) &^ (a - 1)
}
