package mir

import (
	"strings"
	"testing"
)

// roundTrip asserts print→parse→print is a fixed point.
func roundTrip(t *testing.T, mod *Module) *Module {
	t.Helper()
	text := mod.String()
	parsed, err := ParseModule(text)
	if err != nil {
		t.Fatalf("ParseModule: %v\n--- input ---\n%s", err, text)
	}
	if got := parsed.String(); got != text {
		t.Fatalf("round trip not a fixed point:\n--- original ---\n%s\n--- reparsed ---\n%s", text, got)
	}
	return parsed
}

func TestParseHandWritten(t *testing.T) {
	src := `module hello
global @counter : i64 [data] init { 41 }

func @bump(%x: i64) -> i64 {
entry:
  %v = add %x, 1 : i64
  ret %v
}

func @main() -> i64 {
entry:
  %c = load @counter : i64
  %r = call @bump(%c) : i64
  store %r, @counter
  ret %r
}
`
	mod, err := ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	if mod.Name != "hello" {
		t.Errorf("module name %q", mod.Name)
	}
	if mod.Func("bump") == nil || mod.Func("main") == nil {
		t.Fatal("functions missing")
	}
	if len(mod.Globals) != 1 || mod.Globals[0].InitWords[0] != 41 {
		t.Errorf("global init wrong: %+v", mod.Globals[0])
	}
	roundTrip(t, mod)
}

func TestParseRoundTripLoop(t *testing.T) {
	mod, _ := buildLoop(t) // the Figure 2 loop with phis and an icall
	parsed := roundTrip(t, mod)
	// Structural checks on the reparsed module.
	f := parsed.Func("count_sorted")
	if f == nil {
		t.Fatal("count_sorted missing")
	}
	if len(f.Blocks) != 4 {
		t.Errorf("blocks = %d", len(f.Blocks))
	}
	if !parsed.Func("less").AddressTaken {
		t.Error("address-taken attribute lost")
	}
}

func TestParseRoundTripAllInstructionKinds(t *testing.T) {
	mod := NewModule("kinds")
	b := NewBuilder(mod)
	sig := FuncType(I64, I64)
	pair := StructType("pair", I64, Ptr(sig))
	vt := VTableType(sig, 2)

	callee := b.Func("callee", sig, "x")
	b.Ret(callee.Params[0])

	intr := NewFunc("libm.sqrt", FuncType(I64, I64), "x")
	intr.Intrinsic = true
	mod.AddFunc(intr)

	g := b.Global("vt", vt, "data")
	g.ReadOnly = true
	g.InitFuncs[0] = callee
	g.InitFuncs[1] = callee

	f := b.Func("main", FuncType(I64, I64), "n")
	s := b.Alloca("s", pair)
	safe := b.Alloca("safeint", I64)
	safe.SafeSlot = true
	arr := b.Alloca("arr", ArrayType(I8, 32))
	fa := b.FieldAddr(s, 1)
	b.Store(b.FuncAddr(callee), fa)
	fp := b.VolatileLoad(fa)
	r := b.ICall(fp, sig, f.Params[0])
	hp := b.Malloc(ConstInt(64))
	hp2 := b.Realloc(hp, ConstInt(128))
	b.Memcpy(b.Cast(arr, Ptr(I8)), hp2, ConstInt(16))
	b.Memmove(hp2, hp2, ConstInt(8))
	b.Memset(hp2, ConstInt(0), ConstInt(8))
	b.Free(hp2)
	sq := b.Call(intr, r)
	cmp := b.Cmp(CmpGe, sq, ConstInt(2))
	then := b.Block("then")
	done := b.Block("done")
	b.CondBr(cmp, then, done)
	b.SetBlock(then)
	sync := b.Runtime(RTSyscallSync)
	sync.SyscallNo = 60
	b.Syscall(60, ConstInt(0))
	chk := b.Runtime(RTClangCFICheck, fp)
	chk.ClassSig = sig.Signature()
	ge := b.Runtime(RTRecursionGuardEnter)
	ge.GuardID = 7
	get := b.Runtime(RTSafeStoreGet, fa)
	get.Typ = Ptr(sig)
	b.Br(done)
	b.SetBlock(done)
	entryBlock := f.Blocks[0]
	ph := b.Phi(I64, r, entryBlock, sq, then)
	b.Store(ConstInt(5), safe)
	b.Ret(b.Bin(BinXor, ph, b.Load(safe)))
	mod.Finalize()
	_ = get
	if err := Validate(mod); err != nil {
		t.Fatal(err)
	}

	parsed := roundTrip(t, mod)

	// Spot-check lossless attributes.
	var foundSafe, foundVolatile, foundSync, foundGuard, foundClass bool
	for _, fn := range parsed.Funcs {
		for _, blk := range fn.Blocks {
			for _, in := range blk.Instrs {
				if in.Op == OpAlloca && in.SafeSlot {
					foundSafe = true
				}
				if in.Op == OpLoad && in.Volatile {
					foundVolatile = true
				}
				if in.RT == RTSyscallSync && in.SyscallNo == 60 {
					foundSync = true
				}
				if in.RT == RTRecursionGuardEnter && in.GuardID == 7 {
					foundGuard = true
				}
				if in.RT == RTClangCFICheck && in.ClassSig == sig.Signature() {
					foundClass = true
				}
			}
		}
	}
	if !foundSafe || !foundVolatile || !foundSync || !foundGuard || !foundClass {
		t.Errorf("lossy attributes: safe=%t volatile=%t sync=%t guard=%t class=%t",
			foundSafe, foundVolatile, foundSync, foundGuard, foundClass)
	}
	if !parsed.Func("libm.sqrt").Intrinsic {
		t.Error("intrinsic attribute lost")
	}
	vtG := parsed.Globals[0]
	if !vtG.Elem.VTable || !vtG.ReadOnly || vtG.InitFuncs[1] != parsed.Func("callee") {
		t.Error("vtable global lost fidelity")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no module":        "func @f() -> void {\nentry:\n  ret\n}\n",
		"bad type":         "module m\nfunc @f() -> wat {\nentry:\n  ret\n}\n",
		"undefined value":  "module m\nfunc @f() -> i64 {\nentry:\n  ret %nope\n}\n",
		"unknown instr":    "module m\nfunc @f() -> void {\nentry:\n  frobnicate 1\n}\n",
		"unknown callee":   "module m\nfunc @f() -> void {\nentry:\n  call @ghost()\n  ret\n}\n",
		"unknown block":    "module m\nfunc @f() -> void {\nentry:\n  br nowhere\n}\n",
		"dup def":          "module m\nfunc @f() -> void {\nentry:\n  %a = add 1, 2 : i64\n  %a = add 1, 2 : i64\n  ret\n}\n",
		"instr before blk": "module m\nfunc @f() -> void {\n  ret\n}\n",
	}
	for name, src := range cases {
		if _, err := ParseModule(src); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

func TestParsedProgramExecutesIdentically(t *testing.T) {
	// The ultimate fidelity check lives in the workload round-trip test;
	// here, confirm a parsed module is structurally identical enough for
	// printing stability across a second cycle.
	mod, _ := buildLoop(t)
	once := roundTrip(t, mod)
	roundTrip(t, once)
}

func TestParseRejectsBadRuntimeExtras(t *testing.T) {
	src := "module m\nfunc @f() -> void {\nentry:\n  hq.syscall_sync[xyz]()\n  ret\n}\n"
	if _, err := ParseModule(src); err == nil || !strings.Contains(err.Error(), "syscall-sync") {
		t.Errorf("bad extra accepted: %v", err)
	}
}
