package mir

import (
	"errors"
	"fmt"
)

// ErrInvalidIR is wrapped by all validation failures.
var ErrInvalidIR = errors.New("mir: invalid IR")

// Validate checks structural well-formedness of every function in the
// module: exactly one terminator per block (at the end), phis only at block
// heads with one entry per predecessor, operands defined somewhere in the
// same function, branch targets within the function, and call-site arity
// matching the callee signature. It is run by tests after construction and
// after every instrumentation pass, so a buggy pass cannot silently produce
// garbage that the interpreter would misexecute.
func Validate(m *Module) error {
	for _, f := range m.Funcs {
		if err := validateFunc(f); err != nil {
			return fmt.Errorf("%w: func @%s: %v", ErrInvalidIR, f.Name, err)
		}
	}
	return nil
}

func validateFunc(f *Func) error {
	if f.Intrinsic {
		if len(f.Blocks) != 0 {
			return fmt.Errorf("intrinsic function has a body")
		}
		return nil
	}
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	defined := make(map[*Instr]bool)
	blockSet := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		blockSet[b] = true
		for _, in := range b.Instrs {
			defined[in] = true
		}
	}
	preds := predecessors(f)
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block %s: empty", b)
		}
		for i, in := range b.Instrs {
			isLast := i == len(b.Instrs)-1
			if in.IsTerminator() != isLast {
				return fmt.Errorf("block %s: terminator misplaced at %d (%s)", b, i, in.Op)
			}
			if in.Op == OpPhi {
				if i > 0 && b.Instrs[i-1].Op != OpPhi {
					return fmt.Errorf("block %s: phi not at head", b)
				}
				if len(in.Args) != len(in.PhiBlocks) {
					return fmt.Errorf("block %s: phi arg/block mismatch", b)
				}
				if len(in.Args) != len(preds[b]) {
					return fmt.Errorf("block %s: phi has %d entries, block has %d preds",
						b, len(in.Args), len(preds[b]))
				}
				for _, pb := range in.PhiBlocks {
					if !containsBlock(preds[b], pb) {
						return fmt.Errorf("block %s: phi names non-predecessor %s", b, pb)
					}
				}
			}
			for ai, a := range in.Args {
				if a == nil {
					return fmt.Errorf("block %s: %s arg %d is nil", b, in.Op, ai)
				}
				switch v := a.(type) {
				case *Instr:
					if !defined[v] {
						return fmt.Errorf("block %s: %s uses foreign instruction %s", b, in.Op, v.Ref())
					}
				case *Param:
					if v.Idx >= len(f.Params) || f.Params[v.Idx] != v {
						return fmt.Errorf("block %s: %s uses foreign parameter %s", b, in.Op, v.Ref())
					}
				}
			}
			for _, t := range in.Targets {
				if !blockSet[t] {
					return fmt.Errorf("block %s: branch to foreign block %s", b, t)
				}
			}
			if err := validateInstr(in); err != nil {
				return fmt.Errorf("block %s: %v", b, err)
			}
		}
	}
	return nil
}

func validateInstr(in *Instr) error {
	wantArgs := func(n int) error {
		if len(in.Args) != n {
			return fmt.Errorf("%s: %d args, want %d", in.Op, len(in.Args), n)
		}
		return nil
	}
	switch in.Op {
	case OpAlloca:
		if in.AllocTy == nil {
			return fmt.Errorf("alloca without type")
		}
		return wantArgs(0)
	case OpLoad:
		if err := wantArgs(1); err != nil {
			return err
		}
		if !in.Args[0].Type().IsPtr() {
			return fmt.Errorf("load from non-pointer %s", in.Args[0].Type())
		}
	case OpStore:
		if err := wantArgs(2); err != nil {
			return err
		}
		if !in.Args[1].Type().IsPtr() {
			return fmt.Errorf("store to non-pointer %s", in.Args[1].Type())
		}
	case OpFieldAddr:
		if err := wantArgs(1); err != nil {
			return err
		}
		pt := in.Args[0].Type()
		if !pt.IsPtr() || pt.Elem.Kind != KindStruct || in.Field >= len(pt.Elem.Fields) {
			return fmt.Errorf("fieldaddr %d of %s", in.Field, pt)
		}
	case OpIndexAddr:
		return wantArgs(2)
	case OpBin, OpCmp:
		return wantArgs(2)
	case OpCast:
		if in.Typ == nil {
			return fmt.Errorf("cast without result type")
		}
		return wantArgs(1)
	case OpCall:
		if in.Callee == nil {
			return fmt.Errorf("call without callee")
		}
		if len(in.Args) != len(in.Callee.Sig.Params) {
			return fmt.Errorf("call @%s: %d args, want %d",
				in.Callee.Name, len(in.Args), len(in.Callee.Sig.Params))
		}
	case OpICall:
		if in.FSig == nil || in.FSig.Kind != KindFunc {
			return fmt.Errorf("icall without function signature")
		}
		if len(in.Args) == 0 {
			return fmt.Errorf("icall without target")
		}
		if len(in.Args)-1 != len(in.FSig.Params) {
			return fmt.Errorf("icall: %d args, want %d", len(in.Args)-1, len(in.FSig.Params))
		}
	case OpRet:
		if len(in.Args) > 1 {
			return fmt.Errorf("ret with %d values", len(in.Args))
		}
	case OpBr:
		if len(in.Targets) != 1 {
			return fmt.Errorf("br with %d targets", len(in.Targets))
		}
	case OpCondBr:
		if len(in.Targets) != 2 {
			return fmt.Errorf("condbr with %d targets", len(in.Targets))
		}
		return wantArgs(1)
	case OpMalloc:
		return wantArgs(1)
	case OpFree:
		return wantArgs(1)
	case OpRealloc:
		return wantArgs(2)
	case OpMemcpy, OpMemmove, OpMemset:
		return wantArgs(3)
	case OpSyscall:
		// any arity
	case OpRuntime:
		if in.RT == RTNone {
			return fmt.Errorf("runtime op without RT")
		}
	case OpPhi:
		// checked by validateFunc
	default:
		return fmt.Errorf("unknown opcode %d", in.Op)
	}
	return nil
}

// predecessors computes the predecessor lists for every block of f.
func predecessors(f *Func) map[*Block][]*Block {
	preds := make(map[*Block][]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}

func containsBlock(bs []*Block, b *Block) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}
