package mir

import (
	"strconv"
	"strings"
)

// Reverse lookup tables built from the printer's name tables.
var (
	binByName = func() map[string]BinKind {
		m := map[string]BinKind{}
		for k, n := range binNames {
			m[n] = BinKind(k)
		}
		return m
	}()
	cmpByName = func() map[string]CmpKind {
		m := map[string]CmpKind{}
		for k, n := range cmpNames {
			m[n] = CmpKind(k)
		}
		return m
	}()
	runtimeByName = func() map[string]RuntimeOp {
		m := map[string]RuntimeOp{}
		for op, n := range runtimeNames {
			m[n] = op
		}
		return m
	}()
)

// parseInstr parses one instruction line. Operand references are deferred
// through pending/pendingBlocks so forward references (phis, loops) resolve
// after the whole body is read. It returns the instruction and the result
// name ("" when the instruction has no result).
func (p *parser) parseInstr(line string, f *Func,
	pending *[]pendingOperand,
	pendingBlocks *[]struct {
		in   *Instr
		idx  int
		name string
		phi  bool
	}) (*Instr, string, error) {

	resName := ""
	if strings.HasPrefix(line, "%") {
		eq := strings.Index(line, " = ")
		if eq < 0 {
			return nil, "", p.errf("malformed result assignment")
		}
		resName = line[:eq]
		line = line[eq+3:]
	}

	// Split a trailing result-type annotation " : T" at top level.
	body, typStr := splitTypeAnnotation(line)
	in := &Instr{}
	if resName != "" {
		in.Nm = strings.TrimPrefix(resName, "%")
	}
	if typStr != "" {
		t, err := p.parseType(typStr)
		if err != nil {
			return nil, "", err
		}
		in.Typ = t
	}

	defer3 := func(idx int, ref string) {
		*pending = append(*pending, pendingOperand{in: in, idx: idx, ref: strings.TrimSpace(ref)})
	}
	deferAll := func(refs []string) {
		for i, r := range refs {
			defer3(i, r)
		}
	}
	op, rest := splitWord(body)
	binKind, isBin := binByName[op]
	cmpKind, isCmp := cmpByName[strings.TrimPrefix(op, "cmp.")]
	isCmp = isCmp && strings.HasPrefix(op, "cmp.")

	switch {
	case isBin:
		in.Op = OpBin
		in.Bin = binKind
		deferAll(splitTop(rest))

	case isCmp:
		in.Op = OpCmp
		in.Cmp = cmpKind
		deferAll(splitTop(rest))

	case op == "cast":
		in.Op = OpCast
		defer3(0, rest)

	case op == "call":
		in.Op = OpCall
		if !strings.HasPrefix(rest, "@") {
			return nil, "", p.errf("call needs a function name")
		}
		open := strings.Index(rest, "(")
		callee := p.mod.Func(rest[1:open])
		if callee == nil {
			return nil, "", p.errf("unknown function %s", rest[:open])
		}
		in.Callee = callee
		in.Typ = callee.Sig.Ret
		deferAll(argList(rest[open:]))

	case op == "icall":
		in.Op = OpICall
		open := strings.Index(rest, "(")
		if open < 0 {
			return nil, "", p.errf("icall needs arguments")
		}
		defer3(0, rest[:open])
		for i, a := range argList(rest[open:]) {
			defer3(i+1, a)
		}
		// FSig is reconstructed after operand resolution (finishICalls).
		if in.Typ == nil {
			in.Typ = Void
		}

	case op == "ret":
		in.Op = OpRet
		if strings.TrimSpace(rest) != "" {
			defer3(0, rest)
		}

	case op == "br":
		in.Op = OpBr
		*pendingBlocks = append(*pendingBlocks, struct {
			in   *Instr
			idx  int
			name string
			phi  bool
		}{in, 0, strings.TrimSpace(rest), false})

	case op == "condbr":
		in.Op = OpCondBr
		parts := splitTop(rest)
		if len(parts) != 3 {
			return nil, "", p.errf("condbr needs cond and two targets")
		}
		defer3(0, parts[0])
		for i, t := range parts[1:] {
			*pendingBlocks = append(*pendingBlocks, struct {
				in   *Instr
				idx  int
				name string
				phi  bool
			}{in, i, strings.TrimSpace(t), false})
		}

	case op == "phi":
		in.Op = OpPhi
		for i, pair := range splitTop(rest) {
			pair = strings.TrimSpace(pair)
			if !strings.HasPrefix(pair, "[") || !strings.HasSuffix(pair, "]") {
				return nil, "", p.errf("phi entry %q must be [value, block]", pair)
			}
			inner := splitTop(pair[1 : len(pair)-1])
			if len(inner) != 2 {
				return nil, "", p.errf("phi entry %q malformed", pair)
			}
			defer3(i, inner[0])
			*pendingBlocks = append(*pendingBlocks, struct {
				in   *Instr
				idx  int
				name string
				phi  bool
			}{in, i, strings.TrimSpace(inner[1]), true})
		}

	case op == "alloca" || op == "alloca.safe":
		in.Op = OpAlloca
		in.SafeSlot = op == "alloca.safe"
		t, err := p.parseType(strings.TrimSpace(rest))
		if err != nil {
			return nil, "", err
		}
		in.AllocTy = t
		in.Typ = Ptr(t)

	case op == "load" || op == "load.volatile":
		in.Op = OpLoad
		in.Volatile = op == "load.volatile"
		defer3(0, rest)

	case op == "store":
		in.Op = OpStore
		deferAll(splitTop(rest))

	case op == "fieldaddr":
		in.Op = OpFieldAddr
		parts := splitTop(rest)
		if len(parts) != 2 {
			return nil, "", p.errf("fieldaddr needs pointer and index")
		}
		defer3(0, parts[0])
		n, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, "", p.errf("fieldaddr index %q", parts[1])
		}
		in.Field = n

	case op == "indexaddr":
		in.Op = OpIndexAddr
		deferAll(splitTop(rest))

	case op == "malloc":
		in.Op = OpMalloc
		defer3(0, rest)
	case op == "free":
		in.Op = OpFree
		defer3(0, rest)
	case op == "realloc":
		in.Op = OpRealloc
		deferAll(splitTop(rest))
	case op == "memcpy":
		in.Op = OpMemcpy
		deferAll(splitTop(rest))
	case op == "memmove":
		in.Op = OpMemmove
		deferAll(splitTop(rest))
	case op == "memset":
		in.Op = OpMemset
		deferAll(splitTop(rest))

	case strings.HasPrefix(op, "syscall"):
		in.Op = OpSyscall
		// form: syscall N(args)
		open := strings.Index(body, "(")
		if open < 0 {
			return nil, "", p.errf("syscall needs parentheses")
		}
		numStr := strings.TrimSpace(strings.TrimPrefix(body[:open], "syscall"))
		n, err := strconv.Atoi(numStr)
		if err != nil {
			return nil, "", p.errf("syscall number %q", numStr)
		}
		in.SyscallNo = n
		in.Typ = I64
		deferAll(argList(body[open:]))

	default:
		// Runtime ops: name[extra](args). The extra may itself contain
		// parentheses (type signatures), so find the argument paren at
		// square-bracket depth zero.
		var rtName, extra string
		open := -1
		brDepth := 0
		for i := 0; i < len(body); i++ {
			switch body[i] {
			case '[':
				brDepth++
			case ']':
				brDepth--
			case '(':
				if brDepth == 0 {
					open = i
				}
			}
			if open >= 0 {
				break
			}
		}
		if open < 0 {
			return nil, "", p.errf("unknown instruction %q", op)
		}
		head := body[:open]
		if br := strings.Index(head, "["); br >= 0 {
			rtName = head[:br]
			end := strings.LastIndex(head, "]")
			if end < br {
				return nil, "", p.errf("unbalanced runtime extra in %q", head)
			}
			extra = head[br+1 : end]
		} else {
			rtName = head
		}
		rt, ok := runtimeByName[strings.TrimSpace(rtName)]
		if !ok {
			return nil, "", p.errf("unknown instruction %q", rtName)
		}
		in.Op = OpRuntime
		in.RT = rt
		switch rt {
		case RTSyscallSync:
			n, err := strconv.Atoi(extra)
			if err != nil {
				return nil, "", p.errf("syscall-sync number %q", extra)
			}
			in.SyscallNo = n
		case RTRecursionGuardEnter, RTRecursionGuardExit:
			n, err := strconv.Atoi(extra)
			if err != nil {
				return nil, "", p.errf("guard id %q", extra)
			}
			in.GuardID = n
		case RTClangCFICheck, RTMACStore, RTMACCheck, RTMACRetStore, RTMACRetCheck:
			in.ClassSig = extra
		}
		deferAll(argList(body[open:]))
	}

	if in.Op == OpInvalid {
		return nil, "", p.errf("unknown instruction %q", op)
	}
	if in.Typ == nil {
		in.Typ = Void
	}
	return in, resName, nil
}

// finishICalls reconstructs the static signature of indirect calls from the
// resolved operand types (the same information the printer had).
func finishICalls(m *Module) {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != OpICall {
					continue
				}
				var params []*Type
				for _, a := range in.Args[1:] {
					params = append(params, a.Type())
				}
				in.FSig = FuncType(in.Type(), params...)
			}
		}
	}
}

// parseType parses a type string: void, iN, %struct, [N x T], vtable[N x T],
// ret(params) function types, with trailing '*' pointers.
func (p *parser) parseType(s string) (*Type, error) {
	s = strings.TrimSpace(s)
	// Count and strip trailing pointer stars that belong to the whole
	// type (i.e. at depth zero).
	stars := 0
	for strings.HasSuffix(s, "*") {
		s = s[:len(s)-1]
		stars++
	}
	t, err := p.parseBaseType(s)
	if err != nil {
		return nil, err
	}
	for i := 0; i < stars; i++ {
		t = Ptr(t)
	}
	return t, nil
}

func (p *parser) parseBaseType(s string) (*Type, error) {
	s = strings.TrimSpace(s)
	switch s {
	case "void":
		return Void, nil
	case "i8":
		return I8, nil
	case "i16":
		return I16, nil
	case "i32":
		return I32, nil
	case "i64":
		return I64, nil
	}
	if strings.HasPrefix(s, "%") {
		st, ok := p.structs[s[1:]]
		if !ok {
			return nil, p.errf("unknown struct type %s", s)
		}
		return st, nil
	}
	if strings.HasPrefix(s, "[") || strings.HasPrefix(s, "vtable[") {
		vt := strings.HasPrefix(s, "vtable[")
		inner := s[strings.Index(s, "[")+1:]
		if !strings.HasSuffix(inner, "]") {
			return nil, p.errf("unbalanced array type %q", s)
		}
		inner = inner[:len(inner)-1]
		x := strings.Index(inner, " x ")
		if x < 0 {
			return nil, p.errf("array type %q needs 'N x T'", s)
		}
		n, err := strconv.Atoi(strings.TrimSpace(inner[:x]))
		if err != nil {
			return nil, p.errf("array length %q", inner[:x])
		}
		elem, err := p.parseType(inner[x+3:])
		if err != nil {
			return nil, err
		}
		at := ArrayType(elem, n)
		at.VTable = vt
		return at, nil
	}
	// Function type: ret(params). Find the top-level '('.
	if open := topLevelParen(s); open >= 0 {
		ret, err := p.parseType(s[:open])
		if err != nil {
			return nil, err
		}
		close := matchParen(s, open)
		if close != len(s)-1 {
			return nil, p.errf("malformed function type %q", s)
		}
		var params []*Type
		inner := strings.TrimSpace(s[open+1 : close])
		if inner != "" {
			for _, ps := range splitTop(inner) {
				pt, err := p.parseType(ps)
				if err != nil {
					return nil, err
				}
				params = append(params, pt)
			}
		}
		return FuncType(ret, params...), nil
	}
	return nil, p.errf("unknown type %q", s)
}

// --- small text helpers ---

// splitWord splits the first whitespace-delimited word off s.
func splitWord(s string) (string, string) {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, ' '); i >= 0 {
		return s[:i], strings.TrimSpace(s[i+1:])
	}
	return s, ""
}

// splitTop splits s on top-level commas (ignoring commas inside (), [], {}).
func splitTop(s string) []string {
	var out []string
	depth := 0
	last := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', '[', '{':
			depth++
		case ')', ']', '}':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[last:i]))
				last = i + 1
			}
		}
	}
	if strings.TrimSpace(s[last:]) != "" {
		out = append(out, strings.TrimSpace(s[last:]))
	}
	return out
}

// argList parses "(a, b, c)" into its comma-separated elements.
func argList(s string) []string {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "(") {
		return nil
	}
	close := matchParen(s, 0)
	if close < 0 {
		return nil
	}
	inner := strings.TrimSpace(s[1:close])
	if inner == "" {
		return nil
	}
	return splitTop(inner)
}

// matchParen returns the index of the ')' matching the '(' at open.
func matchParen(s string, open int) int {
	depth := 0
	for i := open; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				return i
			}
		}
	}
	return -1
}

// topLevelParen returns the index of the first '(' at bracket depth zero
// that is not at position 0 (a function type has a return type before it).
func topLevelParen(s string) int {
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case '(':
			if depth == 0 && i > 0 {
				return i
			}
			if depth == 0 && i == 0 {
				return -1
			}
		}
	}
	return -1
}

// splitTypeAnnotation splits "body : T" at the first top-level " : "
// scanning from the right.
func splitTypeAnnotation(line string) (string, string) {
	depth := 0
	for i := len(line) - 1; i >= 2; i-- {
		switch line[i] {
		case ')', ']', '}':
			depth++
		case '(', '[', '{':
			depth--
		case ':':
			if depth == 0 && line[i-1] == ' ' && i+1 < len(line) && line[i+1] == ' ' {
				return strings.TrimSpace(line[:i-1]), strings.TrimSpace(line[i+2:])
			}
		}
	}
	return strings.TrimSpace(line), ""
}
