package mir

import "fmt"

// Opcode enumerates MIR instructions.
type Opcode int

// Instruction opcodes.
const (
	OpInvalid Opcode = iota

	// Memory.
	OpAlloca    // result = stack slot of AllocTy (one per call frame)
	OpLoad      // result = *Args[0]
	OpStore     // *Args[1] = Args[0]
	OpFieldAddr // result = &Args[0]->field[Field]
	OpIndexAddr // result = &Args[0][Args[1]] (element type = pointee)

	// Arithmetic and comparison.
	OpBin  // result = Args[0] <BinKind> Args[1]
	OpCmp  // result = Args[0] <CmpKind> Args[1] ? 1 : 0
	OpCast // result = Args[0] reinterpreted as Typ (ptr<->int, ptr->ptr)

	// Control flow.
	OpCall   // direct call of Callee(Args...)
	OpICall  // indirect call through Args[0] with Args[1:]...
	OpRet    // return Args[0] (or void)
	OpBr     // unconditional branch to Targets[0]
	OpCondBr // branch on Args[0] != 0 to Targets[0] else Targets[1]
	OpPhi    // SSA phi: value Args[i] when arriving from PhiBlocks[i]

	// Heap and block memory library operations (instrumented by the
	// final-lowering pass, §4.1.4).
	OpMalloc  // result = malloc(Args[0])
	OpFree    // free(Args[0])
	OpRealloc // result = realloc(Args[0], Args[1])
	OpMemcpy  // memcpy(Args[0]=dst, Args[1]=src, Args[2]=n)
	OpMemmove // memmove(dst, src, n)
	OpMemset  // memset(Args[0]=dst, Args[1]=byte, Args[2]=n)

	// OpSyscall performs system call SyscallNo with Args; under HerQules
	// the kernel pauses it until the verifier confirms no policy check has
	// failed (§2.2).
	OpSyscall

	// OpRuntime is a runtime-library call inserted by instrumentation
	// passes; RT selects the operation. These are never present in
	// source programs.
	OpRuntime

	numOpcodes
)

var opcodeNames = [...]string{
	OpInvalid:   "invalid",
	OpAlloca:    "alloca",
	OpLoad:      "load",
	OpStore:     "store",
	OpFieldAddr: "fieldaddr",
	OpIndexAddr: "indexaddr",
	OpBin:       "bin",
	OpCmp:       "cmp",
	OpCast:      "cast",
	OpCall:      "call",
	OpICall:     "icall",
	OpRet:       "ret",
	OpBr:        "br",
	OpCondBr:    "condbr",
	OpPhi:       "phi",
	OpMalloc:    "malloc",
	OpFree:      "free",
	OpRealloc:   "realloc",
	OpMemcpy:    "memcpy",
	OpMemmove:   "memmove",
	OpMemset:    "memset",
	OpSyscall:   "syscall",
	OpRuntime:   "runtime",
}

func (o Opcode) String() string {
	if int(o) < len(opcodeNames) {
		return opcodeNames[o]
	}
	return fmt.Sprintf("opcode(%d)", int(o))
}

// BinKind selects an OpBin operation.
type BinKind int

// Binary operations.
const (
	BinAdd BinKind = iota
	BinSub
	BinMul
	BinDiv
	BinRem
	BinAnd
	BinOr
	BinXor
	BinShl
	BinShr
)

var binNames = [...]string{"add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr"}

func (b BinKind) String() string {
	if int(b) < len(binNames) {
		return binNames[b]
	}
	return fmt.Sprintf("bin(%d)", int(b))
}

// CmpKind selects an OpCmp predicate (unsigned comparisons).
type CmpKind int

// Comparison predicates.
const (
	CmpEq CmpKind = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

var cmpNames = [...]string{"eq", "ne", "lt", "le", "gt", "ge"}

func (c CmpKind) String() string {
	if int(c) < len(cmpNames) {
		return cmpNames[c]
	}
	return fmt.Sprintf("cmp(%d)", int(c))
}

// RuntimeOp identifies a runtime-library call inserted by an instrumentation
// pass. HQ ops become AppendWrite messages; the others model the in-process
// runtime behaviour of the baseline CFI designs the paper compares against.
type RuntimeOp int

// Runtime operations.
const (
	RTNone RuntimeOp = iota

	// HerQules messaging runtime (§4.1.3, §4.1.5, §2.2).
	RTPointerDefine          // (addr, value)
	RTPointerCheck           // (addr, value)
	RTPointerInvalidate      // (addr)
	RTPointerCheckInvalidate // (addr, value)
	RTBlockCopy              // (src, dst, n)
	RTBlockMove              // (src, dst, n)
	RTBlockInvalidate        // (addr, n)
	RTSyscallSync            // () — System-Call message
	RTRetDefine              // () — define return pointer in prologue
	RTRetCheckInvalidate     // () — check-invalidate in epilogue

	// Memory-safety policy runtime (§4.2).
	RTAllocCreate     // (addr, size)
	RTAllocCheck      // (addr)
	RTAllocCheckBase  // (addr1, addr2)
	RTAllocExtend     // (src, dst, size)
	RTAllocDestroy    // (addr)
	RTAllocDestroyAll // (addr, size)

	// Toy call-counter policy (§2).
	RTCounterInc // (class)

	// Data-flow integrity policy (§4.3).
	RTDFIDeclare // (set id, writer id)
	RTDFISet     // (addr, writer id)
	RTDFICheck   // (addr, set id)

	// Clang/LLVM CFI: in-process type-class check before an indirect call.
	// Args: (target); ClassSig carries the statically expected signature.
	RTClangCFICheck

	// CCFI: MAC maintenance on code-pointer stores and loads. The MAC is
	// computed over (address, value, type) with a register-held key.
	RTMACStore    // (addr, value)
	RTMACCheck    // (addr, value)
	RTMACRetStore // () — MAC the return slot in the prologue
	RTMACRetCheck // () — verify the return slot MAC in the epilogue

	// CPI: safe-store redirection for code-pointer stores and loads.
	RTSafeStoreSet // (addr, value)
	RTSafeStoreGet // (addr, expected) — loads authoritative value

	// Store-to-load-forwarding runtime guard (§4.1.4): terminates the
	// program if an optimized function is reentered while active.
	RTRecursionGuardEnter // (guard id)
	RTRecursionGuardExit  // (guard id)
)

var runtimeNames = map[RuntimeOp]string{
	RTPointerDefine:          "hq.define",
	RTPointerCheck:           "hq.check",
	RTPointerInvalidate:      "hq.invalidate",
	RTPointerCheckInvalidate: "hq.check_invalidate",
	RTBlockCopy:              "hq.block_copy",
	RTBlockMove:              "hq.block_move",
	RTBlockInvalidate:        "hq.block_invalidate",
	RTSyscallSync:            "hq.syscall_sync",
	RTRetDefine:              "hq.ret_define",
	RTRetCheckInvalidate:     "hq.ret_check_invalidate",
	RTAllocCreate:            "hq.alloc_create",
	RTAllocCheck:             "hq.alloc_check",
	RTAllocCheckBase:         "hq.alloc_check_base",
	RTAllocExtend:            "hq.alloc_extend",
	RTAllocDestroy:           "hq.alloc_destroy",
	RTAllocDestroyAll:        "hq.alloc_destroy_all",
	RTCounterInc:             "hq.counter_inc",
	RTDFIDeclare:             "hq.dfi_declare",
	RTDFISet:                 "hq.dfi_set",
	RTDFICheck:               "hq.dfi_check",
	RTClangCFICheck:          "cfi.typecheck",
	RTMACStore:               "ccfi.mac_store",
	RTMACCheck:               "ccfi.mac_check",
	RTMACRetStore:            "ccfi.mac_ret_store",
	RTMACRetCheck:            "ccfi.mac_ret_check",
	RTSafeStoreSet:           "cpi.safestore_set",
	RTSafeStoreGet:           "cpi.safestore_get",
	RTRecursionGuardEnter:    "hq.guard_enter",
	RTRecursionGuardExit:     "hq.guard_exit",
}

func (r RuntimeOp) String() string {
	if s, ok := runtimeNames[r]; ok {
		return s
	}
	return fmt.Sprintf("rt(%d)", int(r))
}

// Instr is one MIR instruction. An instruction with a non-void Typ is also a
// Value (its result). ID is a dense per-function index assigned by
// Func.Finalize and used by the interpreter for register slots.
type Instr struct {
	Op   Opcode
	Typ  *Type
	Args []Value
	Nm   string
	ID   int
	Blk  *Block

	// Op-specific fields.
	Bin       BinKind
	Cmp       CmpKind
	Callee    *Func    // OpCall
	FSig      *Type    // OpICall: static signature of the callee
	Targets   []*Block // OpBr, OpCondBr
	PhiBlocks []*Block // OpPhi: predecessor per Args entry
	AllocTy   *Type    // OpAlloca: allocated element type
	Field     int      // OpFieldAddr
	SyscallNo int      // OpSyscall
	RT        RuntimeOp
	// ClassSig is the expected signature string for RTClangCFICheck, and
	// the type tag mixed into CCFI MACs.
	ClassSig string
	// GuardID labels RTRecursionGuard* instructions.
	GuardID int
	// Volatile suppresses optimization of this load/store.
	Volatile bool
	// SafeSlot marks an alloca that safe-stack designs place in the
	// protected safe region instead of the regular frame (§6.3.4): scalar
	// and pointer locals whose address does not escape. Ignored when the
	// process runs without a safe stack.
	SafeSlot bool
}

// Type implements Value.
func (in *Instr) Type() *Type {
	if in.Typ == nil {
		return Void
	}
	return in.Typ
}

// Ref implements Value.
func (in *Instr) Ref() string {
	if in.Nm != "" {
		return "%" + in.Nm
	}
	return fmt.Sprintf("%%v%d", in.ID)
}

// IsTerminator reports whether in ends a basic block.
func (in *Instr) IsTerminator() bool {
	switch in.Op {
	case OpRet, OpBr, OpCondBr:
		return true
	}
	return false
}

// IsCall reports whether in transfers control to another function.
func (in *Instr) IsCall() bool { return in.Op == OpCall || in.Op == OpICall }

// IsBlockMemOp reports whether in is a block memory library operation that
// may copy or destroy control-flow pointers (§4.1.3).
func (in *Instr) IsBlockMemOp() bool {
	switch in.Op {
	case OpMemcpy, OpMemmove, OpMemset:
		return true
	}
	return false
}

// Block is a basic block: zero or more phis, then ordinary instructions,
// then exactly one terminator.
type Block struct {
	Name   string
	Fn     *Func
	Instrs []*Instr
	Index  int // position within Fn.Blocks
}

// Terminator returns the block's terminator, or nil if malformed.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	if t := b.Instrs[len(b.Instrs)-1]; t.IsTerminator() {
		return t
	}
	return nil
}

// Succs returns the successor blocks.
func (b *Block) Succs() []*Block {
	if t := b.Terminator(); t != nil {
		return t.Targets
	}
	return nil
}

// Preds returns the predecessor blocks (computed by scanning; callers that
// need repeated queries should use analysis.CFG).
func (b *Block) Preds() []*Block {
	var preds []*Block
	for _, other := range b.Fn.Blocks {
		for _, s := range other.Succs() {
			if s == b {
				preds = append(preds, other)
				break
			}
		}
	}
	return preds
}

func (b *Block) String() string { return b.Name }

// insert places in at position i.
func (b *Block) insert(i int, in *Instr) {
	in.Blk = b
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[i+1:], b.Instrs[i:])
	b.Instrs[i] = in
}

// InsertBefore inserts in immediately before pos, which must be in b.
func (b *Block) InsertBefore(pos *Instr, in *Instr) {
	for i, cur := range b.Instrs {
		if cur == pos {
			b.insert(i, in)
			return
		}
	}
	panic("mir: InsertBefore: position not in block")
}

// InsertAfter inserts in immediately after pos, which must be in b.
func (b *Block) InsertAfter(pos *Instr, in *Instr) {
	for i, cur := range b.Instrs {
		if cur == pos {
			b.insert(i+1, in)
			return
		}
	}
	panic("mir: InsertAfter: position not in block")
}

// Remove deletes in from b.
func (b *Block) Remove(in *Instr) {
	for i, cur := range b.Instrs {
		if cur == in {
			b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
			in.Blk = nil
			return
		}
	}
}
