package mir

import "fmt"

// Builder provides a fluent API for constructing MIR, used by the synthetic
// workloads, the RIPE exploit generator, and tests.
type Builder struct {
	Mod *Module
	Fn  *Func
	Blk *Block
}

// NewBuilder returns a builder over mod.
func NewBuilder(mod *Module) *Builder { return &Builder{Mod: mod} }

// Func starts a new function and positions the builder at a fresh entry
// block.
func (b *Builder) Func(name string, sig *Type, paramNames ...string) *Func {
	f := NewFunc(name, sig, paramNames...)
	b.Mod.AddFunc(f)
	b.Fn = f
	b.Blk = f.NewBlock("entry")
	return f
}

// Block creates a block in the current function without moving the insertion
// point.
func (b *Builder) Block(name string) *Block { return b.Fn.NewBlock(name) }

// SetBlock moves the insertion point.
func (b *Builder) SetBlock(blk *Block) { b.Blk = blk; b.Fn = blk.Fn }

// emit appends in to the current block.
func (b *Builder) emit(in *Instr) *Instr {
	if b.Blk == nil {
		panic("mir: Builder has no insertion block")
	}
	in.Blk = b.Blk
	b.Blk.Instrs = append(b.Blk.Instrs, in)
	return in
}

// Alloca allocates a stack slot for one value of t.
func (b *Builder) Alloca(name string, t *Type) *Instr {
	return b.emit(&Instr{Op: OpAlloca, Typ: Ptr(t), AllocTy: t, Nm: name})
}

// Load loads through ptr.
func (b *Builder) Load(ptr Value) *Instr {
	pt := ptr.Type()
	if !pt.IsPtr() {
		panic(fmt.Sprintf("mir: Load of non-pointer %s", pt))
	}
	return b.emit(&Instr{Op: OpLoad, Typ: pt.Elem, Args: []Value{ptr}})
}

// VolatileLoad loads through ptr and is exempt from optimization.
func (b *Builder) VolatileLoad(ptr Value) *Instr {
	in := b.Load(ptr)
	in.Volatile = true
	return in
}

// Store stores val through ptr.
func (b *Builder) Store(val, ptr Value) *Instr {
	return b.emit(&Instr{Op: OpStore, Args: []Value{val, ptr}})
}

// FieldAddr computes the address of field i of the struct pointed to by ptr.
func (b *Builder) FieldAddr(ptr Value, i int) *Instr {
	st := ptr.Type().Elem
	if st == nil || st.Kind != KindStruct {
		panic(fmt.Sprintf("mir: FieldAddr on %s", ptr.Type()))
	}
	return b.emit(&Instr{Op: OpFieldAddr, Typ: Ptr(st.Fields[i]), Field: i, Args: []Value{ptr}})
}

// IndexAddr computes &ptr[idx] where ptr points at an array or acts as a
// raw element pointer.
func (b *Builder) IndexAddr(ptr, idx Value) *Instr {
	pt := ptr.Type()
	var elem *Type
	switch {
	case pt.IsPtr() && pt.Elem.Kind == KindArray:
		elem = pt.Elem.Elem
	case pt.IsPtr():
		elem = pt.Elem
	default:
		panic(fmt.Sprintf("mir: IndexAddr on %s", pt))
	}
	return b.emit(&Instr{Op: OpIndexAddr, Typ: Ptr(elem), Args: []Value{ptr, idx}})
}

// Bin emits a binary arithmetic instruction.
func (b *Builder) Bin(k BinKind, x, y Value) *Instr {
	return b.emit(&Instr{Op: OpBin, Typ: x.Type(), Bin: k, Args: []Value{x, y}})
}

// Add emits x + y.
func (b *Builder) Add(x, y Value) *Instr { return b.Bin(BinAdd, x, y) }

// Sub emits x - y.
func (b *Builder) Sub(x, y Value) *Instr { return b.Bin(BinSub, x, y) }

// Mul emits x * y.
func (b *Builder) Mul(x, y Value) *Instr { return b.Bin(BinMul, x, y) }

// Cmp emits a comparison producing 0 or 1 as i64.
func (b *Builder) Cmp(k CmpKind, x, y Value) *Instr {
	return b.emit(&Instr{Op: OpCmp, Typ: I64, Cmp: k, Args: []Value{x, y}})
}

// Cast reinterprets v as type t (pointer/integer casts, pointer decay). The
// function-pointer detection analysis tracks values through casts (§4.1.4).
func (b *Builder) Cast(v Value, t *Type) *Instr {
	return b.emit(&Instr{Op: OpCast, Typ: t, Args: []Value{v}})
}

// Call emits a direct call.
func (b *Builder) Call(callee *Func, args ...Value) *Instr {
	return b.emit(&Instr{Op: OpCall, Typ: callee.Sig.Ret, Callee: callee, Args: args})
}

// ICall emits an indirect call through fp, whose static signature is sig.
func (b *Builder) ICall(fp Value, sig *Type, args ...Value) *Instr {
	return b.emit(&Instr{
		Op: OpICall, Typ: sig.Ret, FSig: sig,
		Args: append([]Value{fp}, args...),
	})
}

// Ret emits a return; v may be nil for void.
func (b *Builder) Ret(v Value) *Instr {
	in := &Instr{Op: OpRet}
	if v != nil {
		in.Args = []Value{v}
	}
	return b.emit(in)
}

// Br emits an unconditional branch.
func (b *Builder) Br(target *Block) *Instr {
	return b.emit(&Instr{Op: OpBr, Targets: []*Block{target}})
}

// CondBr branches to then when cond != 0, otherwise to els.
func (b *Builder) CondBr(cond Value, then, els *Block) *Instr {
	return b.emit(&Instr{Op: OpCondBr, Args: []Value{cond}, Targets: []*Block{then, els}})
}

// Phi emits a phi node; pairs alternate (value, block).
func (b *Builder) Phi(t *Type, pairs ...interface{}) *Instr {
	in := &Instr{Op: OpPhi, Typ: t}
	for i := 0; i < len(pairs); i += 2 {
		in.Args = append(in.Args, pairs[i].(Value))
		in.PhiBlocks = append(in.PhiBlocks, pairs[i+1].(*Block))
	}
	return b.emit(in)
}

// Malloc allocates size heap bytes.
func (b *Builder) Malloc(size Value) *Instr {
	return b.emit(&Instr{Op: OpMalloc, Typ: Ptr(I8), Args: []Value{size}})
}

// Free releases the heap allocation at ptr.
func (b *Builder) Free(ptr Value) *Instr {
	return b.emit(&Instr{Op: OpFree, Args: []Value{ptr}})
}

// Realloc resizes the heap allocation at ptr.
func (b *Builder) Realloc(ptr, size Value) *Instr {
	return b.emit(&Instr{Op: OpRealloc, Typ: Ptr(I8), Args: []Value{ptr, size}})
}

// Memcpy copies n bytes from src to dst (non-overlapping).
func (b *Builder) Memcpy(dst, src, n Value) *Instr {
	return b.emit(&Instr{Op: OpMemcpy, Args: []Value{dst, src, n}})
}

// Memmove copies n bytes from src to dst (may overlap).
func (b *Builder) Memmove(dst, src, n Value) *Instr {
	return b.emit(&Instr{Op: OpMemmove, Args: []Value{dst, src, n}})
}

// Memset fills n bytes at dst with the low byte of v.
func (b *Builder) Memset(dst, v, n Value) *Instr {
	return b.emit(&Instr{Op: OpMemset, Args: []Value{dst, v, n}})
}

// Syscall emits system call no with args.
func (b *Builder) Syscall(no int, args ...Value) *Instr {
	return b.emit(&Instr{Op: OpSyscall, Typ: I64, SyscallNo: no, Args: args})
}

// Runtime emits a runtime-library call (used by instrumentation passes; also
// available to tests).
func (b *Builder) Runtime(rt RuntimeOp, args ...Value) *Instr {
	return b.emit(&Instr{Op: OpRuntime, RT: rt, Args: args})
}

// Global declares a module global of element type t in segment seg
// ("data" or "bss").
func (b *Builder) Global(name string, t *Type, seg string) *Global {
	g := &Global{Name: name, Elem: t, Segment: seg, InitFuncs: make(map[int]*Func)}
	b.Mod.AddGlobal(g)
	return g
}

// FuncAddr yields the address of fn as a function-pointer value and marks fn
// address-taken.
func (b *Builder) FuncAddr(fn *Func) *FuncRef {
	fn.AddressTaken = true
	return &FuncRef{Fn: fn}
}
