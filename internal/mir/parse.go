package mir

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseModule parses the textual MIR form produced by Module.String. The
// syntax is lossless for everything the builders produce, so
// ParseModule(mod.String()) reproduces mod (their printed forms are equal).
//
// The format, by example:
//
//	module demo
//	type %pair = { i64, i64 }
//	global @hook : i64(i64)* [data] init { @handler }
//	func @handler(%x: i64) -> i64 {
//	entry:
//	  %v0 = add %x, 1 : i64
//	  ret %v0
//	}
func ParseModule(src string) (*Module, error) {
	p := &parser{
		structs: map[string]*Type{},
	}
	if err := p.run(src); err != nil {
		return nil, fmt.Errorf("mir: parse: %w", err)
	}
	finishICalls(p.mod)
	p.mod.Finalize()
	if err := Validate(p.mod); err != nil {
		return nil, fmt.Errorf("mir: parse produced invalid IR: %w", err)
	}
	return p.mod, nil
}

type parser struct {
	mod     *Module
	structs map[string]*Type
	lineNo  int
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("line %d: "+format, append([]interface{}{p.lineNo}, args...)...)
}

// run performs the multi-pass parse: types, function headers, globals, then
// function bodies (so forward references resolve).
func (p *parser) run(src string) error {
	lines := strings.Split(src, "\n")

	// Pass 1: module name and struct types.
	for i, raw := range lines {
		p.lineNo = i + 1
		line := strings.TrimSpace(raw)
		switch {
		case strings.HasPrefix(line, "module "):
			if p.mod != nil {
				return p.errf("duplicate module header")
			}
			p.mod = NewModule(strings.TrimSpace(strings.TrimPrefix(line, "module ")))
		case strings.HasPrefix(line, "type %"):
			if err := p.parseTypeDecl(line); err != nil {
				return err
			}
		}
	}
	if p.mod == nil {
		return fmt.Errorf("missing module header")
	}

	// Pass 2: function headers.
	for i, raw := range lines {
		p.lineNo = i + 1
		line := strings.TrimSpace(raw)
		if strings.HasPrefix(line, "func @") {
			if err := p.parseFuncHeader(line); err != nil {
				return err
			}
		}
	}

	// Pass 3: globals (initializers may reference functions).
	for i, raw := range lines {
		p.lineNo = i + 1
		line := strings.TrimSpace(raw)
		if strings.HasPrefix(line, "global @") {
			if err := p.parseGlobal(line); err != nil {
				return err
			}
		}
	}

	// Pass 4: function bodies.
	for i := 0; i < len(lines); i++ {
		p.lineNo = i + 1
		line := strings.TrimSpace(lines[i])
		if !strings.HasPrefix(line, "func @") || strings.HasSuffix(line, "intrinsic") {
			continue
		}
		end, err := p.parseFuncBody(lines, i)
		if err != nil {
			return err
		}
		i = end
	}
	return nil
}

// parseTypeDecl handles `type %name = { T, T }`.
func (p *parser) parseTypeDecl(line string) error {
	rest := strings.TrimPrefix(line, "type %")
	eq := strings.Index(rest, "=")
	if eq < 0 {
		return p.errf("malformed type declaration")
	}
	name := strings.TrimSpace(rest[:eq])
	body := strings.TrimSpace(rest[eq+1:])
	if !strings.HasPrefix(body, "{") || !strings.HasSuffix(body, "}") {
		return p.errf("type body must be { ... }")
	}
	inner := strings.TrimSpace(body[1 : len(body)-1])
	st := &Type{Kind: KindStruct, Name: name}
	// Register before parsing fields so self-references resolve.
	p.structs[name] = st
	if inner != "" {
		for _, fs := range splitTop(inner) {
			ft, err := p.parseType(strings.TrimSpace(fs))
			if err != nil {
				return err
			}
			st.Fields = append(st.Fields, ft)
		}
	}
	return nil
}

// parseFuncHeader handles `func @name(%p: T, ...) -> T attrs... {|intrinsic`.
func (p *parser) parseFuncHeader(line string) error {
	rest := strings.TrimPrefix(line, "func @")
	open := strings.Index(rest, "(")
	if open < 0 {
		return p.errf("missing parameter list")
	}
	name := rest[:open]
	close := matchParen(rest, open)
	if close < 0 {
		return p.errf("unbalanced parameter list")
	}
	paramsStr := rest[open+1 : close]
	tail := strings.TrimSpace(rest[close+1:])
	if !strings.HasPrefix(tail, "->") {
		return p.errf("missing return type")
	}
	tail = strings.TrimSpace(tail[2:])
	// tail: "<ret-type> [attrs...] {" or "... intrinsic". The return type
	// may contain spaces (array types), so strip known attribute tokens
	// from the right and treat the remainder as the type.
	words := strings.Fields(tail)
	end := len(words)
	isAttr := func(w string) bool {
		switch w {
		case "{", "addrtaken", "noreturn", "tailcalled", "intrinsic":
			return true
		}
		return false
	}
	for end > 0 && isAttr(words[end-1]) {
		end--
	}
	if end == 0 {
		return p.errf("missing return type")
	}
	ret, err := p.parseType(strings.Join(words[:end], " "))
	if err != nil {
		return err
	}
	var params []*Type
	var names []string
	if strings.TrimSpace(paramsStr) != "" {
		for _, ps := range splitTop(paramsStr) {
			ps = strings.TrimSpace(ps)
			if !strings.HasPrefix(ps, "%") {
				return p.errf("parameter %q missing name", ps)
			}
			colon := strings.Index(ps, ":")
			if colon < 0 {
				return p.errf("parameter %q missing type", ps)
			}
			names = append(names, strings.TrimSpace(ps[1:colon]))
			pt, err := p.parseType(strings.TrimSpace(ps[colon+1:]))
			if err != nil {
				return err
			}
			params = append(params, pt)
		}
	}
	f := NewFunc(name, FuncType(ret, params...), names...)
	for _, w := range words[end:] {
		switch w {
		case "addrtaken":
			f.AddressTaken = true
		case "noreturn":
			f.NoReturn = true
		case "tailcalled":
			f.AlwaysTailCalled = true
		case "intrinsic":
			f.Intrinsic = true
		case "{":
		default:
			return p.errf("unknown function attribute %q", w)
		}
	}
	p.mod.AddFunc(f)
	return nil
}

// parseGlobal handles
// `global @name : TYPE [readonly] [seg] [init { ... }]`.
func (p *parser) parseGlobal(line string) error {
	rest := strings.TrimPrefix(line, "global @")
	colon := strings.Index(rest, " : ")
	if colon < 0 {
		return p.errf("malformed global")
	}
	name := rest[:colon]
	rest = rest[colon+3:]

	// The type ends at " readonly", " [", or " init".
	typeEnd := len(rest)
	for _, marker := range []string{" readonly", " [", " init "} {
		if i := strings.Index(rest, marker); i >= 0 && i < typeEnd {
			typeEnd = i
		}
	}
	elem, err := p.parseType(strings.TrimSpace(rest[:typeEnd]))
	if err != nil {
		return err
	}
	g := &Global{Name: name, Elem: elem, InitFuncs: map[int]*Func{}}
	rest = strings.TrimSpace(rest[typeEnd:])
	if strings.HasPrefix(rest, "readonly") {
		g.ReadOnly = true
		rest = strings.TrimSpace(strings.TrimPrefix(rest, "readonly"))
	}
	if !strings.HasPrefix(rest, "[") {
		return p.errf("global %s missing segment", name)
	}
	seg := strings.Index(rest, "]")
	g.Segment = rest[1:seg]
	rest = strings.TrimSpace(rest[seg+1:])
	if strings.HasPrefix(rest, "init {") {
		inner := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(rest, "init {")), "}")
		for i, ws := range splitTop(strings.TrimSpace(inner)) {
			ws = strings.TrimSpace(ws)
			if strings.HasPrefix(ws, "@") {
				fn := p.mod.Func(ws[1:])
				if fn == nil {
					return p.errf("global %s: unknown function %s", name, ws)
				}
				g.InitFuncs[i] = fn
				fn.AddressTaken = true
			} else {
				w, err := strconv.ParseUint(ws, 10, 64)
				if err != nil {
					return p.errf("global %s: bad word %q", name, ws)
				}
				for len(g.InitWords) < i {
					g.InitWords = append(g.InitWords, 0)
				}
				g.InitWords = append(g.InitWords, w)
			}
		}
	}
	p.mod.AddGlobal(g)
	return nil
}

// pendingOperand defers operand resolution until all instructions exist.
type pendingOperand struct {
	in  *Instr
	idx int
	ref string
}

// parseFuncBody parses from the header line at start to the closing brace,
// returning the index of the closing line.
func (p *parser) parseFuncBody(lines []string, start int) (int, error) {
	header := strings.TrimSpace(lines[start])
	name := header[len("func @"):strings.Index(header, "(")]
	f := p.mod.Func(name)
	// Rebuild the body: drop the shell created by the header pass? The
	// header pass created the Func with no blocks; we fill it here.

	defs := map[string]Value{}
	for _, prm := range f.Params {
		defs["%"+prm.Nm] = prm
	}
	blocks := map[string]*Block{}
	var pending []pendingOperand
	var pendingBlocks []struct {
		in   *Instr
		idx  int
		name string
		phi  bool
	}
	var cur *Block

	i := start + 1
	for ; i < len(lines); i++ {
		p.lineNo = i + 1
		line := strings.TrimSpace(lines[i])
		if line == "" {
			continue
		}
		if line == "}" {
			break
		}
		if strings.HasSuffix(line, ":") && !strings.Contains(line, " ") {
			bn := strings.TrimSuffix(line, ":")
			cur = f.NewBlock(bn)
			blocks[bn] = cur
			continue
		}
		if cur == nil {
			return i, p.errf("instruction before first block in @%s", name)
		}
		in, resName, err := p.parseInstr(line, f, &pending, &pendingBlocks)
		if err != nil {
			return i, err
		}
		in.Blk = cur
		cur.Instrs = append(cur.Instrs, in)
		if resName != "" {
			if _, dup := defs[resName]; dup {
				return i, p.errf("duplicate definition %s", resName)
			}
			defs[resName] = in
		}
	}

	// Resolve deferred operands.
	for _, po := range pending {
		v, err := p.resolveRef(po.ref, defs)
		if err != nil {
			return i, err
		}
		for len(po.in.Args) <= po.idx {
			po.in.Args = append(po.in.Args, nil)
		}
		po.in.Args[po.idx] = v
	}
	for _, pb := range pendingBlocks {
		b, ok := blocks[pb.name]
		if !ok {
			return i, p.errf("unknown block %q in @%s", pb.name, name)
		}
		if pb.phi {
			for len(pb.in.PhiBlocks) <= pb.idx {
				pb.in.PhiBlocks = append(pb.in.PhiBlocks, nil)
			}
			pb.in.PhiBlocks[pb.idx] = b
		} else {
			for len(pb.in.Targets) <= pb.idx {
				pb.in.Targets = append(pb.in.Targets, nil)
			}
			pb.in.Targets[pb.idx] = b
		}
	}
	return i, nil
}

// resolveRef turns an operand token into a Value.
func (p *parser) resolveRef(ref string, defs map[string]Value) (Value, error) {
	switch {
	case ref == "null":
		return Null(Ptr(I8)), nil
	case strings.HasPrefix(ref, "%"):
		v, ok := defs[ref]
		if !ok {
			return nil, p.errf("undefined value %s", ref)
		}
		return v, nil
	case strings.HasPrefix(ref, "@"):
		nm := ref[1:]
		for _, g := range p.mod.Globals {
			if g.Name == nm {
				return g, nil
			}
		}
		if fn := p.mod.Func(nm); fn != nil {
			return &FuncRef{Fn: fn}, nil
		}
		return nil, p.errf("unknown symbol %s", ref)
	default:
		n, err := strconv.ParseUint(ref, 10, 64)
		if err != nil {
			return nil, p.errf("bad operand %q", ref)
		}
		return ConstInt(n), nil
	}
}
