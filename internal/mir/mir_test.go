package mir

import (
	"strings"
	"testing"
)

func TestTypeSizes(t *testing.T) {
	tests := []struct {
		typ  *Type
		size uint64
	}{
		{I8, 1},
		{I16, 2},
		{I32, 4},
		{I64, 8},
		{Ptr(I64), 8},
		{ArrayType(I8, 100), 100},
		{ArrayType(I64, 4), 32},
		{StructType("s", I64, I64), 16},
		{StructType("s", I8, I64), 16},       // padding before i64
		{StructType("s", I64, I8), 16},       // tail padding
		{StructType("s", I32, I32, I64), 16}, // packed pairs
		{StructType("empty"), 0},
		{FuncType(Void), 8},
	}
	for _, tt := range tests {
		if got := tt.typ.Size(); got != tt.size {
			t.Errorf("Size(%s) = %d, want %d", tt.typ, got, tt.size)
		}
	}
}

func TestFieldOffsets(t *testing.T) {
	s := StructType("s", I8, I64, I32)
	if off := s.FieldOffset(0); off != 0 {
		t.Errorf("field 0 offset = %d", off)
	}
	if off := s.FieldOffset(1); off != 8 {
		t.Errorf("field 1 offset = %d, want 8", off)
	}
	if off := s.FieldOffset(2); off != 16 {
		t.Errorf("field 2 offset = %d, want 16", off)
	}
}

func TestContainsFuncPtr(t *testing.T) {
	fp := Ptr(FuncType(Void))
	tests := []struct {
		typ  *Type
		want bool
	}{
		{I64, false},
		{fp, true},
		{Ptr(I64), false},
		{StructType("s", I64, fp), true},
		{StructType("s", I64, Ptr(I8)), false},
		{ArrayType(fp, 3), true},
		{StructType("outer", StructType("inner", fp)), true},
		{ArrayType(StructType("s", I32), 2), false},
	}
	for _, tt := range tests {
		if got := tt.typ.ContainsFuncPtr(); got != tt.want {
			t.Errorf("ContainsFuncPtr(%s) = %t, want %t", tt.typ, got, tt.want)
		}
	}
}

func TestSignatureEquivalenceClasses(t *testing.T) {
	// void(void*) and void(Obj*) must land in different Clang-CFI classes —
	// that mismatch is the source of the paper's povray false positive.
	generic := FuncType(Void, Ptr(I8))
	object := FuncType(Void, Ptr(StructType("Object_Struct", I64)))
	if generic.Signature() == object.Signature() {
		t.Error("distinct parameter types produced one equivalence class")
	}
	// Identical signatures share a class.
	if FuncType(I64, I64).Signature() != FuncType(I64, I64).Signature() {
		t.Error("identical types produced distinct classes")
	}
	// Signature through a pointer matches the function type itself.
	if Ptr(generic).Signature() != generic.Signature() {
		t.Error("pointer-to-func signature differs from func signature")
	}
}

func TestTypeEqual(t *testing.T) {
	if !Ptr(I64).Equal(Ptr(I64)) {
		t.Error("structural pointer equality failed")
	}
	if StructType("a", I64).Equal(StructType("b", I64)) {
		t.Error("nominal struct equality ignored names")
	}
	if I32.Equal(I64) {
		t.Error("i32 == i64")
	}
	if !FuncType(Void, I64).Equal(FuncType(Void, I64)) {
		t.Error("function type equality failed")
	}
	if FuncType(Void, I64).Equal(FuncType(Void, I32)) {
		t.Error("function types with different params compared equal")
	}
}

// buildLoop constructs the paper's Figure 2 loop: count sorted pairs in a
// buffer, with an indirect call in the body.
func buildLoop(t *testing.T) (*Module, *Func) {
	t.Helper()
	mod := NewModule("fig2")
	b := NewBuilder(mod)

	cmpSig := FuncType(I64, I64, I64)
	less := b.Func("less", cmpSig, "a", "b")
	b.Ret(b.Cmp(CmpLt, less.Params[0], less.Params[1]))

	mainSig := FuncType(I64, Ptr(ArrayType(I64, 8)))
	f := b.Func("count_sorted", mainSig, "buf")
	entry := b.Blk
	header := b.Block("header")
	body := b.Block("body")
	exit := b.Block("exit")

	fpSlot := b.Alloca("fp", Ptr(cmpSig))
	b.Store(b.FuncAddr(less), fpSlot)
	b.Br(header)

	b.SetBlock(header)
	i := b.Phi(I64, ConstInt(0), entry)
	n := b.Phi(I64, ConstInt(0), entry)
	cond := b.Cmp(CmpLt, i, ConstInt(7))
	b.CondBr(cond, body, exit)

	b.SetBlock(body)
	pa := b.IndexAddr(f.Params[0], i)
	a := b.Load(pa)
	i1 := b.Add(i, ConstInt(1))
	pb := b.IndexAddr(f.Params[0], i1)
	bv := b.Load(pb)
	fp := b.Load(fpSlot)
	r := b.ICall(fp, cmpSig, a, bv)
	n1 := b.Add(n, r)
	b.Br(header)
	i.Args = append(i.Args, i1)
	i.PhiBlocks = append(i.PhiBlocks, body)
	n.Args = append(n.Args, n1)
	n.PhiBlocks = append(n.PhiBlocks, body)

	b.SetBlock(exit)
	b.Ret(n)

	mod.Finalize()
	return mod, f
}

func TestBuilderProducesValidIR(t *testing.T) {
	mod, f := buildLoop(t)
	if err := Validate(mod); err != nil {
		t.Fatalf("Validate: %v\n%s", err, mod)
	}
	if f.NumValues == 0 {
		t.Error("Finalize assigned no value IDs")
	}
	if !mod.Func("less").AddressTaken {
		t.Error("FuncAddr did not mark the callee address-taken")
	}
	if !f.HasStackAlloc() {
		t.Error("HasStackAlloc missed the alloca")
	}
	if !f.MayWriteMemory() {
		t.Error("MayWriteMemory missed the store")
	}
}

func TestValidateCatchesMissingTerminator(t *testing.T) {
	mod := NewModule("bad")
	b := NewBuilder(mod)
	b.Func("f", FuncType(Void))
	b.Add(ConstInt(1), ConstInt(2)) // no terminator
	mod.Finalize()
	if err := Validate(mod); err == nil {
		t.Error("Validate accepted a block without terminator")
	}
}

func TestValidateCatchesMidBlockTerminator(t *testing.T) {
	mod := NewModule("bad")
	b := NewBuilder(mod)
	b.Func("f", FuncType(Void))
	b.Ret(nil)
	b.Ret(nil)
	mod.Finalize()
	if err := Validate(mod); err == nil {
		t.Error("Validate accepted two terminators")
	}
}

func TestValidateCatchesForeignOperand(t *testing.T) {
	mod := NewModule("bad")
	b := NewBuilder(mod)
	b.Func("f", FuncType(Void))
	x := b.Add(ConstInt(1), ConstInt(2))
	b.Ret(nil)
	b.Func("g", FuncType(Void))
	b.Add(x, ConstInt(3)) // x belongs to f
	b.Ret(nil)
	mod.Finalize()
	if err := Validate(mod); err == nil {
		t.Error("Validate accepted a cross-function operand")
	}
}

func TestValidateCatchesPhiPredMismatch(t *testing.T) {
	mod := NewModule("bad")
	b := NewBuilder(mod)
	b.Func("f", FuncType(Void))
	entry := b.Blk
	next := b.Block("next")
	b.Br(next)
	b.SetBlock(next)
	// Phi names a non-predecessor (next itself has only entry as pred, and
	// the phi claims two entries).
	b.Phi(I64, ConstInt(0), entry, ConstInt(1), next)
	b.Ret(nil)
	mod.Finalize()
	if err := Validate(mod); err == nil {
		t.Error("Validate accepted phi with wrong predecessor count")
	}
}

func TestValidateCatchesCallArityMismatch(t *testing.T) {
	mod := NewModule("bad")
	b := NewBuilder(mod)
	callee := b.Func("callee", FuncType(Void, I64))
	b.Ret(nil)
	b.Func("caller", FuncType(Void))
	b.emit(&Instr{Op: OpCall, Typ: Void, Callee: callee}) // 0 args, want 1
	b.Ret(nil)
	mod.Finalize()
	if err := Validate(mod); err == nil {
		t.Error("Validate accepted arity mismatch")
	}
}

func TestCloneIsDeepAndEquivalent(t *testing.T) {
	mod, _ := buildLoop(t)
	cl := mod.Clone()
	if err := Validate(cl); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	if cl.String() != mod.String() {
		t.Errorf("clone differs:\n--- original\n%s\n--- clone\n%s", mod, cl)
	}
	// Mutating the clone must not affect the original.
	clf := cl.Func("count_sorted")
	clf.Blocks[0].Instrs = clf.Blocks[0].Instrs[:1]
	if cl.String() == mod.String() {
		t.Error("clone shares structure with original")
	}
}

func TestCloneRemapsGlobalsAndFuncRefs(t *testing.T) {
	mod := NewModule("g")
	b := NewBuilder(mod)
	target := b.Func("target", FuncType(Void))
	b.Ret(nil)
	g := b.Global("fptr", Ptr(target.Sig), "data")
	g.InitFuncs[0] = target
	b.Func("main", FuncType(Void))
	fp := b.Load(g)
	b.ICall(fp, target.Sig)
	b.Ret(nil)
	mod.Finalize()
	if err := Validate(mod); err != nil {
		t.Fatal(err)
	}

	cl := mod.Clone()
	clG := cl.Globals[0]
	if clG == g {
		t.Fatal("clone shares globals")
	}
	if clG.InitFuncs[0] != cl.Func("target") {
		t.Error("global initializer function not remapped to clone")
	}
	// FuncRef inside main of the clone must point at the clone's function.
	for _, blk := range cl.Func("main").Blocks {
		for _, in := range blk.Instrs {
			for _, a := range in.Args {
				if fr, ok := a.(*FuncRef); ok && fr.Fn != cl.Func("target") {
					t.Error("FuncRef not remapped")
				}
				if gr, ok := a.(*Global); ok && gr != clG {
					t.Error("Global operand not remapped")
				}
			}
		}
	}
}

func TestInsertBeforeAfterRemove(t *testing.T) {
	mod := NewModule("m")
	b := NewBuilder(mod)
	b.Func("f", FuncType(Void))
	first := b.Add(ConstInt(1), ConstInt(1))
	b.Ret(nil)
	blk := b.Blk

	mid := &Instr{Op: OpBin, Typ: I64, Bin: BinAdd, Args: []Value{ConstInt(2), ConstInt(2)}}
	blk.InsertAfter(first, mid)
	pre := &Instr{Op: OpBin, Typ: I64, Bin: BinAdd, Args: []Value{ConstInt(0), ConstInt(0)}}
	blk.InsertBefore(first, pre)
	if blk.Instrs[0] != pre || blk.Instrs[1] != first || blk.Instrs[2] != mid {
		t.Fatalf("insert order wrong: %v", blk.Instrs)
	}
	blk.Remove(mid)
	if len(blk.Instrs) != 3 || blk.Instrs[2].Op != OpRet {
		t.Fatalf("remove failed: %v", blk.Instrs)
	}
	mod.Finalize()
	if err := Validate(mod); err != nil {
		t.Fatal(err)
	}
}

func TestModuleStringIsStable(t *testing.T) {
	mod, _ := buildLoop(t)
	s := mod.String()
	for _, want := range []string{"func @count_sorted", "icall", "phi", "condbr"} {
		if !strings.Contains(s, want) {
			t.Errorf("module printout missing %q:\n%s", want, s)
		}
	}
	if s != mod.String() {
		t.Error("String is not deterministic")
	}
}

func TestBlockPredsSuccs(t *testing.T) {
	_, f := buildLoop(t)
	header := f.Blocks[1]
	if got := len(header.Preds()); got != 2 {
		t.Errorf("header preds = %d, want 2 (entry+body)", got)
	}
	if got := len(header.Succs()); got != 2 {
		t.Errorf("header succs = %d, want 2 (body+exit)", got)
	}
	exit := f.Blocks[3]
	if got := len(exit.Succs()); got != 0 {
		t.Errorf("exit succs = %d, want 0", got)
	}
}
