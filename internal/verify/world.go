package verify

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"herqules/internal/dsched"
	"herqules/internal/ipc"
	"herqules/internal/kernel"
	"herqules/internal/policy"
	"herqules/internal/verifier"
)

// Process lifecycle phases as the model tracks them. The two *window*
// phases are the interleaving targets: a process mid-registration (verifier
// notified, kernel context pending — or the reverse under UnsafeLateNotify)
// and a process mid-exit (kernel context gone, verifier context pending
// teardown).
const (
	phaseWindow     = iota // between launch/fork and visibility
	phaseLive              // fully registered
	phaseExitWindow        // kernel context torn down, verifier not yet notified
	phaseExited            // fully gone
)

// wproc is the model's view of one process, paired with the real contexts
// the kernel and verifier hold for it.
type wproc struct {
	name string
	pid  int32

	phase int
	task  *dsched.Task // in-flight lifecycle task (launch, fork or exit)
	gate  *dsched.Task // in-flight SyscallEnter

	gateBlocked bool
	gatesDone   int
	// wantAtPass is the total message count (sends + the sync) enqueued
	// before the current gate: the gate invariant demands all of them be
	// validated by the time the gate passes.
	wantAtPass uint64

	nextSeq uint64 // next message counter (§3.1.1), starting at 1
	sends   int    // non-sync sends so far
	queue   []ipc.Message

	// expectValidated counts messages delivered while the process was
	// healthy (not killed, shard not poisoned): each must appear in
	// verifier.Messages or it was silently lost.
	expectValidated uint64

	killed bool // model-side: any kill has been issued for this pid

	// Connection-churn state (Config.Conn). A severed process's transport
	// is down: nothing it queued can be delivered and it cannot enter a
	// gate until it resumes. reordered records that the MODEL delivered
	// this process's messages out of order — those procs are exempt from
	// the no-churn-counter-kill invariant, since their counter kills are
	// legitimate CheckSeq behavior, not resume-protocol bugs.
	severed   bool
	severs    int
	reordered bool
}

// gateTap interposes the verifier's Gate (kernel) interface so the
// controller OBSERVES, rather than predicts, which processes a delivery
// woke or killed — the checker then awaits exactly those gate goroutines.
type gateTap struct {
	k *kernel.Kernel

	mu    sync.Mutex
	syncs []int32
	kills []int32
}

func (g *gateTap) NotifySyncReady(pid int32) {
	g.mu.Lock()
	g.syncs = append(g.syncs, pid)
	g.mu.Unlock()
	g.k.NotifySyncReady(pid)
}

func (g *gateTap) Kill(pid int32, reason string) {
	g.mu.Lock()
	g.kills = append(g.kills, pid)
	g.mu.Unlock()
	g.k.Kill(pid, reason)
}

func (g *gateTap) drain() (syncs, kills []int32) {
	g.mu.Lock()
	syncs, kills = g.syncs, g.kills
	g.syncs, g.kills = nil, nil
	g.mu.Unlock()
	return
}

// tapListener interposes the kernel→verifier listener to count
// ProcessKilled notifications per pid (the exactly-one-kill invariant) while
// forwarding everything to the real verifier.
type tapListener struct {
	v *verifier.Verifier

	mu        sync.Mutex
	killCount map[int32]int
}

func (l *tapListener) ProcessStarted(pid int32)          { l.v.ProcessStarted(pid) }
func (l *tapListener) ProcessForked(parent, child int32) { l.v.ProcessForked(parent, child) }
func (l *tapListener) ProcessExited(pid int32)           { l.v.ProcessExited(pid) }

func (l *tapListener) ProcessKilled(pid int32, reason string) {
	l.mu.Lock()
	l.killCount[pid]++
	l.mu.Unlock()
	l.v.ProcessKilled(pid, reason)
}

func (l *tapListener) kills(pid int32) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.killCount[pid]
}

// world is one concrete instance of the system under check: a real kernel
// and verifier wired through the taps, a deterministic scheduler installed
// over the dsched hooks, and the model's bookkeeping. Worlds are built,
// driven by a transition sequence, and torn down; they are never reused.
type world struct {
	cfg Config
	s   *dsched.Scheduler
	k   *kernel.Kernel
	v   *verifier.Verifier
	tap *gateTap
	lis *tapListener

	procs    map[string]*wproc
	order    []string
	poisoned map[int]bool
}

func newWorld(cfg Config) *world {
	s := dsched.NewScheduler()
	dsched.Install(s)
	k := kernel.New(nil)
	k.UnsafeLateNotify = cfg.UnsafeLateNotify
	k.UnsafeEpochTimer = cfg.UnsafeEpochTimer
	tap := &gateTap{k: k}
	v := verifier.NewSharded(func() []policy.Policy { return nil }, tap, cfg.Shards)
	v.CheckSeq = cfg.CheckSeq
	v.KillOnViolation = true
	lis := &tapListener{v: v, killCount: make(map[int32]int)}
	k.SetListener(lis)
	k.SetWatchdog(v)
	return &world{
		cfg: cfg, s: s, k: k, v: v, tap: tap, lis: lis,
		procs:    make(map[string]*wproc),
		poisoned: make(map[int]bool),
	}
}

// teardown drives every in-flight goroutine to completion (parked lifecycle
// tasks are stepped out, blocked gates killed and awaited) and uninstalls
// the scheduler. Best-effort: a goroutine that cannot be released is
// exactly the liveness bug the checker reports through other channels.
func (w *world) teardown() {
	for _, name := range w.order {
		p := w.procs[name]
		if p.task != nil && !p.task.Done() {
			for i := 0; i < 8 && !p.task.Done(); i++ {
				if ev := w.s.Step(p.task); ev.Kind == dsched.EventDone {
					break
				}
			}
		}
	}
	for _, name := range w.order {
		p := w.procs[name]
		if p.gateBlocked && p.gate != nil && !p.gate.Done() {
			w.k.Kill(p.pid, "verify: world teardown")
			w.s.Await(p.gate, w.cfg.AwaitTimeout)
		}
	}
	dsched.Uninstall()
}

// procNames supplies deterministic process names in creation order.
var procNames = []string{"A", "B", "C", "D", "E", "F"}

func (w *world) nextName() string {
	if len(w.order) < len(procNames) {
		return procNames[len(w.order)]
	}
	return fmt.Sprintf("P%d", len(w.order))
}

// enabled enumerates the transitions applicable in the current state, in a
// fixed deterministic order (process creation order, fixed family order).
func (w *world) enabled() []string {
	var en []string
	if len(w.order) < w.cfg.Procs {
		en = append(en, "launch:"+w.nextName())
	}
	for _, name := range w.order {
		p := w.procs[name]
		switch p.phase {
		case phaseWindow:
			en = append(en, "visible:"+name)
		case phaseExitWindow:
			en = append(en, "exitdone:"+name)
		}
		threadFree := p.gate == nil && p.task == nil
		if (p.phase == phaseWindow || p.phase == phaseLive) && !p.killed &&
			p.sends < w.cfg.MaxSends && p.gate == nil {
			en = append(en, "send:"+name)
		}
		if len(p.queue) > 0 && p.phase != phaseExited && !p.severed {
			en = append(en, "deliver:"+name)
			if w.cfg.Reorder && len(p.queue) > 1 {
				en = append(en, "deliver:"+name+"@1")
			}
		}
		if p.phase == phaseLive && threadFree && !p.killed && !p.severed &&
			p.gatesDone < w.cfg.MaxGates {
			en = append(en, "gate:"+name)
		}
		if w.cfg.Expire && p.gateBlocked && w.s.TimerArmed(p.pid) {
			en = append(en, "expire:"+name)
		}
		if w.cfg.Kill && (p.phase == phaseWindow || p.phase == phaseLive) && !p.killed {
			en = append(en, "kill:"+name)
		}
		if w.cfg.Exit && p.phase == phaseLive && threadFree && !p.severed &&
			len(p.queue) == 0 {
			en = append(en, "exit:"+name)
		}
		if w.cfg.Fork && p.phase == phaseLive && threadFree && !p.killed &&
			len(w.order) < w.cfg.Procs {
			en = append(en, "fork:"+name+">"+w.nextName())
		}
		if w.cfg.Conn && !p.killed && (p.phase == phaseWindow || p.phase == phaseLive) {
			if !p.severed && p.severs < w.cfg.MaxSevers {
				en = append(en, "disconnect:"+name)
			}
			if p.severed {
				en = append(en, "connect:"+name, "lease-expire:"+name)
			}
		}
	}
	if w.cfg.Poison {
		for si := 0; si < w.cfg.Shards; si++ {
			if !w.poisoned[si] {
				en = append(en, "poison:"+strconv.Itoa(si))
			}
		}
	}
	return en
}

// apply executes one transition. It returns a Violation when the transition
// itself trips an invariant (gate-pass checks, liveness), or an error when
// the transition is not enabled in this state (a stale or over-minimized
// schedule).
func (w *world) apply(tr string) (*Violation, error) {
	op, arg, _ := strings.Cut(tr, ":")
	switch op {
	case "launch":
		return w.applyLaunch(arg)
	case "visible":
		return w.applyVisible(arg)
	case "send":
		return w.applySend(arg)
	case "deliver":
		name, idxs, reordered := strings.Cut(arg, "@")
		idx := 0
		if reordered {
			var err error
			if idx, err = strconv.Atoi(idxs); err != nil {
				return nil, fmt.Errorf("bad deliver index %q", idxs)
			}
		}
		return w.applyDeliver(name, idx)
	case "gate":
		return w.applyGate(arg)
	case "expire":
		return w.applyExpire(arg)
	case "kill":
		return w.applyKill(arg)
	case "exit":
		return w.applyExit(arg)
	case "exitdone":
		return w.applyExitDone(arg)
	case "disconnect":
		return w.applyDisconnect(arg)
	case "connect":
		return w.applyConnect(arg)
	case "lease-expire":
		return w.applyLeaseExpire(arg)
	case "fork":
		parent, child, ok := strings.Cut(arg, ">")
		if !ok {
			return nil, fmt.Errorf("bad fork transition %q", tr)
		}
		return w.applyFork(parent, child)
	case "poison":
		si, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("bad poison shard %q", arg)
		}
		return w.applyPoison(si)
	default:
		return nil, fmt.Errorf("unknown transition %q", tr)
	}
}

// runOut steps a lifecycle task through any remaining yield points until it
// completes. Bounded: a task still parked after the bound is a model
// desynchronization, not a protocol state worth exploring.
func (w *world) runOut(t *dsched.Task, what string) *Violation {
	for i := 0; i < 8; i++ {
		ev := w.s.Step(t)
		switch ev.Kind {
		case dsched.EventDone:
			return nil
		case dsched.EventParked:
			continue
		default:
			return &Violation{Invariant: InvModel,
				Detail: fmt.Sprintf("%s emitted %v while running out", what, ev)}
		}
	}
	return &Violation{Invariant: InvModel,
		Detail: fmt.Sprintf("%s still parked after 8 steps", what)}
}

func (w *world) proc(name string) (*wproc, error) {
	p, ok := w.procs[name]
	if !ok {
		return nil, fmt.Errorf("no process %q", name)
	}
	return p, nil
}

func (w *world) applyLaunch(name string) (*Violation, error) {
	if len(w.order) >= w.cfg.Procs {
		return nil, fmt.Errorf("launch: proc bound reached")
	}
	if _, exists := w.procs[name]; exists || name != w.nextName() {
		return nil, fmt.Errorf("launch: name %q not next", name)
	}
	p := &wproc{name: name, nextSeq: 1, phase: phaseWindow}
	k := w.k
	p.task = w.s.Go("launch:"+name, 0, func() error {
		k.Register()
		return nil
	})
	ev := w.s.Step(p.task)
	if ev.Kind == dsched.EventDone {
		// Register completed without parking — the register-visible yield
		// point is gone; the model can no longer see the window.
		return &Violation{Invariant: InvModel,
			Detail: "Register did not park at register-visible"}, nil
	}
	if ev.Kind != dsched.EventParked ||
		(ev.Point != dsched.PointRegisterVisible) {
		return &Violation{Invariant: InvModel,
			Detail: fmt.Sprintf("launch parked at %v, want register-visible", ev)}, nil
	}
	p.pid = ev.PID
	w.procs[name] = p
	w.order = append(w.order, name)
	return nil, nil
}

func (w *world) applyVisible(name string) (*Violation, error) {
	p, err := w.proc(name)
	if err != nil {
		return nil, err
	}
	if p.phase != phaseWindow || p.task == nil {
		return nil, fmt.Errorf("visible: %s not in registration window", name)
	}
	// The tail of registration may park again (e.g. a poisoned-shard birth
	// kill yields at kill-notify); run it out — the interleaving of interest
	// was the window itself, already explored via the other transitions.
	if v := w.runOut(p.task, "registration of "+name); v != nil {
		return v, nil
	}
	p.task = nil
	p.phase = phaseLive
	w.syncModelKills()
	return nil, w.noteTapWakes()
}

func (w *world) applySend(name string) (*Violation, error) {
	p, err := w.proc(name)
	if err != nil {
		return nil, err
	}
	if p.killed || p.gate != nil || p.sends >= w.cfg.MaxSends ||
		(p.phase != phaseWindow && p.phase != phaseLive) {
		return nil, fmt.Errorf("send: not enabled for %s", name)
	}
	p.queue = append(p.queue, ipc.Message{Op: ipc.OpCounterInc, PID: p.pid, Arg1: 1, Seq: p.nextSeq})
	p.nextSeq++
	p.sends++
	return nil, nil
}

func (w *world) applyDeliver(name string, idx int) (*Violation, error) {
	p, err := w.proc(name)
	if err != nil {
		return nil, err
	}
	if idx < 0 || idx >= len(p.queue) || p.phase == phaseExited || p.severed {
		return nil, fmt.Errorf("deliver: index %d not available for %s", idx, name)
	}
	if idx > 0 && !w.cfg.Reorder {
		return nil, fmt.Errorf("deliver: reorder disabled")
	}
	if idx > 0 {
		p.reordered = true
	}
	m := p.queue[idx]
	p.queue = append(p.queue[:idx], p.queue[idx+1:]...)
	healthy := !p.killed && !w.poisoned[w.v.ShardOf(p.pid)]
	if healthy {
		p.expectValidated++
	}
	w.v.Deliver(m)
	return w.awaitTapWakes()
}

func (w *world) applyGate(name string) (*Violation, error) {
	p, err := w.proc(name)
	if err != nil {
		return nil, err
	}
	if p.phase != phaseLive || p.killed || p.severed || p.gate != nil ||
		p.task != nil || p.gatesDone >= w.cfg.MaxGates {
		return nil, fmt.Errorf("gate: not enabled for %s", name)
	}
	// The program sends its System-Call message and immediately enters the
	// gated syscall (§3.3). The sync message rides the same queue as data
	// messages — delivery order is a separate transition.
	p.queue = append(p.queue, ipc.Message{Op: ipc.OpSyscall, PID: p.pid, Seq: p.nextSeq})
	p.nextSeq++
	p.wantAtPass = p.nextSeq - 1
	pid := p.pid
	k := w.k
	p.gate = w.s.Go("gate:"+name, pid, func() error {
		return k.SyscallEnter(pid, 1)
	})
	ev := w.s.Step(p.gate)
	switch ev.Kind {
	case dsched.EventBlocked:
		p.gateBlocked = true
		return nil, nil
	case dsched.EventDone:
		return w.gateResolved(p), nil
	default:
		return &Violation{Invariant: InvModel,
			Detail: fmt.Sprintf("gate of %s parked unexpectedly: %v", name, ev)}, nil
	}
}

func (w *world) applyExpire(name string) (*Violation, error) {
	p, err := w.proc(name)
	if err != nil {
		return nil, err
	}
	if !w.cfg.Expire || !p.gateBlocked || !w.s.TimerArmed(p.pid) {
		return nil, fmt.Errorf("expire: not enabled for %s", name)
	}
	w.s.FireTimer(p.pid)
	ev, ok := w.s.Await(p.gate, w.cfg.AwaitTimeout)
	if !ok {
		return &Violation{Invariant: InvLiveness,
			Detail: fmt.Sprintf("gate of %s emitted nothing after its epoch deadline fired", name)}, nil
	}
	switch ev.Kind {
	case dsched.EventDone:
		w.syncModelKills()
		return w.gateResolved(p), nil
	case dsched.EventBlocked:
		// The deadline broadcast landed and the waiter went back to sleep
		// with no future wake-up — the pre-fix epoch-timer stall.
		return &Violation{Invariant: InvLiveness,
			Detail: fmt.Sprintf("gate of %s re-blocked at its epoch deadline (timer fired, waiter re-waited: stall)", name)}, nil
	default:
		return &Violation{Invariant: InvModel,
			Detail: fmt.Sprintf("gate of %s parked after expiry: %v", name, ev)}, nil
	}
}

func (w *world) applyKill(name string) (*Violation, error) {
	p, err := w.proc(name)
	if err != nil {
		return nil, err
	}
	if !w.cfg.Kill || p.killed || (p.phase != phaseWindow && p.phase != phaseLive) {
		return nil, fmt.Errorf("kill: not enabled for %s", name)
	}
	return w.killAwait(p, "verify: external kill")
}

// killAwait issues a kernel kill for p and, when its gate is blocked, awaits
// the woken gate goroutine — fail-closed demands every kill release any gate
// still waiting, whatever the kill's origin (supervisor sweep, lease expiry).
func (w *world) killAwait(p *wproc, reason string) (*Violation, error) {
	w.k.Kill(p.pid, reason)
	p.killed = true
	if p.gateBlocked {
		ev, ok := w.s.Await(p.gate, w.cfg.AwaitTimeout)
		if !ok {
			return &Violation{Invariant: InvLiveness,
				Detail: fmt.Sprintf("gate of %s not woken by kill", p.name)}, nil
		}
		if ev.Kind == dsched.EventDone {
			return w.gateResolved(p), nil
		}
		return &Violation{Invariant: InvLiveness,
			Detail: fmt.Sprintf("gate of killed %s re-blocked: %v", p.name, ev)}, nil
	}
	return nil, nil
}

func (w *world) applyDisconnect(name string) (*Violation, error) {
	p, err := w.proc(name)
	if err != nil {
		return nil, err
	}
	if !w.cfg.Conn || p.severed || p.killed || p.severs >= w.cfg.MaxSevers ||
		(p.phase != phaseWindow && p.phase != phaseLive) {
		return nil, fmt.Errorf("disconnect: not enabled for %s", name)
	}
	p.severed = true
	p.severs++
	if w.cfg.UnsafeSeverDrop && len(p.queue) > 0 {
		// The modeled bug: a resume protocol that trims its replay buffer
		// on write rather than on cumulative ack loses the oldest
		// unforwarded frame with the connection. expectValidated is NOT
		// decremented — the loss is the client's fault in this model, and
		// the invariant that notices is the counter gap on resume.
		p.queue = p.queue[1:]
	}
	return nil, nil
}

func (w *world) applyConnect(name string) (*Violation, error) {
	p, err := w.proc(name)
	if err != nil {
		return nil, err
	}
	if !w.cfg.Conn || !p.severed || p.killed ||
		(p.phase != phaseWindow && p.phase != phaseLive) {
		return nil, fmt.Errorf("connect: not enabled for %s", name)
	}
	// Resume with replay: the queue (the replay buffer) survived the sever
	// intact, so subsequent delivers carry the same gap-free counter stream
	// the daemon acked up to.
	p.severed = false
	return nil, nil
}

func (w *world) applyLeaseExpire(name string) (*Violation, error) {
	p, err := w.proc(name)
	if err != nil {
		return nil, err
	}
	if !w.cfg.Conn || !p.severed || p.killed ||
		(p.phase != phaseWindow && p.phase != phaseLive) {
		return nil, fmt.Errorf("lease-expire: not enabled for %s", name)
	}
	// The daemon's lease scanner fires for a severed session that never
	// resumed: a fail-closed kill with the canonical reason, which must
	// also release a gate still blocked on the dead connection.
	return w.killAwait(p, kernel.ReasonLeaseExpired)
}

func (w *world) applyExit(name string) (*Violation, error) {
	p, err := w.proc(name)
	if err != nil {
		return nil, err
	}
	if !w.cfg.Exit || p.phase != phaseLive || p.severed || p.gate != nil ||
		p.task != nil || len(p.queue) != 0 {
		return nil, fmt.Errorf("exit: not enabled for %s", name)
	}
	pid := p.pid
	k := w.k
	p.task = w.s.Go("exit:"+name, 0, func() error {
		k.Exit(pid)
		return nil
	})
	ev := w.s.Step(p.task)
	if ev.Kind != dsched.EventParked || ev.Point != dsched.PointExitNotify {
		return &Violation{Invariant: InvModel,
			Detail: fmt.Sprintf("exit of %s did not park at exit-notify: %v", name, ev)}, nil
	}
	p.phase = phaseExitWindow
	return nil, nil
}

func (w *world) applyExitDone(name string) (*Violation, error) {
	p, err := w.proc(name)
	if err != nil {
		return nil, err
	}
	if p.phase != phaseExitWindow || p.task == nil {
		return nil, fmt.Errorf("exitdone: %s not mid-exit", name)
	}
	if v := w.runOut(p.task, "exit of "+name); v != nil {
		return v, nil
	}
	p.task = nil
	p.phase = phaseExited
	return nil, nil
}

func (w *world) applyFork(parent, child string) (*Violation, error) {
	pp, err := w.proc(parent)
	if err != nil {
		return nil, err
	}
	if !w.cfg.Fork || pp.phase != phaseLive || pp.killed || pp.gate != nil ||
		pp.task != nil || len(w.order) >= w.cfg.Procs || child != w.nextName() {
		return nil, fmt.Errorf("fork: not enabled for %s>%s", parent, child)
	}
	ppid := pp.pid
	k := w.k
	cp := &wproc{name: child, nextSeq: 1, phase: phaseWindow}
	cp.task = w.s.Go("fork:"+parent, 0, func() error {
		_, ferr := k.Fork(ppid)
		return ferr
	})
	ev := w.s.Step(cp.task)
	if ev.Kind != dsched.EventParked || ev.Point != dsched.PointForkVisible {
		return &Violation{Invariant: InvModel,
			Detail: fmt.Sprintf("fork %s>%s did not park at fork-visible: %v", parent, child, ev)}, nil
	}
	cp.pid = ev.PID
	w.procs[child] = cp
	w.order = append(w.order, child)
	return nil, nil
}

func (w *world) applyPoison(si int) (*Violation, error) {
	if !w.cfg.Poison || si < 0 || si >= w.cfg.Shards || w.poisoned[si] {
		return nil, fmt.Errorf("poison: shard %d not available", si)
	}
	w.poisoned[si] = true
	w.v.PoisonShard(si, fmt.Sprintf("verify: shard %d poisoned", si))
	return w.awaitTapWakes()
}

// gateResolved consumes a finished gate task: on a pass (nil error), the
// gate invariant and the liveness stamp are checked at the exact instant
// enforcement let the process proceed.
func (w *world) gateResolved(p *wproc) *Violation {
	err := p.gate.Err()
	p.gate = nil
	p.gateBlocked = false
	p.gatesDone++
	w.syncModelKills()
	if err != nil {
		// A failed gate is a kill or an exit, not a pass; the global
		// invariants (exactly-one-kill etc.) cover it.
		return nil
	}
	if got := w.v.Messages(p.pid); got < p.wantAtPass {
		return &Violation{Invariant: InvGate,
			Detail: fmt.Sprintf("process %s passed its gate with %d of %d prior messages validated",
				p.name, got, p.wantAtPass)}
	}
	if st, ok := w.k.Stats(p.pid); !ok || st.LastSyscallUnixNanos == 0 {
		return &Violation{Invariant: InvStamp,
			Detail: fmt.Sprintf("process %s passed its gate without a liveness stamp", p.name)}
	}
	return nil
}

// syncModelKills folds observed kernel/listener kill state into the model's
// per-process killed flags. It deliberately does NOT drain the gate tap:
// tap events (sync wake-ups) belong to awaitTapWakes, which must see them to
// know which blocked gates to await.
func (w *world) syncModelKills() {
	for _, name := range w.order {
		p := w.procs[name]
		if !p.killed {
			if killed, _ := w.k.Killed(p.pid); killed || w.lis.kills(p.pid) > 0 {
				p.killed = true
			}
		}
	}
}

// awaitTapWakes collects the gate events that a delivery's observed effects
// (sync notifications, kills routed through the tap) must have produced:
// every blocked gate whose pid was synced or killed is awaited and
// resolved. Returning without awaiting would let the next transition race
// the woken goroutine.
func (w *world) awaitTapWakes() (*Violation, error) {
	w.syncModelKills()
	syncs, kills := w.tap.drain()
	woken := make(map[int32]bool)
	for _, pid := range syncs {
		woken[pid] = true
	}
	for _, pid := range kills {
		woken[pid] = true
		if p := w.byPID(pid); p != nil {
			p.killed = true
		}
	}
	for _, name := range w.order {
		p := w.procs[name]
		if p.killed {
			woken[p.pid] = true
		}
	}
	for _, name := range w.order {
		p := w.procs[name]
		if !p.gateBlocked || p.gate == nil || !woken[p.pid] {
			continue
		}
		ev, ok := w.s.Await(p.gate, w.cfg.AwaitTimeout)
		if !ok {
			return &Violation{Invariant: InvLiveness,
				Detail: fmt.Sprintf("gate of %s not woken by sync/kill", name)}, nil
		}
		if ev.Kind == dsched.EventDone {
			if v := w.gateResolved(p); v != nil {
				return v, nil
			}
			continue
		}
		// Re-blocked: a sync that did not release the gate (e.g. the sync
		// raced a pending violation). Legal; leave it blocked.
	}
	return nil, nil
}

// noteTapWakes is awaitTapWakes for transitions that cannot block a gate
// (visibility completion): it only folds kill observations.
func (w *world) noteTapWakes() error {
	w.syncModelKills()
	return nil
}

func (w *world) byPID(pid int32) *wproc {
	for _, name := range w.order {
		if p := w.procs[name]; p.pid == pid {
			return p
		}
	}
	return nil
}

// checkInvariants evaluates the global invariants after a transition.
func (w *world) checkInvariants() *Violation {
	for _, name := range w.order {
		p := w.procs[name]
		if n := w.lis.kills(p.pid); n > 1 {
			return &Violation{Invariant: InvOneKill,
				Detail: fmt.Sprintf("process %s produced %d kill notifications", name, n)}
		}
		// Churn invariant: a process whose messages the model delivered in
		// order must never die to the counter check — however many times its
		// connection severed and resumed. Only model-driven reorders earn a
		// legitimate CheckSeq kill.
		if !p.reordered {
			if killed, reason := w.k.Killed(p.pid); killed &&
				strings.Contains(reason, "message counter") {
				return &Violation{Invariant: InvChurn,
					Detail: fmt.Sprintf("process %s (never reordered, %d severs) killed by the counter check: %s",
						name, p.severs, reason)}
			}
		}
		if p.phase == phaseExited {
			if _, ok := w.v.ProcStats(p.pid); ok {
				return &Violation{Invariant: InvLeak,
					Detail: fmt.Sprintf("verifier still holds a context for exited process %s", name)}
			}
			continue
		}
		if !p.killed && !w.poisoned[w.v.ShardOf(p.pid)] {
			if got := w.v.Messages(p.pid); got < p.expectValidated {
				return &Violation{Invariant: InvLostMessage,
					Detail: fmt.Sprintf("process %s: %d messages delivered but only %d validated (message silently lost)",
						name, p.expectValidated, got)}
			}
		}
	}
	return nil
}

// fingerprint canonicalizes the world state for the DFS seen-set. It reads
// both model bookkeeping and real kernel/verifier state, so two schedules
// that converge to the same protocol state — regardless of how they got
// there — are explored once.
func (w *world) fingerprint() string {
	var b strings.Builder
	for _, name := range w.order {
		p := w.procs[name]
		fmt.Fprintf(&b, "%s|ph%d|k%t|sr%t|gb%t|gd%d|sq%d|ev%d|vm%d|sv%t|sn%d|ro%t|q",
			name, p.phase, p.killed, w.k.SyncReady(p.pid), p.gateBlocked,
			p.gatesDone, p.nextSeq, p.expectValidated, w.v.Messages(p.pid),
			p.severed, p.severs, p.reordered)
		for _, m := range p.queue {
			fmt.Fprintf(&b, "%d.%d,", m.Op, m.Seq)
		}
		b.WriteByte(';')
	}
	for si := 0; si < w.cfg.Shards; si++ {
		if w.poisoned[si] {
			b.WriteByte('!')
		} else {
			b.WriteByte('.')
		}
	}
	return b.String()
}
