// Package verify is a small-scope model checker for the HerQules gate
// protocol: it exhaustively enumerates interleavings of process lifecycle
// events — launch, fork, exit, explicit kill, epoch expiry, shard poison,
// message delivery (optionally reordered), connection sever/resume/lease
// expiry — against the REAL kernel and
// verifier, driven deterministically through the internal/dsched schedule
// hooks, and asserts the paper's core invariants in every reachable state:
//
//   - gate invariant (§2.2/§3.3): no process passes a syscall gate before
//     every message it sent prior to that gate has been validated;
//   - no-lost-message: a message delivered for a live, healthy process is
//     always evaluated (a silently ignored message is how the gate
//     invariant dies without ever looking violated);
//   - exactly-one-kill: a killed process produces exactly one
//     KillListener notification, never zero, never two;
//   - no-leaked-context: once a process has exited, the verifier holds no
//     policy context for it;
//   - gate liveness: a gate whose epoch deadline fires resolves — it is
//     killed (fail-closed) or resumed, never stalled forever;
//   - no-churn-counter-kill: connection churn (sever, resume, lease
//     expiry) never trips the §3.1.1 counter check for a process whose
//     messages the model did not itself reorder — a correct resume
//     protocol replays a gap-free stream.
//
// The checker is stateless in the Godefroid sense: each explored node is
// reconstructed by replaying its transition prefix against a fresh world
// (fresh kernel + verifier + scheduler), so there is no undo logic to trust.
// A seen-set over canonical state fingerprints prunes converging
// interleavings. On violation the failing schedule is minimized by greedy
// delta-debugging and reported in a form Replay accepts verbatim — see
// DESIGN.md "Checking the gate invariant" for how to re-run one.
//
// The small-scope hypothesis (Sotoudeh & Yedidia; the zeonica verify
// harness) is the design bet: protocol bugs in this plane show up with 2–3
// processes and 2 shards or not at all.
package verify

import (
	"fmt"
	"strings"
	"time"
)

// Config bounds the explored scope. The zero value is NOT useful — use
// Defaults() or a scenario from Scenarios() — but any field left zero is
// filled with its default.
type Config struct {
	// Procs is the maximum number of processes alive over a run (launches
	// plus forks). Default 2; the full exploration uses 3.
	Procs int
	// Shards is the verifier shard count. Default 2.
	Shards int
	// MaxSends bounds the non-sync messages each process may send. Default 1.
	MaxSends int
	// MaxGates bounds the gate (syscall) attempts per process. Default 1.
	MaxGates int

	// Transition families. Launch, visibility, send, deliver and gate are
	// always enabled; these opt the rest in.
	Fork    bool // fork a live process (children count toward Procs)
	Exit    bool // voluntary exit (requires a drained queue, as the supervisor guarantees)
	Kill    bool // external kill (supervisor shutdown sweep)
	Expire  bool // fire the epoch timer of a blocked gate at exactly its deadline
	Poison  bool // poison a verifier shard (contained worker panic)
	Reorder bool // deliver the second pending message before the first

	// CheckSeq mirrors verifier.CheckSeq (§3.1.1 counter verification).
	// With Reorder on and CheckSeq off, the gate invariant is violated by
	// design — the configuration used to prove the checker can fail.
	CheckSeq bool

	// Conn enables the connection-churn transitions of the networked
	// attestation plane: disconnect (sever a session's transport
	// mid-stream), connect (resume with replay from the preserved buffer),
	// and lease-expire (the daemon's fail-closed kill of a severed session
	// that never resumes). MaxSevers bounds disconnects per process
	// (default 1).
	Conn      bool
	MaxSevers int

	// UnsafeSeverDrop models a broken resume protocol that trims its replay
	// buffer on write instead of on cumulative ack: a sever drops the
	// oldest unforwarded frame, so the resumed stream carries a counter gap
	// and CheckSeq kills an honest process. The knob exists to prove the
	// churn scope can catch exactly this bug class.
	UnsafeSeverDrop bool

	// UnsafeLateNotify / UnsafeEpochTimer set the kernel's pre-fix revert
	// knobs, so tests can demonstrate the checker catches each fixed race.
	UnsafeLateNotify bool
	UnsafeEpochTimer bool

	// MaxDepth bounds schedule length (default 24). MaxStates bounds unique
	// explored states (default 200000). Hitting either sets
	// Result.Truncated. MaxViolations stops the search after that many
	// violations (default 1 — the first minimal counterexample is the
	// useful one).
	MaxDepth      int
	MaxStates     int
	MaxViolations int

	// AwaitTimeout is the real-time bound on waiting for a woken goroutine
	// to emit its next event; exceeding it is itself reported as a lost
	// wake-up. Default 2s.
	AwaitTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Procs <= 0 {
		c.Procs = 2
	}
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.MaxSends <= 0 {
		c.MaxSends = 1
	}
	if c.MaxGates <= 0 {
		c.MaxGates = 1
	}
	if c.MaxSevers <= 0 {
		c.MaxSevers = 1
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 24
	}
	if c.MaxStates <= 0 {
		c.MaxStates = 200000
	}
	if c.MaxViolations <= 0 {
		c.MaxViolations = 1
	}
	if c.AwaitTimeout <= 0 {
		c.AwaitTimeout = 2 * time.Second
	}
	return c
}

// Defaults is the base 2-proc × 2-shard scope with every transition family
// enabled and CheckSeq on — the configuration `hqbench -exp verify` runs.
// MaxDepth 28 (not the generic 24) is the measured closure depth once the
// connection-churn family is in: longest schedules run launch, visibility,
// sends, gate, delivers, a sever and a resume for both processes.
func Defaults() Config {
	return Config{
		Fork: true, Exit: true, Kill: true, Expire: true, Poison: true,
		Reorder: true, CheckSeq: true, Conn: true, MaxDepth: 28,
	}.withDefaults()
}

// Invariant names reported in Violation.Invariant.
const (
	InvGate        = "gate-invariant"        // gate passed before prior messages validated
	InvLostMessage = "no-lost-message"       // delivered message silently ignored
	InvOneKill     = "exactly-one-kill"      // 0 or 2+ kill notifications for one kill
	InvLeak        = "no-leaked-context"     // verifier context survives exit
	InvLiveness    = "gate-liveness"         // gate stalled past its epoch deadline
	InvStamp       = "liveness-stamp"        // gate passed without stamping LastSyscall
	InvChurn       = "no-churn-counter-kill" // connection churn alone tripped CheckSeq
	InvModel       = "model"                 // the harness itself lost sync with the code
)

// Violation is one invariant failure, carrying the minimized schedule that
// reproduces it from an empty world.
type Violation struct {
	Invariant string
	Detail    string
	Schedule  []string
}

func (v *Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "invariant %s violated: %s\n", v.Invariant, v.Detail)
	b.WriteString("replayable schedule (verify.Replay):\n")
	for i, t := range v.Schedule {
		fmt.Fprintf(&b, "  %2d. %s\n", i+1, t)
	}
	return b.String()
}

// Result summarizes one exploration.
type Result struct {
	StatesExplored     int
	TransitionsApplied int
	Truncated          bool
	Violations         []*Violation
}

// Clean reports whether the exploration finished with no violations.
func (r *Result) Clean() bool { return len(r.Violations) == 0 }

func (r *Result) String() string {
	var b strings.Builder
	status := "CLEAN"
	if !r.Clean() {
		status = fmt.Sprintf("%d VIOLATION(S)", len(r.Violations))
	}
	fmt.Fprintf(&b, "verify: %s — %d states, %d transitions", status, r.StatesExplored, r.TransitionsApplied)
	if r.Truncated {
		b.WriteString(" (truncated by depth/state bound)")
	}
	b.WriteByte('\n')
	for _, v := range r.Violations {
		b.WriteString(v.String())
	}
	return b.String()
}

// Check explores the configured scope exhaustively (up to the bounds) and
// returns what it found. Violating schedules are minimized before being
// reported.
func Check(cfg Config) *Result {
	cfg = cfg.withDefaults()
	c := &checker{cfg: cfg, seen: make(map[string]bool), res: &Result{}}
	c.explore(nil)
	return c.res
}

// Replay applies schedule to a fresh world under cfg and returns the first
// violation encountered (nil if the schedule runs clean). An error means the
// schedule itself is invalid — a transition was not enabled when its turn
// came — which distinguishes a stale schedule from a healthy protocol.
func Replay(cfg Config, schedule []string) (*Violation, error) {
	cfg = cfg.withDefaults()
	w := newWorld(cfg)
	defer w.teardown()
	for i, tr := range schedule {
		viol, err := w.apply(tr)
		if err != nil {
			return nil, fmt.Errorf("verify: schedule step %d (%s): %w", i+1, tr, err)
		}
		if viol == nil {
			viol = w.checkInvariants()
		}
		if viol != nil {
			viol.Schedule = append([]string(nil), schedule[:i+1]...)
			return viol, nil
		}
	}
	return nil, nil
}

type checker struct {
	cfg  Config
	seen map[string]bool
	res  *Result
}

func (c *checker) stopped() bool {
	return len(c.res.Violations) >= c.cfg.MaxViolations ||
		c.res.StatesExplored >= c.cfg.MaxStates
}

// explore is the stateless DFS: the node named by prefix is reconstructed
// by replay, its enabled transitions enumerated, and each successor world
// rebuilt from scratch — replay is the only state-restoration mechanism, so
// there is no undo code whose correctness the checker would itself depend
// on.
func (c *checker) explore(prefix []string) {
	if c.stopped() {
		return
	}
	if len(prefix) >= c.cfg.MaxDepth {
		c.res.Truncated = true
		return
	}
	w := newWorld(c.cfg)
	for _, tr := range prefix {
		if _, err := w.apply(tr); err != nil {
			// A prefix that explored cleanly must replay cleanly; anything
			// else means nondeterminism leaked into the harness.
			c.report(&Violation{Invariant: InvModel,
				Detail: fmt.Sprintf("prefix replay diverged at %q: %v", tr, err)}, prefix)
			w.teardown()
			return
		}
	}
	enabled := w.enabled()
	w.teardown()

	for _, tr := range enabled {
		if c.stopped() {
			return
		}
		next := append(append(make([]string, 0, len(prefix)+1), prefix...), tr)
		w2 := newWorld(c.cfg)
		replayOK := true
		for _, pt := range prefix {
			if _, err := w2.apply(pt); err != nil {
				replayOK = false
				break
			}
		}
		if !replayOK {
			w2.teardown()
			continue
		}
		viol, err := w2.apply(tr)
		c.res.TransitionsApplied++
		if err != nil {
			w2.teardown()
			continue
		}
		if viol == nil {
			viol = w2.checkInvariants()
		}
		if viol != nil {
			w2.teardown()
			c.report(viol, next)
			continue
		}
		fp := w2.fingerprint()
		w2.teardown()
		if c.seen[fp] {
			continue
		}
		c.seen[fp] = true
		c.res.StatesExplored++
		c.explore(next)
	}
}

func (c *checker) report(v *Violation, schedule []string) {
	v.Schedule = minimize(c.cfg, schedule, v.Invariant)
	c.res.Violations = append(c.res.Violations, v)
}

// minimize greedily delta-debugs a violating schedule: repeatedly drop any
// single transition whose removal still reproduces a violation of the same
// invariant, until no single removal does. The result is 1-minimal — every
// remaining transition is necessary.
func minimize(cfg Config, schedule []string, invariant string) []string {
	sched := append([]string(nil), schedule...)
	for changed := true; changed; {
		changed = false
		for i := range sched {
			cand := make([]string, 0, len(sched)-1)
			cand = append(cand, sched[:i]...)
			cand = append(cand, sched[i+1:]...)
			if reproduces(cfg, cand, invariant) {
				sched = cand
				changed = true
				break
			}
		}
	}
	return sched
}

func reproduces(cfg Config, schedule []string, invariant string) bool {
	v, err := Replay(cfg, schedule)
	return err == nil && v != nil && v.Invariant == invariant
}
