package verify

import (
	"strings"
	"testing"
)

// TestBaseScopeClean explores the always-on families (launch, visibility,
// send, deliver, gate) at the default 2-proc × 2-shard scope with all fixes
// in place: no reachable interleaving violates an invariant.
func TestBaseScopeClean(t *testing.T) {
	res := Check(Config{CheckSeq: true})
	if !res.Clean() {
		t.Fatalf("base scope not clean:\n%s", res)
	}
	if res.StatesExplored == 0 {
		t.Fatal("exploration visited no states")
	}
	t.Logf("base scope: %d states, %d transitions", res.StatesExplored, res.TransitionsApplied)
}

// TestLifecycleScopeClean adds the lifecycle families — fork, exit, kill,
// epoch expiry, shard poison — still clean. This is the scope that exercises
// the two fixed races (registration-window kill buffering, epoch timer
// re-arm) from every reachable direction.
func TestLifecycleScopeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("lifecycle exploration is the slow half; run without -short")
	}
	cfg := Config{
		Fork: true, Exit: true, Kill: true, Expire: true, Poison: true,
		CheckSeq:  true,
		MaxDepth:  10,
		MaxStates: 3000,
	}
	res := Check(cfg)
	if !res.Clean() {
		t.Fatalf("lifecycle scope not clean:\n%s", res)
	}
	t.Logf("lifecycle scope: %d states, %d transitions, truncated=%v",
		res.StatesExplored, res.TransitionsApplied, res.Truncated)
}

// TestReorderWithCheckSeqClean: with §3.1.1 counter verification on, a
// reordered delivery is caught as an integrity violation (fatal kill), so
// the gate invariant holds in every interleaving — including sync-overtakes-
// data, which the registration-time seq baseline fix is what makes fatal.
func TestReorderWithCheckSeqClean(t *testing.T) {
	cfg := Config{Reorder: true, CheckSeq: true, MaxDepth: 12, MaxStates: 4000}
	res := Check(cfg)
	if !res.Clean() {
		t.Fatalf("reorder under CheckSeq not clean:\n%s", res)
	}
}

// TestCheckerCatchesReorderWithoutCheckSeq proves the checker can fail: with
// counter verification off, delivering the sync ahead of a data message lets
// the gate pass before that message is validated — the gate invariant
// violation the paper's counter exists to prevent.
func TestCheckerCatchesReorderWithoutCheckSeq(t *testing.T) {
	cfg := Config{Reorder: true, CheckSeq: false, MaxDepth: 12, MaxStates: 4000}
	res := Check(cfg)
	if res.Clean() {
		t.Fatal("reorder without CheckSeq explored clean; the checker cannot detect a gate violation")
	}
	v := res.Violations[0]
	if v.Invariant != InvGate {
		t.Fatalf("violation invariant = %s, want %s\n%s", v.Invariant, InvGate, v)
	}
	// The minimized schedule must actually replay to the same violation.
	rv, err := Replay(cfg, v.Schedule)
	if err != nil {
		t.Fatalf("minimized schedule does not replay: %v", err)
	}
	if rv == nil || rv.Invariant != InvGate {
		t.Fatalf("minimized schedule replayed to %v, want %s", rv, InvGate)
	}
	t.Logf("minimal gate-violation schedule:\n%s", v)
}

// TestCheckerCatchesLateNotifyRace re-introduces the pre-fix registration
// ordering (kernel context visible before the verifier is notified) via the
// UnsafeLateNotify knob: a message sent in the registration window is
// silently ignored by the verifier, and the checker reports the lost
// message with a minimal schedule.
func TestCheckerCatchesLateNotifyRace(t *testing.T) {
	cfg := Config{UnsafeLateNotify: true, CheckSeq: true, MaxDepth: 8, MaxStates: 2000}
	res := Check(cfg)
	if res.Clean() {
		t.Fatal("UnsafeLateNotify explored clean; the registration race is not being caught")
	}
	v := res.Violations[0]
	if v.Invariant != InvLostMessage {
		t.Fatalf("violation invariant = %s, want %s\n%s", v.Invariant, InvLostMessage, v)
	}
	// Greedy minimization must reduce this to its 3-step essence:
	// launch (park in the window), send, deliver.
	if len(v.Schedule) != 3 {
		t.Errorf("minimal schedule has %d steps, want 3:\n%s", len(v.Schedule), v)
	}
	for i, want := range []string{"launch:", "send:", "deliver:"} {
		if i < len(v.Schedule) && !strings.HasPrefix(v.Schedule[i], want) {
			t.Errorf("schedule step %d = %q, want prefix %q", i+1, v.Schedule[i], want)
		}
	}
}

// TestCheckerCatchesEpochTimerStall re-introduces the pre-fix epoch watchdog
// (timer armed once, waiter re-checks with a strict After) via
// UnsafeEpochTimer: firing the timer at exactly the deadline broadcasts
// once, the waiter re-enters its wait with no future wake-up, and the gate
// stalls forever — the liveness violation the re-arm fix removes.
func TestCheckerCatchesEpochTimerStall(t *testing.T) {
	cfg := Config{Expire: true, UnsafeEpochTimer: true, CheckSeq: true,
		MaxDepth: 8, MaxStates: 2000}
	res := Check(cfg)
	if res.Clean() {
		t.Fatal("UnsafeEpochTimer explored clean; the timer stall is not being caught")
	}
	v := res.Violations[0]
	if v.Invariant != InvLiveness {
		t.Fatalf("violation invariant = %s, want %s\n%s", v.Invariant, InvLiveness, v)
	}
	t.Logf("minimal stall schedule:\n%s", v)
}

// TestExpireScopeCleanWithFix is the counterpart: same scope, fixed timer —
// expiry at the exact deadline resolves the gate (fail-closed kill), clean.
func TestExpireScopeCleanWithFix(t *testing.T) {
	cfg := Config{Expire: true, CheckSeq: true, MaxDepth: 8, MaxStates: 2000}
	res := Check(cfg)
	if !res.Clean() {
		t.Fatalf("expire scope with fixed timer not clean:\n%s", res)
	}
}

// TestChurnScopeClean explores the connection-churn family — disconnect,
// resume-with-replay, lease expiry — exhaustively at single-process scope
// with CheckSeq on: however the connection churns, the preserved replay
// buffer keeps the counter stream gap-free and no honest process is killed
// by the counter check.
func TestChurnScopeClean(t *testing.T) {
	cfg := Config{Procs: 1, Conn: true, Expire: true, Kill: true,
		CheckSeq: true, MaxSends: 2, MaxDepth: 16, MaxStates: 100000}
	res := Check(cfg)
	if !res.Clean() {
		t.Fatalf("churn scope not clean:\n%s", res)
	}
	if res.Truncated {
		t.Fatal("churn scope truncated; it is expected to close exhaustively")
	}
	t.Logf("churn scope: %d states, %d transitions", res.StatesExplored, res.TransitionsApplied)
}

// TestCheckerCatchesSeverDrop proves the churn scope can fail: with
// UnsafeSeverDrop modeling a resume protocol that trims its replay buffer on
// write instead of on cumulative ack, a sever loses the oldest unforwarded
// frame, the resumed stream carries a counter gap, and CheckSeq kills an
// honest process — the no-churn-counter-kill violation.
func TestCheckerCatchesSeverDrop(t *testing.T) {
	cfg := Config{Conn: true, UnsafeSeverDrop: true, CheckSeq: true,
		MaxSends: 2, MaxDepth: 10, MaxStates: 4000}
	res := Check(cfg)
	if res.Clean() {
		t.Fatal("UnsafeSeverDrop explored clean; churn-induced counter kills are not being caught")
	}
	v := res.Violations[0]
	if v.Invariant != InvChurn {
		t.Fatalf("violation invariant = %s, want %s\n%s", v.Invariant, InvChurn, v)
	}
	// The minimized schedule must replay to the same violation, and must
	// actually contain the sever/resume pair — a counterexample without
	// churn would mean the invariant is tripping on something else.
	rv, err := Replay(cfg, v.Schedule)
	if err != nil {
		t.Fatalf("minimized schedule does not replay: %v", err)
	}
	if rv == nil || rv.Invariant != InvChurn {
		t.Fatalf("minimized schedule replayed to %v, want %s", rv, InvChurn)
	}
	var sawDisconnect, sawConnect bool
	for _, tr := range v.Schedule {
		sawDisconnect = sawDisconnect || strings.HasPrefix(tr, "disconnect:")
		sawConnect = sawConnect || strings.HasPrefix(tr, "connect:")
	}
	if !sawDisconnect || !sawConnect {
		t.Fatalf("minimal schedule lacks the sever/resume pair:\n%s", v)
	}
	t.Logf("minimal churn-kill schedule:\n%s", v)
}

// TestLeaseExpireReleasesBlockedGate replays the fail-closed path directly: a
// process blocks at its gate (sync still queued), its connection severs, and
// the lease expires — the kill must release the blocked gate rather than
// strand it, and the same schedule with a resume instead of an expiry ends
// with the process alive and the gate passed.
func TestLeaseExpireReleasesBlockedGate(t *testing.T) {
	cfg := Config{Conn: true, CheckSeq: true}
	v, err := Replay(cfg, []string{
		"launch:A", "visible:A", "gate:A", "disconnect:A", "lease-expire:A"})
	if err != nil {
		t.Fatalf("lease-expiry schedule failed to replay: %v", err)
	}
	if v != nil {
		t.Fatalf("lease-expiry schedule reported a violation:\n%s", v)
	}
	v, err = Replay(cfg, []string{
		"launch:A", "visible:A", "gate:A", "disconnect:A", "connect:A", "deliver:A"})
	if err != nil {
		t.Fatalf("resume schedule failed to replay: %v", err)
	}
	if v != nil {
		t.Fatalf("resume schedule reported a violation:\n%s", v)
	}
}

// TestReplayRecordedSchedule replays a schedule recorded from a real
// violating run (the UnsafeLateNotify lost-message counterexample) and
// asserts Replay reproduces the violation deterministically — the workflow a
// developer follows when the checker prints a schedule.
func TestReplayRecordedSchedule(t *testing.T) {
	cfg := Config{UnsafeLateNotify: true, CheckSeq: true}
	v, err := Replay(cfg, []string{"launch:A", "send:A", "deliver:A"})
	if err != nil {
		t.Fatalf("recorded schedule failed to replay: %v", err)
	}
	if v == nil {
		t.Fatal("recorded schedule replayed clean; want lost-message violation")
	}
	if v.Invariant != InvLostMessage {
		t.Fatalf("replayed invariant = %s, want %s", v.Invariant, InvLostMessage)
	}
	// The same schedule against the FIXED kernel is clean: the verifier
	// learns the pid before the registration window opens.
	fixed := Config{CheckSeq: true}
	if v, err := Replay(fixed, []string{"launch:A", "send:A", "deliver:A"}); err != nil || v != nil {
		t.Fatalf("fixed kernel replay: violation=%v err=%v, want clean", v, err)
	}
}

// TestReplayStaleScheduleErrors: a schedule referencing state that does not
// exist must error (not panic, not report a bogus violation) — this is how
// Replay distinguishes a stale schedule from a healthy protocol.
func TestReplayStaleScheduleErrors(t *testing.T) {
	if _, err := Replay(Config{CheckSeq: true}, []string{"visible:A"}); err == nil {
		t.Fatal("stale schedule (visible before launch) replayed without error")
	}
	if _, err := Replay(Config{CheckSeq: true}, []string{"launch:A", "frobnicate:A"}); err == nil {
		t.Fatal("unknown transition replayed without error")
	}
}
