package ipc

import (
	"context"
	"errors"
	"testing"
	"time"
)

// The RetryBackoff contract is total over int: out-of-domain attempt values
// must clamp to the bottom of the ladder, not overflow onto the cap.
func TestRetryBackoffBoundaries(t *testing.T) {
	base := RetryBackoff(1)
	if base != time.Microsecond {
		t.Errorf("RetryBackoff(1) = %v, want the 1µs base", base)
	}
	// attempt <= 0 is out of domain (attempts are 1-based); the historical
	// behavior shifted by ~2^64 and landed on RetryBackoffMax by signed
	// overflow. The contract now clamps low, matching attempt 1.
	for _, n := range []int{0, -1, -1 << 40} {
		if d := RetryBackoff(n); d != base {
			t.Errorf("RetryBackoff(%d) = %v, want clamp to base %v", n, d, base)
		}
	}
	// Top of the ladder: 1µs doubling caps at 1ms by attempt 11.
	if d := RetryBackoff(11); d != RetryBackoffMax {
		t.Errorf("RetryBackoff(11) = %v, want saturation at %v", d, RetryBackoffMax)
	}
	// Shift-overflow territory: attempts past 63 would shift out of int64
	// entirely; they must still saturate, not wrap.
	for _, n := range []int{31, 63, 64, 1 << 20, 1<<63 - 1} {
		if d := RetryBackoff(n); d != RetryBackoffMax {
			t.Errorf("RetryBackoff(%d) = %v, want saturation at %v", n, d, RetryBackoffMax)
		}
	}
}

// JitteredBackoff draws under the deterministic envelope: positive, never
// above RetryBackoff(n), and not constant (otherwise it is not jitter and
// the retry stampede it exists to break re-forms).
func TestJitteredBackoffUnderEnvelope(t *testing.T) {
	for _, n := range []int{0, 1, 4, 11, 64} {
		ceil := RetryBackoff(n)
		varied := false
		first := JitteredBackoff(n)
		for i := 0; i < 256; i++ {
			d := JitteredBackoff(n)
			if d <= 0 || d > ceil {
				t.Fatalf("JitteredBackoff(%d) = %v, outside (0, %v]", n, d, ceil)
			}
			if d != first {
				varied = true
			}
		}
		if !varied && ceil > 1 {
			t.Errorf("JitteredBackoff(%d) returned %v 257 times; jitter is not jittering", n, first)
		}
	}
}

func TestSendWithRetryCtxCancelInterruptsBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Pre-canceled context: no Send at all.
	s := &flakySender{failures: 1 << 30}
	err := SendWithRetryCtx(ctx, s, Message{Op: OpCounterInc}, 0)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled context: err = %v, want context.Canceled", err)
	}
	if s.attempts != 0 {
		t.Errorf("pre-canceled context still attempted %d sends", s.attempts)
	}
	// Cancellation is terminal, not transient: a retry loop above this one
	// must not spin on a canceled context.
	if IsTransient(err) {
		t.Error("context cancellation classified transient")
	}

	// Cancel mid-ladder: the sleep must be interrupted promptly even though
	// the transient failures would otherwise burn the whole budget.
	ctx2, cancel2 := context.WithCancel(context.Background())
	s2 := &flakySender{failures: 1 << 30}
	done := make(chan error, 1)
	go func() { done <- SendWithRetryCtx(ctx2, s2, Message{Op: OpCounterInc}, 1<<20) }()
	time.Sleep(2 * time.Millisecond)
	cancel2()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-ladder cancel: err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SendWithRetryCtx did not observe cancellation")
	}
}

func TestSendWithRetryCtxMatchesUncanceledSemantics(t *testing.T) {
	s := &flakySender{failures: 2}
	if err := SendWithRetryCtx(context.Background(), s, Message{Op: OpCounterInc}, 4); err != nil {
		t.Fatalf("retry within budget failed: %v", err)
	}
	if len(s.sent) != 1 || s.attempts != 3 {
		t.Errorf("sent=%d attempts=%d, want 1 message on the 3rd attempt", len(s.sent), s.attempts)
	}
	// Exhaustion stays terminal and non-transient through the ctx variant.
	s2 := &flakySender{failures: 1 << 30}
	err := SendWithRetryCtx(context.Background(), s2, Message{}, 3)
	if err == nil || IsTransient(err) {
		t.Errorf("exhausted budget: err = %v, want terminal non-transient", err)
	}
}
