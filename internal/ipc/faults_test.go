package ipc

import (
	"errors"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"herqules/internal/telemetry"
)

// fdFramingPair builds an instrumented fd channel over a raw pipe so tests
// can write arbitrary (including corrupt) bytes at the sender side.
func fdFramingPair(t *testing.T) (*os.File, *Channel, *telemetry.Metrics) {
	t.Helper()
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Skip("pipes unavailable")
	}
	m := telemetry.New(1)
	ch := &Channel{
		Sender:   &fdSender{w: pw, pending: new(atomic.Int64)},
		Receiver: newFDReceiver(pr, new(atomic.Int64)),
	}
	ch.EnableTelemetry(m)
	return pw, ch, m
}

func TestTruncatedFrameIsTerminalError(t *testing.T) {
	// A stream that ends mid-frame has lost (possibly violating) message
	// bytes: the receiver must surface a terminal integrity error — never
	// silently skip the trailing bytes, never panic — and count it.
	pw, ch, m := fdFramingPair(t)
	var frame [MessageSize]byte
	Message{Op: OpCounterInc, Arg1: 7, Seq: 1}.Encode(frame[:])
	if _, err := pw.Write(frame[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := pw.Write(frame[:MessageSize/2]); err != nil { // torn frame
		t.Fatal(err)
	}
	pw.Close()

	buf := make([]Message, 4)
	k, ok, err := RecvBatchFrom(ch.Receiver, buf)
	if k != 1 || err != nil {
		t.Fatalf("whole frame before truncation: k=%d ok=%t err=%v", k, ok, err)
	}
	k, ok, err = RecvBatchFrom(ch.Receiver, buf)
	if k != 0 || ok || err == nil {
		t.Fatalf("truncated tail: k=%d ok=%t err=%v, want terminal error", k, ok, err)
	}
	if !errors.Is(err, ErrIntegrity) {
		t.Errorf("truncation error %v does not wrap ErrIntegrity", err)
	}
	if IsTransient(err) {
		t.Error("truncation classified transient: a retry would re-read a corrupt stream")
	}
	if v := m.Snapshot().Counters["ipc.frame_errors"].Total; v != 1 {
		t.Errorf("ipc.frame_errors = %d, want 1", v)
	}
}

func TestGarbageBytesAreTerminalError(t *testing.T) {
	// Corruption inside a full-size frame (an op code no backend emits)
	// cannot be resynchronized — every later frame boundary is suspect. The
	// receiver must deliver the preceding intact frames, then fail terminally.
	pw, ch, m := fdFramingPair(t)
	var good [MessageSize]byte
	Message{Op: OpPointerDefine, Arg1: 0x10, Arg2: 0x20, Seq: 1}.Encode(good[:])
	garbage := make([]byte, MessageSize)
	for i := range garbage {
		garbage[i] = 0xff
	}
	if _, err := pw.Write(good[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := pw.Write(garbage); err != nil {
		t.Fatal(err)
	}
	pw.Close()

	buf := make([]Message, 4)
	k, ok, err := RecvBatchFrom(ch.Receiver, buf)
	if err == nil {
		// Both frames arrived in one burst on most kernels; if the read tore
		// between them the first call returns the good frame cleanly.
		if k != 1 || buf[0].Seq != 1 {
			t.Fatalf("first burst: k=%d ok=%t err=%v", k, ok, err)
		}
		k, ok, err = RecvBatchFrom(ch.Receiver, buf)
	} else if k != 1 || buf[0].Seq != 1 {
		t.Fatalf("intact frame preceding garbage not delivered: k=%d err=%v", k, err)
	}
	if ok || err == nil {
		t.Fatalf("garbage frame: ok=%t err=%v, want terminal error", ok, err)
	}
	if !errors.Is(err, ErrIntegrity) {
		t.Errorf("decode error %v does not wrap ErrIntegrity", err)
	}
	if IsTransient(err) {
		t.Error("decode failure classified transient")
	}
	if v := m.Snapshot().Counters["ipc.frame_errors"].Total; v != 1 {
		t.Errorf("ipc.frame_errors = %d, want 1", v)
	}
}

func TestTransientClassification(t *testing.T) {
	base := errors.New("queue momentarily full")
	if !IsTransient(Transient(base)) {
		t.Error("Transient-wrapped error not classified transient")
	}
	if !errors.Is(Transient(base), base) {
		t.Error("Transient wrapper hides the underlying error from errors.Is")
	}
	if Transient(nil) != nil {
		t.Error("Transient(nil) != nil")
	}
	// Everything not explicitly wrapped is terminal — the enforcement path
	// fails closed on anything it cannot positively classify as retryable.
	for _, err := range []error{ErrClosed, ErrIntegrity, base,
		&ProcessError{PID: 1, Err: ErrIntegrity}} {
		if IsTransient(err) {
			t.Errorf("%v classified transient", err)
		}
	}
}

// flakySender fails the first n Sends transiently, then succeeds.
type flakySender struct {
	failures int
	attempts int
	sent     []Message
}

func (s *flakySender) Send(m Message) error {
	s.attempts++
	if s.attempts <= s.failures {
		return Transient(errors.New("flaky"))
	}
	s.sent = append(s.sent, m)
	return nil
}

func (s *flakySender) Close() error { return nil }

func TestSendWithRetryRecoversFromTransientFaults(t *testing.T) {
	s := &flakySender{failures: 2}
	if err := SendWithRetry(s, Message{Op: OpCounterInc}, 4); err != nil {
		t.Fatalf("retry within budget failed: %v", err)
	}
	if len(s.sent) != 1 || s.attempts != 3 {
		t.Errorf("sent=%d attempts=%d, want 1 message on the 3rd attempt", len(s.sent), s.attempts)
	}
}

func TestSendWithRetryExhaustionIsTerminal(t *testing.T) {
	s := &flakySender{failures: 1 << 30}
	err := SendWithRetry(s, Message{Op: OpCounterInc}, 3)
	if err == nil {
		t.Fatal("persistently failing sender reported success")
	}
	if s.attempts != 3 {
		t.Errorf("attempts = %d, want exactly 3", s.attempts)
	}
	// The exhausted budget converts the transient failure to a terminal one:
	// callers must not loop on it.
	if IsTransient(err) {
		t.Errorf("exhausted retry budget still transient: %v", err)
	}
	// A terminal error short-circuits the budget.
	s2 := &closedSender{}
	if err := SendWithRetry(s2, Message{}, 5); !errors.Is(err, ErrClosed) {
		t.Errorf("terminal error not returned immediately: %v", err)
	}
	if s2.attempts != 1 {
		t.Errorf("terminal error retried %d times", s2.attempts)
	}
}

type closedSender struct{ attempts int }

func (s *closedSender) Send(Message) error { s.attempts++; return ErrClosed }
func (s *closedSender) Close() error       { return nil }

func TestRetryBackoffIsBoundedAndMonotone(t *testing.T) {
	prev := time.Duration(0)
	for n := 1; n <= 64; n++ {
		d := RetryBackoff(n)
		if d <= 0 || d > RetryBackoffMax {
			t.Fatalf("RetryBackoff(%d) = %v, outside (0, %v]", n, d, RetryBackoffMax)
		}
		if d < prev {
			t.Fatalf("RetryBackoff(%d) = %v < RetryBackoff(%d) = %v", n, d, n-1, prev)
		}
		prev = d
	}
	if RetryBackoff(1000) != RetryBackoffMax {
		t.Error("large attempt counts must saturate at RetryBackoffMax")
	}
}

func TestSpinWaitBoundsCPUBurn(t *testing.T) {
	// The LWC switch model must still wait out its calibrated duration, but a
	// long wait may not hot-loop: past the iteration budget the remainder is
	// slept, so the loop-iteration count — a proxy for cycles burned polling
	// time.Now — stays bounded no matter how large d is. (The old
	// implementation spun ~d/Gosched-latency iterations, pinning a core.)
	const wait = 50 * time.Millisecond
	start := time.Now()
	iters := spinWait(wait)
	elapsed := time.Since(start)
	if elapsed < wait {
		t.Errorf("spinWait returned after %v, want >= %v", elapsed, wait)
	}
	// One extra iteration is possible when Sleep wakes marginally early.
	if iters > spinIterBudget+8 {
		t.Errorf("spinWait burned %d iterations, budget is %d", iters, spinIterBudget)
	}
	// The typical in-calibration wait resolves within the spin phase.
	if iters := spinWait(time.Microsecond); iters > spinIterBudget+8 {
		t.Errorf("short wait burned %d iterations", iters)
	}
}
