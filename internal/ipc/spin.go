package ipc

import (
	"runtime"
	"time"
)

// spinIterBudget bounds the cooperative-spin phase of the wait helpers below:
// past it a wait sleeps instead of burning further cycles. Shared by the
// fixed-duration spinWait (the LWC switch model) and the condition-poll
// pollBackoff (ring full/empty waits).
const spinIterBudget = 256

// pollSleepQuantum is one sleep step of a poll loop that has exhausted its
// cooperative-spin budget. Small enough that a stalled producer or consumer
// resumes with microsecond-scale latency once the condition clears, large
// enough that a long stall costs scheduler wakeups, not a pinned core.
const pollSleepQuantum = 20 * time.Microsecond

// pollBackoff paces an unbounded condition-poll loop (ring full on send, ring
// empty on receive): the first spinIterBudget pauses yield the processor to
// runnable goroutines — the common case resolves here, because the peer is
// usually about to run — and every pause after that sleeps pollSleepQuantum.
// A stalled peer therefore costs bounded CPU instead of pinning a core, which
// is what used to happen when a wedged verifier left a producer hot-spinning
// runtime.Gosched in SharedRing.Send. Declare a fresh pollBackoff per wait
// episode; it must not be shared across goroutines.
type pollBackoff struct{ iters int }

// pause burns one backoff step.
func (b *pollBackoff) pause() {
	b.iters++
	if b.iters <= spinIterBudget {
		runtime.Gosched()
		return
	}
	time.Sleep(pollSleepQuantum)
}

// spinWait waits for roughly d and returns how many loop iterations it took.
// The typical LWC switch (~2µs) resolves inside the cooperative-spin phase —
// runtime.Gosched yields the processor to runnable goroutines instead of hot-
// looping on time.Now — which keeps the Table 2 calibration intact; any wait
// that outlives the iteration budget sleeps out the remainder, so the CPU
// burned per call is bounded by the budget no matter how large d is (the old
// `for time.Now().Before(deadline) {}` pinned a core for the full duration).
func spinWait(d time.Duration) (iters int) {
	deadline := time.Now().Add(d)
	for {
		now := time.Now()
		if !now.Before(deadline) {
			return iters
		}
		iters++
		if iters <= spinIterBudget {
			runtime.Gosched()
			continue
		}
		// Budget burnt: hand the remainder to the scheduler. One sleep
		// normally suffices; the loop re-checks in case Sleep wakes early.
		time.Sleep(deadline.Sub(now))
	}
}
