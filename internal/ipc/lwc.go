package ipc

import (
	"runtime"
	"sync"
	"time"
)

// LWCSwitchNanos is the cost of one light-weight-context switch as measured
// by Litton et al. (OSDI '16) and quoted in Table 2. A disjoint-address-space
// design pays this cost twice per message — switching to the verifier's
// context and back — on the monitored program's critical path.
const LWCSwitchNanos = 2010

// lwcChannel models delivering messages through light-weight contexts: each
// Send performs two context switches (to the verifier and back), modelled as
// calibrated busy-waits, then hands the message over synchronously. It
// demonstrates why even the fastest disjoint-address-space primitive is
// unusable for high-frequency event streams (§2.3).
type lwcChannel struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool
	seq    uint64
}

// NewLWC constructs the light-weight-context model channel.
func NewLWC() *Channel {
	c := &lwcChannel{}
	c.cond = sync.NewCond(&c.mu)
	return &Channel{Sender: c, Receiver: c, Props: Properties{
		Name:            "Light-Weight Contexts",
		AppendOnly:      true,
		AsyncValidation: false,
		PrimaryCost:     "context switch",
		SendNanos:       2 * LWCSwitchNanos,
	}}
}

func (c *lwcChannel) Send(m Message) error {
	// Switch into the verifier's context, deliver, switch back.
	spinWait(LWCSwitchNanos * time.Nanosecond)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.seq++
	m.Seq = c.seq
	c.queue = append(c.queue, m)
	c.cond.Signal()
	c.mu.Unlock()
	spinWait(LWCSwitchNanos * time.Nanosecond)
	return nil
}

func (c *lwcChannel) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.cond.Broadcast()
	return nil
}

func (c *lwcChannel) Recv() (Message, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.queue) == 0 && !c.closed {
		c.cond.Wait()
	}
	if len(c.queue) == 0 {
		return Message{}, false, nil
	}
	m := c.queue[0]
	c.queue = c.queue[1:]
	return m, true, nil
}

func (c *lwcChannel) TryRecv() (Message, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queue) == 0 {
		return Message{}, false, nil
	}
	m := c.queue[0]
	c.queue = c.queue[1:]
	return m, true, nil
}

// RecvBatch implements BatchReceiver. The sender already paid the context
// switches; the verifier side drains whole bursts under one lock round.
func (c *lwcChannel) RecvBatch(out []Message) (int, bool, error) {
	if len(out) == 0 {
		return 0, true, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.queue) == 0 && !c.closed {
		c.cond.Wait()
	}
	if len(c.queue) == 0 {
		return 0, false, nil
	}
	n := copy(out, c.queue)
	c.queue = c.queue[n:]
	return n, true, nil
}

// Pending implements Pender.
func (c *lwcChannel) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

var (
	_ BatchReceiver = (*lwcChannel)(nil)
	_ Pender        = (*lwcChannel)(nil)
)

// spinIterBudget bounds the cooperative-spin phase of spinWait: past it the
// wait sleeps out the remainder instead of burning further cycles.
const spinIterBudget = 256

// spinWait waits for roughly d and returns how many loop iterations it took.
// The typical LWC switch (~2µs) resolves inside the cooperative-spin phase —
// runtime.Gosched yields the processor to runnable goroutines instead of hot-
// looping on time.Now — which keeps the Table 2 calibration intact; any wait
// that outlives the iteration budget sleeps out the remainder, so the CPU
// burned per call is bounded by the budget no matter how large d is (the old
// `for time.Now().Before(deadline) {}` pinned a core for the full duration).
func spinWait(d time.Duration) (iters int) {
	deadline := time.Now().Add(d)
	for {
		now := time.Now()
		if !now.Before(deadline) {
			return iters
		}
		iters++
		if iters <= spinIterBudget {
			runtime.Gosched()
			continue
		}
		// Budget burnt: hand the remainder to the scheduler. One sleep
		// normally suffices; the loop re-checks in case Sleep wakes early.
		time.Sleep(deadline.Sub(now))
	}
}
