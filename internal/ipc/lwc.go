package ipc

import (
	"sync"
	"time"
)

// LWCSwitchNanos is the cost of one light-weight-context switch as measured
// by Litton et al. (OSDI '16) and quoted in Table 2. A disjoint-address-space
// design pays this cost twice per message — switching to the verifier's
// context and back — on the monitored program's critical path.
const LWCSwitchNanos = 2010

// lwcChannel models delivering messages through light-weight contexts: each
// Send performs two context switches (to the verifier and back), modelled as
// calibrated busy-waits, then hands the message over synchronously. It
// demonstrates why even the fastest disjoint-address-space primitive is
// unusable for high-frequency event streams (§2.3).
type lwcChannel struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool
	seq    uint64
}

// NewLWC constructs the light-weight-context model channel.
func NewLWC() *Channel {
	c := &lwcChannel{}
	c.cond = sync.NewCond(&c.mu)
	return &Channel{Sender: c, Receiver: c, Props: Properties{
		Name:            "Light-Weight Contexts",
		AppendOnly:      true,
		AsyncValidation: false,
		PrimaryCost:     "context switch",
		SendNanos:       2 * LWCSwitchNanos,
	}}
}

func (c *lwcChannel) Send(m Message) error {
	// Switch into the verifier's context, deliver, switch back.
	spinWait(LWCSwitchNanos * time.Nanosecond)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.seq++
	m.Seq = c.seq
	c.queue = append(c.queue, m)
	c.cond.Signal()
	c.mu.Unlock()
	spinWait(LWCSwitchNanos * time.Nanosecond)
	return nil
}

func (c *lwcChannel) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.cond.Broadcast()
	return nil
}

func (c *lwcChannel) Recv() (Message, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.queue) == 0 && !c.closed {
		c.cond.Wait()
	}
	if len(c.queue) == 0 {
		return Message{}, false, nil
	}
	m := c.queue[0]
	c.queue = c.queue[1:]
	return m, true, nil
}

func (c *lwcChannel) TryRecv() (Message, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queue) == 0 {
		return Message{}, false, nil
	}
	m := c.queue[0]
	c.queue = c.queue[1:]
	return m, true, nil
}

// RecvBatch implements BatchReceiver. The sender already paid the context
// switches; the verifier side drains whole bursts under one lock round.
func (c *lwcChannel) RecvBatch(out []Message) (int, bool, error) {
	if len(out) == 0 {
		return 0, true, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.queue) == 0 && !c.closed {
		c.cond.Wait()
	}
	if len(c.queue) == 0 {
		return 0, false, nil
	}
	n := copy(out, c.queue)
	c.queue = c.queue[n:]
	return n, true, nil
}

// Pending implements Pender.
func (c *lwcChannel) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

var (
	_ BatchReceiver = (*lwcChannel)(nil)
	_ Pender        = (*lwcChannel)(nil)
)
