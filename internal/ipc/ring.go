package ipc

import (
	"sync/atomic"
)

// SharedRing is a single-producer single-consumer circular buffer modelling
// the "Shared Memory" row of Table 2: the fastest software primitive (a send
// is one memory write), but *not* append-only — the writer retains access to
// every unread slot and can rewrite or erase messages before the verifier
// reads them. The Corrupt method exposes exactly that weakness so tests and
// examples can demonstrate why raw shared memory is unsuitable for HerQules.
type SharedRing struct {
	slots []Message
	mask  uint64

	head   atomic.Uint64 // next slot to write
	tail   atomic.Uint64 // next slot to read
	closed atomic.Bool

	seq uint64 // sender-side message counter (forgeable: sender-managed)
}

var (
	_ Sender        = (*SharedRing)(nil)
	_ Receiver      = (*SharedRing)(nil)
	_ TryReceiver   = (*SharedRing)(nil)
	_ BatchReceiver = (*SharedRing)(nil)
	_ Pender        = (*SharedRing)(nil)
)

// Shared-ring capacity bounds: requests are clamped into [MinRingCapacity,
// MaxRingCapacity] before rounding up to a power of two. The clamp is
// correctness, not just hygiene: a negative capacity converted to uint64 is
// huge, and the round-up loop would shift n to zero and spin forever.
const (
	MinRingCapacity = 8
	MaxRingCapacity = 1 << 20
)

// NewSharedRing creates a shared-memory ring with capacity clamped to
// [MinRingCapacity, MaxRingCapacity] and rounded up to a power of two, and
// returns it as a Channel: the same object serves as both endpoints, exactly
// like a memory region mapped into two processes.
func NewSharedRing(capacity int) *Channel {
	if capacity < MinRingCapacity {
		capacity = MinRingCapacity
	}
	if capacity > MaxRingCapacity {
		capacity = MaxRingCapacity
	}
	n := uint64(MinRingCapacity)
	for n < uint64(capacity) {
		n <<= 1
	}
	r := &SharedRing{slots: make([]Message, n), mask: n - 1}
	return &Channel{Sender: r, Receiver: r, Props: Properties{
		Name:            "Shared Memory",
		AppendOnly:      false,
		AsyncValidation: true,
		PrimaryCost:     "memory write",
		SendNanos:       12,
	}}
}

// Send writes m into the next free slot. A full ring applies backpressure
// with the iteration-budgeted pollBackoff: the producer yields cooperatively
// while the verifier is expected to drain imminently, then sleeps in
// pollSleepQuantum steps — a stalled verifier costs the producer scheduler
// wakeups, not a pinned core.
func (r *SharedRing) Send(m Message) error {
	if r.closed.Load() {
		return ErrClosed
	}
	head := r.head.Load()
	var bo pollBackoff
	for head-r.tail.Load() >= uint64(len(r.slots)) {
		if r.closed.Load() {
			return ErrClosed
		}
		bo.pause()
	}
	r.seq++
	m.Seq = r.seq
	r.slots[head&r.mask] = m
	r.head.Store(head + 1)
	return nil
}

// Close marks the ring closed; the receiver drains remaining slots.
func (r *SharedRing) Close() error {
	r.closed.Store(true)
	return nil
}

// Recv blocks until a message is available or the ring is closed and empty.
// The empty-ring wait uses the same budgeted backoff as Send, so a consumer
// ahead of a stalled producer stops burning its core after the spin budget.
func (r *SharedRing) Recv() (Message, bool, error) {
	var bo pollBackoff
	for {
		if m, ok, err := r.TryRecv(); ok || err != nil {
			return m, ok, err
		}
		if r.closed.Load() && r.tail.Load() == r.head.Load() {
			return Message{}, false, nil
		}
		bo.pause()
	}
}

// TryRecv returns the next message without blocking.
func (r *SharedRing) TryRecv() (Message, bool, error) {
	tail := r.tail.Load()
	if tail == r.head.Load() {
		return Message{}, false, nil
	}
	m := r.slots[tail&r.mask]
	r.tail.Store(tail + 1)
	return m, true, nil
}

// RecvBatch copies every currently pending message (up to len(buf)) out of
// the ring in one pass, publishing the new read cursor with a single atomic
// store. The scalar Recv pays two atomic loads and one store per message;
// here that cost is paid once per burst, which is what lets a drain loop keep
// up with a writer whose send is a single memory write. The burst is copied
// with at most two bulk copies (the wrap-around split) instead of a per-slot
// loop, and the empty-ring wait uses the budgeted backoff shared with Send.
func (r *SharedRing) RecvBatch(buf []Message) (int, bool, error) {
	if len(buf) == 0 {
		return 0, true, nil
	}
	var bo pollBackoff
	for {
		tail := r.tail.Load()
		head := r.head.Load()
		if head != tail {
			n := int(head - tail)
			if n > len(buf) {
				n = len(buf)
			}
			i := int(tail & r.mask)
			c := copy(buf[:n], r.slots[i:])
			if c < n {
				copy(buf[c:n], r.slots)
			}
			r.tail.Store(tail + uint64(n))
			return n, true, nil
		}
		if r.closed.Load() && r.tail.Load() == r.head.Load() {
			return 0, false, nil
		}
		bo.pause()
	}
}

// Pending reports the number of sent-but-unread messages.
func (r *SharedRing) Pending() int {
	return int(r.head.Load() - r.tail.Load())
}

// Corrupt overwrites the i-th unread message (0 = oldest), simulating a
// compromised writer erasing evidence before the verifier reads it. It
// returns false when no such unread slot exists. A raw shared-memory mapping
// gives the monitored process precisely this power, which is why Table 2
// marks shared memory as lacking the append-only property.
func (r *SharedRing) Corrupt(i int, m Message) bool {
	tail := r.tail.Load()
	if uint64(i) >= r.head.Load()-tail {
		return false
	}
	slot := (tail + uint64(i)) & r.mask
	m.Seq = r.slots[slot].Seq // preserve the counter: corruption is invisible
	r.slots[slot] = m
	return true
}
