package ipc

// Message sealing: the sender-side half of the CCFI-style authenticated
// channel mode (Mashtizadeh et al.). A SealSender wraps any Sender with a
// per-process 128-bit key and stamps every outgoing message with a SipHash-2-4
// tag over the message body and its send ordinal. The verifier-side hmac
// policy recomputes the tag and strips it, so a transport that flips bits,
// replays, reorders, or splices messages between processes produces an
// attributable authentication kill instead of silent corruption — the
// append-only authenticity property survives an untrusted channel.

// MacKey is a 128-bit per-process message-authentication key, programmed by
// the kernel at registration time (the software stand-in for the paper's
// kernel-managed PID register, extended to a keyed channel).
type MacKey struct {
	K0, K1 uint64
}

// macInputLen is the fixed byte length of the MAC input: five 8-byte words
// (op|pid, the three arguments, and the sequence number). SipHash folds the
// input length into the final block; with a fixed-size input that is a
// constant.
const macInputLen = 40

// MacSeal computes the SipHash-2-4 tag of m's body under k, binding the
// message to stream position seq. The Mac field itself is excluded — the tag
// authenticates (Op, PID, Arg1, Arg2, Arg3, seq), so any bit flipped by the
// transport, any replayed ordinal, and any message spliced onto another
// process's stream (different key) all fail verification.
func MacSeal(k MacKey, m Message, seq uint64) uint64 {
	v0 := k.K0 ^ 0x736f6d6570736575
	v1 := k.K1 ^ 0x646f72616e646f6d
	v2 := k.K0 ^ 0x6c7967656e657261
	v3 := k.K1 ^ 0x7465646279746573

	round := func(w uint64) {
		v3 ^= w
		for i := 0; i < 2; i++ {
			v0 += v1
			v1 = v1<<13 | v1>>51
			v1 ^= v0
			v0 = v0<<32 | v0>>32
			v2 += v3
			v3 = v3<<16 | v3>>48
			v3 ^= v2
			v0 += v3
			v3 = v3<<21 | v3>>43
			v3 ^= v0
			v2 += v1
			v1 = v1<<17 | v1>>47
			v1 ^= v2
			v2 = v2<<32 | v2>>32
		}
		v0 ^= w
	}

	round(uint64(m.Op)<<32 | uint64(uint32(m.PID)))
	round(m.Arg1)
	round(m.Arg2)
	round(m.Arg3)
	round(seq)
	// Finalization block: input length in the top byte, per the SipHash
	// padding rule for whole-word inputs.
	round(uint64(macInputLen) << 56)

	v2 ^= 0xff
	for i := 0; i < 4; i++ {
		v0 += v1
		v1 = v1<<13 | v1>>51
		v1 ^= v0
		v0 = v0<<32 | v0>>32
		v2 += v3
		v3 = v3<<16 | v3>>48
		v3 ^= v2
		v0 += v3
		v3 = v3<<21 | v3>>43
		v3 ^= v0
		v2 += v1
		v1 = v1<<17 | v1>>47
		v1 ^= v2
		v2 = v2<<32 | v2>>32
	}
	return v0 ^ v1 ^ v2 ^ v3
}

// SenderFunc adapts a plain function to the Sender interface, for delivery
// paths that bypass a channel backend (the supervisor's inline mode).
type SenderFunc func(Message) error

// Send implements Sender.
func (f SenderFunc) Send(m Message) error { return f(m) }

// Close implements Sender as a no-op.
func (f SenderFunc) Close() error { return nil }

// SealSender wraps s so every message sent through it carries a MAC under
// key. The wrapper assigns the sequence number itself — the ordinal of the
// n-th successful send, counting from 1, which is exactly the value every
// backend in this module assigns (they all count accepted messages from 1) —
// so the tag it computes binds the same stream position the verifier will
// observe in Message.Seq. Like the backends, it requires a single producer
// goroutine per channel.
func SealSender(s Sender, key MacKey) Sender {
	return &sealingSender{s: s, key: key}
}

type sealingSender struct {
	s   Sender
	key MacKey
	// n counts successful sends, mirroring the backend's Seq (see
	// instrumentedSender for the single-producer argument).
	n uint64
}

func (ss *sealingSender) Send(m Message) error {
	seq := ss.n + 1
	m.Seq = seq
	m.Mac = MacSeal(ss.key, m, seq)
	if err := ss.s.Send(m); err != nil {
		// A failed send consumes no sequence number; a retry recomputes the
		// identical tag for the same position.
		return err
	}
	ss.n++
	return nil
}

func (ss *sealingSender) Close() error { return ss.s.Close() }

// SetPID implements PIDRegister by forwarding to the wrapped sender, keeping
// the kernel-managed register reachable through the sealing layer.
func (ss *sealingSender) SetPID(pid int32) {
	if reg, ok := ss.s.(PIDRegister); ok {
		reg.SetPID(pid)
	}
}

var (
	_ Sender      = SenderFunc(nil)
	_ Sender      = (*sealingSender)(nil)
	_ PIDRegister = (*sealingSender)(nil)
)
