package ipc

import (
	"io"
	"os"
	"sync"
	"syscall"
)

// fdSender writes framed messages to a kernel-backed file descriptor. Every
// Send is a real write(2): the kernel holds sent messages, so the primitive
// is append-only, but the system call (plus KPTI privilege transition) puts
// hundreds of nanoseconds on the monitored program's critical path — the
// weakness Table 2 attributes to message queues, pipes and sockets.
type fdSender struct {
	mu  sync.Mutex
	w   *os.File
	seq uint64
	buf [MessageSize]byte
}

func (s *fdSender) Send(m Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return ErrClosed
	}
	s.seq++
	m.Seq = s.seq
	m.Encode(s.buf[:])
	if _, err := s.w.Write(s.buf[:]); err != nil {
		return err
	}
	return nil
}

func (s *fdSender) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil
	}
	err := s.w.Close()
	s.w = nil
	return err
}

// fdReceiver reads framed messages from a file descriptor.
type fdReceiver struct {
	r   *os.File
	buf [MessageSize]byte
}

func (r *fdReceiver) Recv() (Message, bool, error) {
	if _, err := io.ReadFull(r.r, r.buf[:]); err != nil {
		r.r.Close()
		return Message{}, false, nil // closed and drained
	}
	m, err := DecodeMessage(r.buf[:])
	if err != nil {
		return Message{}, false, err
	}
	return m, true, nil
}

// NewPipe builds a channel over an anonymous kernel pipe (the "Named Pipe"
// row of Table 2). If pipe creation is unavailable the constructor falls
// back to an in-process queue that models the same cost.
func NewPipe() *Channel {
	props := Properties{
		Name:            "Named Pipe",
		AppendOnly:      true,
		AsyncValidation: false,
		PrimaryCost:     "system call",
		SendNanos:       316,
	}
	pr, pw, err := os.Pipe()
	if err != nil {
		return newFallbackQueue(props)
	}
	return &Channel{Sender: &fdSender{w: pw}, Receiver: &fdReceiver{r: pr}, Props: props}
}

// NewSocket builds a channel over a Unix-domain stream socketpair (the
// "Socket" row of Table 2), falling back to an in-process queue when the
// socketpair system call is unavailable.
func NewSocket() *Channel {
	props := Properties{
		Name:            "Socket",
		AppendOnly:      true,
		AsyncValidation: false,
		PrimaryCost:     "system call",
		SendNanos:       346,
	}
	return newSocketpairChannel(syscall.SOCK_STREAM, props)
}

// NewMessageQueue builds a channel with POSIX-message-queue semantics: a
// kernel-held queue of discrete messages, each send one system call (the
// "Message Queue" row of Table 2 and the -MQ configurations of §5.3.1).
// Message boundaries are preserved by the fixed-size framing over a
// kernel socketpair; a datagram socket would also preserve them but never
// wakes a blocked reader when the writer closes.
func NewMessageQueue() *Channel {
	props := Properties{
		Name:            "Message Queue",
		AppendOnly:      true,
		AsyncValidation: false,
		PrimaryCost:     "system call",
		SendNanos:       146,
	}
	return newSocketpairChannel(syscall.SOCK_STREAM, props)
}

func newSocketpairChannel(typ int, props Properties) *Channel {
	fds, err := syscall.Socketpair(syscall.AF_UNIX, typ, 0)
	if err != nil {
		return newFallbackQueue(props)
	}
	// Non-blocking mode hands the fds to Go's poller, so a reader blocked
	// in Recv wakes on writer close (EOF) instead of sleeping in read(2).
	syscall.SetNonblock(fds[0], true)
	syscall.SetNonblock(fds[1], true)
	w := os.NewFile(uintptr(fds[0]), props.Name+"-send")
	r := os.NewFile(uintptr(fds[1]), props.Name+"-recv")
	return &Channel{Sender: &fdSender{w: w}, Receiver: &fdReceiver{r: r}, Props: props}
}

// fallbackQueue is an in-process bounded queue used when the host denies the
// kernel primitive. It keeps the same interface semantics (append-only from
// the sender's perspective, blocking receive) so higher layers are unaffected;
// only the Table 2 wall-clock micro-benchmark loses its kernel-cost realism.
type fallbackQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool
	seq    uint64
}

func newFallbackQueue(props Properties) *Channel {
	q := &fallbackQueue{}
	q.cond = sync.NewCond(&q.mu)
	return &Channel{Sender: q, Receiver: q, Props: props}
}

func (q *fallbackQueue) Send(m Message) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.seq++
	m.Seq = q.seq
	q.queue = append(q.queue, m)
	q.cond.Signal()
	return nil
}

func (q *fallbackQueue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
	return nil
}

func (q *fallbackQueue) Recv() (Message, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.queue) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.queue) == 0 {
		return Message{}, false, nil
	}
	m := q.queue[0]
	q.queue = q.queue[1:]
	return m, true, nil
}

func (q *fallbackQueue) TryRecv() (Message, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.queue) == 0 {
		return Message{}, false, nil
	}
	m := q.queue[0]
	q.queue = q.queue[1:]
	return m, true, nil
}
