package ipc

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"syscall"

	"herqules/internal/telemetry"
)

// fdSender writes framed messages to a kernel-backed file descriptor. Every
// Send is a real write(2): the kernel holds sent messages, so the primitive
// is append-only, but the system call (plus KPTI privilege transition) puts
// hundreds of nanoseconds on the monitored program's critical path — the
// weakness Table 2 attributes to message queues, pipes and sockets.
type fdSender struct {
	mu      sync.Mutex
	w       *os.File
	seq     uint64
	buf     [MessageSize]byte
	pending *atomic.Int64 // shared with the paired fdReceiver
}

func (s *fdSender) Send(m Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return ErrClosed
	}
	s.seq++
	m.Seq = s.seq
	m.Encode(s.buf[:])
	if _, err := s.w.Write(s.buf[:]); err != nil {
		return err
	}
	s.pending.Add(1)
	return nil
}

func (s *fdSender) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil
	}
	err := s.w.Close()
	s.w = nil
	return err
}

// fdReceiver reads framed messages from a file descriptor. Reads pull
// whatever burst the kernel has buffered in one read(2); a trailing partial
// frame is carried in buf until the next call, so the receive syscall cost is
// amortized across the burst instead of paid per message.
type fdReceiver struct {
	r       *os.File
	buf     []byte // staging buffer; buf[:n] holds undecoded bytes
	n       int
	pending *atomic.Int64 // shared with the paired fdSender

	// carries counts bursts that ended in a partial frame carried to the
	// next call (set by Channel.EnableTelemetry, nil otherwise).
	carries *telemetry.Counter
	// frameErrs counts terminal framing failures — undecodable frames and
	// streams truncated mid-frame (set by Channel.EnableTelemetry, nil
	// otherwise).
	frameErrs *telemetry.Counter
}

// countFrameErr bumps the framing-failure counter when telemetry is wired.
func (r *fdReceiver) countFrameErr() {
	if r.frameErrs != nil {
		r.frameErrs.Inc()
	}
}

func (r *fdReceiver) Recv() (Message, bool, error) {
	var one [1]Message
	n, ok, err := r.RecvBatch(one[:])
	if n == 1 {
		return one[0], true, err
	}
	return Message{}, ok && n > 0, err
}

// RecvBatch implements BatchReceiver: one read(2) per burst, then frame
// decoding in process. A decode failure cannot be attributed to a process —
// a corrupted stream may carry a stale PID — so the error is returned bare.
func (r *fdReceiver) RecvBatch(out []Message) (int, bool, error) {
	if len(out) == 0 {
		return 0, true, nil
	}
	want := len(out) * MessageSize
	if want < r.n {
		want = r.n // never truncate bytes carried from a larger burst
	}
	if cap(r.buf) < want {
		grown := make([]byte, want)
		copy(grown, r.buf[:r.n])
		r.buf = grown
	}
	r.buf = r.buf[:want]
	// Block until at least one complete frame is buffered; frames carried
	// from a previous burst are served without touching the kernel.
	for r.n < MessageSize {
		nr, err := r.r.Read(r.buf[r.n:])
		if nr > 0 {
			r.n += nr
		}
		if err != nil {
			if r.n >= MessageSize {
				break
			}
			r.r.Close()
			if r.n > 0 {
				// The stream ended inside a frame. Silently dropping the
				// trailing bytes would hide a lost (possibly violating)
				// message, so truncation is a terminal integrity failure —
				// never a skipped frame. Unattributable: the partial frame
				// may not even carry a complete PID field.
				trailing := r.n
				r.n = 0
				r.countFrameErr()
				return 0, false, fmt.Errorf(
					"ipc: truncated frame: stream ended with %d trailing bytes (frame is %d): %w",
					trailing, MessageSize, ErrIntegrity)
			}
			return 0, false, nil // closed and drained
		}
	}
	cnt := r.n / MessageSize
	if cnt > len(out) {
		cnt = len(out)
	}
	for i := 0; i < cnt; i++ {
		m, err := DecodeMessage(r.buf[i*MessageSize:])
		if err != nil {
			r.consume(i * MessageSize)
			r.pending.Add(int64(-i))
			r.countFrameErr()
			// Terminal, not transient: a corrupted byte stream cannot be
			// resynchronized — every subsequent frame boundary is suspect.
			return i, false, fmt.Errorf("ipc: frame decode failed: %v: %w", err, ErrIntegrity)
		}
		out[i] = m
	}
	r.consume(cnt * MessageSize)
	r.pending.Add(int64(-cnt))
	if r.carries != nil && r.n%MessageSize != 0 {
		r.carries.Inc()
	}
	return cnt, true, nil
}

// consume discards the first k decoded bytes, sliding a partial trailing
// frame to the front of the staging buffer.
func (r *fdReceiver) consume(k int) {
	copy(r.buf, r.buf[k:r.n])
	r.n -= k
}

// Pending reports messages written but not yet received. The kernel's own
// buffer is not directly observable, so the endpoints share a counter.
func (r *fdReceiver) Pending() int {
	if n := r.pending.Load(); n > 0 {
		return int(n)
	}
	return 0
}

var (
	_ Receiver      = (*fdReceiver)(nil)
	_ BatchReceiver = (*fdReceiver)(nil)
	_ Pender        = (*fdReceiver)(nil)
)

// NewPipe builds a channel over an anonymous kernel pipe (the "Named Pipe"
// row of Table 2). If pipe creation is unavailable the constructor falls
// back to an in-process queue that models the same cost.
func NewPipe() *Channel {
	props := Properties{
		Name:            "Named Pipe",
		AppendOnly:      true,
		AsyncValidation: false,
		PrimaryCost:     "system call",
		SendNanos:       316,
	}
	pr, pw, err := os.Pipe()
	if err != nil {
		return newFallbackQueue(props)
	}
	pending := new(atomic.Int64)
	return &Channel{
		Sender:   &fdSender{w: pw, pending: pending},
		Receiver: &fdReceiver{r: pr, pending: pending},
		Props:    props,
	}
}

// NewSocket builds a channel over a Unix-domain stream socketpair (the
// "Socket" row of Table 2), falling back to an in-process queue when the
// socketpair system call is unavailable.
func NewSocket() *Channel {
	props := Properties{
		Name:            "Socket",
		AppendOnly:      true,
		AsyncValidation: false,
		PrimaryCost:     "system call",
		SendNanos:       346,
	}
	return newSocketpairChannel(syscall.SOCK_STREAM, props)
}

// NewMessageQueue builds a channel with POSIX-message-queue semantics: a
// kernel-held queue of discrete messages, each send one system call (the
// "Message Queue" row of Table 2 and the -MQ configurations of §5.3.1).
// Message boundaries are preserved by the fixed-size framing over a
// kernel socketpair; a datagram socket would also preserve them but never
// wakes a blocked reader when the writer closes.
func NewMessageQueue() *Channel {
	props := Properties{
		Name:            "Message Queue",
		AppendOnly:      true,
		AsyncValidation: false,
		PrimaryCost:     "system call",
		SendNanos:       146,
	}
	return newSocketpairChannel(syscall.SOCK_STREAM, props)
}

func newSocketpairChannel(typ int, props Properties) *Channel {
	fds, err := syscall.Socketpair(syscall.AF_UNIX, typ, 0)
	if err != nil {
		return newFallbackQueue(props)
	}
	// Non-blocking mode hands the fds to Go's poller, so a reader blocked
	// in Recv wakes on writer close (EOF) instead of sleeping in read(2).
	syscall.SetNonblock(fds[0], true)
	syscall.SetNonblock(fds[1], true)
	w := os.NewFile(uintptr(fds[0]), props.Name+"-send")
	r := os.NewFile(uintptr(fds[1]), props.Name+"-recv")
	pending := new(atomic.Int64)
	return &Channel{
		Sender:   &fdSender{w: w, pending: pending},
		Receiver: &fdReceiver{r: r, pending: pending},
		Props:    props,
	}
}

// fallbackQueue is an in-process bounded queue used when the host denies the
// kernel primitive. It keeps the same interface semantics (append-only from
// the sender's perspective, blocking receive) so higher layers are unaffected;
// only the Table 2 wall-clock micro-benchmark loses its kernel-cost realism.
type fallbackQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool
	seq    uint64
}

func newFallbackQueue(props Properties) *Channel {
	q := &fallbackQueue{}
	q.cond = sync.NewCond(&q.mu)
	return &Channel{Sender: q, Receiver: q, Props: props}
}

func (q *fallbackQueue) Send(m Message) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.seq++
	m.Seq = q.seq
	q.queue = append(q.queue, m)
	q.cond.Signal()
	return nil
}

func (q *fallbackQueue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
	return nil
}

func (q *fallbackQueue) Recv() (Message, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.queue) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.queue) == 0 {
		return Message{}, false, nil
	}
	m := q.queue[0]
	q.queue = q.queue[1:]
	return m, true, nil
}

func (q *fallbackQueue) TryRecv() (Message, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.queue) == 0 {
		return Message{}, false, nil
	}
	m := q.queue[0]
	q.queue = q.queue[1:]
	return m, true, nil
}

// RecvBatch implements BatchReceiver: one lock round per burst.
func (q *fallbackQueue) RecvBatch(out []Message) (int, bool, error) {
	if len(out) == 0 {
		return 0, true, nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.queue) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.queue) == 0 {
		return 0, false, nil
	}
	n := copy(out, q.queue)
	q.queue = q.queue[n:]
	return n, true, nil
}

// Pending implements Pender.
func (q *fallbackQueue) Pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.queue)
}

var (
	_ BatchReceiver = (*fallbackQueue)(nil)
	_ Pender        = (*fallbackQueue)(nil)
)
