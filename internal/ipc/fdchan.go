package ipc

import (
	"errors"
	"os"
	"sync"
	"sync/atomic"
	"syscall"

	"herqules/internal/telemetry"
)

// fdSender writes framed messages to a kernel-backed file descriptor. Every
// Send is a real write(2): the kernel holds sent messages, so the primitive
// is append-only, but the system call (plus KPTI privilege transition) puts
// hundreds of nanoseconds on the monitored program's critical path — the
// weakness Table 2 attributes to message queues, pipes and sockets.
type fdSender struct {
	mu      sync.Mutex
	w       *os.File
	seq     uint64
	buf     [MessageSize]byte
	pending *atomic.Int64 // shared with the paired fdReceiver
}

func (s *fdSender) Send(m Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return ErrClosed
	}
	s.seq++
	m.Seq = s.seq
	m.Encode(s.buf[:])
	if _, err := s.w.Write(s.buf[:]); err != nil {
		return err
	}
	s.pending.Add(1)
	return nil
}

func (s *fdSender) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil
	}
	err := s.w.Close()
	s.w = nil
	return err
}

// fdReceiver reads framed messages from a file descriptor. Reads pull
// whatever burst the kernel has buffered in one read(2); the shared
// FrameDecoder carries a trailing partial frame until the next call, so the
// receive syscall cost is amortized across the burst instead of paid per
// message.
type fdReceiver struct {
	r       *os.File
	dec     *FrameDecoder
	pending *atomic.Int64 // shared with the paired fdSender

	// carries counts bursts that ended in a partial frame carried to the
	// next call (set by Channel.EnableTelemetry, nil otherwise).
	carries *telemetry.Counter
	// frameErrs counts terminal framing failures — undecodable frames and
	// streams truncated mid-frame (set by Channel.EnableTelemetry, nil
	// otherwise).
	frameErrs *telemetry.Counter
}

func newFDReceiver(r *os.File, pending *atomic.Int64) *fdReceiver {
	return &fdReceiver{r: r, dec: NewFrameDecoder(r), pending: pending}
}

// countFrameErr bumps the framing-failure counter when telemetry is wired.
func (r *fdReceiver) countFrameErr() {
	if r.frameErrs != nil {
		r.frameErrs.Inc()
	}
}

func (r *fdReceiver) Recv() (Message, bool, error) {
	var one [1]Message
	n, ok, err := r.RecvBatch(one[:])
	if n == 1 {
		return one[0], true, err
	}
	return Message{}, ok && n > 0, err
}

// RecvBatch implements BatchReceiver: one read(2) per burst, then frame
// decoding in process (FrameDecoder). A decode failure cannot be attributed
// to a process — a corrupted stream may carry a stale PID — so the error is
// returned bare. On a local kernel channel there is no resume protocol, so a
// stream truncated mid-frame stays a terminal integrity failure — silently
// dropping the trailing bytes would hide a lost (possibly violating)
// message. Unattributable: the partial frame may not even carry a complete
// PID field.
func (r *fdReceiver) RecvBatch(out []Message) (int, bool, error) {
	n, ok, err := r.dec.Decode(out)
	r.pending.Add(int64(-n))
	if err != nil {
		r.countFrameErr()
	}
	if !ok {
		// Stream over (cleanly or not): release the fd eagerly, matching the
		// pre-decoder behavior that freed the descriptor at EOF. A decode
		// failure keeps the fd: the stream is poisoned either way, and the
		// caller sees the same terminal error on every subsequent call.
		if err == nil || errors.As(err, new(*TruncatedFrameError)) {
			r.r.Close()
		}
		return n, false, err
	}
	if r.carries != nil && r.dec.Carried() {
		r.carries.Inc()
	}
	return n, true, nil
}

// Pending reports messages written but not yet received. The kernel's own
// buffer is not directly observable, so the endpoints share a counter.
func (r *fdReceiver) Pending() int {
	if n := r.pending.Load(); n > 0 {
		return int(n)
	}
	return 0
}

var (
	_ Receiver      = (*fdReceiver)(nil)
	_ BatchReceiver = (*fdReceiver)(nil)
	_ Pender        = (*fdReceiver)(nil)
)

// NewPipe builds a channel over an anonymous kernel pipe (the "Named Pipe"
// row of Table 2). If pipe creation is unavailable the constructor falls
// back to an in-process queue that models the same cost.
func NewPipe() *Channel {
	props := Properties{
		Name:            "Named Pipe",
		AppendOnly:      true,
		AsyncValidation: false,
		PrimaryCost:     "system call",
		SendNanos:       316,
	}
	pr, pw, err := os.Pipe()
	if err != nil {
		return newFallbackQueue(props)
	}
	pending := new(atomic.Int64)
	return &Channel{
		Sender:   &fdSender{w: pw, pending: pending},
		Receiver: newFDReceiver(pr, pending),
		Props:    props,
	}
}

// NewSocket builds a channel over a Unix-domain stream socketpair (the
// "Socket" row of Table 2), falling back to an in-process queue when the
// socketpair system call is unavailable.
func NewSocket() *Channel {
	props := Properties{
		Name:            "Socket",
		AppendOnly:      true,
		AsyncValidation: false,
		PrimaryCost:     "system call",
		SendNanos:       346,
	}
	return newSocketpairChannel(syscall.SOCK_STREAM, props)
}

// NewMessageQueue builds a channel with POSIX-message-queue semantics: a
// kernel-held queue of discrete messages, each send one system call (the
// "Message Queue" row of Table 2 and the -MQ configurations of §5.3.1).
// Message boundaries are preserved by the fixed-size framing over a
// kernel socketpair; a datagram socket would also preserve them but never
// wakes a blocked reader when the writer closes.
func NewMessageQueue() *Channel {
	props := Properties{
		Name:            "Message Queue",
		AppendOnly:      true,
		AsyncValidation: false,
		PrimaryCost:     "system call",
		SendNanos:       146,
	}
	return newSocketpairChannel(syscall.SOCK_STREAM, props)
}

func newSocketpairChannel(typ int, props Properties) *Channel {
	fds, err := syscall.Socketpair(syscall.AF_UNIX, typ, 0)
	if err != nil {
		return newFallbackQueue(props)
	}
	// Non-blocking mode hands the fds to Go's poller, so a reader blocked
	// in Recv wakes on writer close (EOF) instead of sleeping in read(2).
	syscall.SetNonblock(fds[0], true)
	syscall.SetNonblock(fds[1], true)
	w := os.NewFile(uintptr(fds[0]), props.Name+"-send")
	r := os.NewFile(uintptr(fds[1]), props.Name+"-recv")
	pending := new(atomic.Int64)
	return &Channel{
		Sender:   &fdSender{w: w, pending: pending},
		Receiver: newFDReceiver(r, pending),
		Props:    props,
	}
}

// fallbackQueue is an in-process bounded queue used when the host denies the
// kernel primitive. It keeps the same interface semantics (append-only from
// the sender's perspective, blocking receive) so higher layers are unaffected;
// only the Table 2 wall-clock micro-benchmark loses its kernel-cost realism.
type fallbackQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool
	seq    uint64
}

func newFallbackQueue(props Properties) *Channel {
	q := &fallbackQueue{}
	q.cond = sync.NewCond(&q.mu)
	return &Channel{Sender: q, Receiver: q, Props: props}
}

func (q *fallbackQueue) Send(m Message) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.seq++
	m.Seq = q.seq
	q.queue = append(q.queue, m)
	q.cond.Signal()
	return nil
}

func (q *fallbackQueue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
	return nil
}

func (q *fallbackQueue) Recv() (Message, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.queue) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.queue) == 0 {
		return Message{}, false, nil
	}
	m := q.queue[0]
	q.queue = q.queue[1:]
	return m, true, nil
}

func (q *fallbackQueue) TryRecv() (Message, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.queue) == 0 {
		return Message{}, false, nil
	}
	m := q.queue[0]
	q.queue = q.queue[1:]
	return m, true, nil
}

// RecvBatch implements BatchReceiver: one lock round per burst.
func (q *fallbackQueue) RecvBatch(out []Message) (int, bool, error) {
	if len(out) == 0 {
		return 0, true, nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.queue) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.queue) == 0 {
		return 0, false, nil
	}
	n := copy(out, q.queue)
	q.queue = q.queue[n:]
	return n, true, nil
}

// Pending implements Pender.
func (q *fallbackQueue) Pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.queue)
}

var (
	_ BatchReceiver = (*fallbackQueue)(nil)
	_ Pender        = (*fallbackQueue)(nil)
)
