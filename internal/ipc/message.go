// Package ipc defines the message format and inter-process communication
// primitives evaluated by the HerQules paper (Table 2). A monitored program
// sends fixed-size messages describing policy-relevant execution events to a
// verifier running in a different protection domain.
//
// The package provides the software primitives the paper compares against
// (POSIX-style message queue, named pipe, socket, raw shared memory, and a
// light-weight-context model), all behind a common Sender/Receiver pair. The
// two proposed hardware primitives, AppendWrite-FPGA and AppendWrite-µarch,
// live in the sibling packages fpga and uarch and implement the same
// interfaces.
package ipc

import "fmt"

// Op is the 4-byte operation code carried by every message. The semantics of
// the operation arguments are policy-dependent (HerQules §3.1).
type Op uint32

// Operation codes. The pointer-integrity codes implement the HQ-CFI policy
// (§4.1.3, §4.1.5); the allocation codes implement the memory-safety policy
// sketch (§4.2); Syscall implements bounded asynchronous validation (§2.2).
const (
	OpNop Op = iota

	// OpInit announces that a monitored program has enabled HerQules. Arg1
	// carries the program's entry address, Arg2 the global-pointer table
	// base (used to register relocated global control-flow pointers).
	OpInit

	// OpSyscall is the system-call synchronization message (§2.2): it tells
	// the verifier that all outstanding messages for this process have been
	// processed, so the kernel may resume the pending system call. Arg1
	// carries the system call number.
	OpSyscall

	// Control-flow pointer-integrity operations (§4.1.3).
	OpPointerDefine          // define pointer at Arg1 with value Arg2
	OpPointerCheck           // check pointer at Arg1 has value Arg2
	OpPointerInvalidate      // remove pointer at Arg1
	OpPointerCheckInvalidate // check then remove (backward edges, §4.1.5)
	OpPointerBlockCopy       // copy pointers in [Arg1,Arg1+Arg3) to [Arg2,...)
	OpPointerBlockMove       // move pointers (non-overlapping, realloc)
	OpPointerBlockInvalidate // invalidate pointers in [Arg1, Arg1+Arg2)

	// Memory-safety allocation operations (§4.2).
	OpAllocCreate     // create allocation [Arg1, Arg1+Arg2)
	OpAllocCheck      // check address Arg1 is inside a live allocation
	OpAllocCheckBase  // check Arg1 and Arg2 share one live allocation
	OpAllocExtend     // move allocation at Arg1 to [Arg2, Arg2+Arg3)
	OpAllocDestroy    // destroy allocation at Arg1
	OpAllocDestroyAll // destroy all allocations within [Arg1, Arg1+Arg2)

	// OpCounterInc increments the toy execution counter from the paper's §2
	// overview example. Arg1 carries the event class.
	OpCounterInc

	// Data-flow integrity operations (§4.3): every store announces itself
	// as the last writer of its address; checked loads verify the last
	// writer belongs to the load's statically computed set of legitimate
	// writers (Castro et al., OSDI '06).
	OpDFIDeclare // declare writer Arg2 as a member of set Arg1
	OpDFISet     // store at address Arg1 by writer Arg2
	OpDFICheck   // load at address Arg1 must have last writer in set Arg2

	// Session-control operations for the networked attestation plane
	// (internal/hqnet). They share the 48-byte AppendWrite frame so one
	// framing layer serves both planes, but they terminate at the connection
	// layer: the daemon never forwards them to the verifier's policy chain,
	// and a control op arriving through a local channel is just an unknown
	// op to every policy (ignored, like OpNop). IsSessionOp partitions the
	// space.

	OpHello        // client→daemon: admission request (Arg1 ver, Arg2 tenant, Arg3 nonce)
	OpResume       // client→daemon: resume session (Arg1 token, Arg2 tenant)
	OpWelcome      // daemon→client: grant (Arg1 token, Arg2 lease ns, Arg3 flags; Seq = acked)
	OpReject       // daemon→client: refusal (Arg1 reason code)
	OpSessionKey   // daemon→client: MAC key delivery (Arg1 K0, Arg2 K1)
	OpHeartbeat    // client→daemon: lease renewal (Arg1 ordinal)
	OpHeartbeatAck // daemon→client: renewal confirm (Seq = cumulative acked data seq)
	OpAck          // daemon→client: cumulative receive acknowledgement (Seq = acked)
	OpGateEnter    // client→daemon: run the syscall gate (Arg1 syscall no, Arg2 ordinal)
	OpGateResult   // daemon→client: gate verdict (Arg1 verdict, Arg2 reason, Arg3 ordinal)
	OpKillNotice   // daemon→client: the resident proc was killed (Arg1 reason code)
	OpGoodbye      // client→daemon: clean session close

	numOps // sentinel
)

var opNames = [...]string{
	OpNop:                    "nop",
	OpInit:                   "init",
	OpSyscall:                "syscall",
	OpPointerDefine:          "pointer-define",
	OpPointerCheck:           "pointer-check",
	OpPointerInvalidate:      "pointer-invalidate",
	OpPointerCheckInvalidate: "pointer-check-invalidate",
	OpPointerBlockCopy:       "pointer-block-copy",
	OpPointerBlockMove:       "pointer-block-move",
	OpPointerBlockInvalidate: "pointer-block-invalidate",
	OpAllocCreate:            "alloc-create",
	OpAllocCheck:             "alloc-check",
	OpAllocCheckBase:         "alloc-check-base",
	OpAllocExtend:            "alloc-extend",
	OpAllocDestroy:           "alloc-destroy",
	OpAllocDestroyAll:        "alloc-destroy-all",
	OpCounterInc:             "counter-inc",
	OpDFIDeclare:             "dfi-declare",
	OpDFISet:                 "dfi-set",
	OpDFICheck:               "dfi-check",
	OpHello:                  "hello",
	OpResume:                 "resume",
	OpWelcome:                "welcome",
	OpReject:                 "reject",
	OpSessionKey:             "session-key",
	OpHeartbeat:              "heartbeat",
	OpHeartbeatAck:           "heartbeat-ack",
	OpAck:                    "ack",
	OpGateEnter:              "gate-enter",
	OpGateResult:             "gate-result",
	OpKillNotice:             "kill-notice",
	OpGoodbye:                "goodbye",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint32(o))
}

// Valid reports whether o is a defined operation code.
func (o Op) Valid() bool { return o < numOps }

// IsSessionOp reports whether o belongs to the connection plane: a
// session-control frame that the hqnet daemon consumes (or emits) at the
// connection layer and never forwards into the verifier's policy chain.
func (o Op) IsSessionOp() bool { return o >= OpHello && o < numOps }

// MessageSize is the wire size of an encoded message in bytes: a 4-byte
// operation code, a 4-byte process identifier, three 8-byte arguments, an
// 8-byte sequence counter and an 8-byte authentication tag. The paper's FPGA
// message is 32 bytes (two arguments); we widen to three so block operations
// (src, dst, size) fit in a single message across every backend, and carry a
// MAC slot so the CCFI-style authenticated-channel mode needs no second wire
// format (see DESIGN.md, "Known deviations").
const MessageSize = 48

// Message is the fixed-size structure transmitted by AppendWrite (§3.1). PID
// identifies the sending process; on the FPGA backend it is populated from a
// kernel-managed register, which gives message authenticity. Seq is the
// per-message counter used to detect dropped messages. Mac is zero on
// unauthenticated channels; under the hmac policy it carries the SipHash tag
// computed by SealSender over the message body and sequence number.
type Message struct {
	Op               Op
	PID              int32
	Arg1, Arg2, Arg3 uint64
	Seq              uint64
	Mac              uint64
}

func (m Message) String() string {
	if m.Mac != 0 {
		return fmt.Sprintf("{%s pid=%d args=%#x,%#x,%#x seq=%d mac=%#x}",
			m.Op, m.PID, m.Arg1, m.Arg2, m.Arg3, m.Seq, m.Mac)
	}
	return fmt.Sprintf("{%s pid=%d args=%#x,%#x,%#x seq=%d}",
		m.Op, m.PID, m.Arg1, m.Arg2, m.Arg3, m.Seq)
}

// Encode serializes m into buf, which must be at least MessageSize bytes, and
// returns the number of bytes written. Little-endian, fixed layout.
func (m Message) Encode(buf []byte) int {
	_ = buf[MessageSize-1]
	putU32(buf[0:], uint32(m.Op))
	putU32(buf[4:], uint32(m.PID))
	putU64(buf[8:], m.Arg1)
	putU64(buf[16:], m.Arg2)
	putU64(buf[24:], m.Arg3)
	putU64(buf[32:], m.Seq)
	putU64(buf[40:], m.Mac)
	return MessageSize
}

// DecodeMessage parses a message previously produced by Encode.
func DecodeMessage(buf []byte) (Message, error) {
	if len(buf) < MessageSize {
		return Message{}, fmt.Errorf("ipc: short message: %d bytes", len(buf))
	}
	m := Message{
		Op:   Op(getU32(buf[0:])),
		PID:  int32(getU32(buf[4:])),
		Arg1: getU64(buf[8:]),
		Arg2: getU64(buf[16:]),
		Arg3: getU64(buf[24:]),
		Seq:  getU64(buf[32:]),
		Mac:  getU64(buf[40:]),
	}
	if !m.Op.Valid() {
		return Message{}, fmt.Errorf("ipc: invalid op code %d", uint32(m.Op))
	}
	return m, nil
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func getU64(b []byte) uint64 {
	return uint64(getU32(b)) | uint64(getU32(b[4:]))<<32
}
