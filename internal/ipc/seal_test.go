package ipc

import (
	"errors"
	"testing"
)

func TestMacSealDeterministicAndFieldSensitive(t *testing.T) {
	k := MacKey{K0: 0x0123456789abcdef, K1: 0xfedcba9876543210}
	m := Message{Op: OpPointerCheck, PID: 7, Arg1: 0x1000, Arg2: 0x4000, Arg3: 3}
	tag := MacSeal(k, m, 5)
	if tag != MacSeal(k, m, 5) {
		t.Fatal("MacSeal not deterministic")
	}
	// Every authenticated field, the stream position and the key must all
	// perturb the tag.
	perturbed := []struct {
		name string
		tag  uint64
	}{
		{"op", MacSeal(k, Message{Op: OpPointerDefine, PID: 7, Arg1: 0x1000, Arg2: 0x4000, Arg3: 3}, 5)},
		{"pid", MacSeal(k, Message{Op: OpPointerCheck, PID: 8, Arg1: 0x1000, Arg2: 0x4000, Arg3: 3}, 5)},
		{"arg1", MacSeal(k, Message{Op: OpPointerCheck, PID: 7, Arg1: 0x1001, Arg2: 0x4000, Arg3: 3}, 5)},
		{"arg2", MacSeal(k, Message{Op: OpPointerCheck, PID: 7, Arg1: 0x1000, Arg2: 0x4001, Arg3: 3}, 5)},
		{"arg3", MacSeal(k, Message{Op: OpPointerCheck, PID: 7, Arg1: 0x1000, Arg2: 0x4000, Arg3: 4}, 5)},
		{"seq", MacSeal(k, m, 6)},
		{"key", MacSeal(MacKey{K0: k.K0 ^ 1, K1: k.K1}, m, 5)},
	}
	for _, p := range perturbed {
		if p.tag == tag {
			t.Errorf("changing %s did not change the tag", p.name)
		}
	}
	// The Mac field itself is excluded from the input: sealing is
	// independent of whatever tag the message already carries.
	withMac := m
	withMac.Mac = 0xdeadbeef
	if MacSeal(k, withMac, 5) != tag {
		t.Error("Mac field leaked into the MAC input")
	}
}

func TestSealSenderStampsSeqAndMac(t *testing.T) {
	k := MacKey{K0: 1, K1: 2}
	var got []Message
	s := SealSender(SenderFunc(func(m Message) error {
		got = append(got, m)
		return nil
	}), k)
	for i := 0; i < 3; i++ {
		if err := s.Send(Message{Op: OpCounterInc, PID: 1, Arg1: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i, m := range got {
		if m.Seq != uint64(i+1) {
			t.Errorf("message %d: Seq = %d, want %d", i, m.Seq, i+1)
		}
		if m.Mac != MacSeal(k, m, m.Seq) {
			t.Errorf("message %d: tag does not verify", i)
		}
	}
}

func TestSealSenderFailedSendConsumesNoOrdinal(t *testing.T) {
	k := MacKey{K0: 1, K1: 2}
	fail := true
	var got []Message
	s := SealSender(SenderFunc(func(m Message) error {
		if fail {
			return errors.New("transient")
		}
		got = append(got, m)
		return nil
	}), k)
	if err := s.Send(Message{Op: OpCounterInc, PID: 1}); err == nil {
		t.Fatal("expected send failure")
	}
	fail = false
	if err := s.Send(Message{Op: OpCounterInc, PID: 1}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("retry after failure got seq %+v, want first accepted send at seq 1", got)
	}
}

func TestSealSenderMatchesBackendSeq(t *testing.T) {
	// The sealing wrapper derives Seq itself; the backend assigns its own on
	// accept. The two must agree, or the tag binds the wrong position.
	ch := NewSharedRing(64)
	defer ch.Close()
	k := MacKey{K0: 3, K1: 4}
	s := SealSender(ch.Sender, k)
	for i := 0; i < 5; i++ {
		if err := s.Send(Message{Op: OpCounterInc, PID: 1, Arg1: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		m, ok, err := ch.Receiver.Recv()
		if err != nil || !ok {
			t.Fatalf("recv %d: ok=%t err=%v", i, ok, err)
		}
		if m.Seq != uint64(i+1) {
			t.Fatalf("backend Seq = %d, want %d", m.Seq, i+1)
		}
		if m.Mac != MacSeal(k, m, m.Seq) {
			t.Fatalf("message %d: tag does not verify against backend-observed Seq", i)
		}
	}
}

func TestMessageEncodeDecodeCarriesMac(t *testing.T) {
	m := Message{Op: OpPointerCheck, PID: 9, Arg1: 1, Arg2: 2, Arg3: 3, Seq: 4, Mac: 0x1122334455667788}
	var buf [MessageSize]byte
	m.Encode(buf[:])
	d, err := DecodeMessage(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	if d != m {
		t.Fatalf("round trip: got %+v, want %+v", d, m)
	}
}
