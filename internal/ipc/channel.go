package ipc

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Common channel errors.
var (
	// ErrClosed is returned by Send after the channel has been closed.
	ErrClosed = errors.New("ipc: channel closed")
	// ErrFull is returned by non-blocking backends when the buffer is full
	// and the backend has no back-pressure mechanism.
	ErrFull = errors.New("ipc: channel full")
	// ErrIntegrity is reported when the receiver detects that message
	// integrity was violated (a dropped, reordered, or overwritten
	// message). Under HerQules this is a fatal policy violation: the
	// monitored program must be terminated (§3.1.1).
	ErrIntegrity = errors.New("ipc: message integrity violated")
)

// TransientError marks a send/receive failure as retryable: the operation
// failed for a reason that does not impugn message integrity (a momentary
// resource shortage, a modelled fault injection), so the caller may retry
// with backoff instead of degrading. Every error NOT wrapped in a
// TransientError is terminal by construction — the enforcement path fails
// closed on anything it cannot positively classify as transient.
type TransientError struct {
	// Err is the underlying failure.
	Err error
}

func (e *TransientError) Error() string { return "transient: " + e.Err.Error() }

// Unwrap exposes the underlying error to errors.Is/errors.As.
func (e *TransientError) Unwrap() error { return e.Err }

// Transient wraps err as retryable. A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// IsTransient reports whether err is classified as retryable. Integrity
// failures, decode errors, and closed channels are all terminal; only errors
// explicitly wrapped by Transient answer true.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// Send-retry defaults used by SendWithRetry (and mirrored by the verifier's
// receive-side retry in the pump drain loop).
const (
	// DefaultSendAttempts bounds how many times SendWithRetry tries before
	// converting a persistent transient failure into a terminal error.
	DefaultSendAttempts = 8
	// retryBackoffBase is the first backoff step; it doubles per attempt.
	retryBackoffBase = time.Microsecond
	// RetryBackoffMax caps one backoff sleep.
	RetryBackoffMax = time.Millisecond
)

// RetryBackoff returns the deterministic backoff ceiling preceding retry
// attempt n (1-based): exponential from retryBackoffBase, capped at
// RetryBackoffMax. The contract is total over int: attempt <= 1 (including
// zero and negatives, which are out-of-domain but must not misbehave) clamps
// to retryBackoffBase, and attempts past the top of the ladder saturate at
// RetryBackoffMax. Callers that sleep should prefer JitteredBackoff; this
// function is the monotone envelope it draws under.
func RetryBackoff(attempt int) time.Duration {
	if attempt <= 1 {
		// Previously attempt <= 0 shifted by 2^64-ish and happened to land on
		// the RetryBackoffMax branch via signed overflow — the *maximum*
		// backoff for the *first* retry. Clamp to the bottom of the ladder
		// instead so the contract is explicit, not an overflow accident.
		return retryBackoffBase
	}
	shift := uint(attempt - 1)
	// 1µs << 30 ≈ 18 minutes: far past RetryBackoffMax yet nowhere near
	// int64 overflow, so bounding the shift first makes the comparison below
	// safe for every attempt value.
	if shift >= 30 {
		return RetryBackoffMax
	}
	d := retryBackoffBase << shift
	if d > RetryBackoffMax {
		return RetryBackoffMax
	}
	return d
}

// jitterState seeds JitteredBackoff's lock-free splitmix64 stream. A shared
// atomic counter decorrelates concurrent retriers (each Add claims a distinct
// stream position) without consulting a global RNG.
var jitterState atomic.Uint64

// JitteredBackoff returns a full-jitter sleep for retry attempt n: uniform in
// [1, RetryBackoff(n)]. Deterministic backoff synchronizes retry stampedes —
// every connection that failed together retries together, re-colliding at
// each rung of the ladder — so sleeps are drawn uniformly under the
// exponential envelope instead of sitting on it.
func JitteredBackoff(attempt int) time.Duration {
	ceil := RetryBackoff(attempt)
	x := jitterState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return 1 + time.Duration(x%uint64(ceil))
}

// SendWithRetry sends m through s, retrying transient failures with
// exponential backoff up to attempts tries (<= 0 selects
// DefaultSendAttempts). Terminal errors return immediately. When the retry
// budget is exhausted the last transient error is converted into a terminal
// one — a transport that fails persistently is indistinguishable from a
// broken one, and the enforcement path must degrade fail-closed, not spin.
func SendWithRetry(s Sender, m Message, attempts int) error {
	return SendWithRetryCtx(context.Background(), s, m, attempts)
}

// SendWithRetryCtx is SendWithRetry with a cancellation point at every rung
// of the backoff ladder: a canceled context interrupts the sleep and returns
// the context's error (terminal — cancellation is not a transport fault, so
// it is deliberately not marked Transient). Sleeps use JitteredBackoff so
// connections that failed together do not retry in lockstep.
func SendWithRetryCtx(ctx context.Context, s Sender, m Message, attempts int) error {
	if attempts <= 0 {
		attempts = DefaultSendAttempts
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("ipc: send canceled: %w", err)
	}
	var err error
	for try := 1; try <= attempts; try++ {
		err = s.Send(m)
		if err == nil || !IsTransient(err) {
			return err
		}
		if try < attempts {
			t := time.NewTimer(JitteredBackoff(try))
			select {
			case <-ctx.Done():
				t.Stop()
				// %v for the send error: the terminal result must not unwrap
				// to the TransientError (see the exhaustion return below).
				return fmt.Errorf("ipc: send canceled after %d attempts (%v): %w", try, err, ctx.Err())
			case <-t.C:
			}
		}
	}
	// %v, not %w: the returned error must NOT unwrap to the TransientError,
	// or the caller's IsTransient check would retry a budget-exhausted send
	// forever.
	return fmt.Errorf("ipc: send retry budget exhausted after %d attempts: %v", attempts, err)
}

// Sender is the monitored-program side of an IPC channel. Send transmits one
// fixed-size message; implementations differ in cost (system call, memory
// write, MMIO write) and in whether previously sent messages can later be
// altered by the sender.
type Sender interface {
	// Send appends one message. It may block when the channel applies
	// back-pressure, or return ErrFull when it cannot.
	Send(m Message) error
	// Close releases sender-side resources. Subsequent Sends fail.
	Close() error
}

// Receiver is the verifier side of an IPC channel.
type Receiver interface {
	// Recv returns the next message. ok is false once the channel is
	// closed and drained. err is non-nil when integrity verification
	// fails, which the verifier must treat as a policy violation.
	Recv() (m Message, ok bool, err error)
}

// TryReceiver is implemented by backends that support non-blocking receive,
// used by the verifier to drain all currently pending messages.
type TryReceiver interface {
	// TryRecv returns ok=false immediately when no message is pending.
	TryRecv() (m Message, ok bool, err error)
}

// BatchReceiver is implemented by backends that can hand the verifier a whole
// burst of pending messages in one call, amortizing per-message costs
// (atomics, locks, system calls) across the burst. Every channel in this
// package and the fpga/uarch packages implements it; RecvBatchFrom adapts the
// ones that do not.
type BatchReceiver interface {
	// RecvBatch fills buf with up to len(buf) pending messages. It blocks
	// until at least one message is available or the channel is closed and
	// drained (n == 0, ok == false). When err is non-nil the first n
	// messages of buf are still valid: they were received before the
	// integrity failure and must be processed so per-process state is
	// current when the verifier acts on the error.
	RecvBatch(buf []Message) (n int, ok bool, err error)
}

// PIDRegister is implemented by senders whose transport carries a
// kernel-managed process-identity register (the FPGA AFU's PID register,
// §3.1.1): the kernel programs it on every context switch, and the hardware
// stamps each message with it, which is what makes the PID field authentic.
// The framework (core.Run, the supervisor) plays the kernel's role and calls
// SetPID once when it binds a channel to a freshly registered process.
type PIDRegister interface {
	// SetPID programs the transport's process-identity register. Only
	// kernel-side code may call it; the monitored program has no path to it.
	SetPID(pid int32)
}

// Pender is implemented by receivers that can report how many messages are
// sent but not yet received, making backpressure observable uniformly across
// backends (the verifier's per-shard queue depth uses the same interface).
type Pender interface {
	// Pending reports the number of sent-but-unread messages.
	Pending() int
}

// PendingOf reports r's queue depth when r implements Pender; ok is false
// when the backend cannot observe it.
func PendingOf(r interface{}) (n int, ok bool) {
	if p, okP := r.(Pender); okP {
		return p.Pending(), true
	}
	return 0, false
}

// ProcessError attributes a receive-side integrity error to the monitored
// process that caused it. Backends that authenticate the PID field (the FPGA
// AFU's kernel-managed PID register, §3.1.1) wrap ErrIntegrity in a
// ProcessError; backends that cannot attribute the failure — a corrupted
// byte stream may carry a stale PID — return the bare error, and the
// verifier then terminates no one.
type ProcessError struct {
	// PID is the process the receiver holds responsible.
	PID int32
	// Err is the underlying error (typically ErrIntegrity).
	Err error
}

func (e *ProcessError) Error() string {
	return fmt.Sprintf("pid %d: %v", e.PID, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/errors.As.
func (e *ProcessError) Unwrap() error { return e.Err }

// RecvBatchFrom drains up to len(buf) messages from r in one call. It uses
// the backend's native RecvBatch when implemented; otherwise it blocks for
// one message and opportunistically drains more via TryRecv. Semantics match
// BatchReceiver.RecvBatch.
func RecvBatchFrom(r Receiver, buf []Message) (int, bool, error) {
	if len(buf) == 0 {
		return 0, true, nil
	}
	if br, ok := r.(BatchReceiver); ok {
		return br.RecvBatch(buf)
	}
	m, ok, err := r.Recv()
	if err != nil {
		return 0, false, err
	}
	if !ok {
		return 0, false, nil
	}
	buf[0] = m
	n := 1
	if tr, okT := r.(TryReceiver); okT {
		for n < len(buf) {
			m, ok, err := tr.TryRecv()
			if err != nil {
				return n, false, err
			}
			if !ok {
				break
			}
			buf[n] = m
			n++
		}
	}
	return n, true, nil
}

// Properties describes the security and cost characteristics of an IPC
// primitive, mirroring the columns of the paper's Table 2.
type Properties struct {
	// Name is the primitive's display name (Table 2 row label).
	Name string
	// AppendOnly reports whether the sender is prevented from modifying
	// or erasing messages after they are sent. Required for HerQules.
	AppendOnly bool
	// AsyncValidation reports whether sends complete without waiting for
	// the receiver (no synchronous privilege transition on the critical
	// path). Required for HerQules.
	AsyncValidation bool
	// PrimaryCost names the dominant per-send cost ("system call",
	// "memory write", "MMIO write").
	PrimaryCost string
	// SendNanos is the modelled per-message send latency in nanoseconds,
	// used by the deterministic performance experiments. The paper's
	// measured values (Table 2) are the defaults.
	SendNanos float64
}

// Suitable reports whether the primitive satisfies both HerQules
// requirements: message integrity (append-only) and asynchronous validation.
func (p Properties) Suitable() bool { return p.AppendOnly && p.AsyncValidation }

func (p Properties) String() string {
	return fmt.Sprintf("%s{append-only=%t async=%t cost=%s %.1fns}",
		p.Name, p.AppendOnly, p.AsyncValidation, p.PrimaryCost, p.SendNanos)
}

// Channel bundles both endpoints of an IPC primitive together with its
// properties. Concrete constructors (NewSharedRing, NewMessageQueue, ...)
// return Channels wired back-to-back; the monitored program holds the Sender
// and the verifier holds the Receiver.
type Channel struct {
	Sender   Sender
	Receiver Receiver
	Props    Properties
}

// Close closes the sender side (which eventually drains the receiver).
func (c *Channel) Close() error { return c.Sender.Close() }

// Kind enumerates the IPC primitives available to the framework, matching
// the suffixes used in the paper's evaluation (-MQ, -FPGA, -MODEL, -SIM).
type Kind int

const (
	// KindSharedRing is a raw shared-memory ring: fastest software
	// primitive, but not append-only (a compromised writer can rewrite
	// unread slots).
	KindSharedRing Kind = iota
	// KindMessageQueue is a POSIX-style kernel message queue: append-only
	// but every send is a system call.
	KindMessageQueue
	// KindPipe is a named pipe.
	KindPipe
	// KindSocket is a local (Unix-domain-style) socket.
	KindSocket
	// KindLWC models light-weight contexts: a disjoint-address-space
	// switch to the verifier and back on every send (2010 ns each way,
	// per Litton et al. as cited in Table 2).
	KindLWC
	// KindFPGA is AppendWrite-FPGA (package fpga).
	KindFPGA
	// KindUArchModel is the software-only model of AppendWrite-µarch
	// (the paper's -MODEL configurations).
	KindUArchModel
	// KindUArchSim is AppendWrite-µarch under the cycle simulator (the
	// paper's -SIM configurations).
	KindUArchSim
)

var kindNames = [...]string{
	KindSharedRing:   "shm",
	KindMessageQueue: "mq",
	KindPipe:         "pipe",
	KindSocket:       "socket",
	KindLWC:          "lwc",
	KindFPGA:         "fpga",
	KindUArchModel:   "model",
	KindUArchSim:     "sim",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}
