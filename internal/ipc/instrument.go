package ipc

import (
	"herqules/internal/telemetry"
)

// EnableTelemetry wraps the channel's endpoints with counting shims that
// record send/recv/batch totals, the receive-side batch-size distribution,
// and the pending-message high-water mark. Backends with internal state the
// shim cannot observe (the fd framing layer's partial-frame carry) are
// instrumented directly. Call before the channel is used concurrently; the
// per-message overhead is one atomic add on send and an amortized handful of
// atomic adds per received burst.
func (c *Channel) EnableTelemetry(m *telemetry.Metrics) {
	if fr, ok := c.Receiver.(*fdReceiver); ok {
		fr.carries = m.Counter("ipc.partial_frame_carries")
		fr.frameErrs = m.Counter("ipc.frame_errors")
	}
	c.Sender = &instrumentedSender{
		s:       c.Sender,
		sends:   m.Counter("ipc.sends"),
		errs:    m.Counter("ipc.send_errors"),
		sampler: m.LatencySampler(),
	}
	c.Receiver = &instrumentedReceiver{
		r:         c.Receiver,
		recvs:     m.Counter("ipc.recvs"),
		batches:   m.Counter("ipc.recv_batches"),
		batchSize: m.Histogram("ipc.recv_batch_size"),
		pending:   m.Peak("ipc.pending_peak"),
	}
}

// instrumentedSender counts sends and send errors around the wrapped sender.
// When the registry has latency sampling enabled, it also stamps the send
// time of every N-th successfully sent message, keyed by (PID, ordinal): the
// ordinal of the n-th successful Send equals the sequence number every
// backend in this module assigns to it (all count accepted messages from 1),
// so the verifier can match the stamp against Message.Seq at validation time
// with no change to the wire format.
type instrumentedSender struct {
	s       Sender
	sends   *telemetry.Counter
	errs    *telemetry.Counter
	sampler *telemetry.LatencySampler
	// n counts successful sends, mirroring the backend's Seq. Plain, not
	// atomic: every backend in this module already requires a single
	// producer goroutine per channel (the ring's own seq++ is unsynchronized
	// for the same reason), and an atomic add here costs ~10% of the
	// shared-ring send path for nothing.
	n uint64
}

func (s *instrumentedSender) Send(m Message) error {
	err := s.s.Send(m)
	if err != nil {
		s.errs.Inc()
		return err
	}
	s.sends.Inc()
	if s.sampler != nil {
		// Count only successful sends so the ordinal tracks the backend's
		// sequence counter (a failed Send consumes no sequence number).
		// Stamping after Send measures enqueue → validate; back-pressure
		// blocking inside Send is charged to the sender, not the verifier.
		s.n++
		if s.sampler.Sampled(s.n) {
			s.sampler.Stamp(m.PID, s.n)
		}
	}
	return nil
}

func (s *instrumentedSender) Close() error { return s.s.Close() }

// SetPID implements PIDRegister by forwarding to the wrapped sender, so
// wrapping a transport with a kernel-managed PID register (the FPGA AFU)
// does not hide the register from the kernel-side code that must program it.
// For backends without a register this is a no-op, which matches their
// unwrapped behaviour (the type assertion would simply have failed).
func (s *instrumentedSender) SetPID(pid int32) {
	if reg, ok := s.s.(PIDRegister); ok {
		reg.SetPID(pid)
	}
}

// instrumentedReceiver counts receives around the wrapped receiver. It
// always implements BatchReceiver — delegating through RecvBatchFrom, which
// adapts scalar-only backends — so wrapping never costs a backend its batch
// drain path. It deliberately does not implement TryReceiver: advertising a
// non-blocking receive the backend lacks would turn "no message yet" into a
// lie.
type instrumentedReceiver struct {
	r         Receiver
	recvs     *telemetry.Counter
	batches   *telemetry.Counter
	batchSize *telemetry.Histogram
	pending   *telemetry.Peak
	// chanPeak is this channel's own pending high-water mark. The registry
	// peak above is shared by every channel on the registry; the local peak
	// is what per-PID attribution reports for the one process bound to this
	// channel.
	chanPeak telemetry.Peak
}

func (r *instrumentedReceiver) observePending() {
	if n, ok := PendingOf(r.r); ok && n > 0 {
		r.pending.Observe(uint64(n))
		r.chanPeak.Observe(uint64(n))
	}
}

// PendingPeak reports this channel's own sent-but-unread high-water mark,
// the per-process backpressure figure the supervisor attributes to the PID
// bound to the channel.
func (r *instrumentedReceiver) PendingPeak() uint64 { return r.chanPeak.Value() }

func (r *instrumentedReceiver) Recv() (Message, bool, error) {
	r.observePending()
	m, ok, err := r.r.Recv()
	if ok {
		r.recvs.Inc()
	}
	return m, ok, err
}

// RecvBatch implements BatchReceiver over the wrapped receiver.
func (r *instrumentedReceiver) RecvBatch(buf []Message) (int, bool, error) {
	r.observePending()
	n, ok, err := RecvBatchFrom(r.r, buf)
	if n > 0 {
		r.recvs.Add(uint64(n))
		r.batches.Inc()
		r.batchSize.Observe(uint64(n))
	}
	return n, ok, err
}

// Pending implements Pender when the backend can observe its queue depth,
// and reports zero otherwise.
func (r *instrumentedReceiver) Pending() int {
	n, _ := PendingOf(r.r)
	return n
}

// PeakPender is implemented by receivers that track their own pending
// high-water mark (the instrumented receiver); the supervisor uses it for
// per-PID backpressure attribution.
type PeakPender interface {
	// PendingPeak reports the highest observed sent-but-unread count.
	PendingPeak() uint64
}

var (
	_ Sender        = (*instrumentedSender)(nil)
	_ PIDRegister   = (*instrumentedSender)(nil)
	_ Receiver      = (*instrumentedReceiver)(nil)
	_ BatchReceiver = (*instrumentedReceiver)(nil)
	_ Pender        = (*instrumentedReceiver)(nil)
	_ PeakPender    = (*instrumentedReceiver)(nil)
)
