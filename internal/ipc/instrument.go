package ipc

import (
	"herqules/internal/telemetry"
)

// EnableTelemetry wraps the channel's endpoints with counting shims that
// record send/recv/batch totals, the receive-side batch-size distribution,
// and the pending-message high-water mark. Backends with internal state the
// shim cannot observe (the fd framing layer's partial-frame carry) are
// instrumented directly. Call before the channel is used concurrently; the
// per-message overhead is one atomic add on send and an amortized handful of
// atomic adds per received burst.
func (c *Channel) EnableTelemetry(m *telemetry.Metrics) {
	if fr, ok := c.Receiver.(*fdReceiver); ok {
		fr.carries = m.Counter("ipc.partial_frame_carries")
	}
	c.Sender = &instrumentedSender{
		s:     c.Sender,
		sends: m.Counter("ipc.sends"),
		errs:  m.Counter("ipc.send_errors"),
	}
	c.Receiver = &instrumentedReceiver{
		r:         c.Receiver,
		recvs:     m.Counter("ipc.recvs"),
		batches:   m.Counter("ipc.recv_batches"),
		batchSize: m.Histogram("ipc.recv_batch_size"),
		pending:   m.Peak("ipc.pending_peak"),
	}
}

// instrumentedSender counts sends and send errors around the wrapped sender.
type instrumentedSender struct {
	s     Sender
	sends *telemetry.Counter
	errs  *telemetry.Counter
}

func (s *instrumentedSender) Send(m Message) error {
	err := s.s.Send(m)
	if err != nil {
		s.errs.Inc()
		return err
	}
	s.sends.Inc()
	return nil
}

func (s *instrumentedSender) Close() error { return s.s.Close() }

// instrumentedReceiver counts receives around the wrapped receiver. It
// always implements BatchReceiver — delegating through RecvBatchFrom, which
// adapts scalar-only backends — so wrapping never costs a backend its batch
// drain path. It deliberately does not implement TryReceiver: advertising a
// non-blocking receive the backend lacks would turn "no message yet" into a
// lie.
type instrumentedReceiver struct {
	r         Receiver
	recvs     *telemetry.Counter
	batches   *telemetry.Counter
	batchSize *telemetry.Histogram
	pending   *telemetry.Peak
}

func (r *instrumentedReceiver) observePending() {
	if n, ok := PendingOf(r.r); ok && n > 0 {
		r.pending.Observe(uint64(n))
	}
}

func (r *instrumentedReceiver) Recv() (Message, bool, error) {
	r.observePending()
	m, ok, err := r.r.Recv()
	if ok {
		r.recvs.Inc()
	}
	return m, ok, err
}

// RecvBatch implements BatchReceiver over the wrapped receiver.
func (r *instrumentedReceiver) RecvBatch(buf []Message) (int, bool, error) {
	r.observePending()
	n, ok, err := RecvBatchFrom(r.r, buf)
	if n > 0 {
		r.recvs.Add(uint64(n))
		r.batches.Inc()
		r.batchSize.Observe(uint64(n))
	}
	return n, ok, err
}

// Pending implements Pender when the backend can observe its queue depth,
// and reports zero otherwise.
func (r *instrumentedReceiver) Pending() int {
	n, _ := PendingOf(r.r)
	return n
}

var (
	_ Sender        = (*instrumentedSender)(nil)
	_ Receiver      = (*instrumentedReceiver)(nil)
	_ BatchReceiver = (*instrumentedReceiver)(nil)
	_ Pender        = (*instrumentedReceiver)(nil)
)
