package ipc

import (
	"fmt"
	"io"
	"sync"
)

// This file is the reusable core of the fd framing: fixed-size AppendWrite
// frames over an arbitrary byte stream, with a trailing partial frame carried
// between reads. It was extracted from fdchan.go so the networked attestation
// plane (internal/hqnet) speaks exactly the wire format the kernel-backed
// channels already speak — one framing layer, two transports.

// TruncatedFrameError reports a byte stream that ended inside a frame.
// Silently dropping the trailing bytes would hide a lost (possibly violating)
// message, so local channels treat it as a terminal integrity failure (it
// unwraps to ErrIntegrity). The networked plane distinguishes it by type: a
// TCP connection severed mid-frame is a *connection* death, not a *process*
// violation — the partial frame is discarded, the session lease keeps
// running, and the client retransmits the whole frame on resume.
type TruncatedFrameError struct {
	// Trailing is the number of staged bytes the stream ended with
	// (0 < Trailing < MessageSize).
	Trailing int
}

func (e *TruncatedFrameError) Error() string {
	return fmt.Sprintf("ipc: truncated frame: stream ended with %d trailing bytes (frame is %d): %v",
		e.Trailing, MessageSize, ErrIntegrity)
}

// Unwrap classifies truncation as an integrity failure for errors.Is.
func (e *TruncatedFrameError) Unwrap() error { return ErrIntegrity }

// FrameDecoder decodes fixed-size message frames from a byte stream. Reads
// pull whatever burst the transport has buffered; a trailing partial frame is
// staged until the next call, so per-message costs are amortized across the
// burst. Not safe for concurrent use: a frame stream has exactly one reader.
type FrameDecoder struct {
	r   io.Reader
	buf []byte // staging buffer; buf[:n] holds undecoded bytes
	n   int
}

// NewFrameDecoder returns a decoder over r. The decoder never closes r; the
// owner reacts to the terminal results of Decode.
func NewFrameDecoder(r io.Reader) *FrameDecoder { return &FrameDecoder{r: r} }

// Carried reports whether a partial frame is currently staged — bytes read
// from the stream but not yet completing a frame.
func (d *FrameDecoder) Carried() bool { return d.n%MessageSize != 0 }

// Buffered reports how many complete frames are staged and decodable without
// touching the underlying reader.
func (d *FrameDecoder) Buffered() int { return d.n / MessageSize }

// Decode fills out with up to len(out) messages, blocking until at least one
// complete frame is available or the stream ends. Results:
//
//   - n > 0, ok == true: n frames decoded.
//   - n == 0, ok == false, err == nil: the stream ended cleanly at a frame
//     boundary and is fully drained.
//   - err != nil: a *TruncatedFrameError (stream ended mid-frame) or a frame
//     decode failure; both wrap ErrIntegrity and both are terminal — a byte
//     stream cannot be resynchronized, every subsequent frame boundary is
//     suspect. The first n messages of out are still valid and must be
//     processed before the caller acts on the error.
func (d *FrameDecoder) Decode(out []Message) (int, bool, error) {
	if len(out) == 0 {
		return 0, true, nil
	}
	want := len(out) * MessageSize
	if want < d.n {
		want = d.n // never truncate bytes carried from a larger burst
	}
	if cap(d.buf) < want {
		grown := make([]byte, want)
		copy(grown, d.buf[:d.n])
		d.buf = grown
	}
	d.buf = d.buf[:want]
	// Block until at least one complete frame is staged; frames carried from
	// a previous burst are served without touching the transport.
	for d.n < MessageSize {
		nr, err := d.r.Read(d.buf[d.n:])
		if nr > 0 {
			d.n += nr
		}
		if err != nil {
			if d.n >= MessageSize {
				break
			}
			if d.n > 0 {
				trailing := d.n
				d.n = 0
				return 0, false, &TruncatedFrameError{Trailing: trailing}
			}
			return 0, false, nil // closed and drained
		}
	}
	cnt := d.n / MessageSize
	if cnt > len(out) {
		cnt = len(out)
	}
	for i := 0; i < cnt; i++ {
		m, err := DecodeMessage(d.buf[i*MessageSize:])
		if err != nil {
			d.consume(i * MessageSize)
			return i, false, fmt.Errorf("ipc: frame decode failed: %v: %w", err, ErrIntegrity)
		}
		out[i] = m
	}
	d.consume(cnt * MessageSize)
	return cnt, true, nil
}

// consume discards the first k decoded bytes, sliding a partial trailing
// frame to the front of the staging buffer.
func (d *FrameDecoder) consume(k int) {
	copy(d.buf, d.buf[k:d.n])
	d.n -= k
}

// FrameWriter serializes messages onto a byte stream, one frame per message.
// Unlike the fd channel's sender it assigns no sequence numbers: the caller
// owns Seq (and Mac) — the networked plane's resume protocol depends on
// retransmitted frames carrying their original sequence numbers verbatim.
// Safe for concurrent use; frames from concurrent writers never interleave.
type FrameWriter struct {
	mu  sync.Mutex
	w   io.Writer
	buf [MessageSize]byte
}

// NewFrameWriter returns a writer over w. The writer never closes w.
func NewFrameWriter(w io.Writer) *FrameWriter { return &FrameWriter{w: w} }

// WriteMessage encodes m and writes exactly one frame.
func (fw *FrameWriter) WriteMessage(m Message) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	m.Encode(fw.buf[:])
	_, err := fw.w.Write(fw.buf[:])
	return err
}
