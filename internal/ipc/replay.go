package ipc

import "sync"

// Replay is a receiver that serves a pre-recorded message stream. Throughput
// experiments use it to measure the verifier's drain rate in isolation: the
// producer cost is paid up front, so messages/sec reflects receive + policy
// evaluation only. The zero cost of "production" also makes scalar-vs-batch
// drain comparisons clean — both modes replay the identical stream.
//
// A Replay is safe for one concurrent consumer plus concurrent Pending calls;
// the per-call mutex deliberately models the per-message synchronization a
// real scalar receiver pays, while RecvBatch pays it once per burst.
type Replay struct {
	mu   sync.Mutex
	msgs []Message
	next int
}

// NewReplay builds a replay receiver over msgs (not copied).
func NewReplay(msgs []Message) *Replay { return &Replay{msgs: msgs} }

// Recv implements Receiver; the stream "closes" when exhausted.
func (r *Replay) Recv() (Message, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next >= len(r.msgs) {
		return Message{}, false, nil
	}
	m := r.msgs[r.next]
	r.next++
	return m, true, nil
}

// TryRecv implements TryReceiver.
func (r *Replay) TryRecv() (Message, bool, error) { return r.Recv() }

// RecvBatch implements BatchReceiver.
func (r *Replay) RecvBatch(out []Message) (int, bool, error) {
	if len(out) == 0 {
		return 0, true, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next >= len(r.msgs) {
		return 0, false, nil
	}
	n := copy(out, r.msgs[r.next:])
	r.next += n
	return n, true, nil
}

// Pending implements Pender.
func (r *Replay) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.msgs) - r.next
}

// Rewind restarts the stream from the beginning.
func (r *Replay) Rewind() {
	r.mu.Lock()
	r.next = 0
	r.mu.Unlock()
}

var (
	_ Receiver      = (*Replay)(nil)
	_ TryReceiver   = (*Replay)(nil)
	_ BatchReceiver = (*Replay)(nil)
	_ Pender        = (*Replay)(nil)
)
