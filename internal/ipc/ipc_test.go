package ipc

import (
	"testing"
	"testing/quick"
)

func TestMessageEncodeDecodeRoundTrip(t *testing.T) {
	m := Message{Op: OpPointerDefine, PID: 42, Arg1: 0xdeadbeef, Arg2: 0xcafebabe12345678, Arg3: 7, Seq: 99}
	var buf [MessageSize]byte
	n := m.Encode(buf[:])
	if n != MessageSize {
		t.Fatalf("Encode wrote %d bytes, want %d", n, MessageSize)
	}
	got, err := DecodeMessage(buf[:])
	if err != nil {
		t.Fatalf("DecodeMessage: %v", err)
	}
	if got != m {
		t.Errorf("round trip mismatch: got %v, want %v", got, m)
	}
}

func TestMessageEncodeDecodeProperty(t *testing.T) {
	f := func(op uint8, pid int32, a1, a2, a3, seq uint64) bool {
		m := Message{Op: Op(uint32(op) % uint32(numOps)), PID: pid, Arg1: a1, Arg2: a2, Arg3: a3, Seq: seq}
		var buf [MessageSize]byte
		m.Encode(buf[:])
		got, err := DecodeMessage(buf[:])
		return err == nil && got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsShortBuffer(t *testing.T) {
	if _, err := DecodeMessage(make([]byte, MessageSize-1)); err == nil {
		t.Error("DecodeMessage accepted a short buffer")
	}
}

func TestDecodeRejectsInvalidOp(t *testing.T) {
	var buf [MessageSize]byte
	Message{Op: numOps + 5}.Encode(buf[:])
	if _, err := DecodeMessage(buf[:]); err == nil {
		t.Error("DecodeMessage accepted an invalid op code")
	}
}

func TestOpStrings(t *testing.T) {
	for op := OpNop; op < numOps; op++ {
		if s := op.String(); s == "" || s[0] == 'o' && s[1] == 'p' && s[2] == '(' {
			t.Errorf("op %d has no name", op)
		}
	}
	if got := Op(9999).String(); got != "op(9999)" {
		t.Errorf("unknown op String = %q", got)
	}
}

// channelConstructors lists every software primitive for table-driven tests.
func channelConstructors() map[string]func() *Channel {
	return map[string]func() *Channel{
		"shm":    func() *Channel { return NewSharedRing(64) },
		"mq":     NewMessageQueue,
		"pipe":   NewPipe,
		"socket": NewSocket,
		"lwc":    NewLWC,
	}
}

func TestChannelDeliveryInOrder(t *testing.T) {
	for name, mk := range channelConstructors() {
		t.Run(name, func(t *testing.T) {
			ch := mk()
			const n = 50
			done := make(chan error, 1)
			go func() {
				for i := 0; i < n; i++ {
					if err := ch.Sender.Send(Message{Op: OpCounterInc, Arg1: uint64(i)}); err != nil {
						done <- err
						return
					}
				}
				done <- ch.Sender.Close()
			}()
			for i := 0; i < n; i++ {
				m, ok, err := ch.Receiver.Recv()
				if err != nil {
					t.Fatalf("Recv error at %d: %v", i, err)
				}
				if !ok {
					t.Fatalf("channel closed early at message %d", i)
				}
				if m.Arg1 != uint64(i) {
					t.Fatalf("out of order: got arg %d at position %d", m.Arg1, i)
				}
				if m.Seq != uint64(i+1) {
					t.Fatalf("sequence counter: got %d at position %d", m.Seq, i)
				}
			}
			if err := <-done; err != nil {
				t.Fatalf("sender: %v", err)
			}
		})
	}
}

func TestChannelCloseDrains(t *testing.T) {
	for name, mk := range channelConstructors() {
		t.Run(name, func(t *testing.T) {
			ch := mk()
			if err := ch.Sender.Send(Message{Op: OpInit}); err != nil {
				t.Fatalf("Send: %v", err)
			}
			if err := ch.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if _, ok, err := ch.Receiver.Recv(); !ok || err != nil {
				t.Fatalf("pending message lost on close: ok=%t err=%v", ok, err)
			}
			if _, ok, _ := ch.Receiver.Recv(); ok {
				t.Error("Recv returned a message after drain")
			}
		})
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	for name, mk := range channelConstructors() {
		t.Run(name, func(t *testing.T) {
			ch := mk()
			ch.Close()
			if err := ch.Sender.Send(Message{}); err == nil {
				t.Error("Send after Close succeeded")
			}
		})
	}
}

func TestSharedRingBlocksWhenFull(t *testing.T) {
	ch := NewSharedRing(8)
	ring := ch.Sender.(*SharedRing)
	for i := 0; i < 8; i++ {
		if err := ring.Send(Message{Arg1: uint64(i)}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	if got := ring.Pending(); got != 8 {
		t.Fatalf("Pending = %d, want 8", got)
	}
	// A full ring must block the sender until the receiver drains; verify by
	// draining concurrently and checking the blocked send completes.
	done := make(chan error, 1)
	go func() { done <- ring.Send(Message{Arg1: 99}) }()
	for i := 0; i < 9; i++ {
		m, ok, err := ring.Recv()
		if !ok || err != nil {
			t.Fatalf("Recv %d: ok=%t err=%v", i, ok, err)
		}
		want := uint64(i)
		if i == 8 {
			want = 99
		}
		if m.Arg1 != want {
			t.Fatalf("Recv %d: got arg %d, want %d", i, m.Arg1, want)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("blocked Send: %v", err)
	}
}

func TestSharedRingIsNotAppendOnly(t *testing.T) {
	ch := NewSharedRing(16)
	ring := ch.Sender.(*SharedRing)
	// Send evidence of a violation, then "compromise" the program and erase it.
	ring.Send(Message{Op: OpPointerCheck, Arg1: 0x1000, Arg2: 0xbad})
	if !ring.Corrupt(0, Message{Op: OpNop}) {
		t.Fatal("Corrupt failed on an unread slot")
	}
	m, ok, err := ring.TryRecv()
	if !ok || err != nil {
		t.Fatalf("TryRecv: ok=%t err=%v", ok, err)
	}
	if m.Op != OpNop {
		t.Errorf("evidence survived corruption: got %v", m)
	}
	if ch.Props.AppendOnly {
		t.Error("shared ring must advertise AppendOnly=false")
	}
	if ring.Corrupt(5, Message{}) {
		t.Error("Corrupt succeeded on a nonexistent slot")
	}
}

func TestPropertiesSuitability(t *testing.T) {
	// Table 2: only the AppendWrite primitives satisfy both requirements;
	// among software primitives, none do.
	for name, mk := range channelConstructors() {
		ch := mk()
		ch.Close()
		if ch.Props.Suitable() {
			t.Errorf("%s: software primitive reports Suitable()=true", name)
		}
	}
}

func TestTable2CostOrdering(t *testing.T) {
	// The modelled costs must preserve the paper's ordering:
	// shm < mq < pipe < socket < lwc.
	shm := NewSharedRing(8).Props.SendNanos
	mq := NewMessageQueue().Props.SendNanos
	pipe := NewPipe().Props.SendNanos
	sock := NewSocket().Props.SendNanos
	lwc := NewLWC().Props.SendNanos
	if !(shm < mq && mq < pipe && pipe < sock && sock < lwc) {
		t.Errorf("cost ordering violated: shm=%v mq=%v pipe=%v socket=%v lwc=%v",
			shm, mq, pipe, sock, lwc)
	}
}

func BenchmarkSendSharedRing(b *testing.B) {
	benchmarkSend(b, NewSharedRing(1<<16))
}

func BenchmarkSendMessageQueue(b *testing.B) {
	benchmarkSend(b, NewMessageQueue())
}

func BenchmarkSendPipe(b *testing.B) {
	benchmarkSend(b, NewPipe())
}

func BenchmarkSendSocket(b *testing.B) {
	benchmarkSend(b, NewSocket())
}

func benchmarkSend(b *testing.B, ch *Channel) {
	defer ch.Close()
	// Drain in the background so bounded backends do not stall.
	go func() {
		for {
			if _, ok, _ := ch.Receiver.Recv(); !ok {
				return
			}
		}
	}()
	m := Message{Op: OpPointerDefine, Arg1: 1, Arg2: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ch.Sender.Send(m); err != nil {
			b.Fatal(err)
		}
	}
}
