package ipc

import (
	"os"
	"sync/atomic"
	"testing"
	"testing/quick"

	"herqules/internal/telemetry"
)

func TestMessageEncodeDecodeRoundTrip(t *testing.T) {
	m := Message{Op: OpPointerDefine, PID: 42, Arg1: 0xdeadbeef, Arg2: 0xcafebabe12345678, Arg3: 7, Seq: 99}
	var buf [MessageSize]byte
	n := m.Encode(buf[:])
	if n != MessageSize {
		t.Fatalf("Encode wrote %d bytes, want %d", n, MessageSize)
	}
	got, err := DecodeMessage(buf[:])
	if err != nil {
		t.Fatalf("DecodeMessage: %v", err)
	}
	if got != m {
		t.Errorf("round trip mismatch: got %v, want %v", got, m)
	}
}

func TestMessageEncodeDecodeProperty(t *testing.T) {
	f := func(op uint8, pid int32, a1, a2, a3, seq uint64) bool {
		m := Message{Op: Op(uint32(op) % uint32(numOps)), PID: pid, Arg1: a1, Arg2: a2, Arg3: a3, Seq: seq}
		var buf [MessageSize]byte
		m.Encode(buf[:])
		got, err := DecodeMessage(buf[:])
		return err == nil && got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsShortBuffer(t *testing.T) {
	if _, err := DecodeMessage(make([]byte, MessageSize-1)); err == nil {
		t.Error("DecodeMessage accepted a short buffer")
	}
}

func TestDecodeRejectsInvalidOp(t *testing.T) {
	var buf [MessageSize]byte
	Message{Op: numOps + 5}.Encode(buf[:])
	if _, err := DecodeMessage(buf[:]); err == nil {
		t.Error("DecodeMessage accepted an invalid op code")
	}
}

func TestOpStrings(t *testing.T) {
	for op := OpNop; op < numOps; op++ {
		if s := op.String(); s == "" || s[0] == 'o' && s[1] == 'p' && s[2] == '(' {
			t.Errorf("op %d has no name", op)
		}
	}
	if got := Op(9999).String(); got != "op(9999)" {
		t.Errorf("unknown op String = %q", got)
	}
}

// channelConstructors lists every software primitive for table-driven tests.
func channelConstructors() map[string]func() *Channel {
	return map[string]func() *Channel{
		"shm":    func() *Channel { return NewSharedRing(64) },
		"mq":     NewMessageQueue,
		"pipe":   NewPipe,
		"socket": NewSocket,
		"lwc":    NewLWC,
	}
}

func TestChannelDeliveryInOrder(t *testing.T) {
	for name, mk := range channelConstructors() {
		t.Run(name, func(t *testing.T) {
			ch := mk()
			const n = 50
			done := make(chan error, 1)
			go func() {
				for i := 0; i < n; i++ {
					if err := ch.Sender.Send(Message{Op: OpCounterInc, Arg1: uint64(i)}); err != nil {
						done <- err
						return
					}
				}
				done <- ch.Sender.Close()
			}()
			for i := 0; i < n; i++ {
				m, ok, err := ch.Receiver.Recv()
				if err != nil {
					t.Fatalf("Recv error at %d: %v", i, err)
				}
				if !ok {
					t.Fatalf("channel closed early at message %d", i)
				}
				if m.Arg1 != uint64(i) {
					t.Fatalf("out of order: got arg %d at position %d", m.Arg1, i)
				}
				if m.Seq != uint64(i+1) {
					t.Fatalf("sequence counter: got %d at position %d", m.Seq, i)
				}
			}
			if err := <-done; err != nil {
				t.Fatalf("sender: %v", err)
			}
		})
	}
}

func TestChannelCloseDrains(t *testing.T) {
	for name, mk := range channelConstructors() {
		t.Run(name, func(t *testing.T) {
			ch := mk()
			if err := ch.Sender.Send(Message{Op: OpInit}); err != nil {
				t.Fatalf("Send: %v", err)
			}
			if err := ch.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if _, ok, err := ch.Receiver.Recv(); !ok || err != nil {
				t.Fatalf("pending message lost on close: ok=%t err=%v", ok, err)
			}
			if _, ok, _ := ch.Receiver.Recv(); ok {
				t.Error("Recv returned a message after drain")
			}
		})
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	for name, mk := range channelConstructors() {
		t.Run(name, func(t *testing.T) {
			ch := mk()
			ch.Close()
			if err := ch.Sender.Send(Message{}); err == nil {
				t.Error("Send after Close succeeded")
			}
		})
	}
}

func TestSharedRingBlocksWhenFull(t *testing.T) {
	ch := NewSharedRing(8)
	ring := ch.Sender.(*SharedRing)
	for i := 0; i < 8; i++ {
		if err := ring.Send(Message{Arg1: uint64(i)}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	if got := ring.Pending(); got != 8 {
		t.Fatalf("Pending = %d, want 8", got)
	}
	// A full ring must block the sender until the receiver drains; verify by
	// draining concurrently and checking the blocked send completes.
	done := make(chan error, 1)
	go func() { done <- ring.Send(Message{Arg1: 99}) }()
	for i := 0; i < 9; i++ {
		m, ok, err := ring.Recv()
		if !ok || err != nil {
			t.Fatalf("Recv %d: ok=%t err=%v", i, ok, err)
		}
		want := uint64(i)
		if i == 8 {
			want = 99
		}
		if m.Arg1 != want {
			t.Fatalf("Recv %d: got arg %d, want %d", i, m.Arg1, want)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("blocked Send: %v", err)
	}
}

func TestSharedRingIsNotAppendOnly(t *testing.T) {
	ch := NewSharedRing(16)
	ring := ch.Sender.(*SharedRing)
	// Send evidence of a violation, then "compromise" the program and erase it.
	ring.Send(Message{Op: OpPointerCheck, Arg1: 0x1000, Arg2: 0xbad})
	if !ring.Corrupt(0, Message{Op: OpNop}) {
		t.Fatal("Corrupt failed on an unread slot")
	}
	m, ok, err := ring.TryRecv()
	if !ok || err != nil {
		t.Fatalf("TryRecv: ok=%t err=%v", ok, err)
	}
	if m.Op != OpNop {
		t.Errorf("evidence survived corruption: got %v", m)
	}
	if ch.Props.AppendOnly {
		t.Error("shared ring must advertise AppendOnly=false")
	}
	if ring.Corrupt(5, Message{}) {
		t.Error("Corrupt succeeded on a nonexistent slot")
	}
}

func TestPropertiesSuitability(t *testing.T) {
	// Table 2: only the AppendWrite primitives satisfy both requirements;
	// among software primitives, none do.
	for name, mk := range channelConstructors() {
		ch := mk()
		ch.Close()
		if ch.Props.Suitable() {
			t.Errorf("%s: software primitive reports Suitable()=true", name)
		}
	}
}

func TestTable2CostOrdering(t *testing.T) {
	// The modelled costs must preserve the paper's ordering:
	// shm < mq < pipe < socket < lwc.
	shm := NewSharedRing(8).Props.SendNanos
	mq := NewMessageQueue().Props.SendNanos
	pipe := NewPipe().Props.SendNanos
	sock := NewSocket().Props.SendNanos
	lwc := NewLWC().Props.SendNanos
	if !(shm < mq && mq < pipe && pipe < sock && sock < lwc) {
		t.Errorf("cost ordering violated: shm=%v mq=%v pipe=%v socket=%v lwc=%v",
			shm, mq, pipe, sock, lwc)
	}
}

func BenchmarkSendSharedRing(b *testing.B) {
	benchmarkSend(b, NewSharedRing(1<<16))
}

func BenchmarkSendMessageQueue(b *testing.B) {
	benchmarkSend(b, NewMessageQueue())
}

func BenchmarkSendPipe(b *testing.B) {
	benchmarkSend(b, NewPipe())
}

func BenchmarkSendSocket(b *testing.B) {
	benchmarkSend(b, NewSocket())
}

func benchmarkSend(b *testing.B, ch *Channel) {
	defer ch.Close()
	// Drain in the background so bounded backends do not stall.
	go func() {
		for {
			if _, ok, _ := ch.Receiver.Recv(); !ok {
				return
			}
		}
	}()
	m := Message{Op: OpPointerDefine, Arg1: 1, Arg2: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ch.Sender.Send(m); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRecvBatchDeliversInOrder(t *testing.T) {
	for name, mk := range channelConstructors() {
		t.Run(name, func(t *testing.T) {
			ch := mk()
			const n = 100
			done := make(chan error, 1)
			go func() {
				for i := 0; i < n; i++ {
					if err := ch.Sender.Send(Message{Op: OpCounterInc, Arg1: uint64(i)}); err != nil {
						done <- err
						return
					}
				}
				done <- ch.Sender.Close()
			}()
			buf := make([]Message, 7) // odd size: bursts straddle frame counts
			got := 0
			for got < n {
				k, ok, err := RecvBatchFrom(ch.Receiver, buf)
				if err != nil {
					t.Fatalf("RecvBatch at %d: %v", got, err)
				}
				if !ok && k == 0 {
					t.Fatalf("channel closed early at message %d", got)
				}
				for i := 0; i < k; i++ {
					if buf[i].Arg1 != uint64(got+i) {
						t.Fatalf("out of order: got arg %d at position %d", buf[i].Arg1, got+i)
					}
					if buf[i].Seq != uint64(got+i+1) {
						t.Fatalf("sequence: got %d at position %d", buf[i].Seq, got+i)
					}
				}
				got += k
			}
			if k, ok, err := RecvBatchFrom(ch.Receiver, buf); ok || k != 0 || err != nil {
				t.Fatalf("after drain: k=%d ok=%t err=%v", k, ok, err)
			}
			if err := <-done; err != nil {
				t.Fatalf("sender: %v", err)
			}
		})
	}
}

func TestPendingObservableOnAllBackends(t *testing.T) {
	for name, mk := range channelConstructors() {
		t.Run(name, func(t *testing.T) {
			ch := mk()
			p, ok := PendingOf(ch.Receiver)
			if !ok {
				t.Fatalf("%s receiver does not implement Pender", name)
			}
			if p != 0 {
				t.Fatalf("fresh channel Pending = %d", p)
			}
			const n = 5
			for i := 0; i < n; i++ {
				if err := ch.Sender.Send(Message{Op: OpInit}); err != nil {
					t.Fatalf("Send: %v", err)
				}
			}
			if p, _ := PendingOf(ch.Receiver); p != n {
				t.Errorf("Pending after %d sends = %d", n, p)
			}
			buf := make([]Message, n)
			k, _, err := RecvBatchFrom(ch.Receiver, buf)
			if err != nil || k != n {
				t.Fatalf("RecvBatch: k=%d err=%v", k, err)
			}
			if p, _ := PendingOf(ch.Receiver); p != 0 {
				t.Errorf("Pending after drain = %d", p)
			}
			ch.Close()
		})
	}
}

func TestFdReceiverCarriesPartialFrames(t *testing.T) {
	// A stream receiver must reassemble frames that arrive torn across
	// reads: write 1.5 frames, then the remainder plus another frame.
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Skip("pipes unavailable")
	}
	r := newFDReceiver(pr, new(atomic.Int64))
	var frame [2 * MessageSize]byte
	Message{Op: OpCounterInc, Arg1: 1, Seq: 1}.Encode(frame[:])
	Message{Op: OpCounterInc, Arg1: 2, Seq: 2}.Encode(frame[MessageSize:])
	half := MessageSize + MessageSize/2
	if _, err := pw.Write(frame[:half]); err != nil {
		t.Fatal(err)
	}
	buf := make([]Message, 4)
	k, ok, err := r.RecvBatch(buf)
	if err != nil || !ok || k != 1 {
		t.Fatalf("first burst: k=%d ok=%t err=%v, want one whole frame", k, ok, err)
	}
	if buf[0].Arg1 != 1 {
		t.Errorf("first frame arg = %d", buf[0].Arg1)
	}
	if _, err := pw.Write(frame[half:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	k, ok, err = r.RecvBatch(buf)
	if err != nil || !ok || k != 1 {
		t.Fatalf("second burst: k=%d ok=%t err=%v", k, ok, err)
	}
	if buf[0].Arg1 != 2 {
		t.Errorf("reassembled frame arg = %d, want 2", buf[0].Arg1)
	}
	if k, ok, _ := r.RecvBatch(buf); ok || k != 0 {
		t.Errorf("after close: k=%d ok=%t", k, ok)
	}
}

// scalarOnly hides a receiver's batch/try capabilities so tests can exercise
// the RecvBatchFrom adapter paths.
type scalarOnly struct{ r Receiver }

func (s scalarOnly) Recv() (Message, bool, error) { return s.r.Recv() }

func TestRecvBatchFromAdaptsScalarReceivers(t *testing.T) {
	ch := NewSharedRing(64)
	for i := 0; i < 3; i++ {
		ch.Sender.Send(Message{Op: OpCounterInc, Arg1: uint64(i)})
	}
	ch.Close()
	buf := make([]Message, 8)
	// Scalar-only: one message per call.
	k, ok, err := RecvBatchFrom(scalarOnly{ch.Receiver}, buf)
	if k != 1 || !ok || err != nil {
		t.Fatalf("scalar adapter: k=%d ok=%t err=%v", k, ok, err)
	}
	// TryReceiver drains the rest opportunistically in one call.
	type scalarTry struct {
		Receiver
		TryReceiver
	}
	rt := ch.Receiver.(*SharedRing)
	k, ok, err = RecvBatchFrom(scalarTry{rt, rt}, buf)
	if k != 2 || !ok || err != nil {
		t.Fatalf("try adapter: k=%d ok=%t err=%v", k, ok, err)
	}
}

func TestReplayServesRecordedStream(t *testing.T) {
	msgs := make([]Message, 10)
	for i := range msgs {
		msgs[i] = Message{Op: OpCounterInc, Arg1: uint64(i), Seq: uint64(i + 1)}
	}
	r := NewReplay(msgs)
	if r.Pending() != 10 {
		t.Fatalf("Pending = %d", r.Pending())
	}
	buf := make([]Message, 4)
	total := 0
	for {
		k, ok, err := r.RecvBatch(buf)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		for i := 0; i < k; i++ {
			if buf[i].Arg1 != uint64(total+i) {
				t.Fatalf("out of order at %d", total+i)
			}
		}
		total += k
	}
	if total != 10 {
		t.Fatalf("replayed %d messages", total)
	}
	r.Rewind()
	if m, ok, _ := r.Recv(); !ok || m.Arg1 != 0 {
		t.Errorf("rewind failed: ok=%t m=%v", ok, m)
	}
}

func TestNewSharedRingClampsCapacity(t *testing.T) {
	// Regression: a negative capacity converted to uint64 is enormous, and
	// the power-of-two round-up loop shifted past it to zero and spun
	// forever. All out-of-range requests must clamp and terminate.
	for _, tc := range []struct {
		in   int
		want int
	}{
		{-1, MinRingCapacity},
		{0, MinRingCapacity},
		{1, MinRingCapacity},
		{7, MinRingCapacity},
		{9, 16},
		{1 << 30, MaxRingCapacity},
	} {
		ch := NewSharedRing(tc.in)
		r := ch.Sender.(*SharedRing)
		if len(r.slots) != tc.want {
			t.Errorf("NewSharedRing(%d): %d slots, want %d", tc.in, len(r.slots), tc.want)
		}
		// The clamped ring must actually work.
		ch.Sender.Send(Message{Op: OpCounterInc, Arg1: 1})
		if m, ok, err := ch.Receiver.Recv(); !ok || err != nil || m.Arg1 != 1 {
			t.Errorf("NewSharedRing(%d): roundtrip failed: %v %t %v", tc.in, m, ok, err)
		}
		ch.Close()
	}
}

func TestChannelTelemetryCounts(t *testing.T) {
	m := telemetry.New(1)
	ch := NewSharedRing(64)
	ch.EnableTelemetry(m)
	const n = 10
	for i := 0; i < n; i++ {
		if err := ch.Sender.Send(Message{Op: OpCounterInc, Arg1: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]Message, 4)
	got := 0
	for got < n {
		k, ok, err := RecvBatchFrom(ch.Receiver, buf)
		if err != nil || !ok {
			t.Fatalf("RecvBatch: k=%d ok=%t err=%v", k, ok, err)
		}
		got += k
	}
	ch.Close()
	if err := ch.Sender.Send(Message{Op: OpCounterInc}); err == nil {
		t.Error("send after close succeeded")
	}
	snap := m.Snapshot()
	if v := snap.Counters["ipc.sends"].Total; v != n {
		t.Errorf("ipc.sends = %d, want %d", v, n)
	}
	if v := snap.Counters["ipc.recvs"].Total; v != n {
		t.Errorf("ipc.recvs = %d, want %d", v, n)
	}
	if v := snap.Counters["ipc.send_errors"].Total; v != 1 {
		t.Errorf("ipc.send_errors = %d, want 1", v)
	}
	if v := snap.Counters["ipc.recv_batches"].Total; v == 0 {
		t.Error("no receive batches recorded")
	}
	h := snap.Histograms["ipc.recv_batch_size"]
	if h.Count == 0 || h.Sum != n {
		t.Errorf("batch-size histogram count=%d sum=%d, want sum %d", h.Count, h.Sum, n)
	}
	if snap.Peaks["ipc.pending_peak"] == 0 {
		t.Error("pending high-water never observed")
	}
}

func TestTelemetryCountsPartialFrameCarries(t *testing.T) {
	// The fd framing layer's partial-frame carry is internal state the
	// wrapper cannot see; EnableTelemetry must instrument it directly.
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Skip("pipes unavailable")
	}
	m := telemetry.New(1)
	ch := &Channel{
		Sender:   &fdSender{w: pw, pending: new(atomic.Int64)},
		Receiver: newFDReceiver(pr, new(atomic.Int64)),
	}
	ch.EnableTelemetry(m)
	var frame [2 * MessageSize]byte
	Message{Op: OpCounterInc, Arg1: 1, Seq: 1}.Encode(frame[:])
	Message{Op: OpCounterInc, Arg1: 2, Seq: 2}.Encode(frame[MessageSize:])
	half := MessageSize + MessageSize/2
	if _, err := pw.Write(frame[:half]); err != nil {
		t.Fatal(err)
	}
	buf := make([]Message, 4)
	if k, ok, err := RecvBatchFrom(ch.Receiver, buf); err != nil || !ok || k != 1 {
		t.Fatalf("first burst: k=%d ok=%t err=%v", k, ok, err)
	}
	if _, err := pw.Write(frame[half:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if k, ok, err := RecvBatchFrom(ch.Receiver, buf); err != nil || !ok || k != 1 {
		t.Fatalf("second burst: k=%d ok=%t err=%v", k, ok, err)
	}
	if v := m.Snapshot().Counters["ipc.partial_frame_carries"].Total; v != 1 {
		t.Errorf("partial_frame_carries = %d, want 1", v)
	}
}
