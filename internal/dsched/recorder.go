package dsched

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// YieldEvent is one recorded interleaving point.
type YieldEvent struct {
	Point Point
	PID   int32
	Note  bool // true for Note points, false for Yield points
}

func (e YieldEvent) String() string {
	kind := "yield"
	if e.Note {
		kind = "note"
	}
	return fmt.Sprintf("%s:%s:%d", kind, e.Point, e.PID)
}

// Recorder is a passive Hooks implementation: it records every point hit,
// parks nothing, and answers the real clock. Tests install it to assert
// that the interleaving points a schedule would need actually exist on a
// code path — the cheap half of the model checker's contract.
type Recorder struct {
	mu     sync.Mutex
	events []YieldEvent
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Yield implements Hooks by recording.
func (r *Recorder) Yield(p Point, pid int32) { r.record(p, pid, false) }

// Note implements Hooks by recording.
func (r *Recorder) Note(p Point, pid int32) { r.record(p, pid, true) }

func (r *Recorder) record(p Point, pid int32, note bool) {
	r.mu.Lock()
	r.events = append(r.events, YieldEvent{Point: p, PID: pid, Note: note})
	r.mu.Unlock()
}

// Now implements Hooks with the real clock.
func (r *Recorder) Now() time.Time { return time.Now() }

// AfterFunc implements Hooks with a real timer.
func (r *Recorder) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{t: time.AfterFunc(d, f)}
}

// Events returns a copy of everything recorded so far.
func (r *Recorder) Events() []YieldEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]YieldEvent(nil), r.events...)
}

// Count reports how many times point p was hit (Yield or Note).
func (r *Recorder) Count(p Point) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Point == p {
			n++
		}
	}
	return n
}

// String renders the recorded sequence, one event per line.
func (r *Recorder) String() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

var _ Hooks = (*Recorder)(nil)
