// Package dsched is the deterministic-scheduler plane: every
// goroutine-interleaving point in the kernel, the verifier pump and the
// supervisor yields through a schedule hook, the same pattern the chaos
// injector uses for faults — a no-op when nothing is installed, so the hot
// path and the zero-alloc guarantee are untouched.
//
// Two kinds of points exist, with different contracts:
//
//   - Yield points sit at lock-free interleaving edges (a lifecycle
//     notification about to be published, a batch about to be handed to a
//     shard worker). An installed hook MAY park the calling goroutine there
//     and hand control to a scheduler, which is how the model checker
//     (internal/verify) explores orderings the Go scheduler would choose
//     arbitrarily.
//   - Note points sit inside critical sections (the kernel gate about to
//     block on its condition variable, with the kernel lock held). A hook
//     must treat them as observations only — record and return — because
//     parking with a lock held would wedge every other participant of that
//     lock.
//
// The package also virtualizes time for the code it schedules: Now and
// AfterFunc default to the real clock but are answered by the installed
// hooks when present, so a checker can trigger an epoch expiry as an
// explicit, deterministic transition instead of waiting two wall-clock
// seconds — and can reproduce tick-boundary races (a timer firing at
// exactly its deadline) that real clocks only hit by luck.
//
// Install swaps the global hook bundle atomically. Code that never calls
// Install pays one atomic pointer load and a predictable branch per point;
// points are placed per batch or per lifecycle edge, never per message.
package dsched

import (
	"sync/atomic"
	"time"
)

// Point identifies one interleaving point. The set is small and stable:
// schedules recorded by the checker name points, so renumbering breaks
// replayability of stored schedules.
type Point uint8

const (
	// PointNone is the zero value; never yielded.
	PointNone Point = iota

	// PointRegisterVisible is yielded by Kernel.Register between the
	// verifier notification and the moment the new context becomes visible
	// in the kernel's process table (in the pre-fix ordering: between
	// visibility and notification — the race window the checker flushes
	// out). pid is the new process.
	PointRegisterVisible

	// PointForkVisible is the same edge in Kernel.Fork; pid is the child.
	PointForkVisible

	// PointExitNotify is yielded by Kernel.Exit between tearing down the
	// kernel context and notifying the verifier: a window where the kernel
	// has forgotten the process but the verifier still holds its policy
	// context.
	PointExitNotify

	// PointKillNotify is yielded by Kernel.Kill between marking the
	// process killed and notifying the KillListener: a window where the
	// kernel will fail the process's gates but the verifier still
	// evaluates its in-flight messages.
	PointKillNotify

	// PointGateBlocked is noted (never parked: the kernel lock is held)
	// immediately before a gated system call blocks on its condition
	// variable. The checker uses it to learn, deterministically, that a
	// gate goroutine has reached quiescence.
	PointGateBlocked

	// PointPumpHandoff is yielded by the verifier pipeline as a drain loop
	// hands a routed run of messages to a shard queue.
	PointPumpHandoff

	// PointShardDeliver is yielded by a shard worker immediately before it
	// delivers a dequeued batch.
	PointShardDeliver

	// PointPoisonCheck is noted by the delivery path when it consults the
	// shard's poisoned flag (observation only: the check is the first step
	// of the locked delivery round).
	PointPoisonCheck

	// PointLaunchAdmitted is yielded by the supervisor after a Launch has
	// been admitted (counted in-flight) but before the kernel context is
	// registered.
	PointLaunchAdmitted

	// PointProcFinished is yielded by the supervisor after a monitored
	// program's channel has fully drained but before its kernel context is
	// torn down.
	PointProcFinished

	// PointShutdownBegin is yielded by the supervisor after Shutdown has
	// closed admission but before it begins waiting out in-flight work.
	PointShutdownBegin

	numPoints
)

var pointNames = [...]string{
	PointNone:            "none",
	PointRegisterVisible: "register-visible",
	PointForkVisible:     "fork-visible",
	PointExitNotify:      "exit-notify",
	PointKillNotify:      "kill-notify",
	PointGateBlocked:     "gate-blocked",
	PointPumpHandoff:     "pump-handoff",
	PointShardDeliver:    "shard-deliver",
	PointPoisonCheck:     "poison-check",
	PointLaunchAdmitted:  "launch-admitted",
	PointProcFinished:    "proc-finished",
	PointShutdownBegin:   "shutdown-begin",
}

func (p Point) String() string {
	if int(p) < len(pointNames) {
		return pointNames[p]
	}
	return "point(?)"
}

// Timer is the stoppable, re-armable timer handed out by AfterFunc. The
// real implementation wraps *time.Timer; a scheduler's implementation
// records a virtual deadline the checker fires as an explicit transition.
type Timer interface {
	// Reset re-arms the timer to fire after d. Like time.Timer.Reset it
	// may be called on an expired or armed timer.
	Reset(d time.Duration)
	// Stop disarms the timer, reporting whether it was still armed.
	Stop() bool
}

// Hooks is the bundle a deterministic scheduler (or a recorder) installs.
// Yield may park the calling goroutine; Note must record and return; Now
// and AfterFunc answer the virtual clock.
type Hooks interface {
	Yield(p Point, pid int32)
	Note(p Point, pid int32)
	Now() time.Time
	AfterFunc(d time.Duration, f func()) Timer
}

// active holds the installed hook bundle. An interface can't live in an
// atomic.Pointer directly, so it rides in a box.
type hookBox struct{ h Hooks }

var active atomic.Pointer[hookBox]

// Install makes h the process-wide hook bundle. Passing nil uninstalls.
// Install must not race with itself; points may be hit concurrently at any
// time (the load is atomic).
func Install(h Hooks) {
	if h == nil {
		active.Store(nil)
		return
	}
	active.Store(&hookBox{h: h})
}

// Uninstall removes the hook bundle; every point reverts to a no-op and
// the clock to real time.
func Uninstall() { active.Store(nil) }

// Active reports whether a hook bundle is installed.
func Active() bool { return active.Load() != nil }

// Yield is a schedulable interleaving point: no-op without hooks; with a
// scheduler installed, the calling goroutine may be parked here until the
// scheduler resumes it. Must only be placed where the caller holds no
// locks.
func Yield(p Point, pid int32) {
	if b := active.Load(); b != nil {
		b.h.Yield(p, pid)
	}
}

// Note is an observation-only point: no-op without hooks; hooks must
// record and return without blocking the caller indefinitely (locks may be
// held at Note sites).
func Note(p Point, pid int32) {
	if b := active.Load(); b != nil {
		b.h.Note(p, pid)
	}
}

// Now is the schedulable clock: real time without hooks, the scheduler's
// virtual clock with them.
func Now() time.Time {
	if b := active.Load(); b != nil {
		return b.h.Now()
	}
	return time.Now()
}

// AfterFunc arms a timer on the schedulable clock: a real time.AfterFunc
// without hooks, a virtual timer (fired explicitly by the checker) with
// them.
func AfterFunc(d time.Duration, f func()) Timer {
	if b := active.Load(); b != nil {
		return b.h.AfterFunc(d, f)
	}
	return realTimer{t: time.AfterFunc(d, f)}
}

type realTimer struct{ t *time.Timer }

func (r realTimer) Reset(d time.Duration) { r.t.Reset(d) }
func (r realTimer) Stop() bool            { return r.t.Stop() }
