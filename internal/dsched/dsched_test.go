package dsched

import (
	"errors"
	"testing"
	"time"
)

func TestPointsNoopWithoutInstall(t *testing.T) {
	Uninstall()
	if Active() {
		t.Fatal("hooks active before Install")
	}
	// Must return immediately and allocate nothing.
	Yield(PointRegisterVisible, 101)
	Note(PointGateBlocked, 101)
	if d := time.Since(Now()); d > time.Minute || d < -time.Minute {
		t.Fatalf("Now() without hooks is not wall time (off by %v)", d)
	}
	fired := make(chan struct{})
	tm := AfterFunc(time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("real AfterFunc never fired")
	}
	tm.Stop()
}

func TestYieldAllocatesNothing(t *testing.T) {
	Uninstall()
	n := testing.AllocsPerRun(1000, func() {
		Yield(PointPumpHandoff, 7)
		Note(PointPoisonCheck, 7)
	})
	if n != 0 {
		t.Fatalf("uninstalled Yield/Note allocate %v per run, want 0", n)
	}
}

func TestRecorderCapturesPoints(t *testing.T) {
	r := NewRecorder()
	Install(r)
	defer Uninstall()
	Yield(PointRegisterVisible, 101)
	Yield(PointExitNotify, 101)
	Note(PointGateBlocked, 101)
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("recorded %d events, want 3: %v", len(evs), evs)
	}
	if evs[0].Point != PointRegisterVisible || evs[0].Note {
		t.Errorf("event 0 = %v", evs[0])
	}
	if evs[2].Point != PointGateBlocked || !evs[2].Note {
		t.Errorf("event 2 = %v", evs[2])
	}
	if r.Count(PointExitNotify) != 1 {
		t.Errorf("Count(exit-notify) = %d", r.Count(PointExitNotify))
	}
}

func TestSchedulerParkStepDone(t *testing.T) {
	s := NewScheduler()
	Install(s)
	defer Uninstall()

	var trace []string
	task := s.Go("worker", 0, func() error {
		trace = append(trace, "a")
		Yield(PointRegisterVisible, 101)
		trace = append(trace, "b")
		Yield(PointExitNotify, 101)
		trace = append(trace, "c")
		return errors.New("finished")
	})

	// Nothing runs before the first Step.
	if len(trace) != 0 {
		t.Fatalf("task ran before Step: %v", trace)
	}
	ev := s.Step(task)
	if ev.Kind != EventParked || ev.Point != PointRegisterVisible {
		t.Fatalf("step 1 = %v", ev)
	}
	// The controller can hit Yield points itself without being parked.
	Yield(PointKillNotify, 999)

	ev = s.Step(task)
	if ev.Kind != EventParked || ev.Point != PointExitNotify {
		t.Fatalf("step 2 = %v", ev)
	}
	ev = s.Step(task)
	if ev.Kind != EventDone {
		t.Fatalf("step 3 = %v", ev)
	}
	if !task.Done() || task.Err() == nil || task.Err().Error() != "finished" {
		t.Fatalf("task done=%v err=%v", task.Done(), task.Err())
	}
	if got := len(trace); got != 3 {
		t.Fatalf("trace = %v", trace)
	}
}

func TestSchedulerVirtualTimer(t *testing.T) {
	s := NewScheduler()
	Install(s)
	defer Uninstall()

	start := s.Now()
	fired := false
	task := s.Go("gate", 42, func() error {
		AfterFunc(2*time.Second, func() { fired = true })
		Yield(PointRegisterVisible, 42)
		return nil
	})
	if ev := s.Step(task); ev.Kind != EventParked {
		t.Fatalf("step = %v", ev)
	}
	if !s.TimerArmed(42) {
		t.Fatal("timer not armed for pid 42")
	}
	if fired {
		t.Fatal("virtual timer fired on its own")
	}
	if !s.FireTimer(42) {
		t.Fatal("FireTimer found nothing")
	}
	if !fired {
		t.Fatal("FireTimer did not run the function")
	}
	if got := s.Now().Sub(start); got != 2*time.Second {
		t.Fatalf("virtual clock advanced %v, want exactly 2s", got)
	}
	if s.TimerArmed(42) {
		t.Fatal("timer still armed after firing")
	}
	if ev := s.Step(task); ev.Kind != EventDone {
		t.Fatalf("final step = %v", ev)
	}
}

func TestSchedulerBlockedNoteRouting(t *testing.T) {
	s := NewScheduler()
	Install(s)
	defer Uninstall()

	release := make(chan struct{})
	task := s.Go("gate", 7, func() error {
		Note(PointGateBlocked, 7) // first block: task is current
		<-release                 // stand-in for cond.Wait
		Note(PointGateBlocked, 7) // re-block after an external wake: routed by pid
		<-release
		return nil
	})
	ev := s.Step(task)
	if ev.Kind != EventBlocked || ev.PID != 7 {
		t.Fatalf("step = %v", ev)
	}
	// Wake it externally, as a kernel broadcast would.
	release <- struct{}{}
	ev, ok := s.Await(task, 2*time.Second)
	if !ok || ev.Kind != EventBlocked {
		t.Fatalf("await after wake = %v ok=%v", ev, ok)
	}
	release <- struct{}{}
	ev, ok = s.Await(task, 2*time.Second)
	if !ok || ev.Kind != EventDone {
		t.Fatalf("await done = %v ok=%v", ev, ok)
	}
}
