package dsched

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// EventKind classifies what a scheduled task just did.
type EventKind uint8

const (
	// EventParked: the task reached a Yield point and is parked until the
	// next Step.
	EventParked EventKind = iota
	// EventBlocked: the task noted PointGateBlocked and is about to block
	// in the kernel gate's condition wait. It resumes when kernel state
	// wakes it (a sync, kill, exit or timer broadcast), not via Step.
	EventBlocked
	// EventDone: the task's function returned; Task.Err holds its result.
	EventDone
)

func (k EventKind) String() string {
	switch k {
	case EventParked:
		return "parked"
	case EventBlocked:
		return "blocked"
	case EventDone:
		return "done"
	default:
		return "event(?)"
	}
}

// Event is one scheduling observation delivered to the controller: the task
// parked at a yield point, blocked at the gate, or completed.
type Event struct {
	Kind  EventKind
	Point Point
	PID   int32
}

func (e Event) String() string {
	if e.Kind == EventDone {
		return "done"
	}
	return fmt.Sprintf("%s@%s:%d", e.Kind, e.Point, e.PID)
}

// Task is one goroutine under deterministic control. It runs only between a
// Step call and its next Parked/Blocked/Done event; outside those windows
// the goroutine is either parked on the scheduler, blocked on kernel state,
// or finished. Exactly one task (or the controller itself) executes at any
// moment, which is what makes exploration deterministic.
type Task struct {
	Name string

	resume chan struct{}
	events chan Event
	pid    atomic.Int32

	err  error // written before the Done event is sent (happens-before via channel)
	done atomic.Bool
}

// Err returns the task function's result; valid once Done has been
// observed.
func (t *Task) Err() error { return t.err }

// Done reports whether the task has completed.
func (t *Task) Done() bool { return t.done.Load() }

// Scheduler is the cooperative controller the model checker installs via
// Install: Yield points park the currently stepped task, PointGateBlocked
// notes report gate quiescence, and the clock is virtual — timers fire only
// when the controller calls FireTimer, as an explicit transition.
//
// The controller (the checker's goroutine) is single-threaded: it resumes
// exactly one task at a time with Step and waits for that task's next event
// before doing anything else. Code the controller runs inline (message
// delivery, shard poisoning) may hit Yield points too; they no-op, because
// no task is current.
type Scheduler struct {
	mu     sync.Mutex
	byPID  map[int32]*Task
	timers []*vtimer

	current atomic.Pointer[Task]
	vnow    atomic.Int64 // virtual ns since vbase
}

// vbase anchors the virtual clock at a fixed instant so schedules hash and
// replay identically across runs.
var vbase = time.Unix(1_700_000_000, 0)

// NewScheduler creates a controller with an empty task set and the virtual
// clock at its base instant.
func NewScheduler() *Scheduler {
	return &Scheduler{byPID: make(map[int32]*Task)}
}

// Go creates a task that will run fn when first stepped. bindPID, when
// non-zero, routes PointGateBlocked notes for that pid to this task (used
// for gate tasks, which are woken by kernel broadcasts rather than Step).
// The goroutine starts parked: nothing runs until Step.
func (s *Scheduler) Go(name string, bindPID int32, fn func() error) *Task {
	t := &Task{
		Name:   name,
		resume: make(chan struct{}),
		events: make(chan Event, 64),
	}
	t.pid.Store(bindPID)
	if bindPID != 0 {
		s.mu.Lock()
		s.byPID[bindPID] = t
		s.mu.Unlock()
	}
	go func() {
		<-t.resume
		err := fn()
		t.err = err
		t.done.Store(true)
		s.current.CompareAndSwap(t, nil)
		t.events <- Event{Kind: EventDone}
	}()
	return t
}

// Step resumes t and waits for its next event: parked at a yield point,
// blocked at the gate, or done. It is the controller's only way to hand the
// processor to a task.
func (s *Scheduler) Step(t *Task) Event {
	s.current.Store(t)
	t.resume <- struct{}{}
	return <-t.events
}

// Await waits, without resuming anything, for t's next event — used after
// the controller performed an action that wakes a gate-blocked task (a
// sync notification, a kill, an exit, a fired timer). ok is false if no
// event arrives within timeout, which means the code under test failed to
// wake a waiter it should have — itself a reportable liveness violation.
func (s *Scheduler) Await(t *Task, timeout time.Duration) (Event, bool) {
	select {
	case ev := <-t.events:
		return ev, true
	case <-time.After(timeout):
		return Event{}, false
	}
}

// Yield implements Hooks: park the currently stepped task. Calls from
// goroutines that are not the stepped task (the controller running inline
// deliveries, production goroutines) fall through.
func (s *Scheduler) Yield(p Point, pid int32) {
	t := s.current.Load()
	if t == nil {
		return
	}
	s.current.Store(nil)
	t.events <- Event{Kind: EventParked, Point: p, PID: pid}
	<-t.resume
}

// Note implements Hooks: route PointGateBlocked to the gate task owning
// pid. The task is about to enter its condition wait holding the kernel
// lock, so this only records — the send is buffered and never parks.
func (s *Scheduler) Note(p Point, pid int32) {
	if p != PointGateBlocked {
		return
	}
	t := s.current.Load()
	if t == nil || t.pid.Load() != pid {
		s.mu.Lock()
		t = s.byPID[pid]
		s.mu.Unlock()
	}
	if t == nil {
		return
	}
	// The task is transitioning from "stepped" to "blocked on kernel
	// state": it is no longer schedulable via Step, so it must not be
	// current when the controller resumes.
	s.current.CompareAndSwap(t, nil)
	t.events <- Event{Kind: EventBlocked, Point: p, PID: pid}
}

// Now implements Hooks: the virtual clock.
func (s *Scheduler) Now() time.Time {
	return vbase.Add(time.Duration(s.vnow.Load()))
}

// AfterFunc implements Hooks: register a virtual timer that fires only via
// FireTimer. The timer is attributed to the currently stepped task's bound
// pid (the kernel gate arms its epoch timer while being stepped), so the
// controller can later fire "the epoch timer of process P" by name.
func (s *Scheduler) AfterFunc(d time.Duration, f func()) Timer {
	var pid int32
	if t := s.current.Load(); t != nil {
		pid = t.pid.Load()
	}
	vt := &vtimer{s: s, pid: pid, f: f}
	s.mu.Lock()
	vt.when = s.vnow.Load() + int64(d)
	vt.armed = true
	s.timers = append(s.timers, vt)
	s.mu.Unlock()
	return vt
}

// TimerArmed reports whether pid has an armed virtual timer.
func (s *Scheduler) TimerArmed(pid int32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, vt := range s.timers {
		if vt.armed && vt.pid == pid {
			return true
		}
	}
	return false
}

// FireTimer fires pid's earliest armed virtual timer: the virtual clock
// advances to exactly the timer's deadline (reproducing the tick-boundary
// case a real clock only hits by luck) and the timer's function runs on the
// controller's goroutine. Reports whether a timer fired.
func (s *Scheduler) FireTimer(pid int32) bool {
	s.mu.Lock()
	var best *vtimer
	for _, vt := range s.timers {
		if vt.armed && vt.pid == pid && (best == nil || vt.when < best.when) {
			best = vt
		}
	}
	if best == nil {
		s.mu.Unlock()
		return false
	}
	best.armed = false
	if best.when > s.vnow.Load() {
		s.vnow.Store(best.when)
	}
	f := best.f
	s.mu.Unlock()
	f()
	return true
}

// vtimer is a virtual timer: armed state and deadline live under the
// scheduler lock; Reset re-arms relative to the current virtual instant.
type vtimer struct {
	s     *Scheduler
	pid   int32
	when  int64
	armed bool
	f     func()
}

func (vt *vtimer) Reset(d time.Duration) {
	vt.s.mu.Lock()
	vt.when = vt.s.vnow.Load() + int64(d)
	vt.armed = true
	vt.s.mu.Unlock()
}

func (vt *vtimer) Stop() bool {
	vt.s.mu.Lock()
	was := vt.armed
	vt.armed = false
	vt.s.mu.Unlock()
	return was
}

var _ Hooks = (*Scheduler)(nil)
var _ Timer = (*vtimer)(nil)
