package experiments

import (
	"fmt"
	"strings"
	"time"

	"herqules/internal/ipc"
	"herqules/internal/policy"
	"herqules/internal/sim"
	"herqules/internal/verifier"
)

// ThroughputRow is one measurement of the verifier drain rate: a message
// stream from Procs monitored processes drained by either the scalar pump
// (one Recv + one Deliver per message, the pre-sharding design) or the
// sharded batch pipeline.
type ThroughputRow struct {
	Procs      int
	Mode       string // "scalar" or "sharded-batch"
	Shards     int
	Batch      int
	Messages   int
	Elapsed    time.Duration
	MsgsPerSec float64
}

// throughputPolicies is the per-process policy set the drain benchmark
// evaluates: the §4.1 CFI policy plus the §2 counter.
func throughputPolicies() []policy.Policy {
	return []policy.Policy{policy.NewCFI(), policy.NewCounter()}
}

// throughputStream builds an interleaved multi-process message stream:
// pointer define/check/invalidate triples (the HQ-CFI hot mix) with
// per-process consecutive sequence counters, so CheckSeq runs in both modes.
// Processes alternate at scheduler-quantum granularity — a monitored program
// emits a long run of messages per timeslice, so the stream interleaves runs
// of streamQuantum triples rather than single messages.
const streamQuantum = 16

func throughputStream(procs, messages int) []ipc.Message {
	msgs := make([]ipc.Message, 0, messages)
	seqs := make([]uint64, procs+1)
	for q := 0; len(msgs) < messages; q++ {
		pid := int32(1 + q%procs)
		for t := 0; t < streamQuantum && len(msgs) < messages; t++ {
			i := q*streamQuantum + t
			addr := uint64(0x1000 + 8*((i/procs)%4096))
			for _, op := range [...]ipc.Op{ipc.OpPointerDefine, ipc.OpPointerCheck, ipc.OpPointerInvalidate} {
				seqs[pid]++
				msgs = append(msgs, ipc.Message{Op: op, PID: pid, Arg1: addr, Arg2: addr + 1, Seq: seqs[pid]})
				if len(msgs) == messages {
					break
				}
			}
		}
	}
	return msgs
}

// throughputReps is how many times each configuration is drained; the
// fastest run is reported. The measurement is a pure CPU loop, so the best
// of a few repetitions is the run least disturbed by scheduler noise.
const throughputReps = 3

// Throughput measures verifier messages/sec for each process count, scalar
// vs sharded-batch, over identical replayed streams. shards and batch <= 0
// select the verifier defaults (GOMAXPROCS shards, DefaultBatchSize).
func Throughput(messages int, procCounts []int, shards, batch int) []ThroughputRow {
	if messages <= 0 {
		messages = 1 << 20
	}
	if len(procCounts) == 0 {
		procCounts = []int{1, 4, 16}
	}
	var rows []ThroughputRow
	for _, procs := range procCounts {
		stream := throughputStream(procs, messages)

		mk := func(n int) *verifier.Verifier {
			v := verifier.NewSharded(throughputPolicies, nil, n)
			v.CheckSeq = true
			if batch > 0 {
				v.BatchSize = batch
			}
			for pid := 1; pid <= procs; pid++ {
				v.ProcessStarted(int32(pid))
			}
			return v
		}

		r := ipc.NewReplay(stream)
		best := func(pump func(v *verifier.Verifier)) (time.Duration, *verifier.Verifier) {
			var minElapsed time.Duration
			var last *verifier.Verifier
			for rep := 0; rep < throughputReps; rep++ {
				// Fresh verifier per rep: policy state grows with the
				// stream, and reusing it would make later reps cheaper.
				v := mk(shards)
				r.Rewind()
				start := time.Now()
				pump(v)
				elapsed := time.Since(start)
				if rep == 0 || elapsed < minElapsed {
					minElapsed = elapsed
				}
				last = v
			}
			return minElapsed, last
		}

		// Scalar baseline: single shard, per-message Recv+Deliver.
		bestScalar := func() time.Duration {
			var minElapsed time.Duration
			for rep := 0; rep < throughputReps; rep++ {
				v := mk(1)
				r.Rewind()
				start := time.Now()
				v.PumpScalar(r)
				elapsed := time.Since(start)
				if rep == 0 || elapsed < minElapsed {
					minElapsed = elapsed
				}
			}
			return minElapsed
		}()
		rows = append(rows, ThroughputRow{
			Procs: procs, Mode: "scalar", Shards: 1, Batch: 1,
			Messages: messages, Elapsed: bestScalar,
			MsgsPerSec: float64(messages) / bestScalar.Seconds(),
		})

		// Sharded batch pipeline.
		elapsed, vb := best(func(v *verifier.Verifier) { v.Pump(r) })
		b := vb.BatchSize
		if b == 0 {
			b = verifier.DefaultBatchSize
		}
		rows = append(rows, ThroughputRow{
			Procs: procs, Mode: "sharded-batch", Shards: vb.Shards(), Batch: b,
			Messages: messages, Elapsed: elapsed,
			MsgsPerSec: float64(messages) / elapsed.Seconds(),
		})
	}
	return rows
}

// FormatThroughput renders the rows plus the model's predicted amortization
// for the shared-memory drain path, so measured and modelled speedups can be
// compared at a glance.
func FormatThroughput(rows []ThroughputRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s %-14s %-7s %-6s %12s %12s %10s\n",
		"Procs", "Mode", "Shards", "Batch", "Messages", "Msgs/sec", "Speedup")
	var scalarRate float64
	for _, r := range rows {
		speedup := "-"
		if r.Mode == "scalar" {
			scalarRate = r.MsgsPerSec
		} else if scalarRate > 0 {
			speedup = fmt.Sprintf("%.2fx", r.MsgsPerSec/scalarRate)
		}
		fmt.Fprintf(&sb, "%-6d %-14s %-7d %-6d %12d %12.0f %10s\n",
			r.Procs, r.Mode, r.Shards, r.Batch, r.Messages, r.MsgsPerSec, speedup)
	}
	scalarNs := sim.BatchRecvNanos(sim.RecvBurstOverheadNanosShared, 1)
	batchNs := sim.BatchRecvNanos(sim.RecvBurstOverheadNanosShared, verifier.DefaultBatchSize)
	fmt.Fprintf(&sb, "model: shared-memory drain %.1f ns/msg scalar vs %.1f ns/msg batched (%.2fx)\n",
		scalarNs, batchNs, scalarNs/batchNs)
	return sb.String()
}
