package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"herqules/internal/ipc"
	"herqules/internal/kernel"
	"herqules/internal/verifier"
)

// MultiprocRow is one measurement of the supervisor's multi-source verifier
// pump: N concurrent monitored message streams — one per-process replayed
// channel each, exactly the per-process topology System.Launch builds —
// drained through a single shared verifier.PumpSet, reported as aggregate
// verified messages/sec.
type MultiprocRow struct {
	Procs      int
	Shards     int
	Messages   int // aggregate across all processes
	Elapsed    time.Duration
	MsgsPerSec float64 // aggregate
	PerProc    float64 // MsgsPerSec / Procs
	Speedup    float64 // aggregate rate relative to the Procs=1 row
}

// multiprocReps mirrors throughputReps: each configuration is drained a few
// times and the fastest run reported, the repetition least disturbed by
// scheduler noise.
const multiprocReps = 3

// MultiprocCounts builds the default process-count ladder: 1 → 2 → 4 →
// GOMAXPROCS (deduplicated, ascending), the scaling axis of the supervisor
// experiment.
func MultiprocCounts() []int {
	counts := map[int]bool{1: true, 2: true, 4: true, runtime.GOMAXPROCS(0): true}
	out := make([]int, 0, len(counts))
	for n := range counts {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Multiproc measures aggregate verifier throughput under the supervisor's
// multi-tenant wiring: for each process count N, it registers N processes
// with one kernel + one sharded verifier, attaches N per-process replay
// receivers to a single PumpSet (each receiver standing in for one
// monitored program's AppendWrite channel, its production cost paid up
// front so the measurement isolates receive + policy evaluation), and times
// the full drain — Attach through Close — of `messages` total messages. The
// per-process streams carry the HQ-CFI hot mix (define/check/invalidate
// triples) with consecutive sequence counters, so CheckSeq integrity
// verification runs throughout.
func Multiproc(messages int, procCounts []int) ([]MultiprocRow, error) {
	if messages <= 0 {
		messages = 1 << 20
	}
	if len(procCounts) == 0 {
		procCounts = MultiprocCounts()
	}
	var rows []MultiprocRow
	var baseRate float64
	for _, procs := range procCounts {
		perProc := messages / procs
		if perProc < 1 {
			perProc = 1
		}
		total := perProc * procs

		// One single-PID stream per process, produced once and replayed
		// (rewound) every repetition.
		replays := make([]*ipc.Replay, procs)
		for p := 0; p < procs; p++ {
			stream := make([]ipc.Message, 0, perProc)
			pid := int32(1 + p)
			var seq uint64
			for len(stream) < perProc {
				i := len(stream) / 3
				addr := uint64(0x1000 + 8*(i%4096))
				for _, op := range [...]ipc.Op{ipc.OpPointerDefine, ipc.OpPointerCheck, ipc.OpPointerInvalidate} {
					seq++
					stream = append(stream, ipc.Message{Op: op, PID: pid, Arg1: addr, Arg2: addr + 1, Seq: seq})
					if len(stream) == perProc {
						break
					}
				}
			}
			replays[p] = ipc.NewReplay(stream)
		}

		var minElapsed time.Duration
		var shards int
		for rep := 0; rep < multiprocReps; rep++ {
			// Fresh kernel/verifier/pump per rep: policy state grows with
			// the stream, and reusing it would make later reps cheaper.
			k := kernel.New(nil)
			v := verifier.NewSharded(throughputPolicies, k, 0)
			v.CheckSeq = true
			k.SetListener(v)
			for p := 0; p < procs; p++ {
				v.ProcessStarted(int32(1 + p))
			}
			for _, r := range replays {
				r.Rewind()
			}
			ps := v.NewPumpSet()
			start := time.Now()
			dones := make([]<-chan struct{}, procs)
			for p, r := range replays {
				done, err := ps.Attach(r)
				if err != nil {
					// A fresh pump set refusing an attach is a library bug,
					// but the experiment is library code too: report it
					// instead of panicking out of the caller (after tearing
					// the already-attached sources down so their drains
					// finish).
					for _, d := range dones[:p] {
						<-d
					}
					ps.Close()
					return nil, fmt.Errorf("multiproc: attach on fresh pump set: %w", err)
				}
				dones[p] = done
			}
			for _, done := range dones {
				<-done
			}
			ps.Close()
			elapsed := time.Since(start)
			if rep == 0 || elapsed < minElapsed {
				minElapsed = elapsed
			}
			shards = v.Shards()
		}

		row := MultiprocRow{
			Procs:      procs,
			Shards:     shards,
			Messages:   total,
			Elapsed:    minElapsed,
			MsgsPerSec: float64(total) / minElapsed.Seconds(),
		}
		row.PerProc = row.MsgsPerSec / float64(procs)
		if procs == 1 {
			baseRate = row.MsgsPerSec
		}
		if baseRate > 0 {
			row.Speedup = row.MsgsPerSec / baseRate
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatMultiproc renders the scaling table. Speedup is aggregate
// throughput relative to one monitored process; on a multi-core host it
// should grow toward the shard count as independent processes validate on
// independent shards.
func FormatMultiproc(rows []MultiprocRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s %-7s %12s %12s %14s %14s %9s\n",
		"Procs", "Shards", "Messages", "Elapsed", "Agg msgs/sec", "Per-proc", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-6d %-7d %12d %12s %14.0f %14.0f %8.2fx\n",
			r.Procs, r.Shards, r.Messages, r.Elapsed.Round(time.Microsecond),
			r.MsgsPerSec, r.PerProc, r.Speedup)
	}
	fmt.Fprintf(&sb, "(%d CPUs; one replayed AppendWrite channel per process, all drained by one shared PumpSet)\n",
		runtime.GOMAXPROCS(0))
	return sb.String()
}
