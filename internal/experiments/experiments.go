// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) from the reproduction's own substrates:
//
//	Table 2  — IPC primitive send costs (measured + modelled)
//	Table 4  — correctness of each CFI design over the 48 benchmarks
//	Table 5  — RIPE effectiveness per overflow origin
//	Figure 3 — HQ-CFI-SfeStk relative performance per IPC primitive
//	Figure 4 — AppendWrite-µarch software model vs simulator (train input)
//	Figure 5 — relative performance of all CFI designs
//	Table 6  — lines of code per component (see cmd/loccount)
//	§5.4     — message-rate and verifier memory metrics
//
// Absolute numbers come from this repository's deterministic cycle model,
// not the paper's i9-9900K testbed; EXPERIMENTS.md records the paper's
// values next to the measured ones so the shapes can be compared.
package experiments

import (
	"fmt"
	"math"
	"sort"

	"herqules/internal/compiler"
	"herqules/internal/core"
	"herqules/internal/fpga"
	"herqules/internal/ipc"
	"herqules/internal/sim"
	"herqules/internal/uarch"
	"herqules/internal/workload"
)

// Primitive identifies an IPC configuration for the performance figures,
// matching the paper's suffixes.
type Primitive int

// IPC primitives used by the performance experiments.
const (
	// PrimMQ is the POSIX message queue (-MQ).
	PrimMQ Primitive = iota
	// PrimFPGA is AppendWrite-FPGA (-FPGA).
	PrimFPGA
	// PrimModel is the software model of AppendWrite-µarch (-MODEL).
	PrimModel
	// PrimSim is AppendWrite-µarch under the cycle simulator (-SIM):
	// userspace cycles only, system calls excluded, like ZSim (§5.3.1).
	PrimSim
)

var primNames = [...]string{"MQ", "FPGA", "MODEL", "SIM"}

func (p Primitive) String() string { return primNames[p] }

// Effective per-message stall latencies, in nanoseconds. These differ from
// the raw Table 2 send times because of pipelining: an out-of-order core
// overlaps part of each send with surrounding work, while a system call
// serializes and additionally pollutes caches/TLBs (KPTI flushes). The
// values are chosen so the per-primitive slowdown *shapes* match §5.3.1;
// EXPERIMENTS.md records the reasoning.
const (
	// effMQNanos: the raw mq_send syscall latency of Table 2; its cache
	// and KPTI side effects surface through the syscall cost model.
	effMQNanos = 146
	// effFPGANanos: posted MMIO write TLPs retire from the store buffer
	// without waiting for completion, hiding part of the 102 ns bus
	// latency; the residual store-buffer pressure stalls the core for a
	// fraction of it.
	effFPGANanos = 36
	// effModelNanos: the software fetch-check-increment on the shared
	// AppendAddr plus the message store (Table 2's 8 ns, fully exposed).
	effModelNanos = uarch.SendNanosModel
	// effSimNanos: the AppendWrite instruction is one store micro-op
	// (< 2 ns); the message cost is dominated by the instrumentation
	// instructions around it, charged via the runtime-op costs.
	effSimNanos = uarch.SendNanosHW
)

// costModel returns the cycle model for a primitive.
func (p Primitive) costModel() *sim.CostModel {
	base := sim.Default()
	switch p {
	case PrimMQ:
		return base.WithMessaging(sim.MessageCost(effMQNanos))
	case PrimFPGA:
		return base.WithMessaging(sim.MessageCost(effFPGANanos))
	case PrimModel:
		return base.WithMessaging(sim.MessageCost(effModelNanos))
	case PrimSim:
		m := base.WithMessaging(sim.MessageCost(effSimNanos))
		m.ExcludeSyscalls = true
		return m
	default:
		return base
	}
}

var _ = fpga.SendNanos // Table 2 still reports the raw device latency

// Run is one benchmark execution under a design and primitive.
type Run struct {
	Benchmark *workload.Profile
	Design    compiler.Design
	Cycles    uint64
	Outcome   *core.Outcome
	Err       error // build/instrumentation error (not a program crash)
}

// execute runs one benchmark under one design with the given cost model.
func execute(p *workload.Profile, d compiler.Design, cost *sim.CostModel, scale workload.Scale) *Run {
	r := &Run{Benchmark: p, Design: d}
	opts := compiler.DefaultOptions()
	opts.Allowlist = p.Allowlist()
	ins, err := compiler.Instrument(p.Build(scale), d, opts)
	if err != nil {
		r.Err = err
		return r
	}
	out, err := core.Run(ins, core.Options{
		ContinueChecks: true, // the paper continues after violations (§5)
		Cost:           cost,
	})
	if err != nil {
		r.Err = err
		return r
	}
	r.Outcome = out
	r.Cycles = out.Stats.Cycles
	return r
}

// modeledCrash reports whether the run must be recorded as a crash that this
// reproduction models by flag rather than by mechanism: CCFI's
// reserved-register prototype crashes and the shared bugs of the decade-old
// LLVM underlying both CCFI and CPI (§5.1). Everything else in Table 4
// emerges from execution.
func modeledCrash(p *workload.Profile, d compiler.Design) bool {
	switch d {
	case compiler.CCFI:
		return p.CCFIIncompatible
	case compiler.CPI:
		return p.OldCompilerBug // also fails on CPI's old baseline compiler
	default:
		return false
	}
}

// GeoMean computes the geometric mean of vs, ignoring non-positive entries.
func GeoMean(vs []float64) float64 {
	var sum float64
	n := 0
	for _, v := range vs {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Median computes the median of vs.
func Median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// sameOutput compares program outputs.
func sameOutput(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func fmtPct(v float64) string { return fmt.Sprintf("%5.1f%%", v*100) }

var _ = ipc.MessageSize // package used by table2.go
