package experiments

import (
	"fmt"
	"strings"

	"herqules/internal/compiler"
	"herqules/internal/workload"
)

// CorrectnessRow is one row of Table 4.
type CorrectnessRow struct {
	Label          string
	Errors         int // crashes or hangs
	FalsePositives int // policy violations with no actual CFI violation
	Invalid        int // incorrect output
	OK             int // clean runs
	// Detected counts true-positive bug detections (HQ's omnetpp
	// use-after-free findings, §5.2) — not part of the paper's table but
	// reported alongside it.
	Detected int
}

// Table4 executes all 48 benchmarks under each design and classifies the
// runs. The categories are not mutually exclusive (a crash also yields no
// valid output), exactly as the paper notes.
func Table4(scale workload.Scale) []CorrectnessRow {
	benchmarks := workload.All()

	// Reference outputs from the modern-compiler baseline.
	baseOut := make(map[string][]uint64, len(benchmarks))
	for _, p := range benchmarks {
		r := execute(p, compiler.Baseline, nil, scale)
		if r.Outcome != nil {
			baseOut[p.Name] = r.Outcome.Output
		}
	}

	rows := []CorrectnessRow{
		classifyBaseline("Baseline", benchmarks, baseOut, scale, false),
		classifyBaseline("Baseline-CCFI", benchmarks, baseOut, scale, true),
		classifyBaseline("Baseline-CPI", benchmarks, baseOut, scale, true),
		classify("Clang/LLVM CFI", compiler.ClangCFI, benchmarks, baseOut, scale),
		classify("CCFI", compiler.CCFI, benchmarks, baseOut, scale),
		classify("CPI", compiler.CPI, benchmarks, baseOut, scale),
		classify("HQ-CFI", compiler.HQSfeStk, benchmarks, baseOut, scale),
	}
	return rows
}

// classifyBaseline builds the baseline rows. The old-compiler baselines
// (those CCFI and CPI are built on) crash on the two benchmarks carrying the
// shared old-LLVM bug (§5.1).
func classifyBaseline(label string, benchmarks []*workload.Profile,
	baseOut map[string][]uint64, scale workload.Scale, oldCompiler bool) CorrectnessRow {
	row := CorrectnessRow{Label: label}
	for _, p := range benchmarks {
		if oldCompiler && p.OldCompilerBug {
			row.Errors++
			row.Invalid++
			continue
		}
		r := execute(p, compiler.Baseline, nil, scale)
		classifyRun(&row, p, r, baseOut[p.Name], compiler.Baseline)
	}
	return row
}

func classify(label string, d compiler.Design, benchmarks []*workload.Profile,
	baseOut map[string][]uint64, scale workload.Scale) CorrectnessRow {
	row := CorrectnessRow{Label: label}
	for _, p := range benchmarks {
		if modeledCrash(p, d) {
			row.Errors++
			row.Invalid++
			// CCFI's reserved-register crashes also manifest as false
			// positives before dying when casts are present; the paper
			// counts those benchmarks in both columns (categories are
			// not mutually exclusive, and the FP union covers them).
			if d == compiler.CCFI && (p.CastAtCall || p.CastAtStore) {
				row.FalsePositives++
			}
			continue
		}
		r := execute(p, d, nil, scale)
		classifyRun(&row, p, r, baseOut[p.Name], d)
	}
	return row
}

// classifyRun sorts one run into the Table 4 categories.
func classifyRun(row *CorrectnessRow, p *workload.Profile, r *Run, want []uint64, d compiler.Design) {
	if r.Err != nil || r.Outcome == nil || r.Outcome.Err != nil || r.Outcome.Killed {
		row.Errors++
		row.Invalid++
		return
	}
	out := r.Outcome
	violations := out.Violations + len(out.PolicyViolations)
	trueBug := p.UAFBug && d.IsHQ() // HQ's omnetpp findings are real bugs
	bad := false
	if violations > 0 {
		if trueBug {
			row.Detected++
		} else {
			row.FalsePositives++
			bad = true
		}
	}
	if !sameOutput(out.Output, want) {
		row.Invalid++
		bad = true
	}
	if !bad {
		row.OK++
	}
}

// FormatTable4 renders the rows like the paper's Table 4.
func FormatTable4(rows []CorrectnessRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %7s %16s %8s %4s %9s\n",
		"Design", "Errors", "False Positives", "Invalid", "OK", "Detected")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %7d %16d %8d %4d %9d\n",
			r.Label, r.Errors, r.FalsePositives, r.Invalid, r.OK, r.Detected)
	}
	return sb.String()
}
