package experiments

import (
	"fmt"
	"strings"
	"time"

	"herqules/internal/verify"
)

// Verify runs the gate-protocol model checker (internal/verify) and formats
// the evidence both ways:
//
//  1. Soundness of the system: the default 2-proc × 2-shard scope — every
//     transition family enabled, §3.1.1 counter checking on — is explored
//     EXHAUSTIVELY (the state space closes under the configured bounds) and
//     must be clean.
//  2. Soundness of the checker: each fixed lifecycle race is re-introduced
//     through its revert knob (kernel.UnsafeLateNotify,
//     kernel.UnsafeEpochTimer) or its mitigating feature is disabled
//     (CheckSeq off under reorder), and the checker must report the expected
//     invariant violation with a minimal replayable schedule. A checker that
//     cannot fail proves nothing.
//
// full additionally explores the 3-process scope (~550k states, minutes);
// the smoke scope (~71k states with the connection-churn family) finishes in
// about ten seconds.
func Verify(full bool) (string, error) {
	var b strings.Builder
	var firstErr error
	fail := func(format string, args ...any) {
		if firstErr == nil {
			firstErr = fmt.Errorf(format, args...)
		}
		fmt.Fprintf(&b, "  FAIL: "+format+"\n", args...)
	}

	clean := func(label string, cfg verify.Config) {
		start := time.Now()
		res := verify.Check(cfg)
		fmt.Fprintf(&b, "%-44s %8d states %9d transitions %8s",
			label, res.StatesExplored, res.TransitionsApplied,
			time.Since(start).Round(time.Millisecond))
		switch {
		case !res.Clean():
			fmt.Fprintf(&b, "  VIOLATED\n%s", res.Violations[0])
			fail("%s: %d violation(s)", label, len(res.Violations))
		case res.Truncated:
			fmt.Fprintf(&b, "  TRUNCATED\n")
			fail("%s: exploration truncated; scope did not close", label)
		default:
			fmt.Fprintf(&b, "  CLEAN (exhaustive)\n")
		}
	}

	catches := func(label string, cfg verify.Config, wantInv string) {
		res := verify.Check(cfg)
		if res.Clean() {
			fail("%s: explored clean, expected a %s violation", label, wantInv)
			return
		}
		v := res.Violations[0]
		if v.Invariant != wantInv {
			fail("%s: caught %s, expected %s", label, v.Invariant, wantInv)
			return
		}
		fmt.Fprintf(&b, "%-44s caught %s, minimal schedule: [%s]\n",
			label, v.Invariant, strings.Join(v.Schedule, " "))
	}

	b.WriteString("Exhaustive exploration (all fixes in place):\n")
	clean("2 procs x 2 shards, all families + churn", verify.Defaults())
	if full {
		// The 3-proc scope runs without the connection-churn family: churn
		// triples the per-process state and the 3-proc product does not
		// close under any tractable bound. Churn is covered exhaustively at
		// 2 procs above — the resume protocol is per-session, so its bugs
		// need one severed process plus one bystander, not three.
		cfg := verify.Defaults()
		cfg.Procs = 3
		cfg.Conn = false
		cfg.MaxDepth = 30
		cfg.MaxStates = 5_000_000
		clean("3 procs x 2 shards, all families, no churn", cfg)
	} else {
		b.WriteString("  (3-proc scope skipped; run without -quick for the full exploration)\n")
	}

	b.WriteString("\nDetector checks (one fix reverted at a time):\n")
	catches("registration notify-after-visible",
		verify.Config{UnsafeLateNotify: true, CheckSeq: true, MaxDepth: 8, MaxStates: 2000},
		verify.InvLostMessage)
	catches("epoch watchdog armed-once + strict After",
		verify.Config{Expire: true, UnsafeEpochTimer: true, CheckSeq: true, MaxDepth: 8, MaxStates: 2000},
		verify.InvLiveness)
	catches("message reorder without CheckSeq",
		verify.Config{Reorder: true, CheckSeq: false, MaxDepth: 12, MaxStates: 4000},
		verify.InvGate)
	catches("resume replay trimmed on write, not on ack",
		verify.Config{Conn: true, UnsafeSeverDrop: true, CheckSeq: true,
			MaxSends: 2, MaxDepth: 10, MaxStates: 4000},
		verify.InvChurn)

	if firstErr == nil {
		b.WriteString("\nverify: PASS — protocol clean under exhaustive exploration; checker demonstrably catches each reverted fix\n")
	}
	return b.String(), firstErr
}
