package experiments

import (
	"fmt"
	"strings"
	"time"

	"herqules/internal/fpga"
	"herqules/internal/ipc"
	"herqules/internal/mem"
	"herqules/internal/uarch"
)

// IPCRow is one row of Table 2.
type IPCRow struct {
	Name            string
	AppendOnly      bool
	AsyncValidation bool
	PrimaryCost     string
	// PaperNanos is the send latency the paper reports (the value the
	// deterministic performance model uses).
	PaperNanos float64
	// MeasuredNanos is this host's measured per-send wall-clock time for
	// the Go implementation (hardware-modelled primitives report the
	// model cost instead; see Modeled).
	MeasuredNanos float64
	// Modeled marks rows whose measured value is the model itself (the
	// two AppendWrite hardware designs and light-weight contexts).
	Modeled bool
}

// Table2 measures/models the send cost of every IPC primitive.
func Table2(sendsPerPrimitive int) []IPCRow {
	if sendsPerPrimitive <= 0 {
		sendsPerPrimitive = 20000
	}
	rows := []IPCRow{}

	addMeasured := func(ch *ipc.Channel, n int) {
		ns := measureSend(ch, n)
		rows = append(rows, IPCRow{
			Name:            ch.Props.Name,
			AppendOnly:      ch.Props.AppendOnly,
			AsyncValidation: ch.Props.AsyncValidation,
			PrimaryCost:     ch.Props.PrimaryCost,
			PaperNanos:      ch.Props.SendNanos,
			MeasuredNanos:   ns,
		})
	}

	addMeasured(ipc.NewMessageQueue(), sendsPerPrimitive)
	addMeasured(ipc.NewPipe(), sendsPerPrimitive)
	addMeasured(ipc.NewSocket(), sendsPerPrimitive)
	addMeasured(ipc.NewSharedRing(1<<16), sendsPerPrimitive)

	// Light-weight contexts: each send costs two modelled context
	// switches; measure a few to confirm the model, then report it.
	lwc := ipc.NewLWC()
	lwcNs := measureSend(lwc, 200)
	rows = append(rows, IPCRow{
		Name: lwc.Props.Name, AppendOnly: lwc.Props.AppendOnly,
		AsyncValidation: lwc.Props.AsyncValidation, PrimaryCost: lwc.Props.PrimaryCost,
		PaperNanos: lwc.Props.SendNanos, MeasuredNanos: lwcNs, Modeled: true,
	})

	// AppendWrite-FPGA: the Go object measures the functional model; the
	// PCIe/MMIO latency is the modelled figure.
	fch, _ := fpga.New(1 << 16)
	fNs := measureSend(fch, sendsPerPrimitive)
	rows = append(rows, IPCRow{
		Name: fch.Props.Name, AppendOnly: fch.Props.AppendOnly,
		AsyncValidation: fch.Props.AsyncValidation, PrimaryCost: fch.Props.PrimaryCost,
		PaperNanos: fch.Props.SendNanos, MeasuredNanos: fNs, Modeled: true,
	})

	// AppendWrite-µarch: hardware semantics over the simulated MMU.
	m := mem.New()
	uch, _, err := uarch.New(m, 0x7f00_0000_0000, 1<<16*uint64(ipc.MessageSize))
	if err == nil {
		uNs := measureSend(uch, sendsPerPrimitive/4)
		rows = append(rows, IPCRow{
			Name: uch.Props.Name, AppendOnly: uch.Props.AppendOnly,
			AsyncValidation: uch.Props.AsyncValidation, PrimaryCost: uch.Props.PrimaryCost,
			PaperNanos: uch.Props.SendNanos, MeasuredNanos: uNs, Modeled: true,
		})
	}
	return rows
}

// measureSend times n sends with a concurrently draining receiver and
// returns the average nanoseconds per send.
func measureSend(ch *ipc.Channel, n int) float64 {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, ok, err := ch.Receiver.Recv(); !ok || err != nil {
				return
			}
		}
	}()
	m := ipc.Message{Op: ipc.OpPointerDefine, Arg1: 1, Arg2: 2}
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := ch.Sender.Send(m); err != nil {
			break
		}
	}
	elapsed := time.Since(start)
	ch.Close()
	<-done
	return float64(elapsed.Nanoseconds()) / float64(n)
}

// FormatTable2 renders the rows like the paper's Table 2.
func FormatTable2(rows []IPCRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %-7s %-7s %-14s %10s %12s\n",
		"IPC Primitive", "Append", "Async", "Primary Cost", "Paper(ns)", "Measured(ns)")
	for _, r := range rows {
		mark := func(b bool) string {
			if b {
				return "yes"
			}
			return "no"
		}
		meas := fmt.Sprintf("%.1f", r.MeasuredNanos)
		if r.Modeled {
			meas += "*"
		}
		fmt.Fprintf(&sb, "%-28s %-7s %-7s %-14s %10.1f %12s\n",
			r.Name, mark(r.AppendOnly), mark(r.AsyncValidation), r.PrimaryCost,
			r.PaperNanos, meas)
	}
	sb.WriteString("(*) Go-object cost of a modelled hardware primitive, not real device latency.\n")
	return sb.String()
}
