package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"herqules/internal/chaos"
	"herqules/internal/compiler"
	"herqules/internal/ipc"
	"herqules/internal/kernel"
	"herqules/internal/mir"
	"herqules/internal/policy"
	"herqules/internal/supervisor"
	"herqules/internal/telemetry"
	"herqules/internal/vm"
)

// Chaos soak parameters. The rates are chosen so a ~250-message process
// stream draws a handful of faults: enough that most processes experience
// the failure classes under test, low enough that the soak's wall time stays
// dominated by execution, not epoch stalls.
const (
	chaosEpoch      = 250 * time.Millisecond
	chaosWallBudget = 60 * time.Second
	chaosIters      = 60 // pointer-traffic iterations per process
)

func chaosInjector(seed uint64) *chaos.Injector {
	// Integrity faults (drop/duplicate/reorder/corrupt) are fatal for the
	// stream that draws one, so their combined rate is tuned to roughly one
	// per three process streams: the soak then exercises both clean-process
	// outcomes — surviving untouched and dying attributably. Timing faults
	// (delay/transient errors/stalls) are survivable and run much hotter.
	return chaos.NewInjector(seed,
		chaos.WithDrop(0.0012),
		chaos.WithDuplicate(0.0010),
		chaos.WithReorder(0.0010, 4),
		chaos.WithCorrupt(0.0010),
		chaos.WithDelay(0.02, 200*time.Microsecond),
		chaos.WithTransientSendErrors(0.02),
		chaos.WithTransientRecvErrors(0.02),
		chaos.WithStall(0.01, time.Millisecond),
	)
}

// chaosVictim builds the soak workload: a loop of heap slots holding a
// function pointer that is stored, checked and indirectly called (the HQ-CFI
// hot path), with a gated effectful system call every few iterations so
// bounded asynchronous validation is exercised throughout, ending in the
// supervisor test's corruptible dispatch. With corrupt set, the final
// function pointer is overwritten through an integer alias and the attacker
// payload carries a *gated* exit(99) the kernel must never let commit.
func chaosVictim(corrupt bool) (*mir.Module, error) {
	mod := mir.NewModule("chaos-victim")
	b := mir.NewBuilder(mod)
	sig := mir.FuncType(mir.I64, mir.I64)

	b.Func("attacker", sig, "x") // function #0
	b.Syscall(vm.SysMarkExploit)
	b.Syscall(vm.SysExit, mir.ConstInt(99))
	b.Ret(mir.ConstInt(0))

	legit := b.Func("legit", sig, "x")
	b.Ret(b.Add(legit.Params[0], mir.ConstInt(1)))

	b.Func("main", mir.FuncType(mir.I64))
	for i := 0; i < chaosIters; i++ {
		slot := b.Cast(b.Malloc(mir.ConstInt(16)), mir.Ptr(mir.Ptr(sig)))
		b.Store(b.FuncAddr(legit), slot)
		r := b.ICall(b.Load(slot), sig, mir.ConstInt(uint64(i)))
		if i%8 == 7 {
			b.Syscall(vm.SysSend, r)
		}
	}
	slot := b.Cast(b.Malloc(mir.ConstInt(16)), mir.Ptr(mir.Ptr(sig)))
	b.Store(b.FuncAddr(legit), slot)
	if corrupt {
		b.Store(mir.ConstInt(vm.StaticFuncAddr(0)), b.Cast(slot, mir.Ptr(mir.I64)))
	}
	r := b.ICall(b.Load(slot), sig, mir.ConstInt(41))
	b.Syscall(vm.SysWrite, r)
	b.Syscall(vm.SysExit, mir.ConstInt(0))
	b.Ret(mir.ConstInt(0))
	mod.Finalize()
	if err := mir.Validate(mod); err != nil {
		return nil, fmt.Errorf("chaos: victim module: %w", err)
	}
	return mod, nil
}

// chaosAttributable reports whether a kill reason is one the chaos plane
// accounts for — a process may only die for a reason the injected faults
// explain. Sequence-counter violations cover drop/duplicate/reorder and
// Seq-bit corruption; epoch expiry covers suppressed synchronization
// messages (and carries the wedged-verifier detail when the watchdog
// attributed it); integrity errors cover framing corruption; a recorded
// policy violation covers payload-bit corruption that turned a clean check
// into a failing one.
func chaosAttributable(reason string, hadViolations bool) bool {
	for _, marker := range []string{
		"message counter",                // CheckSeq (§3.1.1)
		"synchronization epoch expired",  // §2.2 deadline, incl. wedged detail
		"message integrity violated",     // receiver-attributed framing error
		"message authentication",         // hmac sealer: MAC mismatch or stream position
		"poisoned",                       // shard poisoned by a delivery-path failure
	} {
		if strings.Contains(reason, marker) {
			return true
		}
	}
	return hadViolations
}

// chaosSoakReport summarizes one enforcement soak run.
type chaosSoakReport struct {
	procs, violators         int
	cleanOK, cleanKilled     int
	violatorsKilled          int
	kills                    uint64
	faults                   chaos.Counts
	scheduleHash             uint64
	elapsed                  time.Duration
}

// chaosSoak runs the enforcement phase: procs mixed clean/violating
// processes (every third one violating) under one fail-closed System with
// CheckSeq on, every channel wrapped by the seeded injector on both ends.
// It returns an error on any violated invariant: a violator passing a gate,
// a kill count not matching the killed-process count, a clean process dead
// for a reason chaos cannot explain, or the wall budget running out.
func chaosSoak(seed uint64, procs int, cleanIns, attackIns *compiler.Instrumented) (*chaosSoakReport, error) {
	m := telemetry.New(0)
	sys := supervisor.New(supervisor.Config{
		KillOnViolation: true,
		CheckSeq:        true,
		Metrics:         m,
		Epoch:           chaosEpoch,
	})
	inj := chaosInjector(seed)

	rep := &chaosSoakReport{procs: procs}
	start := time.Now()
	handles := make([]*supervisor.Proc, procs)
	for i := 0; i < procs; i++ {
		ins := cleanIns
		if i%3 == 2 {
			ins = attackIns
			rep.violators++
		}
		raw := ipc.NewSharedRing(1 << 12)
		ch := &ipc.Channel{
			Sender:   inj.Sender(raw.Sender),
			Receiver: inj.Receiver(raw.Receiver),
			Props:    raw.Props,
		}
		p, err := sys.Launch(ins, supervisor.LaunchOptions{Channel: ch})
		if err != nil {
			return nil, fmt.Errorf("chaos: launch %d: %w", i, err)
		}
		handles[i] = p
	}

	// Bounded wall time: collect outcomes on a side goroutine and treat the
	// budget expiring as a hard failure (after killing the stragglers so the
	// System still tears down).
	type waited struct {
		i   int
		out *supervisor.Outcome
		err error
	}
	results := make(chan waited, procs)
	go func() {
		for i, p := range handles {
			out, err := p.Wait()
			results <- waited{i, out, err}
		}
	}()

	timeout := time.After(chaosWallBudget)
	outcomes := make([]*supervisor.Outcome, procs)
	for n := 0; n < procs; n++ {
		select {
		case w := <-results:
			if w.err != nil {
				return nil, fmt.Errorf("chaos: wait %d: %w", w.i, w.err)
			}
			outcomes[w.i] = w.out
		case <-timeout:
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_ = sys.Shutdown(ctx)
			return nil, fmt.Errorf("chaos: wall budget %v exceeded with %d/%d processes outstanding",
				chaosWallBudget, procs-n, procs)
		}
	}

	var invariantErrs []string
	killedProcs := 0
	for i, out := range outcomes {
		if out.Killed {
			killedProcs++
		}
		if i%3 == 2 {
			// Violating process: must never pass a gate. The gated payload is
			// exit(99); the ungated exploit marker may race the kill (§2.2
			// bounds the window, it does not close it), so the marker is not
			// asserted — the gated side effect is.
			if !out.Killed {
				invariantErrs = append(invariantErrs,
					fmt.Sprintf("violator %d (pid %d) was not killed", i, out.PID))
				continue
			}
			rep.violatorsKilled++
			if out.ExitCode == 99 {
				invariantErrs = append(invariantErrs,
					fmt.Sprintf("violator %d (pid %d): gated payload committed", i, out.PID))
			}
			continue
		}
		// Clean process: finishes with the right answer, or dies for a
		// reason the injected faults explain.
		if !out.Killed {
			rep.cleanOK++
			if out.Err != nil {
				invariantErrs = append(invariantErrs,
					fmt.Sprintf("clean %d (pid %d): error %v", i, out.PID, out.Err))
			} else if len(out.Output) != 1 || out.Output[0] != 42 {
				invariantErrs = append(invariantErrs,
					fmt.Sprintf("clean %d (pid %d): output %v, want [42]", i, out.PID, out.Output))
			}
			continue
		}
		rep.cleanKilled++
		if !chaosAttributable(out.KillReason, len(out.PolicyViolations) > 0) {
			invariantErrs = append(invariantErrs,
				fmt.Sprintf("clean %d (pid %d) killed for unattributable reason %q",
					i, out.PID, out.KillReason))
		}
	}

	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := sys.Shutdown(sctx); err != nil {
		return nil, fmt.Errorf("chaos: shutdown: %w", err)
	}
	rep.elapsed = time.Since(start)

	// Exactly one kernel kill per killed process: the verifier marks a
	// context dead on its first fatal violation and the kernel's Kill is
	// idempotent, so chaos-induced violation storms must not double-kill.
	rep.kills = m.Snapshot().Counters["kernel.kills"].Total
	if rep.kills != uint64(killedProcs) {
		invariantErrs = append(invariantErrs,
			fmt.Sprintf("kernel.kills = %d, want exactly %d (one per killed process)",
				rep.kills, killedProcs))
	}
	rep.faults = inj.Counts()
	rep.scheduleHash = inj.ScheduleHash()
	if rep.faults.Total() == 0 {
		invariantErrs = append(invariantErrs, "fault schedule fired nothing: soak proved nothing")
	}
	if len(invariantErrs) > 0 {
		return rep, fmt.Errorf("chaos: %d invariant violation(s):\n  %s",
			len(invariantErrs), strings.Join(invariantErrs, "\n  "))
	}
	return rep, nil
}

// chaosHmacReport summarizes the authenticated-channel phase.
type chaosHmacReport struct {
	procs, cleanOK, killed int
	faults                 chaos.Counts
	elapsed                time.Duration
}

// chaosHmacSoak runs the authenticated-channel phase: clean processes only,
// under the default policy set extended with the hmac sealer, with the
// injector limited to the two faults that tamper with sealed messages in
// transit — duplication and payload bit-flips. Fail-closed here must mean
// *integrity* kills: every death is attributed by the hmac policy as a
// message-authentication failure, never misread as a sequence-counter gap
// (the sealer runs before CheckSeq, so it gets first claim on a tampered
// message) and never a silent drop — a tampered stream that nobody kills
// shows up as a clean process with wrong output, which is also asserted.
func chaosHmacSoak(seed uint64, procs int, cleanIns *compiler.Instrumented) (*chaosHmacReport, error) {
	names := append(append([]string{}, policy.DefaultSet...), "hmac")
	factory, err := policy.SetFactory(names...)
	if err != nil {
		return nil, fmt.Errorf("chaos: hmac policy set: %w", err)
	}
	sys := supervisor.New(supervisor.Config{
		Policies:        factory,
		KillOnViolation: true,
		CheckSeq:        true,
		Epoch:           chaosEpoch,
	})
	// Higher per-fault rates than the main soak: only two fault classes are
	// armed and both are fatal for the stream that draws one, so these rates
	// leave a mix of authenticated-killed and untouched-surviving processes.
	inj := chaos.NewInjector(seed,
		chaos.WithDuplicate(0.002),
		chaos.WithCorrupt(0.002),
	)

	rep := &chaosHmacReport{procs: procs}
	start := time.Now()
	handles := make([]*supervisor.Proc, procs)
	for i := 0; i < procs; i++ {
		raw := ipc.NewSharedRing(1 << 12)
		ch := &ipc.Channel{
			Sender:   inj.Sender(raw.Sender),
			Receiver: inj.Receiver(raw.Receiver),
			Props:    raw.Props,
		}
		p, err := sys.Launch(cleanIns, supervisor.LaunchOptions{Channel: ch})
		if err != nil {
			return nil, fmt.Errorf("chaos: hmac launch %d: %w", i, err)
		}
		handles[i] = p
	}

	var invariantErrs []string
	for i, p := range handles {
		out, err := p.Wait()
		if err != nil {
			return nil, fmt.Errorf("chaos: hmac wait %d: %w", i, err)
		}
		if !out.Killed {
			rep.cleanOK++
			if out.Err != nil {
				invariantErrs = append(invariantErrs,
					fmt.Sprintf("hmac clean %d (pid %d): error %v", i, out.PID, out.Err))
			} else if len(out.Output) != 1 || out.Output[0] != 42 {
				invariantErrs = append(invariantErrs,
					fmt.Sprintf("hmac clean %d (pid %d): output %v, want [42] (silent tamper?)",
						i, out.PID, out.Output))
			}
			continue
		}
		rep.killed++
		if !strings.Contains(out.KillReason, "message authentication") {
			invariantErrs = append(invariantErrs,
				fmt.Sprintf("hmac kill %d (pid %d) not attributed to authentication: %q",
					i, out.PID, out.KillReason))
		}
		if strings.Contains(out.KillReason, "message counter") {
			invariantErrs = append(invariantErrs,
				fmt.Sprintf("hmac kill %d (pid %d) misattributed to the sequence counter: %q",
					i, out.PID, out.KillReason))
		}
		authViol := false
		for _, viol := range out.PolicyViolations {
			if viol.Policy == "hmac" {
				authViol = true
				break
			}
		}
		if !authViol {
			invariantErrs = append(invariantErrs,
				fmt.Sprintf("hmac kill %d (pid %d): no recorded violation attributed to the hmac policy",
					i, out.PID))
		}
	}

	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := sys.Shutdown(sctx); err != nil {
		return nil, fmt.Errorf("chaos: hmac shutdown: %w", err)
	}
	rep.elapsed = time.Since(start)
	rep.faults = inj.Counts()
	if rep.faults.Duplicated+rep.faults.Corrupted == 0 {
		invariantErrs = append(invariantErrs, "hmac fault schedule fired nothing: phase proved nothing")
	}
	if rep.faults.Duplicated+rep.faults.Corrupted > 0 && rep.killed == 0 {
		invariantErrs = append(invariantErrs,
			fmt.Sprintf("hmac: %d tamper faults fired but no process was killed (silent drop?)",
				rep.faults.Duplicated+rep.faults.Corrupted))
	}
	if len(invariantErrs) > 0 {
		return rep, fmt.Errorf("chaos: hmac phase: %d invariant violation(s):\n  %s",
			len(invariantErrs), strings.Join(invariantErrs, "\n  "))
	}
	return rep, nil
}

// chaosDeterminism runs the reproducibility phase: clean processes only,
// with every kill path off — KillOnViolation false, CheckSeq false (counter
// violations are always fatal, §3.1.1, so they must not be evaluated here)
// and DegradedLogOnly — so every process emits its complete stream and the
// injector's per-message schedule covers identical inputs. Two runs with the
// same seed must produce identical fault counts and schedule hash; a kill
// would truncate a stream at a timing-dependent point and break that.
func chaosDeterminism(seed uint64, procs int, cleanIns *compiler.Instrumented) (uint64, chaos.Counts, error) {
	sys := supervisor.New(supervisor.Config{
		Epoch:    chaosEpoch,
		Degraded: kernel.DegradedLogOnly,
	})
	inj := chaosInjector(seed)
	handles := make([]*supervisor.Proc, procs)
	for i := 0; i < procs; i++ {
		raw := ipc.NewSharedRing(1 << 12)
		ch := &ipc.Channel{
			Sender:   inj.Sender(raw.Sender),
			Receiver: inj.Receiver(raw.Receiver),
			Props:    raw.Props,
		}
		p, err := sys.Launch(cleanIns, supervisor.LaunchOptions{Channel: ch})
		if err != nil {
			return 0, chaos.Counts{}, fmt.Errorf("chaos: determinism launch %d: %w", i, err)
		}
		handles[i] = p
	}
	for i, p := range handles {
		out, err := p.Wait()
		if err != nil {
			return 0, chaos.Counts{}, fmt.Errorf("chaos: determinism wait %d: %w", i, err)
		}
		if out.Killed {
			return 0, chaos.Counts{}, fmt.Errorf(
				"chaos: determinism proc %d killed (%s) despite log-only degradation",
				i, out.KillReason)
		}
	}
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := sys.Shutdown(sctx); err != nil {
		return 0, chaos.Counts{}, fmt.Errorf("chaos: determinism shutdown: %w", err)
	}
	return inj.ScheduleHash(), inj.Counts(), nil
}

// Chaos is the fault-injection soak behind `hqbench -exp chaos` and `make
// chaos-smoke`: an enforcement phase asserting the fail-closed invariants
// under a seeded fault schedule, then a reproducibility phase asserting the
// schedule is a pure function of the seed. It returns a human-readable
// report on success and an error naming every violated invariant otherwise.
func Chaos(seed uint64, procs int) (string, error) {
	if procs <= 0 {
		procs = 12
	}
	baseline := runtime.NumGoroutine()

	cleanMod, err := chaosVictim(false)
	if err != nil {
		return "", err
	}
	attackMod, err := chaosVictim(true)
	if err != nil {
		return "", err
	}
	cleanIns, err := compiler.Instrument(cleanMod, compiler.HQSfeStk, compiler.DefaultOptions())
	if err != nil {
		return "", fmt.Errorf("chaos: instrument clean: %w", err)
	}
	attackIns, err := compiler.Instrument(attackMod, compiler.HQSfeStk, compiler.DefaultOptions())
	if err != nil {
		return "", fmt.Errorf("chaos: instrument attack: %w", err)
	}

	rep, err := chaosSoak(seed, procs, cleanIns, attackIns)
	if err != nil {
		return "", err
	}

	hmacProcs := 8
	if hmacProcs > procs {
		hmacProcs = procs
	}
	hrep, err := chaosHmacSoak(seed, hmacProcs, cleanIns)
	if err != nil {
		return "", err
	}

	detProcs := 4
	if detProcs > procs {
		detProcs = procs
	}
	h1, c1, err := chaosDeterminism(seed, detProcs, cleanIns)
	if err != nil {
		return "", err
	}
	h2, c2, err := chaosDeterminism(seed, detProcs, cleanIns)
	if err != nil {
		return "", err
	}
	// Per-message fault decisions are a pure function of (seed, stream,
	// index) and must match exactly. Recv errors and stalls are drawn per
	// RecvBatch call — how many calls the pump makes is scheduler timing —
	// so they are excluded from both the schedule hash and this comparison.
	c1.RecvErrors, c1.Stalls = 0, 0
	c2.RecvErrors, c2.Stalls = 0, 0
	if h1 != h2 || c1 != c2 {
		return "", fmt.Errorf(
			"chaos: seed %#x is not reproducible:\n  run1 hash=%#016x %v\n  run2 hash=%#016x %v",
			seed, h1, c1, h2, c2)
	}

	// Zero leaked goroutines: both phases fully shut down, so the count must
	// settle back to the pre-soak baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			return "", fmt.Errorf("chaos: goroutines leaked: %d running, baseline %d",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "seed %#x, %d procs (%d violating), epoch %v\n",
		seed, rep.procs, rep.violators, chaosEpoch)
	fmt.Fprintf(&sb, "soak:        %d clean finished, %d clean killed (attributed), %d/%d violators killed, kernel kills=%d, elapsed %v\n",
		rep.cleanOK, rep.cleanKilled, rep.violatorsKilled, rep.violators, rep.kills,
		rep.elapsed.Round(time.Millisecond))
	fmt.Fprintf(&sb, "faults:      %v (schedule hash %#016x)\n", rep.faults, rep.scheduleHash)
	fmt.Fprintf(&sb, "hmac:        %d clean procs, %d finished, %d killed as authentication failures (dup=%d corrupt=%d), elapsed %v\n",
		hrep.procs, hrep.cleanOK, hrep.killed, hrep.faults.Duplicated, hrep.faults.Corrupted,
		hrep.elapsed.Round(time.Millisecond))
	fmt.Fprintf(&sb, "determinism: 2×%d clean procs, hash %#016x == %#016x, faults %v\n",
		detProcs, h1, h2, c1)
	sb.WriteString("invariants:  no violator passed a gate; one kill per killed process; " +
		"clean deaths attributable; tampered sealed streams die as authentication, " +
		"never counter gaps or silent drops; no goroutine leak; schedule reproducible\n")
	return sb.String(), nil
}
