package experiments

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Component groups for Table 6, mapping the paper's component breakdown to
// this repository's packages.
var table6Components = []struct {
	Label string
	Dirs  []string
}{
	{"Hardware (FPGA+µarch)", []string{"internal/fpga", "internal/uarch"}},
	{"Kernel", []string{"internal/kernel"}},
	{"Compiler", []string{"internal/compiler", "internal/mir", "internal/analysis"}},
	{"IPC Interfaces", []string{"internal/ipc"}},
	{"Runtime (VM)", []string{"internal/vm", "internal/mem", "internal/sim"}},
	{"Verifier", []string{"internal/verifier", "internal/policy"}},
	{"Framework", []string{"internal/core", "."}},
	{"Evaluation", []string{"internal/workload", "internal/ripe", "internal/experiments"}},
}

// Table6 counts lines of code per component under root, excluding tests,
// blank lines, and comment-only lines — roughly the paper's "approximate
// lines of code" measure.
func Table6(root string) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s %8s %8s\n", "Component", "Code", "Tests")
	var totalCode, totalTest int
	for _, c := range table6Components {
		var code, tests int
		for _, d := range c.Dirs {
			dir := filepath.Join(root, d)
			entries, err := os.ReadDir(dir)
			if err != nil {
				return "", fmt.Errorf("table6: %w", err)
			}
			for _, e := range entries {
				if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
					continue
				}
				n, err := countLoC(filepath.Join(dir, e.Name()))
				if err != nil {
					return "", err
				}
				if strings.HasSuffix(e.Name(), "_test.go") {
					tests += n
				} else {
					code += n
				}
			}
		}
		totalCode += code
		totalTest += tests
		fmt.Fprintf(&sb, "%-24s %8d %8d\n", c.Label, code, tests)
	}
	fmt.Fprintf(&sb, "%-24s %8d %8d\n", "Total", totalCode, totalTest)
	return sb.String(), nil
}

// countLoC counts non-blank, non-comment-only lines of a Go file.
func countLoC(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	inBlock := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if inBlock {
			if strings.Contains(line, "*/") {
				inBlock = false
			}
			continue
		}
		if strings.HasPrefix(line, "//") {
			continue
		}
		if strings.HasPrefix(line, "/*") && !strings.Contains(line, "*/") {
			inBlock = true
			continue
		}
		n++
	}
	return n, sc.Err()
}
