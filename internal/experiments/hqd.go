package experiments

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"herqules/internal/chaos"
	"herqules/internal/compiler"
	"herqules/internal/hqnet"
	"herqules/internal/ipc"
	"herqules/internal/kernel"
	"herqules/internal/policy"
	"herqules/internal/supervisor"
	"herqules/internal/telemetry"
	"herqules/internal/vm"
)

// The hqd soak drives the networked attestation plane the way a hostile
// deployment would: real monitored programs running on the far side of real
// TCP and Unix-domain sockets, with the chaos plane severing transports
// mid-frame, stalling them past the lease, and abusing the handshake
// protocol. The invariants are the connection lifecycle's fail-closed
// contract:
//
//   - no violator ever passes a gate, network or not;
//   - a severed clean process survives by resuming — it is never killed,
//     and in particular never killed by a counter gap the transport loss
//     itself manufactured;
//   - a process whose session goes silent past the lease dies with exactly
//     kernel.ReasonLeaseExpired, visible in forensics;
//   - protocol abuse (duplicate HELLO, stale resume) severs or rejects but
//     never corrupts another session, and the abused process's death is the
//     lease's, attributably;
//   - the per-connection fault schedule is a pure function of the seed;
//   - nothing leaks: goroutines settle back to the pre-soak baseline.
const (
	hqdLease      = 500 * time.Millisecond
	hqdAbuseLease = 150 * time.Millisecond
	hqdEpoch      = time.Second
	hqdWallBudget = 90 * time.Second
)

// HQDReport is the machine-readable soak artifact (`hqbench -exp hqd -out`).
type HQDReport struct {
	Seed      uint64 `json:"seed"`
	Procs     int    `json:"procs"`
	Violators int    `json:"violators"`

	// Enforcement phase (mixed workload over TCP + UDS, hmac-sealed).
	CleanOK         int          `json:"clean_ok"`
	ViolatorsKilled int          `json:"violators_killed"`
	Resumes         uint64       `json:"resumes"`
	EnforceFaults   chaos.Counts `json:"enforce_faults"`

	// Lease phase.
	LeaseKillReason string `json:"lease_kill_reason"`

	// Protocol-abuse phase (run twice for reproducibility).
	AbuseConns   int    `json:"abuse_conns"`
	DupHellos    uint64 `json:"dup_hellos"`
	StaleResumes uint64 `json:"stale_resumes"`
	AbusePattern string `json:"abuse_pattern"`
	ScheduleHash string `json:"schedule_hash"`
	Reproducible bool   `json:"reproducible"`

	GoroutineBaseline int   `json:"goroutine_baseline"`
	GoroutineSettled  int   `json:"goroutine_settled"`
	ElapsedMs         int64 `json:"elapsed_ms"`
}

// hqdWait polls cond for up to d.
func hqdWait(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
	return true
}

// hqdKillReason reports a kill for pid whether the kernel context is still
// live or the supervisor has already frozen the attribution row.
func hqdKillReason(sys *supervisor.System, pid int32) (bool, string) {
	if killed, reason := sys.Kernel().Killed(pid); killed {
		return true, reason
	}
	for _, p := range sys.Stats().Procs {
		if p.PID == pid && p.KillReason != "" {
			return true, p.KillReason
		}
	}
	return false, ""
}

// hqdRunProc executes one instrumented program as a remote monitored process:
// the program's messages cross the session (sealed when the daemon runs an
// authenticated policy set), its syscalls gate through the networked kernel,
// and its kill signal arrives as a gate verdict or kill notice.
func hqdRunProc(c *hqnet.Client, ins *compiler.Instrumented) (*vm.Result, error) {
	cfg := ins.VMConfig()
	cfg.PID = c.PID()
	cfg.Kernel = c
	cfg.Killed = c.Killed
	sender := c.Sender()
	cfg.Emit = sender.Send
	p, err := vm.NewProcess(ins.Mod, cfg)
	if err != nil {
		return nil, fmt.Errorf("hqd: load %s: %w", ins.Mod.Name, err)
	}
	return p.Run("main"), nil
}

// hqdEnforce is the enforcement phase: procs mixed clean/violating programs
// (every third violating) over alternating TCP and Unix-domain transports,
// under the default policy set plus the hmac sealer, CheckSeq on, kills on —
// with the chaos plane killing connections mid-frame and stalling writes.
func hqdEnforce(seed uint64, procs int, rep *HQDReport, sockDir string) error {
	names := append(append([]string{}, policy.DefaultSet...), "hmac")
	factory, err := policy.SetFactory(names...)
	if err != nil {
		return fmt.Errorf("hqd: policy set: %w", err)
	}
	sys := supervisor.New(supervisor.Config{
		Policies:        factory,
		KillOnViolation: true,
		CheckSeq:        true,
		Epoch:           hqdEpoch,
		Shards:          2,
	})
	srv := hqnet.NewServer(hqnet.Config{Sys: sys, Lease: hqdLease})
	tcp, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("hqd: tcp listen: %w", err)
	}
	sock := filepath.Join(sockDir, "hqd.sock")
	if _, err := srv.Listen("unix", sock); err != nil {
		return fmt.Errorf("hqd: unix listen: %w", err)
	}

	// Write-side connection faults only: drops sever mid-frame (the far
	// side's decoder must see truncation, the client must resume),
	// boundary drops sever at an exact frame boundary (a clean-looking EOF
	// the session layer alone must catch), stalls freeze a write well under
	// the lease.
	inj := chaos.NewInjector(seed,
		chaos.WithConnDrop(0.015),
		chaos.WithConnDropAtBoundary(0.01),
		chaos.WithConnStall(0.01, 2*time.Millisecond),
	)

	cleanMod, err := chaosVictim(false)
	if err != nil {
		return err
	}
	attackMod, err := chaosVictim(true)
	if err != nil {
		return err
	}
	cleanIns, err := compiler.Instrument(cleanMod, compiler.HQSfeStk, compiler.DefaultOptions())
	if err != nil {
		return fmt.Errorf("hqd: instrument clean: %w", err)
	}
	attackIns, err := compiler.Instrument(attackMod, compiler.HQSfeStk, compiler.DefaultOptions())
	if err != nil {
		return fmt.Errorf("hqd: instrument attack: %w", err)
	}

	type result struct {
		i       int
		res     *vm.Result
		resumes uint64
		err     error
	}
	results := make(chan result, procs)
	for i := 0; i < procs; i++ {
		ins := cleanIns
		if i%3 == 2 {
			ins = attackIns
			rep.Violators++
		}
		network, addr := "tcp", tcp.Addr().String()
		if i%2 == 1 {
			network, addr = "unix", sock
		}
		go func(i int, ins *compiler.Instrumented, network, addr string) {
			c, err := hqnet.Dial(context.Background(), hqnet.ClientConfig{
				Network: network, Addr: addr,
				Tenant:   uint64(i % 4),
				WrapConn: inj.Conn,
			})
			if err != nil {
				results <- result{i: i, err: fmt.Errorf("dial %s: %w", network, err)}
				return
			}
			res, err := hqdRunProc(c, ins)
			resumes := c.Resumes()
			c.Close()
			results <- result{i: i, res: res, resumes: resumes, err: err}
		}(i, ins, network, addr)
	}

	var invariantErrs []string
	timeout := time.After(hqdWallBudget)
	for n := 0; n < procs; n++ {
		select {
		case r := <-results:
			if r.err != nil {
				return fmt.Errorf("hqd: proc %d: %w", r.i, r.err)
			}
			rep.Resumes += r.resumes
			if r.i%3 == 2 {
				// Violator: the gate must refuse — network transparency
				// cannot weaken bounded asynchronous validation.
				if !r.res.Killed {
					invariantErrs = append(invariantErrs,
						fmt.Sprintf("violator %d was not killed", r.i))
				} else {
					rep.ViolatorsKilled++
					if r.res.ExitCode == 99 {
						invariantErrs = append(invariantErrs,
							fmt.Sprintf("violator %d: gated payload committed", r.i))
					}
				}
				continue
			}
			// Clean process: transport loss must be invisible — resume, not
			// a kill, and certainly not a counter-gap kill manufactured by
			// the severed connection.
			if r.res.Killed {
				invariantErrs = append(invariantErrs,
					fmt.Sprintf("clean %d killed: %q (severed transports must resume, not kill)",
						r.i, r.res.KillReason))
				continue
			}
			if len(r.res.Output) != 1 || r.res.Output[0] != 42 {
				invariantErrs = append(invariantErrs,
					fmt.Sprintf("clean %d: output %v, want [42]", r.i, r.res.Output))
				continue
			}
			rep.CleanOK++
		case <-timeout:
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_ = srv.Shutdown(ctx)
			return fmt.Errorf("hqd: wall budget %v exceeded with %d/%d procs outstanding",
				hqdWallBudget, procs-n, procs)
		}
	}

	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("hqd: shutdown: %w", err)
	}
	rep.EnforceFaults = inj.Counts()
	drops := rep.EnforceFaults.ConnDrops + rep.EnforceFaults.ConnDropBoundaries
	if drops == 0 {
		invariantErrs = append(invariantErrs,
			"no connection drops fired: the resume path was never exercised")
	}
	if drops > 0 && rep.Resumes == 0 {
		invariantErrs = append(invariantErrs,
			fmt.Sprintf("%d conn drops fired but no session resumed", drops))
	}
	if len(invariantErrs) > 0 {
		return fmt.Errorf("hqd: enforcement phase: %d invariant violation(s):\n  %s",
			len(invariantErrs), strings.Join(invariantErrs, "\n  "))
	}
	return nil
}

// hqdLeasePhase goes silent past the lease and asserts the one legitimate
// path from transport failure to process death: attributable lease expiry.
func hqdLeasePhase(rep *HQDReport) error {
	m := telemetry.New(0)
	sys := supervisor.New(supervisor.Config{
		Metrics:         m,
		KillOnViolation: true,
		FlightRecorder:  64,
		Epoch:           hqdEpoch,
	})
	srv := hqnet.NewServer(hqnet.Config{Sys: sys, Lease: hqdAbuseLease, Metrics: m})
	tcp, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("hqd: lease listen: %w", err)
	}
	c, err := hqnet.Dial(context.Background(), hqnet.ClientConfig{
		Network: "tcp", Addr: tcp.Addr().String(),
		HeartbeatEvery: time.Hour, // stalled client: never renews
	})
	if err != nil {
		return fmt.Errorf("hqd: lease dial: %w", err)
	}
	defer c.Close()

	if !hqdWait(10*time.Second, func() bool {
		killed, _ := hqdKillReason(sys, c.PID())
		return killed
	}) {
		return fmt.Errorf("hqd: stalled session never killed (lease %v)", hqdAbuseLease)
	}
	_, reason := hqdKillReason(sys, c.PID())
	rep.LeaseKillReason = reason
	if reason != kernel.ReasonLeaseExpired {
		return fmt.Errorf("hqd: stall kill reason %q, want %q (death must be the lease's, not a counter gap's)",
			reason, kernel.ReasonLeaseExpired)
	}
	// Attributable in forensics and in the metrics registry.
	if !hqdWait(10*time.Second, func() bool {
		fr, ok := sys.Forensics(c.PID())
		return ok && fr.KillReason == kernel.ReasonLeaseExpired
	}) {
		return fmt.Errorf("hqd: no forensic report attributing the lease kill")
	}
	if got := m.Snapshot().Counters["hqnet.lease.expired"].Total; got != 1 {
		return fmt.Errorf("hqd: hqnet.lease.expired = %d, want 1", got)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("hqd: lease shutdown: %w", err)
	}
	return nil
}

// hqdAbuse runs the protocol-abuse pass: conns raw-driven frames, each
// drawing its chaos decisions (stale resume first, duplicate HELLO after
// admission) from the seeded injector. Returns the decision pattern and the
// injector's schedule hash so a second run can assert reproducibility.
func hqdAbuse(seed uint64, conns int, rep *HQDReport) (string, uint64, error) {
	sys := supervisor.New(supervisor.Config{KillOnViolation: true, Epoch: hqdEpoch})
	srv := hqnet.NewServer(hqnet.Config{Sys: sys, Lease: hqdAbuseLease})
	tcp, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", 0, fmt.Errorf("hqd: abuse listen: %w", err)
	}
	addr := tcp.Addr().String()
	inj := chaos.NewInjector(seed,
		chaos.WithDupHello(0.5),
		chaos.WithStaleResume(0.5),
	)

	dial := func() (net.Conn, *ipc.FrameWriter, *ipc.FrameDecoder, error) {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, nil, nil, err
		}
		return nc, ipc.NewFrameWriter(nc), ipc.NewFrameDecoder(nc), nil
	}
	readOne := func(dec *ipc.FrameDecoder) (ipc.Message, bool) {
		var one [1]ipc.Message
		n, _, _ := dec.Decode(one[:])
		return one[0], n == 1
	}

	var pattern strings.Builder
	var invariantErrs []string
	var leaseKillPids []int32
	for k := 0; k < conns; k++ {
		stream := inj.NextStream()
		dup := inj.DupHello(stream)
		stale := inj.StaleResume(stream)
		switch {
		case dup && stale:
			pattern.WriteByte('B')
		case dup:
			pattern.WriteByte('D')
		case stale:
			pattern.WriteByte('S')
		default:
			pattern.WriteByte('-')
		}

		if stale {
			// Forged/stale token: the daemon must reject and touch nothing.
			nc, fw, dec, err := dial()
			if err != nil {
				return "", 0, fmt.Errorf("hqd: abuse dial: %w", err)
			}
			_ = fw.WriteMessage(ipc.Message{Op: ipc.OpResume, PID: 12345, Arg1: 0xbad0bad0 ^ uint64(k)})
			m, ok := readOne(dec)
			if !ok || m.Op != ipc.OpReject || m.Arg1 != hqnet.RejectUnknownSession {
				invariantErrs = append(invariantErrs,
					fmt.Sprintf("conn %d: stale resume answered %+v, want RejectUnknownSession", k, m))
			}
			nc.Close()
		}

		nc, fw, dec, err := dial()
		if err != nil {
			return "", 0, fmt.Errorf("hqd: abuse dial: %w", err)
		}
		_ = fw.WriteMessage(ipc.Message{Op: ipc.OpHello, Arg1: hqnet.WireVersion, Arg2: uint64(k)})
		welcome, ok := readOne(dec)
		if !ok || welcome.Op != ipc.OpWelcome {
			nc.Close()
			invariantErrs = append(invariantErrs,
				fmt.Sprintf("conn %d: handshake answered %+v, want OpWelcome", k, welcome))
			continue
		}
		pid := welcome.PID

		if dup {
			// Duplicate HELLO after admission: the daemon severs (the read
			// returns) and the lease — nothing else — disposes of the proc.
			_ = fw.WriteMessage(ipc.Message{Op: ipc.OpHello, Arg1: hqnet.WireVersion, Arg2: uint64(k)})
			if _, ok := readOne(dec); ok {
				invariantErrs = append(invariantErrs,
					fmt.Sprintf("conn %d: daemon answered a duplicate HELLO instead of severing", k))
			}
			nc.Close()
			leaseKillPids = append(leaseKillPids, pid)
			continue
		}

		// Well-behaved control: clean goodbye, no kill.
		_ = fw.WriteMessage(ipc.Message{Op: ipc.OpGoodbye, PID: pid})
		nc.Close()
		if !hqdWait(10*time.Second, func() bool {
			for _, p := range sys.Stats().Procs {
				if p.PID == pid && p.State != "running" {
					return p.State == "exited"
				}
			}
			return false
		}) {
			invariantErrs = append(invariantErrs,
				fmt.Sprintf("conn %d (pid %d): goodbye did not finalize cleanly", k, pid))
		}
	}

	// Every severed-by-abuse process dies by lease, attributably.
	for _, pid := range leaseKillPids {
		pid := pid
		if !hqdWait(10*time.Second, func() bool {
			killed, _ := hqdKillReason(sys, pid)
			return killed
		}) {
			invariantErrs = append(invariantErrs,
				fmt.Sprintf("pid %d: severed session never lease-killed", pid))
			continue
		}
		if _, reason := hqdKillReason(sys, pid); reason != kernel.ReasonLeaseExpired {
			invariantErrs = append(invariantErrs,
				fmt.Sprintf("pid %d: killed for %q, want %q", pid, reason, kernel.ReasonLeaseExpired))
		}
	}

	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return "", 0, fmt.Errorf("hqd: abuse shutdown: %w", err)
	}
	c := inj.Counts()
	rep.DupHellos, rep.StaleResumes = c.DupHellos, c.StaleResumes
	if c.DupHellos+c.StaleResumes == 0 {
		invariantErrs = append(invariantErrs, "abuse schedule fired nothing: phase proved nothing")
	}
	if len(invariantErrs) > 0 {
		return "", 0, fmt.Errorf("hqd: abuse phase: %d invariant violation(s):\n  %s",
			len(invariantErrs), strings.Join(invariantErrs, "\n  "))
	}
	return pattern.String(), inj.ScheduleHash(), nil
}

// HQD is the networked-attestation-plane soak behind `hqbench -exp hqd` and
// `make hqd-smoke`: enforcement over real sockets with chaos-severed
// connections, lease expiry, protocol abuse (run twice to prove the schedule
// is a pure function of the seed), and a goroutine-leak check over it all.
func HQD(seed uint64, procs int, quick bool) (string, *HQDReport, error) {
	if procs <= 0 {
		procs = 9
	}
	if quick && procs > 6 {
		procs = 6
	}
	abuseConns := 12
	if quick {
		abuseConns = 8
	}
	rep := &HQDReport{Seed: seed, Procs: procs, AbuseConns: abuseConns}
	rep.GoroutineBaseline = runtime.NumGoroutine()
	start := time.Now()

	sockDir, err := os.MkdirTemp("", "hqd-soak-")
	if err != nil {
		return "", nil, err
	}
	defer os.RemoveAll(sockDir)

	if err := hqdEnforce(seed, procs, rep, sockDir); err != nil {
		return "", rep, err
	}
	if err := hqdLeasePhase(rep); err != nil {
		return "", rep, err
	}
	pat1, hash1, err := hqdAbuse(seed, abuseConns, rep)
	if err != nil {
		return "", rep, err
	}
	pat2, hash2, err := hqdAbuse(seed, abuseConns, rep)
	if err != nil {
		return "", rep, err
	}
	rep.AbusePattern, rep.ScheduleHash = pat1, fmt.Sprintf("%#016x", hash1)
	rep.Reproducible = pat1 == pat2 && hash1 == hash2
	if !rep.Reproducible {
		return "", rep, fmt.Errorf(
			"hqd: seed %#x is not reproducible:\n  run1 %s hash=%#016x\n  run2 %s hash=%#016x",
			seed, pat1, hash1, pat2, hash2)
	}

	// Zero leaked goroutines across three servers, every client, and the
	// chaos plane.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > rep.GoroutineBaseline {
		if time.Now().After(deadline) {
			rep.GoroutineSettled = runtime.NumGoroutine()
			return "", rep, fmt.Errorf("hqd: goroutines leaked: %d running, baseline %d",
				rep.GoroutineSettled, rep.GoroutineBaseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
	rep.GoroutineSettled = runtime.NumGoroutine()
	rep.ElapsedMs = time.Since(start).Milliseconds()

	var sb strings.Builder
	fmt.Fprintf(&sb, "seed %#x, %d procs (%d violating) over tcp+unix, lease %v (abuse %v)\n",
		seed, rep.Procs, rep.Violators, hqdLease, hqdAbuseLease)
	fmt.Fprintf(&sb, "enforce:  %d clean finished via resume (%d session resumes), %d/%d violators killed at the gate\n",
		rep.CleanOK, rep.Resumes, rep.ViolatorsKilled, rep.Violators)
	fmt.Fprintf(&sb, "faults:   %v\n", rep.EnforceFaults)
	fmt.Fprintf(&sb, "lease:    silent session killed with %q, forensics + hqnet.lease.expired agree\n",
		rep.LeaseKillReason)
	fmt.Fprintf(&sb, "abuse:    %d conns, pattern %s (dup-hello=%d stale-resume=%d), schedule hash %s, reproducible=%t\n",
		rep.AbuseConns, rep.AbusePattern, rep.DupHellos, rep.StaleResumes, rep.ScheduleHash, rep.Reproducible)
	fmt.Fprintf(&sb, "teardown: goroutines %d -> %d (baseline), elapsed %v\n",
		rep.GoroutineBaseline, rep.GoroutineSettled, time.Duration(rep.ElapsedMs)*time.Millisecond)
	return sb.String(), rep, nil
}
