package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"herqules/internal/ipc"
	"herqules/internal/policy"
	"herqules/internal/verifier"
)

// This file implements `hqbench -exp forensics`: the acceptance experiment
// for the flight-recorder layer. It asserts three properties end to end:
//
//  1. Attribution: every injected fault class from the -exp policies matrix
//     yields a frozen ForensicReport attributing the kill to the policy that
//     caught it, with a non-empty message window and a fatal decision in the
//     trail — and the clean stream yields no report under any policy.
//  2. Overhead: stamping the recorder on every verified message costs at
//     most a few percent of drain throughput (target ≤5%).
//  3. Allocation: the per-message stamp allocates nothing — the recorder is
//     a fixed ring written in place under the shard lock.

// ForensicAttributionRow is one (injector, policy) cell of the attribution
// sweep: did the kill produce a report, and did it blame the right policy?
type ForensicAttributionRow struct {
	Injector   string `json:"injector"`
	Policy     string `json:"policy"`     // policy expected to catch the fault
	Attributed string `json:"attributed"` // report.Policy actually recorded
	KillReason string `json:"kill_reason,omitempty"`
	Window     int    `json:"window"` // flight records frozen in the report
	Decisions  int    `json:"decisions"`
	OK         bool   `json:"ok"`
}

// ForensicsReport is the JSON artifact `hqbench -exp forensics -out` writes.
type ForensicsReport struct {
	GOMAXPROCS         int                      `json:"gomaxprocs"`
	NumCPU             int                      `json:"num_cpu"`
	Messages           int                      `json:"messages"`
	Reps               int                      `json:"reps"`
	Attribution        []ForensicAttributionRow `json:"attribution"`
	BaselineMsgsPerSec float64                  `json:"baseline_msgs_per_sec"`
	RecorderMsgsPerSec float64                  `json:"recorder_msgs_per_sec"`
	OverheadPct        float64                  `json:"overhead_pct"`
	AllocsPerMsg       float64                  `json:"allocs_per_msg"`
}

// runForensicCell reruns one (policy, injector) matrix cell with the flight
// recorder armed and interrogates the frozen report instead of the violation
// list: the postmortem, not the live state, is what an operator gets.
func runForensicCell(name string, inj policyInjector) (ForensicAttributionRow, error) {
	row := ForensicAttributionRow{Injector: inj.name, Policy: name}
	factory, err := policy.SetFactory(name)
	if err != nil {
		return row, fmt.Errorf("%s/%s: %v", name, inj.name, err)
	}
	g := &policyKillGate{kills: make(map[int32]string)}
	v := verifier.New(factory, g)
	v.KillOnViolation = true
	v.EnableFlightRecorder(128)
	kr := policy.NewKeyringSeeded(0xbadc0de)
	v.SetKeyring(kr)
	kr.Program(1)
	kr.Program(2)
	v.ProcessStarted(1)

	sealed := name == "hmac"
	victim, _ := kr.Key(1)
	foreign, _ := kr.Key(2)
	for _, m := range inj.build(sealed, victim, foreign) {
		v.Deliver(m)
	}

	rep, ok := v.Forensics(1)
	if len(inj.caughtBy) == 0 {
		// Clean stream: no kill, so no report may exist.
		if ok {
			return row, fmt.Errorf("%s/%s: clean stream produced a forensic report (policy %q, reason %q)",
				name, inj.name, rep.Policy, rep.KillReason)
		}
		row.OK = true
		return row, nil
	}
	if !ok {
		return row, fmt.Errorf("%s/%s: fault caught but no forensic report frozen", name, inj.name)
	}
	row.Attributed = rep.Policy
	row.KillReason = rep.KillReason
	row.Window = len(rep.Window)
	row.Decisions = len(rep.Decisions)
	switch {
	case rep.Policy != name:
		return row, fmt.Errorf("%s/%s: report attributes the kill to %q", name, inj.name, rep.Policy)
	case rep.KillReason == "":
		return row, fmt.Errorf("%s/%s: report has no kill reason", name, inj.name)
	case len(rep.Window) == 0:
		return row, fmt.Errorf("%s/%s: report window is empty", name, inj.name)
	}
	fatal := false
	for _, d := range rep.Decisions {
		if d.Fatal && d.Policy == name {
			fatal = true
		}
	}
	if !fatal {
		return row, fmt.Errorf("%s/%s: no fatal %s decision in the trail", name, inj.name, name)
	}
	if reason := g.reason(1); reason == "" {
		return row, fmt.Errorf("%s/%s: report frozen but no kill reached the gate", name, inj.name)
	}
	row.OK = true
	return row, nil
}

// forensicAttribution sweeps every fault class against every policy expected
// to catch it, plus the clean negative control against every registered
// policy.
func forensicAttribution() ([]ForensicAttributionRow, error) {
	var rows []ForensicAttributionRow
	var faults []string
	for _, inj := range policyInjectors() {
		var names []string
		if len(inj.caughtBy) == 0 {
			names = policy.Names() // clean control: every policy must stay silent
		} else {
			for name := range inj.caughtBy {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			row, err := runForensicCell(name, inj)
			rows = append(rows, row)
			if err != nil {
				faults = append(faults, err.Error())
			}
		}
	}
	if len(faults) > 0 {
		return rows, fmt.Errorf("forensics: %d attribution failure(s):\n  %s",
			len(faults), strings.Join(faults, "\n  "))
	}
	return rows, nil
}

// forensicOverhead measures the sharded drain rate with and without the
// flight recorder, over identical replayed pointer-integrity streams. reps
// are round-robined with an untimed warm-up rep, as in policyOverhead.
func forensicOverhead(messages, reps int) (baseline, recorder float64) {
	const procs = 4
	stream := throughputStream(procs, messages)
	factory, err := policy.SetFactory("cfi")
	if err != nil {
		panic(err) // unreachable: cfi is a registry constant
	}

	type run struct {
		slots int
		rp    *ipc.Replay
		min   time.Duration
	}
	runs := []run{
		{slots: 0, rp: ipc.NewReplay(stream)},
		{slots: 256, rp: ipc.NewReplay(stream)},
	}
	for rep := 0; rep <= reps; rep++ {
		for i := range runs {
			v := verifier.NewSharded(factory, nil, 0)
			if runs[i].slots > 0 {
				v.EnableFlightRecorder(runs[i].slots)
			}
			for pid := 1; pid <= procs; pid++ {
				v.ProcessStarted(int32(pid))
			}
			runs[i].rp.Rewind()
			start := time.Now()
			v.Pump(runs[i].rp)
			elapsed := time.Since(start)
			if rep == 1 || (rep > 1 && elapsed < runs[i].min) {
				runs[i].min = elapsed
			}
		}
	}
	baseline = float64(messages) / runs[0].min.Seconds()
	recorder = float64(messages) / runs[1].min.Seconds()
	return baseline, recorder
}

// forensicAllocs measures allocations per message on the drain path with the
// recorder disarmed and armed. The stamp is one store into a preallocated
// slot, so arming it must add exactly zero allocations; DeliverBatch itself
// carries a small constant per-call bookkeeping cost (~8 allocs regardless
// of batch size), which the per-message figure amortizes over a large batch.
func forensicAllocs() (perMsg, delta float64) {
	const procs, messages = 2, 1 << 15
	measure := func(slots int) float64 {
		stream := throughputStream(procs, messages)
		factory, err := policy.SetFactory("cfi")
		if err != nil {
			panic(err) // unreachable: cfi is a registry constant
		}
		v := verifier.NewSharded(factory, nil, 1)
		if slots > 0 {
			v.EnableFlightRecorder(slots)
		}
		for pid := 1; pid <= procs; pid++ {
			v.ProcessStarted(int32(pid))
		}
		v.DeliverBatch(stream) // warm the policy tables and arena
		return testing.AllocsPerRun(5, func() { v.DeliverBatch(stream) })
	}
	off, on := measure(0), measure(256)
	return on / float64(messages), on - off
}

// Forensics runs the flight-recorder acceptance experiment behind
// `hqbench -exp forensics` and `make forensics-smoke`. Under quick the
// overhead figure is informational; a full run fails only past 25% (CI
// machines are noisy), with the ≤5% target printed either way. The alloc
// assertion is exact in both modes.
func Forensics(messages int, quick bool) (string, *ForensicsReport, error) {
	if messages <= 0 {
		messages = 1 << 19
	}
	reps := 3
	if quick {
		messages, reps = 1<<17, 2
	}

	rows, aerr := forensicAttribution()

	var sb strings.Builder
	sb.WriteString("Attribution: every fault class must freeze a report blaming the catching policy:\n")
	fmt.Fprintf(&sb, "%-12s %-10s %-10s %7s %10s  %s\n",
		"fault", "policy", "blamed", "window", "decisions", "kill reason")
	for _, r := range rows {
		blamed := r.Attributed
		if blamed == "" {
			blamed = "-"
		}
		status := r.KillReason
		if len(status) > 48 {
			status = status[:45] + "..."
		}
		if r.Attributed == "" && r.OK {
			status = "(clean: no report, as required)"
		}
		fmt.Fprintf(&sb, "%-12s %-10s %-10s %7d %10d  %s\n",
			r.Injector, r.Policy, blamed, r.Window, r.Decisions, status)
	}
	if aerr != nil {
		sb.WriteString("\n")
		sb.WriteString(aerr.Error())
		sb.WriteString("\n")
		return sb.String(), nil, aerr
	}

	baseline, recorder := forensicOverhead(messages, reps)
	overhead := (baseline/recorder - 1) * 100
	sb.WriteString("\nRecorder overhead (cfi sharded drain, identical streams, best of reps):\n")
	fmt.Fprintf(&sb, "%-14s %12s %12s\n", "recorder", "messages", "msgs/sec")
	fmt.Fprintf(&sb, "%-14s %12d %12.0f\n", "off", messages, baseline)
	fmt.Fprintf(&sb, "%-14s %12d %12.0f\n", "on (256)", messages, recorder)
	fmt.Fprintf(&sb, "overhead: %+.1f%% (target <= 5%%)\n", overhead)

	allocs, allocDelta := forensicAllocs()
	fmt.Fprintf(&sb, "\nAllocations per message with recorder armed: %.5f; added by the recorder: %.1f (must be 0)\n",
		allocs, allocDelta)

	rep := &ForensicsReport{
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		NumCPU:             runtime.NumCPU(),
		Messages:           messages,
		Reps:               reps,
		Attribution:        rows,
		BaselineMsgsPerSec: baseline,
		RecorderMsgsPerSec: recorder,
		OverheadPct:        overhead,
		AllocsPerMsg:       allocs,
	}

	if allocDelta > 0 || allocs > 0.001 {
		return sb.String(), rep, fmt.Errorf("forensics: recorder alloc cost %.1f/batch, %.5f/msg — want 0 added", allocDelta, allocs)
	}
	if !quick && overhead > 25 {
		return sb.String(), rep, fmt.Errorf("forensics: recorder overhead %.1f%% exceeds the 25%% hard ceiling (target 5%%)", overhead)
	}
	return sb.String(), rep, nil
}
