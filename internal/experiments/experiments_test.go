package experiments

import (
	"strings"
	"testing"

	"herqules/internal/compiler"
	"herqules/internal/ripe"
	"herqules/internal/workload"
)

func TestTable2ShapeAndProperties(t *testing.T) {
	rows := Table2(2000)
	if len(rows) < 6 {
		t.Fatalf("Table 2 has %d rows", len(rows))
	}
	byName := map[string]IPCRow{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.MeasuredNanos <= 0 {
			t.Errorf("%s: non-positive measured cost", r.Name)
		}
	}
	// Paper-cost ordering: shm < µarch model... the table carries the
	// paper's numbers; verify the suitability column.
	if byName["Shared Memory"].AppendOnly {
		t.Error("shared memory marked append-only")
	}
	if !byName["AppendWrite-FPGA"].AppendOnly || !byName["AppendWrite-FPGA"].AsyncValidation {
		t.Error("AppendWrite-FPGA must satisfy both requirements")
	}
	if byName["Message Queue"].AsyncValidation {
		t.Error("message queue marked async")
	}
	// The kernel-backed primitives must measure slower than the shared
	// ring on any host.
	if byName["Message Queue"].MeasuredNanos <= byName["Shared Memory"].MeasuredNanos {
		t.Errorf("measured mq (%.1fns) not slower than shm (%.1fns)",
			byName["Message Queue"].MeasuredNanos, byName["Shared Memory"].MeasuredNanos)
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "AppendWrite") {
		t.Error("formatted table missing AppendWrite rows")
	}
}

func TestTable4MatchesPaperCounts(t *testing.T) {
	rows := Table4(workload.ScaleTest)
	byLabel := map[string]CorrectnessRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	// Paper's Table 4, with one documented deviation: we count crashed
	// runs as also lacking valid output, so CCFI's Invalid is its 9
	// perturbed-output benchmarks plus its 12 crashes.
	want := map[string][4]int{ // errors, FPs, invalid, OK
		"Baseline":       {0, 0, 0, 48},
		"Baseline-CCFI":  {2, 0, 2, 46},
		"Baseline-CPI":   {2, 0, 2, 46},
		"Clang/LLVM CFI": {0, 15, 0, 33},
		"CCFI":           {12, 29, 21, 19},
		"CPI":            {14, 0, 14, 34},
		"HQ-CFI":         {0, 0, 0, 48},
	}
	for label, w := range want {
		r, ok := byLabel[label]
		if !ok {
			t.Errorf("missing row %s", label)
			continue
		}
		got := [4]int{r.Errors, r.FalsePositives, r.Invalid, r.OK}
		if got != w {
			t.Errorf("%s: got E/FP/I/OK = %v, want %v", label, got, w)
		}
	}
	if byLabel["HQ-CFI"].Detected != 2 {
		t.Errorf("HQ-CFI detected %d real bugs, want the 2 omnetpp UAFs",
			byLabel["HQ-CFI"].Detected)
	}
	if s := FormatTable4(rows); !strings.Contains(s, "HQ-CFI") {
		t.Error("formatting lost rows")
	}
}

func TestFigure5ShapeTrain(t *testing.T) {
	if testing.Short() {
		t.Skip("performance sweep")
	}
	series := Figure5(workload.ScaleTrain)
	g := map[string]float64{}
	nginx := map[string]float64{}
	excl := map[string]int{}
	for _, s := range series {
		g[s.Label] = s.SPECGeoMean
		nginx[s.Label] = s.NginxRel
		excl[s.Label] = len(s.Excluded)
	}
	sfestk, retptr := g["HQ-CFI-SfeStk-MODEL"], g["HQ-CFI-RetPtr-MODEL"]
	clang, ccfi, cpi := g["Clang/LLVM CFI"], g["CCFI"], g["CPI"]
	// Paper orderings (§5.3.2): CPI and Clang fastest, then SfeStk, then
	// RetPtr and CCFI slowest, with CCFI below RetPtr on ref inputs.
	if !(cpi > sfestk && clang > sfestk) {
		t.Errorf("CPI (%.2f) and Clang (%.2f) must beat SfeStk (%.2f)", cpi, clang, sfestk)
	}
	if !(sfestk > retptr) {
		t.Errorf("SfeStk (%.2f) must beat RetPtr (%.2f)", sfestk, retptr)
	}
	if !(sfestk > ccfi) {
		t.Errorf("SfeStk (%.2f) must beat CCFI (%.2f)", sfestk, ccfi)
	}
	for l, v := range g {
		if v <= 0.05 || v >= 1.02 {
			t.Errorf("%s: implausible relative performance %.3f", l, v)
		}
	}
	// CPI and CCFI exclude their crashing benchmarks, skewing their means
	// upward exactly as the paper warns.
	if excl["CPI"] != 14 {
		t.Errorf("CPI excluded %d, want 14", excl["CPI"])
	}
	if excl["CCFI"] != 21 {
		t.Errorf("CCFI excluded %d, want 21 (12 crashes + 9 invalid)", excl["CCFI"])
	}
	// NGINX: every design loses throughput; HQ designs lose the most
	// after CCFI (§5.3.2's 79/62/97/78/96 pattern).
	if !(nginx["Clang/LLVM CFI"] > nginx["HQ-CFI-SfeStk-MODEL"]) {
		t.Error("nginx: Clang must beat SfeStk")
	}
	if !(nginx["HQ-CFI-SfeStk-MODEL"] > nginx["HQ-CFI-RetPtr-MODEL"]) {
		t.Error("nginx: SfeStk must beat RetPtr")
	}
}

func TestFigure3Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("performance sweep")
	}
	series := Figure3(workload.ScaleTrain)
	if len(series) != 3 {
		t.Fatalf("%d series", len(series))
	}
	mq, fpgaS, model := series[0], series[1], series[2]
	// §5.3.1: software IPC is far slower than AppendWrite; the FPGA sits
	// between the message queue and the µarch model.
	if !(mq.GeoMean < fpgaS.GeoMean && fpgaS.GeoMean < model.GeoMean) {
		t.Errorf("ordering violated: MQ=%.2f FPGA=%.2f MODEL=%.2f",
			mq.GeoMean, fpgaS.GeoMean, model.GeoMean)
	}
	if mq.GeoMean > 0.6 {
		t.Errorf("MQ geomean %.2f: software IPC should lose heavily", mq.GeoMean)
	}
	if model.GeoMean < 0.6 {
		t.Errorf("MODEL geomean %.2f: AppendWrite model should be fast", model.GeoMean)
	}
}

func TestFigure4ModelVsSim(t *testing.T) {
	if testing.Short() {
		t.Skip("performance sweep")
	}
	series := Figure4()
	if len(series) != 2 {
		t.Fatalf("%d series", len(series))
	}
	model, simS := series[0], series[1]
	// §5.3.1: actual hardware performance lies between the software model
	// (lower bound) and the simulator (upper bound): SIM > MODEL.
	if !(simS.GeoMean > model.GeoMean) {
		t.Errorf("SIM (%.2f) must beat MODEL (%.2f)", simS.GeoMean, model.GeoMean)
	}
	// NGINX is omitted from the simulator comparison.
	if _, ok := model.Rel["nginx"]; ok {
		t.Error("nginx present in Figure 4 series")
	}
	if s := FormatSeries(series); !strings.Contains(s, "geomean") {
		t.Error("series formatting broken")
	}
}

func TestModelRefVsTrainDensity(t *testing.T) {
	if testing.Short() {
		t.Skip("performance sweep")
	}
	// §5.3.1: the ref input is more compute-dense, so per-message overhead
	// has less impact — MODEL-ref outperforms MODEL-train relative to
	// their own baselines.
	baseOutRef := referenceOutputs(workload.ScaleRef)
	baseRef := measureBaseline(PrimModel, workload.ScaleRef)
	refSeries := series("ref", compiler.HQSfeStk, PrimModel, workload.ScaleRef, baseRef, baseOutRef)
	trainSeries := Figure4()[0]
	if !(refSeries.SPECGeoMean > trainSeries.GeoMean) {
		t.Errorf("MODEL-ref (%.2f) should beat MODEL-train (%.2f)",
			refSeries.SPECGeoMean, trainSeries.GeoMean)
	}
}

func TestTable5SampledAgainstPrediction(t *testing.T) {
	// The full suite runs in ripe's own long test; sample one attack per
	// (origin, kind) here for the harness path.
	seen := map[string]bool{}
	for _, a := range ripe.Suite() {
		key := a.Origin.String() + a.Kind.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		got, err := ripe.Execute(a, compiler.HQSfeStk)
		if err != nil {
			t.Fatal(err)
		}
		if got != ripe.Expected(a, compiler.HQSfeStk) {
			t.Errorf("%s: outcome mismatch", a.Name())
		}
	}
	// Formatting over predicted tables.
	tabs := []*ripe.Table{ripe.ExpectedTable(compiler.Baseline), ripe.ExpectedTable(compiler.HQSfeStk)}
	if s := FormatTable5(tabs); !strings.Contains(s, "954") {
		t.Errorf("Table 5 formatting missing baseline total:\n%s", s)
	}
}

func TestMetricsReport(t *testing.T) {
	m := CollectMetrics(workload.ScaleTest)
	if m.MaxMsgPerSec <= m.MedianMsgPerSec {
		t.Error("max message rate not above median")
	}
	if m.MaxEntries <= 0 {
		t.Error("no verifier entries recorded")
	}
	if m.MaxMsgBenchmark == "" || m.TotalMsgBench == "" {
		t.Error("missing benchmark attributions")
	}
	if s := m.Format(); !strings.Contains(s, "median") {
		t.Error("metrics formatting broken")
	}
}

func TestTable6Counts(t *testing.T) {
	out, err := Table6("../..")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Compiler") || !strings.Contains(out, "Total") {
		t.Errorf("Table 6 output malformed:\n%s", out)
	}
}

func TestGeoMeanAndMedian(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); g < 1.99 || g > 2.01 {
		t.Errorf("GeoMean = %v", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("GeoMean(nil) = %v", g)
	}
	if g := GeoMean([]float64{0, -1, 8, 2}); g != 4 {
		t.Errorf("GeoMean skipping nonpositive = %v", g)
	}
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("Median odd = %v", m)
	}
	if m := Median([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Errorf("Median even = %v", m)
	}
}

func TestStatsSmoke(t *testing.T) {
	r := Stats(2, 4096)
	if r.Procs != 2 {
		t.Errorf("Procs = %d", r.Procs)
	}
	snap := r.Snap
	if snap.Counters["verifier.messages"].Total == 0 {
		t.Error("no messages delivered")
	}
	if snap.Counters["ipc.sends"].Total == 0 {
		t.Error("no ipc sends counted")
	}
	// The deliberate violation on proc 0 must surface as exactly one kill
	// and at least one post-kill drop.
	if v := snap.Counters["verifier.kills"].Total; v != 1 {
		t.Errorf("verifier.kills = %d, want 1", v)
	}
	if snap.Counters["verifier.violations"].Total != 1 {
		t.Errorf("violations = %d, want 1", snap.Counters["verifier.violations"].Total)
	}
	if snap.Histograms["kernel.syscall_stall_ns"].Count == 0 {
		t.Error("no syscall stalls observed")
	}
	if snap.Histograms["verifier.batch_size"].Count == 0 {
		t.Error("no batch sizes observed")
	}
	out := FormatStats(r)
	for _, want := range []string{
		"msgs/sec",
		"kernel.syscall_stall_ns",
		"verifier.messages",
		"verifier.batch_size",
		"ipc.sends",
		"ipc.recvs",
		"telemetry hot-path budget",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatStats output missing %q", want)
		}
	}
}
