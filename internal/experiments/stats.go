package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"herqules/internal/ipc"
	"herqules/internal/kernel"
	"herqules/internal/sim"
	"herqules/internal/telemetry"
	"herqules/internal/verifier"
)

// StatsResult is one run of the component-telemetry experiment: a concurrent
// multi-process pipeline (kernel gate + sharded verifier + per-process
// shared-memory channels) with the telemetry layer wired through every
// component, reported as a snapshot diff over exactly the measured interval.
type StatsResult struct {
	Procs    int
	Messages int
	Elapsed  time.Duration
	Snap     telemetry.Snapshot
	Trace    []telemetry.Event
	Dropped  uint64 // trace events overwritten in the bounded ring
}

// statsSyncEvery is how many define/check/invalidate triples a monitored
// process emits between synchronized system calls.
const statsSyncEvery = 64

// Stats drives `procs` concurrent monitored processes, each with its own
// shared-memory ring and pump, through the full kernel/verifier stack:
// pointer-integrity traffic with per-process sequence counters (CheckSeq on),
// gated system calls every statsSyncEvery triples (populating the syscall
// stall-time histogram), and one deliberate pointer-integrity violation on
// the first process near the end of its stream — so the snapshot also shows
// the kill path and the post-kill message drops.
func Stats(procs, messages int) *StatsResult {
	if procs <= 0 {
		procs = 8
	}
	if messages <= 0 {
		messages = 1 << 20
	}
	perProc := messages / procs
	if perProc < 4*statsSyncEvery {
		perProc = 4 * statsSyncEvery
	}

	m := telemetry.New(0)
	trace := m.EnableTrace(1 << 10)

	k := kernel.New(nil)
	v := verifier.NewSharded(throughputPolicies, k, 0)
	v.CheckSeq = true
	k.SetListener(v)
	k.EnableTelemetry(m)
	v.EnableTelemetry(m)

	before := m.Snapshot()
	start := time.Now()

	var pumps, senders sync.WaitGroup
	pids := make([]int32, procs)
	for p := 0; p < procs; p++ {
		ch := ipc.NewSharedRing(1 << 12)
		ch.EnableTelemetry(m)
		pid := k.Register()
		pids[p] = pid
		if reg, ok := ch.Sender.(ipc.PIDRegister); ok {
			reg.SetPID(pid)
		}
		pumps.Add(1)
		go func(r ipc.Receiver) {
			defer pumps.Done()
			v.Pump(r)
		}(ch.Receiver)

		senders.Add(1)
		go func(p int, pid int32, ch *ipc.Channel) {
			defer senders.Done()
			defer ch.Close()
			corruptAt := -1
			if p == 0 {
				corruptAt = perProc / 3 * 9 / 10 // violation late in the stream
			}
			for i := 0; i < perProc/3; i++ {
				addr := uint64(0x1000 + 8*(i%4096))
				if i == corruptAt {
					// Check a pointer that was never defined: a
					// pointer-integrity violation the verifier must
					// kill for (§4.1.3).
					ch.Sender.Send(ipc.Message{Op: ipc.OpPointerCheck, PID: pid, Arg1: 0xdead, Arg2: 0xbeef})
					continue
				}
				ch.Sender.Send(ipc.Message{Op: ipc.OpPointerDefine, PID: pid, Arg1: addr, Arg2: addr + 1})
				ch.Sender.Send(ipc.Message{Op: ipc.OpPointerCheck, PID: pid, Arg1: addr, Arg2: addr + 1})
				ch.Sender.Send(ipc.Message{Op: ipc.OpPointerInvalidate, PID: pid, Arg1: addr})
				if i%statsSyncEvery == statsSyncEvery-1 {
					ch.Sender.Send(ipc.Message{Op: ipc.OpSyscall, PID: pid, Arg1: 1})
					if err := k.SyscallEnter(pid, 1); err != nil {
						return // killed (or exited): stop emitting
					}
				}
			}
		}(p, pid, ch)
	}
	senders.Wait()
	pumps.Wait()
	elapsed := time.Since(start)
	for _, pid := range pids {
		k.Exit(pid)
	}

	return &StatsResult{
		Procs:    procs,
		Messages: messages,
		Elapsed:  elapsed,
		Snap:     m.Snapshot().Diff(before),
		Trace:    trace.Events(),
		Dropped:  trace.Dropped(),
	}
}

// FormatStats renders the component-level breakdown: headline drain rate,
// the full snapshot (counters with per-shard lanes, histograms with
// p50/p90/p99), the retained trace tail, and the modelled telemetry
// overhead budget the instrumentation must stay inside.
func FormatStats(r *StatsResult) string {
	var sb strings.Builder
	delivered := r.Snap.Counters["verifier.messages"].Total
	fmt.Fprintf(&sb, "procs=%d delivered=%d elapsed=%s rate=%.0f msgs/sec\n\n",
		r.Procs, delivered, r.Elapsed.Round(time.Microsecond),
		float64(delivered)/r.Elapsed.Seconds())
	sb.WriteString(r.Snap.Format())
	fmt.Fprintf(&sb, "\ntrace: %d events retained (%d overwritten)", len(r.Trace), r.Dropped)
	tail := r.Trace
	if len(tail) > 5 {
		tail = tail[len(tail)-5:]
	}
	for _, e := range tail {
		fmt.Fprintf(&sb, "\n  %-22s pid=%-6d value=%d t=+%dns", e.Name, e.PID, e.Value, e.Nanos)
	}
	fmt.Fprintf(&sb, "\nmodel: telemetry hot-path budget %.3f%% of batched drain cost at batch %d (%.1f ns/burst)\n",
		100*sim.TelemetryOverheadFraction(verifier.DefaultBatchSize),
		verifier.DefaultBatchSize, sim.TelemetryBurstNanos)
	return sb.String()
}
