package experiments

import (
	"fmt"
	"sort"
	"strings"

	"herqules/internal/compiler"
	"herqules/internal/workload"
)

// Series is one line/bar-group of a performance figure: relative performance
// (baseline time / configuration time) per benchmark, plus the geometric
// mean over included benchmarks. Benchmarks whose run under this
// configuration crashed or produced invalid output are excluded, as in the
// paper ("we omit measurements for benchmarks that encounter errors or
// produce invalid output, but not if only false positives are emitted").
type Series struct {
	Label    string
	Rel      map[string]float64 // display name -> relative performance
	Excluded []string           // benchmarks omitted (errors/invalid)
	GeoMean  float64
	// SPECGeoMean and NginxRel split the overall numbers as §5.3.2 does.
	SPECGeoMean float64
	NginxRel    float64
}

// measureBaseline runs every benchmark uninstrumented under the primitive's
// cost model and returns cycles by benchmark name.
func measureBaseline(prim Primitive, scale workload.Scale) map[string]uint64 {
	out := make(map[string]uint64)
	cost := prim.costModel()
	for _, p := range workload.All() {
		r := execute(p, compiler.Baseline, cost, scale)
		if r.Outcome != nil && r.Outcome.Err == nil {
			out[p.Name] = r.Cycles
		}
	}
	return out
}

// series measures one (design, primitive) configuration against baseline.
func series(label string, d compiler.Design, prim Primitive,
	scale workload.Scale, baseline map[string]uint64, baseOut map[string][]uint64) *Series {
	s := &Series{Label: label, Rel: make(map[string]float64)}
	cost := prim.costModel()
	var specRels []float64
	for _, p := range workload.All() {
		base, ok := baseline[p.Name]
		if !ok || base == 0 {
			continue
		}
		if modeledCrash(p, d) {
			s.Excluded = append(s.Excluded, p.DisplayName())
			continue
		}
		r := execute(p, d, cost, scale)
		if r.Err != nil || r.Outcome == nil || r.Outcome.Err != nil || r.Outcome.Killed ||
			!sameOutput(r.Outcome.Output, baseOut[p.Name]) {
			s.Excluded = append(s.Excluded, p.DisplayName())
			continue
		}
		rel := float64(base) / float64(r.Cycles)
		s.Rel[p.DisplayName()] = rel
		if p.Suite == "NGINX" {
			s.NginxRel = rel
		} else {
			specRels = append(specRels, rel)
		}
	}
	var all []float64
	for _, v := range s.Rel {
		all = append(all, v)
	}
	s.GeoMean = GeoMean(all)
	s.SPECGeoMean = GeoMean(specRels)
	return s
}

// referenceOutputs collects baseline outputs for validity comparison. CCFI's
// x87 output perturbation marks those benchmarks invalid, matching the
// paper's exclusion of invalid runs from the performance figures.
func referenceOutputs(scale workload.Scale) map[string][]uint64 {
	out := make(map[string][]uint64)
	for _, p := range workload.All() {
		r := execute(p, compiler.Baseline, nil, scale)
		if r.Outcome != nil {
			out[p.Name] = r.Outcome.Output
		}
	}
	return out
}

// Figure3 compares IPC primitives under HQ-CFI-SfeStk (§5.3.1): software
// message queues vs AppendWrite-FPGA vs the AppendWrite-µarch model.
func Figure3(scale workload.Scale) []*Series {
	baseOut := referenceOutputs(scale)
	var out []*Series
	for _, prim := range []Primitive{PrimMQ, PrimFPGA, PrimModel} {
		baseline := measureBaseline(prim, scale)
		out = append(out, series(
			fmt.Sprintf("HQ-CFI-SfeStk-%s", prim),
			compiler.HQSfeStk, prim, scale, baseline, baseOut))
	}
	return out
}

// Figure4 compares the software model against the hardware simulation of
// AppendWrite-µarch on the train input (§5.3.1). The SIM series counts
// userspace cycles only, mirroring ZSim's metric; NGINX is omitted because
// it is dominated by system calls, exactly as the paper does.
func Figure4() []*Series {
	scale := workload.ScaleTrain
	baseOut := referenceOutputs(scale)
	var out []*Series
	for _, prim := range []Primitive{PrimModel, PrimSim} {
		baseline := measureBaseline(prim, scale)
		s := series(
			fmt.Sprintf("HQ-CFI-SfeStk-%s-Train", prim),
			compiler.HQSfeStk, prim, scale, baseline, baseOut)
		delete(s.Rel, "nginx")
		s.NginxRel = 0
		var vals []float64
		for _, v := range s.Rel {
			vals = append(vals, v)
		}
		s.GeoMean = GeoMean(vals)
		out = append(out, s)
	}
	return out
}

// Figure5 compares all CFI designs under the AppendWrite-µarch model
// (§5.3.2).
func Figure5(scale workload.Scale) []*Series {
	baseOut := referenceOutputs(scale)
	baseline := measureBaseline(PrimModel, scale)
	configs := []struct {
		label string
		d     compiler.Design
	}{
		{"HQ-CFI-SfeStk-MODEL", compiler.HQSfeStk},
		{"HQ-CFI-RetPtr-MODEL", compiler.HQRetPtr},
		{"Clang/LLVM CFI", compiler.ClangCFI},
		{"CCFI", compiler.CCFI},
		{"CPI", compiler.CPI},
	}
	var out []*Series
	for _, c := range configs {
		out = append(out, series(c.label, c.d, PrimModel, scale, baseline, baseOut))
	}
	return out
}

// FormatSeries renders figure series as a text table sorted by the first
// series' relative performance (as the paper sorts its figures).
func FormatSeries(series []*Series) string {
	if len(series) == 0 {
		return ""
	}
	names := make([]string, 0, len(series[0].Rel))
	for n := range series[0].Rel {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		return series[0].Rel[names[i]] < series[0].Rel[names[j]]
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s", "benchmark")
	for _, s := range series {
		fmt.Fprintf(&sb, " %22s", s.Label)
	}
	sb.WriteByte('\n')
	for _, n := range names {
		fmt.Fprintf(&sb, "%-14s", n)
		for _, s := range series {
			if v, ok := s.Rel[n]; ok {
				fmt.Fprintf(&sb, " %22s", fmtPct(v))
			} else {
				fmt.Fprintf(&sb, " %22s", "excluded")
			}
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%-14s", "geomean")
	for _, s := range series {
		fmt.Fprintf(&sb, " %22s", fmtPct(s.GeoMean))
	}
	sb.WriteByte('\n')
	return sb.String()
}
