package experiments

import (
	"strings"
	"testing"
)

// TestChaosSoakInvariants runs the full seeded chaos soak — fault-injected
// IPC under a live supervisor — and relies on Chaos itself to enforce the
// invariants (violators never pass a gate, kills are attributed and counted
// exactly once, goroutines drain, schedules reproduce). Any violation is an
// error from Chaos.
func TestChaosSoakInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	out, err := Chaos(0xda0517, 6)
	if err != nil {
		t.Fatalf("chaos soak: %v", err)
	}
	for _, want := range []string{"soak:", "determinism:", "invariants:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q section:\n%s", want, out)
		}
	}
}

// TestChaosSoakSecondSeed guards against the soak only passing at the tuned
// default seed: a different schedule must satisfy the same invariants.
func TestChaosSoakSecondSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	if _, err := Chaos(7, 6); err != nil {
		t.Fatalf("chaos soak at seed 7: %v", err)
	}
}
