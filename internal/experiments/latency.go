package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"herqules/internal/ipc"
	"herqules/internal/telemetry"
	"herqules/internal/verifier"
)

// LatencyRow is one measurement of the sampled end-to-end latency tracer:
// the supervisor's per-process topology (one shared-memory ring per
// process, concurrent producers, one shared PumpSet) drained with latency
// sampling disabled or enabled at a given period, reporting both the cost
// of the sampling instrumentation (aggregate msgs/sec, overhead vs the
// sampling-off row) and what it measured (observed send → validate
// latency quantiles).
type LatencyRow struct {
	SampleEvery int // -1 = telemetry off entirely, 0 = telemetry on / sampling off, N = 1-in-N
	Procs       int
	Shards      int
	Messages    int // aggregate across all processes
	Elapsed     time.Duration
	MsgsPerSec  float64
	OverheadPct float64 // vs the first (baseline) row; negative = faster
	Samples     uint64  // latency observations actually recorded
	P50Ns       float64
	P99Ns       float64
}

// latencyReps mirrors throughputReps: fastest of a few runs.
const latencyReps = 3

// Latency measures the cost and output of 1-in-N end-to-end latency
// sampling. Unlike the replay-based throughput experiments, the messages
// here travel through real instrumented channels — the sample timestamp is
// taken by the sender-side telemetry shim exactly as in a monitored
// process — so the measured overhead is the full production path: ordinal
// bookkeeping on every send, stamp-table writes on sampled ones, and the
// matching Take + histogram observe at the shard worker.
func Latency(messages, procs int, everyNs []int) ([]LatencyRow, error) {
	if messages <= 0 {
		messages = 1 << 20
	}
	if procs <= 0 {
		procs = 4
	}
	if len(everyNs) == 0 {
		// Baseline ladder: no telemetry at all, telemetry without sampling,
		// telemetry with the default 1-in-1024 sampling — so the exposition
		// cost and the sampling cost are attributed separately.
		everyNs = []int{-1, 0, telemetry.DefaultSampleEvery}
	}
	perProc := messages / procs
	if perProc < 1 {
		perProc = 1
	}
	total := perProc * procs

	// Per-process payloads (the HQ-CFI hot mix); Seq is assigned by the
	// ring at send time, so the payload carries none.
	payload := make([]ipc.Message, 0, perProc)
	for len(payload) < perProc {
		i := len(payload) / 3
		addr := uint64(0x1000 + 8*(i%4096))
		for _, op := range [...]ipc.Op{ipc.OpPointerDefine, ipc.OpPointerCheck, ipc.OpPointerInvalidate} {
			payload = append(payload, ipc.Message{Op: op, Arg1: addr, Arg2: addr + 1})
			if len(payload) == perProc {
				break
			}
		}
	}

	var rows []LatencyRow
	var baseRate float64
	for _, everyN := range everyNs {
		var minElapsed time.Duration
		var shards int
		var hist telemetry.HistogramSnapshot
		for rep := 0; rep < latencyReps; rep++ {
			var m *telemetry.Metrics
			if everyN >= 0 {
				m = telemetry.New(0)
				if everyN > 0 {
					m.EnableLatencySampling(everyN)
				}
			}
			v := verifier.NewSharded(throughputPolicies, nil, 0)
			v.CheckSeq = true
			if m != nil {
				v.EnableTelemetry(m)
			}
			shards = v.Shards()
			ps := v.NewPumpSet()

			var senders sync.WaitGroup
			var sendErr error
			var sendErrOnce sync.Once
			dones := make([]<-chan struct{}, procs)
			start := time.Now()
			for p := 0; p < procs; p++ {
				pid := int32(1 + p)
				v.ProcessStarted(pid)
				ch := ipc.NewSharedRing(1 << 12)
				if m != nil {
					ch.EnableTelemetry(m)
				}
				done, err := ps.Attach(ch.Receiver)
				if err != nil {
					// Unreachable on a fresh pump set, but library code must
					// not panic: release the transport and fail the
					// measurement after the already-started producers finish.
					ch.Close()
					sendErrOnce.Do(func() {
						sendErr = fmt.Errorf("latency: attach on fresh pump set: %w", err)
					})
					break
				}
				dones[p] = done
				senders.Add(1)
				go func(ch *ipc.Channel, pid int32) {
					defer senders.Done()
					// A failed send aborts this producer (recording the first
					// failure) but still closes the channel, so the attached
					// drain terminates and the run unwinds cleanly.
					defer ch.Close()
					for _, msg := range payload {
						msg.PID = pid
						if err := ch.Sender.Send(msg); err != nil {
							sendErrOnce.Do(func() {
								sendErr = fmt.Errorf("latency: send (pid %d): %w", pid, err)
							})
							return
						}
					}
				}(ch, pid)
			}
			senders.Wait()
			for _, done := range dones {
				if done != nil {
					<-done
				}
			}
			elapsed := time.Since(start)
			ps.Close()
			if sendErr != nil {
				return nil, sendErr
			}
			if rep == 0 || elapsed < minElapsed {
				minElapsed = elapsed
				if m != nil {
					hist = m.Snapshot().Histograms["verifier.send_validate_ns"]
				}
			}
		}

		rate := float64(total) / minElapsed.Seconds()
		row := LatencyRow{
			SampleEvery: everyN,
			Procs:       procs,
			Shards:      shards,
			Messages:    total,
			Elapsed:     minElapsed,
			MsgsPerSec:  rate,
			Samples:     hist.Count,
			P50Ns:       hist.Quantile(0.5),
			P99Ns:       hist.Quantile(0.99),
		}
		if baseRate == 0 {
			baseRate = rate
		} else {
			row.OverheadPct = 100 * (baseRate - rate) / baseRate
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatLatency renders the sampling-overhead rows.
func FormatLatency(rows []LatencyRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-6s %-7s %12s %12s %9s %9s %12s %12s\n",
		"Sampling", "Procs", "Shards", "Messages", "Msgs/sec", "Overhead", "Samples", "p50(ns)", "p99(ns)")
	for i, r := range rows {
		sampling := "off"
		if r.SampleEvery < 0 {
			sampling = "no-telem"
		}
		overhead := "-"
		p50, p99 := "-", "-"
		if i > 0 {
			overhead = fmt.Sprintf("%+.1f%%", r.OverheadPct)
		}
		if r.SampleEvery > 0 {
			sampling = fmt.Sprintf("1/%d", r.SampleEvery)
			p50 = fmt.Sprintf("%.0f", r.P50Ns)
			p99 = fmt.Sprintf("%.0f", r.P99Ns)
		}
		fmt.Fprintf(&sb, "%-10s %-6d %-7d %12d %12.0f %9s %9d %12s %12s\n",
			sampling, r.Procs, r.Shards, r.Messages, r.MsgsPerSec, overhead, r.Samples, p50, p99)
	}
	sb.WriteString("send → validate latency is the validation lag of §2.2: the window bounded\n" +
		"asynchronous enforcement leaves between a corrupting write and its detection\n")
	return sb.String()
}
