package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"herqules/internal/ipc"
	"herqules/internal/verifier"
)

// The scaling ladder measures how verifier throughput responds to the shard
// count, per backend, holding the workload fixed. It answers the question
// the single-point throughput experiment cannot: where does adding shards
// stop paying? On a box with GOMAXPROCS=1 the whole ladder should be flat
// (or gently declining: more shards mean more queues and more worker
// context switches for zero extra parallelism) — which is itself the result
// worth recording, because it shows the per-shard overhead the sharding
// design adds when the parallelism it buys is absent.

// ScalingRow is one rung: a fixed multi-process stream drained through a
// pipeline with Shards shards on the named backend.
type ScalingRow struct {
	Backend    string        `json:"backend"` // "replay" or "ring"
	Shards     int           `json:"shards"`
	Procs      int           `json:"procs"`
	Messages   int           `json:"messages"`
	ElapsedNs  int64         `json:"elapsed_ns"`
	MsgsPerSec float64       `json:"msgs_per_sec"`
	Elapsed    time.Duration `json:"-"`
}

// ScalingReport is the JSON artifact `hqbench -exp scaling` writes: the
// ladder plus the environment facts needed to interpret it later.
type ScalingReport struct {
	GOMAXPROCS int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	Procs      int          `json:"procs"`
	Messages   int          `json:"messages"`
	Reps       int          `json:"reps"`
	Rows       []ScalingRow `json:"rows"`
}

// scalingShardLadder is the swept shard counts.
var scalingShardLadder = []int{1, 2, 4, 8}

// scalingProcs fixes the monitored-process count: enough processes that
// every rung of the ladder has work for all its shards (8 procs spread over
// 8 shards by the PID hash), kept constant so rungs differ only in shards.
const scalingProcs = 8

// Scaling runs the ladder: for each backend and each shard count, drain the
// same messages-long stream and record the best-of-reps rate. messages <= 0
// selects 1<<20; reps <= 0 selects the throughput experiment's best-of-3.
//
// The replay backend replays one prerecorded interleaved stream through a
// single Pump — an upper bound free of producer cost. The ring backend runs
// one live SharedRing producer per process into a PumpSet — the production
// shape, where producers compete with the verifier for cores and each ring
// gets the devirtualized drain loop.
func Scaling(messages, reps int) ScalingReport {
	if messages <= 0 {
		messages = 1 << 20
	}
	if reps <= 0 {
		reps = throughputReps
	}
	rep := ScalingReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Procs:      scalingProcs,
		Messages:   messages,
		Reps:       reps,
	}
	stream := throughputStream(scalingProcs, messages)
	// Per-process streams for the ring backend: same op mix and per-PID
	// sequence ordering as the interleaved stream, one slice per producer.
	perProc := make([][]ipc.Message, scalingProcs+1)
	for _, m := range stream {
		perProc[m.PID] = append(perProc[m.PID], m)
	}

	mk := func(shards int) *verifier.Verifier {
		v := verifier.NewSharded(throughputPolicies, nil, shards)
		v.CheckSeq = true
		for pid := 1; pid <= scalingProcs; pid++ {
			v.ProcessStarted(int32(pid))
		}
		return v
	}

	for _, backend := range []string{"replay", "ring"} {
		for _, shards := range scalingShardLadder {
			var best time.Duration
			for r := 0; r < reps; r++ {
				var elapsed time.Duration
				switch backend {
				case "replay":
					v := mk(shards)
					replay := ipc.NewReplay(stream)
					start := time.Now()
					v.Pump(replay)
					elapsed = time.Since(start)
				case "ring":
					v := mk(shards)
					ps := v.NewPumpSet()
					start := time.Now()
					var producers sync.WaitGroup
					for pid := 1; pid <= scalingProcs; pid++ {
						ch := ipc.NewSharedRing(1 << 12)
						if _, err := ps.Attach(ch.Receiver); err != nil {
							panic(err) // unreachable: set not closed
						}
						producers.Add(1)
						go func(msgs []ipc.Message, s ipc.Sender) {
							defer producers.Done()
							for _, m := range msgs {
								_ = s.Send(m)
							}
							_ = s.Close()
						}(perProc[pid], ch.Sender)
					}
					producers.Wait()
					ps.Close()
					elapsed = time.Since(start)
				}
				if r == 0 || elapsed < best {
					best = elapsed
				}
			}
			rep.Rows = append(rep.Rows, ScalingRow{
				Backend: backend, Shards: shards, Procs: scalingProcs,
				Messages: messages, Elapsed: best, ElapsedNs: best.Nanoseconds(),
				MsgsPerSec: float64(messages) / best.Seconds(),
			})
		}
	}
	return rep
}

// FormatScaling renders the ladder with per-backend speedup relative to the
// backend's own 1-shard rung, which is the number that shows where shard
// scaling saturates.
func FormatScaling(rep ScalingReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scaling ladder: %d procs, %d msgs, best of %d, GOMAXPROCS=%d\n",
		rep.Procs, rep.Messages, rep.Reps, rep.GOMAXPROCS)
	fmt.Fprintf(&sb, "%-8s %-7s %12s %12s %10s\n",
		"Backend", "Shards", "Messages", "Msgs/sec", "vs 1shard")
	base := map[string]float64{}
	for _, r := range rep.Rows {
		if r.Shards == 1 {
			base[r.Backend] = r.MsgsPerSec
		}
		rel := "-"
		if b := base[r.Backend]; b > 0 {
			rel = fmt.Sprintf("%.2fx", r.MsgsPerSec/b)
		}
		fmt.Fprintf(&sb, "%-8s %-7d %12d %12.0f %10s\n",
			r.Backend, r.Shards, r.Messages, r.MsgsPerSec, rel)
	}
	return sb.String()
}
