package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"herqules/internal/compiler"
	"herqules/internal/ipc"
	"herqules/internal/mir"
	"herqules/internal/obs"
	"herqules/internal/supervisor"
	"herqules/internal/telemetry"
	"herqules/internal/vm"
)

// ObsSmoke is the observability-plane smoke test behind `make obs-smoke`:
// it stands up a resident System with the observability server on a
// loopback port, runs a couple of monitored programs through it plus one
// synthetic violator, scrapes /metrics, /healthz and the /violations
// postmortem endpoints over real HTTP, and fails unless the exposition is
// non-empty and carries the series an operator would alert on. It returns a
// short human-readable summary on success.
func ObsSmoke() (string, error) {
	m := telemetry.New(0)
	m.EnableTrace(1 << 12)
	sys := supervisor.New(supervisor.Config{
		Metrics: m,
		// Sample every message: the smoke run is tiny and must still land
		// send → validate observations.
		LatencySampleEvery: 1,
		// Kill-on-violation plus an armed flight recorder: the smoke run
		// includes a synthetic violator so /violations serves a real report.
		KillOnViolation: true,
		FlightRecorder:  64,
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = sys.Shutdown(ctx)
	}()
	srv := obs.NewServer(sys, m)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return "", fmt.Errorf("obs-smoke: bind: %w", err)
	}
	defer srv.Close()
	addr := srv.Addr()

	mod := mir.NewModule("obs-smoke")
	b := mir.NewBuilder(mod)
	b.Func("main", mir.FuncType(mir.I64))
	b.Syscall(vm.SysWrite, mir.ConstInt(7))
	b.Syscall(vm.SysExit, mir.ConstInt(0))
	b.Ret(mir.ConstInt(0))
	mod.Finalize()
	ins, err := compiler.Instrument(mod, compiler.HQSfeStk, compiler.DefaultOptions())
	if err != nil {
		return "", fmt.Errorf("obs-smoke: instrument: %w", err)
	}

	const procs = 2
	var pids []int32
	for i := 0; i < procs; i++ {
		p, err := sys.Launch(ins, supervisor.LaunchOptions{})
		if err != nil {
			return "", fmt.Errorf("obs-smoke: launch: %w", err)
		}
		if _, err := p.Wait(); err != nil {
			return "", fmt.Errorf("obs-smoke: wait: %w", err)
		}
		pids = append(pids, p.PID())
	}

	fetch := func(path string) (int, string, error) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			return 0, "", fmt.Errorf("obs-smoke: GET %s: %w", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return 0, "", fmt.Errorf("obs-smoke: GET %s: %w", path, err)
		}
		return resp.StatusCode, string(body), nil
	}

	code, metrics, err := fetch("/metrics")
	if err != nil {
		return "", err
	}
	if code != http.StatusOK {
		return "", fmt.Errorf("obs-smoke: /metrics status %d", code)
	}
	if strings.TrimSpace(metrics) == "" {
		return "", fmt.Errorf("obs-smoke: /metrics exposition is empty")
	}
	for _, want := range []string{
		"herqules_messages_verified_total",
		"herqules_verifier_send_validate_ns_bucket",
		fmt.Sprintf(`herqules_proc_messages_total{pid="%d"}`, pids[0]),
		fmt.Sprintf(`herqules_proc_messages_total{pid="%d"}`, pids[1]),
	} {
		if !strings.Contains(metrics, want) {
			return "", fmt.Errorf("obs-smoke: /metrics missing %q", want)
		}
	}

	code, health, err := fetch("/healthz")
	if err != nil {
		return "", err
	}
	if code != http.StatusOK {
		return "", fmt.Errorf("obs-smoke: /healthz status %d body %s", code, health)
	}

	// Synthetic violator: register a kernel context and replay a define/check
	// pair with a corrupted pointer, so the cfi policy kills and freezes a
	// report the /violations endpoints must then serve.
	vpid := sys.Kernel().Register()
	v := sys.Verifier()
	v.Deliver(ipc.Message{Op: ipc.OpPointerDefine, PID: vpid, Arg1: 0x40, Arg2: 0x1000, Seq: 1})
	v.Deliver(ipc.Message{Op: ipc.OpPointerCheck, PID: vpid, Arg1: 0x40, Arg2: 0xbad, Seq: 2})

	code, idxBody, err := fetch("/violations")
	if err != nil {
		return "", err
	}
	if code != http.StatusOK {
		return "", fmt.Errorf("obs-smoke: /violations status %d", code)
	}
	var idx []struct {
		PID        int32  `json:"pid"`
		Policy     string `json:"policy"`
		KillReason string `json:"kill_reason"`
		Window     int    `json:"window"`
	}
	if err := json.Unmarshal([]byte(idxBody), &idx); err != nil {
		return "", fmt.Errorf("obs-smoke: /violations is not JSON: %w", err)
	}
	if len(idx) != 1 || idx[0].PID != vpid {
		return "", fmt.Errorf("obs-smoke: /violations index %+v, want one row for pid %d", idx, vpid)
	}
	if idx[0].Policy != "cfi" || idx[0].KillReason == "" || idx[0].Window == 0 {
		return "", fmt.Errorf("obs-smoke: /violations row %+v: want policy=cfi, a kill reason, a window", idx[0])
	}

	code, repBody, err := fetch(fmt.Sprintf("/violations/%d", vpid))
	if err != nil {
		return "", err
	}
	if code != http.StatusOK {
		return "", fmt.Errorf("obs-smoke: /violations/%d status %d", vpid, code)
	}
	var report supervisor.ForensicReport
	if err := json.Unmarshal([]byte(repBody), &report); err != nil {
		return "", fmt.Errorf("obs-smoke: /violations/%d is not JSON: %w", vpid, err)
	}
	if report.Policy != "cfi" || report.KillReason == "" || len(report.Window) == 0 {
		return "", fmt.Errorf("obs-smoke: report pid %d: policy %q reason %q window %d — want an attributed cfi postmortem",
			vpid, report.Policy, report.KillReason, len(report.Window))
	}

	// The kill must also surface on the metric plane: the per-policy counter
	// and at least one per-shard depth gauge.
	code, metrics, err = fetch("/metrics")
	if err != nil {
		return "", err
	}
	if code != http.StatusOK {
		return "", fmt.Errorf("obs-smoke: /metrics re-scrape status %d", code)
	}
	for _, want := range []string{
		`herqules_violations_total{policy="cfi"} 1`,
		`herqules_shard_queue_depth{shard="0"}`,
	} {
		if !strings.Contains(metrics, want) {
			return "", fmt.Errorf("obs-smoke: /metrics missing %q after the kill", want)
		}
	}

	lines := strings.Count(metrics, "\n")
	return fmt.Sprintf("obs-smoke ok: %d procs, %d exposition lines on %s, /healthz up, postmortem for pid %d (cfi) served\n",
		procs, lines, addr, vpid), nil
}
