package experiments

import (
	"fmt"
	"strings"

	"herqules/internal/compiler"
	"herqules/internal/ripe"
	"herqules/internal/sim"
	"herqules/internal/workload"
)

// Table5 executes the full RIPE suite under every design.
func Table5() ([]*ripe.Table, error) {
	var out []*ripe.Table
	for _, d := range []compiler.Design{
		compiler.Baseline, compiler.ClangCFI, compiler.CCFI, compiler.CPI,
		compiler.HQSfeStk, compiler.HQRetPtr,
	} {
		t, err := ripe.RunSuite(d)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// FormatTable5 renders the effectiveness table like the paper's Table 5.
func FormatTable5(tables []*ripe.Table) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %6s %6s %6s %6s %7s\n", "Design", "BSS", "Data", "Heap", "Stack", "Total")
	for _, t := range tables {
		fmt.Fprintf(&sb, "%-16s %6d %6d %6d %6d %7d\n",
			t.Design,
			t.ByOrgin[ripe.OriginBSS], t.ByOrgin[ripe.OriginData],
			t.ByOrgin[ripe.OriginHeap], t.ByOrgin[ripe.OriginStack], t.Total)
	}
	return sb.String()
}

// Metrics reproduces the §5.4 message-rate and verifier-memory statistics
// under HQ-CFI-SfeStk-MODEL. Rates are messages per modelled second (cycles
// divided by the 5 GHz clock).
type Metrics struct {
	MedianMsgPerSec  float64
	GeoMeanMsgPerSec float64
	MaxMsgPerSec     float64
	MaxMsgBenchmark  string
	MaxTotalMessages uint64
	TotalMsgBench    string
	MaxEntries       int
	MedianEntries    float64
	MeanEntries      float64
	ZeroEntryBenches int
}

// CollectMetrics runs every benchmark under HQ-CFI-SfeStk-MODEL and gathers
// the per-benchmark statistics.
func CollectMetrics(scale workload.Scale) *Metrics {
	m := &Metrics{}
	cost := PrimModel.costModel()
	var rates, entries []float64
	for _, p := range workload.All() {
		r := execute(p, compiler.HQSfeStk, cost, scale)
		if r.Outcome == nil || r.Outcome.Err != nil {
			continue
		}
		out := r.Outcome
		seconds := float64(out.Stats.Cycles) / (sim.CyclesPerNano * 1e9)
		if seconds <= 0 {
			continue
		}
		rate := float64(out.Stats.Messages) / seconds
		rates = append(rates, rate)
		if rate > m.MaxMsgPerSec {
			m.MaxMsgPerSec = rate
			m.MaxMsgBenchmark = p.DisplayName()
		}
		if out.Stats.Messages > m.MaxTotalMessages {
			m.MaxTotalMessages = out.Stats.Messages
			m.TotalMsgBench = p.DisplayName()
		}
		entries = append(entries, float64(out.MaxEntries))
		if out.MaxEntries > m.MaxEntries {
			m.MaxEntries = out.MaxEntries
		}
		if out.MaxEntries == 0 {
			m.ZeroEntryBenches++
		}
	}
	m.MedianMsgPerSec = Median(rates)
	m.GeoMeanMsgPerSec = GeoMean(rates)
	m.MedianEntries = Median(entries)
	var sum float64
	for _, e := range entries {
		sum += e
	}
	if len(entries) > 0 {
		m.MeanEntries = sum / float64(len(entries))
	}
	return m
}

// FormatMetrics renders the §5.4 statistics.
func (m *Metrics) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "message rate (msgs per modelled second):\n")
	fmt.Fprintf(&sb, "  median  %.3g\n  geomean %.3g\n  max     %.3g (%s)\n",
		m.MedianMsgPerSec, m.GeoMeanMsgPerSec, m.MaxMsgPerSec, m.MaxMsgBenchmark)
	fmt.Fprintf(&sb, "total messages: max %d (%s)\n", m.MaxTotalMessages, m.TotalMsgBench)
	fmt.Fprintf(&sb, "verifier entries (16-byte pointer-value pairs):\n")
	fmt.Fprintf(&sb, "  max %d, median %.0f, mean %.1f, zero-entry benchmarks %d\n",
		m.MaxEntries, m.MedianEntries, m.MeanEntries, m.ZeroEntryBenches)
	return sb.String()
}
