package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"herqules/internal/ipc"
	"herqules/internal/policy"
	"herqules/internal/verifier"
)

// This file implements `hqbench -exp policies`: a RIPE-style detection
// matrix over the policy registry (which injected fault does each policy
// catch, and is the kill attributed to the right policy?) plus the
// throughput overhead each policy adds to a cfi-only baseline.

// policyKillGate records kernel kills so matrix cells can assert both that a
// fault was caught and what reason the kernel would have seen.
type policyKillGate struct {
	mu    sync.Mutex
	kills map[int32]string
}

func (g *policyKillGate) NotifySyncReady(pid int32) {}
func (g *policyKillGate) Kill(pid int32, reason string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.kills[pid]; !ok {
		g.kills[pid] = reason
	}
}
func (g *policyKillGate) reason(pid int32) string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.kills[pid]
}

// sealStream stamps each message with its stream ordinal and the MAC an
// ipc.SealSender would have produced, in place.
func sealStream(ms []ipc.Message, key ipc.MacKey) {
	for i := range ms {
		ms[i].Seq = uint64(i + 1)
		ms[i].Mac = ipc.MacSeal(key, ms[i], ms[i].Seq)
	}
}

func incStream(n int) []ipc.Message {
	ms := make([]ipc.Message, n)
	for i := range ms {
		ms[i] = ipc.Message{Op: ipc.OpCounterInc, PID: 1, Arg1: 1}
	}
	return ms
}

// policyInjector produces one faulty message stream for the matrix. When the
// verifying set contains the hmac sealer the clean stream is sealed under the
// victim's key first and the fault applied afterwards — transport faults
// tamper with sealed bytes, they do not get to re-seal.
type policyInjector struct {
	name   string
	detail string
	build  func(sealed bool, victim, foreign ipc.MacKey) []ipc.Message
	// caughtBy is the set of registry policies that must detect this fault;
	// every other policy must pass the stream clean.
	caughtBy map[string]bool
}

func policyInjectors() []policyInjector {
	sealIf := func(on bool, ms []ipc.Message, key ipc.MacKey) []ipc.Message {
		if on {
			sealStream(ms, key)
		}
		return ms
	}
	return []policyInjector{
		{
			name:   "clean",
			detail: "well-formed stream, no fault",
			build: func(sealed bool, victim, _ ipc.MacKey) []ipc.Message {
				return sealIf(sealed, incStream(4), victim)
			},
			caughtBy: map[string]bool{},
		},
		{
			name:   "ptr-corrupt",
			detail: "function-pointer check against overwritten value",
			build: func(sealed bool, victim, _ ipc.MacKey) []ipc.Message {
				return sealIf(sealed, []ipc.Message{
					{Op: ipc.OpPointerDefine, PID: 1, Arg1: 0x1000, Arg2: 0x4000},
					{Op: ipc.OpPointerCheck, PID: 1, Arg1: 0x1000, Arg2: 0xbad},
				}, victim)
			},
			caughtBy: map[string]bool{"cfi": true},
		},
		{
			name:   "uaf",
			detail: "access inside a freed allocation",
			build: func(sealed bool, victim, _ ipc.MacKey) []ipc.Message {
				return sealIf(sealed, []ipc.Message{
					{Op: ipc.OpAllocCreate, PID: 1, Arg1: 0x1000, Arg2: 64},
					{Op: ipc.OpAllocDestroy, PID: 1, Arg1: 0x1000},
					{Op: ipc.OpAllocCheck, PID: 1, Arg1: 0x1010},
				}, victim)
			},
			caughtBy: map[string]bool{"memsafety": true, "temporal": true},
		},
		{
			name:   "double-free",
			detail: "second destroy of the same allocation",
			build: func(sealed bool, victim, _ ipc.MacKey) []ipc.Message {
				return sealIf(sealed, []ipc.Message{
					{Op: ipc.OpAllocCreate, PID: 1, Arg1: 0x1000, Arg2: 64},
					{Op: ipc.OpAllocDestroy, PID: 1, Arg1: 0x1000},
					{Op: ipc.OpAllocDestroy, PID: 1, Arg1: 0x1000},
				}, victim)
			},
			caughtBy: map[string]bool{"memsafety": true, "temporal": true},
		},
		{
			name:   "bitflip",
			detail: "transport flips one payload bit post-seal",
			build: func(sealed bool, victim, _ ipc.MacKey) []ipc.Message {
				ms := sealIf(sealed, incStream(4), victim)
				ms[2].Arg1 ^= 1 << 5 // after sealing: the tag no longer matches
				return ms
			},
			caughtBy: map[string]bool{"hmac": true},
		},
		{
			name:   "replay-dup",
			detail: "transport delivers one sealed message twice",
			build: func(sealed bool, victim, _ ipc.MacKey) []ipc.Message {
				ms := sealIf(sealed, incStream(4), victim)
				out := append([]ipc.Message{}, ms[:2]...)
				out = append(out, ms[1]) // replayed: same ordinal, same tag
				return append(out, ms[2:]...)
			},
			caughtBy: map[string]bool{"hmac": true},
		},
		{
			name:   "splice",
			detail: "message from another process's stream, PID rewritten",
			build: func(sealed bool, victim, foreign ipc.MacKey) []ipc.Message {
				ms := sealIf(sealed, incStream(4), victim)
				sp := ipc.Message{Op: ipc.OpCounterInc, PID: 2, Arg1: 0x5eed, Seq: 3}
				if sealed {
					sp.Mac = ipc.MacSeal(foreign, sp, sp.Seq) // the other process's key
				}
				sp.PID = 1 // attacker redirects it onto the victim's stream
				ms[2] = sp
				return ms
			},
			caughtBy: map[string]bool{"hmac": true},
		},
	}
}

// PolicyMatrixCell is one (policy, injector) measurement.
type PolicyMatrixCell struct {
	Policy   string `json:"policy"`
	Injector string `json:"injector"`
	Caught   bool   `json:"caught"`
	Expected bool   `json:"expected"`
	Reason   string `json:"reason,omitempty"` // kill reason when caught
}

// DetectionMatrix runs every injected fault against every registered policy
// in isolation (single-policy verifier, kill-on-violation, CheckSeq off so
// sequence enforcement cannot mask attribution) and returns the cells plus
// an error listing every miss, false positive, or misattributed violation.
func DetectionMatrix() ([]PolicyMatrixCell, error) {
	names := policy.Names()
	var cells []PolicyMatrixCell
	var faults []string
	for _, inj := range policyInjectors() {
		for _, name := range names {
			cell, err := runMatrixCell(name, inj)
			cells = append(cells, cell)
			if err != nil {
				faults = append(faults, err.Error())
			}
		}
	}
	if len(faults) > 0 {
		return cells, fmt.Errorf("policies: %d detection-matrix failure(s):\n  %s",
			len(faults), strings.Join(faults, "\n  "))
	}
	return cells, nil
}

func runMatrixCell(name string, inj policyInjector) (PolicyMatrixCell, error) {
	factory, err := policy.SetFactory(name)
	if err != nil {
		return PolicyMatrixCell{}, fmt.Errorf("%s/%s: %v", name, inj.name, err)
	}
	g := &policyKillGate{kills: make(map[int32]string)}
	v := verifier.New(factory, g)
	v.KillOnViolation = true
	kr := policy.NewKeyringSeeded(0xbadc0de)
	v.SetKeyring(kr)
	kr.Program(1) // the kernel programs keys before the process is visible
	kr.Program(2)
	v.ProcessStarted(1)

	sealed := name == "hmac"
	victim, _ := kr.Key(1)
	foreign, _ := kr.Key(2)
	for _, m := range inj.build(sealed, victim, foreign) {
		v.Deliver(m)
	}

	viols := v.Violations(1)
	cell := PolicyMatrixCell{
		Policy: name, Injector: inj.name,
		Caught:   len(viols) > 0,
		Expected: inj.caughtBy[name],
		Reason:   g.reason(1),
	}
	switch {
	case cell.Expected && !cell.Caught:
		return cell, fmt.Errorf("%s missed %s", name, inj.name)
	case !cell.Expected && cell.Caught:
		return cell, fmt.Errorf("%s false positive on %s: %v", name, inj.name, viols[0])
	case cell.Caught:
		for _, viol := range viols {
			if viol.Policy != name {
				return cell, fmt.Errorf("%s caught %s but attributed it to %q", name, inj.name, viol.Policy)
			}
		}
		if cell.Reason == "" {
			return cell, fmt.Errorf("%s caught %s but no kill reached the gate", name, inj.name)
		}
		if name == "hmac" && !strings.Contains(cell.Reason, "message authentication") {
			return cell, fmt.Errorf("hmac kill for %s not attributed as authentication: %q", inj.name, cell.Reason)
		}
	}
	return cell, nil
}

// PolicyOverheadRow is the drain throughput of cfi plus one extra policy,
// against the cfi-only baseline.
type PolicyOverheadRow struct {
	Set        string        `json:"set"`
	Messages   int           `json:"messages"`
	ElapsedNs  int64         `json:"elapsed_ns"`
	MsgsPerSec float64       `json:"msgs_per_sec"`
	Overhead   float64       `json:"overhead_pct"` // percent vs the cfi-only baseline
	Elapsed    time.Duration `json:"-"`
}

// PoliciesReport is the JSON artifact `hqbench -exp policies -out` writes:
// the full detection matrix and the per-policy overhead sweep, plus the
// environment facts needed to interpret the rates later (the -exp scaling
// convention).
type PoliciesReport struct {
	GOMAXPROCS int                 `json:"gomaxprocs"`
	NumCPU     int                 `json:"num_cpu"`
	Messages   int                 `json:"messages"`
	Reps       int                 `json:"reps"`
	Policies   []string            `json:"policies"`
	Matrix     []PolicyMatrixCell  `json:"matrix"`
	Overhead   []PolicyOverheadRow `json:"overhead"`
}

// policyOverhead measures the sharded drain rate for cfi-only and for
// cfi+<each other registered policy>, over identical replayed streams of
// pointer-integrity traffic. The hmac row drains a properly sealed copy of
// the stream, so it pays the full verify-and-strip cost on every message.
func policyOverhead(messages, reps int) []PolicyOverheadRow {
	const procs = 4
	base := throughputStream(procs, messages)
	kr := policy.NewKeyringSeeded(0x5ea1)
	for pid := 1; pid <= procs; pid++ {
		kr.Program(int32(pid))
	}
	sealedCopy := func() []ipc.Message {
		ms := append([]ipc.Message(nil), base...)
		for i := range ms {
			key, _ := kr.Key(ms[i].PID)
			ms[i].Mac = ipc.MacSeal(key, ms[i], ms[i].Seq) // Seq already per-PID consecutive
		}
		return ms
	}

	sets := [][]string{{"cfi"}}
	for _, name := range policy.Names() {
		if name != "cfi" {
			sets = append(sets, []string{"cfi", name})
		}
	}

	type setRun struct {
		factory func() []policy.Policy
		replay  *ipc.Replay
		min     time.Duration
	}
	runs := make([]setRun, len(sets))
	for i, set := range sets {
		stream := base
		if set[len(set)-1] == "hmac" {
			stream = sealedCopy()
		}
		factory, err := policy.SetFactory(set...)
		if err != nil {
			panic(err) // unreachable: set names come straight from the registry
		}
		runs[i] = setRun{factory: factory, replay: ipc.NewReplay(stream)}
	}

	// Reps are round-robined across the sets (rep 0 is an untimed warm-up)
	// rather than run set-by-set: process-wide warm-up — clock ramp, page
	// faults, allocator growth — otherwise lands entirely on the first set
	// measured, which is the baseline every other row is compared against.
	for rep := 0; rep <= reps; rep++ {
		for i := range runs {
			v := verifier.NewSharded(runs[i].factory, nil, 0)
			v.SetKeyring(kr)
			for pid := 1; pid <= procs; pid++ {
				v.ProcessStarted(int32(pid))
			}
			runs[i].replay.Rewind()
			start := time.Now()
			v.Pump(runs[i].replay)
			elapsed := time.Since(start)
			if rep == 1 || (rep > 1 && elapsed < runs[i].min) {
				runs[i].min = elapsed
			}
		}
	}

	rows := make([]PolicyOverheadRow, 0, len(sets))
	var baseline float64
	for i, set := range sets {
		rate := float64(messages) / runs[i].min.Seconds()
		row := PolicyOverheadRow{
			Set: strings.Join(set, "+"), Messages: messages,
			Elapsed: runs[i].min, ElapsedNs: runs[i].min.Nanoseconds(), MsgsPerSec: rate,
		}
		if baseline == 0 {
			baseline = rate
		} else {
			row.Overhead = (baseline/rate - 1) * 100
		}
		rows = append(rows, row)
	}
	return rows
}

// Policies runs the detection matrix and the overhead sweep behind
// `hqbench -exp policies` and `make policy-smoke`. The returned report is
// the JSON artifact written by -out (nil when the matrix failed, so a broken
// run never overwrites a good artifact).
func Policies(messages int, quick bool) (string, *PoliciesReport, error) {
	if messages <= 0 {
		messages = 1 << 19
	}
	reps := 3
	if quick {
		messages, reps = 1<<18, 2
	}

	cells, merr := DetectionMatrix()

	var sb strings.Builder
	names := policy.Names()
	sort.Strings(names)
	injors := policyInjectors()
	sb.WriteString("Detection matrix (rows: injected fault; CAUGHT must match the policy's contract):\n")
	fmt.Fprintf(&sb, "%-12s", "fault")
	for _, n := range names {
		fmt.Fprintf(&sb, " %-10s", n)
	}
	sb.WriteString("\n")
	byKey := make(map[string]PolicyMatrixCell, len(cells))
	for _, c := range cells {
		byKey[c.Policy+"/"+c.Injector] = c
	}
	for _, inj := range injors {
		fmt.Fprintf(&sb, "%-12s", inj.name)
		for _, n := range names {
			c := byKey[n+"/"+inj.name]
			mark := "-"
			switch {
			case c.Caught && c.Expected:
				mark = "CAUGHT"
			case c.Caught && !c.Expected:
				mark = "FALSE+"
			case !c.Caught && c.Expected:
				mark = "MISS!"
			}
			fmt.Fprintf(&sb, " %-10s", mark)
		}
		fmt.Fprintf(&sb, "  (%s)\n", inj.detail)
	}
	if merr != nil {
		sb.WriteString("\n")
		sb.WriteString(merr.Error())
		sb.WriteString("\n")
		return sb.String(), nil, merr
	}

	overhead := policyOverhead(messages, reps)
	sb.WriteString("\nThroughput overhead vs cfi-only baseline (sharded drain, identical streams):\n")
	fmt.Fprintf(&sb, "%-16s %12s %12s %10s\n", "set", "messages", "msgs/sec", "overhead")
	for _, r := range overhead {
		oh := "baseline"
		if r.Overhead != 0 || r.Set != "cfi" {
			oh = fmt.Sprintf("%+.1f%%", r.Overhead)
		}
		fmt.Fprintf(&sb, "%-16s %12d %12.0f %10s\n", r.Set, r.Messages, r.MsgsPerSec, oh)
	}
	sb.WriteString("\nregistry: " + strings.Join(policy.Names(), ", ") + "\n")
	rep := &PoliciesReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Messages:   messages,
		Reps:       reps,
		Policies:   policy.Names(),
		Matrix:     cells,
		Overhead:   overhead,
	}
	return sb.String(), rep, nil
}
