package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestScalingLadderShape checks the ladder produces one row per
// shard-count × backend rung with sane rates, and that the JSON artifact
// round-trips with the fields downstream tooling keys on.
func TestScalingLadderShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling ladder is a timed sweep")
	}
	rep := Scaling(1<<15, 1)
	wantRows := 2 * len(scalingShardLadder)
	if len(rep.Rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(rep.Rows), wantRows)
	}
	seen := map[string]bool{}
	for _, r := range rep.Rows {
		if r.MsgsPerSec <= 0 {
			t.Errorf("%s/%d shards: non-positive rate %f", r.Backend, r.Shards, r.MsgsPerSec)
		}
		if r.Messages != 1<<15 {
			t.Errorf("%s/%d shards: messages = %d, want %d", r.Backend, r.Shards, r.Messages, 1<<15)
		}
		seen[r.Backend] = true
	}
	if !seen["replay"] || !seen["ring"] {
		t.Fatalf("missing a backend: %v", seen)
	}

	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, field := range []string{`"gomaxprocs"`, `"backend"`, `"shards"`, `"msgs_per_sec"`, `"elapsed_ns"`} {
		if !strings.Contains(string(data), field) {
			t.Errorf("JSON report missing field %s", field)
		}
	}

	out := FormatScaling(rep)
	if !strings.Contains(out, "replay") || !strings.Contains(out, "ring") {
		t.Errorf("FormatScaling output missing backends:\n%s", out)
	}
}
