package hqnet

import (
	"sync"

	"herqules/internal/ipc"
)

// sessionQueue is the bounded hand-off between a session's connection reader
// and the verifier pump: the reader Sends frames exactly as they arrived on
// the wire (Seq and Mac preserved verbatim — the resume protocol and the
// hmac sealer both depend on the daemon never re-stamping a frame), and the
// pump drains it through the ipc.BatchReceiver interface like any local
// channel.
//
// Send blocks while the queue is full. That is the admission-side
// backpressure story: a client outrunning the verifier stops being read,
// which backs up into the transport's own flow control, instead of growing
// an unbounded in-daemon queue. If the verifier is wedged long enough, the
// stalled reader stops renewing the session's lease and the process dies
// fail-closed — the networked analogue of the epoch watchdog.
type sessionQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []ipc.Message
	slots  int
	closed bool
	peak   uint64
}

func newSessionQueue(slots int) *sessionQueue {
	if slots <= 0 {
		slots = 1024
	}
	q := &sessionQueue{slots: slots}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Send enqueues one frame, blocking while the queue is at capacity. Returns
// ipc.ErrClosed once the queue is closed.
func (q *sessionQueue) Send(m ipc.Message) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.buf) >= q.slots && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return ipc.ErrClosed
	}
	q.buf = append(q.buf, m)
	if n := uint64(len(q.buf)); n > q.peak {
		q.peak = n
	}
	q.cond.Broadcast()
	return nil
}

// Close ends the queue: pending frames remain receivable (the pump drains
// them), further Sends fail, and a blocked receiver wakes.
func (q *sessionQueue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
	return nil
}

// Recv implements ipc.Receiver.
func (q *sessionQueue) Recv() (ipc.Message, bool, error) {
	var one [1]ipc.Message
	n, ok, err := q.RecvBatch(one[:])
	if n == 1 {
		return one[0], true, err
	}
	return ipc.Message{}, ok, err
}

// RecvBatch implements ipc.BatchReceiver: blocks until at least one frame is
// queued or the queue is closed and drained.
func (q *sessionQueue) RecvBatch(out []ipc.Message) (int, bool, error) {
	if len(out) == 0 {
		return 0, true, nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.buf) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.buf) == 0 {
		return 0, false, nil
	}
	n := copy(out, q.buf)
	q.buf = q.buf[n:]
	q.cond.Broadcast()
	return n, true, nil
}

// Pending implements ipc.Pender (the pump's queue-depth probe).
func (q *sessionQueue) Pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf)
}

// PendingPeak implements ipc.PeakPender for per-PID backpressure attribution.
func (q *sessionQueue) PendingPeak() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.peak
}

var (
	_ ipc.Receiver      = (*sessionQueue)(nil)
	_ ipc.BatchReceiver = (*sessionQueue)(nil)
	_ ipc.Pender        = (*sessionQueue)(nil)
	_ ipc.PeakPender    = (*sessionQueue)(nil)
)
