package hqnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"herqules/internal/ipc"
	"herqules/internal/vm"
)

// ClientConfig parameterizes a Client.
type ClientConfig struct {
	// Network and Addr name the daemon ("tcp", "127.0.0.1:9411" or "unix",
	// "/run/hqd.sock").
	Network, Addr string

	// Tenant identifies the client for per-tenant admission quotas.
	Tenant uint64

	// DialTimeout bounds one connection attempt (<= 0 selects 2s).
	DialTimeout time.Duration

	// ResumeAttempts bounds reconnection tries per outage (<= 0 selects 8).
	// Exhausting them declares the session dead; the daemon's lease has
	// long since disposed of the process by then.
	ResumeAttempts int

	// ReplaySlots bounds the unacked-frame replay buffer (<= 0 selects
	// 4096). A full buffer blocks Send — bounded memory, backpressure up
	// into the monitored program, exactly like a full local channel.
	ReplaySlots int

	// HeartbeatEvery overrides the lease-renewal cadence (0 selects a
	// quarter of the daemon-granted lease).
	HeartbeatEvery time.Duration

	// WrapConn, when non-nil, wraps every dialed connection — the chaos
	// plane's hook for injecting connection-level faults.
	WrapConn func(net.Conn) net.Conn
}

// RejectedError is a daemon refusal (admission or resume): terminal, never
// retried.
type RejectedError struct{ Code uint64 }

func (e *RejectedError) Error() string { return "hqnet: rejected: " + RejectText(e.Code) }

// Client is the monitored-program side of a session: an ipc.Sender whose
// frames survive transport loss (replay-from-last-ack on resume), a vm.Gate
// that runs bounded asynchronous validation on the daemon, and a heartbeat
// loop that keeps the process's lease alive. A Client whose transport dies
// reconnects with bounded, jittered, context-cancellable backoff; a Client
// that cannot get back in declares itself dead and every subsequent Send and
// gate fails — the local mirror of the daemon's fail-closed lease kill.
type Client struct {
	cfg    ClientConfig
	ctx    context.Context
	cancel context.CancelFunc

	pid   int32
	token uint64
	lease time.Duration
	key   ipc.MacKey
	keyed bool

	mu      sync.Mutex
	cond    *sync.Cond
	conn    net.Conn
	fw      *ipc.FrameWriter
	gen     uint64 // connection generation; stale recvLoops detect takeover
	nextSeq uint64 // highest data Seq admitted to the replay buffer
	acked   uint64 // highest Seq the daemon has acked
	replay  []ipc.Message
	resumes uint64
	hbOrd   uint64
	dead    bool
	deadErr string
	killed  bool
	killRsn string

	// One gate outstanding at a time (the VM is single-threaded through
	// syscalls); state kept for retransmission after resume.
	gateOrd uint64
	gateSys int
	gateCh  chan error

	wg sync.WaitGroup
}

// clientJitter seeds the resume backoff's splitmix64 stream.
var clientJitter atomic.Uint64

// resumeBackoff is the reconnect ladder: full jitter under an exponential
// envelope (1ms base, 50ms cap) so a rack of clients severed by one network
// event does not re-dial in lockstep.
func resumeBackoff(attempt int) time.Duration {
	const base, cap = time.Millisecond, 50 * time.Millisecond
	if attempt < 1 {
		attempt = 1
	}
	ceil := base
	if attempt > 1 {
		if shift := uint(attempt - 1); shift >= 8 {
			ceil = cap
		} else if ceil = base << shift; ceil > cap {
			ceil = cap
		}
	}
	x := clientJitter.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return 1 + time.Duration(x%uint64(ceil))
}

// Dial connects, performs the HELLO admission handshake, and starts the
// session loops. ctx governs the whole session: canceling it interrupts any
// backoff sleep and fails pending gates.
func Dial(ctx context.Context, cfg ClientConfig) (*Client, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.ResumeAttempts <= 0 {
		cfg.ResumeAttempts = 8
	}
	if cfg.ReplaySlots <= 0 {
		cfg.ReplaySlots = 4096
	}
	c := &Client{cfg: cfg}
	c.cond = sync.NewCond(&c.mu)
	c.ctx, c.cancel = context.WithCancel(ctx)

	hello := ipc.Message{Op: ipc.OpHello, Arg1: WireVersion, Arg2: cfg.Tenant}
	nc, fw, dec, welcome, err := c.handshake(hello)
	if err != nil {
		c.cancel()
		return nil, err
	}
	c.pid = welcome.PID
	c.token = welcome.Arg1
	c.lease = time.Duration(welcome.Arg2)
	if welcome.Arg3&WelcomeKeyed != 0 {
		// The key frame is the session's trusted provisioning step; it
		// arrives immediately after the welcome, before any data flows.
		var one [1]ipc.Message
		n, _, err := dec.Decode(one[:])
		if n != 1 || err != nil || one[0].Op != ipc.OpSessionKey {
			nc.Close()
			c.cancel()
			return nil, fmt.Errorf("hqnet: key delivery failed")
		}
		c.key = ipc.MacKey{K0: one[0].Arg1, K1: one[0].Arg2}
		c.keyed = true
	}
	c.conn, c.fw, c.gen = nc, fw, 1
	c.wg.Add(2)
	go c.recvLoop(nc, dec, 1)
	go c.heartbeatLoop()
	return c, nil
}

// handshake dials and exchanges exactly one request/welcome pair.
func (c *Client) handshake(req ipc.Message) (net.Conn, *ipc.FrameWriter, *ipc.FrameDecoder, ipc.Message, error) {
	d := net.Dialer{Timeout: c.cfg.DialTimeout}
	nc, err := d.DialContext(c.ctx, c.cfg.Network, c.cfg.Addr)
	if err != nil {
		return nil, nil, nil, ipc.Message{}, err
	}
	if c.cfg.WrapConn != nil {
		nc = c.cfg.WrapConn(nc)
	}
	fw := ipc.NewFrameWriter(nc)
	if err := fw.WriteMessage(req); err != nil {
		nc.Close()
		return nil, nil, nil, ipc.Message{}, err
	}
	_ = nc.SetReadDeadline(time.Now().Add(handshakeTimeout))
	dec := ipc.NewFrameDecoder(nc)
	var one [1]ipc.Message
	n, _, err := dec.Decode(one[:])
	if n != 1 {
		nc.Close()
		if err == nil {
			err = errors.New("hqnet: connection closed during handshake")
		}
		return nil, nil, nil, ipc.Message{}, err
	}
	switch one[0].Op {
	case ipc.OpWelcome:
	case ipc.OpReject:
		nc.Close()
		return nil, nil, nil, ipc.Message{}, &RejectedError{Code: one[0].Arg1}
	default:
		nc.Close()
		return nil, nil, nil, ipc.Message{}, fmt.Errorf("hqnet: unexpected handshake reply %v", one[0].Op)
	}
	_ = nc.SetReadDeadline(time.Time{})
	return nc, fw, dec, one[0], nil
}

// PID is the kernel identity the daemon assigned at admission.
func (c *Client) PID() int32 { return c.pid }

// Lease is the daemon-granted heartbeat lease.
func (c *Client) Lease() time.Duration { return c.lease }

// Resumes reports how many times the session has been resumed.
func (c *Client) Resumes() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resumes
}

// pidStamper fixes the process identity onto every frame before it reaches
// the sealer: the MAC covers the PID field, so it must be final at seal time
// (Client.Send's own stamp would come one layer too late and break the tag).
type pidStamper struct {
	pid int32
	s   ipc.Sender
}

func (p pidStamper) Send(m ipc.Message) error {
	m.PID = p.pid
	return p.s.Send(m)
}

func (p pidStamper) Close() error { return p.s.Close() }

// Sender returns the ipc.Sender the monitored program should emit through:
// sealed under the session key when the daemon runs an authenticated policy
// set (ipc.SealSender over the untrusted transport — the channel it was
// built for), raw otherwise.
func (c *Client) Sender() ipc.Sender {
	if c.keyed {
		return pidStamper{pid: c.pid, s: ipc.SealSender(c, c.key)}
	}
	return c
}

// Killed reports whether the daemon has positively told us the process was
// killed (kill notice or gate verdict) — the vm.Config.Killed hook.
func (c *Client) Killed() (bool, string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.killed, c.killRsn
}

// Send implements ipc.Sender. The frame is admitted to the bounded replay
// buffer (blocking while full — backpressure, not unbounded queueing) and
// written through best-effort: a write onto a dying transport is not an
// error, because the frame replays from the buffer after resume. Send only
// fails once the session is dead, and then terminally.
func (c *Client) Send(m ipc.Message) error {
	c.mu.Lock()
	for !c.dead && len(c.replay) >= c.cfg.ReplaySlots {
		c.cond.Wait()
	}
	if c.dead {
		reason := c.deadErr
		c.mu.Unlock()
		return fmt.Errorf("hqnet: session dead: %s", reason)
	}
	if m.Seq == 0 {
		// Raw (unsealed) mode: the client assigns the stream position, like
		// a local channel backend would. Sealed mode arrives with Seq (and
		// Mac) already bound by ipc.SealSender.
		c.nextSeq++
		m.Seq = c.nextSeq
	} else if m.Seq > c.nextSeq {
		c.nextSeq = m.Seq
	}
	m.PID = c.pid
	c.replay = append(c.replay, m)
	fw := c.fw
	c.mu.Unlock()
	if fw != nil {
		_ = fw.WriteMessage(m)
	}
	return nil
}

// SyscallEnter implements vm.Gate: the gate request crosses the wire, the
// daemon's kernel runs bounded asynchronous validation, and the verdict
// comes back. A transport loss mid-gate is survivable: the request is
// retransmitted after resume and the daemon replays a verdict it already
// computed (gate ordinals make it idempotent).
func (c *Client) SyscallEnter(pid int32, syscallNo int) error {
	c.mu.Lock()
	if c.dead {
		reason := c.deadErr
		c.mu.Unlock()
		return errors.New(reason)
	}
	c.gateOrd++
	ord := c.gateOrd
	ch := make(chan error, 1)
	c.gateCh, c.gateSys = ch, syscallNo
	fw := c.fw
	req := ipc.Message{Op: ipc.OpGateEnter, PID: c.pid, Arg1: uint64(syscallNo), Arg2: ord}
	c.mu.Unlock()
	if fw != nil {
		_ = fw.WriteMessage(req)
	}
	select {
	case err := <-ch:
		return err
	case <-c.ctx.Done():
		return errors.New("hqnet: client closed")
	}
}

// Flush waits until the daemon has acked every admitted frame, the session
// dies, or the timeout lapses. Close calls it so a clean goodbye does not
// race the last data frames.
func (c *Client) Flush(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		flushed := c.acked >= c.nextSeq
		dead := c.dead
		c.mu.Unlock()
		if flushed || dead {
			return flushed
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// Close ends the session cleanly: flush (bounded by one lease), goodbye,
// teardown. Safe to call on a dead session. Implements ipc.Sender's Close.
func (c *Client) Close() error {
	lease := c.lease
	if lease <= 0 {
		lease = time.Second
	}
	c.Flush(lease)
	c.mu.Lock()
	alreadyDead := c.dead
	c.dead = true
	if c.deadErr == "" {
		c.deadErr = "hqnet: client closed"
	}
	conn, fw := c.conn, c.fw
	c.conn, c.fw = nil, nil
	ch := c.gateCh
	c.gateCh = nil
	c.mu.Unlock()
	if !alreadyDead && fw != nil {
		_ = fw.WriteMessage(ipc.Message{Op: ipc.OpGoodbye, PID: c.pid})
	}
	if ch != nil {
		ch <- errors.New("hqnet: client closed")
	}
	c.cond.Broadcast()
	c.cancel()
	if conn != nil {
		conn.Close()
	}
	c.wg.Wait()
	return nil
}

// die marks the session terminally dead: sends fail, a pending gate fails
// (the VM then terminates as killed), Send waiters wake.
func (c *Client) die(reason string) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return
	}
	c.dead = true
	c.deadErr = reason
	conn := c.conn
	c.conn, c.fw = nil, nil
	ch := c.gateCh
	c.gateCh = nil
	c.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	if ch != nil {
		ch <- errors.New(reason)
	}
	c.cond.Broadcast()
}

// heartbeatLoop renews the lease at a quarter of its duration.
func (c *Client) heartbeatLoop() {
	defer c.wg.Done()
	every := c.cfg.HeartbeatEvery
	if every <= 0 {
		every = c.lease / 4
	}
	if every < time.Millisecond {
		every = time.Millisecond
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-t.C:
		}
		c.mu.Lock()
		if c.dead {
			c.mu.Unlock()
			return
		}
		c.hbOrd++
		hb := ipc.Message{Op: ipc.OpHeartbeat, PID: c.pid, Arg1: c.hbOrd}
		fw := c.fw
		c.mu.Unlock()
		if fw != nil {
			_ = fw.WriteMessage(hb)
		}
	}
}

// recvLoop drains one connection generation. When the transport dies it
// hands off to reconnect — unless a newer generation already took over or
// the session is done.
func (c *Client) recvLoop(nc net.Conn, dec *ipc.FrameDecoder, gen uint64) {
	defer c.wg.Done()
	var buf [16]ipc.Message
	for {
		n, ok, _ := dec.Decode(buf[:])
		for i := 0; i < n; i++ {
			c.handle(buf[i])
		}
		if !ok {
			break
		}
	}
	c.reconnect(nc, gen)
}

// handle processes one daemon frame.
func (c *Client) handle(m ipc.Message) {
	switch m.Op {
	case ipc.OpHeartbeatAck, ipc.OpAck:
		c.trim(m.Seq)
	case ipc.OpGateResult:
		c.trim(m.Seq)
		c.mu.Lock()
		if c.gateCh != nil && m.Arg3 == c.gateOrd {
			ch := c.gateCh
			c.gateCh = nil
			var verdict error
			if m.Arg1 == GateKilled {
				reason := ReasonText(m.Arg2)
				c.killed, c.killRsn = true, reason
				verdict = errors.New(reason)
			}
			c.mu.Unlock()
			ch <- verdict
			return
		}
		c.mu.Unlock()
	case ipc.OpKillNotice:
		reason := ReasonText(m.Arg1)
		c.mu.Lock()
		c.killed, c.killRsn = true, reason
		c.mu.Unlock()
		c.die(reason)
	}
}

// trim advances the ack high-water and drops acked frames from the replay
// buffer, waking Send waiters blocked on a full buffer.
func (c *Client) trim(ack uint64) {
	if ack == 0 {
		return
	}
	c.mu.Lock()
	if ack > c.acked {
		c.acked = ack
		i := 0
		for i < len(c.replay) && c.replay[i].Seq <= ack {
			i++
		}
		if i > 0 {
			c.replay = append(c.replay[:0:0], c.replay[i:]...)
		}
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

// reconnect re-establishes the session after generation gen's transport
// died: bounded attempts, full-jitter backoff, cancellable at every sleep.
// On welcome it replays every frame past the daemon's ack (CheckSeq stays
// gap-free) and retransmits a pending gate request. A rejection (stale
// session — the lease beat us to it) or an exhausted budget kills the
// client side terminally.
func (c *Client) reconnect(nc net.Conn, gen uint64) {
	c.mu.Lock()
	if c.dead || c.gen != gen {
		c.mu.Unlock()
		return // session over, or a resume already replaced this transport
	}
	c.conn, c.fw = nil, nil
	c.mu.Unlock()
	nc.Close()

	resume := ipc.Message{Op: ipc.OpResume, PID: c.pid, Arg1: c.token, Arg2: c.cfg.Tenant}
	for attempt := 1; attempt <= c.cfg.ResumeAttempts; attempt++ {
		select {
		case <-c.ctx.Done():
			c.die("hqnet: client closed")
			return
		case <-time.After(resumeBackoff(attempt)):
		}
		nc2, fw2, dec2, welcome, err := c.handshake(resume)
		if err != nil {
			var rej *RejectedError
			if errors.As(err, &rej) {
				c.die(err.Error())
				return
			}
			continue // transient: next rung of the ladder
		}
		c.mu.Lock()
		if c.dead {
			c.mu.Unlock()
			nc2.Close()
			return
		}
		c.gen++
		gen2 := c.gen
		c.conn, c.fw = nc2, fw2
		if welcome.Seq > c.acked {
			c.acked = welcome.Seq
		}
		i := 0
		for i < len(c.replay) && c.replay[i].Seq <= c.acked {
			i++
		}
		replay := append([]ipc.Message(nil), c.replay[i:]...)
		c.replay = append(c.replay[:0:0], c.replay[i:]...)
		c.resumes++
		var gateReq *ipc.Message
		if c.gateCh != nil {
			gateReq = &ipc.Message{Op: ipc.OpGateEnter, PID: c.pid, Arg1: uint64(c.gateSys), Arg2: c.gateOrd}
		}
		c.mu.Unlock()
		for _, m := range replay {
			_ = fw2.WriteMessage(m)
		}
		if gateReq != nil {
			_ = fw2.WriteMessage(*gateReq)
		}
		c.cond.Broadcast()
		c.wg.Add(1)
		go c.recvLoop(nc2, dec2, gen2)
		return
	}
	c.die("hqnet: resume attempts exhausted")
}

var (
	_ ipc.Sender = (*Client)(nil)
	_ vm.Gate    = (*Client)(nil)
)
