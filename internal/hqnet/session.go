package hqnet

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"herqules/internal/ipc"
	"herqules/internal/supervisor"
)

// session is one admitted remote process. It outlives any single connection:
// a severed transport leaves the session intact (awaiting resume) and only
// the lease — or a clean goodbye — ends it. Session end is the single
// teardown path: queue closed, pump drained, forensics frozen, kernel
// context exited, quota released.
type session struct {
	srv    *Server
	token  uint64
	tenant uint64
	pid    int32
	remote *supervisor.Remote
	queue  *sessionQueue
	fin    chan struct{}

	// lastRecv is the lease clock: UnixNano of the last frame received on
	// any of the session's connections. Written by the reader, read by the
	// lease scanner.
	lastRecv atomic.Int64

	mu      sync.Mutex
	conn    net.Conn         // live transport; nil while severed
	fw      *ipc.FrameWriter // writer over conn; nil while severed
	fwd     uint64           // highest data Seq forwarded to the verifier
	resumes uint64
	ended   bool

	// Gate replay state: the client may retransmit a gate request after a
	// resume, and the daemon must neither run the gate twice nor lose a
	// verdict computed while the transport was down.
	gateOrd     uint64
	gateRunning bool
	gateDone    bool
	gateRes     ipc.Message
}

func (s *session) done() <-chan struct{} { return s.fin }

// touch renews the lease clock.
func (s *session) touch() { s.lastRecv.Store(time.Now().UnixNano()) }

// ackSeq reports the cumulative ack: every data frame with Seq <= ackSeq has
// been forwarded to the verifier, so the client may drop it from its replay
// buffer.
func (s *session) ackSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fwd
}

// attach installs a (new) transport, closing any previous one.
func (s *session) attach(c net.Conn, fw *ipc.FrameWriter) {
	s.mu.Lock()
	old := s.conn
	s.conn, s.fw = c, fw
	s.mu.Unlock()
	if old != nil && old != c {
		old.Close()
	}
}

// sever detaches and closes connection c (if it is still the session's live
// transport). The session itself survives: the client may resume within the
// lease, and the lease kills the process otherwise — fail closed either way.
func (s *session) sever(c net.Conn) {
	s.mu.Lock()
	mine := s.conn == c
	if mine {
		s.conn, s.fw = nil, nil
	}
	s.mu.Unlock()
	c.Close()
	if mine {
		count(s.srv.severed)
	}
}

// write sends one frame over the live transport, silently dropping it while
// severed — every frame the daemon emits (acks, gate verdicts) is either
// re-derivable after resume or guarded by retransmission.
func (s *session) write(m ipc.Message) {
	s.mu.Lock()
	fw := s.fw
	s.mu.Unlock()
	if fw != nil {
		_ = fw.WriteMessage(m)
	}
}

// readLoop drains one connection until it dies or the session ends. All
// three stream endings — clean EOF, truncation mid-frame, undecodable
// garbage — are connection deaths, not process deaths: unlike the local fd
// channels (where truncation is a terminal integrity violation) the network
// plane has a resume protocol, so the partial frame is discarded and the
// client retransmits it from the replay buffer. The process only dies if no
// resume arrives within the lease, and then attributably so.
func (s *session) readLoop(c net.Conn, dec *ipc.FrameDecoder) {
	var buf [64]ipc.Message
	for {
		n, ok, _ := dec.Decode(buf[:])
		forwarded := false
		for i := 0; i < n; i++ {
			cont, fwdOne := s.handleFrame(buf[i])
			forwarded = forwarded || fwdOne
			if !cont {
				s.sever(c)
				return
			}
		}
		if forwarded {
			// Cumulative ack per burst: lets the client trim its replay
			// buffer without waiting for the next heartbeat ack.
			s.write(ipc.Message{Op: ipc.OpAck, PID: s.pid, Seq: s.ackSeq()})
		}
		if !ok {
			s.sever(c)
			return
		}
	}
}

// handleFrame processes one frame from the client. cont=false severs the
// connection (protocol violation or session end); forwarded reports whether
// the frame was a data frame handed to the verifier pump.
func (s *session) handleFrame(m ipc.Message) (cont, forwarded bool) {
	s.touch()
	switch m.Op {
	case ipc.OpHeartbeat:
		s.write(ipc.Message{Op: ipc.OpHeartbeatAck, PID: s.pid, Seq: s.ackSeq()})
		return true, false
	case ipc.OpGateEnter:
		s.gate(m.Arg1, m.Arg2)
		return true, false
	case ipc.OpGoodbye:
		s.end()
		return false, false
	}
	if m.Op.IsSessionOp() {
		// A duplicate HELLO (or any daemon-side op arriving from a client)
		// is a protocol violation: sever and let the lease sort the process
		// out. No state changes on a violating frame.
		return false, false
	}
	// Data frame. The session is the authenticity boundary: a frame claiming
	// another process's identity is dropped and the connection severed —
	// otherwise a compromised client could splice violations into a
	// bystander's stream (or burn the bystander with a counter gap).
	if m.PID != s.pid {
		return false, false
	}
	s.mu.Lock()
	if m.Seq != 0 && m.Seq <= s.fwd {
		// Resume retransmission overlap: already forwarded, drop silently.
		// Genuine gaps (Seq jumping past fwd+1) are forwarded as-is — the
		// verifier's CheckSeq owns that judgment, and a client that loses
		// messages *inside* its own stream must die by counter, not be
		// repaired by the transport.
		s.mu.Unlock()
		return true, false
	}
	if m.Seq > s.fwd {
		s.fwd = m.Seq
	}
	s.mu.Unlock()
	if err := s.queue.Send(m); err != nil {
		return false, false // queue closed: session ended under us
	}
	return true, true
}

// gate runs bounded asynchronous validation for one remote system call.
// Idempotent per ordinal: a request retransmitted after a resume neither
// re-runs a gate in flight nor loses a verdict computed while severed.
func (s *session) gate(sysNo, ord uint64) {
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	if ord == s.gateOrd && s.gateRunning {
		s.mu.Unlock()
		return // in flight; verdict will be written when it lands
	}
	if ord == s.gateOrd && s.gateDone {
		res := s.gateRes
		s.mu.Unlock()
		s.write(res) // replay the stored verdict
		return
	}
	s.gateOrd, s.gateRunning, s.gateDone = ord, true, false
	s.mu.Unlock()

	s.srv.wg.Add(1)
	go func() {
		defer s.srv.wg.Done()
		err := s.srv.sys.Kernel().SyscallEnter(s.pid, int(sysNo))
		res := ipc.Message{Op: ipc.OpGateResult, PID: s.pid, Arg1: GatePass, Arg3: ord}
		if err != nil {
			res.Arg1 = GateKilled
			res.Arg2 = reasonCode(err.Error())
		}
		res.Seq = s.ackSeq()
		s.mu.Lock()
		s.gateRunning, s.gateDone, s.gateRes = false, true, res
		s.mu.Unlock()
		s.write(res)
	}()
}

// end finalizes the session exactly once: best-effort kill notice, transport
// closed, queue closed (pump drains what was forwarded), remote finalized
// (freezes the attribution row and forensic report, exits the kernel
// context), quota released. Idempotent; late callers return immediately.
func (s *session) end() {
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	conn, fw := s.conn, s.fw
	s.conn, s.fw = nil, nil
	s.mu.Unlock()

	if conn != nil {
		if killed, reason := s.srv.sys.Kernel().Killed(s.pid); killed && fw != nil {
			_ = fw.WriteMessage(ipc.Message{Op: ipc.OpKillNotice, PID: s.pid, Arg1: reasonCode(reason)})
		}
		conn.Close()
	}
	s.queue.Close()
	s.remote.Close()
	s.srv.removeSession(s)
	close(s.fin)
}
