// Package hqnet is the networked attestation plane: it hosts the resident
// supervisor.System (kernel + sharded verifier) behind TCP and Unix-domain
// listeners so monitored programs on the other end of a real network
// transport — one that can drop, stall, duplicate and lie — attest into the
// same enforcement domain local processes do.
//
// The wire format is the 48-byte AppendWrite frame the fd channels already
// speak (ipc.FrameDecoder / ipc.FrameWriter, partial-frame carry included);
// session control rides in the reserved ipc.Op range (OpHello..OpGoodbye)
// and terminates at the connection layer — control frames never reach the
// verifier's policy chain.
//
// The robustness core is the connection lifecycle, and every edge of it
// fails closed:
//
//   - Admission is a HELLO handshake: version check, tenant quota, global
//     session cap. Refusals are explicit (OpReject) and leave nothing
//     admitted.
//   - Every admitted session holds a heartbeat *lease*. Any frame renews
//     it; a lease that runs out kills the resident process with
//     kernel.ReasonLeaseExpired — a severed transport is never allowed to
//     linger as a silent, unkillable context, and never masquerades as a
//     message-counter gap.
//   - A severed connection does not end the session: the client resumes
//     with its token inside the lease and replays every frame past the
//     daemon's cumulative ack, so the verifier's CheckSeq stream stays
//     gap-free across reconnects.
//   - Protocol violations (duplicate HELLO, forged PID, garbage framing)
//     sever the connection; the lease then disposes of the process unless a
//     legitimate resume arrives first.
package hqnet

import (
	"strings"

	"herqules/internal/kernel"
)

// WireVersion is the protocol revision carried in OpHello.Arg1; the daemon
// rejects clients it cannot serve rather than guessing.
const WireVersion = 1

// Rejection reasons carried in OpReject.Arg1.
const (
	// RejectQuota: the tenant's session quota or the global session cap is
	// exhausted. Admission applies backpressure by refusal, not by queueing
	// unbounded half-open sessions.
	RejectQuota uint64 = iota + 1
	// RejectUnknownSession: a resume named a token the daemon does not hold
	// (expired, finished, or forged).
	RejectUnknownSession
	// RejectDraining: the daemon is shutting down and admits nothing new.
	RejectDraining
	// RejectProtocol: the first frame was not a well-formed HELLO/RESUME.
	RejectProtocol
	// RejectVersion: WireVersion mismatch.
	RejectVersion
)

// rejectNames maps rejection reasons to operator-readable text.
var rejectNames = map[uint64]string{
	RejectQuota:          "admission quota exhausted",
	RejectUnknownSession: "unknown or expired session",
	RejectDraining:       "daemon draining",
	RejectProtocol:       "protocol violation",
	RejectVersion:        "wire version mismatch",
}

// RejectText names a rejection reason.
func RejectText(code uint64) string {
	if s, ok := rejectNames[code]; ok {
		return s
	}
	return "rejected"
}

// OpWelcome.Arg3 flags.
const (
	// WelcomeKeyed: an OpSessionKey frame follows the welcome, carrying the
	// MAC key the kernel programmed for this process. The session is the
	// trusted provisioning path the local plane performs in-memory.
	WelcomeKeyed uint64 = 1 << 0
)

// Gate verdicts carried in OpGateResult.Arg1.
const (
	// GatePass: validation caught up; the system call may proceed.
	GatePass uint64 = iota
	// GateKilled: the process was killed while (or before) gating; Arg2
	// carries the reason code.
	GateKilled
)

// Kill reason codes carried in OpGateResult.Arg2 and OpKillNotice.Arg1. The
// daemon's forensics hold the authoritative reason string; the wire carries
// enough for the client to attribute the kill class.
const (
	ReasonCodeOther uint64 = iota
	ReasonCodeLease
	ReasonCodeEpoch
	ReasonCodeWedged
	ReasonCodeShutdown
)

// reasonCode classifies a kernel kill-reason string for the wire. Contains,
// not HasPrefix: the gate path reports kills through SyscallEnter's error,
// which wraps the reason as "kernel: pid N killed: <reason>", while the kill
// listener passes the reason bare — both must classify identically.
func reasonCode(reason string) uint64 {
	switch {
	case strings.Contains(reason, kernel.ReasonLeaseExpired):
		return ReasonCodeLease
	case strings.Contains(reason, kernel.ReasonWedgedVerifier):
		return ReasonCodeWedged
	case strings.Contains(reason, kernel.ReasonEpochExpired):
		return ReasonCodeEpoch
	case strings.Contains(reason, "shutdown"):
		return ReasonCodeShutdown
	default:
		return ReasonCodeOther
	}
}

// ReasonText reconstructs the client-side kill reason for a wire code. Lease
// and epoch kills round-trip to the kernel's canonical strings so client-side
// attribution matches the daemon's forensics.
func ReasonText(code uint64) string {
	switch code {
	case ReasonCodeLease:
		return kernel.ReasonLeaseExpired
	case ReasonCodeEpoch:
		return kernel.ReasonEpochExpired
	case ReasonCodeWedged:
		return kernel.ReasonWedgedVerifier
	case ReasonCodeShutdown:
		return "hqd: daemon shutdown"
	default:
		return "killed by verifier (see daemon forensics)"
	}
}
