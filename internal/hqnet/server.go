package hqnet

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"herqules/internal/ipc"
	"herqules/internal/kernel"
	"herqules/internal/obs"
	"herqules/internal/supervisor"
	"herqules/internal/telemetry"
)

// Config parameterizes a Server. The zero value (plus a System) is usable:
// 1s leases, 256 sessions, no per-tenant quota, 1024-slot session queues.
type Config struct {
	// Sys is the resident enforcement domain the daemon serves. Required.
	Sys *supervisor.System

	// Lease is how long a session may go without any frame arriving before
	// its process is killed fail-closed (kernel.ReasonLeaseExpired).
	// Clients heartbeat at Lease/4. <= 0 selects 1s.
	Lease time.Duration

	// MaxSessions caps concurrently admitted sessions across all tenants
	// (<= 0 selects 256); admission past the cap is rejected (RejectQuota),
	// never queued.
	MaxSessions int

	// TenantQuota caps concurrently admitted sessions per tenant id. <= 0
	// means no per-tenant cap.
	TenantQuota int

	// QueueSlots bounds each session's reader→pump queue (<= 0 selects
	// 1024). A full queue stops the connection reader: backpressure flows
	// into the transport instead of daemon memory.
	QueueSlots int

	// Metrics, when non-nil, wires connection-plane counters
	// (hqnet.sessions.*, hqnet.lease.expired, hqnet.conn.severed).
	Metrics *telemetry.Metrics
}

// Server hosts sessions over any set of stream listeners. One Server serves
// many listeners (TCP and Unix-domain concurrently); all sessions share the
// one supervisor.System.
type Server struct {
	cfg   Config
	sys   *supervisor.System
	lease time.Duration

	mu        sync.Mutex
	listeners []net.Listener
	sessions  map[uint64]*session // by token; present until ended
	tenants   map[uint64]int      // tenant id -> admitted session count
	draining  bool
	closed    bool

	tokens atomic.Uint64
	wg     sync.WaitGroup // accept loops, session readers, lease scanner
	stop   chan struct{}

	admitted   *telemetry.Counter
	resumed    *telemetry.Counter
	rejected   *telemetry.Counter
	severed    *telemetry.Counter
	leaseKills *telemetry.Counter
}

// NewServer constructs a Server over cfg.Sys and starts its lease scanner.
// Call Serve (or Listen) per listener, and Shutdown to stop.
func NewServer(cfg Config) *Server {
	if cfg.Sys == nil {
		panic("hqnet: Config.Sys is required")
	}
	if cfg.Lease <= 0 {
		cfg.Lease = time.Second
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 256
	}
	s := &Server{
		cfg:      cfg,
		sys:      cfg.Sys,
		lease:    cfg.Lease,
		sessions: make(map[uint64]*session),
		tenants:  make(map[uint64]int),
		stop:     make(chan struct{}),
	}
	s.tokens.Store(uint64(time.Now().UnixNano()))
	if m := cfg.Metrics; m != nil {
		s.admitted = m.Counter("hqnet.sessions.admitted")
		s.resumed = m.Counter("hqnet.sessions.resumed")
		s.rejected = m.Counter("hqnet.sessions.rejected")
		s.severed = m.Counter("hqnet.conn.severed")
		s.leaseKills = m.Counter("hqnet.lease.expired")
	}
	s.wg.Add(1)
	go s.leaseScanner()
	return s
}

func count(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

// nextToken returns a fresh session token. Tokens gate resume, so they must
// be unguessable in deployment terms; the splitmix64 stream over a
// time-seeded counter models that without pulling in a CSPRNG this research
// harness does not need.
func (s *Server) nextToken() uint64 {
	x := s.tokens.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// Listen opens a listener on network/addr ("tcp", "127.0.0.1:9411" or
// "unix", "/run/hqd.sock") and serves it in the background.
func (s *Server) Listen(network, addr string) (net.Listener, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	s.Serve(ln)
	return ln, nil
}

// Serve adopts ln: accepted connections are served in the background until
// Shutdown closes the listener. Serve itself returns immediately.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return
	}
	s.listeners = append(s.listeners, ln)
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return // listener closed by Shutdown
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveConn(c)
			}()
		}
	}()
}

// handshakeTimeout bounds how long a fresh connection may sit without a
// well-formed HELLO/RESUME before it is dropped: pre-admission sockets must
// not be an unbounded resource.
const handshakeTimeout = 5 * time.Second

// serveConn runs one connection: handshake, then the session read loop. A
// connection that fails the handshake is closed with nothing admitted.
func (s *Server) serveConn(c net.Conn) {
	_ = c.SetReadDeadline(time.Now().Add(handshakeTimeout))
	dec := ipc.NewFrameDecoder(c)
	var first [1]ipc.Message
	n, _, err := dec.Decode(first[:])
	if n != 1 || err != nil {
		c.Close()
		return
	}
	_ = c.SetReadDeadline(time.Time{})
	fw := ipc.NewFrameWriter(c)

	switch first[0].Op {
	case ipc.OpHello:
		s.admit(c, fw, dec, first[0])
	case ipc.OpResume:
		s.resume(c, fw, dec, first[0])
	default:
		// Not a handshake: no session exists, so refusal costs nothing and
		// kills nothing.
		_ = fw.WriteMessage(ipc.Message{Op: ipc.OpReject, Arg1: RejectProtocol})
		c.Close()
	}
}

// reject refuses a handshake and closes the connection.
func (s *Server) reject(c net.Conn, fw *ipc.FrameWriter, code uint64) {
	count(s.rejected)
	_ = fw.WriteMessage(ipc.Message{Op: ipc.OpReject, Arg1: code})
	c.Close()
}

// admit serves an OpHello: quota and version checks, kernel registration via
// supervisor.Admit, key delivery under an authenticated policy set, then the
// session read loop on this connection.
func (s *Server) admit(c net.Conn, fw *ipc.FrameWriter, dec *ipc.FrameDecoder, hello ipc.Message) {
	if hello.Arg1 != WireVersion {
		s.reject(c, fw, RejectVersion)
		return
	}
	tenant := hello.Arg2

	s.mu.Lock()
	if s.draining || s.closed {
		s.mu.Unlock()
		s.reject(c, fw, RejectDraining)
		return
	}
	if len(s.sessions) >= s.cfg.MaxSessions ||
		(s.cfg.TenantQuota > 0 && s.tenants[tenant] >= s.cfg.TenantQuota) {
		s.mu.Unlock()
		s.reject(c, fw, RejectQuota)
		return
	}
	// Reserve the quota slot before the (lock-free) kernel registration so
	// concurrent HELLOs cannot overshoot the cap.
	s.tenants[tenant]++
	s.mu.Unlock()

	queue := newSessionQueue(s.cfg.QueueSlots)
	remote, err := s.sys.Admit(queue)
	if err != nil {
		s.mu.Lock()
		s.tenants[tenant]--
		s.mu.Unlock()
		s.reject(c, fw, RejectDraining)
		return
	}

	sess := &session{
		srv:    s,
		token:  s.nextToken(),
		tenant: tenant,
		pid:    remote.PID(),
		remote: remote,
		queue:  queue,
		fin:    make(chan struct{}),
	}
	sess.lastRecv.Store(time.Now().UnixNano())
	s.mu.Lock()
	if s.draining || s.closed {
		// Shutdown raced the admission: unwind completely.
		s.tenants[tenant]--
		s.mu.Unlock()
		queue.Close()
		remote.Close()
		s.reject(c, fw, RejectDraining)
		return
	}
	s.sessions[sess.token] = sess
	s.mu.Unlock()
	count(s.admitted)

	welcome := ipc.Message{
		Op:   ipc.OpWelcome,
		PID:  sess.pid,
		Arg1: sess.token,
		Arg2: uint64(s.lease),
	}
	key, keyed := remote.Key()
	if keyed {
		welcome.Arg3 |= WelcomeKeyed
	}
	s.sys.Verifier().StampFlightEvent(sess.pid, telemetry.FlightLeaseGranted, uint64(s.lease))
	if err := fw.WriteMessage(welcome); err != nil {
		sess.sever(c)
		return
	}
	if keyed {
		// The session is the kernel→process key provisioning path the local
		// plane performs in-memory (policy.Keyring.Program at Register).
		if err := fw.WriteMessage(ipc.Message{Op: ipc.OpSessionKey, PID: sess.pid, Arg1: key.K0, Arg2: key.K1}); err != nil {
			sess.sever(c)
			return
		}
	}
	sess.attach(c, fw)
	sess.readLoop(c, dec)
}

// resume serves an OpResume: token lookup, then welcome-with-ack so the
// client replays exactly the frames the daemon never forwarded.
func (s *Server) resume(c net.Conn, fw *ipc.FrameWriter, dec *ipc.FrameDecoder, req ipc.Message) {
	s.mu.Lock()
	sess := s.sessions[req.Arg1]
	s.mu.Unlock()
	if sess == nil || sess.pid != req.PID {
		// Stale or forged: nothing resumes. If the token once named a live
		// session, that session's lease is still ticking and will dispose
		// of its process.
		s.reject(c, fw, RejectUnknownSession)
		return
	}
	sess.mu.Lock()
	if sess.ended {
		sess.mu.Unlock()
		s.reject(c, fw, RejectUnknownSession)
		return
	}
	fwd := sess.fwd
	sess.resumes++
	resumes := sess.resumes
	sess.mu.Unlock()

	count(s.resumed)
	sess.touch()
	s.sys.Verifier().StampFlightEvent(sess.pid, telemetry.FlightLeaseRenewed, resumes)
	welcome := ipc.Message{
		Op:   ipc.OpWelcome,
		PID:  sess.pid,
		Arg1: sess.token,
		Arg2: uint64(s.lease),
		Seq:  fwd, // cumulative ack: replay starts at fwd+1
	}
	if err := fw.WriteMessage(welcome); err != nil {
		c.Close()
		return
	}
	sess.attach(c, fw)
	sess.readLoop(c, dec)
}

// leaseScanner kills processes whose sessions have gone silent past the
// lease. It is the only place a connection-plane failure becomes a kill, so
// every death it deals is attributable: reason kernel.ReasonLeaseExpired,
// FlightLeaseExpired stamped with the overshoot.
func (s *Server) leaseScanner() {
	defer s.wg.Done()
	tick := s.lease / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		now := time.Now().UnixNano()
		s.mu.Lock()
		var expired []*session
		for _, sess := range s.sessions {
			if now-sess.lastRecv.Load() > int64(s.lease) {
				expired = append(expired, sess)
			}
		}
		s.mu.Unlock()
		for _, sess := range expired {
			overdue := time.Duration(now - sess.lastRecv.Load() - int64(s.lease))
			s.expireLease(sess, overdue)
		}
	}
}

// expireLease kills sess's process fail-closed and ends the session.
func (s *Server) expireLease(sess *session, overdue time.Duration) {
	sess.mu.Lock()
	if sess.ended {
		sess.mu.Unlock()
		return
	}
	sess.mu.Unlock()
	count(s.leaseKills)
	s.sys.Verifier().StampFlightEvent(sess.pid, telemetry.FlightLeaseExpired, uint64(overdue))
	s.sys.Kernel().Kill(sess.pid, kernel.ReasonLeaseExpired)
	sess.end()
}

// Shutdown drains the daemon: listeners close (no new connections),
// admission flips to rejecting, and existing sessions get until ctx's
// deadline to finish (OpGoodbye or lease expiry). Sessions still alive at
// the deadline are ended; the underlying System is then shut down, which
// flushes every shard and freezes outstanding forensics.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.draining = true
	s.closed = true
	lns := s.listeners
	s.listeners = nil
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}

	// Grace: wait for sessions to end on their own terms, but reserve a
	// slice of the ctx budget for the System shutdown behind us — a client
	// that keeps heartbeating through the drain must not consume the whole
	// deadline and leave the verifier flush with an already-expired context.
	deadline, hasDeadline := ctx.Deadline()
	if hasDeadline {
		margin := time.Until(deadline) / 5
		if margin < 250*time.Millisecond {
			margin = 250 * time.Millisecond
		}
		deadline = deadline.Add(-margin)
	}
	for _, sess := range sessions {
		if !hasDeadline {
			<-sess.done()
			continue
		}
		select {
		case <-sess.done():
		case <-time.After(time.Until(deadline)):
		}
	}
	// Force whatever remains. end() is idempotent.
	for _, sess := range sessions {
		sess.end()
	}
	close(s.stop)
	s.wg.Wait()
	return s.sys.Shutdown(ctx)
}

// removeSession drops an ended session from the tables.
func (s *Server) removeSession(sess *session) {
	s.mu.Lock()
	if _, ok := s.sessions[sess.token]; ok {
		delete(s.sessions, sess.token)
		if s.tenants[sess.tenant] > 0 {
			s.tenants[sess.tenant]--
		}
	}
	s.mu.Unlock()
}

// Sessions reports the number of live sessions.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Conns implements obs.ConnReporter: one row per live session for the
// /metrics per-connection gauges and the /conns listing.
func (s *Server) Conns() []obs.ConnRow {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	rows := make([]obs.ConnRow, 0, len(sessions))
	for _, sess := range sessions {
		sess.mu.Lock()
		row := obs.ConnRow{
			PID:               sess.pid,
			Tenant:            sess.tenant,
			Connected:         sess.conn != nil,
			Resumes:           sess.resumes,
			ForwardedSeq:      sess.fwd,
			LastRecvUnixNanos: sess.lastRecv.Load(),
			QueueDepth:        sess.queue.Pending(),
			LeaseNanos:        int64(s.lease),
		}
		sess.mu.Unlock()
		rows = append(rows, row)
	}
	return rows
}

var _ obs.ConnReporter = (*Server)(nil)

// Stats/Health/Forensics passthroughs so a Server can stand directly behind
// obs.NewServer as the obs.System.
func (s *Server) Stats() supervisor.Stats                               { return s.sys.Stats() }
func (s *Server) Health() supervisor.Health                             { return s.sys.Health() }
func (s *Server) Forensics(pid int32) (supervisor.ForensicReport, bool) { return s.sys.Forensics(pid) }
func (s *Server) AllForensics() []supervisor.ForensicReport             { return s.sys.AllForensics() }

var _ obs.System = (*Server)(nil)

// String summarizes the server state for logs.
func (s *Server) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("hqnet.Server{sessions=%d draining=%t}", len(s.sessions), s.draining)
}
