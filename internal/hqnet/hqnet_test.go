package hqnet

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"herqules/internal/ipc"
	"herqules/internal/kernel"
	"herqules/internal/policy"
	"herqules/internal/supervisor"
	"herqules/internal/telemetry"
)

// harness is one daemon instance under test: a real supervisor.System behind
// a real TCP listener.
type harness struct {
	sys  *supervisor.System
	srv  *Server
	addr string
}

func newHarness(t *testing.T, scfg supervisor.Config, cfg Config) *harness {
	t.Helper()
	sys := supervisor.New(scfg)
	cfg.Sys = sys
	srv := NewServer(cfg)
	ln, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return &harness{sys: sys, srv: srv, addr: ln.Addr().String()}
}

func (h *harness) dial(t *testing.T, cfg ClientConfig) *Client {
	t.Helper()
	cfg.Network, cfg.Addr = "tcp", h.addr
	c, err := Dial(context.Background(), cfg)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	return c
}

// killReason reports whether pid was killed, surviving finalization: the
// live kernel context answers while the process is registered, and the
// frozen supervisor attribution row answers after Exit tore it down.
func (h *harness) killReason(pid int32) (bool, string) {
	if killed, reason := h.sys.Kernel().Killed(pid); killed {
		return true, reason
	}
	for _, p := range h.sys.Stats().Procs {
		if p.PID == pid && p.KillReason != "" {
			return true, p.KillReason
		}
	}
	return false, ""
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSessionRoundTrip drives a clean process end to end over TCP: admission,
// a monitored message stream, a gated system call that passes, and a clean
// goodbye that finalizes (not kills) the resident process.
func TestSessionRoundTrip(t *testing.T) {
	h := newHarness(t,
		supervisor.Config{CheckSeq: true, KillOnViolation: true, Shards: 2},
		Config{Lease: 2 * time.Second})
	c := h.dial(t, ClientConfig{Tenant: 7})
	if c.PID() <= 0 {
		t.Fatalf("PID = %d, want > 0", c.PID())
	}
	if c.Lease() != 2*time.Second {
		t.Fatalf("lease = %v, want 2s", c.Lease())
	}

	sender := c.Sender()
	const n = 100
	for i := 0; i < n; i++ {
		if err := sender.Send(ipc.Message{Op: ipc.OpCounterInc, Arg1: 1}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := sender.Send(ipc.Message{Op: ipc.OpSyscall, Arg1: 42}); err != nil {
		t.Fatalf("send syscall: %v", err)
	}
	if err := c.SyscallEnter(c.PID(), 42); err != nil {
		t.Fatalf("gate: %v (want pass)", err)
	}
	if killed, reason := c.Killed(); killed {
		t.Fatalf("clean client reported killed: %s", reason)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	waitFor(t, 5*time.Second, "session end", func() bool { return h.srv.Sessions() == 0 })
	st := h.sys.Stats()
	if st.Killed != 0 {
		t.Fatalf("killed = %d, want 0", st.Killed)
	}
	if st.Finished != 1 {
		t.Fatalf("finished = %d, want 1", st.Finished)
	}
	if st.MessagesVerified < n+1 {
		t.Fatalf("messages verified = %d, want >= %d", st.MessagesVerified, n+1)
	}
}

// TestKeyedSessionSealsOverWire runs the hmac policy set over the network:
// the daemon delivers the kernel-programmed MAC key during the handshake and
// the client's Sender() seals every frame, so the verifier authenticates a
// stream that really crossed an untrusted transport.
func TestKeyedSessionSealsOverWire(t *testing.T) {
	factory, err := policy.SetFactory("hmac", "counter")
	if err != nil {
		t.Fatal(err)
	}
	h := newHarness(t,
		supervisor.Config{Policies: factory, KillOnViolation: true, Shards: 2},
		Config{Lease: 2 * time.Second})
	c := h.dial(t, ClientConfig{})
	if !c.keyed {
		t.Fatal("client not keyed under an hmac policy set")
	}

	sender := c.Sender() // ipc.SealSender over the session
	for i := 0; i < 64; i++ {
		if err := sender.Send(ipc.Message{Op: ipc.OpCounterInc, Arg1: 1}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	if err := sender.Send(ipc.Message{Op: ipc.OpSyscall, Arg1: 1}); err != nil {
		t.Fatalf("send syscall: %v", err)
	}
	if err := c.SyscallEnter(c.PID(), 1); err != nil {
		t.Fatalf("gate under hmac: %v (want pass)", err)
	}
	c.Close()
	waitFor(t, 5*time.Second, "session end", func() bool { return h.srv.Sessions() == 0 })
	if st := h.sys.Stats(); st.Killed != 0 {
		t.Fatalf("killed = %d, want 0 (sealed stream must authenticate)", st.Killed)
	}
}

// TestViolatorKilledAtGate sends a sequence-gapped stream (the counter
// policy's violation) and asserts the gate reports the kill to the remote
// client — the fail-closed path for a genuinely misbehaving process.
func TestViolatorKilledAtGate(t *testing.T) {
	h := newHarness(t,
		supervisor.Config{CheckSeq: true, KillOnViolation: true, Shards: 2},
		Config{Lease: 2 * time.Second})
	c := h.dial(t, ClientConfig{})

	if err := c.Send(ipc.Message{Op: ipc.OpCounterInc, Arg1: 1}); err != nil {
		t.Fatal(err)
	}
	// Explicit Seq far past the stream position: a genuine gap the daemon
	// must forward (not repair) so the verifier's counter check judges it.
	if err := c.Send(ipc.Message{Op: ipc.OpCounterInc, Arg1: 1, Seq: 50}); err != nil {
		t.Fatal(err)
	}
	err := c.SyscallEnter(c.PID(), 9)
	if err == nil {
		t.Fatal("gate passed for a sequence-gapped stream")
	}
	waitFor(t, 5*time.Second, "kill visibility", func() bool {
		killed, _ := h.killReason(c.PID())
		return killed
	})
	if killed, _ := c.Killed(); !killed {
		t.Fatal("client Killed() = false after a killed gate verdict")
	}
	c.Close()
}

// TestLeaseExpiryKillsFailClosed goes silent past the lease: the daemon must
// kill the resident process with exactly kernel.ReasonLeaseExpired and notify
// the (still connected, just silent) client.
func TestLeaseExpiryKillsFailClosed(t *testing.T) {
	m := telemetry.New(0)
	h := newHarness(t,
		supervisor.Config{Metrics: m, FlightRecorder: 64, KillOnViolation: true},
		Config{Lease: 50 * time.Millisecond, Metrics: m})
	c := h.dial(t, ClientConfig{HeartbeatEvery: time.Hour}) // never renew
	defer c.Close()

	waitFor(t, 5*time.Second, "lease kill", func() bool {
		killed, _ := h.killReason(c.PID())
		return killed
	})
	if _, reason := h.killReason(c.PID()); reason != kernel.ReasonLeaseExpired {
		t.Fatalf("kill reason = %q, want %q", reason, kernel.ReasonLeaseExpired)
	}
	// The kill notice reaches the client over the still-open transport.
	waitFor(t, 5*time.Second, "kill notice", func() bool {
		killed, _ := c.Killed()
		return killed
	})
	if _, reason := c.Killed(); reason != kernel.ReasonLeaseExpired {
		t.Fatalf("client kill reason = %q, want %q", reason, kernel.ReasonLeaseExpired)
	}
	// The death is attributable in forensics: lease, not counter gap.
	waitFor(t, 5*time.Second, "forensic report", func() bool {
		rep, ok := h.sys.Forensics(c.PID())
		return ok && rep.KillReason == kernel.ReasonLeaseExpired
	})
}

// TestResumeReplaysGapFree severs the transport mid-stream and asserts the
// session survives: the client resumes, replays from the daemon's ack, and
// the verifier — running strict sequence checking — sees a gap-free stream.
func TestResumeReplaysGapFree(t *testing.T) {
	var mu sync.Mutex
	var conns []net.Conn
	h := newHarness(t,
		supervisor.Config{CheckSeq: true, KillOnViolation: true, Shards: 2},
		Config{Lease: 5 * time.Second})
	c := h.dial(t, ClientConfig{
		WrapConn: func(nc net.Conn) net.Conn {
			mu.Lock()
			conns = append(conns, nc)
			mu.Unlock()
			return nc
		},
	})

	for i := 0; i < 50; i++ {
		if err := c.Send(ipc.Message{Op: ipc.OpCounterInc, Arg1: 1}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	// Sever the first transport out from under the client, acks pending.
	mu.Lock()
	conns[0].Close()
	mu.Unlock()

	for i := 0; i < 50; i++ {
		if err := c.Send(ipc.Message{Op: ipc.OpCounterInc, Arg1: 1}); err != nil {
			t.Fatalf("send after sever: %v", err)
		}
	}
	if err := c.Send(ipc.Message{Op: ipc.OpSyscall, Arg1: 3}); err != nil {
		t.Fatal(err)
	}
	if err := c.SyscallEnter(c.PID(), 3); err != nil {
		t.Fatalf("gate after resume: %v (a severed clean proc must not die by counter gap)", err)
	}
	if got := c.Resumes(); got < 1 {
		t.Fatalf("resumes = %d, want >= 1", got)
	}
	if killed, reason := h.sys.Kernel().Killed(c.PID()); killed {
		t.Fatalf("clean severed proc killed: %s", reason)
	}
	c.Close()
	waitFor(t, 5*time.Second, "session end", func() bool { return h.srv.Sessions() == 0 })
	if st := h.sys.Stats(); st.Killed != 0 {
		t.Fatalf("killed = %d, want 0", st.Killed)
	}
}

// TestAdmissionQuotas exercises both caps: global MaxSessions and the
// per-tenant quota. Over-cap admission is rejected, never queued.
func TestAdmissionQuotas(t *testing.T) {
	h := newHarness(t,
		supervisor.Config{},
		Config{Lease: 2 * time.Second, MaxSessions: 2, TenantQuota: 1})

	c1 := h.dial(t, ClientConfig{Tenant: 1})
	defer c1.Close()

	// Same tenant again: per-tenant quota.
	_, err := Dial(context.Background(), ClientConfig{Network: "tcp", Addr: h.addr, Tenant: 1})
	var rej *RejectedError
	if !errors.As(err, &rej) || rej.Code != RejectQuota {
		t.Fatalf("second tenant-1 dial: err = %v, want RejectQuota", err)
	}

	c2 := h.dial(t, ClientConfig{Tenant: 2})
	defer c2.Close()

	// Third session: global cap.
	_, err = Dial(context.Background(), ClientConfig{Network: "tcp", Addr: h.addr, Tenant: 3})
	if !errors.As(err, &rej) || rej.Code != RejectQuota {
		t.Fatalf("third dial: err = %v, want RejectQuota", err)
	}

	// Quota slots release with the session.
	c1.Close()
	waitFor(t, 5*time.Second, "slot release", func() bool { return h.srv.Sessions() == 1 })
	c3 := h.dial(t, ClientConfig{Tenant: 3})
	c3.Close()
}

// TestStaleResumeRejected forges a resume token: the daemon must reject it
// without touching any live session.
func TestStaleResumeRejected(t *testing.T) {
	h := newHarness(t, supervisor.Config{}, Config{Lease: 2 * time.Second})
	live := h.dial(t, ClientConfig{})
	defer live.Close()

	nc, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	fw := ipc.NewFrameWriter(nc)
	if err := fw.WriteMessage(ipc.Message{Op: ipc.OpResume, PID: live.PID(), Arg1: 0xdeadbeef}); err != nil {
		t.Fatal(err)
	}
	dec := ipc.NewFrameDecoder(nc)
	var one [1]ipc.Message
	n, _, _ := dec.Decode(one[:])
	if n != 1 || one[0].Op != ipc.OpReject || one[0].Arg1 != RejectUnknownSession {
		t.Fatalf("forged resume: got %+v, want OpReject/RejectUnknownSession", one[0])
	}
	// The live session is untouched.
	if h.srv.Sessions() != 1 {
		t.Fatalf("sessions = %d after forged resume, want 1", h.srv.Sessions())
	}
	if killed, _ := h.sys.Kernel().Killed(live.PID()); killed {
		t.Fatal("live proc killed by a forged resume")
	}
}

// TestDuplicateHelloSeversThenLeaseKills sends a second HELLO on an admitted
// connection: a protocol violation. The daemon severs the transport (no state
// change) and the lease — not the violation itself — disposes of the process,
// attributably.
func TestDuplicateHelloSeversThenLeaseKills(t *testing.T) {
	h := newHarness(t, supervisor.Config{KillOnViolation: true}, Config{Lease: 60 * time.Millisecond})

	nc, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	fw := ipc.NewFrameWriter(nc)
	if err := fw.WriteMessage(ipc.Message{Op: ipc.OpHello, Arg1: WireVersion}); err != nil {
		t.Fatal(err)
	}
	dec := ipc.NewFrameDecoder(nc)
	var one [1]ipc.Message
	n, _, _ := dec.Decode(one[:])
	if n != 1 || one[0].Op != ipc.OpWelcome {
		t.Fatalf("handshake: got %+v, want OpWelcome", one[0])
	}
	pid := one[0].PID

	// Duplicate HELLO: the daemon severs.
	if err := fw.WriteMessage(ipc.Message{Op: ipc.OpHello, Arg1: WireVersion}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "sever", func() bool {
		_ = nc.SetReadDeadline(time.Now().Add(10 * time.Millisecond))
		buf := make([]byte, 1)
		_, err := nc.Read(buf)
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return false
		}
		return err != nil
	})

	// No resume arrives, so the lease kills — with the lease reason, not a
	// protocol or counter one.
	waitFor(t, 5*time.Second, "lease kill", func() bool {
		killed, _ := h.killReason(pid)
		return killed
	})
	if _, reason := h.killReason(pid); reason != kernel.ReasonLeaseExpired {
		t.Fatalf("kill reason = %q, want %q", reason, kernel.ReasonLeaseExpired)
	}
	waitFor(t, 5*time.Second, "session disposal", func() bool { return h.srv.Sessions() == 0 })
}

// TestPIDForgerySevers splices a data frame claiming another PID into an
// admitted session: the daemon must sever without forwarding it.
func TestPIDForgerySevers(t *testing.T) {
	h := newHarness(t,
		supervisor.Config{CheckSeq: true, KillOnViolation: true},
		Config{Lease: 2 * time.Second})
	victim := h.dial(t, ClientConfig{})
	defer victim.Close()
	attacker := h.dial(t, ClientConfig{})
	defer attacker.Close()

	// The attacker forges the victim's PID on its own session. Client.Send
	// would stamp the attacker's PID, so drive the wire directly.
	if err := attacker.Send(ipc.Message{Op: ipc.OpCounterInc, Arg1: 1}); err != nil {
		t.Fatal(err)
	}
	attacker.mu.Lock()
	fw := attacker.fw
	attacker.mu.Unlock()
	forged := ipc.Message{Op: ipc.OpCounterInc, PID: victim.PID(), Seq: 99, Arg1: 1}
	if err := fw.WriteMessage(forged); err != nil {
		t.Fatal(err)
	}

	// The forgery severs the attacker's connection; the victim's stream is
	// untouched — it can still pass a gate.
	if err := victim.Send(ipc.Message{Op: ipc.OpSyscall, Arg1: 5}); err != nil {
		t.Fatal(err)
	}
	if err := victim.SyscallEnter(victim.PID(), 5); err != nil {
		t.Fatalf("victim gate: %v (forged frame must not poison the victim)", err)
	}
	if killed, reason := h.sys.Kernel().Killed(victim.PID()); killed {
		t.Fatalf("victim killed by spliced frame: %s", reason)
	}
}

// TestShutdownDrainsAndRejects: SIGTERM semantics. In-flight sessions get the
// grace window; new admissions are refused while draining; Shutdown leaves
// the underlying System finalized.
func TestShutdownDrains(t *testing.T) {
	h := newHarness(t, supervisor.Config{}, Config{Lease: 500 * time.Millisecond})
	c := h.dial(t, ClientConfig{})
	if err := c.Send(ipc.Message{Op: ipc.OpCounterInc, Arg1: 1}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		done <- h.srv.Shutdown(ctx)
	}()
	// Give the drain a moment to close the listener, then end cleanly.
	waitFor(t, 5*time.Second, "listener closed", func() bool {
		nc, err := net.Dial("tcp", h.addr)
		if err != nil {
			return true
		}
		nc.Close()
		return false
	})
	c.Close()
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if st := h.sys.Stats(); st.Finished != 1 || st.Killed != 0 {
		t.Fatalf("finished=%d killed=%d after drain, want 1/0", st.Finished, st.Killed)
	}
}

// TestConnsReporting: the obs.ConnReporter rows carry the per-session gauges.
func TestConnsReporting(t *testing.T) {
	h := newHarness(t, supervisor.Config{CheckSeq: true}, Config{Lease: 2 * time.Second})
	c := h.dial(t, ClientConfig{Tenant: 9})
	defer c.Close()
	for i := 0; i < 10; i++ {
		if err := c.Send(ipc.Message{Op: ipc.OpCounterInc, Arg1: 1}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "forwarded seq", func() bool {
		rows := h.srv.Conns()
		return len(rows) == 1 && rows[0].ForwardedSeq >= 10
	})
	row := h.srv.Conns()[0]
	if row.PID != c.PID() || row.Tenant != 9 || !row.Connected {
		t.Fatalf("row = %+v, want pid=%d tenant=9 connected", row, c.PID())
	}
	if row.LeaseNanos != int64(2*time.Second) {
		t.Fatalf("lease nanos = %d, want %d", row.LeaseNanos, int64(2*time.Second))
	}
}

// TestReasonCodeClassifiesWrappedAndBare: kills reach the wire through two
// shapes — the kill listener's bare reason string, and SyscallEnter's error,
// which wraps it as "kernel: pid N killed: <reason>". Both must classify to
// the same wire code, and the wedged reason (a superstring of the epoch
// reason) must not degrade to the epoch code.
func TestReasonCodeClassifiesWrappedAndBare(t *testing.T) {
	cases := []struct {
		reason string
		want   uint64
	}{
		{kernel.ReasonLeaseExpired, ReasonCodeLease},
		{"kernel: pid 7 killed: " + kernel.ReasonLeaseExpired, ReasonCodeLease},
		{kernel.ReasonEpochExpired, ReasonCodeEpoch},
		{"kernel: pid 7 killed: " + kernel.ReasonEpochExpired, ReasonCodeEpoch},
		{kernel.ReasonWedgedVerifier, ReasonCodeWedged},
		{"kernel: pid 7 killed: " + kernel.ReasonWedgedVerifier + ": shard 2", ReasonCodeWedged},
		{"hqd: daemon shutdown", ReasonCodeShutdown},
		{"cfi: pointer check failed", ReasonCodeOther},
	}
	for _, tc := range cases {
		if got := reasonCode(tc.reason); got != tc.want {
			t.Errorf("reasonCode(%q) = %d, want %d", tc.reason, got, tc.want)
		}
	}
}
