package policy

import (
	"fmt"
	"sort"

	"herqules/internal/ipc"
)

// maxTombstones bounds the dead-region history Temporal keeps for
// use-after-free attribution. Past the cap the oldest generations are
// evicted; a UAF against an evicted region then reports as an access outside
// any known allocation rather than by generation, but memory stays bounded
// for arbitrarily long-running processes.
const maxTombstones = 4096

// Temporal is the temporal half of the §4.2 memory-safety sketch: instead of
// only tracking which intervals are live (MemSafety), it remembers *freed*
// allocations as dead generations. An access landing in a dead region is a
// use-after-free; a destroy of a dead region is a double free — each
// attributed to the allocation generation it hit. The two policies are
// complementary: MemSafety answers "is this address inside something live?",
// Temporal answers "is this address inside something that used to be live?",
// which is the difference between flagging an out-of-bounds access and
// proving a dangling pointer.
type Temporal struct {
	Hooks
	// regions is sorted by base and non-overlapping; both live and dead
	// (tombstoned) allocations live here so one binary search answers both
	// questions.
	regions []tregion
	// gen numbers allocations in creation order; violation reasons cite it.
	gen        uint64
	live       int
	maxEntries int
}

type tregion struct {
	base, size uint64
	gen        uint64
	dead       bool
}

// NewTemporal creates an empty temporal-safety context.
func NewTemporal() *Temporal {
	return &Temporal{}
}

// Name implements Policy.
func (t *Temporal) Name() string { return "temporal" }

// Entries implements Policy, counting live allocations (tombstones are
// bookkeeping, not program state).
func (t *Temporal) Entries() int { return t.live }

// MaxEntries reports the high-water mark of live allocations.
func (t *Temporal) MaxEntries() int { return t.maxEntries }

// Clone implements Policy.
func (t *Temporal) Clone() Policy {
	n := NewTemporal()
	n.regions = append([]tregion(nil), t.regions...)
	n.gen = t.gen
	n.live = t.live
	n.maxEntries = t.maxEntries
	return n
}

// Handle implements Policy over the §4.2 allocation message set.
func (t *Temporal) Handle(m ipc.Message) *Violation {
	switch m.Op {
	case ipc.OpAllocCreate:
		return t.create(m, m.Arg1, m.Arg2)
	case ipc.OpAllocCheck:
		return t.check(m, m.Arg1)
	case ipc.OpAllocCheckBase:
		if v := t.check(m, m.Arg1); v != nil {
			return v
		}
		return t.check(m, m.Arg2)
	case ipc.OpAllocExtend:
		if v := t.destroy(m, m.Arg1); v != nil {
			return v
		}
		return t.create(m, m.Arg2, m.Arg3)
	case ipc.OpAllocDestroy:
		return t.destroy(m, m.Arg1)
	case ipc.OpAllocDestroyAll:
		return t.destroyAll(m, m.Arg1, m.Arg2)
	}
	return nil
}

// find returns the index of the region containing addr, live or dead.
func (t *Temporal) find(addr uint64) (int, bool) {
	i := sort.Search(len(t.regions), func(i int) bool {
		return t.regions[i].base+t.regions[i].size > addr
	})
	if i < len(t.regions) && t.regions[i].base <= addr {
		return i, true
	}
	return 0, false
}

func (t *Temporal) create(m ipc.Message, base, size uint64) *Violation {
	if size == 0 {
		size = 1
	}
	// The allocator reusing freed address space is normal: evict any dead
	// regions the new allocation overlaps. Overlapping a *live* region is a
	// runtime-integrity violation (a corrupted allocator or forged message).
	i := sort.Search(len(t.regions), func(i int) bool {
		return t.regions[i].base+t.regions[i].size > base
	})
	for i < len(t.regions) && t.regions[i].base < base+size {
		if !t.regions[i].dead {
			return &Violation{PID: m.PID, Op: m.Op, Addr: base, Value: size,
				Reason: fmt.Sprintf("allocation overlaps live generation #%d", t.regions[i].gen)}
		}
		t.regions = append(t.regions[:i], t.regions[i+1:]...)
	}
	t.gen++
	t.regions = append(t.regions, tregion{})
	copy(t.regions[i+1:], t.regions[i:])
	t.regions[i] = tregion{base: base, size: size, gen: t.gen}
	t.live++
	if t.live > t.maxEntries {
		t.maxEntries = t.live
	}
	t.evictTombstones()
	return nil
}

func (t *Temporal) check(m ipc.Message, addr uint64) *Violation {
	i, ok := t.find(addr)
	if !ok {
		// Purely temporal: an address outside every known generation is the
		// spatial policy's problem (MemSafety), not ours.
		return nil
	}
	if t.regions[i].dead {
		return &Violation{PID: m.PID, Op: m.Op, Addr: addr,
			Reason: fmt.Sprintf("use-after-free: access inside freed generation #%d", t.regions[i].gen)}
	}
	return nil
}

func (t *Temporal) destroy(m ipc.Message, base uint64) *Violation {
	i, ok := t.find(base)
	if !ok || t.regions[i].base != base {
		return &Violation{PID: m.PID, Op: m.Op, Addr: base,
			Reason: "free of unknown allocation: invalid free"}
	}
	if t.regions[i].dead {
		return &Violation{PID: m.PID, Op: m.Op, Addr: base,
			Reason: fmt.Sprintf("double free: generation #%d already freed", t.regions[i].gen)}
	}
	t.regions[i].dead = true
	t.live--
	t.evictTombstones()
	return nil
}

func (t *Temporal) destroyAll(m ipc.Message, base, size uint64) *Violation {
	freed := 0
	for i := range t.regions {
		r := &t.regions[i]
		if r.base >= base && r.base < base+size && !r.dead {
			r.dead = true
			freed++
		}
	}
	t.live -= freed
	t.evictTombstones()
	if freed == 0 {
		return &Violation{PID: m.PID, Op: m.Op, Addr: base, Value: size,
			Reason: "destroy-all found no live allocations: invalid or double free"}
	}
	return nil
}

// evictTombstones drops the oldest dead generations past the cap.
func (t *Temporal) evictTombstones() {
	dead := len(t.regions) - t.live
	if dead <= maxTombstones {
		return
	}
	// Oldest generation first; a single linear sweep keeps the slice sorted
	// by base (we delete in place).
	for dead > maxTombstones {
		oldest, at := ^uint64(0), -1
		for i := range t.regions {
			if t.regions[i].dead && t.regions[i].gen < oldest {
				oldest, at = t.regions[i].gen, i
			}
		}
		t.regions = append(t.regions[:at], t.regions[at+1:]...)
		dead--
	}
}

var _ Policy = (*Temporal)(nil)
