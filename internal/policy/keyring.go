package policy

import (
	crand "crypto/rand"
	"encoding/binary"
	"sync"

	"herqules/internal/ipc"
)

// Keyring holds the per-process message-authentication keys of the hmac
// policy. The kernel programs a key at process registration (the moment it
// programs the PID register on the hardware backends), copies it across fork,
// and drops it at exit; the sender-side sealing wrapper and the verifier-side
// hmac policy both read it. One keyring belongs to one System.
type Keyring struct {
	mu   sync.RWMutex
	keys map[int32]ipc.MacKey
	// rng is a splitmix64 state for deterministic keyrings (chaos replay
	// and tests); zero means crypto/rand.
	rng uint64
}

// NewKeyring creates a keyring generating keys from crypto/rand.
func NewKeyring() *Keyring {
	return &Keyring{keys: make(map[int32]ipc.MacKey)}
}

// NewKeyringSeeded creates a keyring generating keys from a deterministic
// stream seeded by seed, for reproducible chaos schedules and tests.
func NewKeyringSeeded(seed uint64) *Keyring {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Keyring{keys: make(map[int32]ipc.MacKey), rng: seed}
}

func (kr *Keyring) genKey() ipc.MacKey {
	if kr.rng != 0 {
		return ipc.MacKey{K0: kr.next(), K1: kr.next()}
	}
	var b [16]byte
	if _, err := crand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable for an authenticity policy.
		panic("policy: keyring entropy unavailable: " + err.Error())
	}
	return ipc.MacKey{
		K0: binary.LittleEndian.Uint64(b[0:8]),
		K1: binary.LittleEndian.Uint64(b[8:16]),
	}
}

// next advances the splitmix64 stream. Callers hold mu.
func (kr *Keyring) next() uint64 {
	kr.rng += 0x9e3779b97f4a7c15
	z := kr.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Program generates and stores a key for pid. It is idempotent: reprogramming
// a live pid keeps its existing key, so a racing reader never observes a key
// change mid-stream.
func (kr *Keyring) Program(pid int32) {
	kr.mu.Lock()
	defer kr.mu.Unlock()
	if _, ok := kr.keys[pid]; ok {
		return
	}
	kr.keys[pid] = kr.genKey()
}

// Inherit copies the parent's key to the forked child (§3.4: the child's
// policy state starts as a copy of the parent's — including its channel key,
// since the child inherits the parent's channel mapping at fork).
func (kr *Keyring) Inherit(parent, child int32) {
	kr.mu.Lock()
	defer kr.mu.Unlock()
	if k, ok := kr.keys[parent]; ok {
		kr.keys[child] = k
	}
}

// Drop forgets pid's key at process exit.
func (kr *Keyring) Drop(pid int32) {
	kr.mu.Lock()
	defer kr.mu.Unlock()
	delete(kr.keys, pid)
}

// Key reports pid's programmed key.
func (kr *Keyring) Key(pid int32) (ipc.MacKey, bool) {
	kr.mu.RLock()
	defer kr.mu.RUnlock()
	k, ok := kr.keys[pid]
	return k, ok
}
