// Package policy implements the verifier-side execution policies of the
// paper: the control-flow-integrity pointer-integrity policy of the case
// study (§4.1), the memory-safety allocation policy sketched in §4.2, and
// the toy function-call counter from the §2 overview. A policy consumes
// AppendWrite messages and reports violations; it holds all of its state
// outside the monitored process, which is the entire point of HerQules —
// a memory-safety bug in the program cannot reach this metadata.
package policy

import (
	"fmt"

	"herqules/internal/ipc"
)

// Violation describes a failed policy check.
type Violation struct {
	PID    int32
	Op     ipc.Op
	Addr   uint64
	Value  uint64
	Reason string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("policy violation (pid %d, %s): %s [addr=%#x value=%#x]",
		v.PID, v.Op, v.Reason, v.Addr, v.Value)
}

// Policy is one execution policy attached to a monitored process context.
type Policy interface {
	// Name identifies the policy in diagnostics.
	Name() string
	// Handle processes one message, returning a non-nil Violation when a
	// check fails. Messages whose Op the policy does not recognize must be
	// ignored (multiple policies can share one message stream).
	Handle(m ipc.Message) *Violation
	// Clone duplicates the policy state for a forked child (§3.4).
	Clone() Policy
	// Entries reports the current number of metadata entries, used for
	// the paper's §5.4 memory-overhead metrics.
	Entries() int
}
