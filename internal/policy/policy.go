// Package policy implements the verifier-side execution policies of the
// paper: the control-flow-integrity pointer-integrity policy of the case
// study (§4.1), the memory-safety allocation policy sketched in §4.2, the
// data-flow-integrity policy of §4.3, the toy function-call counter from the
// §2 overview, and two extensions — temporal memory safety over allocation
// generations, and a CCFI-style MAC-authenticated channel mode. A policy
// consumes AppendWrite messages and reports violations; it holds all of its
// state outside the monitored process, which is the entire point of HerQules
// — a memory-safety bug in the program cannot reach this metadata.
//
// Policies are named and constructed through a registry (see registry.go), so
// a policy set is data — []string{"cfi", "memsafety"} — rather than code.
package policy

import (
	"fmt"

	"herqules/internal/ipc"
)

// Violation describes a failed policy check.
type Violation struct {
	PID   int32
	Op    ipc.Op
	Addr  uint64
	Value uint64
	// Policy is the registry name of the policy that raised the violation
	// ("seq" for the verifier's built-in sequence check), so kills are
	// attributable to the check that fired.
	Policy string
	Reason string
}

func (v *Violation) Error() string {
	name := v.Policy
	if name == "" {
		name = "policy"
	}
	return fmt.Sprintf("%s violation (pid %d, %s): %s [addr=%#x value=%#x]",
		name, v.PID, v.Op, v.Reason, v.Addr, v.Value)
}

// Policy is one execution policy attached to a monitored process context.
// Implementations that need no lifecycle state should embed Hooks to pick up
// no-op ProcessStarted/ProcessForked methods.
type Policy interface {
	// Name identifies the policy; it equals the name the policy is
	// registered under (registry.go), so diagnostics, Verifier.Policy
	// lookups and WithPolicies arguments all speak the same vocabulary.
	Name() string
	// Handle processes one message, returning a non-nil Violation when a
	// check fails. Messages whose Op the policy does not recognize must be
	// ignored (multiple policies can share one message stream).
	Handle(m ipc.Message) *Violation
	// Clone duplicates the policy state for a forked child (§3.4). The
	// clone's state must be independent: mutating the child must not be
	// observable through the parent.
	Clone() Policy
	// Entries reports the current number of metadata entries, used for
	// the paper's §5.4 memory-overhead metrics.
	Entries() int
	// ProcessStarted runs once when the policy instance is attached to a
	// freshly registered process, before any message is handled.
	ProcessStarted(pid int32)
	// ProcessForked runs on the cloned instance when it is attached to a
	// forked child, before any of the child's messages are handled.
	ProcessForked(parent, child int32)
}

// Hooks is the no-op implementation of the Policy lifecycle hooks; policies
// with no per-process lifecycle state embed it.
type Hooks struct{}

// ProcessStarted implements Policy as a no-op.
func (Hooks) ProcessStarted(pid int32) {}

// ProcessForked implements Policy as a no-op.
func (Hooks) ProcessForked(parent, child int32) {}

// Sealer is implemented by policies that transform each message before any
// policy (including themselves) handles it — the verifier-side half of an
// authenticated channel. Unseal verifies the transport envelope and returns
// the message with the envelope stripped; a non-nil Violation is always
// fatal for the process, because a message that fails authentication says
// nothing trustworthy about which process it belongs to. Sealers run in
// chain order before the verifier's sequence check and before every Handle.
//
// Unseal takes and returns the message by value so the verifier's hot path
// never hands a sealer a pointer into its batch buffers (which would defeat
// escape analysis and reintroduce per-batch allocation).
type Sealer interface {
	Policy
	// Unseal authenticates m and returns it with the envelope stripped
	// (Mac zeroed). The returned message replaces m in the stream only
	// when the Violation is nil.
	Unseal(m ipc.Message) (ipc.Message, *Violation)
}

// KeyBinder is implemented by policies that need the system keyring (the
// hmac sealer). The verifier binds the keyring to each fresh instance before
// invoking its lifecycle hooks.
type KeyBinder interface {
	BindKeyring(*Keyring)
}
