package policy

import (
	"math/rand"
	"testing"
)

// TestPtrTableMatchesMap drives the flat table and a reference Go map with an
// identical randomized op stream — including the define/invalidate churn the
// CFI workload is made of — and requires identical observable state at every
// step. The seed is fixed so a failure reproduces.
func TestPtrTableMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(0x9e3779b9))
	tab := newPtrTable()
	ref := make(map[uint64]uint64)
	// Small key space forces collisions, probe chains, tombstone reuse and
	// rehash growth; keys step by 8 like real pointer addresses.
	key := func() uint64 { return 0x1000 + 8*uint64(rng.Intn(512)) }
	for i := 0; i < 200000; i++ {
		k := key()
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // define
			v := rng.Uint64()
			tab.put(k, v)
			ref[k] = v
		case 4, 5, 6: // invalidate
			got := tab.del(k)
			_, want := ref[k]
			if got != want {
				t.Fatalf("step %d: del(%#x) = %t, want %t", i, k, got, want)
			}
			delete(ref, k)
		default: // check
			gotV, gotOK := tab.get(k)
			wantV, wantOK := ref[k]
			if gotOK != wantOK || gotV != wantV {
				t.Fatalf("step %d: get(%#x) = %#x,%t want %#x,%t", i, k, gotV, gotOK, wantV, wantOK)
			}
		}
		if tab.live != len(ref) {
			t.Fatalf("step %d: live = %d, want %d", i, tab.live, len(ref))
		}
		if tab.used < tab.live || tab.used*4 > len(tab.ctrl)*3+4 {
			t.Fatalf("step %d: occupancy invariant broken: live=%d used=%d cap=%d",
				i, tab.live, tab.used, len(tab.ctrl))
		}
	}
	// Everything still present must be enumerable exactly once.
	seen := make(map[uint64]uint64)
	tab.each(func(k, v uint64) {
		if _, dup := seen[k]; dup {
			t.Fatalf("each visited %#x twice", k)
		}
		seen[k] = v
	})
	if len(seen) != len(ref) {
		t.Fatalf("each enumerated %d entries, want %d", len(seen), len(ref))
	}
	for k, v := range ref {
		if seen[k] != v {
			t.Fatalf("each: key %#x = %#x, want %#x", k, seen[k], v)
		}
	}
}

// TestPtrTableChurnStaysCompact pins the anti-tombstone property the CFI
// define/invalidate cycle depends on: cycling a bounded working set through
// the table must not grow it, because end-of-chain deletes collapse their
// tombstones back to empty slots.
func TestPtrTableChurnStaysCompact(t *testing.T) {
	tab := newPtrTable()
	const working = 1024
	for i := 0; i < working; i++ {
		tab.put(uint64(0x1000+8*i), uint64(i))
	}
	capAfterFill := len(tab.ctrl)
	for round := 0; round < 64; round++ {
		for i := 0; i < working; i++ {
			k := uint64(0x1000 + 8*i)
			if !tab.del(k) {
				t.Fatalf("round %d: del(%#x) missed", round, k)
			}
			tab.put(k, uint64(round))
		}
	}
	if len(tab.ctrl) != capAfterFill {
		t.Fatalf("steady-state churn grew the table: cap %d -> %d", capAfterFill, len(tab.ctrl))
	}
	if tab.live != working {
		t.Fatalf("live = %d, want %d", tab.live, working)
	}
}

// TestPtrTableZeroKey covers address zero, which must behave like any other
// key (flat tables often reserve a zero sentinel; this one must not).
func TestPtrTableZeroKey(t *testing.T) {
	tab := newPtrTable()
	tab.put(0, 42)
	if v, ok := tab.get(0); !ok || v != 42 {
		t.Fatalf("get(0) = %d,%t want 42,true", v, ok)
	}
	if !tab.del(0) {
		t.Fatal("del(0) missed")
	}
	if _, ok := tab.get(0); ok {
		t.Fatal("key 0 still present after del")
	}
}
