package policy

import (
	"testing"

	"herqules/internal/ipc"
)

func TestDFIDeclareSetAndCheck(t *testing.T) {
	d := NewDFI()
	// Set 1 allows writers 5 and 9 (and the loader, implicitly).
	d.Handle(msg(ipc.OpDFIDeclare, 1, 5))
	d.Handle(msg(ipc.OpDFIDeclare, 1, 9))

	// Unwritten address: loader is a legitimate writer.
	if v := d.Handle(msg(ipc.OpDFICheck, 0x1000, 1)); v != nil {
		t.Errorf("loader-initialized read flagged: %v", v)
	}
	// Legitimate store then check.
	d.Handle(msg(ipc.OpDFISet, 0x1000, 5))
	if v := d.Handle(msg(ipc.OpDFICheck, 0x1000, 1)); v != nil {
		t.Errorf("in-set writer flagged: %v", v)
	}
	// Rogue store (an overflow from elsewhere) then check.
	d.Handle(msg(ipc.OpDFISet, 0x1000, 77))
	if v := d.Handle(msg(ipc.OpDFICheck, 0x1000, 1)); v == nil {
		t.Error("out-of-set writer passed")
	}
	if d.LastWriter(0x1000) != 77 {
		t.Errorf("LastWriter = %d", d.LastWriter(0x1000))
	}
}

func TestDFIUndeclaredSetIsViolation(t *testing.T) {
	d := NewDFI()
	if v := d.Handle(msg(ipc.OpDFICheck, 0x1000, 42)); v == nil {
		t.Error("check against undeclared set passed")
	}
}

func TestDFIEntriesAndClone(t *testing.T) {
	d := NewDFI()
	d.Handle(msg(ipc.OpDFIDeclare, 1, 5))
	for i := uint64(0); i < 8; i++ {
		d.Handle(msg(ipc.OpDFISet, 0x1000+8*i, 5))
	}
	if d.Entries() != 8 || d.MaxEntries() != 8 {
		t.Errorf("entries = %d/%d", d.Entries(), d.MaxEntries())
	}
	cl := d.Clone().(*DFI)
	cl.Handle(msg(ipc.OpDFISet, 0x1000, 99))
	if d.LastWriter(0x1000) == 99 {
		t.Error("clone shares writer state")
	}
	if v := cl.Handle(msg(ipc.OpDFICheck, 0x1008, 1)); v != nil {
		t.Errorf("cloned set lost membership: %v", v)
	}
}

func TestDFIIgnoresForeignOps(t *testing.T) {
	d := NewDFI()
	for _, op := range []ipc.Op{ipc.OpPointerDefine, ipc.OpSyscall, ipc.OpAllocCreate} {
		if v := d.Handle(msg(op, 1, 2)); v != nil {
			t.Errorf("DFI reacted to %v", op)
		}
	}
}
