package policy

import (
	"testing"
	"testing/quick"

	"herqules/internal/ipc"
)

func msg(op ipc.Op, args ...uint64) ipc.Message {
	m := ipc.Message{Op: op, PID: 1}
	if len(args) > 0 {
		m.Arg1 = args[0]
	}
	if len(args) > 1 {
		m.Arg2 = args[1]
	}
	if len(args) > 2 {
		m.Arg3 = args[2]
	}
	return m
}

func TestCFIDefineCheckRoundTrip(t *testing.T) {
	c := NewCFI()
	if v := c.Handle(msg(ipc.OpPointerDefine, 0x1000, 0x4000)); v != nil {
		t.Fatalf("define: %v", v)
	}
	if v := c.Handle(msg(ipc.OpPointerCheck, 0x1000, 0x4000)); v != nil {
		t.Errorf("check of correct value failed: %v", v)
	}
	if v := c.Handle(msg(ipc.OpPointerCheck, 0x1000, 0xbad)); v == nil {
		t.Error("check of corrupted value passed")
	}
}

func TestCFIUseAfterFreeDetection(t *testing.T) {
	c := NewCFI()
	c.Handle(msg(ipc.OpPointerDefine, 0x1000, 0x4000))
	c.Handle(msg(ipc.OpPointerInvalidate, 0x1000))
	v := c.Handle(msg(ipc.OpPointerCheck, 0x1000, 0x4000))
	if v == nil {
		t.Fatal("check after invalidate passed: use-after-free undetected")
	}
}

func TestCFICheckInvalidate(t *testing.T) {
	c := NewCFI()
	c.Handle(msg(ipc.OpPointerDefine, 0x2000, 0x5000))
	if v := c.Handle(msg(ipc.OpPointerCheckInvalidate, 0x2000, 0x5000)); v != nil {
		t.Fatalf("check-invalidate: %v", v)
	}
	// Second check must fail: the entry was consumed (backward-edge
	// semantics — each return address is checked exactly once).
	if v := c.Handle(msg(ipc.OpPointerCheck, 0x2000, 0x5000)); v == nil {
		t.Error("entry survived check-invalidate")
	}
	// Failed check-invalidate must not consume.
	c.Handle(msg(ipc.OpPointerDefine, 0x3000, 0x6000))
	if v := c.Handle(msg(ipc.OpPointerCheckInvalidate, 0x3000, 0xbad)); v == nil {
		t.Fatal("mismatched check-invalidate passed")
	}
	if v := c.Handle(msg(ipc.OpPointerCheck, 0x3000, 0x6000)); v != nil {
		t.Error("failed check-invalidate consumed the entry")
	}
}

func TestCFIBlockCopyMemcpySemantics(t *testing.T) {
	c := NewCFI()
	c.Handle(msg(ipc.OpPointerDefine, 0x1000, 0xa))
	c.Handle(msg(ipc.OpPointerDefine, 0x1008, 0xb))
	c.Handle(msg(ipc.OpPointerDefine, 0x2008, 0xdead)) // pre-existing at dst
	// Copy [0x1000, 0x1010) -> [0x2000, 0x2010).
	c.Handle(msg(ipc.OpPointerBlockCopy, 0x1000, 0x2000, 0x10))
	if v := c.Handle(msg(ipc.OpPointerCheck, 0x2000, 0xa)); v != nil {
		t.Errorf("copied pointer missing: %v", v)
	}
	if v := c.Handle(msg(ipc.OpPointerCheck, 0x2008, 0xb)); v != nil {
		t.Errorf("copied pointer at offset missing (pre-existing not replaced): %v", v)
	}
	// Source entries survive a copy.
	if v := c.Handle(msg(ipc.OpPointerCheck, 0x1000, 0xa)); v != nil {
		t.Errorf("source pointer lost on copy: %v", v)
	}
}

func TestCFIBlockCopyOverlapping(t *testing.T) {
	c := NewCFI()
	c.Handle(msg(ipc.OpPointerDefine, 0x1000, 0xa))
	c.Handle(msg(ipc.OpPointerDefine, 0x1008, 0xb))
	// Overlapping forward copy [0x1000,0x1010) -> [0x1008,0x1018).
	c.Handle(msg(ipc.OpPointerBlockCopy, 0x1000, 0x1008, 0x10))
	if v := c.Handle(msg(ipc.OpPointerCheck, 0x1008, 0xa)); v != nil {
		t.Errorf("overlap copy wrong at 0x1008: %v", v)
	}
	if v := c.Handle(msg(ipc.OpPointerCheck, 0x1010, 0xb)); v != nil {
		t.Errorf("overlap copy wrong at 0x1010: %v", v)
	}
}

func TestCFIBlockMoveReallocSemantics(t *testing.T) {
	c := NewCFI()
	c.Handle(msg(ipc.OpPointerDefine, 0x1000, 0xa))
	c.Handle(msg(ipc.OpPointerBlockMove, 0x1000, 0x9000, 0x10))
	if v := c.Handle(msg(ipc.OpPointerCheck, 0x9000, 0xa)); v != nil {
		t.Errorf("moved pointer missing: %v", v)
	}
	// Source must be gone after a move.
	if v := c.Handle(msg(ipc.OpPointerCheck, 0x1000, 0xa)); v == nil {
		t.Error("source pointer survived move")
	}
}

func TestCFIBlockInvalidateFreeSemantics(t *testing.T) {
	c := NewCFI()
	c.Handle(msg(ipc.OpPointerDefine, 0x1000, 0xa))
	c.Handle(msg(ipc.OpPointerDefine, 0x1100, 0xb))
	c.Handle(msg(ipc.OpPointerDefine, 0x2000, 0xc)) // outside range
	c.Handle(msg(ipc.OpPointerBlockInvalidate, 0x1000, 0x200))
	if c.Handle(msg(ipc.OpPointerCheck, 0x1000, 0xa)) == nil {
		t.Error("pointer in freed block survived")
	}
	if c.Handle(msg(ipc.OpPointerCheck, 0x1100, 0xb)) == nil {
		t.Error("pointer in freed block survived")
	}
	if v := c.Handle(msg(ipc.OpPointerCheck, 0x2000, 0xc)); v != nil {
		t.Errorf("pointer outside freed block lost: %v", v)
	}
}

func TestCFIEntriesAndClone(t *testing.T) {
	c := NewCFI()
	for i := uint64(0); i < 10; i++ {
		c.Handle(msg(ipc.OpPointerDefine, 0x1000+8*i, i))
	}
	if c.Entries() != 10 || c.MaxEntries() != 10 {
		t.Errorf("Entries=%d Max=%d, want 10/10", c.Entries(), c.MaxEntries())
	}
	cl := c.Clone().(*CFI)
	cl.Handle(msg(ipc.OpPointerInvalidate, 0x1000))
	if c.Entries() != 10 {
		t.Error("clone shares state with parent")
	}
	if cl.Entries() != 9 {
		t.Error("clone did not apply invalidate")
	}
}

func TestCFIPropertyDefineThenCheckAlwaysPasses(t *testing.T) {
	f := func(addrs []uint64, vals []uint64) bool {
		c := NewCFI()
		n := len(addrs)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			c.Handle(msg(ipc.OpPointerDefine, addrs[i], vals[i]))
		}
		// Re-checking the *latest* definition for each address must pass.
		latest := make(map[uint64]uint64)
		for i := 0; i < n; i++ {
			latest[addrs[i]] = vals[i]
		}
		for a, v := range latest {
			if c.Handle(msg(ipc.OpPointerCheck, a, v)) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemSafetyCreateCheckDestroy(t *testing.T) {
	p := NewMemSafety()
	if v := p.Handle(msg(ipc.OpAllocCreate, 0x1000, 0x100)); v != nil {
		t.Fatalf("create: %v", v)
	}
	if v := p.Handle(msg(ipc.OpAllocCheck, 0x1080)); v != nil {
		t.Errorf("in-bounds check failed: %v", v)
	}
	if v := p.Handle(msg(ipc.OpAllocCheck, 0x1100)); v == nil {
		t.Error("one-past-end access passed")
	}
	if v := p.Handle(msg(ipc.OpAllocDestroy, 0x1000)); v != nil {
		t.Fatalf("destroy: %v", v)
	}
	if v := p.Handle(msg(ipc.OpAllocCheck, 0x1080)); v == nil {
		t.Error("use-after-free access passed")
	}
	if v := p.Handle(msg(ipc.OpAllocDestroy, 0x1000)); v == nil {
		t.Error("double free passed")
	}
}

func TestMemSafetyOverlapRejected(t *testing.T) {
	p := NewMemSafety()
	p.Handle(msg(ipc.OpAllocCreate, 0x1000, 0x100))
	if v := p.Handle(msg(ipc.OpAllocCreate, 0x1080, 0x100)); v == nil {
		t.Error("overlapping create passed")
	}
	if v := p.Handle(msg(ipc.OpAllocCreate, 0x0f80, 0x100)); v == nil {
		t.Error("overlapping create (from below) passed")
	}
	if v := p.Handle(msg(ipc.OpAllocCreate, 0x1100, 0x100)); v != nil {
		t.Errorf("adjacent create rejected: %v", v)
	}
}

func TestMemSafetyCheckBase(t *testing.T) {
	p := NewMemSafety()
	p.Handle(msg(ipc.OpAllocCreate, 0x1000, 0x100))
	p.Handle(msg(ipc.OpAllocCreate, 0x2000, 0x100))
	if v := p.Handle(msg(ipc.OpAllocCheckBase, 0x1000, 0x10ff)); v != nil {
		t.Errorf("same-allocation check failed: %v", v)
	}
	if v := p.Handle(msg(ipc.OpAllocCheckBase, 0x1000, 0x2000)); v == nil {
		t.Error("cross-allocation check passed")
	}
}

func TestMemSafetyExtendRealloc(t *testing.T) {
	p := NewMemSafety()
	p.Handle(msg(ipc.OpAllocCreate, 0x1000, 0x100))
	if v := p.Handle(msg(ipc.OpAllocExtend, 0x1000, 0x5000, 0x200)); v != nil {
		t.Fatalf("extend: %v", v)
	}
	if v := p.Handle(msg(ipc.OpAllocCheck, 0x5100)); v != nil {
		t.Errorf("new range not live: %v", v)
	}
	if v := p.Handle(msg(ipc.OpAllocCheck, 0x1000)); v == nil {
		t.Error("old range still live after extend")
	}
}

func TestMemSafetyDestroyAll(t *testing.T) {
	p := NewMemSafety()
	p.Handle(msg(ipc.OpAllocCreate, 0x1000, 0x10)) // stack slots
	p.Handle(msg(ipc.OpAllocCreate, 0x1020, 0x10))
	p.Handle(msg(ipc.OpAllocCreate, 0x9000, 0x10)) // unrelated
	if v := p.Handle(msg(ipc.OpAllocDestroyAll, 0x1000, 0x100)); v != nil {
		t.Fatalf("destroy-all: %v", v)
	}
	if p.Handle(msg(ipc.OpAllocCheck, 0x1005)) == nil {
		t.Error("frame slot survived destroy-all")
	}
	if v := p.Handle(msg(ipc.OpAllocCheck, 0x9005)); v != nil {
		t.Errorf("unrelated allocation destroyed: %v", v)
	}
	if v := p.Handle(msg(ipc.OpAllocDestroyAll, 0x1000, 0x100)); v == nil {
		t.Error("empty destroy-all passed (double stack deallocation)")
	}
}

func TestMemSafetyIntervalInvariant(t *testing.T) {
	// Property: no sequence of creates/destroys leaves overlapping
	// intervals, and find() is consistent with the interval set.
	f := func(ops []uint16) bool {
		p := NewMemSafety()
		var bases []uint64
		for _, op := range ops {
			base := uint64(op%64) * 0x80
			if op%3 == 0 && len(bases) > 0 {
				p.Handle(msg(ipc.OpAllocDestroy, bases[0]))
				bases = bases[1:]
			} else {
				if v := p.Handle(msg(ipc.OpAllocCreate, base, 0x40)); v == nil {
					bases = append(bases, base)
				}
			}
		}
		for i := 1; i < len(p.allocs); i++ {
			if p.allocs[i-1].base+p.allocs[i-1].size > p.allocs[i].base {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCounterPolicy(t *testing.T) {
	c := NewCounter()
	for i := 0; i < 5; i++ {
		if v := c.Handle(msg(ipc.OpCounterInc, 7)); v != nil {
			t.Fatalf("inc: %v", v)
		}
	}
	if c.Count(7) != 5 {
		t.Errorf("Count = %d, want 5", c.Count(7))
	}
	if c.Count(8) != 0 {
		t.Errorf("untouched class = %d, want 0", c.Count(8))
	}
	cl := c.Clone().(*Counter)
	cl.Handle(msg(ipc.OpCounterInc, 7))
	if c.Count(7) != 5 || cl.Count(7) != 6 {
		t.Error("clone shares counters")
	}
}

func TestCounterWatchdogLimit(t *testing.T) {
	c := NewCounter()
	c.Limit = 2
	c.Handle(msg(ipc.OpCounterInc, 1))
	c.Handle(msg(ipc.OpCounterInc, 1))
	if v := c.Handle(msg(ipc.OpCounterInc, 1)); v == nil {
		t.Error("limit exceeded without violation")
	}
}

func TestPoliciesIgnoreForeignOps(t *testing.T) {
	// Policies sharing one message stream must skip ops they don't own.
	cfi := NewCFI()
	ms := NewMemSafety()
	cnt := NewCounter()
	all := []ipc.Op{
		ipc.OpInit, ipc.OpSyscall, ipc.OpPointerDefine, ipc.OpAllocCreate,
		ipc.OpCounterInc, ipc.OpNop,
	}
	for _, op := range all {
		m := msg(op, 0x1000, 0x10)
		for _, p := range []Policy{cfi, ms, cnt} {
			if v := p.Handle(m); v != nil {
				t.Errorf("%s violated on %s: %v", p.Name(), op, v)
			}
		}
	}
}
