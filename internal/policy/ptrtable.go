package policy

import "math/bits"

// ptrTable is a flat open-addressing hash table specialized for the hottest
// metadata structure in the verifier: the CFI policy's pointer-address →
// expected-value map (the 16-byte entries of §5.4). Every HQ-CFI message is
// one operation on this table, so its cost brackets the whole verify side of
// the hot path. A generic Go map pays a hashing call, group-probing machinery
// and — on every delete — a runtime reseeding draw per operation; this table
// is one multiply-shift hash, a linear probe over 16-byte slots, and nothing
// else, with deletes that un-tombstone themselves when their probe chain ends
// (the define/invalidate churn of the CFI workload would otherwise fill the
// table with tombstones and force rehashes at a steady state size).
//
// Not safe for concurrent use — policy state is confined to one verifier
// shard, which serializes access per process (verifier shard lock).
type ptrTable struct {
	ctrl []uint8    // one of ptrSlotEmpty / ptrSlotFull / ptrSlotDead per slot
	ents []ptrEntry // key/value pairs, valid where ctrl is ptrSlotFull
	live int        // full slots
	used int        // full + tombstoned slots (probe-chain occupancy)
	mask uint64     // len(ctrl)-1; capacity is always a power of two
	shift uint      // 64 - log2(len(ctrl)), for the multiply-shift hash
}

type ptrEntry struct{ key, val uint64 }

const (
	ptrSlotEmpty uint8 = iota
	ptrSlotFull
	ptrSlotDead // tombstone: probe chains continue through it
)

// minPtrTableCap keeps even tiny tables power-of-two sized with probe slack.
const minPtrTableCap = 16

func newPtrTable() *ptrTable {
	t := &ptrTable{}
	t.reset(minPtrTableCap)
	return t
}

// reset reinitializes the table to an empty power-of-two capacity.
func (t *ptrTable) reset(capacity int) {
	t.ctrl = make([]uint8, capacity)
	t.ents = make([]ptrEntry, capacity)
	t.live, t.used = 0, 0
	t.mask = uint64(capacity - 1)
	t.shift = uint(64 - bits.TrailingZeros(uint(capacity)))
}

// slot is the Fibonacci multiply-shift hash: the high bits of key*φ⁻¹ spread
// both dense (stack addresses stepping by 8) and sparse keys uniformly.
func (t *ptrTable) slot(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> t.shift
}

// get returns the value stored for key.
func (t *ptrTable) get(key uint64) (uint64, bool) {
	i := t.slot(key)
	for {
		switch t.ctrl[i] {
		case ptrSlotEmpty:
			return 0, false
		case ptrSlotFull:
			if t.ents[i].key == key {
				return t.ents[i].val, true
			}
		}
		i = (i + 1) & t.mask
	}
}

// put inserts or updates key. Tombstones left on key's probe chain are
// reused, so a define/invalidate cycle of one address occupies one slot
// forever instead of leaking chain occupancy.
func (t *ptrTable) put(key, val uint64) {
	if t.used*4 >= len(t.ctrl)*3 {
		t.rehash()
	}
	i := t.slot(key)
	ins := -1
	for {
		switch t.ctrl[i] {
		case ptrSlotEmpty:
			if ins < 0 {
				ins = int(i)
				t.used++ // consuming a fresh slot, not a reclaimed tombstone
			}
			t.ctrl[ins] = ptrSlotFull
			t.ents[ins] = ptrEntry{key: key, val: val}
			t.live++
			return
		case ptrSlotDead:
			if ins < 0 {
				ins = int(i)
			}
		case ptrSlotFull:
			if t.ents[i].key == key {
				t.ents[i].val = val
				return
			}
		}
		i = (i + 1) & t.mask
	}
}

// del removes key, reporting whether it was present. When the deleted slot
// ends its probe chain (the next slot is empty), the tombstone — and any run
// of tombstones immediately before it — collapses back to empty, keeping
// chain occupancy proportional to live entries under churn.
func (t *ptrTable) del(key uint64) bool {
	i := t.slot(key)
	for {
		switch t.ctrl[i] {
		case ptrSlotEmpty:
			return false
		case ptrSlotFull:
			if t.ents[i].key == key {
				t.ctrl[i] = ptrSlotDead
				t.ents[i] = ptrEntry{}
				t.live--
				if t.ctrl[(i+1)&t.mask] == ptrSlotEmpty {
					for t.ctrl[i] == ptrSlotDead {
						t.ctrl[i] = ptrSlotEmpty
						t.used--
						i = (i - 1) & t.mask
					}
				}
				return true
			}
		}
		i = (i + 1) & t.mask
	}
}

// rehash rebuilds the table sized so live entries sit at ≤ 50% load,
// dropping every tombstone. Triggered by put when chain occupancy (full +
// tombstones) passes 75%.
func (t *ptrTable) rehash() {
	newCap := len(t.ctrl)
	for t.live*2 >= newCap {
		newCap *= 2
	}
	oldCtrl, oldEnts := t.ctrl, t.ents
	t.reset(newCap)
	for i, c := range oldCtrl {
		if c == ptrSlotFull {
			t.put(oldEnts[i].key, oldEnts[i].val)
		}
	}
}

// each calls f for every live entry. f must not insert (the table may
// rehash); deleting any key through del is safe, because entries never move
// outside rehash.
func (t *ptrTable) each(f func(key, val uint64)) {
	for i, c := range t.ctrl {
		if c == ptrSlotFull {
			f(t.ents[i].key, t.ents[i].val)
		}
	}
}
