package policy

import (
	"fmt"
	"sort"
	"strings"
)

// Factory constructs one fresh policy instance. Every monitored process gets
// its own instances (policies are per-process state), so factories must not
// share mutable state between calls.
type Factory func() Policy

// registry maps policy name -> factory. Registration happens from init
// functions and (rarely) test setup; lookups happen on every process start.
// A plain map with no lock is deliberate: all Register calls complete before
// any concurrent reads, matching the stdlib database/sql driver registry.
var registry = map[string]Factory{}

// Register makes a policy constructible by name. The name must equal the
// Name() of the policies the factory produces, be non-empty, and be unique;
// violations are programming errors and panic.
func Register(name string, f Factory) {
	if name == "" {
		panic("policy: Register with empty name")
	}
	if f == nil {
		panic("policy: Register with nil factory for " + name)
	}
	if _, dup := registry[name]; dup {
		panic("policy: Register called twice for " + name)
	}
	registry[name] = f
}

// Names lists every registered policy name, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// New constructs one registered policy by name.
func New(name string) (Policy, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return f(), nil
}

// NewSet constructs one instance of each named policy, in the given chain
// order. Order matters: Sealers authenticate messages before later policies
// see them, and the first violating policy in the chain is the one a kill is
// attributed to.
func NewSet(names ...string) ([]Policy, error) {
	set := make([]Policy, 0, len(names))
	for _, n := range names {
		p, err := New(n)
		if err != nil {
			return nil, err
		}
		set = append(set, p)
	}
	return set, nil
}

// MustSet is NewSet for statically known names; it panics on an unknown one.
func MustSet(names ...string) []Policy {
	set, err := NewSet(names...)
	if err != nil {
		panic(err)
	}
	return set
}

// SetFactory validates names eagerly and returns a factory producing a fresh
// instance of each per call — the shape the verifier consumes (one call per
// monitored process).
func SetFactory(names ...string) (func() []Policy, error) {
	for _, n := range names {
		if _, ok := registry[n]; !ok {
			return nil, fmt.Errorf("policy: unknown policy %q (registered: %s)",
				n, strings.Join(Names(), ", "))
		}
	}
	ns := append([]string(nil), names...)
	return func() []Policy { return MustSet(ns...) }, nil
}

// DefaultSet is the policy set installed when a caller asks for none: every
// paper policy, in chain order.
var DefaultSet = []string{"cfi", "memsafety", "counter", "dfi"}

func init() {
	Register("cfi", func() Policy { return NewCFI() })
	Register("memsafety", func() Policy { return NewMemSafety() })
	Register("counter", func() Policy { return NewCounter() })
	Register("dfi", func() Policy { return NewDFI() })
	Register("temporal", func() Policy { return NewTemporal() })
	// The hmac sealer is registered unbound; the verifier binds the system
	// keyring via KeyBinder before the instance sees any message.
	Register("hmac", func() Policy { return NewHMAC(nil) })
}
