package policy

import (
	"testing"

	"herqules/internal/ipc"
)

// exerciser drives one registered policy through its define/invalidate
// message vocabulary so the conformance suite below can make generic
// assertions. define must grow observable state for stateful policies;
// undefine must return Entries to its pre-define value for policies whose
// vocabulary has release semantics (reversible == true).
type exerciser struct {
	define     []ipc.Message
	undefine   []ipc.Message
	reversible bool
	stateful   bool // Entries grows under define
}

// exercisers must cover every registered policy: the conformance suite fails
// on any registry name without an entry, so adding a policy forces adding
// its conformance coverage.
var exercisers = map[string]exerciser{
	"cfi": {
		define:     []ipc.Message{msg(ipc.OpPointerDefine, 0x1000, 0x4000), msg(ipc.OpPointerDefine, 0x2000, 0x5000)},
		undefine:   []ipc.Message{msg(ipc.OpPointerInvalidate, 0x1000), msg(ipc.OpPointerInvalidate, 0x2000)},
		reversible: true,
		stateful:   true,
	},
	"memsafety": {
		define:     []ipc.Message{msg(ipc.OpAllocCreate, 0x1000, 64), msg(ipc.OpAllocCreate, 0x2000, 64)},
		undefine:   []ipc.Message{msg(ipc.OpAllocDestroy, 0x1000), msg(ipc.OpAllocDestroy, 0x2000)},
		reversible: true,
		stateful:   true,
	},
	"temporal": {
		define:     []ipc.Message{msg(ipc.OpAllocCreate, 0x1000, 64), msg(ipc.OpAllocCreate, 0x2000, 64)},
		undefine:   []ipc.Message{msg(ipc.OpAllocDestroy, 0x1000), msg(ipc.OpAllocDestroy, 0x2000)},
		reversible: true,
		stateful:   true,
	},
	"counter": {
		define:   []ipc.Message{msg(ipc.OpCounterInc, 1), msg(ipc.OpCounterInc, 2)},
		stateful: true, // counts are never released: undefine empty, irreversible
	},
	"dfi": {
		define:   []ipc.Message{msg(ipc.OpDFIDeclare, 7, 1), msg(ipc.OpDFISet, 0x1000, 1)},
		stateful: true, // last-writer records persist: no release vocabulary
	},
	"hmac": {
		// The sealer keeps no Entries state and checks nothing in Handle;
		// its conformance is covered by the fork-key and sealer tests.
	},
}

func TestConformanceEveryRegisteredPolicyCovered(t *testing.T) {
	for _, name := range Names() {
		if _, ok := exercisers[name]; !ok {
			t.Errorf("registered policy %q has no conformance exerciser; add one to conformance_test.go", name)
		}
	}
	for name := range exercisers {
		if _, err := New(name); err != nil {
			t.Errorf("exerciser for unregistered policy %q: %v", name, err)
		}
	}
}

func TestConformanceUnknownOpIgnored(t *testing.T) {
	// OpSyscall is handled by the verifier engine, never by policies; it
	// stands in for any op outside a policy's vocabulary. Handling it must
	// neither violate nor mutate observable state.
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			p, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range exercisers[name].define {
				p.Handle(m)
			}
			before := p.Entries()
			if v := p.Handle(msg(ipc.OpSyscall)); v != nil {
				t.Errorf("foreign op raised violation: %v", v)
			}
			if got := p.Entries(); got != before {
				t.Errorf("foreign op changed Entries: %d -> %d", before, got)
			}
		})
	}
}

func TestConformanceCloneStateIndependent(t *testing.T) {
	for _, name := range Names() {
		ex := exercisers[name]
		t.Run(name, func(t *testing.T) {
			p, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range ex.define {
				if v := p.Handle(m); v != nil {
					t.Fatalf("define rejected: %v", v)
				}
			}
			parentEntries := p.Entries()
			if ex.stateful && parentEntries == 0 {
				t.Fatalf("stateful policy reports 0 entries after defines")
			}
			c := p.Clone()
			if got := c.Entries(); got != parentEntries {
				t.Fatalf("clone Entries = %d, parent = %d", got, parentEntries)
			}
			// Mutating the clone must not disturb the parent, and vice versa.
			for _, m := range ex.undefine {
				c.Handle(m)
			}
			for _, m := range ex.define {
				p.Handle(m) // re-defines / further churn on the parent
			}
			if ex.reversible {
				if got := c.Entries(); got != 0 {
					t.Errorf("clone Entries = %d after full undefine, want 0", got)
				}
				if got := p.Entries(); got != parentEntries {
					t.Errorf("parent Entries = %d after clone mutation, want %d", got, parentEntries)
				}
			}
		})
	}
}

func TestConformanceEntriesTracksChurn(t *testing.T) {
	for _, name := range Names() {
		ex := exercisers[name]
		if !ex.reversible {
			continue
		}
		t.Run(name, func(t *testing.T) {
			p, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			base := p.Entries()
			for round := 0; round < 3; round++ {
				for _, m := range ex.define {
					if v := p.Handle(m); v != nil {
						t.Fatalf("round %d define rejected: %v", round, v)
					}
				}
				if got := p.Entries(); got != base+len(ex.define) {
					t.Fatalf("round %d: Entries = %d after defines, want %d", round, got, base+len(ex.define))
				}
				for _, m := range ex.undefine {
					if v := p.Handle(m); v != nil {
						t.Fatalf("round %d undefine rejected: %v", round, v)
					}
				}
				if got := p.Entries(); got != base {
					t.Fatalf("round %d: Entries = %d after undefines, want %d", round, got, base)
				}
			}
		})
	}
}

// TestConformanceForkHooksCopyMACKeys drives every registered policy through
// the kernel's fork protocol — Program(parent), ProcessStarted(parent),
// Clone, Inherit(parent, child), ProcessForked on the clone — and asserts
// the lifecycle hooks are tolerated by all and that sealers end up able to
// authenticate under the parent's key on a fresh stream.
func TestConformanceForkHooksCopyMACKeys(t *testing.T) {
	const parent, child = int32(1), int32(2)
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			kr := NewKeyringSeeded(42)
			p, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			if kb, ok := p.(KeyBinder); ok {
				kb.BindKeyring(kr)
			}
			kr.Program(parent)
			p.ProcessStarted(parent)
			c := p.Clone()
			kr.Inherit(parent, child) // the kernel copies the key at fork
			c.ProcessForked(parent, child)

			sl, ok := c.(Sealer)
			if !ok {
				return
			}
			key, ok := kr.Key(child)
			if !ok {
				t.Fatal("keyring lost the inherited key")
			}
			if pk, _ := kr.Key(parent); pk != key {
				t.Fatal("inherited key differs from parent's")
			}
			// The forked child's stream restarts at 1 under the copied key.
			m := ipc.Message{Op: ipc.OpCounterInc, PID: child, Arg1: 1, Seq: 1}
			m.Mac = ipc.MacSeal(key, m, m.Seq)
			un, v := sl.Unseal(m)
			if v != nil {
				t.Fatalf("child sealer rejected message under inherited key: %v", v)
			}
			if un.Mac != 0 {
				t.Errorf("Unseal did not strip the envelope: mac=%#x", un.Mac)
			}
		})
	}
}

func TestRegistryUnknownNameErrors(t *testing.T) {
	if _, err := New("no-such-policy"); err == nil {
		t.Error("New(unknown) returned no error")
	}
	if _, err := NewSet("cfi", "no-such-policy"); err == nil {
		t.Error("NewSet with unknown name returned no error")
	}
	if _, err := SetFactory("no-such-policy"); err == nil {
		t.Error("SetFactory with unknown name returned no error")
	}
}

func TestRegistryDefaultSetResolves(t *testing.T) {
	ps := MustSet(DefaultSet...)
	if len(ps) != len(DefaultSet) {
		t.Fatalf("default set resolved to %d policies, want %d", len(ps), len(DefaultSet))
	}
	for i, p := range ps {
		if p.Name() != DefaultSet[i] {
			t.Errorf("policy %d Name = %q, want %q (registry key must equal Name())", i, p.Name(), DefaultSet[i])
		}
	}
}
