package policy

import (
	"fmt"

	"herqules/internal/ipc"
)

// LoaderWriter is the writer identity of pre-execution initialization (the
// loader populating globals, or a never-written location). It is implicitly
// a member of every writer set, so reads of initialized-but-unwritten data
// never false-positive.
const LoaderWriter = 0

// DFI is the data-flow integrity policy of §4.3 (after Castro, Costa and
// Harris, OSDI '06): the compiler assigns every store instruction an
// identity, computes for each checked load the set of stores that may
// legitimately produce its value, and instruments stores to announce
// themselves and loads to be checked. A load whose address was last written
// by a store outside its set — a buffer overflow clobbering a neighbouring
// variable, say — is a violation even when the corrupted value is pure data
// that control-flow integrity would never examine.
type DFI struct {
	Hooks
	// sets maps set id -> allowed writer ids.
	sets map[uint64]map[uint64]bool
	// last maps address -> the id of its most recent writer.
	last       map[uint64]uint64
	maxEntries int
}

// NewDFI creates an empty data-flow-integrity context.
func NewDFI() *DFI {
	return &DFI{
		sets: make(map[uint64]map[uint64]bool),
		last: make(map[uint64]uint64),
	}
}

// Name implements Policy.
func (d *DFI) Name() string { return "dfi" }

// Entries implements Policy.
func (d *DFI) Entries() int { return len(d.last) }

// MaxEntries reports the high-water mark of tracked addresses.
func (d *DFI) MaxEntries() int { return d.maxEntries }

// Clone implements Policy.
func (d *DFI) Clone() Policy {
	n := NewDFI()
	for id, set := range d.sets {
		ns := make(map[uint64]bool, len(set))
		for w := range set {
			ns[w] = true
		}
		n.sets[id] = ns
	}
	for a, w := range d.last {
		n.last[a] = w
	}
	n.maxEntries = d.maxEntries
	return n
}

// Handle implements Policy.
func (d *DFI) Handle(m ipc.Message) *Violation {
	switch m.Op {
	case ipc.OpDFIDeclare:
		set, ok := d.sets[m.Arg1]
		if !ok {
			set = map[uint64]bool{LoaderWriter: true}
			d.sets[m.Arg1] = set
		}
		set[m.Arg2] = true
	case ipc.OpDFISet:
		d.last[m.Arg1] = m.Arg2
		if len(d.last) > d.maxEntries {
			d.maxEntries = len(d.last)
		}
	case ipc.OpDFICheck:
		set, ok := d.sets[m.Arg2]
		if !ok {
			return &Violation{PID: m.PID, Op: m.Op, Addr: m.Arg1, Value: m.Arg2,
				Reason: "dfi: check against undeclared writer set"}
		}
		writer := d.last[m.Arg1] // missing -> LoaderWriter
		if !set[writer] {
			return &Violation{PID: m.PID, Op: m.Op, Addr: m.Arg1, Value: writer,
				Reason: fmt.Sprintf("dfi: address %#x last written by store #%d, outside its reaching set", m.Arg1, writer)}
		}
	}
	return nil
}

// LastWriter reports the recorded last writer of an address.
func (d *DFI) LastWriter(addr uint64) uint64 { return d.last[addr] }

var _ Policy = (*DFI)(nil)
