package policy

import (
	"strings"
	"testing"

	"herqules/internal/ipc"
)

func TestTemporalUseAfterFree(t *testing.T) {
	p := NewTemporal()
	if v := p.Handle(msg(ipc.OpAllocCreate, 0x1000, 64)); v != nil {
		t.Fatalf("create: %v", v)
	}
	if v := p.Handle(msg(ipc.OpAllocCheck, 0x1010)); v != nil {
		t.Fatalf("check of live allocation: %v", v)
	}
	if v := p.Handle(msg(ipc.OpAllocDestroy, 0x1000)); v != nil {
		t.Fatalf("destroy: %v", v)
	}
	v := p.Handle(msg(ipc.OpAllocCheck, 0x1010))
	if v == nil {
		t.Fatal("access inside freed region passed: use-after-free undetected")
	}
	if !strings.Contains(v.Reason, "use-after-free") {
		t.Errorf("reason %q does not name use-after-free", v.Reason)
	}
}

func TestTemporalDoubleFree(t *testing.T) {
	p := NewTemporal()
	p.Handle(msg(ipc.OpAllocCreate, 0x1000, 64))
	p.Handle(msg(ipc.OpAllocDestroy, 0x1000))
	v := p.Handle(msg(ipc.OpAllocDestroy, 0x1000))
	if v == nil {
		t.Fatal("second free of same region passed")
	}
	if !strings.Contains(v.Reason, "double free") {
		t.Errorf("reason %q does not name double free", v.Reason)
	}
}

func TestTemporalInvalidFree(t *testing.T) {
	p := NewTemporal()
	if v := p.Handle(msg(ipc.OpAllocDestroy, 0xdead)); v == nil {
		t.Error("free of never-allocated address passed")
	}
	// Freeing an interior pointer is also invalid: destroy requires the base.
	p.Handle(msg(ipc.OpAllocCreate, 0x1000, 64))
	if v := p.Handle(msg(ipc.OpAllocDestroy, 0x1010)); v == nil {
		t.Error("free of interior pointer passed")
	}
}

func TestTemporalAddressReuseIsClean(t *testing.T) {
	// The allocator handing out freed address space again is normal; the new
	// generation supersedes the tombstone and accesses are clean again.
	p := NewTemporal()
	p.Handle(msg(ipc.OpAllocCreate, 0x1000, 64))
	p.Handle(msg(ipc.OpAllocDestroy, 0x1000))
	if v := p.Handle(msg(ipc.OpAllocCreate, 0x1000, 64)); v != nil {
		t.Fatalf("reuse of freed space rejected: %v", v)
	}
	if v := p.Handle(msg(ipc.OpAllocCheck, 0x1010)); v != nil {
		t.Errorf("access to recycled allocation flagged: %v", v)
	}
	if got := p.Entries(); got != 1 {
		t.Errorf("Entries = %d after reuse, want 1", got)
	}
}

func TestTemporalOverlapLiveIsViolation(t *testing.T) {
	p := NewTemporal()
	p.Handle(msg(ipc.OpAllocCreate, 0x1000, 64))
	if v := p.Handle(msg(ipc.OpAllocCreate, 0x1020, 64)); v == nil {
		t.Error("allocation overlapping a live region passed")
	}
}

func TestTemporalUnknownAddressIsNotOurs(t *testing.T) {
	// Purely temporal: an address outside every known generation is the
	// spatial policy's problem, not a UAF.
	p := NewTemporal()
	p.Handle(msg(ipc.OpAllocCreate, 0x1000, 64))
	if v := p.Handle(msg(ipc.OpAllocCheck, 0x9000)); v != nil {
		t.Errorf("address outside all generations flagged: %v", v)
	}
}

func TestTemporalExtendMovesGeneration(t *testing.T) {
	// Extend (realloc) retires the old generation and creates a new one: the
	// old base becomes a tombstone — accessing it is a UAF.
	p := NewTemporal()
	p.Handle(msg(ipc.OpAllocCreate, 0x1000, 64))
	if v := p.Handle(ipc.Message{Op: ipc.OpAllocExtend, PID: 1, Arg1: 0x1000, Arg2: 0x2000, Arg3: 128}); v != nil {
		t.Fatalf("extend: %v", v)
	}
	if v := p.Handle(msg(ipc.OpAllocCheck, 0x1010)); v == nil {
		t.Error("access through stale pre-realloc pointer passed")
	}
	if v := p.Handle(msg(ipc.OpAllocCheck, 0x2010)); v != nil {
		t.Errorf("access to reallocated region flagged: %v", v)
	}
}

func TestTemporalDestroyAll(t *testing.T) {
	p := NewTemporal()
	p.Handle(msg(ipc.OpAllocCreate, 0x1000, 64))
	p.Handle(msg(ipc.OpAllocCreate, 0x2000, 64))
	if v := p.Handle(msg(ipc.OpAllocDestroyAll, 0x0, 0x10000)); v != nil {
		t.Fatalf("destroy-all: %v", v)
	}
	if got := p.Entries(); got != 0 {
		t.Errorf("Entries = %d after destroy-all, want 0", got)
	}
	if v := p.Handle(msg(ipc.OpAllocCheck, 0x2010)); v == nil {
		t.Error("access after destroy-all passed")
	}
	if v := p.Handle(msg(ipc.OpAllocDestroyAll, 0x0, 0x10000)); v == nil {
		t.Error("destroy-all with nothing live passed")
	}
}

func TestTemporalTombstoneEviction(t *testing.T) {
	// Long-running churn must not grow memory without bound: past the cap
	// the oldest tombstones are evicted, and a UAF against an evicted
	// generation degrades to not-found (spatial policy's problem) rather
	// than a leak.
	p := NewTemporal()
	for i := 0; i < maxTombstones+100; i++ {
		base := uint64(0x1000 + i*0x100)
		if v := p.Handle(msg(ipc.OpAllocCreate, base, 16)); v != nil {
			t.Fatalf("create %d: %v", i, v)
		}
		if v := p.Handle(msg(ipc.OpAllocDestroy, base)); v != nil {
			t.Fatalf("destroy %d: %v", i, v)
		}
	}
	if dead := len(p.regions) - p.live; dead > maxTombstones {
		t.Errorf("tombstones = %d, want <= %d", dead, maxTombstones)
	}
	// The newest tombstone is still attributable.
	last := uint64(0x1000 + (maxTombstones+99)*0x100)
	if v := p.Handle(msg(ipc.OpAllocCheck, last)); v == nil {
		t.Error("UAF against newest tombstone undetected")
	}
}
