package policy

import "herqules/internal/ipc"

// Counter is the toy policy from the paper's §2 overview: reliably count
// function calls (or any event classes) made by the monitored program. An
// in-process counter could be corrupted by the program's own bugs; holding
// it in the verifier behind append-only messages makes it trustworthy even
// after total program compromise.
type Counter struct {
	Hooks
	counts map[uint64]uint64
	// Limit, when non-zero, turns the counter into a watchdog: exceeding
	// it for any class is a violation (e.g. "this program must not call
	// exec more than once").
	Limit uint64
}

// NewCounter creates a counter policy with no limit.
func NewCounter() *Counter {
	return &Counter{counts: make(map[uint64]uint64)}
}

// Name implements Policy.
func (c *Counter) Name() string { return "counter" }

// Entries implements Policy.
func (c *Counter) Entries() int { return len(c.counts) }

// Clone implements Policy.
func (c *Counter) Clone() Policy {
	n := NewCounter()
	n.Limit = c.Limit
	for k, v := range c.counts {
		n.counts[k] = v
	}
	return n
}

// Handle implements Policy.
func (c *Counter) Handle(m ipc.Message) *Violation {
	if m.Op != ipc.OpCounterInc {
		return nil
	}
	c.counts[m.Arg1]++
	if c.Limit > 0 && c.counts[m.Arg1] > c.Limit {
		return &Violation{PID: m.PID, Op: m.Op, Addr: m.Arg1, Value: c.counts[m.Arg1],
			Reason: "event count exceeded configured limit"}
	}
	return nil
}

// Count returns the current count for an event class.
func (c *Counter) Count(class uint64) uint64 { return c.counts[class] }

var _ Policy = (*Counter)(nil)
