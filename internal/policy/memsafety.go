package policy

import (
	"sort"

	"herqules/internal/ipc"
)

// MemSafety is the memory-safety execution policy sketched in §4.2: the
// verifier tracks every live allocation as an interval and checks that
// accesses land inside one (spatial safety) and that the allocation is still
// live (temporal safety). Unlike CFI, this eliminates the corruption rather
// than catching its use.
type MemSafety struct {
	Hooks
	// allocs is sorted by base address; intervals never overlap.
	allocs     []interval
	maxEntries int
}

type interval struct{ base, size uint64 }

// NewMemSafety creates an empty allocation-tracking context.
func NewMemSafety() *MemSafety {
	return &MemSafety{}
}

// Name implements Policy.
func (p *MemSafety) Name() string { return "memsafety" }

// Entries implements Policy.
func (p *MemSafety) Entries() int { return len(p.allocs) }

// MaxEntries reports the high-water mark of tracked allocations.
func (p *MemSafety) MaxEntries() int { return p.maxEntries }

// Clone implements Policy.
func (p *MemSafety) Clone() Policy {
	n := NewMemSafety()
	n.allocs = append([]interval(nil), p.allocs...)
	n.maxEntries = p.maxEntries
	return n
}

// Handle implements Policy.
func (p *MemSafety) Handle(m ipc.Message) *Violation {
	switch m.Op {
	case ipc.OpAllocCreate:
		return p.create(m, m.Arg1, m.Arg2)
	case ipc.OpAllocCheck:
		if _, ok := p.find(m.Arg1); !ok {
			return &Violation{PID: m.PID, Op: m.Op, Addr: m.Arg1,
				Reason: "access outside any live allocation: out-of-bounds or use-after-free"}
		}
	case ipc.OpAllocCheckBase:
		i1, ok1 := p.find(m.Arg1)
		i2, ok2 := p.find(m.Arg2)
		if !ok1 || !ok2 || i1 != i2 {
			return &Violation{PID: m.PID, Op: m.Op, Addr: m.Arg1, Value: m.Arg2,
				Reason: "addresses not within one live allocation"}
		}
	case ipc.OpAllocExtend:
		// realloc: destroy the old interval, create the new one.
		if v := p.destroy(m, m.Arg1); v != nil {
			return v
		}
		return p.create(m, m.Arg2, m.Arg3)
	case ipc.OpAllocDestroy:
		return p.destroy(m, m.Arg1)
	case ipc.OpAllocDestroyAll:
		return p.destroyAll(m, m.Arg1, m.Arg2)
	}
	return nil
}

func (p *MemSafety) create(m ipc.Message, base, size uint64) *Violation {
	if size == 0 {
		size = 1
	}
	i := sort.Search(len(p.allocs), func(i int) bool { return p.allocs[i].base+p.allocs[i].size > base })
	if i < len(p.allocs) && p.allocs[i].base < base+size {
		return &Violation{PID: m.PID, Op: m.Op, Addr: base, Value: size,
			Reason: "allocation overlaps an existing allocation"}
	}
	p.allocs = append(p.allocs, interval{})
	copy(p.allocs[i+1:], p.allocs[i:])
	p.allocs[i] = interval{base: base, size: size}
	if len(p.allocs) > p.maxEntries {
		p.maxEntries = len(p.allocs)
	}
	return nil
}

// find returns the index of the live allocation containing addr.
func (p *MemSafety) find(addr uint64) (int, bool) {
	i := sort.Search(len(p.allocs), func(i int) bool { return p.allocs[i].base+p.allocs[i].size > addr })
	if i < len(p.allocs) && p.allocs[i].base <= addr {
		return i, true
	}
	return 0, false
}

func (p *MemSafety) destroy(m ipc.Message, base uint64) *Violation {
	i, ok := p.find(base)
	if !ok || p.allocs[i].base != base {
		return &Violation{PID: m.PID, Op: m.Op, Addr: base,
			Reason: "destroy of non-allocation: invalid or double free"}
	}
	p.allocs = append(p.allocs[:i], p.allocs[i+1:]...)
	return nil
}

func (p *MemSafety) destroyAll(m ipc.Message, base, size uint64) *Violation {
	kept := p.allocs[:0]
	removed := 0
	for _, iv := range p.allocs {
		if iv.base >= base && iv.base < base+size {
			removed++
			continue
		}
		kept = append(kept, iv)
	}
	p.allocs = kept
	if removed == 0 {
		return &Violation{PID: m.PID, Op: m.Op, Addr: base, Value: size,
			Reason: "destroy-all found no allocations: invalid or double free"}
	}
	return nil
}

var _ Policy = (*MemSafety)(nil)
