package policy

import (
	"fmt"

	"herqules/internal/ipc"
)

// HMAC is the verifier-side half of the CCFI-style authenticated channel
// (Mashtizadeh et al., PAPERS.md): every message arrives sealed by
// ipc.SealSender under the process's kernel-programmed key, and this policy —
// a Sealer, so it runs before the sequence check and every other policy —
// recomputes the tag, checks the stream position, and strips the envelope.
// On an untrusted transport this turns bit flips, replays, reorders, and
// cross-process splices into attributable authentication kills instead of
// silent corruption or misattributed sequence-gap kills.
type HMAC struct {
	ring *Keyring
	// key caches the process key once ProcessStarted resolves it; the hot
	// path then never touches the keyring lock.
	key   ipc.MacKey
	bound bool
	pid   int32
	// last is the verifier-side stream position: the Seq of the last
	// authenticated message. Sealed streams count from 1 with no gaps, so
	// anything other than last+1 is a replay, reorder, or drop.
	last uint64
}

// NewHMAC creates the policy. A nil ring (the registry default) is bound
// later through KeyBinder; an unbound instance rejects every message, which
// is the fail-closed reading of "no key was ever programmed".
func NewHMAC(ring *Keyring) *HMAC {
	return &HMAC{ring: ring}
}

// Name implements Policy.
func (h *HMAC) Name() string { return "hmac" }

// Entries implements Policy; the sealer keeps no per-message metadata.
func (h *HMAC) Entries() int { return 0 }

// BindKeyring implements KeyBinder.
func (h *HMAC) BindKeyring(kr *Keyring) { h.ring = kr }

// ProcessStarted implements Policy, caching the key the kernel programmed at
// registration (the kernel programs it before the process becomes visible,
// so the lookup here cannot race the first message).
func (h *HMAC) ProcessStarted(pid int32) {
	h.pid = pid
	h.resolveKey()
}

// ProcessForked implements Policy on the cloned child instance: the child
// inherits the parent's key (the keyring copied it at kernel fork time) but
// its channel — and therefore its sequence stream — starts fresh.
func (h *HMAC) ProcessForked(parent, child int32) {
	h.pid = child
	h.last = 0
	h.bound = false
	h.resolveKey()
}

func (h *HMAC) resolveKey() {
	if h.ring == nil {
		return
	}
	if k, ok := h.ring.Key(h.pid); ok {
		h.key, h.bound = k, true
	}
}

// Clone implements Policy. The keyring pointer is shared (it is the system
// keyring); the cached key and stream position are per-instance and the
// child's are reset by ProcessForked.
func (h *HMAC) Clone() Policy {
	n := *h
	return &n
}

// Handle implements Policy; all of the sealer's checking happens in Unseal.
func (h *HMAC) Handle(m ipc.Message) *Violation { return nil }

// Unseal implements Sealer: verify the tag, verify the stream position,
// strip the envelope.
func (h *HMAC) Unseal(m ipc.Message) (ipc.Message, *Violation) {
	if !h.bound {
		h.resolveKey() // late binding: key programmed after attach (tests)
		if !h.bound {
			return m, &Violation{PID: m.PID, Op: m.Op, Addr: m.Arg1, Policy: "hmac",
				Reason: "message authentication failed: no key programmed for process"}
		}
	}
	if ipc.MacSeal(h.key, m, m.Seq) != m.Mac {
		return m, &Violation{PID: m.PID, Op: m.Op, Addr: m.Arg1, Value: m.Mac, Policy: "hmac",
			Reason: "message authentication failed: MAC mismatch (forged, corrupted or spliced)"}
	}
	if m.Seq != h.last+1 {
		return m, &Violation{PID: m.PID, Op: m.Op, Addr: m.Arg1, Value: m.Seq, Policy: "hmac",
			Reason: fmt.Sprintf("message authentication failed: stream position %d after %d (replayed, reordered or dropped)",
				m.Seq, h.last)}
	}
	h.last = m.Seq
	m.Mac = 0
	return m, nil
}

var (
	_ Policy    = (*HMAC)(nil)
	_ Sealer    = (*HMAC)(nil)
	_ KeyBinder = (*HMAC)(nil)
)
