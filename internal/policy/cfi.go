package policy

import "herqules/internal/ipc"

// CFI is the pointer-integrity control-flow-integrity policy (§4.1.2): the
// verifier keeps an authoritative copy of every writable control-flow
// pointer, keyed by its address. A Pointer-Check that disagrees with the
// stored copy — or that refers to a pointer that was never defined or was
// invalidated — is a violation. Tracking pointer lifetime is what lets
// HQ-CFI detect use-after-free on control-flow pointers, which no prior CFI
// design supports (Table 3).
type CFI struct {
	Hooks
	// table maps pointer address -> expected pointer value. Each entry is
	// the verifier-side 16-byte pointer-value pair of §5.4, held in a flat
	// open-addressing table because every HQ-CFI message lands here — see
	// ptrtable.go for why a generic map is too slow for this hot path.
	table *ptrTable
	// maxEntries tracks the high-water mark for the §5.4 metrics.
	maxEntries int
}

// NewCFI creates an empty pointer-integrity context.
func NewCFI() *CFI {
	return &CFI{table: newPtrTable()}
}

// Name implements Policy.
func (c *CFI) Name() string { return "cfi" }

// Entries implements Policy.
func (c *CFI) Entries() int { return c.table.live }

// MaxEntries reports the table's high-water mark.
func (c *CFI) MaxEntries() int { return c.maxEntries }

// Clone implements Policy.
func (c *CFI) Clone() Policy {
	n := NewCFI()
	c.table.each(func(k, v uint64) { n.table.put(k, v) })
	n.maxEntries = c.maxEntries
	return n
}

// Handle implements Policy, dispatching the §4.1.3/§4.1.5 message set.
func (c *CFI) Handle(m ipc.Message) *Violation {
	switch m.Op {
	case ipc.OpPointerDefine:
		c.define(m.Arg1, m.Arg2)
	case ipc.OpPointerCheck:
		return c.check(m, false)
	case ipc.OpPointerCheckInvalidate:
		return c.check(m, true)
	case ipc.OpPointerInvalidate:
		c.table.del(m.Arg1)
	case ipc.OpPointerBlockCopy:
		c.blockCopy(m.Arg1, m.Arg2, m.Arg3, false)
	case ipc.OpPointerBlockMove:
		c.blockCopy(m.Arg1, m.Arg2, m.Arg3, true)
	case ipc.OpPointerBlockInvalidate:
		c.blockInvalidate(m.Arg1, m.Arg2)
	}
	return nil
}

func (c *CFI) define(addr, val uint64) {
	c.table.put(addr, val)
	if c.table.live > c.maxEntries {
		c.maxEntries = c.table.live
	}
}

func (c *CFI) check(m ipc.Message, invalidate bool) *Violation {
	stored, ok := c.table.get(m.Arg1)
	if !ok {
		return &Violation{
			PID: m.PID, Op: m.Op, Addr: m.Arg1, Value: m.Arg2,
			Reason: "pointer not defined: corrupt or use-after-free",
		}
	}
	if stored != m.Arg2 {
		return &Violation{
			PID: m.PID, Op: m.Op, Addr: m.Arg1, Value: m.Arg2,
			Reason: "pointer value mismatch: corrupt",
		}
	}
	if invalidate {
		c.table.del(m.Arg1)
	}
	return nil
}

// blockCopy implements Pointer-Block-Copy/-Move: all tracked pointers in
// [src, src+n) are transplanted to the same offsets in [dst, dst+n). The
// ranges of a copy may intersect (memmove semantics), so matching entries
// are gathered before the destination range is cleared. A move additionally
// removes the source entries.
func (c *CFI) blockCopy(src, dst, n uint64, move bool) {
	type ent struct{ off, val uint64 }
	var found []ent
	c.table.each(func(a, v uint64) {
		if a >= src && a-src < n {
			found = append(found, ent{off: a - src, val: v})
			if move {
				c.table.del(a)
			}
		}
	})
	// Pre-existing destination pointers are invalidated.
	c.blockInvalidate(dst, n)
	for _, e := range found {
		c.define(dst+e.off, e.val)
	}
}

func (c *CFI) blockInvalidate(addr, n uint64) {
	c.table.each(func(a, _ uint64) {
		if a >= addr && a-addr < n {
			c.table.del(a)
		}
	})
}

var _ Policy = (*CFI)(nil)
