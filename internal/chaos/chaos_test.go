package chaos

import (
	"math/bits"
	"testing"
	"time"

	"herqules/internal/ipc"
)

// stream builds a well-formed message stream the way a backend would emit
// it: sequence numbers assigned in send order, one process.
func stream(pid int32, n int) []ipc.Message {
	ms := make([]ipc.Message, n)
	for i := range ms {
		ms[i] = ipc.Message{Op: ipc.OpCounterInc, PID: pid, Arg1: uint64(i), Seq: uint64(i + 1)}
	}
	return ms
}

// drainAll pulls the entire faulted stream, retrying transient errors.
func drainAll(t *testing.T, r ipc.Receiver) []ipc.Message {
	t.Helper()
	var got []ipc.Message
	buf := make([]ipc.Message, 16)
	for {
		n, ok, err := ipc.RecvBatchFrom(r, buf)
		got = append(got, buf[:n]...)
		if err != nil {
			if ipc.IsTransient(err) {
				continue
			}
			t.Fatalf("terminal receive error: %v", err)
		}
		if !ok {
			return got
		}
	}
}

func TestZeroRatesArePassthrough(t *testing.T) {
	inj := NewInjector(1) // no options: every rate zero
	msgs := stream(7, 500)
	got := drainAll(t, inj.Receiver(ipc.NewReplay(msgs)))
	if len(got) != len(msgs) {
		t.Fatalf("passthrough length = %d, want %d", len(got), len(msgs))
	}
	for i := range got {
		if got[i] != msgs[i] {
			t.Fatalf("message %d mutated: got %v want %v", i, got[i], msgs[i])
		}
	}
	if c := inj.Counts(); c.Total() != 0 {
		t.Fatalf("zero-rate injector fired faults: %v", c)
	}
}

func TestDropLeavesSequenceGaps(t *testing.T) {
	inj := NewInjector(42, WithDrop(0.2))
	msgs := stream(7, 1000)
	got := drainAll(t, inj.Receiver(ipc.NewReplay(msgs)))
	c := inj.Counts()
	if c.Dropped == 0 {
		t.Fatal("20% drop over 1000 messages fired nothing")
	}
	if len(got)+int(c.Dropped) != len(msgs) {
		t.Fatalf("len(got)=%d + dropped=%d != %d", len(got), c.Dropped, len(msgs))
	}
	// Survivors keep their original Seq, so every drop is a visible gap.
	last := uint64(0)
	gaps := 0
	for _, m := range got {
		if m.Seq <= last {
			t.Fatalf("drop-only schedule reordered: seq %d after %d", m.Seq, last)
		}
		if m.Seq != last+1 {
			gaps++
		}
		last = m.Seq
	}
	if gaps == 0 {
		t.Fatal("drops left no sequence gaps")
	}
}

func TestDuplicateRepeatsExactMessage(t *testing.T) {
	inj := NewInjector(3, WithDuplicate(0.1))
	msgs := stream(9, 1000)
	got := drainAll(t, inj.Receiver(ipc.NewReplay(msgs)))
	c := inj.Counts()
	if c.Duplicated == 0 {
		t.Fatal("10% duplication over 1000 messages fired nothing")
	}
	if len(got) != len(msgs)+int(c.Duplicated) {
		t.Fatalf("len(got)=%d, want %d originals + %d dups", len(got), len(msgs), c.Duplicated)
	}
	dups := 0
	for i := 1; i < len(got); i++ {
		if got[i] == got[i-1] {
			dups++
		}
	}
	if dups != int(c.Duplicated) {
		t.Fatalf("found %d adjacent exact duplicates, counter says %d", dups, c.Duplicated)
	}
}

func TestReorderBoundedByWindow(t *testing.T) {
	const window = 4
	inj := NewInjector(11, WithReorder(0.15, window))
	msgs := stream(5, 2000)
	got := drainAll(t, inj.Receiver(ipc.NewReplay(msgs)))
	if len(got) != len(msgs) {
		t.Fatalf("reorder changed message count: %d != %d", len(got), len(msgs))
	}
	if inj.Counts().Reordered == 0 {
		t.Fatal("15% reorder over 2000 messages fired nothing")
	}
	// Every message may arrive at most `window` positions later than some
	// message sent after it — and at least one actually does.
	displaced := 0
	for i, m := range got {
		lag := int(m.Seq) - 1 - i // negative when delivered late
		if lag < -(window + 1) {
			t.Fatalf("message seq=%d delivered %d positions late, window is %d", m.Seq, -lag, window)
		}
		if lag < 0 {
			displaced++
		}
	}
	if displaced == 0 {
		t.Fatal("reorder fired but no message was displaced")
	}
}

func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	inj := NewInjector(8, WithCorrupt(0.1))
	msgs := stream(2, 1000)
	got := drainAll(t, inj.Receiver(ipc.NewReplay(msgs)))
	if len(got) != len(msgs) {
		t.Fatalf("corruption changed message count: %d != %d", len(got), len(msgs))
	}
	c := inj.Counts()
	if c.Corrupted == 0 {
		t.Fatal("10% corruption over 1000 messages fired nothing")
	}
	flipped := 0
	for i := range got {
		d := bits.OnesCount64(got[i].Arg1^msgs[i].Arg1) +
			bits.OnesCount64(got[i].Arg2^msgs[i].Arg2) +
			bits.OnesCount64(got[i].Arg3^msgs[i].Arg3) +
			bits.OnesCount64(got[i].Seq^msgs[i].Seq)
		switch d {
		case 0:
		case 1:
			flipped++
		default:
			t.Fatalf("message %d has %d flipped bits, want exactly 1", i, d)
		}
		if got[i].Op != msgs[i].Op || got[i].PID != msgs[i].PID {
			t.Fatalf("corruption touched Op/PID of message %d", i)
		}
	}
	if flipped != int(c.Corrupted) {
		t.Fatalf("%d messages corrupted, counter says %d", flipped, c.Corrupted)
	}
}

func TestTransientRecvErrorsAreTransient(t *testing.T) {
	inj := NewInjector(21, WithTransientRecvErrors(0.5))
	r := inj.Receiver(ipc.NewReplay(stream(4, 200)))
	buf := make([]ipc.Message, 8)
	total, errs := 0, 0
	for {
		n, ok, err := ipc.RecvBatchFrom(r, buf)
		total += n
		if err != nil {
			if !ipc.IsTransient(err) {
				t.Fatalf("injected receive error is not transient: %v", err)
			}
			errs++
			continue
		}
		if !ok {
			break
		}
	}
	if errs == 0 {
		t.Fatal("50% receive-error rate fired nothing")
	}
	if total != 200 {
		t.Fatalf("transient errors lost messages: drained %d of 200", total)
	}
	if got := inj.Counts().RecvErrors; got != uint64(errs) {
		t.Fatalf("observed %d injected errors, counter says %d", errs, got)
	}
}

func TestTransientSendErrorsRetrySafely(t *testing.T) {
	inj := NewInjector(17, WithTransientSendErrors(0.3))
	ch := ipc.NewSharedRing(1 << 12)
	s := inj.Sender(ch.Sender)
	const n = 500
	for i := 0; i < n; i++ {
		if err := ipc.SendWithRetry(s, ipc.Message{Op: ipc.OpCounterInc, PID: 1}, 0); err != nil {
			t.Fatalf("send %d failed through retry: %v", i, err)
		}
	}
	if err := ch.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	got := drainAll(t, ch.Receiver)
	if len(got) != n {
		t.Fatalf("drained %d messages, want %d", len(got), n)
	}
	// Failed sends consume no sequence number: the stream stays dense.
	for i, m := range got {
		if m.Seq != uint64(i+1) {
			t.Fatalf("send-error retry perturbed seq: got %d at position %d", m.Seq, i)
		}
	}
	if inj.Counts().SendErrors == 0 {
		t.Fatal("30% send-error rate fired nothing")
	}
}

func TestStallDelaysButDeliversEverything(t *testing.T) {
	inj := NewInjector(29, WithStall(1.0, 2*time.Millisecond))
	msgs := stream(6, 64)
	start := time.Now()
	got := drainAll(t, inj.Receiver(ipc.NewReplay(msgs)))
	if len(got) != len(msgs) {
		t.Fatalf("stall lost messages: %d != %d", len(got), len(msgs))
	}
	if inj.Counts().Stalls == 0 {
		t.Fatal("100% stall rate fired nothing")
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("stall did not stall: drained in %v", elapsed)
	}
}

// TestDeterministicSchedule is the reproducibility contract: same seed, same
// wrapping order, same streams → identical fault counts and schedule hash;
// different seed → (overwhelmingly) different schedule.
func TestDeterministicSchedule(t *testing.T) {
	run := func(seed uint64) (Counts, uint64) {
		inj := NewInjector(seed,
			WithDrop(0.05), WithDuplicate(0.05), WithReorder(0.05, 8),
			WithCorrupt(0.05), WithTransientSendErrors(0.05))
		// Two streams, wrapped in a fixed order, drained with different
		// batch sizes to prove batching cannot perturb the schedule.
		for i, bufSize := range []int{3, 17} {
			r := inj.Receiver(ipc.NewReplay(stream(int32(i+1), 700)))
			buf := make([]ipc.Message, bufSize)
			for {
				_, ok, err := ipc.RecvBatchFrom(r, buf)
				if err != nil && !ipc.IsTransient(err) {
					t.Fatalf("terminal error: %v", err)
				}
				if !ok && err == nil {
					break
				}
			}
		}
		return inj.Counts(), inj.ScheduleHash()
	}
	c1, h1 := run(0xfeedface)
	c2, h2 := run(0xfeedface)
	if c1 != c2 {
		t.Fatalf("same seed, different counts:\n  %v\n  %v", c1, c2)
	}
	if h1 != h2 {
		t.Fatalf("same seed, different schedule hash: %#x != %#x", h1, h2)
	}
	if c1.Total() == 0 {
		t.Fatal("schedule fired no faults at all")
	}
	_, h3 := run(0xdeadbeef)
	if h3 == h1 {
		t.Fatalf("different seeds produced the same schedule hash %#x", h1)
	}
}

// TestSenderForwardsPIDRegister guards the supervisor wiring: hiding the
// register would leave hardware-backed transports with unstamped messages.
func TestSenderForwardsPIDRegister(t *testing.T) {
	inj := NewInjector(1)
	rec := &recordingRegister{}
	s := inj.Sender(rec)
	reg, ok := s.(ipc.PIDRegister)
	if !ok {
		t.Fatal("chaos sender does not forward PIDRegister")
	}
	reg.SetPID(1234)
	if rec.pid != 1234 {
		t.Fatalf("SetPID not forwarded: got %d", rec.pid)
	}
}

type recordingRegister struct {
	pid int32
}

func (r *recordingRegister) Send(ipc.Message) error { return nil }
func (r *recordingRegister) Close() error           { return nil }
func (r *recordingRegister) SetPID(pid int32)       { r.pid = pid }
