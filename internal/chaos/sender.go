package chaos

import (
	"fmt"
	"time"

	"herqules/internal/ipc"
)

// faultSender applies producer-side faults — transient send errors and
// delay/jitter — around a wrapped sender. Producer-side faults deliberately
// exclude drops and corruption: every backend in the ipc package assigns
// the message's sequence number inside Send, so a message discarded before
// Send would never consume a sequence number and the verifier's CheckSeq
// could not see the loss. Loss and corruption are injected on the receiver
// side (see faultReceiver), where they are observable as the integrity
// violations the design must catch.
type faultSender struct {
	inj    *Injector
	s      ipc.Sender
	stream uint64
	// idx counts Send attempts. Plain, not atomic: every backend in the
	// ipc package already requires a single producer goroutine per channel.
	idx uint64
}

// Sender wraps s with the injector's producer-side faults. The wrapper
// forwards Close and the PIDRegister extension, so kernel-side code that
// programs the transport's PID register still reaches it.
func (inj *Injector) Sender(s ipc.Sender) ipc.Sender {
	return &faultSender{inj: inj, s: s, stream: inj.streams.Add(1)}
}

func (fs *faultSender) Send(m ipc.Message) error {
	inj := fs.inj
	i := fs.idx
	fs.idx++
	if hit(inj.draw(FaultSendErr, fs.stream, i), inj.cfg.sendErr) {
		// The message was never handed to the backend: no sequence number
		// is consumed, so a retried send is indistinguishable from a clean
		// one — exactly the contract ipc.SendWithRetry relies on.
		inj.count(FaultSendErr)
		inj.recordDecision(fs.stream, i, FaultSendErr)
		return ipc.Transient(fmt.Errorf("%w: send %d dropped on the floor", errInjected, i))
	}
	if hit(inj.draw(FaultDelay, fs.stream, i), inj.cfg.delay) {
		inj.count(FaultDelay)
		inj.recordDecision(fs.stream, i, FaultDelay)
		// Jitter amount is drawn deterministically too, in (0, maxDelay].
		frac := inj.draw(FaultNone, fs.stream, i) % uint64(inj.cfg.maxDelay)
		time.Sleep(time.Duration(frac) + 1)
	} else {
		inj.recordDecision(fs.stream, i, FaultNone)
	}
	return fs.s.Send(m)
}

func (fs *faultSender) Close() error { return fs.s.Close() }

// SetPID implements ipc.PIDRegister by forwarding to the wrapped sender.
func (fs *faultSender) SetPID(pid int32) {
	if reg, ok := fs.s.(ipc.PIDRegister); ok {
		reg.SetPID(pid)
	}
}

var (
	_ ipc.Sender      = (*faultSender)(nil)
	_ ipc.PIDRegister = (*faultSender)(nil)
)
