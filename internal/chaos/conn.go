package chaos

import (
	"net"
	"sync/atomic"
	"time"

	"herqules/internal/ipc"
)

// faultConn applies connection-level faults to a wrapped net.Conn: write
// stalls (a frozen path) and mid-frame transport death (half a frame on the
// wire, then close). Both are decided per write call — the transport write
// sequence is a timing artifact, like RecvBatch call counts — so they are
// excluded from the schedule hash.
//
// The wrapper faults only the write side: a dropped write is observable at
// the far end as a truncated frame (the exact failure the fd-framing
// partial-frame carry and the networked resume protocol both exist to
// handle), whereas a read-side drop would be indistinguishable from the
// peer simply not having sent yet.
type faultConn struct {
	net.Conn
	inj    *Injector
	stream uint64
	// writes counts Write calls. Atomic: ipc.FrameWriter serializes writers
	// per connection, but the session read loop's acks and a heartbeat loop
	// may share one conn through separate FrameWriters.
	writes atomic.Uint64
	dead   atomic.Bool
}

// Conn wraps nc with the injector's connection-level faults. Use it as
// hqnet.ClientConfig.WrapConn (or around any stream transport carrying
// 48-byte frames).
func (inj *Injector) Conn(nc net.Conn) net.Conn {
	return &faultConn{Conn: nc, inj: inj, stream: inj.streams.Add(1)}
}

func (fc *faultConn) Write(p []byte) (int, error) {
	inj := fc.inj
	i := fc.writes.Add(1) - 1
	if fc.dead.Load() {
		// Already chaos-killed: behave like the closed socket it is.
		return fc.Conn.Write(p)
	}
	if hit(inj.draw(FaultConnStall, fc.stream, i), inj.cfg.connStall) {
		inj.count(FaultConnStall)
		time.Sleep(inj.cfg.connStallFor)
	}
	if hit(inj.draw(FaultConnDrop, fc.stream, i), inj.cfg.connDrop) {
		inj.count(FaultConnDrop)
		fc.dead.Store(true)
		// Truncate exactly inside the frame: half the bytes escape, then the
		// transport dies. The far side's decoder must observe a mid-frame
		// end, never a silently shortened-but-clean stream.
		half := len(p) / 2
		n := 0
		if half > 0 {
			n, _ = fc.Conn.Write(p[:half])
		}
		fc.Conn.Close()
		return n, net.ErrClosed
	}
	if hit(inj.draw(FaultConnDropBoundary, fc.stream, i), inj.cfg.connDropBoundary) {
		inj.count(FaultConnDropBoundary)
		fc.dead.Store(true)
		// Truncate exactly AT a frame boundary: half the frames of the write
		// (rounded down to whole frames) escape, then the transport dies.
		// Assumes the caller writes frame-aligned buffers (ipc.FrameWriter
		// does) — the cut then lands on a stream frame boundary, so the far
		// side's decoder sees a clean, carry-free end-of-stream and the loss
		// is detectable only above framing (lease expiry or a CheckSeq gap).
		cut := (len(p) / ipc.MessageSize / 2) * ipc.MessageSize
		n := 0
		if cut > 0 {
			n, _ = fc.Conn.Write(p[:cut])
		}
		fc.Conn.Close()
		return n, net.ErrClosed
	}
	return fc.Conn.Write(p)
}

// connStreams hands out per-connection stream identifiers for the
// handshake-level decisions below; separate from the wrapper streams so a
// driver that does not wrap its conns still draws deterministically.
//
// DupHello decides whether the chaos-driven client on stream should send a
// duplicate HELLO after admission (a protocol violation the daemon answers
// by severing). Per-connection, so it is folded into the schedule hash —
// call it exactly once per connection stream.
func (inj *Injector) DupHello(stream uint64) bool {
	f := FaultNone
	if hit(inj.draw(FaultDupHello, stream, uint64(FaultDupHello)), inj.cfg.dupHello) {
		f = FaultDupHello
		inj.count(f)
	}
	inj.recordDecision(stream, uint64(FaultDupHello), f)
	return f == FaultDupHello
}

// StaleResume decides whether the chaos-driven client on stream should first
// attempt a resume with a forged token (which the daemon must reject without
// touching any live session). Per-connection, folded into the schedule hash —
// call it exactly once per connection stream.
func (inj *Injector) StaleResume(stream uint64) bool {
	f := FaultNone
	if hit(inj.draw(FaultStaleResume, stream, uint64(FaultStaleResume)), inj.cfg.staleResume) {
		f = FaultStaleResume
		inj.count(f)
	}
	inj.recordDecision(stream, uint64(FaultStaleResume), f)
	return f == FaultStaleResume
}

// NextStream allocates a fresh stream identifier from the injector's
// creation-order counter, for drivers that make per-connection decisions
// (DupHello, StaleResume) without wrapping a Sender/Receiver/Conn.
func (inj *Injector) NextStream() uint64 { return inj.streams.Add(1) }
