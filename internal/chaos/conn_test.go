package chaos

import (
	"errors"
	"net"
	"os"
	"syscall"
	"testing"

	"herqules/internal/ipc"
)

// socketpair returns both ends of a real AF_UNIX/SOCK_STREAM socketpair as
// net.Conns — the exact transport class the fd-framing layer was built for,
// with real kernel short reads and writes, unlike net.Pipe's synchronous
// in-process rendezvous.
func socketpair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	fds, err := syscall.Socketpair(syscall.AF_UNIX, syscall.SOCK_STREAM, 0)
	if err != nil {
		t.Fatalf("socketpair: %v", err)
	}
	mk := func(fd int, name string) net.Conn {
		f := os.NewFile(uintptr(fd), name)
		defer f.Close() // FileConn dups the fd
		c, err := net.FileConn(f)
		if err != nil {
			t.Fatalf("FileConn: %v", err)
		}
		return c
	}
	a := mk(fds[0], "sp-a")
	b := mk(fds[1], "sp-b")
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

// TestFrameCarryOverSocketpair drives the partial-frame carry across real
// kernel socket reads: the writer deliberately lands byte counts that end
// mid-frame, and the decoder must (a) report the carry, (b) reassemble every
// frame bit-exactly, and (c) never surface a partial frame as data.
func TestFrameCarryOverSocketpair(t *testing.T) {
	w, r := socketpair(t)
	dec := ipc.NewFrameDecoder(r)

	const frames = 64
	// Encode the whole stream, then write it in chunk sizes that are
	// coprime with the 48-byte frame so nearly every read ends mid-frame.
	raw := make([]byte, 0, frames*ipc.MessageSize)
	var buf [ipc.MessageSize]byte
	for i := 0; i < frames; i++ {
		m := ipc.Message{Op: ipc.OpCounterInc, PID: 9, Arg1: uint64(i), Seq: uint64(i + 1)}
		m.Encode(buf[:])
		raw = append(raw, buf[:]...)
	}

	// Phase 1: exactly one and a half frames. The decoder must deliver the
	// whole frame and hold the half back as carry.
	if _, err := w.Write(raw[:72]); err != nil {
		t.Fatal(err)
	}
	var out [frames]ipc.Message
	n, ok, err := dec.Decode(out[:])
	if err != nil || !ok || n != 1 {
		t.Fatalf("phase 1 decode: n=%d ok=%t err=%v, want 1 true nil", n, ok, err)
	}
	if !dec.Carried() {
		t.Fatal("decoder reports no carry with 24 trailing bytes buffered")
	}
	if dec.Buffered() != 0 {
		t.Fatalf("buffered whole frames = %d, want 0 (only the carry remains)", dec.Buffered())
	}

	// Phase 2: the rest of the stream from a concurrent writer, in 31-byte
	// chunks (gcd(31,48)=1), so frame boundaries and read boundaries stay
	// misaligned the whole way down.
	done := make(chan error, 1)
	go func() {
		rest := raw[72:]
		for len(rest) > 0 {
			k := 31
			if k > len(rest) {
				k = len(rest)
			}
			if _, err := w.Write(rest[:k]); err != nil {
				done <- err
				return
			}
			rest = rest[k:]
		}
		done <- w.Close()
	}()

	got := 1
	for got < frames {
		n, ok, err := dec.Decode(out[got:])
		if err != nil {
			t.Fatalf("decode after %d frames: %v", got, err)
		}
		got += n
		if !ok {
			break
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("writer: %v", err)
	}
	if got != frames {
		t.Fatalf("decoded %d frames, want %d", got, frames)
	}
	for i := 0; i < got; i++ {
		want := ipc.Message{Op: ipc.OpCounterInc, PID: 9, Arg1: uint64(i), Seq: uint64(i + 1)}
		if out[i] != want {
			t.Fatalf("frame %d = %+v, want %+v", i, out[i], want)
		}
	}
	// Clean EOF on an exhausted stream: no error, no phantom frame.
	n, ok, err = dec.Decode(out[:])
	if n != 0 || ok || err != nil {
		t.Fatalf("EOF decode: n=%d ok=%t err=%v, want 0 false nil", n, ok, err)
	}
}

// TestChaosConnDropTruncatesExactlyMidFrame injects FaultConnDrop on a real
// socketpair: the chaos wrapper writes exactly half a frame and kills the
// transport. The decoder must classify the stream end as a truncation (an
// integrity violation carrying the trailing byte count), not as a clean EOF
// — a silently shortened stream is precisely what fail-closed must catch.
func TestChaosConnDropTruncatesExactlyMidFrame(t *testing.T) {
	w, r := socketpair(t)
	inj := NewInjector(42, WithConnDrop(1))
	cw := inj.Conn(w)

	fw := ipc.NewFrameWriter(cw)
	err := fw.WriteMessage(ipc.Message{Op: ipc.OpCounterInc, PID: 3, Seq: 1})
	if err == nil {
		t.Fatal("chaos-dropped write reported success")
	}

	dec := ipc.NewFrameDecoder(r)
	var out [4]ipc.Message
	n, ok, derr := dec.Decode(out[:])
	if n != 0 || ok {
		t.Fatalf("decode after mid-frame drop: n=%d ok=%t, want 0 false", n, ok)
	}
	var trunc *ipc.TruncatedFrameError
	if !errors.As(derr, &trunc) {
		t.Fatalf("decode error = %v, want TruncatedFrameError", derr)
	}
	if trunc.Trailing != ipc.MessageSize/2 {
		t.Fatalf("trailing = %d, want %d (half a frame)", trunc.Trailing, ipc.MessageSize/2)
	}
	if !errors.Is(derr, ipc.ErrIntegrity) {
		t.Fatal("truncation does not unwrap to ipc.ErrIntegrity")
	}
	if got := inj.Counts().ConnDrops; got != 1 {
		t.Fatalf("conn drops = %d, want 1", got)
	}
}

// TestChaosConnDropAtFrameBoundary injects FaultConnDropBoundary on a real
// socketpair: the chaos wrapper cuts a frame-aligned burst exactly at a frame
// boundary and kills the transport. Unlike the mid-frame drop, the far side's
// decoder must see a clean, carry-free end-of-stream — the loss is invisible
// to framing and only the session layer (lease expiry, CheckSeq gap) can
// catch it. The test first exercises the partial-frame carry over the same
// socket to prove the decoder distinguishes the two endings.
func TestChaosConnDropAtFrameBoundary(t *testing.T) {
	w, r := socketpair(t)
	inj := NewInjector(99, WithConnDropAtBoundary(1))
	cw := inj.Conn(w)
	dec := ipc.NewFrameDecoder(r)

	const frames = 6
	raw := make([]byte, 0, frames*ipc.MessageSize)
	var buf [ipc.MessageSize]byte
	for i := 0; i < frames; i++ {
		m := ipc.Message{Op: ipc.OpCounterInc, PID: 5, Arg1: uint64(i), Seq: uint64(i + 1)}
		m.Encode(buf[:])
		raw = append(raw, buf[:]...)
	}

	// Phase 1: a frame and a half through the RAW socket (bypassing the
	// wrapper, which assumes frame-aligned writes). The decoder must hold
	// the half back as carry — this is the ending the boundary drop must
	// NOT look like.
	if _, err := w.Write(raw[:ipc.MessageSize+ipc.MessageSize/2]); err != nil {
		t.Fatal(err)
	}
	var out [frames]ipc.Message
	n, ok, err := dec.Decode(out[:])
	if err != nil || !ok || n != 1 {
		t.Fatalf("phase 1 decode: n=%d ok=%t err=%v, want 1 true nil", n, ok, err)
	}
	if !dec.Carried() {
		t.Fatal("decoder reports no carry with half a frame buffered")
	}

	// Phase 2: complete the carried frame through the raw socket.
	if _, err := w.Write(raw[ipc.MessageSize+ipc.MessageSize/2 : 2*ipc.MessageSize]); err != nil {
		t.Fatal(err)
	}
	if n, ok, err = dec.Decode(out[1:]); err != nil || !ok || n != 1 {
		t.Fatalf("phase 2 decode: n=%d ok=%t err=%v, want 1 true nil", n, ok, err)
	}

	// Phase 3+4: a 4-frame aligned burst through the chaos wrapper, decoded
	// concurrently (the -race value of a real socketpair). The wrapper lets
	// half the frames (2 of 4) escape, then closes the conn: the writer must
	// see the failure, the reader must drain exactly those 2 frames and then
	// hit a clean, carry-free EOF.
	werr := make(chan error, 1)
	go func() {
		_, err := cw.Write(raw[2*ipc.MessageSize:])
		werr <- err
	}()
	got := 2
	for {
		n, ok, err := dec.Decode(out[got:])
		if err != nil {
			t.Fatalf("decode after %d frames: %v (boundary drop must not surface truncation)", got, err)
		}
		got += n
		if !ok {
			break
		}
	}
	if err := <-werr; err == nil {
		t.Fatal("chaos boundary-dropped write reported success")
	}
	if got != 4 {
		t.Fatalf("decoded %d frames, want 4 (2 clean + 2 of the dropped burst)", got)
	}
	if dec.Carried() {
		t.Fatal("boundary drop left a carry: cut did not land on a frame boundary")
	}
	for i := 0; i < got; i++ {
		want := ipc.Message{Op: ipc.OpCounterInc, PID: 5, Arg1: uint64(i), Seq: uint64(i + 1)}
		if out[i] != want {
			t.Fatalf("frame %d = %+v, want %+v", i, out[i], want)
		}
	}
	if c := inj.Counts(); c.ConnDropBoundaries != 1 || c.ConnDrops != 0 {
		t.Fatalf("counts = %+v, want exactly one boundary drop and no mid-frame drops", c)
	}
}

// TestConnDecisionsDeterministic: the per-connection handshake-abuse
// decisions are a pure function of (seed, stream), and they perturb the
// schedule hash — two runs with one seed agree bit-for-bit, two seeds don't.
func TestConnDecisionsDeterministic(t *testing.T) {
	run := func(seed uint64) (string, uint64) {
		inj := NewInjector(seed, WithDupHello(0.5), WithStaleResume(0.5))
		var pattern []byte
		for i := 0; i < 64; i++ {
			stream := inj.NextStream()
			b := byte('0')
			if inj.DupHello(stream) {
				b |= 1
			}
			if inj.StaleResume(stream) {
				b |= 2
			}
			pattern = append(pattern, b)
		}
		return string(pattern), inj.ScheduleHash()
	}
	p1, h1 := run(7)
	p2, h2 := run(7)
	if p1 != p2 || h1 != h2 {
		t.Fatalf("same seed diverged: %q/%x vs %q/%x", p1, h1, p2, h2)
	}
	p3, h3 := run(8)
	if p1 == p3 && h1 == h3 {
		t.Fatal("different seeds produced identical decision pattern and hash")
	}
	// Both fault classes actually fire at rate 0.5 over 64 connections.
	inj := NewInjector(7, WithDupHello(0.5), WithStaleResume(0.5))
	for i := 0; i < 64; i++ {
		s := inj.NextStream()
		inj.DupHello(s)
		inj.StaleResume(s)
	}
	c := inj.Counts()
	if c.DupHellos == 0 || c.StaleResumes == 0 {
		t.Fatalf("faults never fired at rate 0.5: %+v", c)
	}
}
