// Package chaos is a deterministic fault injector for the HerQules IPC
// plane. It wraps any ipc.Sender / ipc.Receiver pair with composable fault
// stages — message drop, duplication, bounded reordering, payload bit-flip
// corruption, send delay/jitter, receive stall-then-burst, and transient
// send/receive errors — so the verifier→kernel enforcement path can be
// soaked against exactly the failure classes its design claims to survive:
// a dropped or replayed message must surface as a CheckSeq violation
// (§3.1.1), a silent channel must surface as an epoch expiry (§2.2), and a
// transient transport hiccup must be retried rather than degrade anything.
//
// Determinism. Every per-message fault decision is a pure function of
// (seed, stream, message index): the same seed over the same message
// streams yields bit-identical fault schedules, independent of scheduling,
// timing, or how receives batch. Per-call faults (stall-then-burst,
// transient receive errors) necessarily depend on how many RecvBatch calls
// the consumer makes — a timing artifact — so they are decided from a
// separate per-call counter and excluded from the schedule hash.
//
// The injector itself is pure wrapping: code that does not install a
// wrapper pays nothing, and a wrapper whose rates are all zero only pays a
// few predictable branch tests per message.
package chaos

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"herqules/internal/telemetry"
)

// Fault identifies one injectable fault class.
type Fault int

// Fault classes, in schedule-hash encoding order. FaultNone must stay zero:
// a clean message hashes as decision 0.
const (
	FaultNone      Fault = iota
	FaultDrop            // receiver discards the message
	FaultDuplicate       // receiver sees the message twice
	FaultReorder         // message delivered late, within the reorder window
	FaultCorrupt         // one payload bit flipped before delivery
	FaultDelay           // sender sleeps before the send
	FaultSendErr         // Send returns a transient error (message not sent)
	FaultRecvErr         // RecvBatch returns a transient error (per call)
	FaultStall           // RecvBatch stalls, then delivers the backlog burst

	// Connection-level faults for the networked attestation plane
	// (internal/hqnet): they act on a net.Conn wrapper rather than on a
	// Sender/Receiver pair.
	FaultConnDrop         // transport dies mid-frame: half a frame written, then closed
	FaultConnDropBoundary // transport dies exactly at a frame boundary: whole frames, then closed
	FaultConnStall        // one write stalls (a frozen network path)
	FaultDupHello         // per connection: client sends a duplicate HELLO (protocol abuse)
	FaultStaleResume      // per connection: client resumes with a forged/stale token
	numFaults
)

var faultNames = [...]string{
	FaultNone:             "none",
	FaultDrop:             "drop",
	FaultDuplicate:        "duplicate",
	FaultReorder:          "reorder",
	FaultCorrupt:          "corrupt",
	FaultDelay:            "delay",
	FaultSendErr:          "send-err",
	FaultRecvErr:          "recv-err",
	FaultStall:            "stall",
	FaultConnDrop:         "conn-drop",
	FaultConnDropBoundary: "conn-drop-boundary",
	FaultConnStall:        "conn-stall",
	FaultDupHello:         "dup-hello",
	FaultStaleResume:      "stale-resume",
}

func (f Fault) String() string {
	if int(f) < len(faultNames) {
		return faultNames[f]
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// Counts is a snapshot of how many times each fault actually fired.
type Counts struct {
	Dropped    uint64 `json:"dropped"`
	Duplicated uint64 `json:"duplicated"`
	Reordered  uint64 `json:"reordered"`
	Corrupted  uint64 `json:"corrupted"`
	Delayed    uint64 `json:"delayed"`
	SendErrors uint64 `json:"send_errors"`
	RecvErrors uint64 `json:"recv_errors"`
	Stalls     uint64 `json:"stalls"`

	// Connection-level faults (networked attestation plane).
	ConnDrops          uint64 `json:"conn_drops"`
	ConnDropBoundaries uint64 `json:"conn_drop_boundaries"`
	ConnStalls         uint64 `json:"conn_stalls"`
	DupHellos          uint64 `json:"dup_hellos"`
	StaleResumes       uint64 `json:"stale_resumes"`
}

// Total sums every fired fault.
func (c Counts) Total() uint64 {
	return c.Dropped + c.Duplicated + c.Reordered + c.Corrupted +
		c.Delayed + c.SendErrors + c.RecvErrors + c.Stalls +
		c.ConnDrops + c.ConnDropBoundaries + c.ConnStalls + c.DupHellos + c.StaleResumes
}

func (c Counts) String() string {
	return fmt.Sprintf("drop=%d dup=%d reorder=%d corrupt=%d delay=%d senderr=%d recverr=%d stall=%d conndrop=%d conndropbound=%d connstall=%d duphello=%d staleresume=%d",
		c.Dropped, c.Duplicated, c.Reordered, c.Corrupted,
		c.Delayed, c.SendErrors, c.RecvErrors, c.Stalls,
		c.ConnDrops, c.ConnDropBoundaries, c.ConnStalls, c.DupHellos, c.StaleResumes)
}

// config holds the per-fault rates and parameters. Rates are probabilities
// in [0, 1], evaluated deterministically per message (or per call for the
// call-scoped faults).
type config struct {
	drop      float64
	duplicate float64
	reorder   float64
	window    int // max messages a reordered message may be held back
	corrupt   float64
	delay     float64
	maxDelay  time.Duration
	sendErr   float64
	recvErr   float64
	stall     float64
	stallFor  time.Duration

	connDrop         float64
	connDropBoundary float64
	connStall        float64
	connStallFor     time.Duration
	dupHello         float64
	staleResume      float64
}

// Option configures an Injector.
type Option func(*config)

// WithDrop discards each received message with probability rate. Dropped
// messages leave a sequence gap the verifier must flag (§3.1.1).
func WithDrop(rate float64) Option { return func(c *config) { c.drop = clampRate(rate) } }

// WithDuplicate delivers each received message twice with probability rate.
// The duplicate carries the identical sequence number, so CheckSeq must
// classify it as a duplicate, not a gap.
func WithDuplicate(rate float64) Option {
	return func(c *config) { c.duplicate = clampRate(rate) }
}

// WithReorder holds each received message back with probability rate,
// releasing it after up to window subsequent messages have been delivered.
// A released message arrives with a stale sequence number — a
// replay/reorder violation.
func WithReorder(rate float64, window int) Option {
	return func(c *config) {
		c.reorder = clampRate(rate)
		if window < 1 {
			window = 1
		}
		c.window = window
	}
}

// WithCorrupt flips one deterministically chosen bit in each received
// message's payload (Arg1/Arg2/Arg3/Seq) with probability rate.
func WithCorrupt(rate float64) Option { return func(c *config) { c.corrupt = clampRate(rate) } }

// WithDelay sleeps up to max before a send with probability rate, modelling
// scheduling jitter on the producer side.
func WithDelay(rate float64, max time.Duration) Option {
	return func(c *config) {
		c.delay = clampRate(rate)
		if max <= 0 {
			max = time.Millisecond
		}
		c.maxDelay = max
	}
}

// WithTransientSendErrors fails each Send with an ipc.Transient error with
// probability rate. The message is not sent; a correct producer retries
// (ipc.SendWithRetry) and no sequence number is consumed.
func WithTransientSendErrors(rate float64) Option {
	return func(c *config) { c.sendErr = clampRate(rate) }
}

// WithTransientRecvErrors fails each RecvBatch call with an ipc.Transient
// error with probability rate, exercising the pump's bounded retry path.
// Call-scoped: excluded from the schedule hash.
func WithTransientRecvErrors(rate float64) Option {
	return func(c *config) { c.recvErr = clampRate(rate) }
}

// WithStall makes each RecvBatch call, with probability rate, sleep for d
// before reading — the backlog then arrives as one burst. Call-scoped:
// excluded from the schedule hash.
func WithStall(rate float64, d time.Duration) Option {
	return func(c *config) {
		c.stall = clampRate(rate)
		if d <= 0 {
			d = time.Millisecond
		}
		c.stallFor = d
	}
}

// WithConnDrop kills a wrapped connection mid-frame with probability rate,
// evaluated per written frame: half the frame's bytes go out, then the
// transport closes. The far side observes a truncated frame — on the local
// fd channels a terminal integrity violation, on the networked plane a
// severed connection the client must survive by resuming. Call-scoped
// against the transport write sequence: excluded from the schedule hash.
func WithConnDrop(rate float64) Option {
	return func(c *config) { c.connDrop = clampRate(rate) }
}

// WithConnDropAtBoundary kills a wrapped connection exactly at a frame
// boundary with probability rate, evaluated per write: half the frames of
// the write (rounded down to a whole frame) go out, then the transport
// closes. Unlike the mid-frame drop this truncation is INVISIBLE to the
// framing layer — the far side's decoder observes a clean end-of-stream with
// no carry and no integrity error — so the loss can only be caught above
// framing: by the session lease (the sender goes silent) or by CheckSeq (the
// surviving stream has a sequence gap). Call-scoped against the transport
// write sequence: excluded from the schedule hash.
func WithConnDropAtBoundary(rate float64) Option {
	return func(c *config) { c.connDropBoundary = clampRate(rate) }
}

// WithConnStall freezes a wrapped connection's write for d with probability
// rate, modelling a stalled network path. A stall that outlives the
// session lease must surface as a fail-closed lease kill, never as an
// unattributed hang. Call-scoped: excluded from the schedule hash.
func WithConnStall(rate float64, d time.Duration) Option {
	return func(c *config) {
		c.connStall = clampRate(rate)
		if d <= 0 {
			d = time.Millisecond
		}
		c.connStallFor = d
	}
}

// WithDupHello makes a chaos-driven client, with probability rate per
// connection, send a second HELLO after admission — a protocol violation
// the daemon must answer by severing the transport (and letting the lease
// dispose of the process), not by corrupting any session state.
// Per-connection: folded into the schedule hash.
func WithDupHello(rate float64) Option {
	return func(c *config) { c.dupHello = clampRate(rate) }
}

// WithStaleResume makes a chaos-driven client, with probability rate per
// connection, attempt a resume with a forged token before its real
// handshake. The daemon must reject it without touching any live session.
// Per-connection: folded into the schedule hash.
func WithStaleResume(rate float64) Option {
	return func(c *config) { c.staleResume = clampRate(rate) }
}

func clampRate(r float64) float64 {
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// errInjected is the root cause carried by injected transient errors.
var errInjected = errors.New("chaos: injected fault")

// Injector derives deterministic fault schedules from one seed and hands out
// Sender/Receiver wrappers that apply them. One Injector may wrap any number
// of channels; each wrapper gets its own stream identifier in creation
// order, so a fixed seed plus a fixed wrapping order reproduces the exact
// schedule regardless of runtime interleaving.
type Injector struct {
	seed uint64
	cfg  config

	streams atomic.Uint64 // next stream id
	hash    atomic.Uint64 // XOR-combined FNV-1a of per-message decisions

	dropped    atomic.Uint64
	duplicated atomic.Uint64
	reordered  atomic.Uint64
	corrupted  atomic.Uint64
	delayed    atomic.Uint64
	sendErrs   atomic.Uint64
	recvErrs   atomic.Uint64
	stalls     atomic.Uint64

	connDrops          atomic.Uint64
	connDropBoundaries atomic.Uint64
	connStalls         atomic.Uint64
	dupHellos          atomic.Uint64
	staleResumes       atomic.Uint64

	tm *chaosMetrics
}

type chaosMetrics struct {
	dropped    *telemetry.Counter
	duplicated *telemetry.Counter
	reordered  *telemetry.Counter
	corrupted  *telemetry.Counter
	delayed    *telemetry.Counter
	sendErrs   *telemetry.Counter
	recvErrs   *telemetry.Counter
	stalls     *telemetry.Counter

	connDrops          *telemetry.Counter
	connDropBoundaries *telemetry.Counter
	connStalls         *telemetry.Counter
	dupHellos          *telemetry.Counter
	staleResumes       *telemetry.Counter
}

// NewInjector builds an injector for seed with the given fault options.
func NewInjector(seed uint64, opts ...Option) *Injector {
	inj := &Injector{seed: seed}
	for _, o := range opts {
		o(&inj.cfg)
	}
	return inj
}

// Seed reports the injector's seed.
func (inj *Injector) Seed() uint64 { return inj.seed }

// EnableTelemetry mirrors the fault counters into a metrics registry under
// chaos.* names. Call before wrapping channels that will be used
// concurrently.
func (inj *Injector) EnableTelemetry(m *telemetry.Metrics) {
	inj.tm = &chaosMetrics{
		dropped:    m.Counter("chaos.dropped"),
		duplicated: m.Counter("chaos.duplicated"),
		reordered:  m.Counter("chaos.reordered"),
		corrupted:  m.Counter("chaos.corrupted"),
		delayed:    m.Counter("chaos.delayed"),
		sendErrs:   m.Counter("chaos.send_errors"),
		recvErrs:   m.Counter("chaos.recv_errors"),
		stalls:     m.Counter("chaos.stalls"),

		connDrops:          m.Counter("chaos.conn_drops"),
		connDropBoundaries: m.Counter("chaos.conn_drop_boundaries"),
		connStalls:         m.Counter("chaos.conn_stalls"),
		dupHellos:          m.Counter("chaos.dup_hellos"),
		staleResumes:       m.Counter("chaos.stale_resumes"),
	}
}

// Counts snapshots how many faults have fired so far.
func (inj *Injector) Counts() Counts {
	return Counts{
		Dropped:    inj.dropped.Load(),
		Duplicated: inj.duplicated.Load(),
		Reordered:  inj.reordered.Load(),
		Corrupted:  inj.corrupted.Load(),
		Delayed:    inj.delayed.Load(),
		SendErrors: inj.sendErrs.Load(),
		RecvErrors: inj.recvErrs.Load(),
		Stalls:     inj.stalls.Load(),

		ConnDrops:          inj.connDrops.Load(),
		ConnDropBoundaries: inj.connDropBoundaries.Load(),
		ConnStalls:         inj.connStalls.Load(),
		DupHellos:          inj.dupHellos.Load(),
		StaleResumes:       inj.staleResumes.Load(),
	}
}

func (inj *Injector) count(f Fault) {
	switch f {
	case FaultDrop:
		inj.dropped.Add(1)
		if inj.tm != nil {
			inj.tm.dropped.Inc()
		}
	case FaultDuplicate:
		inj.duplicated.Add(1)
		if inj.tm != nil {
			inj.tm.duplicated.Inc()
		}
	case FaultReorder:
		inj.reordered.Add(1)
		if inj.tm != nil {
			inj.tm.reordered.Inc()
		}
	case FaultCorrupt:
		inj.corrupted.Add(1)
		if inj.tm != nil {
			inj.tm.corrupted.Inc()
		}
	case FaultDelay:
		inj.delayed.Add(1)
		if inj.tm != nil {
			inj.tm.delayed.Inc()
		}
	case FaultSendErr:
		inj.sendErrs.Add(1)
		if inj.tm != nil {
			inj.tm.sendErrs.Inc()
		}
	case FaultRecvErr:
		inj.recvErrs.Add(1)
		if inj.tm != nil {
			inj.tm.recvErrs.Inc()
		}
	case FaultStall:
		inj.stalls.Add(1)
		if inj.tm != nil {
			inj.tm.stalls.Inc()
		}
	case FaultConnDrop:
		inj.connDrops.Add(1)
		if inj.tm != nil {
			inj.tm.connDrops.Inc()
		}
	case FaultConnDropBoundary:
		inj.connDropBoundaries.Add(1)
		if inj.tm != nil {
			inj.tm.connDropBoundaries.Inc()
		}
	case FaultConnStall:
		inj.connStalls.Add(1)
		if inj.tm != nil {
			inj.tm.connStalls.Inc()
		}
	case FaultDupHello:
		inj.dupHellos.Add(1)
		if inj.tm != nil {
			inj.tm.dupHellos.Inc()
		}
	case FaultStaleResume:
		inj.staleResumes.Add(1)
		if inj.tm != nil {
			inj.tm.staleResumes.Inc()
		}
	}
}

// ScheduleHash digests every per-message fault decision taken so far:
// FNV-1a over (stream, index, decision) records, XOR-combined so the digest
// is independent of goroutine interleaving. Two runs with the same seed,
// wrapping order, and message streams produce the same hash even when their
// timing differs; call-scoped faults (stall, transient receive errors) are
// deliberately outside the digest.
func (inj *Injector) ScheduleHash() uint64 { return inj.hash.Load() }

// recordDecision folds one per-message decision into the schedule hash.
// Decision 0 (clean) is folded too: a message that was *eligible* for
// faults but drew none is part of the schedule.
func (inj *Injector) recordDecision(stream, idx uint64, f Fault) {
	h := fnv1a(stream, idx, uint64(f))
	for {
		old := inj.hash.Load()
		if inj.hash.CompareAndSwap(old, old^h) {
			return
		}
	}
}

// fnv1a hashes the three words with 64-bit FNV-1a, byte by byte.
func fnv1a(a, b, c uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, w := range [3]uint64{a, b, c} {
		for i := 0; i < 8; i++ {
			h ^= (w >> (8 * i)) & 0xff
			h *= prime
		}
	}
	return h
}

// splitmix64 is the counter-PRNG core: a bijective mixer good enough that
// consecutive counters produce independent-looking draws (Steele et al.,
// "Fast splittable pseudorandom number generators").
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw produces the deterministic random word for fault f on message idx of
// stream. Each (fault, stream) pair gets its own counter sequence, so the
// per-fault decisions are mutually independent.
func (inj *Injector) draw(f Fault, stream, idx uint64) uint64 {
	return splitmix64(inj.seed ^
		stream*0xd1b54a32d192ed03 ^
		uint64(f)*0x2545f4914f6cdd1d ^
		splitmix64(idx))
}

// hit converts a draw into a biased coin with probability rate.
func hit(r uint64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	// Top 53 bits → uniform float64 in [0, 1).
	return float64(r>>11)/(1<<53) < rate
}
