package chaos

import (
	"fmt"
	"time"

	"herqules/internal/ipc"
)

// heldMsg is a message the reorder stage is holding back. releaseAt is the
// source index after which it re-enters the stream.
type heldMsg struct {
	m         ipc.Message
	releaseAt uint64
}

// faultReceiver applies consumer-side faults — drop, duplication, bounded
// reorder, payload corruption, stall-then-burst, and transient receive
// errors — around a wrapped receiver. All integrity-violating faults live
// here rather than in the sender because the backends assign sequence
// numbers inside Send: only a message that already carries its Seq can be
// dropped, replayed, or corrupted in a way the verifier's CheckSeq and
// policy checks are able to (and must) detect.
//
// Like every receiver in the ipc package, a faultReceiver supports one
// concurrent consumer.
type faultReceiver struct {
	inj    *Injector
	r      ipc.Receiver
	stream uint64

	idx     uint64 // source messages consumed from r
	calls   uint64 // RecvBatch/Recv calls made by the consumer
	pending []ipc.Message
	held    []heldMsg
	buf     []ipc.Message
	srcDone bool
	srcErr  error // terminal error from r, delivered once after pending drains
}

// Receiver wraps r with the injector's consumer-side faults. The wrapper
// implements BatchReceiver; scalar Recv is served from the same faulted
// stream.
func (inj *Injector) Receiver(r ipc.Receiver) ipc.Receiver {
	return &faultReceiver{inj: inj, r: r, stream: inj.streams.Add(1)}
}

func (fr *faultReceiver) Recv() (ipc.Message, bool, error) {
	var one [1]ipc.Message
	n, ok, err := fr.RecvBatch(one[:])
	if n == 0 {
		// n==0 carries either an injected transient receive error (ok is
		// true, the stream continues — err tells the caller to retry) or
		// closed-and-drained / the source's terminal error. Either way the
		// error, not ok, is what the consumer must act on first.
		return ipc.Message{}, ok && err != nil, err
	}
	return one[0], true, err
}

// exhausted reports whether the faulted stream has nothing left to deliver.
func (fr *faultReceiver) exhausted() bool {
	return fr.srcDone && len(fr.pending) == 0 && len(fr.held) == 0
}

// RecvBatch implements ipc.BatchReceiver over the faulted stream.
func (fr *faultReceiver) RecvBatch(out []ipc.Message) (int, bool, error) {
	if len(out) == 0 {
		return 0, true, nil
	}
	inj := fr.inj

	// Call-scoped faults fire before any receive work. They are decided
	// from the call counter, not the message index: how many calls a
	// consumer makes is a timing artifact, which is also why these
	// decisions stay out of the schedule hash.
	if !fr.exhausted() {
		c := fr.calls
		fr.calls++
		if hit(inj.draw(FaultRecvErr, fr.stream, c), inj.cfg.recvErr) {
			inj.count(FaultRecvErr)
			return 0, true, ipc.Transient(fmt.Errorf("%w: recv call %d refused", errInjected, c))
		}
		if hit(inj.draw(FaultStall, fr.stream, c), inj.cfg.stall) {
			// Stall-then-burst: go silent while the producer keeps writing;
			// the backlog then lands on the verifier as one burst.
			inj.count(FaultStall)
			time.Sleep(inj.cfg.stallFor)
		}
	}

	for len(fr.pending) == 0 && !fr.srcDone {
		fr.pull(len(out))
	}
	n := copy(out, fr.pending)
	fr.pending = fr.pending[:copy(fr.pending, fr.pending[n:])]
	if n == 0 && fr.srcDone {
		err := fr.srcErr
		fr.srcErr = nil // deliver a terminal source error exactly once
		return 0, false, err
	}
	return n, true, nil
}

// pull reads one burst from the source and runs every message through the
// per-message fault stages, appending survivors (and duplicates, and
// released held messages) to pending.
func (fr *faultReceiver) pull(want int) {
	if cap(fr.buf) == 0 {
		if want < 64 {
			want = 64
		}
		fr.buf = make([]ipc.Message, want)
	}
	n, ok, err := ipc.RecvBatchFrom(fr.r, fr.buf)
	inj := fr.inj
	cfg := &inj.cfg
	for _, m := range fr.buf[:n] {
		i := fr.idx
		fr.idx++
		// One fault per message, first match wins; the decision (including
		// "none") is part of the deterministic schedule.
		switch {
		case hit(inj.draw(FaultDrop, fr.stream, i), cfg.drop):
			inj.count(FaultDrop)
			inj.recordDecision(fr.stream, i, FaultDrop)
		case hit(inj.draw(FaultDuplicate, fr.stream, i), cfg.duplicate):
			inj.count(FaultDuplicate)
			inj.recordDecision(fr.stream, i, FaultDuplicate)
			fr.pending = append(fr.pending, m, m)
		case hit(inj.draw(FaultCorrupt, fr.stream, i), cfg.corrupt):
			inj.count(FaultCorrupt)
			inj.recordDecision(fr.stream, i, FaultCorrupt)
			fr.pending = append(fr.pending, corrupt(m, inj.draw(FaultNone, fr.stream, i)))
		case hit(inj.draw(FaultReorder, fr.stream, i), cfg.reorder):
			inj.count(FaultReorder)
			inj.recordDecision(fr.stream, i, FaultReorder)
			release := i + 1 + inj.draw(FaultNone, fr.stream, i)%uint64(cfg.window)
			fr.held = append(fr.held, heldMsg{m: m, releaseAt: release})
		default:
			inj.recordDecision(fr.stream, i, FaultNone)
			fr.pending = append(fr.pending, m)
		}
		fr.release(fr.idx)
	}
	if err != nil {
		// Messages alongside the error were processed above (the
		// BatchReceiver contract says they are valid); the error itself is
		// terminal for the source, so flush held messages and surface it
		// once pending drains.
		fr.srcErr = err
		fr.srcDone = true
		fr.flushHeld()
		return
	}
	if !ok {
		fr.srcDone = true
		fr.flushHeld()
	}
}

// release appends every held message whose window has elapsed.
func (fr *faultReceiver) release(now uint64) {
	kept := fr.held[:0]
	for _, h := range fr.held {
		if h.releaseAt <= now {
			fr.pending = append(fr.pending, h.m)
		} else {
			kept = append(kept, h)
		}
	}
	fr.held = kept
}

// flushHeld releases everything still held at stream end: a reordered
// message is delayed, never silently dropped (that would be FaultDrop with
// extra steps, and would double-count in Counts).
func (fr *faultReceiver) flushHeld() {
	for _, h := range fr.held {
		fr.pending = append(fr.pending, h.m)
	}
	fr.held = fr.held[:0]
}

// corrupt flips one bit — chosen by r — in the message payload. The Seq
// field is one of the corruptible words: a flipped sequence number is the
// corruption CheckSeq is guaranteed to see, while a flipped argument
// surfaces (if at all) as a policy-check failure.
func corrupt(m ipc.Message, r uint64) ipc.Message {
	bit := uint64(1) << ((r >> 2) % 64)
	switch r % 4 {
	case 0:
		m.Arg1 ^= bit
	case 1:
		m.Arg2 ^= bit
	case 2:
		m.Arg3 ^= bit
	default:
		m.Seq ^= bit
	}
	return m
}

// Pending implements ipc.Pender: the backend's queue plus everything the
// injector is holding (pending delivery or reorder-held).
func (fr *faultReceiver) Pending() int {
	n, _ := ipc.PendingOf(fr.r)
	return n + len(fr.pending) + len(fr.held)
}

var (
	_ ipc.Receiver      = (*faultReceiver)(nil)
	_ ipc.BatchReceiver = (*faultReceiver)(nil)
	_ ipc.Pender        = (*faultReceiver)(nil)
)
