package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func mustMap(t *testing.T, m *Memory, addr, size uint64, perm Perm) {
	t.Helper()
	if err := m.Map(addr, size, perm); err != nil {
		t.Fatalf("Map(%#x, %#x): %v", addr, size, err)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, 2*PageSize, Read|Write)
	data := []byte("herqules")
	if err := m.Write(0x1800, data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, len(data))
	if err := m.Read(0x1800, got); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if string(got) != string(data) {
		t.Errorf("Read = %q, want %q", got, data)
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, 2*PageSize, Read|Write)
	// Write spanning the page boundary at 0x2000.
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i)
	}
	addr := uint64(0x2000 - 50)
	if err := m.Write(addr, data); err != nil {
		t.Fatalf("cross-page Write: %v", err)
	}
	got := make([]byte, 100)
	if err := m.Read(addr, got); err != nil {
		t.Fatalf("cross-page Read: %v", err)
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("byte %d: got %d, want %d", i, got[i], i)
		}
	}
}

func TestUnmappedFault(t *testing.T) {
	m := New()
	err := m.Read(0x5000, make([]byte, 8))
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultUnmapped {
		t.Errorf("Read unmapped: err=%v, want unmapped fault", err)
	}
}

func TestWriteToReadOnlyFaults(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, Read)
	err := m.Write(0x1000, []byte{1})
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultPerm {
		t.Errorf("Write to read-only: err=%v, want protection fault", err)
	}
	// Reads still work.
	if err := m.Read(0x1000, make([]byte, 4)); err != nil {
		t.Errorf("Read from read-only: %v", err)
	}
}

func TestWriteStopsAtSegmentBoundary(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, Read|Write)
	mustMap(t, m, 0x2000, PageSize, Read) // adjacent read-only (guard-like)
	// A write straddling into the read-only page must fault entirely.
	err := m.Write(0x2000-4, make([]byte, 8))
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultPerm {
		t.Fatalf("straddling write: err=%v, want protection fault", err)
	}
	// And must not have partially committed.
	got := make([]byte, 4)
	if err := m.Read(0x2000-4, got); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Error("partial write committed before fault")
		}
	}
}

func TestAppendOnlyRegionRejectsOrdinaryWrites(t *testing.T) {
	m := New()
	mustMap(t, m, 0x10000, PageSize, Read|Append)
	// Ordinary write is rejected by the MMU (§2.3.2)...
	if err := m.Write(0x10000, []byte{1}); err == nil {
		t.Error("ordinary write to AMR succeeded")
	}
	// ...even if Write permission is also present.
	if err := m.Protect(0x10000, PageSize, Read|Write|Append); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(0x10000, []byte{1}); err == nil {
		t.Error("ordinary write to AMR with Write perm succeeded")
	}
	// AppendWrite is allowed.
	if err := m.AppendWrite(0x10000, []byte{0xaa}); err != nil {
		t.Errorf("AppendWrite to AMR: %v", err)
	}
	b, err := m.LoadByte(0x10000)
	if err != nil || b != 0xaa {
		t.Errorf("ReadByte after AppendWrite: %v %v", b, err)
	}
	// AppendWrite to a normal page is rejected.
	mustMap(t, m, 0x20000, PageSize, Read|Write)
	if err := m.AppendWrite(0x20000, []byte{1}); err == nil {
		t.Error("AppendWrite outside AMR succeeded")
	}
}

func TestProtectAndUnmap(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, Read|Write)
	if err := m.Protect(0x1000, PageSize, Read); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(0x1000, []byte{1}); err == nil {
		t.Error("write succeeded after Protect removed Write")
	}
	m.Unmap(0x1000, PageSize)
	if err := m.Read(0x1000, make([]byte, 1)); err == nil {
		t.Error("read succeeded after Unmap")
	}
	if err := m.Protect(0x1000, PageSize, Read); err == nil {
		t.Error("Protect of unmapped page succeeded")
	}
}

func TestDoubleMapFails(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, Read)
	if err := m.Map(0x1000, PageSize, Read); err == nil {
		t.Error("double Map succeeded")
	}
	if err := m.Map(0, 0, Read); err == nil {
		t.Error("zero-size Map succeeded")
	}
}

func TestWordAccessors(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, Read|Write)
	if err := m.WriteWord(0x1008, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadWord(0x1008)
	if err != nil || v != 0x1122334455667788 {
		t.Errorf("ReadWord = %#x, %v", v, err)
	}
	// Verify little-endian layout.
	b, _ := m.LoadByte(0x1008)
	if b != 0x88 {
		t.Errorf("low byte = %#x, want 0x88 (little-endian)", b)
	}
}

func TestWordRoundTripProperty(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, Read|Write)
	f := func(off uint16, v uint64) bool {
		addr := 0x1000 + uint64(off)%(PageSize-8)
		if err := m.WriteWord(addr, v); err != nil {
			return false
		}
		got, err := m.ReadWord(addr)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemmoveOverlap(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, Read|Write)
	src := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := m.Write(0x1000, src); err != nil {
		t.Fatal(err)
	}
	if err := m.Memmove(0x1002, 0x1000, 8); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 10)
	if err := m.Read(0x1000, got); err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 2, 1, 2, 3, 4, 5, 6, 7, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("overlap copy: got %v, want %v", got, want)
		}
	}
}

func TestMemset(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, Read|Write)
	if err := m.Memset(0x1010, 0x5a, 32); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 32)
	m.Read(0x1010, got)
	for _, b := range got {
		if b != 0x5a {
			t.Fatal("Memset did not fill")
		}
	}
}

func TestMappedRangesCoalesce(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, 2*PageSize, Read|Write)
	mustMap(t, m, 0x3000, PageSize, Read|Write) // adjacent, same perm
	mustMap(t, m, 0x5000, PageSize, Read)       // gap, different perm
	rs := m.MappedRanges()
	if len(rs) != 2 {
		t.Fatalf("MappedRanges = %v, want 2 ranges", rs)
	}
	if rs[0].Start != 0x1000 || rs[0].End != 0x4000 {
		t.Errorf("range 0 = %v", rs[0])
	}
	if rs[1].Start != 0x5000 || rs[1].Perm != Read {
		t.Errorf("range 1 = %v", rs[1])
	}
}

func newTestAllocator(t *testing.T) *Allocator {
	t.Helper()
	m := New()
	mustMap(t, m, 0x100000, 64*PageSize, Read|Write)
	return NewAllocator(m, 0x100000, 64*PageSize)
}

func TestMallocFreeBasics(t *testing.T) {
	a := newTestAllocator(t)
	p1, err := a.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.Malloc(200)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("overlapping allocations")
	}
	if p1%allocAlign != 0 || p2%allocAlign != 0 {
		t.Error("allocations not 16-byte aligned")
	}
	if sz, ok := a.SizeOf(p1); !ok || sz < 100 {
		t.Errorf("SizeOf(p1) = %d, %t", sz, ok)
	}
	if a.LiveCount() != 2 {
		t.Errorf("LiveCount = %d, want 2", a.LiveCount())
	}
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p2); err != nil {
		t.Fatal(err)
	}
	if a.LiveBytes() != 0 {
		t.Errorf("LiveBytes = %d after freeing all", a.LiveBytes())
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	a := newTestAllocator(t)
	p, _ := a.Malloc(64)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); !errors.Is(err, ErrInvalidFree) {
		t.Errorf("double free: err=%v, want ErrInvalidFree", err)
	}
	if err := a.Free(0xdead0); !errors.Is(err, ErrInvalidFree) {
		t.Errorf("wild free: err=%v, want ErrInvalidFree", err)
	}
}

func TestFreeReusesMemory(t *testing.T) {
	// First-fit with coalescing must reuse a freed chunk — this is what
	// makes use-after-free bugs observable.
	a := newTestAllocator(t)
	p1, _ := a.Malloc(64)
	a.Free(p1)
	p2, _ := a.Malloc(64)
	if p1 != p2 {
		t.Errorf("freed chunk not reused: %#x then %#x", p1, p2)
	}
}

func TestCoalescingPreventsFragmentationExhaustion(t *testing.T) {
	a := newTestAllocator(t)
	var ps []uint64
	for i := 0; i < 100; i++ {
		p, err := a.Malloc(1024)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	for _, p := range ps {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	// After freeing everything, a single allocation of nearly the whole
	// heap must succeed — only possible if chunks coalesced.
	if _, err := a.Malloc(60 * PageSize); err != nil {
		t.Errorf("large Malloc after free-all: %v", err)
	}
}

func TestReallocGrowPreservesContent(t *testing.T) {
	a := newTestAllocator(t)
	p, _ := a.Malloc(32)
	a.mem.Write(p, []byte("payload"))
	// Force a move by allocating a blocker right after.
	blocker, _ := a.Malloc(32)
	np, err := a.Realloc(p, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if np == p {
		t.Error("Realloc did not move despite blocker")
	}
	got := make([]byte, 7)
	a.mem.Read(np, got)
	if string(got) != "payload" {
		t.Errorf("content after realloc = %q", got)
	}
	if _, ok := a.SizeOf(p); ok {
		t.Error("old allocation still live after realloc move")
	}
	_ = blocker
	if _, err := a.Realloc(0xbad0, 10); !errors.Is(err, ErrInvalidFree) {
		t.Errorf("realloc of wild pointer: %v", err)
	}
}

func TestReallocShrinkInPlace(t *testing.T) {
	a := newTestAllocator(t)
	p, _ := a.Malloc(1024)
	np, err := a.Realloc(p, 16)
	if err != nil || np != p {
		t.Errorf("shrink: np=%#x err=%v, want in-place", np, err)
	}
}

func TestMallocExhaustion(t *testing.T) {
	a := newTestAllocator(t)
	if _, err := a.Malloc(1 << 40); !errors.Is(err, ErrOOM) {
		t.Errorf("huge Malloc: err=%v, want ErrOOM", err)
	}
}

func TestContains(t *testing.T) {
	a := newTestAllocator(t)
	p, _ := a.Malloc(64)
	if base, ok := a.Contains(p + 10); !ok || base != p {
		t.Errorf("Contains(p+10) = %#x, %t", base, ok)
	}
	if _, ok := a.Contains(p + 1<<30); ok {
		t.Error("Contains reported a wild address as live")
	}
}

func TestAllocatorInvariantProperty(t *testing.T) {
	// Property: after any sequence of mallocs and frees, live allocations
	// never overlap and always lie within the heap segment.
	f := func(ops []uint16) bool {
		m := New()
		if err := m.Map(0x100000, 16*PageSize, Read|Write); err != nil {
			return false
		}
		a := NewAllocator(m, 0x100000, 16*PageSize)
		var livePtrs []uint64
		for _, op := range ops {
			if op%3 == 0 && len(livePtrs) > 0 {
				i := int(op) % len(livePtrs)
				if a.Free(livePtrs[i]) != nil {
					return false
				}
				livePtrs = append(livePtrs[:i], livePtrs[i+1:]...)
			} else {
				size := uint64(op%500) + 1
				p, err := a.Malloc(size)
				if err != nil {
					continue // heap full is fine
				}
				if p < 0x100000 || p+size > 0x100000+16*PageSize {
					return false
				}
				livePtrs = append(livePtrs, p)
			}
		}
		// Check pairwise disjointness.
		for i, p := range livePtrs {
			szI, _ := a.SizeOf(p)
			for j, q := range livePtrs {
				if i == j {
					continue
				}
				szJ, _ := a.SizeOf(q)
				if p < q+szJ && q < p+szI {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
