// Package mem implements the byte-addressable, paged virtual memory that the
// MIR virtual machine (package vm) executes against. It reproduces the parts
// of a process address space that matter to the paper's threat model (§2.1):
// page-granularity protections (so read-only code and guard pages behave
// correctly), distinct segments (code, data, BSS, heap, stacks, and the
// hidden "safe" regions used by safe-stack and CPI designs), and a heap
// allocator whose bugs — overflow, use-after-free, double free — can actually
// corrupt neighbouring memory.
package mem

import (
	"fmt"
	"sort"
)

// PageSize is the granularity of protection, matching a 4 KiB x86-64 page.
const PageSize = 4096

// Perm is a page-permission bit set.
type Perm uint8

// Permission bits.
const (
	Read  Perm = 1 << iota // page may be read
	Write                  // page may be written
	Exec                   // page may be executed
	// Append marks an appendable memory region (AMR, §2.3.2): the MMU
	// rejects ordinary unprivileged writes; only the AppendWrite
	// instruction may store to these pages.
	Append
)

func (p Perm) String() string {
	b := []byte("----")
	if p&Read != 0 {
		b[0] = 'r'
	}
	if p&Write != 0 {
		b[1] = 'w'
	}
	if p&Exec != 0 {
		b[2] = 'x'
	}
	if p&Append != 0 {
		b[3] = 'a'
	}
	return string(b)
}

// FaultKind classifies a memory fault.
type FaultKind int

// Fault kinds.
const (
	FaultUnmapped FaultKind = iota // no page mapped at the address
	FaultPerm                      // page mapped without the required permission
)

func (k FaultKind) String() string {
	switch k {
	case FaultUnmapped:
		return "unmapped"
	case FaultPerm:
		return "protection"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// Fault is the error returned for an invalid access. It mirrors a hardware
// page fault: the VM turns unhandled faults into a crash of the monitored
// program (a SIGSEGV analogue).
type Fault struct {
	Addr uint64
	Kind FaultKind
	Need Perm
}

func (f *Fault) Error() string {
	return fmt.Sprintf("mem: %s fault at %#x (need %s)", f.Kind, f.Addr, f.Need)
}

// page is one mapped page: permissions plus backing bytes.
type page struct {
	perm Perm
	data [PageSize]byte
}

// Memory is a sparse paged address space.
type Memory struct {
	pages map[uint64]*page
}

// New creates an empty address space.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

// Map maps [addr, addr+size) with the given permissions. Both bounds are
// rounded outward to page boundaries. Mapping over an existing page fails:
// segments are laid out disjointly by the loader.
func (m *Memory) Map(addr, size uint64, perm Perm) error {
	if size == 0 {
		return fmt.Errorf("mem: zero-size mapping at %#x", addr)
	}
	start := addr &^ (PageSize - 1)
	end := (addr + size + PageSize - 1) &^ (PageSize - 1)
	for p := start; p < end; p += PageSize {
		if _, ok := m.pages[p]; ok {
			return fmt.Errorf("mem: page %#x already mapped", p)
		}
	}
	for p := start; p < end; p += PageSize {
		m.pages[p] = &page{perm: perm}
	}
	return nil
}

// Protect changes the permissions of all pages covering [addr, addr+size).
func (m *Memory) Protect(addr, size uint64, perm Perm) error {
	start := addr &^ (PageSize - 1)
	end := (addr + size + PageSize - 1) &^ (PageSize - 1)
	for p := start; p < end; p += PageSize {
		pg, ok := m.pages[p]
		if !ok {
			return &Fault{Addr: p, Kind: FaultUnmapped}
		}
		pg.perm = perm
	}
	return nil
}

// Unmap removes all pages covering [addr, addr+size).
func (m *Memory) Unmap(addr, size uint64) {
	start := addr &^ (PageSize - 1)
	end := (addr + size + PageSize - 1) &^ (PageSize - 1)
	for p := start; p < end; p += PageSize {
		delete(m.pages, p)
	}
}

// PermAt returns the permissions of the page containing addr, and whether a
// page is mapped there at all.
func (m *Memory) PermAt(addr uint64) (Perm, bool) {
	pg, ok := m.pages[addr&^(PageSize-1)]
	if !ok {
		return 0, false
	}
	return pg.perm, true
}

// check verifies that every byte of [addr, addr+n) is mapped with need.
// An Append page rejects ordinary writes even when Write is also set,
// enforcing the AMR property of §2.3.2.
func (m *Memory) check(addr, n uint64, need Perm) error {
	if n == 0 {
		return nil
	}
	end := addr + n
	if end < addr {
		return &Fault{Addr: addr, Kind: FaultUnmapped, Need: need}
	}
	for p := addr &^ (PageSize - 1); p < end; p += PageSize {
		pg, ok := m.pages[p]
		if !ok {
			return &Fault{Addr: max64(p, addr), Kind: FaultUnmapped, Need: need}
		}
		if pg.perm&need != need {
			return &Fault{Addr: max64(p, addr), Kind: FaultPerm, Need: need}
		}
		if need&Write != 0 && pg.perm&Append != 0 {
			return &Fault{Addr: max64(p, addr), Kind: FaultPerm, Need: need}
		}
	}
	return nil
}

// Read copies len(dst) bytes from addr into dst.
func (m *Memory) Read(addr uint64, dst []byte) error {
	if err := m.check(addr, uint64(len(dst)), Read); err != nil {
		return err
	}
	m.copyOut(addr, dst)
	return nil
}

// Write copies src into memory at addr, honouring page protections.
func (m *Memory) Write(addr uint64, src []byte) error {
	if err := m.check(addr, uint64(len(src)), Write); err != nil {
		return err
	}
	m.copyIn(addr, src)
	return nil
}

// AppendWrite stores src at addr inside an appendable memory region,
// bypassing the ordinary-write rejection. Only the AppendWrite instruction
// (package uarch) may use this path.
func (m *Memory) AppendWrite(addr uint64, src []byte) error {
	if err := m.check(addr, uint64(len(src)), Append); err != nil {
		return err
	}
	m.copyIn(addr, src)
	return nil
}

// WriteUnchecked stores src at addr ignoring Write permission (but the pages
// must be mapped). It models kernel-privileged stores (e.g. the loader
// populating read-only sections) and must never be reachable from guest code.
func (m *Memory) WriteUnchecked(addr uint64, src []byte) error {
	if err := m.check(addr, uint64(len(src)), 0); err != nil {
		return err
	}
	m.copyIn(addr, src)
	return nil
}

func (m *Memory) copyOut(addr uint64, dst []byte) {
	for len(dst) > 0 {
		pg := m.pages[addr&^(PageSize-1)]
		off := addr & (PageSize - 1)
		n := copy(dst, pg.data[off:])
		dst = dst[n:]
		addr += uint64(n)
	}
}

func (m *Memory) copyIn(addr uint64, src []byte) {
	for len(src) > 0 {
		pg := m.pages[addr&^(PageSize-1)]
		off := addr & (PageSize - 1)
		n := copy(pg.data[off:], src)
		src = src[n:]
		addr += uint64(n)
	}
}

// ReadWord loads a 64-bit little-endian word.
func (m *Memory) ReadWord(addr uint64) (uint64, error) {
	var b [8]byte
	if err := m.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return leU64(b[:]), nil
}

// WriteWord stores a 64-bit little-endian word.
func (m *Memory) WriteWord(addr, v uint64) error {
	var b [8]byte
	putLeU64(b[:], v)
	return m.Write(addr, b[:])
}

// LoadByte loads one byte.
func (m *Memory) LoadByte(addr uint64) (byte, error) {
	var b [1]byte
	if err := m.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

// StoreByte stores one byte.
func (m *Memory) StoreByte(addr uint64, v byte) error {
	return m.Write(addr, []byte{v})
}

// Memmove copies n bytes from src to dst, handling overlap like memmove(3).
func (m *Memory) Memmove(dst, src, n uint64) error {
	if n == 0 {
		return nil
	}
	buf := make([]byte, n)
	if err := m.Read(src, buf); err != nil {
		return err
	}
	return m.Write(dst, buf)
}

// Memset fills [addr, addr+n) with v.
func (m *Memory) Memset(addr uint64, v byte, n uint64) error {
	if n == 0 {
		return nil
	}
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = v
	}
	return m.Write(addr, buf)
}

// MappedRanges returns the mapped regions as sorted [start, end) pairs,
// coalescing adjacent pages with equal permissions. Used by diagnostics.
func (m *Memory) MappedRanges() []Range {
	if len(m.pages) == 0 {
		return nil
	}
	addrs := make([]uint64, 0, len(m.pages))
	for a := range m.pages {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	var out []Range
	for _, a := range addrs {
		p := m.pages[a].perm
		if n := len(out); n > 0 && out[n-1].End == a && out[n-1].Perm == p {
			out[n-1].End = a + PageSize
			continue
		}
		out = append(out, Range{Start: a, End: a + PageSize, Perm: p})
	}
	return out
}

// Range is a contiguous mapped region.
type Range struct {
	Start, End uint64
	Perm       Perm
}

func (r Range) String() string {
	return fmt.Sprintf("[%#x,%#x) %s", r.Start, r.End, r.Perm)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeU64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
