package mem

import (
	"errors"
	"fmt"
	"sort"
)

// Allocator errors.
var (
	// ErrOOM is returned when the heap segment is exhausted.
	ErrOOM = errors.New("mem: out of heap memory")
	// ErrInvalidFree is returned for a free of an address that is not the
	// base of a live allocation (including double frees).
	ErrInvalidFree = errors.New("mem: invalid or double free")
)

// Allocator is a first-fit free-list heap over a contiguous segment of a
// Memory. It deliberately has the metadata layout of a classic C allocator —
// no poisoning, no quarantine — so that heap overflows corrupt the adjacent
// allocation and freed chunks are immediately reusable. The paper's
// use-after-free findings (§5.2) depend on exactly this behaviour.
type Allocator struct {
	mem        *Memory
	base, size uint64

	free []chunk          // sorted by address, coalesced
	live map[uint64]chunk // base address -> chunk
}

type chunk struct {
	addr, size uint64
}

const allocAlign = 16

// NewAllocator creates an allocator over the heap segment [base, base+size),
// which must already be mapped writable in m.
func NewAllocator(m *Memory, base, size uint64) *Allocator {
	return &Allocator{
		mem:  m,
		base: base,
		size: size,
		free: []chunk{{addr: base, size: size}},
		live: make(map[uint64]chunk),
	}
}

// Malloc allocates size bytes (rounded up to 16-byte alignment) and returns
// the base address. The memory content is whatever the previous occupant
// left behind — as with real malloc, which is what makes use-after-free
// exploitable.
func (a *Allocator) Malloc(size uint64) (uint64, error) {
	if size == 0 {
		size = 1
	}
	size = (size + allocAlign - 1) &^ (allocAlign - 1)
	for i, c := range a.free {
		if c.size < size {
			continue
		}
		addr := c.addr
		if c.size == size {
			a.free = append(a.free[:i], a.free[i+1:]...)
		} else {
			a.free[i] = chunk{addr: c.addr + size, size: c.size - size}
		}
		a.live[addr] = chunk{addr: addr, size: size}
		return addr, nil
	}
	return 0, ErrOOM
}

// Free releases the allocation based at addr.
func (a *Allocator) Free(addr uint64) error {
	c, ok := a.live[addr]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrInvalidFree, addr)
	}
	delete(a.live, addr)
	a.insertFree(c)
	return nil
}

// Realloc resizes the allocation at addr to newSize, moving it when it
// cannot grow in place, and returns the (possibly new) base address.
func (a *Allocator) Realloc(addr, newSize uint64) (uint64, error) {
	c, ok := a.live[addr]
	if !ok {
		return 0, fmt.Errorf("%w: realloc of %#x", ErrInvalidFree, addr)
	}
	newSize = (newSize + allocAlign - 1) &^ (allocAlign - 1)
	if newSize <= c.size {
		return addr, nil // shrink in place (no split, like many allocators)
	}
	nw, err := a.Malloc(newSize)
	if err != nil {
		return 0, err
	}
	if err := a.mem.Memmove(nw, addr, c.size); err != nil {
		return 0, err
	}
	if err := a.Free(addr); err != nil {
		return 0, err
	}
	return nw, nil
}

// SizeOf returns the size of the live allocation at addr.
func (a *Allocator) SizeOf(addr uint64) (uint64, bool) {
	c, ok := a.live[addr]
	return c.size, ok
}

// LiveBytes reports the total bytes currently allocated.
func (a *Allocator) LiveBytes() uint64 {
	var total uint64
	for _, c := range a.live {
		total += c.size
	}
	return total
}

// LiveCount reports the number of live allocations.
func (a *Allocator) LiveCount() int { return len(a.live) }

// Contains reports whether addr falls inside any live allocation, returning
// that allocation's base.
func (a *Allocator) Contains(addr uint64) (base uint64, ok bool) {
	// The live map is keyed by base; scan is acceptable for diagnostics.
	for b, c := range a.live {
		if addr >= b && addr < b+c.size {
			return b, true
		}
	}
	return 0, false
}

// insertFree returns c to the free list, coalescing neighbours.
func (a *Allocator) insertFree(c chunk) {
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].addr > c.addr })
	a.free = append(a.free, chunk{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = c
	// Coalesce with successor, then predecessor.
	if i+1 < len(a.free) && a.free[i].addr+a.free[i].size == a.free[i+1].addr {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].addr+a.free[i-1].size == a.free[i].addr {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}
