package analysis

import "herqules/internal/mir"

// EscapeInfo classifies each alloca of a function. The HQ final-lowering
// pass uses it as a more precise replacement for LLVM's fast-but-conservative
// alias analysis (§4.1.4): store-to-load forwarding and message elision are
// only sound for memory locations whose address never escapes, because an
// escaped location can be written through an alias the analysis cannot see.
type EscapeInfo struct {
	// Escapes maps each alloca to whether its address escapes the
	// function: passed to a call, stored into memory, returned, cast to an
	// integer, or offset by a non-constant index.
	Escapes map[*mir.Instr]bool
}

// EscapeAnalysis computes EscapeInfo for f. The analysis walks the
// derivation tree of each alloca's address: FieldAddr with constant field
// index keeps the address "tracked"; any other use that lets the address
// flow elsewhere marks the alloca escaping.
func EscapeAnalysis(f *mir.Func) *EscapeInfo {
	info := &EscapeInfo{Escapes: make(map[*mir.Instr]bool)}

	// root maps a derived address value to the alloca it originates from.
	root := make(map[mir.Value]*mir.Instr)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == mir.OpAlloca {
				root[in] = in
				info.Escapes[in] = false
			}
		}
	}
	// Propagate derivations in program order; MIR is SSA so one pass over
	// blocks in layout order suffices for dominating definitions, and a
	// second pass catches back-edge flows through phis.
	for pass := 0; pass < 2; pass++ {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case mir.OpFieldAddr:
					if r, ok := root[in.Args[0]]; ok {
						root[in] = r
					}
				case mir.OpIndexAddr:
					if r, ok := root[in.Args[0]]; ok {
						// Constant index keeps it tracked; variable
						// indexing may go out of bounds and alias
						// anything, so treat as escaping.
						if _, isConst := in.Args[1].(*mir.Const); isConst {
							root[in] = r
						} else {
							info.Escapes[r] = true
						}
					}
				case mir.OpPhi:
					for _, a := range in.Args {
						if r, ok := root[a]; ok {
							// Merged addresses are hard to track
							// field-sensitively; be conservative.
							info.Escapes[r] = true
						}
					}
				case mir.OpCast:
					if r, ok := root[in.Args[0]]; ok {
						info.Escapes[r] = true
					}
				}
			}
		}
	}
	// Uses that leak a tracked address.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case mir.OpStore:
				// Storing the address itself (not storing *to* it).
				if r, ok := root[in.Args[0]]; ok {
					info.Escapes[r] = true
				}
			case mir.OpCall, mir.OpICall:
				for _, a := range in.Args {
					if r, ok := root[a]; ok {
						info.Escapes[r] = true
					}
				}
			case mir.OpRet:
				for _, a := range in.Args {
					if r, ok := root[a]; ok {
						info.Escapes[r] = true
					}
				}
			case mir.OpMemcpy, mir.OpMemmove, mir.OpMemset,
				mir.OpFree, mir.OpRealloc, mir.OpSyscall:
				// Runtime (OpRuntime) operations are deliberately NOT
				// escape sources: the trusted messaging/check runtime
				// observes addresses but never captures or writes
				// through them, and instrumentation inserting runtime
				// calls must not defeat its own later optimizations.
				for _, a := range in.Args {
					if r, ok := root[a]; ok {
						info.Escapes[r] = true
					}
				}
			}
		}
	}
	return info
}

// AddrRoots recomputes the address-derivation map used internally; exported
// for the compiler passes that need to relate loads/stores back to allocas.
// The result maps derived address values to their alloca of origin,
// following only constant-offset derivations.
func AddrRoots(f *mir.Func) map[mir.Value]*mir.Instr {
	root := make(map[mir.Value]*mir.Instr)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == mir.OpAlloca {
				root[in] = in
			}
		}
	}
	for pass := 0; pass < 2; pass++ {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case mir.OpFieldAddr:
					if r, ok := root[in.Args[0]]; ok {
						root[in] = r
					}
				case mir.OpIndexAddr:
					if r, ok := root[in.Args[0]]; ok {
						if _, isConst := in.Args[1].(*mir.Const); isConst {
							root[in] = r
						}
					}
				}
			}
		}
	}
	return root
}
