// Package analysis provides the static analyses the HerQules compiler passes
// depend on: control-flow graphs, dominator and post-dominator trees (used to
// place system-call synchronization messages, §3.2), a call graph, escape
// analysis (used by store-to-load forwarding and message elision, §4.1.4),
// and the function-pointer detection scheme of §4.1.4 that tracks pointer
// values through casts and phi nodes to avoid false negatives from type
// decay.
package analysis

import (
	"herqules/internal/mir"
)

// CFG is the control-flow graph of one function with precomputed
// predecessor lists and a reverse postorder.
type CFG struct {
	Fn    *mir.Func
	Preds map[*mir.Block][]*mir.Block
	// RPO is the reverse postorder of reachable blocks, starting at entry.
	RPO []*mir.Block
	// RPONum maps a block to its reverse-postorder index; unreachable
	// blocks are absent.
	RPONum map[*mir.Block]int
}

// NewCFG builds the CFG for f.
func NewCFG(f *mir.Func) *CFG {
	c := &CFG{
		Fn:     f,
		Preds:  make(map[*mir.Block][]*mir.Block),
		RPONum: make(map[*mir.Block]int),
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			c.Preds[s] = append(c.Preds[s], b)
		}
	}
	// Postorder DFS from entry, then reverse.
	seen := make(map[*mir.Block]bool)
	var post []*mir.Block
	var dfs func(b *mir.Block)
	dfs = func(b *mir.Block) {
		seen[b] = true
		for _, s := range b.Succs() {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	if e := f.Entry(); e != nil {
		dfs(e)
	}
	for i := len(post) - 1; i >= 0; i-- {
		c.RPONum[post[i]] = len(c.RPO)
		c.RPO = append(c.RPO, post[i])
	}
	return c
}

// DomTree is a dominator tree. Idom maps each reachable block (except the
// root) to its immediate dominator.
type DomTree struct {
	Root *mir.Block
	Idom map[*mir.Block]*mir.Block
	// depth of each block in the tree, for O(depth) Dominates queries.
	depth map[*mir.Block]int
}

// Dominators computes the dominator tree of c using the iterative
// Cooper-Harvey-Kennedy algorithm ("A Simple, Fast Dominance Algorithm"),
// the same fixpoint the paper's graph-dominator analysis [65] provides.
func Dominators(c *CFG) *DomTree {
	return buildDomTree(c.RPO, c.RPONum, func(b *mir.Block) []*mir.Block { return c.Preds[b] })
}

// PostDominators computes the post-dominator tree by running the dominance
// algorithm over the reversed CFG rooted at a *virtual exit* with an edge
// from every real exit (a block with no successors). The virtual node is
// stripped from the returned tree: blocks post-dominated only by the virtual
// exit (including the exits themselves) have no immediate post-dominator,
// so no real exit ever appears to post-dominate a block that can bypass it
// through a different exit.
func PostDominators(c *CFG) *DomTree {
	vexit := &mir.Block{Name: "~exit"}
	var exits []*mir.Block
	isExit := make(map[*mir.Block]bool)
	for _, b := range c.RPO {
		if len(b.Succs()) == 0 {
			exits = append(exits, b)
			isExit[b] = true
		}
	}

	// Reverse postorder of the reversed graph, rooted at vexit. In the
	// reversed graph, vexit's successors are the exits, and a block's
	// successors are its original predecessors.
	revSuccs := func(b *mir.Block) []*mir.Block {
		if b == vexit {
			return exits
		}
		return c.Preds[b]
	}
	seen := map[*mir.Block]bool{}
	var post []*mir.Block
	var dfs func(b *mir.Block)
	dfs = func(b *mir.Block) {
		seen[b] = true
		for _, s := range revSuccs(b) {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(vexit)
	rpo := make([]*mir.Block, 0, len(post))
	rpoNum := make(map[*mir.Block]int, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		rpoNum[post[i]] = len(rpo)
		rpo = append(rpo, post[i])
	}
	// Predecessors in the reversed graph: original successors, plus vexit
	// for the exit blocks.
	revPreds := func(b *mir.Block) []*mir.Block {
		if b == vexit {
			return nil
		}
		ss := b.Succs()
		if isExit[b] {
			ss = append(append([]*mir.Block(nil), ss...), vexit)
		}
		return ss
	}
	t := buildDomTree(rpo, rpoNum, revPreds)
	// Strip the virtual node: its children become parentless roots.
	for b, p := range t.Idom {
		if p == vexit {
			delete(t.Idom, b)
		}
	}
	delete(t.Idom, vexit)
	delete(t.depth, vexit)
	t.Root = nil
	// Recompute depths against the stripped tree.
	t.depth = make(map[*mir.Block]int, len(t.Idom))
	var depthOf func(b *mir.Block) int
	depthOf = func(b *mir.Block) int {
		if d, ok := t.depth[b]; ok {
			return d
		}
		p, ok := t.Idom[b]
		if !ok {
			t.depth[b] = 0
			return 0
		}
		d := depthOf(p) + 1
		t.depth[b] = d
		return d
	}
	for _, b := range c.RPO {
		if _, reachable := rpoNum[b]; reachable {
			depthOf(b)
		}
	}
	return t
}

// buildDomTree runs CHK with a single root (rpo[0]).
func buildDomTree(rpo []*mir.Block, rpoNum map[*mir.Block]int,
	preds func(*mir.Block) []*mir.Block) *DomTree {
	if len(rpo) == 0 {
		return &DomTree{Idom: map[*mir.Block]*mir.Block{}, depth: map[*mir.Block]int{}}
	}
	return buildDomTreeMulti(rpo, rpoNum, preds, []*mir.Block{rpo[0]})
}

// buildDomTreeMulti runs CHK where every block in roots is a tree root
// (idom = nil). rpo must start with the roots.
func buildDomTreeMulti(rpo []*mir.Block, rpoNum map[*mir.Block]int,
	preds func(*mir.Block) []*mir.Block, roots []*mir.Block) *DomTree {
	idom := make(map[*mir.Block]*mir.Block, len(rpo))
	isRoot := make(map[*mir.Block]bool, len(roots))
	for _, r := range roots {
		isRoot[r] = true
		idom[r] = r // self, per CHK convention; cleared at the end
	}
	intersect := func(a, b *mir.Block) *mir.Block {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				if idom[a] == a { // hit a root
					return b
				}
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				if idom[b] == b {
					return a
				}
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if isRoot[b] {
				continue
			}
			var newIdom *mir.Block
			for _, p := range preds(b) {
				if _, processed := idom[p]; !processed {
					continue
				}
				if _, reach := rpoNum[p]; !reach {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	t := &DomTree{Idom: idom, depth: make(map[*mir.Block]int, len(idom))}
	if len(roots) > 0 {
		t.Root = roots[0]
	}
	for _, r := range roots {
		delete(idom, r) // roots have no idom
		t.depth[r] = 0
	}
	var depthOf func(b *mir.Block) int
	depthOf = func(b *mir.Block) int {
		if d, ok := t.depth[b]; ok {
			return d
		}
		p, ok := idom[b]
		if !ok {
			t.depth[b] = 0
			return 0
		}
		d := depthOf(p) + 1
		t.depth[b] = d
		return d
	}
	for b := range idom {
		depthOf(b)
	}
	return t
}

// Dominates reports whether a dominates b (reflexively).
func (t *DomTree) Dominates(a, b *mir.Block) bool {
	if a == b {
		return true
	}
	da, oka := t.depth[a]
	db, okb := t.depth[b]
	if !oka || !okb || da >= db {
		return false
	}
	for b != nil && t.depth[b] > da {
		b = t.Idom[b]
	}
	return a == b
}

// StrictlyDominates reports whether a dominates b and a != b.
func (t *DomTree) StrictlyDominates(a, b *mir.Block) bool {
	return a != b && t.Dominates(a, b)
}

// DominatesInstr reports whether instruction a dominates instruction b:
// either a's block strictly dominates b's, or they share a block and a
// precedes b.
func (t *DomTree) DominatesInstr(a, b *mir.Instr) bool {
	if a.Blk == b.Blk {
		for _, in := range a.Blk.Instrs {
			if in == a {
				return true
			}
			if in == b {
				return false
			}
		}
		return false
	}
	return t.Dominates(a.Blk, b.Blk)
}
