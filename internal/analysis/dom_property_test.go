package analysis

import (
	"fmt"
	"math/rand"
	"testing"

	"herqules/internal/mir"
)

// genRandomCFG builds a function with n blocks and random branches. Every
// block ends in ret, br, or condbr to random targets, so arbitrary
// (including irreducible) control flow arises.
func genRandomCFG(seed int64, n int) *mir.Func {
	rng := rand.New(rand.NewSource(seed))
	mod := mir.NewModule(fmt.Sprintf("cfg%d", seed))
	b := mir.NewBuilder(mod)
	f := b.Func("f", mir.FuncType(mir.Void, mir.I64), "x")
	blocks := []*mir.Block{b.Blk}
	for i := 1; i < n; i++ {
		blocks = append(blocks, b.Block(fmt.Sprintf("b%d", i)))
	}
	for _, blk := range blocks {
		b.SetBlock(blk)
		switch rng.Intn(4) {
		case 0:
			b.Ret(nil)
		case 1:
			b.Br(blocks[rng.Intn(n)])
		default:
			b.CondBr(f.Params[0], blocks[rng.Intn(n)], blocks[rng.Intn(n)])
		}
	}
	// Guarantee at least one exit so post-dominators have roots.
	last := blocks[n-1]
	last.Instrs = nil
	b.SetBlock(last)
	b.Ret(nil)
	mod.Finalize()
	return f
}

// bruteDominates computes dominance by definition: a dominates b iff every
// entry→b path passes through a, i.e. b is unreachable from the entry when
// a is removed.
func bruteDominates(f *mir.Func, a, b *mir.Block) bool {
	if a == b {
		return true
	}
	reach := map[*mir.Block]bool{}
	var walk func(x *mir.Block)
	walk = func(x *mir.Block) {
		if x == a || reach[x] {
			return
		}
		reach[x] = true
		for _, s := range x.Succs() {
			walk(s)
		}
	}
	walk(f.Entry())
	return !reach[b]
}

func TestDominatorsAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		f := genRandomCFG(seed, 8)
		cfg := NewCFG(f)
		dom := Dominators(cfg)
		for _, a := range cfg.RPO {
			for _, b := range cfg.RPO {
				got := dom.Dominates(a, b)
				want := bruteDominates(f, a, b)
				if got != want {
					t.Fatalf("seed %d: Dominates(%s, %s) = %t, brute force %t\n%s",
						seed, a, b, got, want, f)
				}
			}
		}
	}
}

func TestPostDominatorsAgainstBruteForce(t *testing.T) {
	// Post-dominance by definition: a post-dominates b iff every b→exit
	// path passes through a.
	brutePostDom := func(f *mir.Func, cfg *CFG, a, b *mir.Block) bool {
		if a == b {
			return true
		}
		// Can b reach an exit while avoiding a?
		seen := map[*mir.Block]bool{}
		var walk func(x *mir.Block) bool
		walk = func(x *mir.Block) bool {
			if x == a || seen[x] {
				return false
			}
			seen[x] = true
			if len(x.Succs()) == 0 {
				return true
			}
			for _, s := range x.Succs() {
				if walk(s) {
					return true
				}
			}
			return false
		}
		return !walk(b)
	}
	for seed := int64(100); seed < 140; seed++ {
		f := genRandomCFG(seed, 7)
		cfg := NewCFG(f)
		pdom := PostDominators(cfg)
		for _, a := range cfg.RPO {
			// Only compare for blocks that can reach an exit: blocks
			// trapped in infinite loops have no post-dominance facts
			// the sync-placement analysis relies on.
			for _, b := range cfg.RPO {
				want := brutePostDom(f, cfg, a, b)
				got := pdom.Dominates(a, b)
				// The iterative tree is conservative on blocks that
				// never reach an exit; only require agreement when b
				// reaches one.
				if reachesExit(b) && got != want {
					t.Fatalf("seed %d: PostDominates(%s, %s) = %t, brute force %t\n%s",
						seed, a, b, got, want, f)
				}
			}
		}
	}
}

func reachesExit(b *mir.Block) bool {
	seen := map[*mir.Block]bool{}
	var walk func(x *mir.Block) bool
	walk = func(x *mir.Block) bool {
		if seen[x] {
			return false
		}
		seen[x] = true
		if len(x.Succs()) == 0 {
			return true
		}
		for _, s := range x.Succs() {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(b)
}

func TestDominanceIsPartialOrder(t *testing.T) {
	for seed := int64(200); seed < 230; seed++ {
		f := genRandomCFG(seed, 9)
		cfg := NewCFG(f)
		dom := Dominators(cfg)
		for _, a := range cfg.RPO {
			if !dom.Dominates(a, a) {
				t.Fatalf("seed %d: not reflexive at %s", seed, a)
			}
			for _, b := range cfg.RPO {
				if a != b && dom.Dominates(a, b) && dom.Dominates(b, a) {
					t.Fatalf("seed %d: antisymmetry violated: %s, %s", seed, a, b)
				}
				for _, c := range cfg.RPO {
					if dom.Dominates(a, b) && dom.Dominates(b, c) && !dom.Dominates(a, c) {
						t.Fatalf("seed %d: transitivity violated: %s, %s, %s", seed, a, b, c)
					}
				}
			}
		}
	}
}
