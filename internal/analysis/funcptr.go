package analysis

import "herqules/internal/mir"

// FuncPtrInfo records which SSA values and memory roots the function-pointer
// detection scheme of §4.1.4 classifies as (potential) control-flow pointers.
//
// The paper treats any pointer as a function pointer if (1) it is ever
// defined from a value of function-pointer type, including via pointer casts
// and φ-nodes, or (2) other uses of its original value are ever cast to
// function-pointer type. This over-approximation avoids false negatives when
// type casting decays function pointers into generic pointers (e.g. void*).
type FuncPtrInfo struct {
	// Values holds SSA values (per function) that may carry a function
	// pointer at runtime.
	Values map[mir.Value]bool
}

// DetectFuncPtrs runs the detection scheme over a whole module. It
// propagates the "may be a function pointer" property forward through casts
// and phis, and backward from casts to function-pointer type onto the cast's
// source (clause 2 of §4.1.4).
func DetectFuncPtrs(m *mir.Module) *FuncPtrInfo {
	info := &FuncPtrInfo{Values: make(map[mir.Value]bool)}

	mark := func(v mir.Value) bool {
		if v == nil || info.Values[v] {
			return false
		}
		// Constants other than function references never carry code
		// pointers.
		if _, isConst := v.(*mir.Const); isConst {
			return false
		}
		info.Values[v] = true
		return true
	}

	// Seed: any value of static control-flow-pointer type (function
	// pointer or vtable pointer, §4.1.3).
	seedValue := func(v mir.Value) {
		if v.Type().IsCtrlPtr() {
			mark(v)
		}
		if _, ok := v.(*mir.FuncRef); ok {
			mark(v)
		}
	}
	for _, f := range m.Funcs {
		for _, p := range f.Params {
			seedValue(p)
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Type() != mir.Void {
					seedValue(in)
				}
				for _, a := range in.Args {
					seedValue(a)
				}
			}
		}
	}

	// Fixpoint propagation.
	for changed := true; changed; {
		changed = false
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					switch in.Op {
					case mir.OpCast:
						// Forward: cast of a funcptr-ish value stays funcptr-ish.
						if info.Values[in.Args[0]] && mark(in) {
							changed = true
						}
						// Backward (clause 2): if the cast result is of
						// function-pointer type, the original value was
						// carrying one.
						if in.Type().IsFuncPtr() && mark(in.Args[0]) {
							changed = true
						}
						// And if the result was inferred to carry one, so
						// does the source.
						if info.Values[in] && mark(in.Args[0]) {
							changed = true
						}
					case mir.OpPhi:
						// A phi merging any funcptr-ish input is funcptr-ish.
						for _, a := range in.Args {
							if info.Values[a] && mark(in) {
								changed = true
							}
						}
					}
				}
			}
		}
	}
	return info
}

// IsFuncPtrStore reports whether in is a store whose stored value may be a
// control-flow pointer, i.e. a store that the HQ initial-lowering pass must
// follow with a Pointer-Define message.
func (fp *FuncPtrInfo) IsFuncPtrStore(in *mir.Instr) bool {
	if in.Op != mir.OpStore {
		return false
	}
	v := in.Args[0]
	return v.Type().IsCtrlPtr() || fp.Values[v]
}

// IsFuncPtrLoad reports whether in is a load that may produce a control-flow
// pointer, i.e. a load that must be checked before the value is used as an
// indirect-call target.
func (fp *FuncPtrInfo) IsFuncPtrLoad(in *mir.Instr) bool {
	if in.Op != mir.OpLoad {
		return false
	}
	return in.Type().IsCtrlPtr() || fp.Values[in]
}
