package analysis

import (
	"testing"

	"herqules/internal/mir"
)

// buildDiamond constructs:
//
//	   entry
//	   /   \
//	left   right
//	   \   /
//	   merge
//	     |
//	    exit
func buildDiamond(t *testing.T) (*mir.Module, *mir.Func) {
	t.Helper()
	mod := mir.NewModule("diamond")
	b := mir.NewBuilder(mod)
	f := b.Func("f", mir.FuncType(mir.I64, mir.I64), "x")
	left := b.Block("left")
	right := b.Block("right")
	merge := b.Block("merge")
	exit := b.Block("exit")

	cond := b.Cmp(mir.CmpLt, f.Params[0], mir.ConstInt(10))
	b.CondBr(cond, left, right)
	b.SetBlock(left)
	l := b.Add(f.Params[0], mir.ConstInt(1))
	b.Br(merge)
	b.SetBlock(right)
	r := b.Mul(f.Params[0], mir.ConstInt(2))
	b.Br(merge)
	b.SetBlock(merge)
	v := b.Phi(mir.I64, l, left, r, right)
	b.Br(exit)
	b.SetBlock(exit)
	b.Ret(v)

	mod.Finalize()
	if err := mir.Validate(mod); err != nil {
		t.Fatal(err)
	}
	return mod, f
}

func TestCFGReversePostorder(t *testing.T) {
	_, f := buildDiamond(t)
	c := NewCFG(f)
	if len(c.RPO) != 5 {
		t.Fatalf("RPO has %d blocks, want 5", len(c.RPO))
	}
	if c.RPO[0] != f.Entry() {
		t.Error("RPO does not start at entry")
	}
	// Entry before left/right before merge before exit.
	num := c.RPONum
	entry, left, right, merge, exit := f.Blocks[0], f.Blocks[1], f.Blocks[2], f.Blocks[3], f.Blocks[4]
	if !(num[entry] < num[left] && num[entry] < num[right] &&
		num[left] < num[merge] && num[right] < num[merge] && num[merge] < num[exit]) {
		t.Errorf("RPO ordering wrong: %v", num)
	}
	if got := len(c.Preds[merge]); got != 2 {
		t.Errorf("merge preds = %d, want 2", got)
	}
}

func TestDominatorsDiamond(t *testing.T) {
	_, f := buildDiamond(t)
	c := NewCFG(f)
	dom := Dominators(c)
	entry, left, right, merge, exit := f.Blocks[0], f.Blocks[1], f.Blocks[2], f.Blocks[3], f.Blocks[4]

	if dom.Idom[left] != entry || dom.Idom[right] != entry {
		t.Error("branch blocks not dominated by entry")
	}
	if dom.Idom[merge] != entry {
		t.Errorf("idom(merge) = %v, want entry (neither branch dominates it)", dom.Idom[merge])
	}
	if dom.Idom[exit] != merge {
		t.Errorf("idom(exit) = %v, want merge", dom.Idom[exit])
	}
	if !dom.Dominates(entry, exit) {
		t.Error("entry must dominate exit")
	}
	if dom.Dominates(left, merge) {
		t.Error("left must not dominate merge")
	}
	if !dom.Dominates(merge, merge) {
		t.Error("dominance must be reflexive")
	}
	if dom.StrictlyDominates(merge, merge) {
		t.Error("strict dominance must be irreflexive")
	}
}

func TestPostDominatorsDiamond(t *testing.T) {
	_, f := buildDiamond(t)
	c := NewCFG(f)
	pdom := PostDominators(c)
	entry, left, right, merge, exit := f.Blocks[0], f.Blocks[1], f.Blocks[2], f.Blocks[3], f.Blocks[4]

	if pdom.Idom[merge] != exit {
		t.Errorf("ipdom(merge) = %v, want exit", pdom.Idom[merge])
	}
	if pdom.Idom[left] != merge || pdom.Idom[right] != merge {
		t.Error("branch blocks must be post-dominated by merge")
	}
	if !pdom.Dominates(exit, entry) {
		t.Error("exit must post-dominate entry")
	}
	if pdom.Dominates(left, entry) {
		t.Error("left must not post-dominate entry")
	}
}

func TestDominatorsWithLoop(t *testing.T) {
	mod := mir.NewModule("loop")
	b := mir.NewBuilder(mod)
	f := b.Func("f", mir.FuncType(mir.I64))
	entry := b.Blk
	header := b.Block("header")
	body := b.Block("body")
	exit := b.Block("exit")
	b.Br(header)
	b.SetBlock(header)
	i := b.Phi(mir.I64, mir.ConstInt(0), entry)
	b.CondBr(b.Cmp(mir.CmpLt, i, mir.ConstInt(10)), body, exit)
	b.SetBlock(body)
	i1 := b.Add(i, mir.ConstInt(1))
	i.Args = append(i.Args, i1)
	i.PhiBlocks = append(i.PhiBlocks, body)
	b.Br(header)
	b.SetBlock(exit)
	b.Ret(i)
	mod.Finalize()
	if err := mir.Validate(mod); err != nil {
		t.Fatal(err)
	}

	c := NewCFG(f)
	dom := Dominators(c)
	if dom.Idom[header] != entry || dom.Idom[body] != header || dom.Idom[exit] != header {
		t.Errorf("loop dominators wrong: %v", dom.Idom)
	}
	pdom := PostDominators(c)
	// exit post-dominates everything; body does not post-dominate header.
	if !pdom.Dominates(exit, entry) || !pdom.Dominates(exit, body) {
		t.Error("exit must post-dominate all blocks")
	}
	if pdom.Dominates(body, header) {
		t.Error("body must not post-dominate header")
	}
}

func TestDominatesInstr(t *testing.T) {
	_, f := buildDiamond(t)
	c := NewCFG(f)
	dom := Dominators(c)
	entry := f.Blocks[0]
	first := entry.Instrs[0]
	second := entry.Instrs[1]
	if !dom.DominatesInstr(first, second) {
		t.Error("earlier instruction must dominate later in same block")
	}
	if dom.DominatesInstr(second, first) {
		t.Error("later instruction must not dominate earlier")
	}
	mergeInstr := f.Blocks[3].Instrs[0]
	if !dom.DominatesInstr(first, mergeInstr) {
		t.Error("entry instruction must dominate merge instruction")
	}
	if dom.DominatesInstr(mergeInstr, first) {
		t.Error("merge instruction must not dominate entry instruction")
	}
}

func TestDetectFuncPtrsThroughCastAndPhi(t *testing.T) {
	mod := mir.NewModule("fp")
	b := mir.NewBuilder(mod)
	sig := mir.FuncType(mir.Void)
	callee := b.Func("callee", sig)
	b.Ret(nil)

	f := b.Func("f", mir.FuncType(mir.Void, mir.I64), "c")
	entry := b.Blk
	then := b.Block("then")
	done := b.Block("done")

	// Decay: function pointer cast to void* — clause 1 must keep tracking.
	fp := b.FuncAddr(callee)
	decayed := b.Cast(fp, mir.Ptr(mir.I8))
	b.CondBr(f.Params[0], then, done)

	b.SetBlock(then)
	other := b.Cast(mir.ConstTyped(mir.Ptr(mir.I8), 0), mir.Ptr(mir.I8))
	b.Br(done)

	b.SetBlock(done)
	merged := b.Phi(mir.Ptr(mir.I8), decayed, entry, other, then)
	// Cast back to function pointer and call — clause 2 marks the source.
	back := b.Cast(merged, mir.Ptr(sig))
	b.ICall(back, sig)
	b.Ret(nil)
	mod.Finalize()
	if err := mir.Validate(mod); err != nil {
		t.Fatal(err)
	}

	info := DetectFuncPtrs(mod)
	if !info.Values[decayed] {
		t.Error("decayed cast of function pointer not detected (clause 1)")
	}
	if !info.Values[merged] {
		t.Error("phi merging a function pointer not detected")
	}
	if !info.Values[back] {
		t.Error("re-cast to function pointer not detected")
	}
}

func TestDetectFuncPtrsBackwardFromCast(t *testing.T) {
	// A generic pointer later cast to a function pointer must be flagged
	// retroactively (clause 2), even when nothing of funcptr type flowed in.
	mod := mir.NewModule("fp2")
	b := mir.NewBuilder(mod)
	sig := mir.FuncType(mir.Void)
	f := b.Func("f", mir.FuncType(mir.Void, mir.Ptr(mir.I8)), "p")
	asFn := b.Cast(f.Params[0], mir.Ptr(sig))
	b.ICall(asFn, sig)
	b.Ret(nil)
	mod.Finalize()

	info := DetectFuncPtrs(mod)
	if !info.Values[f.Params[0]] {
		t.Error("generic pointer later cast to funcptr not flagged")
	}
}

func TestFuncPtrStoreLoadClassification(t *testing.T) {
	mod := mir.NewModule("fp3")
	b := mir.NewBuilder(mod)
	sig := mir.FuncType(mir.Void)
	callee := b.Func("callee", sig)
	b.Ret(nil)
	b.Func("f", mir.FuncType(mir.Void))
	slot := b.Alloca("fp", mir.Ptr(sig))
	intSlot := b.Alloca("n", mir.I64)
	st := b.Store(b.FuncAddr(callee), slot)
	stInt := b.Store(mir.ConstInt(7), intSlot)
	ld := b.Load(slot)
	ldInt := b.Load(intSlot)
	b.ICall(ld, sig)
	_ = ldInt
	b.Ret(nil)
	mod.Finalize()

	info := DetectFuncPtrs(mod)
	if !info.IsFuncPtrStore(st) {
		t.Error("function-pointer store not classified")
	}
	if info.IsFuncPtrStore(stInt) {
		t.Error("integer store misclassified as function-pointer store")
	}
	if !info.IsFuncPtrLoad(ld) {
		t.Error("function-pointer load not classified")
	}
	if info.IsFuncPtrLoad(ldInt) {
		t.Error("integer load misclassified")
	}
}

func TestEscapeAnalysis(t *testing.T) {
	mod := mir.NewModule("esc")
	b := mir.NewBuilder(mod)
	sink := b.Func("sink", mir.FuncType(mir.Void, mir.Ptr(mir.I64)), "p")
	b.Ret(nil)

	f := b.Func("f", mir.FuncType(mir.I64))
	local := b.Alloca("local", mir.I64)   // never escapes
	passed := b.Alloca("passed", mir.I64) // escapes via call
	stored := b.Alloca("stored", mir.I64) // escapes via store of address
	slot := b.Alloca("slot", mir.Ptr(mir.I64))
	strct := b.Alloca("s", mir.StructType("pair", mir.I64, mir.I64))
	idxd := b.Alloca("arr", mir.ArrayType(mir.I64, 4))

	b.Store(mir.ConstInt(1), local)
	b.Call(sink, passed)
	b.Store(stored, slot)
	fa := b.FieldAddr(strct, 1) // constant field offset: still tracked
	b.Store(mir.ConstInt(2), fa)
	// Variable index: conservative escape.
	v := b.Load(local)
	ia := b.IndexAddr(idxd, v)
	b.Store(mir.ConstInt(3), ia)
	b.Ret(b.Load(local))
	mod.Finalize()
	if err := mir.Validate(mod); err != nil {
		t.Fatal(err)
	}

	info := EscapeAnalysis(f)
	tests := []struct {
		alloca *mir.Instr
		want   bool
		name   string
	}{
		{local, false, "local"},
		{passed, true, "passed-to-call"},
		{stored, true, "address-stored"},
		{strct, false, "constant-field-access"},
		{idxd, true, "variable-indexed"},
	}
	for _, tt := range tests {
		if got := info.Escapes[tt.alloca]; got != tt.want {
			t.Errorf("escape(%s) = %t, want %t", tt.name, got, tt.want)
		}
	}
}

func TestAddrRoots(t *testing.T) {
	mod := mir.NewModule("roots")
	b := mir.NewBuilder(mod)
	b.Func("f", mir.FuncType(mir.Void))
	s := b.Alloca("s", mir.StructType("pair", mir.I64, mir.I64))
	fa := b.FieldAddr(s, 1)
	arr := b.Alloca("a", mir.ArrayType(mir.I64, 8))
	ia := b.IndexAddr(arr, mir.ConstInt(3))
	b.Store(mir.ConstInt(0), fa)
	b.Store(mir.ConstInt(0), ia)
	b.Ret(nil)
	mod.Finalize()

	roots := AddrRoots(b.Fn)
	if roots[fa] != s {
		t.Error("field address not rooted at its alloca")
	}
	if roots[ia] != arr {
		t.Error("constant-indexed address not rooted at its alloca")
	}
}

func TestCallGraph(t *testing.T) {
	mod := mir.NewModule("cg")
	b := mir.NewBuilder(mod)
	sig := mir.FuncType(mir.Void)

	leaf := b.Func("leaf", sig)
	b.Ret(nil)
	mid := b.Func("mid", sig)
	b.Call(leaf)
	b.Ret(nil)
	rec := b.Func("rec", mir.FuncType(mir.Void, mir.I64), "n")
	then := b.Block("then")
	done := b.Block("done")
	b.CondBr(rec.Params[0], then, done)
	b.SetBlock(then)
	b.Call(rec, b.Sub(rec.Params[0], mir.ConstInt(1)))
	b.Br(done)
	b.SetBlock(done)
	b.Ret(nil)
	main := b.Func("main", sig)
	b.Call(mid)
	fp := b.FuncAddr(leaf)
	b.ICall(fp, sig)
	b.Ret(nil)
	mod.Finalize()
	if err := mir.Validate(mod); err != nil {
		t.Fatal(err)
	}

	cg := BuildCallGraph(mod)
	if !cg.Callees[main][mid] || !cg.Callees[mid][leaf] {
		t.Error("direct edges missing")
	}
	if !cg.Callees[main][leaf] {
		t.Error("indirect edge to address-taken signature-matching leaf missing")
	}
	if !cg.MayRecurse(rec) {
		t.Error("self-recursive function not detected")
	}
	if cg.MayRecurse(leaf) {
		t.Error("leaf misreported as recursive")
	}
	if cg.Callers[leaf] == nil || !cg.Callers[leaf][mid] {
		t.Error("reverse edge missing")
	}
}

func TestUniqueCallers(t *testing.T) {
	mod := mir.NewModule("uc")
	b := mir.NewBuilder(mod)
	sig := mir.FuncType(mir.Void)
	once := b.Func("once", sig)
	b.Ret(nil)
	twice := b.Func("twice", sig)
	b.Ret(nil)
	taken := b.Func("taken", sig)
	b.Ret(nil)
	b.Func("main", sig)
	site := b.Call(once)
	b.Call(twice)
	b.Call(twice)
	b.Call(taken)
	_ = b.FuncAddr(taken)
	b.Ret(nil)
	mod.Finalize()

	if got := UniqueCallers(mod, once); got != site {
		t.Error("unique call site not found")
	}
	if UniqueCallers(mod, twice) != nil {
		t.Error("multiple call sites reported as unique")
	}
	if UniqueCallers(mod, taken) != nil {
		t.Error("address-taken function reported as unique")
	}
}
