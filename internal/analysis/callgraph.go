package analysis

import "herqules/internal/mir"

// CallGraph is the module call graph. Direct edges come from OpCall;
// indirect call sites are resolved conservatively to every address-taken
// function whose signature matches the call site (the same
// equivalence-class-by-type approximation coarse-grained CFI uses, §4.1.1).
type CallGraph struct {
	// Callees maps each function to the set of functions it may call.
	Callees map[*mir.Func]map[*mir.Func]bool
	// Callers is the reverse relation.
	Callers map[*mir.Func]map[*mir.Func]bool
}

// BuildCallGraph computes the call graph of m.
func BuildCallGraph(m *mir.Module) *CallGraph {
	cg := &CallGraph{
		Callees: make(map[*mir.Func]map[*mir.Func]bool),
		Callers: make(map[*mir.Func]map[*mir.Func]bool),
	}
	addEdge := func(from, to *mir.Func) {
		if cg.Callees[from] == nil {
			cg.Callees[from] = make(map[*mir.Func]bool)
		}
		cg.Callees[from][to] = true
		if cg.Callers[to] == nil {
			cg.Callers[to] = make(map[*mir.Func]bool)
		}
		cg.Callers[to][from] = true
	}
	// Index address-taken functions by signature for icall resolution.
	bySig := make(map[string][]*mir.Func)
	for _, f := range m.Funcs {
		if f.AddressTaken {
			bySig[f.Sig.Signature()] = append(bySig[f.Sig.Signature()], f)
		}
	}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case mir.OpCall:
					addEdge(f, in.Callee)
				case mir.OpICall:
					for _, t := range bySig[in.FSig.Signature()] {
						addEdge(f, t)
					}
				}
			}
		}
	}
	return cg
}

// MayRecurse reports whether f can reach itself through the call graph —
// the condition under which inter-procedural store-to-load forwarding needs
// the runtime recursion guard of §4.1.4.
func (cg *CallGraph) MayRecurse(f *mir.Func) bool {
	seen := make(map[*mir.Func]bool)
	var walk func(g *mir.Func) bool
	walk = func(g *mir.Func) bool {
		for callee := range cg.Callees[g] {
			if callee == f {
				return true
			}
			if !seen[callee] {
				seen[callee] = true
				if walk(callee) {
					return true
				}
			}
		}
		return false
	}
	return walk(f)
}

// UniqueCallers returns the only external call site of f when exactly one
// exists in the module, which is the precondition for localizing an
// inter-procedural checked load to the caller (§4.1.4, "unique call path").
// Self-recursive calls inside f do not count as additional sites — they are
// exactly the case the runtime recursion guard exists for. It returns nil
// when f has zero or multiple external call sites or is address-taken.
func UniqueCallers(m *mir.Module, f *mir.Func) *mir.Instr {
	if f.AddressTaken {
		return nil
	}
	var site *mir.Instr
	for _, g := range m.Funcs {
		if g == f {
			continue
		}
		for _, b := range g.Blocks {
			for _, in := range b.Instrs {
				if in.Op == mir.OpCall && in.Callee == f {
					if site != nil {
						return nil
					}
					site = in
				}
			}
		}
	}
	return site
}
