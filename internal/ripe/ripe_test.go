package ripe

import (
	"testing"

	"herqules/internal/compiler"
	"herqules/internal/mir"
)

func TestSuiteSize(t *testing.T) {
	suite := Suite()
	if len(suite) != 954 {
		t.Fatalf("suite has %d attacks, want 954 (Table 5 baseline)", len(suite))
	}
	perOrigin := map[Origin]int{}
	names := map[string]bool{}
	for _, a := range suite {
		perOrigin[a.Origin]++
		if names[a.Name()] {
			t.Errorf("duplicate attack %s", a.Name())
		}
		names[a.Name()] = true
	}
	want := map[Origin]int{OriginBSS: 214, OriginData: 234, OriginHeap: 234, OriginStack: 272}
	for o, n := range want {
		if perOrigin[o] != n {
			t.Errorf("%v: %d attacks, want %d", o, perOrigin[o], n)
		}
	}
}

func TestEveryAttackBuildsValidIR(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Suite() {
		// One build per (origin, kind) plus a couple of variants is
		// enough for IR validity; all variants share a generator.
		key := a.Origin.String() + a.Kind.String()
		if seen[key] && a.Variant > 2 {
			continue
		}
		seen[key] = true
		mod := a.Build()
		if err := mir.Validate(mod); err != nil {
			t.Errorf("%s: %v", a.Name(), err)
		}
	}
}

// TestMechanismMatchesPrediction runs one representative variant of every
// (origin, kind) pair under every design and requires the executed outcome
// to equal the analytic prediction. This is the core soundness check of the
// effectiveness evaluation: Table 5 emerges from execution, and execution
// agrees with each mechanism's security argument.
func TestMechanismMatchesPrediction(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Suite() {
		key := a.Origin.String() + "/" + a.Kind.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		for _, d := range compiler.AllDesigns() {
			got, err := Execute(a, d)
			if err != nil {
				t.Errorf("%s under %v: %v", a.Name(), d, err)
				continue
			}
			if want := Expected(a, d); got != want {
				t.Errorf("%s under %v: succeeded=%t, predicted %t", a.Name(), d, got, want)
			}
		}
	}
}

func TestExpectedTableMatchesPaper(t *testing.T) {
	// The analytic predictions reproduce Table 5 exactly.
	want := map[compiler.Design]map[Origin]int{
		compiler.Baseline: {OriginBSS: 214, OriginData: 234, OriginHeap: 234, OriginStack: 272},
		compiler.ClangCFI: {OriginBSS: 60, OriginData: 60, OriginHeap: 60, OriginStack: 10},
		compiler.CCFI:     {},
		compiler.CPI:      {OriginBSS: 10, OriginData: 10, OriginHeap: 10, OriginStack: 10},
		compiler.HQSfeStk: {OriginBSS: 10, OriginData: 10, OriginHeap: 10, OriginStack: 0},
		compiler.HQRetPtr: {},
	}
	wantTotals := map[compiler.Design]int{
		compiler.Baseline: 954, compiler.ClangCFI: 190, compiler.CCFI: 0,
		compiler.CPI: 40, compiler.HQSfeStk: 30, compiler.HQRetPtr: 0,
	}
	for d, wantRow := range want {
		tab := ExpectedTable(d)
		if tab.Total != wantTotals[d] {
			t.Errorf("%v: predicted total %d, want %d", d, tab.Total, wantTotals[d])
		}
		for _, o := range Origins() {
			if tab.ByOrgin[o] != wantRow[o] {
				t.Errorf("%v/%v: predicted %d, want %d", d, o, tab.ByOrgin[o], wantRow[o])
			}
		}
	}
}

func TestFullSuiteExecution(t *testing.T) {
	if testing.Short() {
		t.Skip("full 954x6 execution in long mode only")
	}
	for _, d := range compiler.AllDesigns() {
		tab, err := RunSuite(d)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		wantTab := ExpectedTable(d)
		if tab.Total != wantTab.Total {
			t.Errorf("%v: executed total %d, predicted %d", d, tab.Total, wantTab.Total)
		}
		for _, o := range Origins() {
			if tab.ByOrgin[o] != wantTab.ByOrgin[o] {
				t.Errorf("%v/%v: executed %d, predicted %d", d, o, tab.ByOrgin[o], wantTab.ByOrgin[o])
			}
		}
	}
}
