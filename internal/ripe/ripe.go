// Package ripe reproduces the RIPE64 buffer-overflow test suite used for
// the paper's effectiveness evaluation (§5.2, Table 5). Each attack is a
// real MIR program containing a memory-safety bug: a buffer whose overflow
// (or an arbitrary write derived from it) corrupts a control-flow target —
// a function pointer, a longjmp buffer, a vtable pointer, or a return
// address — after which the program performs the corrupted transfer. The
// payload "shellcode" signals success through a marker system call, exactly
// as RIPE verifies exploits via system calls; an exploit therefore succeeds
// only if attacker-chosen code actually runs *and* the process survives to
// make the call.
//
// The suite enumerates 954 attack instances — the number of exploits that
// succeed on the paper's unprotected baseline — across four overflow
// origins (BSS, Data, Heap, Stack) and the attack kinds below. ASLR is
// disabled (as in §5.2), so code and data addresses are compile-time
// constants in the attack payloads; only safe-region placement remains
// hidden, and the disclosure attacks use the compiler built-in the paper
// describes to reveal it.
package ripe

import (
	"fmt"

	"herqules/internal/mir"
	"herqules/internal/vm"
)

// Origin is the segment the overflowed buffer lives in (Table 5's rows).
type Origin int

// Overflow origins.
const (
	OriginBSS Origin = iota
	OriginData
	OriginHeap
	OriginStack
)

var originNames = [...]string{"BSS", "Data", "Heap", "Stack"}

func (o Origin) String() string { return originNames[o] }

// Origins lists all four overflow origins.
func Origins() []Origin { return []Origin{OriginBSS, OriginData, OriginHeap, OriginStack} }

// Kind is the attack technique/target combination.
type Kind int

// Attack kinds.
const (
	// KindFuncPtrSameClass overwrites a function pointer with a function
	// of the *same* type class — the return-to-libc-style code reuse that
	// defeats coarse-grained CFI.
	KindFuncPtrSameClass Kind = iota
	// KindFuncPtrDiffClass overwrites a function pointer with shellcode
	// of a different class.
	KindFuncPtrDiffClass
	// KindFuncPtrUnsafeLocal (stack only) targets a stack function
	// pointer whose address escapes, so the safe-stack pass must leave it
	// on the unsafe stack.
	KindFuncPtrUnsafeLocal
	// KindLongjmp corrupts the code pointer inside a jmp_buf-like
	// structure before a longjmp-style dispatch.
	KindLongjmp
	// KindVTable redirects an object's vtable pointer to an
	// attacker-built fake vtable.
	KindVTable
	// KindRetIndirect corrupts a data pointer and writes the plain-stack
	// return-slot address through it (layout knowledge, no disclosure).
	KindRetIndirect
	// KindRetDirect (stack only) is the classic contiguous stack smash
	// into the frame's return slot.
	KindRetDirect
	// KindRetDisclosure uses the compiler built-in to obtain the *actual*
	// return-slot address — wherever the design hid it — and writes
	// through it (the information-hiding defeat of §5.2).
	KindRetDisclosure
	// KindRetLinear (stack only) writes contiguously from the buffer up
	// to the disclosed return slot: it reaches an adjacent safe stack but
	// faults on a guard page.
	KindRetLinear
)

var kindNames = [...]string{
	"funcptr-same-class", "funcptr-diff-class", "funcptr-unsafe-local",
	"longjmp", "vtable", "ret-indirect", "ret-direct", "ret-disclosure",
	"ret-linear",
}

func (k Kind) String() string { return kindNames[k] }

// Attack identifies one exploit instance.
type Attack struct {
	Origin  Origin
	Kind    Kind
	Variant int
}

// Name returns a unique identifier.
func (a Attack) Name() string {
	return fmt.Sprintf("%s/%s/%d", a.Origin, a.Kind, a.Variant)
}

// suiteCounts gives the number of variants per (origin, kind); the totals
// per origin (214, 234, 234, 272; 954 overall) match the baseline row of
// Table 5.
var suiteCounts = map[Origin]map[Kind]int{
	OriginBSS: {
		KindFuncPtrSameClass: 50, KindFuncPtrDiffClass: 90, KindLongjmp: 20,
		KindVTable: 20, KindRetIndirect: 24, KindRetDisclosure: 10,
	},
	OriginData: {
		KindFuncPtrSameClass: 50, KindFuncPtrDiffClass: 110, KindLongjmp: 20,
		KindVTable: 20, KindRetIndirect: 24, KindRetDisclosure: 10,
	},
	OriginHeap: {
		KindFuncPtrSameClass: 50, KindFuncPtrDiffClass: 110, KindLongjmp: 20,
		KindVTable: 20, KindRetIndirect: 24, KindRetDisclosure: 10,
	},
	OriginStack: {
		KindFuncPtrSameClass: 40, KindFuncPtrUnsafeLocal: 10,
		KindFuncPtrDiffClass: 110, KindLongjmp: 20, KindVTable: 20,
		KindRetDirect: 62, KindRetLinear: 10,
	},
}

// Suite enumerates all 954 attacks in deterministic order.
func Suite() []Attack {
	var out []Attack
	for _, o := range Origins() {
		for k := KindFuncPtrSameClass; k <= KindRetLinear; k++ {
			for v := 0; v < suiteCounts[o][k]; v++ {
				out = append(out, Attack{Origin: o, Kind: k, Variant: v})
			}
		}
	}
	return out
}

// handlerSig is the victim function-pointer class; shellSig is the
// attacker's different class.
var (
	handlerSig = mir.FuncType(mir.I64, mir.I64)
	shellSig   = mir.FuncType(mir.Void)
)

const numDecoys = 10

// attackParts holds the common program pieces.
type attackParts struct {
	b      *mir.Builder
	shell  *mir.Func   // different-class payload
	decoys []*mir.Func // same-class payloads ("system()"-alikes)
	legit  *mir.Func   // the benign handler initially installed
	vtType *mir.Type
	realVT *mir.Global
	fakeVT *mir.Global
}

// addrOf returns the compile-time constant address of f (ASLR disabled).
func addrOf(mod *mir.Module, f *mir.Func) uint64 {
	for i, g := range mod.Funcs {
		if g == f {
			return vm.StaticFuncAddr(i)
		}
	}
	panic("ripe: function not in module")
}

// buildParts creates payloads and shared globals. All payload functions run
// the exploit marker; same-class decoys additionally match the victim
// pointer's type so coarse-grained class checks accept them.
func buildParts(mod *mir.Module) *attackParts {
	b := mir.NewBuilder(mod)
	p := &attackParts{b: b}

	p.shell = b.Func("shellcode", shellSig)
	b.Syscall(vm.SysMarkExploit)
	b.Ret(nil)

	for i := 0; i < numDecoys; i++ {
		d := b.Func(fmt.Sprintf("decoy%d", i), handlerSig, "x")
		b.Syscall(vm.SysMarkExploit)
		b.Ret(d.Params[0])
		p.decoys = append(p.decoys, d)
	}

	p.legit = b.Func("legit", handlerSig, "x")
	b.Ret(b.Add(p.legit.Params[0], mir.ConstInt(1)))

	p.vtType = mir.VTableType(handlerSig, 2)
	p.realVT = b.Global("real_vtable", p.vtType, "data")
	p.realVT.ReadOnly = true
	p.realVT.InitFuncs[0] = p.legit
	p.realVT.InitFuncs[1] = p.legit
	p.legit.AddressTaken = true

	// The fake vtable is ordinary attacker-writable data containing the
	// shellcode address.
	p.fakeVT = b.Global("fake_vtable", mir.ArrayType(mir.I64, 2), "data")
	p.fakeVT.InitFuncs[0] = p.shell
	p.fakeVT.InitFuncs[1] = p.shell
	p.shell.AddressTaken = true
	return p
}

// payloadAddr picks the attack's payload address: a same-class decoy or the
// different-class shellcode.
func (a Attack) payloadAddr(mod *mir.Module, p *attackParts) uint64 {
	switch a.Kind {
	case KindFuncPtrSameClass, KindFuncPtrUnsafeLocal:
		return addrOf(mod, p.decoys[a.Variant%numDecoys])
	default:
		return addrOf(mod, p.shell)
	}
}

// Build constructs the attack program. Its main returns 0 on a "clean" run;
// the exploit marker records success.
func (a Attack) Build() *mir.Module {
	mod := mir.NewModule("ripe_" + a.Name())
	p := buildParts(mod)
	b := p.b

	switch a.Kind {
	case KindFuncPtrSameClass, KindFuncPtrDiffClass, KindFuncPtrUnsafeLocal:
		a.buildFuncPtr(mod, p)
	case KindLongjmp:
		a.buildLongjmp(mod, p)
	case KindVTable:
		a.buildVTable(mod, p)
	case KindRetIndirect, KindRetDisclosure:
		a.buildRetWrite(mod, p)
	case KindRetDirect:
		a.buildRetDirect(mod, p)
	case KindRetLinear:
		a.buildRetLinear(mod, p)
	}

	b.Func("main", mir.FuncType(mir.I64))
	b.Call(mod.Func("vuln"))
	b.Syscall(vm.SysExit, mir.ConstInt(0))
	b.Ret(mir.ConstInt(0))
	mod.Finalize()
	return mod
}

// originBuffers returns (buffer address value, adjacent slot address value)
// for the attack's origin: a 4-word buffer with the victim slot directly
// after it. The builder must be positioned inside vuln.
func (a Attack) originBuffers(p *attackParts, slotElem *mir.Type) (buf, slot mir.Value) {
	b := p.b
	switch a.Origin {
	case OriginBSS:
		g1 := b.Global("buf", mir.ArrayType(mir.I64, 4), "bss")
		g2 := b.Global("victim", slotElem, "bss")
		return g1, g2
	case OriginData:
		g1 := b.Global("buf", mir.ArrayType(mir.I64, 4), "data")
		g1.InitWords = []uint64{1, 2, 3, 4}
		g2 := b.Global("victim", slotElem, "data")
		return g1, g2
	case OriginHeap:
		// First-fit allocation lays consecutive mallocs out adjacently.
		rawBuf := b.Malloc(mir.ConstInt(32))
		rawSlot := b.Malloc(mir.ConstInt((slotElem.Size() + 15) &^ 15))
		return b.Cast(rawBuf, mir.Ptr(mir.ArrayType(mir.I64, 4))),
			b.Cast(rawSlot, mir.Ptr(slotElem))
	default: // OriginStack
		buf := b.Alloca("buf", mir.ArrayType(mir.I64, 4))
		slot := b.Alloca("victim", slotElem)
		return buf, slot
	}
}

// overflow writes the payload word over buf[0..n): the memory-safety bug.
func overflow(b *mir.Builder, buf mir.Value, payload mir.Value, n int) {
	for i := 0; i < n; i++ {
		b.Store(payload, b.IndexAddr(buf, mir.ConstInt(uint64(i))))
	}
}

// buildFuncPtr: initialize an adjacent function pointer, smash it, dispatch.
func (a Attack) buildFuncPtr(mod *mir.Module, p *attackParts) {
	b := p.b
	b.Func("vuln", mir.FuncType(mir.Void))
	buf, slot := a.originBuffers(p, mir.Ptr(handlerSig))

	if a.Kind == KindFuncPtrUnsafeLocal {
		// Initialize through an escaping pointer so the safe-stack pass
		// must keep the slot on the unsafe stack.
		cur := b.Blk
		initFn := b.Func("init_slot", mir.FuncType(mir.Void, mir.Ptr(mir.Ptr(handlerSig))), "pp")
		b.Store(b.FuncAddr(p.legit), initFn.Params[0])
		b.Ret(nil)
		b.SetBlock(cur)
		b.Call(initFn, slot)
	} else {
		b.Store(b.FuncAddr(p.legit), slot)
	}

	payload := mir.ConstInt(a.payloadAddr(mod, p))
	// 5 words: the 4-word buffer plus the adjacent slot. Higher variants
	// smash a little further, like RIPE's length variations — except on
	// the stack, where a longer write would walk off the frame.
	extra := a.Variant % 3
	if a.Origin == OriginStack {
		extra = 0
	}
	overflow(b, buf, payload, 5+extra)

	fp := b.Load(slot)
	b.ICall(fp, handlerSig, mir.ConstInt(7))
	b.Ret(nil)
}

// buildLongjmp: a jmp_buf-like struct holding a code pointer, corrupted
// before the longjmp-style dispatch.
func (a Attack) buildLongjmp(mod *mir.Module, p *attackParts) {
	b := p.b
	jmpBuf := mir.StructType("jmp_buf", mir.I64, mir.Ptr(handlerSig))
	b.Func("vuln", mir.FuncType(mir.Void))
	buf, jb := a.originBuffers(p, jmpBuf)
	// setjmp: record the continuation.
	b.Store(mir.ConstInt(0xdead), b.FieldAddr(jb, 0))
	b.Store(b.FuncAddr(p.legit), b.FieldAddr(jb, 1))
	// Overflow across the buffer into the jmp_buf (field 1 is the second
	// word after its base: buffer words 0..3, jb words 4..5).
	overflow(b, buf, mir.ConstInt(addrOf(mod, p.shell)), 6)
	// longjmp: dispatch through the recorded pointer.
	fp := b.Load(b.FieldAddr(jb, 1))
	b.ICall(fp, handlerSig, mir.ConstInt(1))
	b.Ret(nil)
}

// buildVTable: corrupt an object's vtable pointer to aim at a fake vtable.
func (a Attack) buildVTable(mod *mir.Module, p *attackParts) {
	b := p.b
	objType := mir.StructType("Victim", mir.Ptr(p.vtType), mir.I64)
	b.Func("vuln", mir.FuncType(mir.Void))
	buf, obj := a.originBuffers(p, objType)
	// Construct: install the real vtable.
	b.Store(p.realVT, b.FieldAddr(obj, 0))
	b.Store(mir.ConstInt(5), b.FieldAddr(obj, 1))
	// Overflow replaces the vptr (word 4 after the buffer) with the fake
	// vtable's address — plain data as far as the program types go.
	fakeAddr := b.Cast(p.fakeVT, mir.I64)
	overflow(b, buf, fakeAddr, 5)
	// Virtual dispatch.
	vp := b.Load(b.FieldAddr(obj, 0))
	m := b.Load(b.IndexAddr(vp, mir.ConstInt(uint64(a.Variant%2))))
	b.ICall(m, handlerSig, mir.ConstInt(2))
	b.Ret(nil)
}

// buildRetWrite: corrupt a data pointer in the origin segment so the
// program's later write lands on a return slot — the plain-stack slot for
// KindRetIndirect (layout knowledge), the disclosed actual slot for
// KindRetDisclosure.
func (a Attack) buildRetWrite(mod *mir.Module, p *attackParts) {
	b := p.b
	b.Func("vuln", mir.FuncType(mir.Void))
	buf, ptrSlot := a.originBuffers(p, mir.Ptr(mir.I64))
	scratch := b.Alloca("scratch", mir.I64)
	b.Store(mir.ConstInt(0), scratch)
	b.Store(scratch, ptrSlot) // P initially points at harmless scratch

	leakNo := vm.SysFrameRetSlotAddr
	if a.Kind == KindRetDisclosure {
		leakNo = vm.SysLeakRetSlotAddr
	}
	leak := b.Syscall(leakNo)
	// The overflow redirects P to the return slot. (The address is a
	// runtime value; the "overflow" is the aliased store below, which no
	// pointer-integrity instrumentation sees as a code-pointer write.)
	b.Store(leak, b.Cast(b.IndexAddr(buf, mir.ConstInt(4)), mir.Ptr(mir.I64)))
	redirected := b.Load(ptrSlot)
	// The program's own write gadget now writes attacker data through P.
	b.Store(mir.ConstInt(addrOf(mod, p.shell)), redirected)
	b.Ret(nil)
}

// buildRetDirect: the classic contiguous stack smash.
func (a Attack) buildRetDirect(mod *mir.Module, p *attackParts) {
	b := p.b
	b.Func("vuln", mir.FuncType(mir.Void))
	buf := b.Alloca("buf", mir.ArrayType(mir.I64, 4))
	// Words 0..3 fill the buffer; word 4 is the frame's return slot; word
	// 5 (odd variants) also clobbers the caller's slot.
	overflow(b, buf, mir.ConstInt(addrOf(mod, p.shell)), 5+a.Variant%2)
	b.Ret(nil)
}

// buildRetLinear: contiguous overwrite whose extent is derived from the
// disclosed return-slot address — it walks off the end of the buffer all the
// way to the slot, crossing whatever lies between.
func (a Attack) buildRetLinear(mod *mir.Module, p *attackParts) {
	b := p.b
	vuln := b.Func("vuln", mir.FuncType(mir.Void))
	_ = vuln
	buf := b.Alloca("buf", mir.ArrayType(mir.I64, 4))
	leak := b.Syscall(vm.SysLeakRetSlotAddr)
	bufAddr := b.Cast(buf, mir.I64)
	count := b.Add(b.Bin(mir.BinShr, b.Sub(leak, bufAddr), mir.ConstInt(3)), mir.ConstInt(1))

	entry := b.Blk
	head := b.Block("head")
	body := b.Block("body")
	done := b.Block("done")
	b.Br(head)
	b.SetBlock(head)
	i := b.Phi(mir.I64, mir.ConstInt(0), entry)
	b.CondBr(b.Cmp(mir.CmpLt, i, count), body, done)
	b.SetBlock(body)
	b.Store(mir.ConstInt(addrOf(mod, p.shell)), b.IndexAddr(buf, i))
	i1 := b.Add(i, mir.ConstInt(1))
	i.Args, i.PhiBlocks = append(i.Args, i1), append(i.PhiBlocks, body)
	b.Br(head)
	b.SetBlock(done)
	b.Ret(nil)
}
