package ripe

import (
	"fmt"

	"herqules/internal/compiler"
	"herqules/internal/core"
)

// Execute builds, instruments and runs one attack under a design in
// effectiveness mode (violations kill, in-process checks trap — the §5.2
// methodology) and reports whether the exploit succeeded: attacker-chosen
// code executed its marker system call.
func Execute(a Attack, d compiler.Design) (bool, error) {
	ins, err := compiler.Instrument(a.Build(), d, compiler.DefaultOptions())
	if err != nil {
		return false, fmt.Errorf("ripe: instrumenting %s under %v: %w", a.Name(), d, err)
	}
	out, err := core.Run(ins, core.Options{KillOnViolation: true})
	if err != nil {
		return false, fmt.Errorf("ripe: running %s under %v: %w", a.Name(), d, err)
	}
	return out.ExploitMarker, nil
}

// Table is the Table 5 shape: successful exploits per origin and in total.
type Table struct {
	Design  compiler.Design
	ByOrgin map[Origin]int
	Total   int
}

// RunSuite executes the whole suite under one design.
func RunSuite(d compiler.Design) (*Table, error) {
	t := &Table{Design: d, ByOrgin: make(map[Origin]int)}
	for _, a := range Suite() {
		ok, err := Execute(a, d)
		if err != nil {
			return nil, err
		}
		if ok {
			t.ByOrgin[a.Origin]++
			t.Total++
		}
	}
	return t, nil
}

// Expected is the analytically predicted outcome of an attack under a
// design, derived from each mechanism (documented in §5.2's terms):
//
//   - Baseline stops nothing.
//   - Clang/LLVM CFI admits same-class replacements (code reuse), the
//     stack-resident pointers its safe-stack pass could not move, and
//     disclosure attacks on the safe stack; its guard pages stop linear
//     overwrites.
//   - CCFI and HQ-CFI-RetPtr stop everything: value/MAC checks cover
//     forward edges and return addresses alike.
//   - CPI stops forward-edge attacks via the safe store but loses its
//     unguarded safe stack to disclosure and linear overwrites.
//   - HQ-CFI-SfeStk stops everything except disclosure of the safe stack.
//
// Tests compare these predictions against actual execution; the experiment
// tables are produced from actual execution only.
func Expected(a Attack, d compiler.Design) bool {
	switch d {
	case compiler.Baseline:
		return true
	case compiler.ClangCFI:
		switch a.Kind {
		case KindFuncPtrSameClass:
			return a.Origin != OriginStack // stack copies moved to the safe stack
		case KindFuncPtrUnsafeLocal:
			return true
		case KindRetDisclosure:
			return true
		}
		return false
	case compiler.CCFI, compiler.HQRetPtr:
		return false
	case compiler.CPI:
		return a.Kind == KindRetDisclosure || a.Kind == KindRetLinear
	case compiler.HQSfeStk:
		return a.Kind == KindRetDisclosure
	default:
		return false
	}
}

// ExpectedTable computes the predicted Table 5 row for a design.
func ExpectedTable(d compiler.Design) *Table {
	t := &Table{Design: d, ByOrgin: make(map[Origin]int)}
	for _, a := range Suite() {
		if Expected(a, d) {
			t.ByOrgin[a.Origin]++
			t.Total++
		}
	}
	return t
}
