package sim

import (
	"testing"

	"herqules/internal/mir"
)

func TestMessageCost(t *testing.T) {
	if got := MessageCost(8); got != 40 {
		t.Errorf("MessageCost(8ns) = %d, want 40 at 5 GHz", got)
	}
	if got := MessageCost(146); got != 730 {
		t.Errorf("MessageCost(146ns) = %d, want 730", got)
	}
	if got := MessageCost(0.1); got != 1 {
		t.Errorf("MessageCost floor = %d, want 1", got)
	}
}

func TestDefaultModelShape(t *testing.T) {
	m := Default()
	if m.Instr == 0 || m.Load == 0 || m.Store == 0 || m.Syscall == 0 {
		t.Error("zero base costs")
	}
	// CCFI's per-op cost must exceed every other design's in-process
	// check, and Clang's must exceed CPI's — the Table 3 performance
	// ordering depends on it.
	if !(m.Runtime[mir.RTMACCheck] > m.Runtime[mir.RTClangCFICheck]) {
		t.Error("MAC check not more expensive than Clang-CFI check")
	}
	if !(m.Runtime[mir.RTClangCFICheck] > m.Runtime[mir.RTSafeStoreGet]) {
		t.Error("Clang-CFI check not more expensive than a safe-store access")
	}
	// Message-site instruction overhead exists for every HQ op.
	for _, rt := range []mir.RuntimeOp{
		mir.RTPointerDefine, mir.RTPointerCheck, mir.RTPointerInvalidate,
		mir.RTSyscallSync, mir.RTRetDefine, mir.RTRetCheckInvalidate,
	} {
		if m.Runtime[rt] == 0 {
			t.Errorf("no site overhead for %v", rt)
		}
	}
}

func TestWithMessagingIsACopy(t *testing.T) {
	base := Default()
	msg := base.WithMessaging(100)
	if msg.MessageSend != 100 {
		t.Errorf("MessageSend = %d", msg.MessageSend)
	}
	if base.MessageSend != 0 {
		t.Error("WithMessaging mutated the base model")
	}
	msg.Runtime[mir.RTPointerCheck] = 999
	if base.Runtime[mir.RTPointerCheck] == 999 {
		t.Error("Runtime map shared between copies")
	}
}

func TestRuntimeCostNilMap(t *testing.T) {
	m := &CostModel{}
	if m.RuntimeCost(mir.RTPointerCheck) != 0 {
		t.Error("nil Runtime map should cost 0")
	}
}
