// Package sim provides the deterministic cycle-cost model used to reproduce
// the paper's performance figures. The paper measures two points for
// AppendWrite-µarch: a software-only model on real hardware (-MODEL) and a
// ZSim microarchitectural simulation (-SIM) that counts userspace cycles and
// excludes system-call time (§5.3.1). This package plays ZSim's role for the
// MIR virtual machine: every instruction, memory access, runtime check,
// message send and system call is charged a cycle cost, and relative
// performance is a ratio of accumulated cycles — fully reproducible across
// runs and machines.
package sim

import "herqules/internal/mir"

// CyclesPerNano converts the paper's nanosecond figures (measured on an
// i9-9900K at 5 GHz) into model cycles.
const CyclesPerNano = 5.0

// CostModel assigns cycle costs to execution events.
type CostModel struct {
	// Instr is the base cost of one MIR instruction (covers arithmetic,
	// branches, moves — a rough CPI-1 out-of-order core).
	Instr uint64
	// Load and Store are additional costs for memory accesses.
	Load, Store uint64
	// CallOverhead is the extra cost of a call/return pair.
	CallOverhead uint64
	// BlockOpByte is the per-byte cost of memcpy/memmove/memset.
	BlockOpByte uint64
	// Syscall is the cost of the kernel transition itself (charged in
	// wall-clock modes; the -SIM configurations exclude it, matching
	// ZSim's userspace-cycles metric).
	Syscall uint64
	// ExcludeSyscalls omits Syscall and SyncStall costs from the total
	// (the -SIM rule: userspace cycles only).
	ExcludeSyscalls bool
	// SyncStall is the extra latency of a kernel-gated system call under
	// bounded asynchronous validation: even with the synchronization
	// message pipelined ahead of the syscall (§2.2), the kernel must
	// observe the verifier's confirmation before resuming.
	SyncStall uint64
	// MessageSend is the cost of transmitting one AppendWrite message,
	// derived from the active IPC primitive's latency.
	MessageSend uint64
	// Runtime maps in-process runtime operations (design-specific checks)
	// to their costs. Operations that send messages are charged
	// MessageSend instead; entries here cover pure in-process work such
	// as a Clang-CFI class test or a CCFI AES round.
	Runtime map[mir.RuntimeOp]uint64
}

// MessageCost returns the cycle cost of sending one message over a primitive
// with the given send latency in nanoseconds.
func MessageCost(sendNanos float64) uint64 {
	c := sendNanos * CyclesPerNano
	if c < 1 {
		return 1
	}
	return uint64(c)
}

// Verifier-side drain cost model (§3.4). A scalar drain loop pays the
// primitive's fixed receive overhead — a read(2) for kernel-backed channels,
// an atomic cursor round for shared memory — once per message; a batch drain
// pays it once per burst. These constants are the model's defaults, chosen to
// match the Table 2 cost structure on the reference machine.
const (
	// RecvBurstOverheadNanosSyscall is the fixed cost of one receive-side
	// system call (read/recvmsg with KPTI), paid per message when scalar
	// and per burst when batched.
	RecvBurstOverheadNanosSyscall = 460
	// RecvBurstOverheadNanosShared is the fixed cost of one shared-memory
	// cursor round (two atomic loads, one release store).
	RecvBurstOverheadNanosShared = 15
	// RecvMessageNanos is the irreducible per-message cost: the 40-byte
	// copy, frame decode, and policy-context lookup.
	RecvMessageNanos = 12
)

// BatchRecvNanos models the amortized per-message receive cost of draining
// in bursts of the given size: the fixed burst overhead is split across the
// burst, the per-message work is not. batch <= 1 degenerates to the scalar
// cost, which is what makes the scalar/batched ratio of the throughput
// experiment directly comparable to the measured one.
func BatchRecvNanos(burstOverheadNanos float64, batch int) float64 {
	if batch < 1 {
		batch = 1
	}
	return RecvMessageNanos + burstOverheadNanos/float64(batch)
}

// Telemetry overhead budget. The telemetry layer charges the verifier drain
// path a fixed number of uncontended atomic read-modify-writes per delivered
// *burst*, never per message: counters are accumulated in locals inside
// deliverShardBatch and flushed with one striped atomic add each.
const (
	// TelemetryCounterNanos is one uncontended lock-prefixed add on a
	// cache line owned by the updating core.
	TelemetryCounterNanos = 1.3
	// TelemetryHistogramNanos is one histogram observation: count, sum
	// and bucket adds plus the (rarely-taken) max update.
	TelemetryHistogramNanos = 4.0
	// TelemetryBurstNanos is the modelled fixed telemetry cost per
	// delivered burst: the verifier's counter flushes (messages, plus
	// occasionally violations/kills/syncs) and one batch-size histogram
	// observation.
	TelemetryBurstNanos = 2*TelemetryCounterNanos + TelemetryHistogramNanos
)

// TelemetryOverheadFraction models the relative cost the telemetry layer
// adds to the batched shared-memory drain path at the given burst size: the
// per-burst accounting divided by the burst's total drain work. At the
// default 256-message burst this is well under one percent, which is the
// budget the instrumentation must stay inside (verified empirically by the
// before/after BenchmarkVerifierThroughput_* runs recorded in DESIGN.md).
func TelemetryOverheadFraction(batch int) float64 {
	if batch < 1 {
		batch = 1
	}
	return (TelemetryBurstNanos / float64(batch)) /
		BatchRecvNanos(RecvBurstOverheadNanosShared, batch)
}

// Default returns the baseline cost model with no messaging attached:
// a simple out-of-order-ish core where ALU ops are cheap and memory and
// calls cost a few cycles.
func Default() *CostModel {
	return &CostModel{
		Instr:        1,
		Load:         3,
		Store:        2,
		CallOverhead: 4,
		BlockOpByte:  1,
		// A syscall with KPTI costs on the order of a microsecond
		// round-trip including kernel work; we charge the transition.
		Syscall:   1500,
		SyncStall: 350,
		Runtime: map[mir.RuntimeOp]uint64{
			// HQ messaging sites: besides the primitive's send latency
			// (charged separately as MessageSend), each site executes
			// argument setup, the runtime call, and buffer bookkeeping
			// — a dozen-odd instructions.
			mir.RTPointerDefine:          12,
			mir.RTPointerCheck:           12,
			mir.RTPointerInvalidate:      10,
			mir.RTPointerCheckInvalidate: 12,
			mir.RTBlockCopy:              16,
			mir.RTBlockMove:              16,
			mir.RTBlockInvalidate:        12,
			mir.RTSyscallSync:            12,
			mir.RTRetDefine:              12,
			mir.RTRetCheckInvalidate:     12,
			mir.RTAllocCreate:            12,
			mir.RTAllocCheck:             10,
			mir.RTAllocCheckBase:         12,
			mir.RTAllocExtend:            14,
			mir.RTAllocDestroy:           10,
			mir.RTAllocDestroyAll:        12,
			mir.RTCounterInc:             8,

			// Clang/LLVM CFI: address-range and bit-vector test on the
			// call target, plus the jump-table indirection its
			// lowering introduces.
			mir.RTClangCFICheck: 20,
			// CCFI: one AES round via AES-NI plus the shadow-MAC
			// access on every protected store/load and every
			// prologue/epilogue, *plus* the cost of the register
			// pressure its eleven reserved XMM registers impose on
			// surrounding code (spills/restores), which the paper
			// identifies as the dominant slowdown (§6.3.3: "tremendous
			// overhead").
			mir.RTMACStore:    70,
			mir.RTMACCheck:    70,
			mir.RTMACRetStore: 70,
			mir.RTMACRetCheck: 70,
			// CPI: safe-store (hash-region) access.
			mir.RTSafeStoreSet: 7,
			mir.RTSafeStoreGet: 7,
			// Store-to-load-forwarding recursion guard: one flag
			// test-and-set.
			mir.RTRecursionGuardEnter: 1,
			mir.RTRecursionGuardExit:  1,
		},
	}
}

// WithMessaging returns a copy of m charging msgCycles per AppendWrite
// message.
func (m *CostModel) WithMessaging(msgCycles uint64) *CostModel {
	n := *m
	n.Runtime = make(map[mir.RuntimeOp]uint64, len(m.Runtime))
	for k, v := range m.Runtime {
		n.Runtime[k] = v
	}
	n.MessageSend = msgCycles
	return &n
}

// RuntimeCost returns the in-process cost of a runtime op (0 when the op is
// message-backed or unknown).
func (m *CostModel) RuntimeCost(rt mir.RuntimeOp) uint64 {
	if m.Runtime == nil {
		return 0
	}
	return m.Runtime[rt]
}
